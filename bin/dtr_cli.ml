(* dtr — command-line driver for the dual-topology-routing library.

   Subcommands:
     topo        generate a topology and print/save it
     optimize    run the STR and DTR weight searches on a scenario
     experiment  regenerate a paper figure/table (or all of them)
     simulate    packet-level replay of an optimized scenario
     mtospf      flood a weight pair through the MT-OSPF control plane
     inspect     print (and explain) the network state of a setting
     diff        churn report between two weight settings
     report      fold a JSONL trace into one aggregated run report
     gen         generate a 1k-10k-node topology preset + PoP demand
     bench       run the large-topology benchmark tier *)

open Cmdliner

module Scenario = Dtr_experiments.Scenario
module Objective = Dtr_routing.Objective
module Problem = Dtr_core.Problem
module Lexico = Dtr_cost.Lexico

(* ------------------------------------------------------------------ *)
(* Shared argument parsers                                            *)

let topology_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "random" -> Ok Scenario.Random_topo
    | "power-law" | "powerlaw" -> Ok Scenario.Power_law
    | "isp" -> Ok Scenario.Isp
    | "waxman" -> Ok Scenario.Waxman
    | "transit-stub" | "transitstub" -> Ok Scenario.Transit_stub
    | "abilene" -> Ok Scenario.Abilene
    | _ ->
        Error
          (`Msg
             "expected one of: random, power-law, isp, waxman, transit-stub, abilene")
  in
  let print ppf k = Format.pp_print_string ppf (Scenario.topology_name k) in
  Arg.conv (parse, print)

let model_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "load" -> Ok Objective.Load
    | "sla" -> Ok (Objective.Sla Dtr_cost.Sla.default)
    | _ -> Error (`Msg "expected one of: load, sla")
  in
  let print ppf m = Format.pp_print_string ppf (Objective.model_name m) in
  Arg.conv (parse, print)

let preset_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "quick" -> Ok Dtr_core.Search_config.quick
    | "default" -> Ok Dtr_core.Search_config.default
    | "paper" -> Ok Dtr_core.Search_config.paper
    | _ -> Error (`Msg "expected one of: quick, default, paper")
  in
  let print ppf _ = Format.pp_print_string ppf "<preset>" in
  Arg.conv (parse, print)

(* optimize's --preset additionally accepts a large-topology preset
   name (ts-1k .. pl-10k), which switches the command onto the
   large-tier search path (Search_bench). *)
let opt_preset_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "quick" -> Ok (`Budget Dtr_core.Search_config.quick)
    | "default" -> Ok (`Budget Dtr_core.Search_config.default)
    | "paper" -> Ok (`Budget Dtr_core.Search_config.paper)
    | s -> (
        match Dtr_topology.Large.find s with
        | Some p -> Ok (`Large p)
        | None ->
            Error
              (`Msg
                 (Printf.sprintf
                    "expected a search budget (quick, default, paper) or a \
                     large-topology preset (%s)"
                    (String.concat ", " (Dtr_topology.Large.names ())))))
  in
  let print ppf = function
    | `Budget _ -> Format.pp_print_string ppf "<budget>"
    | `Large p -> Format.pp_print_string ppf p.Dtr_topology.Large.name
  in
  Arg.conv (parse, print)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel execution (default 1 = \
           sequential).  Results are bit-identical for every value.")

let preset_arg =
  Arg.(
    value
    & opt preset_conv Dtr_core.Search_config.default
    & info [ "preset" ] ~docv:"PRESET"
        ~doc:"Search budget: quick, default or paper.")

let time_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "time-budget" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget in seconds: each search checks the clock \
           once per iteration and winds down early when the budget is \
           spent (at least one iteration always runs).  On a large \
           preset each search gets its own budget; otherwise the \
           budget covers the whole command.  Iteration counts under a \
           binding budget are machine-dependent.")

let init_weights_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "init-weights" ] ~docv:"FILE"
        ~doc:
          "Warm-start the searches from this saved weight setting \
           (Weights_io format: 1 topology seeds both classes, 2 seed \
           W_H and W_L; e.g. a previous run's --save-weights output).  \
           Weights are range-validated on load.")

(* Warm-start file -> (wh0, wl0).  Out-of-range or malformed files die
   with the parser's line-numbered message. *)
let load_init_weights = function
  | None -> None
  | Some path -> (
      match Dtr_routing.Weights_io.load path with
      | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
      | Ok [| w |] -> Some (w, w)
      | Ok [| wh; wl |] -> Some (wh, wl)
      | Ok sets ->
          failwith
            (Printf.sprintf "%s: expected 1 or 2 weight topologies, found %d"
               path (Array.length sets)))

let scan_jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "scan-jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the neighborhood-scan engine inside each \
           search (default 1 = sequential).  Orthogonal to --jobs, \
           which parallelizes across restarts/experiments; results are \
           bit-identical for every value.")

let with_scan_jobs preset scan_jobs =
  { preset with Dtr_core.Search_config.scan_jobs }

let trace_sample_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "trace-sample" ] ~docv:"N"
        ~doc:
          "Keep every N-th probe event in the trace (counter-based per \
           search run, so a sampled trace is still byte-identical for \
           every --jobs and --scan-jobs value).  Probes dominate trace \
           volume; non-probe events always pass.  Default: every probe \
           on the quick/default/paper presets; on a large preset \
           probes are off entirely unless this flag is given.")

let with_trace_sample preset = function
  | None -> preset
  | Some n -> { preset with Dtr_core.Search_config.trace_sample = n }

(* Machine-readable rendering of the report tables: title, columns and
   rows verbatim.  OCaml's %S escaping is JSON-compatible for the
   ASCII cell content the tables produce. *)
let tables_json tables =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"tables\": [";
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "{\"title\": %S, \"columns\": [%s], \"rows\": ["
           (Dtr_util.Table.title t)
           (String.concat ", "
              (List.map (Printf.sprintf "%S") (Dtr_util.Table.columns t))));
      List.iteri
        (fun j row ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf "[%s]"
               (String.concat ", " (List.map (Printf.sprintf "%S") row))))
        (Dtr_util.Table.rows t);
      Buffer.add_string b "]}")
    tables;
  Buffer.add_string b "]}\n";
  Buffer.contents b

let write_file path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

(* An arc given on the command line: a bare arc id, or SRC-DST /
   SRC->DST endpoints (first matching arc wins). *)
let parse_arc_spec g spec =
  let m = Dtr_graph.Graph.arc_count g in
  let find_endpoints src dst =
    let found = ref None in
    for a = m - 1 downto 0 do
      let arc = Dtr_graph.Graph.arc g a in
      if arc.Dtr_graph.Graph.src = src && arc.Dtr_graph.Graph.dst = dst then
        found := Some a
    done;
    match !found with
    | Some a -> a
    | None -> failwith (Printf.sprintf "no arc %d->%d in this topology" src dst)
  in
  match int_of_string_opt spec with
  | Some a ->
      if a < 0 || a >= m then
        failwith (Printf.sprintf "arc id %d out of range (0..%d)" a (m - 1));
      a
  | None -> (
      match
        try Some (Scanf.sscanf spec "%d->%d%!" (fun s d -> (s, d)))
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> (
          try Some (Scanf.sscanf spec "%d-%d%!" (fun s d -> (s, d)))
          with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
      with
      | Some (s, d) -> find_endpoints s d
      | None ->
          failwith
            (Printf.sprintf
               "bad link spec %S (expected an arc id, SRC-DST or SRC->DST)"
               spec))

let robust_arg =
  let mode_conv =
    let parse s =
      match String.lowercase_ascii s with
      | "single-link" -> Ok ()
      | _ -> Error (`Msg "expected: single-link")
    in
    Arg.conv (parse, fun ppf () -> Format.pp_print_string ppf "single-link")
  in
  Arg.(
    value
    & opt (some mode_conv) None
    & info [ "robust" ] ~docv:"MODE"
        ~doc:
          "Optimize the robust objective J = normal + alpha * penalty, \
           where the penalty is the mean of the top-k worst finite \
           single-link post-failure costs of a candidate (MODE: \
           single-link).  Disconnecting failures are priced as \
           infinite but excluded from the penalty — single-link \
           reachability does not depend on the weights.")

let alpha_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "alpha" ] ~docv:"A"
        ~doc:"Failure-penalty weight for --robust (default 1).")

let top_k_arg =
  Arg.(
    value
    & opt int 1
    & info [ "top-k" ] ~docv:"K"
        ~doc:
          "How many worst finite failures the --robust penalty \
           averages (default 1 = pure worst case).")

let with_robust preset robust ~alpha ~top_k =
  match robust with
  | None -> preset
  | Some () ->
      {
        preset with
        Dtr_core.Search_config.robust =
          Some { Dtr_core.Search_config.alpha; top_k };
      }

let topology_arg =
  Arg.(
    value
    & opt topology_conv Scenario.Random_topo
    & info [ "topology" ] ~docv:"KIND" ~doc:"Topology: random, power-law, isp, waxman, transit-stub.")

let model_arg =
  Arg.(
    value
    & opt model_conv Objective.Load
    & info [ "model" ] ~docv:"MODEL" ~doc:"Cost model: load or sla.")

let util_arg =
  Arg.(
    value
    & opt float 0.6
    & info [ "util" ] ~docv:"U" ~doc:"Target average link utilization.")

let fraction_arg =
  Arg.(
    value
    & opt float 0.3
    & info [ "fraction"; "f" ] ~docv:"F"
        ~doc:"High-priority share of total traffic volume.")

let density_arg =
  Arg.(
    value
    & opt float 0.1
    & info [ "density"; "k" ] ~docv:"K"
        ~doc:"Fraction of SD pairs carrying high-priority traffic.")

let make_spec topology fraction density seed =
  {
    Scenario.topology;
    fraction;
    hp = Scenario.Random_density density;
    seed;
  }

(* ------------------------------------------------------------------ *)
(* topo                                                               *)

let topo_cmd =
  let run topology seed out dot =
    let spec = make_spec topology 0.3 0.1 seed in
    let inst = Scenario.make spec in
    let g = inst.Scenario.graph in
    Printf.printf "%s topology: %d nodes, %d arcs, strongly connected: %b\n"
      (Scenario.topology_name topology)
      (Dtr_graph.Graph.node_count g)
      (Dtr_graph.Graph.arc_count g)
      (Dtr_graph.Graph.is_strongly_connected g);
    (match out with
    | Some path ->
        Dtr_topology.Topo_io.save g path;
        Printf.printf "saved to %s\n" path
    | None -> ());
    if dot then print_string (Dtr_graph.Graph.to_dot g)
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Save the topology to a file.")
  in
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Print Graphviz output.")
  in
  Cmd.v
    (Cmd.info "topo" ~doc:"Generate a topology")
    Term.(const run $ topology_arg $ seed_arg $ out_arg $ dot_arg)

(* ------------------------------------------------------------------ *)
(* optimize                                                           *)

(* Large-preset path: one STR + DTR search-bench run on the 1k-10k
   tier.  Outcome lines (objectives, improvements, evaluations, memo
   counters) go to stdout — deterministic in (preset, seed, config)
   whenever no wall-clock budget binds, so CI can diff stdout across
   --scan-jobs values; progress and the timing table go to stderr. *)
let optimize_large p ~model ~fraction ~density ~util ~seed ~restarts
    ~scan_jobs ~robust ~alpha ~top_k ~time_budget ~search_iters ~init_weights
    ~save_weights ~trace_file ~trace_no_time ~trace_sample =
  let module Search_bench = Dtr_experiments.Search_bench in
  let module Trace = Dtr_core.Trace in
  if restarts > 1 then
    failwith "--restarts > 1 is not supported on large presets";
  if save_weights <> None then
    failwith "--save-weights is not supported on large presets";
  let cfg = with_scan_jobs Dtr_core.Search_config.quick scan_jobs in
  let cfg = with_robust cfg robust ~alpha ~top_k in
  (* Large-tier traces with per-probe events run to multi-GB files;
     probes default off here and --trace-sample N opts back in (at one
     probe in N). *)
  let cfg =
    {
      cfg with
      Dtr_core.Search_config.trace_probes = trace_sample <> None;
      trace_sample = (match trace_sample with Some n -> n | None -> 1);
    }
  in
  let cfg, str_iters =
    match search_iters with
    | None -> (cfg, None)
    | Some n ->
        ( { cfg with Dtr_core.Search_config.n_iters = n; k_iters = n },
          Some n )
  in
  let w0 = load_init_weights init_weights in
  Printf.printf
    "scenario: %s preset, %s cost, f=%.0f%%, k=%.0f%%, target util %.2f\n%!"
    p.Dtr_topology.Large.name
    (Objective.model_name model)
    (fraction *. 100.) (density *. 100.) util;
  let trace_oc = Option.map open_out trace_file in
  let trace =
    match trace_oc with
    | Some oc -> Trace.jsonl ~timestamps:(not trace_no_time) oc
    | None -> Trace.disabled
  in
  let rows =
    Search_bench.run ~cfg ~seed ?time_budget ?str_iters ?w0 ~fraction ~density
      ~util
      ~progress:(fun s -> Printf.eprintf "%s\n%!" s)
      ~trace ~model p
  in
  (match trace_file with
  | None -> ()
  | Some path ->
      Option.iter close_out trace_oc;
      Dtr_core.Manifest.write
        ~path:(path ^ ".manifest.json")
        (Dtr_core.Manifest.to_json ~seed ~restarts
           ~model:(Objective.model_name model)
           ~topology:p.Dtr_topology.Large.name ~config:cfg ());
      Printf.printf "trace written to %s\n" path);
  List.iter
    (fun (r : Search_bench.row) ->
      Printf.printf
        "%-4s objective: primary=%.6g secondary=%.6g (%d improvements, %d \
         iterations, %d evaluations)\n"
        (String.uppercase_ascii r.Search_bench.algo)
        r.Search_bench.objective.Lexico.primary
        r.Search_bench.objective.Lexico.secondary r.Search_bench.improvements
        r.Search_bench.iterations r.Search_bench.evaluations;
      Printf.printf "%-4s memo: %d hits / %d misses\n"
        (String.uppercase_ascii r.Search_bench.algo)
        r.Search_bench.memo_hits r.Search_bench.memo_misses)
    rows;
  Printf.eprintf "%s%!"
    (Dtr_util.Table.to_string (Search_bench.table rows))

let optimize_cmd =
  let run topology model fraction density util preset seed restarts jobs
      scan_jobs robust alpha top_k time_budget search_iters init_weights
      save_weights trace_file trace_no_time metrics_file trace_sample =
    match preset with
    | `Large p ->
        optimize_large p ~model ~fraction ~density ~util ~seed ~restarts
          ~scan_jobs ~robust ~alpha ~top_k ~time_budget ~search_iters
          ~init_weights ~save_weights ~trace_file ~trace_no_time ~trace_sample
    | `Budget preset ->
    let module Trace = Dtr_core.Trace in
    let module Metrics = Dtr_util.Metrics in
    let preset = with_scan_jobs preset scan_jobs in
    let preset = with_robust preset robust ~alpha ~top_k in
    let preset = with_trace_sample preset trace_sample in
    let w0 = load_init_weights init_weights in
    let t_start = Unix.gettimeofday () in
    let stop =
      Option.map
        (fun b () -> Unix.gettimeofday () -. t_start > b)
        time_budget
    in
    if restarts > 1 && (w0 <> None || stop <> None) then
      failwith "--init-weights/--time-budget require --restarts 1";
    ignore search_iters;
    if metrics_file <> None then begin
      Metrics.set_enabled true;
      Metrics.reset ()
    end;
    let spec = make_spec topology fraction density seed in
    let inst = Scenario.make spec in
    (* One provenance record shared by every artifact of this run. *)
    let manifest () =
      Dtr_core.Manifest.to_json ~seed ~jobs ~restarts
        ~model:(Objective.model_name model)
        ~topology:(Scenario.topology_name topology)
        ~config:preset ~graph:inst.Scenario.graph ()
    in
    let write_artifacts () =
      (match metrics_file with
      | None -> ()
      | Some path ->
          let put p s =
            let oc = open_out p in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc s)
          in
          put path (Metrics.to_prometheus ());
          put (path ^ ".json") (Metrics.to_json ());
          Dtr_core.Manifest.write ~path:(path ^ ".manifest.json") (manifest ());
          Printf.printf "metrics written to %s (+.json, +.manifest.json)\n" path);
      match trace_file with
      | None -> ()
      | Some path ->
          Dtr_core.Manifest.write ~path:(path ^ ".manifest.json") (manifest ())
    in
    Printf.printf "scenario: %s topology, %s cost, f=%.0f%%, k=%.0f%%, target util %.2f\n%!"
      (Scenario.topology_name topology)
      (Objective.model_name model)
      (fraction *. 100.) (density *. 100.) util;
    let save_dtr sol =
      match save_weights with
      | None -> ()
      | Some path ->
          Dtr_routing.Weights_io.save [| sol.Problem.wh; sol.Problem.wl |] path;
          Printf.printf "DTR weight pair saved to %s\n" path
    in
    (* One JSONL writer shared by both searches plus per-search rings
       for the convergence summaries printed at the end. *)
    let trace_oc = Option.map open_out trace_file in
    let jsonl =
      match trace_oc with
      | Some oc -> Trace.jsonl ~timestamps:(not trace_no_time) oc
      | None -> Trace.disabled
    in
    let str_ring =
      match trace_oc with Some _ -> Trace.ring () | None -> Trace.disabled
    in
    let dtr_ring =
      match trace_oc with Some _ -> Trace.ring () | None -> Trace.disabled
    in
    let print_convergence ~str_evs ~dtr_evs =
      match trace_file with
      | None -> ()
      | Some path ->
          Option.iter close_out trace_oc;
          let curve name evs =
            let c = Trace.convergence evs in
            print_endline
              (Dtr_util.Table.to_string
                 (Dtr_routing.Report.convergence_table
                    ~title:
                      (Printf.sprintf
                         "%s convergence (best objective vs. evaluations)" name)
                    c))
          in
          curve "STR" str_evs;
          curve "DTR" dtr_evs;
          Printf.printf "trace written to %s\n" path
    in
    if restarts <= 1 then begin
      (* Compare.run_point tags STR events restart = 0 and DTR events
         restart = 1; one shared ring is split for the summaries. *)
      let ring =
        match trace_oc with Some _ -> Trace.ring () | None -> Trace.disabled
      in
      let trace =
        match trace_oc with
        | Some _ -> Trace.tee jsonl ring
        | None -> Trace.disabled
      in
      let point =
        Dtr_experiments.Compare.run_point ~cfg:preset ~seed ~trace ?stop ?w0
          inst ~model ~target_util:util
      in
      let pr name (o : Lexico.t) =
        Printf.printf "%-4s objective: primary=%.6g secondary=%.6g\n" name
          o.Lexico.primary o.Lexico.secondary
      in
      pr "STR" point.Dtr_experiments.Compare.str.Dtr_core.Str_search.objective;
      pr "DTR" point.Dtr_experiments.Compare.dtr.Dtr_core.Dtr_search.objective;
      (match preset.Dtr_core.Search_config.robust with
      | None -> ()
      | Some r ->
          (* In robust mode the reported objective is J; show the
             normal-cost share so the penalty is visible. *)
          let prj name (best : Problem.solution) (j : Lexico.t) =
            let n = Problem.objective best in
            Printf.printf
              "%-4s robust: J primary=%.6g (normal %.6g, alpha=%g, top-k=%d)\n"
              name j.Lexico.primary n.Lexico.primary
              r.Dtr_core.Search_config.alpha r.Dtr_core.Search_config.top_k
          in
          prj "STR" point.Dtr_experiments.Compare.str.Dtr_core.Str_search.best
            point.Dtr_experiments.Compare.str.Dtr_core.Str_search.objective;
          prj "DTR" point.Dtr_experiments.Compare.dtr.Dtr_core.Dtr_search.best
            point.Dtr_experiments.Compare.dtr.Dtr_core.Dtr_search.objective);
      let prm name ~hits ~misses =
        Printf.printf "%-4s memo: %d hits / %d misses\n" name hits misses
      in
      prm "STR"
        ~hits:point.Dtr_experiments.Compare.str.Dtr_core.Str_search.memo_hits
        ~misses:point.Dtr_experiments.Compare.str.Dtr_core.Str_search.memo_misses;
      prm "DTR"
        ~hits:point.Dtr_experiments.Compare.dtr.Dtr_core.Dtr_search.memo_hits
        ~misses:point.Dtr_experiments.Compare.dtr.Dtr_core.Dtr_search.memo_misses;
      Printf.printf "measured avg utilization: %.3f\n"
        point.Dtr_experiments.Compare.measured_util;
      Printf.printf "H-cost ratio RH = %.3f\nL-cost ratio RL = %.3f\n"
        point.Dtr_experiments.Compare.rh point.Dtr_experiments.Compare.rl;
      let evs = Trace.events ring in
      print_convergence
        ~str_evs:
          (List.filter (fun (e : Trace.event) -> e.Trace.restart = 0) evs)
        ~dtr_evs:
          (List.filter (fun (e : Trace.event) -> e.Trace.restart = 1) evs);
      save_dtr point.Dtr_experiments.Compare.dtr.Dtr_core.Dtr_search.best;
      write_artifacts ()
    end
    else begin
      (* Multi-start: same PRNG derivation as Compare.run_point, with
         each search's stream feeding a Multistart driver instead of a
         single run.  Output is bit-identical for every --jobs. *)
      let module Multistart = Dtr_core.Multistart in
      let inst = Scenario.scale_to_utilization inst ~target:util in
      let problem = Scenario.problem inst ~model in
      let root =
        Dtr_util.Prng.create (seed + (inst.Scenario.spec.Scenario.seed * 7919))
      in
      let str_rng = Dtr_util.Prng.split root in
      let dtr_rng = Dtr_util.Prng.split root in
      Dtr_util.Pool.with_pool ~jobs @@ fun pool ->
      let ms algo ring rng =
        let trace =
          match trace_oc with
          | Some _ -> Trace.tee jsonl ring
          | None -> Trace.disabled
        in
        Multistart.run ~pool ~restarts ~algo ~trace rng preset problem
      in
      let str = ms Multistart.Str str_ring str_rng in
      let dtr = ms Multistart.Dtr dtr_ring dtr_rng in
      let pr name (r : Multistart.report) =
        Printf.printf
          "%-4s objective: primary=%.6g secondary=%.6g (best of %d restarts: #%d, %d evaluations)\n"
          name r.Multistart.objective.Lexico.primary
          r.Multistart.objective.Lexico.secondary restarts r.Multistart.best_index
          r.Multistart.evaluations
      in
      pr "STR" str;
      pr "DTR" dtr;
      (match preset.Dtr_core.Search_config.robust with
      | None -> ()
      | Some r ->
          let prj name (ms : Multistart.report) =
            let n = Problem.objective ms.Multistart.best in
            Printf.printf
              "%-4s robust: J primary=%.6g (normal %.6g, alpha=%g, top-k=%d)\n"
              name ms.Multistart.objective.Lexico.primary n.Lexico.primary
              r.Dtr_core.Search_config.alpha r.Dtr_core.Search_config.top_k
          in
          prj "STR" str;
          prj "DTR" dtr);
      Printf.printf "measured avg utilization: %.3f\n"
        (Dtr_routing.Evaluate.avg_utilization
           str.Multistart.best.Problem.result.Objective.eval);
      Printf.printf "H-cost ratio RH = %.3f\nL-cost ratio RL = %.3f\n"
        (Dtr_experiments.Compare.ratio
           ~num:str.Multistart.objective.Lexico.primary
           ~den:dtr.Multistart.objective.Lexico.primary)
        (Dtr_experiments.Compare.ratio
           ~num:str.Multistart.objective.Lexico.secondary
           ~den:dtr.Multistart.objective.Lexico.secondary);
      print_convergence ~str_evs:(Trace.events str_ring)
        ~dtr_evs:(Trace.events dtr_ring);
      save_dtr dtr.Multistart.best;
      write_artifacts ()
    end
  in
  let restarts_arg =
    Arg.(
      value
      & opt int 1
      & info [ "restarts" ] ~docv:"N"
          ~doc:
            "Independent search restarts per algorithm; the best \
             solution wins.  With N > 1 the restarts run on the --jobs \
             domain pool.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-weights" ] ~docv:"FILE"
          ~doc:"Save the best DTR weight pair to a file.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write one JSONL search-telemetry event per line to FILE \
             and print best-so-far convergence tables.  Every field \
             except the trailing t_us timestamp is byte-identical for \
             every --jobs and --scan-jobs value.  A FILE.manifest.json \
             provenance record is written alongside.")
  in
  let trace_no_time_arg =
    Arg.(
      value
      & flag
      & info [ "trace-no-time" ]
          ~doc:
            "Zero the t_us timestamp field of every trace event at \
             emission, making the JSONL output fully deterministic \
             (byte-diffable without post-processing).")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Enable runtime metrics and write them to FILE \
             (Prometheus text format) and FILE.json on exit, with a \
             FILE.manifest.json provenance record.  Counter values \
             above the nondeterministic marker are bit-identical for \
             every --jobs and --scan-jobs value.")
  in
  let opt_preset_arg =
    Arg.(
      value
      & opt opt_preset_conv (`Budget Dtr_core.Search_config.default)
      & info [ "preset" ] ~docv:"PRESET"
          ~doc:
            "Search budget (quick, default, paper) or a large-topology \
             preset (ts-1k, ts-5k, ts-10k, pl-1k, pl-5k, pl-10k).  A \
             large preset replaces --topology with a 1k-10k-node \
             PoP-demand scenario, runs the searches through the \
             search-bench path (quick budget unless capped by \
             --search-iters or --time-budget), and prints deterministic \
             outcome lines on stdout with timings on stderr.")
  in
  let search_iters_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "search-iters" ] ~docv:"N"
          ~doc:
            "On a large preset: cap every search loop at N iterations \
             (STR's value-scan count and DTR's three routines alike).  \
             Without a --time-budget this makes the whole run — and \
             its stdout — deterministic, which is what the CI \
             scan-jobs invariance check diffs.  Ignored on the \
             dense-topology path.")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Run the STR and DTR weight searches on one scenario")
    Term.(
      const run $ topology_arg $ model_arg $ fraction_arg $ density_arg
      $ util_arg $ opt_preset_arg $ seed_arg $ restarts_arg $ jobs_arg
      $ scan_jobs_arg $ robust_arg $ alpha_arg $ top_k_arg $ time_budget_arg
      $ search_iters_arg $ init_weights_arg $ save_arg $ trace_arg
      $ trace_no_time_arg $ metrics_arg $ trace_sample_arg)

(* ------------------------------------------------------------------ *)
(* experiment                                                         *)

let experiment_cmd =
  let run names list preset seed jobs scan_jobs =
    let preset = with_scan_jobs preset scan_jobs in
    if list then begin
      List.iter
        (fun e ->
          Printf.printf "%-16s %s\n" e.Dtr_experiments.Registry.name
            e.Dtr_experiments.Registry.description)
        Dtr_experiments.Registry.all;
      `Ok ()
    end
    else begin
      let targets =
        match names with
        | [ "all" ] -> Some Dtr_experiments.Registry.all
        | [] -> None
        | names -> (
            let resolved =
              List.map
                (fun n -> (n, Dtr_experiments.Registry.find n))
                names
            in
            match List.find_opt (fun (_, e) -> e = None) resolved with
            | Some (n, _) -> (
                Printf.eprintf "unknown experiment: %s\n" n;
                None)
            | None -> Some (List.filter_map snd resolved))
      in
      match targets with
      | None ->
          `Error (false, "pass experiment names, or 'all', or --list")
      | Some experiments ->
          (* Compute all tables first (in parallel when --jobs > 1),
             then print in input order: byte-identical for every
             --jobs. *)
          let results =
            Dtr_experiments.Registry.run_all ~jobs ~cfg:preset ~seed
              experiments
          in
          List.iter
            (fun (e, tables) ->
              Printf.printf "== %s: %s ==\n%!" e.Dtr_experiments.Registry.name
                e.Dtr_experiments.Registry.description;
              List.iter
                (fun t -> print_endline (Dtr_util.Table.to_string t))
                tables)
            results;
          `Ok ()
    end
  in
  let names_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"NAME" ~doc:"Experiment names (or 'all').")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List available experiments.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a paper figure or table")
    Term.(
      ret
        (const run $ names_arg $ list_arg $ preset_arg $ seed_arg $ jobs_arg
        $ scan_jobs_arg))

(* ------------------------------------------------------------------ *)
(* simulate                                                           *)

let simulate_cmd =
  let run topology fraction density util preset seed duration scan_jobs =
    let preset = with_scan_jobs preset scan_jobs in
    let spec = make_spec topology fraction density seed in
    let inst = Scenario.make spec in
    let inst = Scenario.scale_to_utilization inst ~target:util in
    let problem = Scenario.problem inst ~model:Objective.Load in
    Printf.printf "optimizing DTR weights...\n%!";
    let report =
      Dtr_core.Dtr_search.run (Dtr_util.Prng.create seed) preset problem
    in
    let sol = report.Dtr_core.Dtr_search.best in
    Printf.printf "simulating %g ms of traffic...\n%!" duration;
    let cfg = { Dtr_netsim.Sim.default_config with duration; seed } in
    let r =
      Dtr_netsim.Sim.run inst.Scenario.graph ~wh:sol.Problem.wh
        ~wl:sol.Problem.wl ~th:inst.Scenario.th ~tl:inst.Scenario.tl cfg
    in
    let pr name (s : Dtr_netsim.Sim.class_stats) =
      Printf.printf
        "%-4s injected=%d delivered=%d mean-delay=%.3fms p95=%.3fms hops=%.2f\n"
        name s.Dtr_netsim.Sim.injected s.Dtr_netsim.Sim.delivered
        s.Dtr_netsim.Sim.mean_delay s.Dtr_netsim.Sim.p95_delay
        s.Dtr_netsim.Sim.mean_hops
    in
    pr "high" r.Dtr_netsim.Sim.high;
    pr "low" r.Dtr_netsim.Sim.low;
    Printf.printf "mean simulated link utilization: %.3f\n"
      (Dtr_util.Stats.mean r.Dtr_netsim.Sim.link_utilization)
  in
  let duration_arg =
    Arg.(
      value
      & opt float 2000.
      & info [ "duration" ] ~docv:"MS" ~doc:"Simulated milliseconds.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Packet-level replay of an optimized scenario")
    Term.(
      const run $ topology_arg $ fraction_arg $ density_arg $ util_arg
      $ preset_arg $ seed_arg $ duration_arg $ scan_jobs_arg)

(* ------------------------------------------------------------------ *)
(* mtospf                                                             *)

let mtospf_cmd =
  let run topology seed =
    let spec = make_spec topology 0.3 0.1 seed in
    let inst = Scenario.make spec in
    let g = inst.Scenario.graph in
    let m = Dtr_graph.Graph.arc_count g in
    let rng = Dtr_util.Prng.create seed in
    let wh = Dtr_routing.Weights.random rng g in
    let wl = Dtr_routing.Weights.random rng g in
    let net = Dtr_mtospf.Network.create g ~weight_sets:[| wh; wl |] in
    let stats = Dtr_mtospf.Network.flood net in
    Printf.printf
      "flooded %d-router area (%d arcs, 2 topologies): %d rounds, %d messages, converged: %b\n"
      (Dtr_graph.Graph.node_count g) m stats.Dtr_mtospf.Network.rounds
      stats.Dtr_mtospf.Network.messages
      (Dtr_mtospf.Network.converged net);
    let update = Dtr_mtospf.Network.set_weight net ~topology:0 ~arc:0 ~weight:7 in
    Printf.printf "single weight change reflood: %d rounds, %d messages\n"
      update.Dtr_mtospf.Network.rounds update.Dtr_mtospf.Network.messages
  in
  Cmd.v
    (Cmd.info "mtospf" ~doc:"Flood a dual weight set through the MT-OSPF control plane")
    Term.(const run $ topology_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* inspect                                                            *)

let inspect_cmd =
  let run topology model fraction density util preset seed top scan_jobs
      weights_file explain explain_top json_out =
    let module Report = Dtr_routing.Report in
    let module Attribution = Dtr_routing.Attribution in
    let preset = with_scan_jobs preset scan_jobs in
    let spec = make_spec topology fraction density seed in
    let inst = Scenario.make spec in
    let inst = Scenario.scale_to_utilization inst ~target:util in
    let wh, wl, result =
      match weights_file with
      | Some path -> (
          (* Inspect a deployed weight setting as-is — no search. *)
          match Dtr_routing.Weights_io.load path with
          | Error msg -> failwith msg
          | Ok [| w |] ->
              ( w,
                w,
                Objective.evaluate model inst.Scenario.graph ~wh:w ~wl:w
                  ~th:inst.Scenario.th ~tl:inst.Scenario.tl )
          | Ok [| wh; wl |] ->
              ( wh,
                wl,
                Objective.evaluate model inst.Scenario.graph ~wh ~wl
                  ~th:inst.Scenario.th ~tl:inst.Scenario.tl )
          | Ok sets ->
              failwith
                (Printf.sprintf
                   "%s: expected 1 or 2 weight topologies, found %d" path
                   (Array.length sets)))
      | None ->
          let problem = Scenario.problem inst ~model in
          Printf.printf "optimizing DTR weights...\n%!";
          let report =
            Dtr_core.Dtr_search.run (Dtr_util.Prng.create seed) preset problem
          in
          let best = report.Dtr_core.Dtr_search.best in
          (best.Problem.wh, best.Problem.wl, best.Problem.result)
    in
    let eval = result.Dtr_routing.Objective.eval in
    let sla = result.Dtr_routing.Objective.sla in
    (* Every printed table is also collected for --json. *)
    let shown = ref [] in
    let show t =
      shown := t :: !shown;
      print_endline (Dtr_util.Table.to_string t)
    in
    show (Report.summary_table ?sla eval);
    show (Report.utilization_percentiles_table eval);
    show (Report.per_link_table ~top eval);
    show (Report.top_phi_table ~top eval);
    (* Single-link robustness of the inspected setting: one delta
       sweep against a live context. *)
    let ctx =
      Dtr_routing.Eval_ctx.create inst.Scenario.graph ~weights:[| wh; wl |]
        ~matrices:[| inst.Scenario.th; inst.Scenario.tl |]
    in
    let outcomes = Dtr_routing.Failure_sweep.sweep ~model ~th:inst.Scenario.th ctx in
    show
      (Report.robustness_table
         ~baseline:result.Dtr_routing.Objective.objective outcomes);
    (match (model, sla) with
    | Objective.Sla params, Some sla ->
        let node_name =
          match topology with
          | Scenario.Isp -> Dtr_topology.Isp.city_name
          | Scenario.Abilene -> Dtr_topology.Abilene.city_name
          | Scenario.Random_topo | Scenario.Power_law | Scenario.Waxman
          | Scenario.Transit_stub | Scenario.Large _ ->
              string_of_int
        in
        show (Report.per_pair_delay_table ~top ~node_name sla params)
    | _ -> ());
    (* Flow attribution: which destinations/pairs put the load on one
       link, and the hottest links with their dominant flows. *)
    (match explain with
    | None -> ()
    | Some spec ->
        let arc = parse_arc_spec inst.Scenario.graph spec in
        show (Attribution.destinations_table ~top ctx ~arc);
        show (Attribution.explain_table ~top ctx ~arc));
    (match explain_top with
    | None -> ()
    | Some k -> show (Attribution.hottest_table ~top:k ctx));
    match json_out with
    | None -> ()
    | Some path ->
        write_file path (tables_json (List.rev !shown));
        Dtr_core.Manifest.write
          ~path:(path ^ ".manifest.json")
          (Dtr_core.Manifest.to_json ~seed
             ~model:(Objective.model_name model)
             ~topology:(Scenario.topology_name topology)
             ~config:preset ~graph:inst.Scenario.graph ());
        Printf.printf "inspect tables written to %s (+.manifest.json)\n" path
  in
  let top_arg =
    Arg.(
      value
      & opt int 15
      & info [ "top" ] ~docv:"N" ~doc:"Rows per table.")
  in
  let weights_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "weights" ] ~docv:"FILE"
          ~doc:
            "Inspect this saved weight setting (1 topology = STR, 2 = \
             DTR) on the scenario instead of optimizing one.")
  in
  let explain_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"LINK"
          ~doc:
            "Explain one link's load: its top contributing destinations \
             (exact committed subtotals) and OD pairs (exact ECMP \
             shares) per class.  LINK is an arc id, SRC-DST or \
             SRC->DST.")
  in
  let explain_top_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "explain-top" ] ~docv:"K"
          ~doc:
            "Show the K costliest links by total Fortz cost with each \
             class's dominant OD pair.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write every printed table (titles, columns, rows) to \
             FILE as JSON, with a FILE.manifest.json provenance \
             record.")
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Print the network state of a weight setting: summary, \
          utilization percentiles, per-link and costliest-link tables, \
          per-pair SLA margins, per-link flow attribution")
    Term.(
      const run $ topology_arg $ model_arg $ fraction_arg $ density_arg
      $ util_arg $ preset_arg $ seed_arg $ top_arg $ scan_jobs_arg
      $ weights_arg $ explain_arg $ explain_top_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* diff                                                               *)

(* A saved weight file as a (wh, wl) pair: one topology seeds both
   classes (STR), two are W_H and W_L (DTR). *)
let load_weight_pair path =
  match Dtr_routing.Weights_io.load path with
  | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
  | Ok [| w |] -> (w, w)
  | Ok [| wh; wl |] -> (wh, wl)
  | Ok sets ->
      failwith
        (Printf.sprintf "%s: expected 1 or 2 weight topologies, found %d" path
           (Array.length sets))

let diff_cmd =
  let run topology model fraction density util seed jobs top weights json_out
      =
    let module Diff = Dtr_routing.Diff in
    let path_a, path_b =
      match weights with
      | [ a; b ] -> (a, b)
      | _ -> failwith "pass exactly two --weights FILEs (before and after)"
    in
    let spec = make_spec topology fraction density seed in
    let inst = Scenario.make spec in
    let inst = Scenario.scale_to_utilization inst ~target:util in
    let g = inst.Scenario.graph in
    let matrices = [| inst.Scenario.th; inst.Scenario.tl |] in
    let wha, wla = load_weight_pair path_a in
    let whb, wlb = load_weight_pair path_b in
    let ctx_a = Dtr_routing.Eval_ctx.create g ~weights:[| wha; wla |] ~matrices in
    let ctx_b = Dtr_routing.Eval_ctx.create g ~weights:[| whb; wlb |] ~matrices in
    let sla =
      match model with
      | Objective.Sla params -> Some (params, inst.Scenario.th)
      | Objective.Load -> None
    in
    let d = Diff.compute ~jobs ?sla ctx_a ctx_b in
    let reconv = Diff.reconvergence ctx_a ctx_b in
    print_endline (Dtr_util.Table.to_string (Diff.summary_table d));
    if Diff.is_empty d then print_endline "no difference: the settings route identically\n"
    else print_endline (Dtr_util.Table.to_string (Diff.changed_arcs_table ~top ctx_a d));
    print_endline (Dtr_util.Table.to_string (Diff.reconvergence_table reconv));
    match json_out with
    | None -> ()
    | Some path ->
        write_file path (Diff.to_json ~reconv d);
        Dtr_core.Manifest.write
          ~path:(path ^ ".manifest.json")
          (Dtr_core.Manifest.to_json ~seed
             ~model:(Objective.model_name model)
             ~topology:(Scenario.topology_name topology)
             ~graph:g ());
        Printf.printf "diff written to %s (+.manifest.json)\n" path
  in
  let weights_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "weights" ] ~docv:"FILE"
          ~doc:
            "Weight setting to compare; give the option twice (before, \
             then after).  Each FILE holds 1 (STR) or 2 (DTR) \
             topologies.")
  in
  let top_arg =
    Arg.(
      value
      & opt int 20
      & info [ "top" ] ~docv:"N" ~doc:"Rows of the per-arc diff table.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the diff (churn numbers, deltas, reconvergence \
             price) to FILE as JSON, with a FILE.manifest.json \
             provenance record.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two weight settings of one scenario: changed arcs, \
          per-class rerouted pairs and demand, traffic moved, \
          utilization/$(b,\\\\Phi)$/$(b,\\\\Lambda) deltas, and the MT-OSPF \
          reconvergence price of deploying the change as one batch")
    Term.(
      const run $ topology_arg $ model_arg $ fraction_arg $ density_arg
      $ util_arg $ seed_arg $ jobs_arg $ top_arg $ weights_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* report                                                             *)

let report_cmd =
  let run trace metrics manifest out weights topology model fraction density
      util seed top =
    let module Report_gen = Dtr_core.Report_gen in
    let module Report = Dtr_routing.Report in
    match Report_gen.load ?metrics ?manifest trace with
    | Error e -> failwith e
    | Ok r ->
        (* Optional final-state section: re-evaluate a saved weight
           setting on the scenario and append the inspect summary. *)
        let final_tables =
          match weights with
          | None -> []
          | Some path ->
              let spec = make_spec topology fraction density seed in
              let inst = Scenario.make spec in
              let inst = Scenario.scale_to_utilization inst ~target:util in
              let wh, wl = load_weight_pair path in
              let result =
                Objective.evaluate model inst.Scenario.graph ~wh ~wl
                  ~th:inst.Scenario.th ~tl:inst.Scenario.tl
              in
              let eval = result.Dtr_routing.Objective.eval in
              [
                Report.summary_table ?sla:result.Dtr_routing.Objective.sla eval;
                Report.top_phi_table ~top eval;
              ]
        in
        let markdown () =
          let b = Buffer.create 4096 in
          Buffer.add_string b (Report_gen.to_markdown r);
          if final_tables <> [] then begin
            Buffer.add_string b "## Final state\n\n";
            List.iter
              (fun t ->
                Buffer.add_string b "```\n";
                Buffer.add_string b (Dtr_util.Table.to_string t);
                Buffer.add_string b "```\n\n")
              final_tables
          end;
          Buffer.contents b
        in
        (match out with
        | None -> print_string (markdown ())
        | Some path ->
            if Filename.check_suffix path ".json" then
              write_file path (Report_gen.to_json r)
            else write_file path (markdown ());
            Printf.printf "report written to %s\n" path)
  in
  let trace_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"JSONL trace file (optimize --trace).")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Metrics snapshot (optimize --metrics FILE writes \
             FILE.json) — adds the profiler-span table.")
  in
  let manifest_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:
            "Manifest sidecar to embed verbatim as the provenance \
             section.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Write the report to FILE: Markdown, or JSON when FILE \
             ends in .json.  Default: Markdown on stdout.")
  in
  let weights_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "weights" ] ~docv:"FILE"
          ~doc:
            "Append a final-state section (inspect summary and \
             costliest links) by evaluating this saved weight setting \
             on the scenario given by --topology and friends.")
  in
  let top_arg =
    Arg.(
      value
      & opt int 10
      & info [ "top" ] ~docv:"N"
          ~doc:"Rows of the final-state costliest-links table.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Fold a JSONL search trace (plus optional metrics snapshot and \
          manifest) into one self-contained run report: convergence, \
          acceptance/diversification/memo rates by phase, wall-clock \
          per phase, restart outcomes")
    Term.(
      const run $ trace_arg $ metrics_arg $ manifest_arg $ out_arg
      $ weights_arg $ topology_arg $ model_arg $ fraction_arg $ density_arg
      $ util_arg $ seed_arg $ top_arg)

(* ------------------------------------------------------------------ *)
(* gen                                                                *)

let gen_cmd =
  let run preset_name list seed out dot =
    let module Large = Dtr_topology.Large in
    let module Graph = Dtr_graph.Graph in
    if list then begin
      Array.iter
        (fun p ->
          Printf.printf "%-8s %6d nodes  (%d PoPs)\n" p.Large.name
            (Large.node_count p) p.Large.pops)
        Large.presets;
      `Ok ()
    end
    else
      match preset_name with
      | None -> `Error (false, "pass a preset name (see --list)")
      | Some name -> (
          match Large.find name with
          | None ->
              `Error
                ( false,
                  Printf.sprintf "unknown preset: %s (expected one of: %s)"
                    name
                    (String.concat ", " (Large.names ())) )
          | Some p ->
              let root = Dtr_util.Prng.create seed in
              let topo_rng = Dtr_util.Prng.split root in
              let traffic_rng = Dtr_util.Prng.split root in
              let t0 = Unix.gettimeofday () in
              let g = Large.generate topo_rng p in
              let gen_s = Unix.gettimeofday () -. t0 in
              let n = Graph.node_count g in
              let m = Graph.arc_count g in
              let degs = Array.make n 0 in
              for a = 0 to m - 1 do
                degs.(Graph.src g a) <- degs.(Graph.src g a) + 1
              done;
              let dmin = Array.fold_left min max_int degs in
              let dmax = Array.fold_left max 0 degs in
              Printf.printf
                "%s: %d nodes, %d arcs, strongly connected: %b (%.2f s)\n"
                p.Large.name n m
                (Graph.is_strongly_connected g)
                gen_s;
              Printf.printf "out-degree: min %d, mean %.1f, max %d\n" dmin
                (float_of_int m /. float_of_int n)
                dmax;
              let pops = Large.pop_nodes g p in
              let tm =
                Dtr_traffic.Gravity.generate_pop traffic_rng ~n ~pops
                  Dtr_traffic.Gravity.default
              in
              let pairs = ref 0 and volume = ref 0. in
              Dtr_traffic.Matrix.iter tm (fun _ _ v ->
                  incr pairs;
                  volume := !volume +. v);
              Printf.printf
                "PoP gravity demand: %d PoPs, %d pairs, total volume %.0f\n"
                (Array.length pops) !pairs !volume;
              (match out with
              | Some path ->
                  Dtr_topology.Topo_io.save g path;
                  Printf.printf "saved to %s\n" path
              | None -> ());
              if dot then print_string (Graph.to_dot g);
              `Ok ())
  in
  let preset_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PRESET"
          ~doc:"Large-topology preset (ts-1k, ts-5k, ts-10k, pl-1k, pl-5k, pl-10k).")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List available presets.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Save the topology to a file.")
  in
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Print Graphviz output.")
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate a real-ISP-scale topology preset (1k-10k nodes) with its \
          PoP-level gravity demand and print summary statistics")
    Term.(
      ret (const run $ preset_arg $ list_arg $ seed_arg $ out_arg $ dot_arg))

(* ------------------------------------------------------------------ *)
(* bench                                                              *)

let bench_cmd =
  let run presets seed probes json_out search time_budget scan_jobs =
    let module Large_bench = Dtr_experiments.Large_bench in
    let module Search_bench = Dtr_experiments.Search_bench in
    let write_json to_json =
      match json_out with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc (to_json ()));
          Printf.printf "wrote %s\n" path
    in
    if search then begin
      (* Search tier: full STR + DTR runs per preset — default to the
         smallest preset only; 5k/10k are explicit opt-ins. *)
      let names = match presets with [] -> [ "ts-1k" ] | ps -> ps in
      let cfg =
        with_scan_jobs Dtr_core.Search_config.quick scan_jobs
      in
      let rows =
        List.concat_map
          (fun name ->
            match Dtr_topology.Large.find name with
            | None ->
                failwith
                  (Printf.sprintf "unknown large preset: %s (expected one \
                                   of: %s)"
                     name
                     (String.concat ", " (Dtr_topology.Large.names ())))
            | Some p ->
                Search_bench.run ~cfg ~seed ?time_budget
                  ~progress:(Printf.eprintf "%s\n%!")
                  ~model:Dtr_routing.Objective.Load p)
          names
      in
      print_endline (Dtr_util.Table.to_string (Search_bench.table rows));
      write_json (fun () -> Search_bench.to_json ~seed rows)
    end
    else begin
      let names =
        match presets with [] -> Dtr_topology.Large.names () | ps -> ps
      in
      let rows =
        Large_bench.run ~probes ~progress:(Printf.printf "%s\n%!") ~seed names
      in
      print_endline (Dtr_util.Table.to_string (Large_bench.table rows));
      write_json (fun () -> Large_bench.to_json ~seed ~probes rows)
    end
  in
  let presets_arg =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"PRESET"
          ~doc:
            "Large-topology presets to benchmark (default: all six, in \
             ascending node-count order).")
  in
  let probes_arg =
    Arg.(
      value
      & opt int Dtr_experiments.Large_bench.default_probes
      & info [ "probes" ] ~docv:"N"
          ~doc:"Timed single-weight-change probes per preset.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the rows and a provenance stamp to FILE as JSON.")
  in
  let search_arg =
    Arg.(
      value
      & flag
      & info [ "search" ]
          ~doc:
            "Benchmark the search loops instead of the evaluation \
             plumbing: run the STR and DTR searches (quick budget) on \
             each preset and report time-to-first-improvement and \
             iterations/sec — the BENCH_search_large.json tier.  \
             Defaults to ts-1k only; pass presets explicitly for the \
             5k/10k tiers.  --probes is ignored in this mode.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the large-topology benchmark tier: demand-only evaluation \
          contexts at 1k-10k nodes, full-eval time, probe latency \
          percentiles, evals/sec and peak RSS per preset — or, with \
          --search, the search loops themselves")
    Term.(
      const run $ presets_arg $ seed_arg $ probes_arg $ json_arg $ search_arg
      $ time_budget_arg $ scan_jobs_arg)

(* ------------------------------------------------------------------ *)
(* version                                                            *)

let version_cmd =
  let run () = print_endline (Dtr_core.Manifest.build_info ()) in
  Cmd.v
    (Cmd.info "version" ~doc:"Print version, source revision and build info")
    Term.(const run $ const ())

let main_cmd =
  let info =
    Cmd.info "dtr" ~version:Dtr_core.Manifest.version
      ~doc:"Dual-topology routing for service differentiation (CoNEXT 2007 reproduction)"
  in
  Cmd.group info
    [ topo_cmd; optimize_cmd; experiment_cmd; simulate_cmd; mtospf_cmd;
      inspect_cmd; diff_cmd; report_cmd; gen_cmd; bench_cmd; version_cmd ]

(* Exit codes: 0 success, 1 runtime failure (bad input file, invalid
   scenario, I/O error — one line on stderr), 2 usage error (Cmdliner
   already printed the diagnostic). *)
let () =
  try
    match Cmd.eval_value ~catch:false main_cmd with
    | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
    | Error _ -> exit 2
  with
  | Invalid_argument msg | Failure msg | Sys_error msg ->
      Printf.eprintf "dtr: error: %s\n" msg;
      exit 1
  | e ->
      Printf.eprintf "dtr: error: %s\n" (Printexc.to_string e);
      exit 1
