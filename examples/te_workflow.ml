(* End-to-end traffic-engineering workflow: everything an operator
   would do with this library, in one script.

     1. generate (or load) a topology and a two-class demand forecast
     2. optimize a dual-topology weight setting
     3. export the weights to a file (for the provisioning system)
     4. flood them through the MT-OSPF control plane and check that
        every router's forwarding state matches the optimizer's plan
     5. replay the demand packet-by-packet to confirm the predicted
        per-class service levels

   Run with:  dune exec examples/te_workflow.exe *)

module Prng = Dtr_util.Prng
module Graph = Dtr_graph.Graph
module Problem = Dtr_core.Problem
module Lexico = Dtr_cost.Lexico
module Sim = Dtr_netsim.Sim

let () =
  (* 1. Topology + forecast. *)
  let spec =
    {
      Dtr_experiments.Scenario.topology = Dtr_experiments.Scenario.Transit_stub;
      fraction = 0.30;
      hp = Dtr_experiments.Scenario.Random_density 0.10;
      seed = 12;
    }
  in
  let inst = Dtr_experiments.Scenario.make spec in
  let inst = Dtr_experiments.Scenario.scale_to_utilization inst ~target:0.65 in
  let g = inst.Dtr_experiments.Scenario.graph in
  Printf.printf "1. topology: %d nodes / %d arcs (transit-stub), target util 0.65\n%!"
    (Graph.node_count g) (Graph.arc_count g);

  (* 2. Optimize. *)
  let problem =
    Dtr_experiments.Scenario.problem inst ~model:Dtr_routing.Objective.Load
  in
  let report =
    Dtr_core.Dtr_search.run (Prng.create 1) Dtr_core.Search_config.quick problem
  in
  let sol = report.Dtr_core.Dtr_search.best in
  Printf.printf "2. optimized: PhiH=%.1f PhiL=%.1f (%d evaluations)\n%!"
    report.Dtr_core.Dtr_search.objective.Lexico.primary
    report.Dtr_core.Dtr_search.objective.Lexico.secondary
    report.Dtr_core.Dtr_search.evaluations;

  (* 3. Export. *)
  let path = Filename.temp_file "dtr_weights" ".txt" in
  Dtr_routing.Weights_io.save [| sol.Problem.wh; sol.Problem.wl |] path;
  let reloaded =
    match Dtr_routing.Weights_io.load path with
    | Ok sets -> sets
    | Error e -> failwith e
  in
  Printf.printf "3. weights exported to %s and reloaded (%d arcs, %d topologies)\n%!"
    path
    (Array.length reloaded.(0))
    (Array.length reloaded);
  Sys.remove path;

  (* 4. Deploy via MT-OSPF. *)
  let net = Dtr_mtospf.Network.create g ~weight_sets:reloaded in
  let stats = Dtr_mtospf.Network.flood net in
  let tables_ok =
    let reference = Dtr_graph.Spf.all_destinations g ~weights:reloaded.(0) in
    let local = Dtr_mtospf.Network.routing_table net ~router:0 ~topology:0 in
    Array.for_all2
      (fun (a : Dtr_graph.Spf.dag) (b : Dtr_graph.Spf.dag) ->
        a.Dtr_graph.Spf.dist = b.Dtr_graph.Spf.dist)
      reference local
  in
  Printf.printf
    "4. flooded in %d rounds / %d LSAs; router 0 agrees with the plan: %b\n%!"
    stats.Dtr_mtospf.Network.rounds stats.Dtr_mtospf.Network.messages tables_ok;

  (* 5. Validate with packets. *)
  let sim =
    Sim.run g ~wh:sol.Problem.wh ~wl:sol.Problem.wl
      ~th:inst.Dtr_experiments.Scenario.th ~tl:inst.Dtr_experiments.Scenario.tl
      { Sim.default_config with Sim.duration = 3000.; warmup = 300.; seed = 9 }
  in
  Printf.printf
    "5. packet replay: high mean delay %.3f ms (p95 %.3f), low mean %.3f ms (p95 %.3f)\n"
    sim.Sim.high.Sim.mean_delay sim.Sim.high.Sim.p95_delay
    sim.Sim.low.Sim.mean_delay sim.Sim.low.Sim.p95_delay;
  Printf.printf "   delivered: %d high / %d low packets; done.\n"
    sim.Sim.high.Sim.delivered sim.Sim.low.Sim.delivered
