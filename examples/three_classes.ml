(* Beyond the paper: three priority classes, three routing topologies.

   The paper evaluates two classes (DTR) but MT-OSPF supports many
   more.  This example runs gold / silver / bronze traffic on the ISP
   backbone and compares full multi-topology routing (one weight
   vector per class) against the single shared topology.

   Run with:  dune exec examples/three_classes.exe *)

module Prng = Dtr_util.Prng
module Graph = Dtr_graph.Graph
module Matrix = Dtr_traffic.Matrix
module Multi = Dtr_routing.Multi
module Mtr_search = Dtr_core.Mtr_search

let () =
  let g = Dtr_topology.Isp.generate () in
  let n = Graph.node_count g in
  let rng = Prng.create 21 in
  (* Bronze: gravity-model bulk.  Silver and gold: sparser premium
     demand carved out with the paper's volume model. *)
  let bronze = Dtr_traffic.Gravity.generate rng ~n Dtr_traffic.Gravity.default in
  let silver_pairs = Dtr_traffic.Highpri.random_pairs rng ~n ~density:0.15 in
  let silver =
    Dtr_traffic.Highpri.volumes rng ~low:bronze ~fraction:0.25 ~pairs:silver_pairs
  in
  let gold_pairs = Dtr_traffic.Highpri.random_pairs rng ~n ~density:0.05 in
  let gold =
    Dtr_traffic.Highpri.volumes rng ~low:bronze ~fraction:0.10 ~pairs:gold_pairs
  in
  (* Scale everything to ~60% average utilization under mid weights. *)
  let matrices = [| gold; silver; bronze |] in
  let mid = Array.make (Graph.arc_count g) 15 in
  let ref_eval =
    Multi.evaluate g ~weights:[| mid; mid; mid |] ~matrices
  in
  let factor = 0.6 /. Multi.avg_utilization ref_eval in
  let matrices = Array.map (fun m -> Matrix.scale m factor) matrices in
  let problem = Mtr_search.create_problem ~graph:g ~matrices in

  let cfg = Dtr_core.Search_config.quick in
  Printf.printf "optimizing 3 classes on %d-node backbone...\n%!" n;
  let str = Mtr_search.run_single_topology (Prng.create 1) cfg problem in
  let mtr = Mtr_search.run (Prng.create 2) cfg problem in

  let name = [| "gold"; "silver"; "bronze" |] in
  Printf.printf "\n%-8s %14s %14s %8s\n" "class" "STR cost" "MTR cost" "ratio";
  Array.iteri
    (fun k s ->
      let m = mtr.Mtr_search.objective.(k) in
      Printf.printf "%-8s %14.1f %14.1f %8.2f\n" name.(k) s m
        (if m > 0. then s /. m else 1.))
    str.Mtr_search.objective;
  Printf.printf
    "\nWith one topology per class, each lower class reclaims the\n\
     capacity the classes above it do not need on its own routes.\n"
