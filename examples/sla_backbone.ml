(* SLA-driven backbone engineering: an ISP sells premium transport with
   a 25 ms delay bound on the 16-node North-American backbone.  The
   example optimizes routing against the SLA cost (Eq. 4), then shows
   the per-pair delay budget and what the dual topology buys the
   best-effort class.

   Run with:  dune exec examples/sla_backbone.exe *)

module Prng = Dtr_util.Prng
module Scenario = Dtr_experiments.Scenario
module Objective = Dtr_routing.Objective
module Evaluate = Dtr_routing.Evaluate
module Problem = Dtr_core.Problem
module Lexico = Dtr_cost.Lexico

let () =
  let sla = Dtr_cost.Sla.default in
  Printf.printf "SLA: theta = %g ms, penalty = %g + %g per excess ms\n\n"
    sla.Dtr_cost.Sla.theta sla.Dtr_cost.Sla.a sla.Dtr_cost.Sla.b;
  let spec =
    {
      Scenario.topology = Scenario.Isp;
      fraction = 0.30;
      hp = Scenario.Random_density 0.15;
      seed = 9;
    }
  in
  let inst = Scenario.make spec in
  let inst = Scenario.scale_to_utilization inst ~target:0.6 in
  let model = Objective.Sla sla in
  let point =
    Dtr_experiments.Compare.run_point ~cfg:Dtr_core.Search_config.quick inst
      ~model ~target_util:0.6
  in
  let describe name (sol : Problem.solution) =
    match sol.Problem.result.Objective.sla with
    | None -> ()
    | Some s ->
        Printf.printf
          "%s: SLA violations = %d, worst pair delay = %.2f ms, Phi_L = %.4g\n"
          name s.Evaluate.violations s.Evaluate.worst_delay
          (Problem.objective sol).Lexico.secondary
  in
  describe "STR" point.Dtr_experiments.Compare.str.Dtr_core.Str_search.best;
  describe "DTR" point.Dtr_experiments.Compare.dtr.Dtr_core.Dtr_search.best;
  let dtr_sol = point.Dtr_experiments.Compare.dtr.Dtr_core.Dtr_search.best in
  (match dtr_sol.Problem.result.Objective.sla with
  | None -> ()
  | Some s ->
      print_endline "\nDTR premium-pair delays (worst five):";
      let sorted =
        List.sort
          (fun (_, _, a) (_, _, b) -> Float.compare b a)
          s.Evaluate.pair_delays
      in
      List.iteri
        (fun i (src, dst, d) ->
          if i < 5 then
            Printf.printf "  %-13s -> %-13s : %6.2f ms %s\n"
              (Dtr_topology.Isp.city_name src)
              (Dtr_topology.Isp.city_name dst)
              d
              (if d > sla.Dtr_cost.Sla.theta then "VIOLATED" else "ok"))
        sorted);
  Printf.printf
    "\nBest-effort (low-priority) cost ratio STR/DTR at this load: %.2f\n"
    point.Dtr_experiments.Compare.rl
