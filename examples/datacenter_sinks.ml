(* Data-center sink traffic (paper §5.2.3): a few "popular" high-degree
   nodes act as data centers exchanging high-priority traffic with many
   clients on a power-law topology.  The example contrasts Uniform
   client placement (clients everywhere) with Local placement (clients
   clustered around the sinks) and shows how placement changes what the
   dual topology is worth.

   Run with:  dune exec examples/datacenter_sinks.exe *)

module Scenario = Dtr_experiments.Scenario
module Highpri = Dtr_traffic.Highpri
module Objective = Dtr_routing.Objective

let run_placement placement name =
  let spec =
    {
      Scenario.topology = Scenario.Power_law;
      fraction = 0.20;
      hp = Scenario.Sinks { sinks = 3; density = 0.10; placement };
      seed = 5;
    }
  in
  let inst = Scenario.make spec in
  let point =
    Dtr_experiments.Compare.run_point ~cfg:Dtr_core.Search_config.quick inst
      ~model:Objective.Load ~target_util:0.6
  in
  Printf.printf
    "%-8s clients: avg util %.3f   RH = %.3f   RL = %.2f\n" name
    point.Dtr_experiments.Compare.measured_util
    point.Dtr_experiments.Compare.rh point.Dtr_experiments.Compare.rl;
  point.Dtr_experiments.Compare.rl

let () =
  let g =
    Dtr_topology.Power_law.generate (Dtr_util.Prng.create 5)
      Dtr_topology.Power_law.default
  in
  let sinks = Dtr_topology.Power_law.top_degree_nodes g 3 in
  Printf.printf "power-law topology: %d nodes; sinks (top degree): %s\n\n"
    (Dtr_graph.Graph.node_count g)
    (String.concat ", " (Array.to_list (Array.map string_of_int sinks)));
  let uniform_rl = run_placement Highpri.Uniform "Uniform" in
  let local_rl = run_placement Highpri.Local "Local" in
  Printf.printf
    "\nWhen clients sit next to the data centers (Local), single-topology\n\
     routing is almost as good as dual (RL = %.2f); spread the clients out\n\
     (Uniform) and the dual topology matters (RL = %.2f).\n"
    local_rl uniform_rl
