(* Deploying a DTR weight pair with multi-topology OSPF (RFC 4915).

   The DTR heuristic hands the operator two weight vectors; this
   example pushes them into a simulated MT-OSPF area, floods the LSAs,
   verifies that every router's per-topology forwarding state equals
   the global SPF the optimizer assumed, and reconverges around a link
   failure.

   Run with:  dune exec examples/mtospf_deployment.exe *)

module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Network = Dtr_mtospf.Network
module Problem = Dtr_core.Problem

let tables_agree g net ~topology ~weights =
  let reference = Spf.all_destinations g ~weights in
  let agree = ref true in
  for router = 0 to Graph.node_count g - 1 do
    let local = Network.routing_table net ~router ~topology in
    Array.iteri
      (fun dst (dag : Spf.dag) ->
        let want = reference.(dst) in
        for v = 0 to Graph.node_count g - 1 do
          let sort a =
            let a = Array.copy a in
            Array.sort compare a;
            a
          in
          if sort dag.Spf.next_arcs.(v) <> sort want.Spf.next_arcs.(v) then
            agree := false
        done)
      local
  done;
  !agree

let () =
  (* 1. Optimize a dual weight setting on the ISP backbone. *)
  let spec =
    {
      Dtr_experiments.Scenario.topology = Dtr_experiments.Scenario.Isp;
      fraction = 0.30;
      hp = Dtr_experiments.Scenario.Random_density 0.10;
      seed = 3;
    }
  in
  let inst = Dtr_experiments.Scenario.make spec in
  let inst = Dtr_experiments.Scenario.scale_to_utilization inst ~target:0.6 in
  let problem =
    Dtr_experiments.Scenario.problem inst ~model:Dtr_routing.Objective.Load
  in
  let report =
    Dtr_core.Dtr_search.run (Dtr_util.Prng.create 3)
      Dtr_core.Search_config.quick problem
  in
  let sol = report.Dtr_core.Dtr_search.best in
  let g = inst.Dtr_experiments.Scenario.graph in
  Printf.printf "optimized dual weights on %d-node backbone\n"
    (Graph.node_count g);

  (* 2. Flood them as two routing topologies. *)
  let net =
    Network.create g ~weight_sets:[| sol.Problem.wh; sol.Problem.wl |]
  in
  let stats = Network.flood net in
  Printf.printf "initial flooding: %d rounds, %d LSA transmissions\n"
    stats.Network.rounds stats.Network.messages;
  Printf.printf "LSDBs converged: %b\n" (Network.converged net);

  (* 3. Every router's forwarding state matches the optimizer's SPF. *)
  Printf.printf "high-priority topology tables agree with global SPF: %b\n"
    (tables_agree g net ~topology:0 ~weights:sol.Problem.wh);
  Printf.printf "low-priority topology tables agree with global SPF: %b\n"
    (tables_agree g net ~topology:1 ~weights:sol.Problem.wl);

  (* 4. Fail one link (both directions) and reconverge. *)
  let arc = 0 in
  let rev =
    match
      Graph.find_arc g ~src:(Graph.arc g arc).Graph.dst
        ~dst:(Graph.arc g arc).Graph.src
    with
    | Some id -> id
    | None -> assert false
  in
  let s1 = Network.fail_arc net ~arc in
  let s2 = Network.fail_arc net ~arc:rev in
  Printf.printf
    "failed link %s - %s: reconvergence %d+%d rounds, %d+%d messages, converged: %b\n"
    (Dtr_topology.Isp.city_name (Graph.arc g arc).Graph.src)
    (Dtr_topology.Isp.city_name (Graph.arc g arc).Graph.dst)
    s1.Network.rounds s2.Network.rounds s1.Network.messages
    s2.Network.messages (Network.converged net);

  (* 5. Routers keep distinct per-class routes around the failure. *)
  let table0 = Network.routing_table net ~router:0 ~topology:0 in
  let reachable =
    Array.for_all
      (fun (dag : Spf.dag) ->
        Array.for_all
          (fun v ->
            v = dag.Spf.dst
            || dag.Spf.dist.(v) <> Dtr_graph.Dijkstra.unreachable)
          (Array.init (Graph.node_count g) Fun.id))
      table0
  in
  Printf.printf "all destinations still reachable after failure: %b\n"
    reachable
