(* Why not just minimize J = alpha * Phi_H + Phi_L?  (paper §3.3.1)

   On the 3-node triangle of Fig. 1, the joint-cost optimum flips from
   the lexicographic solution to a "priority inversion" between
   alpha = 35 and alpha = 30: the high-priority class loses 50% so the
   low-priority class can gain 81%.  No single alpha works across
   configurations — which is the argument for lexicographic
   optimization plus a second routing topology.

   Run with:  dune exec examples/joint_cost_pitfall.exe *)

let () =
  let table = Dtr_experiments.Fig1_joint.run ~alphas:[ 35.; 34.; 32.; 30. ] in
  print_string (Dtr_util.Table.to_string table);
  let h35, l35 = Dtr_experiments.Fig1_joint.optimum_for_alpha ~alpha:35. in
  let h30, l30 = Dtr_experiments.Fig1_joint.optimum_for_alpha ~alpha:30. in
  Printf.printf
    "\nalpha 35 -> 30: Phi_L improves by %.0f%% but Phi_H degrades by %.0f%%\n\
     (the paper's 81%% / 50%% priority inversion).\n"
    ((l35 -. l30) /. l35 *. 100.)
    ((h30 -. h35) /. h35 *. 100.)
