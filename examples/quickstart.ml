(* Quickstart: build a small two-class scenario, optimize it with both
   STR and DTR, and print the resulting costs.

   Run with:  dune exec examples/quickstart.exe *)

module Prng = Dtr_util.Prng
module Graph = Dtr_graph.Graph
module Matrix = Dtr_traffic.Matrix
module Lexico = Dtr_cost.Lexico
module Problem = Dtr_core.Problem

let () =
  (* 1. A topology: the bundled 16-node ISP backbone. *)
  let g = Dtr_topology.Isp.generate () in
  Printf.printf "topology: %d nodes, %d arcs\n" (Graph.node_count g)
    (Graph.arc_count g);

  (* 2. Traffic: gravity-model low-priority demand plus high-priority
     demand on 10%% of the SD pairs, 30%% of total volume. *)
  let rng = Prng.create 42 in
  let n = Graph.node_count g in
  let tl = Dtr_traffic.Gravity.generate rng ~n Dtr_traffic.Gravity.default in
  let pairs = Dtr_traffic.Highpri.random_pairs rng ~n ~density:0.10 in
  let th = Dtr_traffic.Highpri.volumes rng ~low:tl ~fraction:0.30 ~pairs in

  (* 3. Scale demand so the network runs at ~60%% average utilization. *)
  let problem0 =
    Problem.create ~graph:g ~th ~tl ~model:Dtr_routing.Objective.Load
  in
  let mid = Array.make (Graph.arc_count g) 15 in
  let ref_sol = Problem.eval_str problem0 ~w:mid in
  let u0 =
    Dtr_routing.Evaluate.avg_utilization
      ref_sol.Problem.result.Dtr_routing.Objective.eval
  in
  let factor = 0.6 /. u0 in
  let th = Matrix.scale th factor and tl = Matrix.scale tl factor in

  (* 4. Optimize: STR (one weight per link) vs DTR (one per class). *)
  let problem =
    Problem.create ~graph:g ~th ~tl ~model:Dtr_routing.Objective.Load
  in
  let cfg = Dtr_core.Search_config.quick in
  let str = Dtr_core.Str_search.run (Prng.create 1) cfg problem in
  let dtr = Dtr_core.Dtr_search.run (Prng.create 2) cfg problem in

  let show name (o : Lexico.t) =
    Printf.printf "%s:  Phi_H = %10.1f   Phi_L = %10.1f\n" name o.Lexico.primary
      o.Lexico.secondary
  in
  show "STR" str.Dtr_core.Str_search.objective;
  show "DTR" dtr.Dtr_core.Dtr_search.objective;
  Printf.printf
    "\nDTR matches STR on high-priority cost (ratio %.2f) and improves\n\
     low-priority cost by a factor of %.1f.\n"
    (str.Dtr_core.Str_search.objective.Lexico.primary
    /. dtr.Dtr_core.Dtr_search.objective.Lexico.primary)
    (str.Dtr_core.Str_search.objective.Lexico.secondary
    /. dtr.Dtr_core.Dtr_search.objective.Lexico.secondary)
