(** Serialization of (dual) weight settings, so optimized weights can
    be saved, diffed and deployed.

    Format (line oriented, [#] comments allowed):
    {v
    arcs <m> topologies <t>
    w <arc-id> <w_topo0> [<w_topo1> ...]
    ...
    v}
    Every arc id in [0, m) must appear exactly once. *)

val to_string : int array array -> string
(** [to_string sets] serializes one or more weight vectors (all the
    same length).  @raise Invalid_argument on an empty set list or
    mismatched lengths. *)

val of_string : string -> (int array array, string) result
(** Parses and validates: every weight must lie in
    [[Weights.min_weight, Weights.max_weight]], every arc id in
    [[0, m)] exactly once, every row carrying [t] values.  Errors are
    prefixed ["line N:"] when attributable to one line, so a rejected
    file points at the offending row. *)

val save : int array array -> string -> unit
(** @raise Sys_error on I/O failure, [Invalid_argument] as
    {!to_string}. *)

val load : string -> (int array array, string) result
