module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Matrix = Dtr_traffic.Matrix
module Fortz = Dtr_cost.Fortz

type t = {
  graph : Graph.t;
  dags : Spf.dag array array;
  loads : float array array;
  capacity_seen : float array array;
  phi_per_arc : float array array;
  phi : float array;
}

let evaluate g ~weights ~matrices =
  let classes = Array.length weights in
  if classes < 1 then invalid_arg "Multi.evaluate: need at least one class";
  if Array.length matrices <> classes then
    invalid_arg "Multi.evaluate: weights/matrices length mismatch";
  Array.iter (fun w -> Weights.validate g w) weights;
  let n = Graph.node_count g in
  Array.iter
    (fun m ->
      if Matrix.size m <> n then invalid_arg "Multi.evaluate: matrix size mismatch")
    matrices;
  (* Share DAGs between physically identical weight vectors. *)
  let dags = Array.make classes [||] in
  for k = 0 to classes - 1 do
    let shared = ref None in
    for j = 0 to k - 1 do
      if !shared = None && weights.(j) == weights.(k) then shared := Some dags.(j)
    done;
    dags.(k) <-
      (match !shared with
      | Some d -> d
      | None -> Spf.all_destinations g ~weights:weights.(k))
  done;
  let loads =
    Array.init classes (fun k -> Loads.of_matrix g ~dags:dags.(k) matrices.(k))
  in
  let m = Graph.arc_count g in
  let caps = Graph.capacities g in
  let capacity_seen = Array.make_matrix classes m 0. in
  for a = 0 to m - 1 do
    capacity_seen.(0).(a) <- caps.(a)
  done;
  for k = 1 to classes - 1 do
    for a = 0 to m - 1 do
      capacity_seen.(k).(a) <-
        Float.max (capacity_seen.(k - 1).(a) -. loads.(k - 1).(a)) 0.
    done
  done;
  let phi_per_arc =
    Array.init classes (fun k ->
        Array.init m (fun a ->
            Fortz.phi ~load:loads.(k).(a) ~capacity:capacity_seen.(k).(a)))
  in
  let phi = Array.map (Array.fold_left ( +. ) 0.) phi_per_arc in
  { graph = g; dags; loads; capacity_seen; phi_per_arc; phi }

let class_count t = Array.length t.phi

let objective t = Array.copy t.phi

let compare_objective a b =
  if Array.length a <> Array.length b then
    invalid_arg "Multi.compare_objective: length mismatch";
  let rec go i =
    if i = Array.length a then 0
    else begin
      let c = Float.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
    end
  in
  go 0

let utilization t =
  let caps = Graph.capacities t.graph in
  Array.init (Array.length caps) (fun a ->
      let total = ref 0. in
      Array.iter (fun l -> total := !total +. l.(a)) t.loads;
      !total /. caps.(a))

let avg_utilization t = Dtr_util.Stats.mean (utilization t)
