(** Human-readable inspection of a two-class evaluation: per-link and
    per-pair tables for operators (and the CLI's [inspect] command). *)

val per_link_table :
  ?top:int -> Evaluate.t -> Dtr_util.Table.t
(** One row per arc — endpoints, capacity, per-class load, residual,
    total utilization, per-class Fortz cost — sorted by decreasing
    utilization.  [top] limits the row count (default: all). *)

val per_pair_delay_table :
  ?top:int ->
  ?node_name:(int -> string) ->
  Evaluate.sla ->
  Dtr_cost.Sla.params ->
  Dtr_util.Table.t
(** High-priority SD pairs sorted by decreasing expected delay, with
    their slack against the SLA bound θ (positive margin = headroom)
    and verdicts.  [node_name] renders endpoints (default: the node
    id). *)

val utilization_percentiles_table : Evaluate.t -> Dtr_util.Table.t
(** Distribution of per-link utilization (total and high-priority
    alone) at the p10/p25/p50/p75/p90/p95/p99/p100 order statistics —
    the load-balance view of a routing. *)

val top_phi_table : ?top:int -> Evaluate.t -> Dtr_util.Table.t
(** Links sorted by their total Fortz cost [Φ_{H,l} + Φ_{L,l}], with
    each link's share of the network-wide cost — where the objective
    is actually being paid.  [top] limits the row count. *)

val convergence_table :
  ?title:string -> (int * float array) list -> Dtr_util.Table.t
(** Render a best-so-far convergence curve — [(evaluations, objective
    vector)] points, e.g. from [Dtr_core.Trace.convergence] — one row
    per improvement, the objective components joined with [" / "]. *)

val summary_table : ?sla:Evaluate.sla -> Evaluate.t -> Dtr_util.Table.t
(** Aggregates: Φ_H, Φ_L, average/max utilization, overloaded-arc
    count (utilization > 1); with [?sla] also Λ, violation /
    unreachable-pair counts and the worst pair delay. *)

val robustness_table :
  baseline:Dtr_cost.Lexico.t ->
  Failure_sweep.outcome array ->
  Dtr_util.Table.t
(** Per-class single-link failure robustness of a weight setting: the
    no-failure cost against the mean finite and worst post-failure
    costs over a {!Failure_sweep} outcome array, plus the
    disconnecting-failure count (worst reads [inf] when positive —
    never an optimistic skip). *)
