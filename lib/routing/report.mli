(** Human-readable inspection of a two-class evaluation: per-link and
    per-pair tables for operators (and the CLI's [inspect] command). *)

val per_link_table :
  ?top:int -> Evaluate.t -> Dtr_util.Table.t
(** One row per arc — endpoints, capacity, per-class load, residual,
    total utilization, per-class Fortz cost — sorted by decreasing
    utilization.  [top] limits the row count (default: all). *)

val per_pair_delay_table :
  ?top:int ->
  ?node_name:(int -> string) ->
  Evaluate.sla ->
  Dtr_cost.Sla.params ->
  Dtr_util.Table.t
(** High-priority SD pairs sorted by decreasing expected delay, with
    their SLA verdicts.  [node_name] renders endpoints (default: the
    node id). *)

val convergence_table :
  ?title:string -> (int * float array) list -> Dtr_util.Table.t
(** Render a best-so-far convergence curve — [(evaluations, objective
    vector)] points, e.g. from [Dtr_core.Trace.convergence] — one row
    per improvement, the objective components joined with [" / "]. *)

val summary_table : Evaluate.t -> Dtr_util.Table.t
(** Aggregates: Φ_H, Φ_L, average/max utilization, overloaded-arc
    count (utilization > 1). *)
