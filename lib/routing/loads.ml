module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Dijkstra = Dtr_graph.Dijkstra
module Matrix = Dtr_traffic.Matrix

(* The even-split flow recursion shared by every consumer: walk
   order_desc (upstream nodes first, so all transit inflow has arrived
   by the time a node is reached), split each node's flow evenly over
   its next-hop arcs, and report every (arc, share) to [on_arc] before
   forwarding it.  [flow] is mutated in place. *)
let propagate g ~dag ~flow ~on_arc =
  let dsts = Graph.dsts g in
  Array.iter
    (fun v ->
      let out = dag.Spf.next_arcs.(v) in
      let deg = Array.length out in
      if flow.(v) > 0. && deg > 0 then begin
        let share = flow.(v) /. float_of_int deg in
        Array.iter
          (fun id ->
            on_arc id share;
            let u = dsts.(id) in
            if u <> dag.Spf.dst then flow.(u) <- flow.(u) +. share)
          out
      end)
    dag.Spf.order_desc

let no_share _ _ = ()

let node_throughflow g ~dag ~demand_to_dst =
  let n = Graph.node_count g in
  if Array.length demand_to_dst <> n then
    invalid_arg "Loads.node_throughflow: demand length mismatch";
  let flow = Array.copy demand_to_dst in
  flow.(dag.Spf.dst) <- 0.;
  propagate g ~dag ~flow ~on_arc:no_share;
  flow

(* Arena variant: the caller owns [flow] (length >= n) and [contrib]
   (length >= m) and reuses them across destinations; both are fully
   reinitialized here, so stale contents never leak through.  Shares
   must land identically to {!destination_loads}: same propagate walk,
   same accumulation order. *)
let destination_loads_into g ~dag ~demand_to_dst ~flow ~contrib =
  let n = Graph.node_count g in
  if Array.length demand_to_dst <> n then
    invalid_arg "Loads.destination_loads_into: demand length mismatch";
  if Array.length flow < n || Array.length contrib < Graph.arc_count g then
    invalid_arg "Loads.destination_loads_into: scratch too small";
  Array.fill contrib 0 (Graph.arc_count g) 0.;
  Array.blit demand_to_dst 0 flow 0 n;
  flow.(dag.Spf.dst) <- 0.;
  propagate g ~dag ~flow ~on_arc:(fun id share ->
      contrib.(id) <- contrib.(id) +. share)

let destination_loads g ~dag ~demand_to_dst =
  let n = Graph.node_count g in
  if Array.length demand_to_dst <> n then
    invalid_arg "Loads.destination_loads: demand length mismatch";
  let contrib = Array.make (Graph.arc_count g) 0. in
  let flow = Array.make n 0. in
  destination_loads_into g ~dag ~demand_to_dst ~flow ~contrib;
  contrib

let destination_demand ?(drop_unroutable = false) ~dag tm =
  let n = Matrix.size tm in
  let t = dag.Spf.dst in
  let demand = Array.make n 0. in
  let any = ref false in
  (* Column walk in ascending source order: O(column entries) on a
     sparse matrix, and identical to the former full row scan (zero
     entries contributed nothing). *)
  Matrix.iter_col tm t (fun s r ->
      if s <> t then begin
        if dag.Spf.dist.(s) = Dijkstra.unreachable then begin
          if not drop_unroutable then
            invalid_arg (Printf.sprintf "Loads.of_matrix: no path %d -> %d" s t)
        end
        else begin
          demand.(s) <- r;
          any := true
        end
      end);
  if !any then Some demand else None

let of_matrix ?(drop_unroutable = false) g ~dags tm =
  let n = Graph.node_count g in
  if Matrix.size tm <> n then invalid_arg "Loads.of_matrix: size mismatch";
  if Array.length dags <> n then invalid_arg "Loads.of_matrix: dags length mismatch";
  let m = Graph.arc_count g in
  let loads = Array.make m 0. in
  for t = 0 to n - 1 do
    let dag = dags.(t) in
    if dag.Spf.dst <> t then invalid_arg "Loads.of_matrix: dag/destination mismatch";
    match destination_demand ~drop_unroutable ~dag tm with
    | None -> ()
    | Some demand ->
        let contrib = destination_loads g ~dag ~demand_to_dst:demand in
        for a = 0 to m - 1 do
          loads.(a) <- loads.(a) +. contrib.(a)
        done
  done;
  loads
