module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Dijkstra = Dtr_graph.Dijkstra
module Matrix = Dtr_traffic.Matrix

(* The even-split flow recursion shared by every consumer: walk
   order_desc (upstream nodes first, so all transit inflow has arrived
   by the time a node is reached), split each node's flow evenly over
   its next-hop arcs, and report every (arc, share) to [on_arc] before
   forwarding it.  [flow] is mutated in place. *)
let propagate g ~dag ~flow ~on_arc =
  Array.iter
    (fun v ->
      let out = dag.Spf.next_arcs.(v) in
      let deg = Array.length out in
      if flow.(v) > 0. && deg > 0 then begin
        let share = flow.(v) /. float_of_int deg in
        Array.iter
          (fun id ->
            on_arc id share;
            let u = (Graph.arc g id).dst in
            if u <> dag.Spf.dst then flow.(u) <- flow.(u) +. share)
          out
      end)
    dag.Spf.order_desc

let no_share _ _ = ()

let node_throughflow g ~dag ~demand_to_dst =
  let n = Graph.node_count g in
  if Array.length demand_to_dst <> n then
    invalid_arg "Loads.node_throughflow: demand length mismatch";
  let flow = Array.copy demand_to_dst in
  flow.(dag.Spf.dst) <- 0.;
  propagate g ~dag ~flow ~on_arc:no_share;
  flow

let destination_loads g ~dag ~demand_to_dst =
  let n = Graph.node_count g in
  if Array.length demand_to_dst <> n then
    invalid_arg "Loads.destination_loads: demand length mismatch";
  let contrib = Array.make (Graph.arc_count g) 0. in
  let flow = Array.copy demand_to_dst in
  flow.(dag.Spf.dst) <- 0.;
  propagate g ~dag ~flow ~on_arc:(fun id share ->
      contrib.(id) <- contrib.(id) +. share);
  contrib

let destination_demand ?(drop_unroutable = false) ~dag tm =
  let n = Matrix.size tm in
  let t = dag.Spf.dst in
  let demand = Array.make n 0. in
  let any = ref false in
  for s = 0 to n - 1 do
    if s <> t then begin
      let r = Matrix.get tm s t in
      if r > 0. then begin
        if dag.Spf.dist.(s) = Dijkstra.unreachable then begin
          if not drop_unroutable then
            invalid_arg (Printf.sprintf "Loads.of_matrix: no path %d -> %d" s t)
        end
        else begin
          demand.(s) <- r;
          any := true
        end
      end
    end
  done;
  if !any then Some demand else None

let of_matrix ?(drop_unroutable = false) g ~dags tm =
  let n = Graph.node_count g in
  if Matrix.size tm <> n then invalid_arg "Loads.of_matrix: size mismatch";
  if Array.length dags <> n then invalid_arg "Loads.of_matrix: dags length mismatch";
  let m = Graph.arc_count g in
  let loads = Array.make m 0. in
  for t = 0 to n - 1 do
    let dag = dags.(t) in
    if dag.Spf.dst <> t then invalid_arg "Loads.of_matrix: dag/destination mismatch";
    match destination_demand ~drop_unroutable ~dag tm with
    | None -> ()
    | Some demand ->
        let contrib = destination_loads g ~dag ~demand_to_dst:demand in
        for a = 0 to m - 1 do
          loads.(a) <- loads.(a) +. contrib.(a)
        done
  done;
  loads
