module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Dijkstra = Dtr_graph.Dijkstra
module Matrix = Dtr_traffic.Matrix

let node_throughflow g ~dag ~demand_to_dst =
  let n = Graph.node_count g in
  if Array.length demand_to_dst <> n then
    invalid_arg "Loads.node_throughflow: demand length mismatch";
  let flow = Array.copy demand_to_dst in
  flow.(dag.Spf.dst) <- 0.;
  (* order_desc: upstream (far) nodes first, so by the time we reach a
     node all its transit inflow has arrived. *)
  Array.iter
    (fun v ->
      let out = dag.Spf.next_arcs.(v) in
      let deg = Array.length out in
      if flow.(v) > 0. && deg > 0 then begin
        let share = flow.(v) /. float_of_int deg in
        Array.iter
          (fun id ->
            let u = (Graph.arc g id).dst in
            if u <> dag.Spf.dst then flow.(u) <- flow.(u) +. share)
          out
      end)
    dag.Spf.order_desc;
  flow

let of_matrix ?(drop_unroutable = false) g ~dags tm =
  let n = Graph.node_count g in
  if Matrix.size tm <> n then invalid_arg "Loads.of_matrix: size mismatch";
  if Array.length dags <> n then invalid_arg "Loads.of_matrix: dags length mismatch";
  let loads = Array.make (Graph.arc_count g) 0. in
  for t = 0 to n - 1 do
    let dag = dags.(t) in
    if dag.Spf.dst <> t then invalid_arg "Loads.of_matrix: dag/destination mismatch";
    (* Gather demand towards t; detect unroutable pairs. *)
    let demand = Array.make n 0. in
    let any = ref false in
    for s = 0 to n - 1 do
      if s <> t then begin
        let r = Matrix.get tm s t in
        if r > 0. then begin
          if dag.Spf.dist.(s) = Dijkstra.unreachable then begin
            if not drop_unroutable then
              invalid_arg
                (Printf.sprintf "Loads.of_matrix: no path %d -> %d" s t)
          end
          else begin
            demand.(s) <- r;
            any := true
          end
        end
      end
    done;
    if !any then begin
      let flow = Array.copy demand in
      flow.(t) <- 0.;
      Array.iter
        (fun v ->
          let out = dag.Spf.next_arcs.(v) in
          let deg = Array.length out in
          if flow.(v) > 0. && deg > 0 then begin
            let share = flow.(v) /. float_of_int deg in
            Array.iter
              (fun id ->
                loads.(id) <- loads.(id) +. share;
                let u = (Graph.arc g id).dst in
                if u <> t then flow.(u) <- flow.(u) +. share)
              out
          end)
        dag.Spf.order_desc
    end
  done;
  loads
