(** Two-class network evaluation under strict priority queueing.

    High-priority traffic is routed on weights [wh] and sees full link
    capacities; low-priority traffic is routed on weights [wl] and sees
    only the residual capacity [max(C_l − H_l, 0)] (paper §3).  STR is
    the special case [wh == wl] (detected physically, computing the
    shortest-path DAGs only once). *)

type t = {
  graph : Dtr_graph.Graph.t;
  dags_h : Dtr_graph.Spf.dag array;  (** per-destination DAGs for [wh] *)
  dags_l : Dtr_graph.Spf.dag array;  (** per-destination DAGs for [wl] *)
  h_loads : float array;  (** per-arc high-priority load [H_l] *)
  l_loads : float array;  (** per-arc low-priority load [L_l] *)
  residual : float array;  (** [max(C_l − H_l, 0)] *)
  phi_h_per_arc : float array;  (** [Φ_{H,l}(H_l, C_l)] *)
  phi_l_per_arc : float array;  (** [Φ_{L,l}(L_l, C̃_l)] *)
  phi_h : float;  (** [Φ_H = Σ_l Φ_{H,l}] *)
  phi_l : float;  (** [Φ_L = Σ_l Φ_{L,l}] *)
}

val evaluate :
  Dtr_graph.Graph.t ->
  wh:int array ->
  wl:int array ->
  th:Dtr_traffic.Matrix.t ->
  tl:Dtr_traffic.Matrix.t ->
  t
(** @raise Invalid_argument on invalid weights, size mismatches, or
    unroutable positive demand. *)

val assemble :
  Dtr_graph.Graph.t ->
  dags_h:Dtr_graph.Spf.dag array ->
  h_loads:float array ->
  dags_l:Dtr_graph.Spf.dag array ->
  l_loads:float array ->
  t
(** Build the evaluation from precomputed per-class routings; lets a
    local-search pass that mutates only one class reuse the other
    class's shortest-path DAGs and loads.  The load arrays are not
    copied. *)

val utilization : t -> float array
(** Per-arc [(H_l + L_l) / C_l]. *)

val h_utilization : t -> float array
(** Per-arc [H_l / C_l]. *)

val avg_utilization : t -> float
(** Mean over arcs of {!utilization} — the paper's network-load
    x-axis. *)

val max_utilization : t -> float

type sla = {
  arc_delay : float array;  (** Eq. (3) per-arc mean delay, ms *)
  pair_delays : (int * int * float) list;
      (** expected end-to-end delays of all high-priority SD pairs;
          [infinity] for a pair with no path *)
  lambda : float;  (** [Λ = Σ penalties]; [infinity] iff a pair is severed *)
  violations : int;  (** number of pairs exceeding the bound *)
  unreachable : int;  (** number of pairs with no path (counted among
                          [violations] too) *)
  worst_delay : float;  (** max pair delay; 0. with no pairs *)
}

val evaluate_sla : Dtr_cost.Sla.params -> t -> th:Dtr_traffic.Matrix.t -> sla
(** SLA view over high-priority pairs (entries of [th] with positive
    demand), using the high-priority DAGs and loads from [t].  A
    disconnected pair does not raise: it contributes an infinite
    penalty (so any reconnecting routing compares strictly better) and
    is counted in [unreachable]. *)
