module Graph = Dtr_graph.Graph
module Prng = Dtr_util.Prng

let min_weight = 1

let max_weight = 30

let validate g w =
  if Array.length w <> Graph.arc_count g then
    invalid_arg "Weights.validate: length mismatch";
  Array.iter
    (fun x ->
      if x < min_weight || x > max_weight then
        invalid_arg "Weights.validate: weight out of bounds")
    w

let uniform g w =
  if w < min_weight || w > max_weight then
    invalid_arg "Weights.uniform: weight out of bounds";
  Array.make (Graph.arc_count g) w

let random rng g =
  Array.init (Graph.arc_count g) (fun _ -> Prng.int_incl rng min_weight max_weight)

let inverse_capacity g =
  let caps = Graph.capacities g in
  let cmax = Array.fold_left Float.max 0. caps in
  Array.map
    (fun c ->
      let w = int_of_float (Float.round (float_of_int min_weight *. cmax /. c)) in
      Stdlib.min max_weight (Stdlib.max min_weight w))
    caps

let perturb rng ~fraction w =
  if fraction < 0. || fraction > 1. then
    invalid_arg "Weights.perturb: fraction out of range";
  let n = Array.length w in
  let count = int_of_float (Float.ceil (fraction *. float_of_int n)) in
  let count = Stdlib.min count n in
  let result = Array.copy w in
  let idx = Prng.sample_without_replacement rng count n in
  Array.iter
    (fun i -> result.(i) <- Prng.int_incl rng min_weight max_weight)
    idx;
  result

let step w ~arc ~delta =
  if arc < 0 || arc >= Array.length w then invalid_arg "Weights.step: bad arc id";
  let result = Array.copy w in
  result.(arc) <- Stdlib.min max_weight (Stdlib.max min_weight (w.(arc) + delta));
  result
