module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Spf_delta = Dtr_graph.Spf_delta
module Dijkstra = Dtr_graph.Dijkstra
module Matrix = Dtr_traffic.Matrix
module Fortz = Dtr_cost.Fortz
module Metrics = Dtr_util.Metrics

let m_probes =
  Metrics.counter ~help:"Incremental probes built by evaluation contexts."
    "dtr_eval_probes_total"

let m_commits =
  Metrics.counter ~help:"Probes committed into evaluation contexts."
    "dtr_eval_commits_total"

(* Clone/sync traffic scales with --scan-jobs (one clone per worker,
   one sync per parallel scan per worker), so it is honest but
   scheduling-dependent. *)
let m_clones =
  Metrics.counter ~det:false ~help:"Evaluation-context clones (one per scan worker)."
    "dtr_eval_clones"

let m_syncs =
  Metrics.counter ~det:false
    ~help:"Evaluation-context resynchronizations (blit-only, per parallel scan)."
    "dtr_eval_syncs"

(* Preallocated projection arena: scratch rows sized once from the
   graph and reused by every probe.  [a_flow]/[a_contrib] back the
   per-destination load re-projection (the new contribution row is
   snapshot-copied only when it actually differs from the committed
   one); [a_touched] marks moved arcs and is swept back to all-false
   through the touched list before a probe returns, so it is clean by
   invariant on entry.  Each clone owns a private arena — scan workers
   probe concurrently on separate domains. *)
type arena = {
  a_flow : float array;  (* node count *)
  a_contrib : float array;  (* arc count *)
  a_touched : bool array;  (* arc count; all-false between probes *)
}

let arena g =
  {
    a_flow = Array.make (Graph.node_count g) 0.;
    a_contrib = Array.make (Graph.arc_count g) 0.;
    a_touched = Array.make (Graph.arc_count g) false;
  }

(* Which destinations a context carries DAGs for: [All] is the classic
   mode; [Demand] builds DAGs only for destinations that actually sink
   positive demand in some member class of the group — at 10k nodes
   all-destination DAG storage alone is gigabytes, while a PoP-gravity
   matrix sinks demand at a few dozen nodes.  Loads and Φ are bitwise
   identical in both modes: destinations without demand contribute
   empty rows either way. *)
type dest_mode = All | Demand

type t = {
  graph : Graph.t;
  class_group : int array;  (* class -> group of classes sharing a weight vector *)
  group_classes : int array array;  (* group -> member classes, ascending *)
  group_w : int array array;  (* group -> current weight vector *)
  group_dags : Spf.dag array array;  (* group -> per-destination DAGs *)
  demand : float array array array;
      (* class -> dest -> per-source demand; [||] when the destination
         has no routable positive demand (fixed for the ctx lifetime:
         reachability is weight-independent) *)
  contrib : float array array array;
      (* class -> dest -> per-arc load contribution; [||] mirrors demand *)
  loads : float array array;  (* class -> per-arc totals *)
  capacity_seen : float array array;  (* class -> residual capacity cascade *)
  phi_per_arc : float array array;
  mutable phi : float array;
  ws : Spf_delta.workspace;
  arena : arena;
  active : bool array array option;
      (* group -> demand-bearing destinations; None in All mode *)
  mutable generation : int;
  mutable probes : int;
  mutable commits : int;
}

let class_count t = Array.length t.class_group

let fold_row = Array.fold_left ( +. ) 0.

let create ?dags ?(dest_mode = All) g ~weights ~matrices =
  let classes = Array.length weights in
  if classes < 1 then invalid_arg "Eval_ctx.create: need at least one class";
  if Array.length matrices <> classes then
    invalid_arg "Eval_ctx.create: weights/matrices length mismatch";
  Array.iter (fun w -> Weights.validate g w) weights;
  let n = Graph.node_count g in
  Array.iter
    (fun m ->
      if Matrix.size m <> n then
        invalid_arg "Eval_ctx.create: matrix size mismatch")
    matrices;
  (* Group classes by physically shared weight vectors, as
     Multi.evaluate does: aliased classes are re-routed together. *)
  let class_group = Array.make classes (-1) in
  let groups = ref [] and group_count = ref 0 in
  for k = 0 to classes - 1 do
    let rec find j =
      if j = k then begin
        let gi = !group_count in
        incr group_count;
        groups := (gi, k) :: !groups;
        gi
      end
      else if weights.(j) == weights.(k) then class_group.(j)
      else find (j + 1)
    in
    class_group.(k) <- find 0
  done;
  let group_count = !group_count in
  let group_classes =
    Array.init group_count (fun gi ->
        let members = ref [] in
        for k = classes - 1 downto 0 do
          if class_group.(k) = gi then members := k :: !members
        done;
        Array.of_list !members)
  in
  let group_w =
    Array.init group_count (fun gi -> Array.copy weights.(group_classes.(gi).(0)))
  in
  let ws = Spf_delta.workspace () in
  (* Demand mode: a destination is active for a group when any member
     class sinks positive demand there (a pure matrix property, so it
     can be computed before any SPF runs). *)
  let active =
    match dest_mode with
    | All -> None
    | Demand ->
        Some
          (Array.init group_count (fun gi ->
               let act = Array.make n false in
               Array.iter
                 (fun k -> Matrix.iter matrices.(k) (fun _ t _ -> act.(t) <- true))
                 group_classes.(gi);
               act))
  in
  let group_dags =
    Array.init group_count (fun gi ->
        let first = group_classes.(gi).(0) in
        match dags with
        | Some d when Array.length d.(first) = n -> d.(first)
        | Some _ -> invalid_arg "Eval_ctx.create: dags length mismatch"
        | None -> (
            match active with
            | None -> Spf.all_destinations ~ws g ~weights:group_w.(gi)
            | Some act ->
                Spf.for_destinations ~ws g ~weights:group_w.(gi)
                  ~active:act.(gi)))
  in
  let m = Graph.arc_count g in
  let demand =
    Array.init classes (fun k ->
        let dags = group_dags.(class_group.(k)) in
        Array.init n (fun t ->
            match Loads.destination_demand ~dag:dags.(t) matrices.(k) with
            | Some d -> d
            | None -> [||]))
  in
  let contrib =
    Array.init classes (fun k ->
        let dags = group_dags.(class_group.(k)) in
        Array.init n (fun t ->
            let dem = demand.(k).(t) in
            if Array.length dem = 0 then [||]
            else Loads.destination_loads g ~dag:dags.(t) ~demand_to_dst:dem))
  in
  (* Totals as the ascending-destination sum of per-destination
     subtotals — the same association Loads.of_matrix uses, so they are
     bitwise identical to a from-scratch evaluation. *)
  let loads =
    Array.init classes (fun k ->
        let row = Array.make m 0. in
        for t = 0 to n - 1 do
          let c = contrib.(k).(t) in
          if Array.length c > 0 then
            for a = 0 to m - 1 do
              row.(a) <- row.(a) +. c.(a)
            done
        done;
        row)
  in
  let caps = Graph.capacities g in
  let capacity_seen = Array.make classes [||] in
  capacity_seen.(0) <- caps;
  for k = 1 to classes - 1 do
    capacity_seen.(k) <-
      Array.init m (fun a ->
          Float.max (capacity_seen.(k - 1).(a) -. loads.(k - 1).(a)) 0.)
  done;
  let phi_per_arc =
    Array.init classes (fun k ->
        Array.init m (fun a ->
            Fortz.phi ~load:loads.(k).(a) ~capacity:capacity_seen.(k).(a)))
  in
  let phi = Array.map fold_row phi_per_arc in
  {
    graph = g;
    class_group;
    group_classes;
    group_w;
    group_dags;
    demand;
    contrib;
    loads;
    capacity_seen;
    phi_per_arc;
    phi;
    ws;
    arena = arena g;
    active;
    generation = 0;
    probes = 0;
    commits = 0;
  }

(* Commits replace rows (inner arrays) and never mutate them, so a
   clone only needs its own mutable spine: the outer group/class/dest-
   indexed arrays whose slots commits overwrite, plus a private SPF
   workspace.  Rows, DAGs, demand, the matrices-derived structure and
   the graph are shared with the original.  Clones back a scan
   worker's probes; they are resynchronized from the original with
   [sync] (pure blits) instead of being rebuilt. *)
let clone t =
  Metrics.incr_counter m_clones;
  {
    t with
    group_w = Array.copy t.group_w;
    group_dags = Array.copy t.group_dags;
    contrib = Array.map Array.copy t.contrib;
    loads = Array.copy t.loads;
    capacity_seen = Array.copy t.capacity_seen;
    phi_per_arc = Array.copy t.phi_per_arc;
    phi = Array.copy t.phi;
    ws = Spf_delta.workspace ();
    arena = arena t.graph;
  }

let sync ~src ~dst =
  if
    src.graph != dst.graph
    || Array.length src.group_w <> Array.length dst.group_w
    || class_count src <> class_count dst
  then invalid_arg "Eval_ctx.sync: incompatible contexts";
  Metrics.incr_counter m_syncs;
  Array.blit src.group_w 0 dst.group_w 0 (Array.length src.group_w);
  Array.blit src.group_dags 0 dst.group_dags 0 (Array.length src.group_dags);
  for k = 0 to class_count src - 1 do
    Array.blit src.contrib.(k) 0 dst.contrib.(k) 0 (Array.length src.contrib.(k))
  done;
  Array.blit src.loads 0 dst.loads 0 (Array.length src.loads);
  Array.blit src.capacity_seen 0 dst.capacity_seen 0 (Array.length src.capacity_seen);
  Array.blit src.phi_per_arc 0 dst.phi_per_arc 0 (Array.length src.phi_per_arc);
  Array.blit src.phi 0 dst.phi 0 (Array.length src.phi);
  dst.generation <- src.generation

type probe = {
  generation : int;
  group : int;
  p_w : int array;
  p_dags : Spf.dag array;
  p_dirty : int list;
  p_touched : int list;  (* arcs whose load contribution moved *)
  p_contrib : (int * int * float array) list;  (* class, dest, contribution *)
  p_loads : (int * float array) list;  (* class, full row *)
  p_capacity : (int * float array) list;
  p_phi_rows : (int * float array) list;
  p_phi : float array;
}

let probe_phi p = Array.copy p.p_phi

let probe_touched p = p.p_touched

(* Shared patch tail of {!probe} and {!fail_probe}: given re-projected
   per-destination contributions (tagged by class) and the arcs whose
   contribution moved, rebuild the affected load totals, the residual-
   capacity cascade and the Fortz rows.  Every touched arc is re-summed
   over all destinations in ascending order and every touched Φ row is
   re-folded whole, reproducing the from-scratch association exactly.
   Classes without overrides are untouched, so callers may iterate all
   classes or just one group's — the result is identical. *)
let patch_rows t ~touched_list ~p_contrib =
  let n = Graph.node_count t.graph in
  let classes = class_count t in
  let p_loads = ref [] in
  for k = classes - 1 downto 0 do
    let overrides = List.filter (fun (k', _, _) -> k' = k) p_contrib in
    if overrides <> [] then begin
      let view = Array.copy t.contrib.(k) in
      List.iter (fun (_, dst, nc) -> view.(dst) <- nc) overrides;
      let row = Array.copy t.loads.(k) in
      List.iter
        (fun a ->
          let s = ref 0. in
          for dst = 0 to n - 1 do
            let c = view.(dst) in
            if Array.length c > 0 then s := !s +. c.(a)
          done;
          row.(a) <- !s)
        touched_list;
      p_loads := (k, row) :: !p_loads
    end
  done;
  let p_loads = !p_loads in
  let load_row k =
    match List.assoc_opt k p_loads with Some r -> r | None -> t.loads.(k)
  in
  (* Residual-capacity cascade and Fortz costs, patched downward from
     the highest-priority class whose load moved (an H change reshapes
     the residual every lower class is charged against). *)
  let kmin = List.fold_left (fun acc (k, _) -> min acc k) classes p_loads in
  let p_capacity = ref [] and p_phi_rows = ref [] in
  let p_phi = Array.copy t.phi in
  if kmin < classes then begin
    let cap_rows = Array.make classes [||] in
    for k = 0 to classes - 1 do
      cap_rows.(k) <- t.capacity_seen.(k)
    done;
    for k = kmin + 1 to classes - 1 do
      let row = Array.copy t.capacity_seen.(k) in
      let above_cap = cap_rows.(k - 1) in
      let above_load = load_row (k - 1) in
      List.iter
        (fun a -> row.(a) <- Float.max (above_cap.(a) -. above_load.(a)) 0.)
        touched_list;
      cap_rows.(k) <- row;
      p_capacity := (k, row) :: !p_capacity
    done;
    for k = kmin to classes - 1 do
      let loads_k = load_row k in
      let caps_k = cap_rows.(k) in
      let row = Array.copy t.phi_per_arc.(k) in
      List.iter
        (fun a -> row.(a) <- Fortz.phi ~load:loads_k.(a) ~capacity:caps_k.(a))
        touched_list;
      p_phi_rows := (k, row) :: !p_phi_rows;
      p_phi.(k) <- fold_row row
    done
  end;
  (p_loads, !p_capacity, !p_phi_rows, p_phi)

(* Re-project one dirty destination's flows through the arena scratch
   rows, mark every arc whose contribution moved, and snapshot-copy
   the new row only when it differs from the committed one — shares
   land identically to a fresh Loads.destination_loads, so the copies
   (and everything folded from them) stay bitwise-exact. *)
let reproject t ~dags ~touched_list ~p_contrib k dst =
  let dem = t.demand.(k).(dst) in
  if Array.length dem > 0 then begin
    let m = Graph.arc_count t.graph in
    Loads.destination_loads_into t.graph ~dag:dags.(dst) ~demand_to_dst:dem
      ~flow:t.arena.a_flow ~contrib:t.arena.a_contrib;
    let nc = t.arena.a_contrib in
    let oc = t.contrib.(k).(dst) in
    let touched = t.arena.a_touched in
    let changed = ref false in
    for a = 0 to m - 1 do
      if nc.(a) <> oc.(a) then begin
        changed := true;
        if not touched.(a) then begin
          touched.(a) <- true;
          touched_list := a :: !touched_list
        end
      end
    done;
    if !changed then p_contrib := (k, dst, Array.copy nc) :: !p_contrib
  end

(* Restore the arena's all-false touched invariant: only flags in the
   list were ever set. *)
let reset_touched t touched_list =
  List.iter (fun a -> t.arena.a_touched.(a) <- false) touched_list

let group_active t gi =
  match t.active with None -> None | Some act -> Some act.(gi)

let probe t ~klass ~changes =
  if klass < 0 || klass >= class_count t then
    invalid_arg "Eval_ctx.probe: class out of range";
  t.probes <- t.probes + 1;
  Metrics.incr_counter m_probes;
  let group = t.class_group.(klass) in
  let w = t.group_w.(group) in
  let spf_changes =
    List.filter_map
      (fun (arc, v) ->
        if arc < 0 || arc >= Graph.arc_count t.graph then
          invalid_arg "Eval_ctx.probe: arc out of range";
        if v < Weights.min_weight || v > Weights.max_weight then
          invalid_arg "Eval_ctx.probe: weight out of bounds";
        if w.(arc) = v then None
        else Some { Spf_delta.arc; before = w.(arc); after = v })
      changes
  in
  let new_w = Array.copy w in
  List.iter (fun c -> new_w.(c.Spf_delta.arc) <- c.Spf_delta.after) spf_changes;
  let p_dags, p_dirty =
    Spf_delta.update ~ws:t.ws ?active:(group_active t group) t.graph
      ~weights:new_w ~prev:t.group_dags.(group) ~changes:spf_changes
  in
  (* Re-project dirty destinations of every class in the group and mark
     the arcs whose contribution actually moved. *)
  let p_contrib = ref [] in
  let touched_list = ref [] in
  Array.iter
    (fun k ->
      List.iter (fun dst -> reproject t ~dags:p_dags ~touched_list ~p_contrib k dst) p_dirty)
    t.group_classes.(group);
  reset_touched t !touched_list;
  let touched_list = !touched_list in
  let p_contrib = !p_contrib in
  let p_loads, p_capacity, p_phi_rows, p_phi =
    patch_rows t ~touched_list ~p_contrib
  in
  {
    generation = t.generation;
    group;
    p_w = new_w;
    p_dags;
    p_dirty;
    p_touched = touched_list;
    p_contrib;
    p_loads;
    p_capacity;
    p_phi_rows;
    p_phi;
  }

let commit (t : t) (p : probe) =
  if p.generation <> t.generation then
    invalid_arg "Eval_ctx.commit: stale probe (context has moved on)";
  t.group_w.(p.group) <- p.p_w;
  t.group_dags.(p.group) <- p.p_dags;
  List.iter (fun (k, dst, c) -> t.contrib.(k).(dst) <- c) p.p_contrib;
  List.iter (fun (k, row) -> t.loads.(k) <- row) p.p_loads;
  List.iter (fun (k, row) -> t.capacity_seen.(k) <- row) p.p_capacity;
  List.iter (fun (k, row) -> t.phi_per_arc.(k) <- row) p.p_phi_rows;
  t.phi <- p.p_phi;
  t.generation <- t.generation + 1;
  t.commits <- t.commits + 1;
  Metrics.incr_counter m_commits

let abort _t _p = ()

(* ------------------------------------------------------------------ *)
(* Failure probes: evaluate the context's current weights with one or
   more arcs suppressed (a link failure), without touching committed
   state.  Unlike {!probe} a failure hits every topology at once, so
   the suppression delta runs through every group's DAGs; unlike
   weight probes the result may be infinite — a failure that severs a
   positive-demand pair cannot be priced by flow re-projection at all
   ([Loads.propagate] would silently drop the severed demand,
   reproducing the optimistic-cost bug one level down), so severed
   probes short-circuit to an infinite objective with the severed-pair
   count attached. *)

let m_fail_probes =
  Metrics.counter ~help:"Failure probes (link-failure delta evaluations)."
    "dtr_eval_fail_probes_total"

type failure = {
  f_unreachable : int;  (* severed positive-demand (class, src, dst) pairs *)
  f_dirty : int;  (* dirty destinations summed over groups *)
  f_group_dags : Spf.dag array array;  (* group -> post-failure DAGs *)
  f_phi_rows : float array array;  (* class -> post-failure Fortz row *)
  f_phi : float array;  (* class -> post-failure Φ; all ∞ when severed *)
}

let failure_unreachable f = f.f_unreachable

let failure_dirty f = f.f_dirty

let failure_phi f = Array.copy f.f_phi

let failure_dags t f k =
  if k < 0 || k >= class_count t then
    invalid_arg "Eval_ctx.failure_dags: class out of range";
  f.f_group_dags.(t.class_group.(k))

let failure_phi_row f k =
  if k < 0 || k >= Array.length f.f_phi_rows then
    invalid_arg "Eval_ctx.failure_phi_row: class out of range";
  if f.f_unreachable > 0 then
    invalid_arg "Eval_ctx.failure_phi_row: disconnecting failure has no rows";
  f.f_phi_rows.(k)

let fail_probe t ~arcs =
  if arcs = [] then invalid_arg "Eval_ctx.fail_probe: no arcs";
  List.iter
    (fun a ->
      if a < 0 || a >= Graph.arc_count t.graph then
        invalid_arg "Eval_ctx.fail_probe: arc out of range")
    arcs;
  Metrics.incr_counter m_fail_probes;
  let g = t.graph in
  let n = Graph.node_count g in
  let classes = class_count t in
  let groups = Array.length t.group_w in
  let group_dags = Array.make groups [||] in
  let group_dirty = Array.make groups [] in
  for gi = 0 to groups - 1 do
    let w = t.group_w.(gi) in
    let changes =
      List.map
        (fun arc ->
          { Spf_delta.arc; before = w.(arc); after = Dijkstra.suppressed })
        arcs
    in
    let new_w = Array.copy w in
    List.iter (fun a -> new_w.(a) <- Dijkstra.suppressed) arcs;
    let dags, dirty =
      Spf_delta.update ~ws:t.ws ?active:(group_active t gi) g ~weights:new_w
        ~prev:t.group_dags.(gi) ~changes
    in
    group_dags.(gi) <- dags;
    group_dirty.(gi) <- dirty
  done;
  let f_dirty =
    Array.fold_left (fun acc l -> acc + List.length l) 0 group_dirty
  in
  (* Severed positive-demand pairs.  Only dirty destinations can change
     reachability, and demand rows were fixed against the no-failure
     topology, so a positive entry at a now-unreachable source is
     exactly a pair this failure cuts off. *)
  let unreachable = ref 0 in
  for k = 0 to classes - 1 do
    let dags = group_dags.(t.class_group.(k)) in
    List.iter
      (fun dst ->
        let dem = t.demand.(k).(dst) in
        if Array.length dem > 0 then begin
          let dist = dags.(dst).Spf.dist in
          for s = 0 to n - 1 do
            if dem.(s) > 0. && dist.(s) = Dijkstra.unreachable then
              incr unreachable
          done
        end)
      group_dirty.(t.class_group.(k))
  done;
  if !unreachable > 0 then
    {
      f_unreachable = !unreachable;
      f_dirty;
      f_group_dags = group_dags;
      f_phi_rows = [||];
      f_phi = Array.make classes Float.infinity;
    }
  else begin
    (* Same re-projection discipline as {!probe}, over every group. *)
    let p_contrib = ref [] in
    let touched_list = ref [] in
    for k = 0 to classes - 1 do
      let dags = group_dags.(t.class_group.(k)) in
      List.iter
        (fun dst -> reproject t ~dags ~touched_list ~p_contrib k dst)
        group_dirty.(t.class_group.(k))
    done;
    reset_touched t !touched_list;
    let _, _, p_phi_rows, p_phi =
      patch_rows t ~touched_list:!touched_list ~p_contrib:!p_contrib
    in
    let f_phi_rows =
      Array.init classes (fun k ->
          match List.assoc_opt k p_phi_rows with
          | Some r -> r
          | None -> t.phi_per_arc.(k))
    in
    {
      f_unreachable = 0;
      f_dirty;
      f_group_dags = group_dags;
      f_phi_rows;
      f_phi = p_phi;
    }
  end

let phi t = Array.copy t.phi

let graph t = t.graph

let weights t k =
  if k < 0 || k >= class_count t then invalid_arg "Eval_ctx.weights: class out of range";
  Array.copy t.group_w.(t.class_group.(k))

let weights_view t k =
  if k < 0 || k >= class_count t then
    invalid_arg "Eval_ctx.weights_view: class out of range";
  t.group_w.(t.class_group.(k))

let dags t k =
  if k < 0 || k >= class_count t then invalid_arg "Eval_ctx.dags: class out of range";
  t.group_dags.(t.class_group.(k))

let loads t k =
  if k < 0 || k >= class_count t then invalid_arg "Eval_ctx.loads: class out of range";
  t.loads.(k)

let phi_per_arc t k =
  if k < 0 || k >= class_count t then
    invalid_arg "Eval_ctx.phi_per_arc: class out of range";
  t.phi_per_arc.(k)

let check_class_dst t name k dst =
  if k < 0 || k >= class_count t then
    invalid_arg (Printf.sprintf "Eval_ctx.%s: class out of range" name);
  if dst < 0 || dst >= Graph.node_count t.graph then
    invalid_arg (Printf.sprintf "Eval_ctx.%s: destination out of range" name)

let contrib_view t ~klass ~dst =
  check_class_dst t "contrib_view" klass dst;
  t.contrib.(klass).(dst)

let demand_view t ~klass ~dst =
  check_class_dst t "demand_view" klass dst;
  t.demand.(klass).(dst)

let capacity_seen_view t k =
  if k < 0 || k >= class_count t then
    invalid_arg "Eval_ctx.capacity_seen_view: class out of range";
  t.capacity_seen.(k)

let probes t = t.probes

let commits t = t.commits

let shares_group t j k =
  j >= 0 && k >= 0 && j < class_count t && k < class_count t
  && t.class_group.(j) = t.class_group.(k)

let to_evaluate t =
  if class_count t <> 2 then invalid_arg "Eval_ctx.to_evaluate: need 2 classes";
  {
    Evaluate.graph = t.graph;
    dags_h = dags t 0;
    dags_l = dags t 1;
    h_loads = t.loads.(0);
    l_loads = t.loads.(1);
    residual = t.capacity_seen.(1);
    phi_h_per_arc = t.phi_per_arc.(0);
    phi_l_per_arc = t.phi_per_arc.(1);
    phi_h = t.phi.(0);
    phi_l = t.phi.(1);
  }

let to_multi t =
  {
    Multi.graph = t.graph;
    dags = Array.init (class_count t) (dags t);
    loads = Array.copy t.loads;
    capacity_seen = Array.copy t.capacity_seen;
    phi_per_arc = Array.copy t.phi_per_arc;
    phi = Array.copy t.phi;
  }
