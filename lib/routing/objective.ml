module Lexico = Dtr_cost.Lexico

type model = Load | Sla of Dtr_cost.Sla.params

type result = {
  objective : Lexico.t;
  eval : Evaluate.t;
  sla : Evaluate.sla option;
}

let of_eval model eval ~th ?sla () =
  match model with
  | Load ->
      {
        objective =
          Lexico.make ~primary:eval.Evaluate.phi_h ~secondary:eval.Evaluate.phi_l;
        eval;
        sla = None;
      }
  | Sla params ->
      let sla =
        match sla with
        | Some s -> s
        | None -> Evaluate.evaluate_sla params eval ~th
      in
      {
        objective =
          Lexico.make ~primary:sla.Evaluate.lambda ~secondary:eval.Evaluate.phi_l;
        eval;
        sla = Some sla;
      }

let evaluate model g ~wh ~wl ~th ~tl =
  let eval = Evaluate.evaluate g ~wh ~wl ~th ~tl in
  of_eval model eval ~th ()

let link_costs_h model r =
  let eval = r.eval in
  match model with
  | Load ->
      Array.init
        (Array.length eval.Evaluate.phi_h_per_arc)
        (fun i ->
          Lexico.make ~primary:eval.Evaluate.phi_h_per_arc.(i)
            ~secondary:eval.Evaluate.phi_l_per_arc.(i))
  | Sla _ -> (
      match r.sla with
      | None -> invalid_arg "Objective.link_costs_h: missing SLA evaluation"
      | Some sla ->
          Array.init
            (Array.length sla.Evaluate.arc_delay)
            (fun i ->
              Lexico.make ~primary:sla.Evaluate.arc_delay.(i)
                ~secondary:eval.Evaluate.phi_l_per_arc.(i)))

let link_costs_l r = Array.copy r.eval.Evaluate.phi_l_per_arc

let model_name = function Load -> "load" | Sla _ -> "sla"
