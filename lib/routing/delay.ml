module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Dijkstra = Dtr_graph.Dijkstra
module Sla = Dtr_cost.Sla

let arc_delays params g ~phi_h_per_arc =
  let m = Graph.arc_count g in
  if Array.length phi_h_per_arc <> m then
    invalid_arg "Delay.arc_delays: length mismatch";
  let caps = Graph.capacities g and dels = Graph.delays g in
  Array.init m (fun id ->
      Sla.link_delay params ~capacity:caps.(id) ~phi_h:phi_h_per_arc.(id)
        ~prop_delay:dels.(id))

let expected_to_destination g ~dag ~arc_delay =
  let n = Graph.node_count g in
  let xi = Array.make n Float.nan in
  xi.(dag.Spf.dst) <- 0.;
  (* Walk order_desc backwards: nearest nodes first, so every ECMP
     next hop already has its expectation. *)
  for i = Array.length dag.Spf.order_desc - 1 downto 0 do
    let v = dag.Spf.order_desc.(i) in
    let out = dag.Spf.next_arcs.(v) in
    let deg = Array.length out in
    assert (deg > 0);
    let acc = ref 0. in
    Array.iter
      (fun id -> acc := !acc +. arc_delay.(id) +. xi.(Graph.dst g id))
      out;
    xi.(v) <- !acc /. float_of_int deg
  done;
  xi

type pair_delay = Reachable of float | Unreachable

let pair_delays g ~dags ~arc_delay ~pairs =
  (* Compute expectations lazily, one destination at a time. *)
  let n = Graph.node_count g in
  let cache = Array.make n None in
  let xi_for t =
    match cache.(t) with
    | Some xi -> xi
    | None ->
        let xi = expected_to_destination g ~dag:dags.(t) ~arc_delay in
        cache.(t) <- Some xi;
        xi
  in
  List.map
    (fun (s, t) ->
      (* A disconnected pair is data, not a programming error: failure
         sweeps evaluate deliberately cut topologies, and one severed
         pair must not abort the whole sweep. *)
      if dags.(t).Spf.dist.(s) = Dijkstra.unreachable then (s, t, Unreachable)
      else (s, t, Reachable (xi_for t).(s)))
    pairs
