module Graph = Dtr_graph.Graph
module Table = Dtr_util.Table
module Stats = Dtr_util.Stats
module Sla = Dtr_cost.Sla

let per_link_table ?top (e : Evaluate.t) =
  let g = e.Evaluate.graph in
  let util = Evaluate.utilization e in
  let ids = Array.init (Graph.arc_count g) (fun i -> i) in
  Array.sort (fun a b -> Float.compare util.(b) util.(a)) ids;
  let limit = match top with Some t -> min t (Array.length ids) | None -> Array.length ids in
  let table =
    Table.create ~title:"Per-link report (sorted by total utilization)"
      ~columns:
        [ "arc"; "link"; "cap"; "H load"; "L load"; "residual"; "util"; "PhiH"; "PhiL" ]
  in
  for i = 0 to limit - 1 do
    let id = ids.(i) in
    let a = Graph.arc g id in
    Table.add_row table
      [
        string_of_int id;
        Printf.sprintf "%d->%d" a.Graph.src a.Graph.dst;
        Printf.sprintf "%.0f" a.Graph.capacity;
        Printf.sprintf "%.1f" e.Evaluate.h_loads.(id);
        Printf.sprintf "%.1f" e.Evaluate.l_loads.(id);
        Printf.sprintf "%.1f" e.Evaluate.residual.(id);
        Printf.sprintf "%.3f" util.(id);
        Printf.sprintf "%.1f" e.Evaluate.phi_h_per_arc.(id);
        Printf.sprintf "%.1f" e.Evaluate.phi_l_per_arc.(id);
      ]
  done;
  table

let per_pair_delay_table ?top ?(node_name = string_of_int) (sla : Evaluate.sla)
    params =
  let pairs =
    List.sort
      (fun (_, _, a) (_, _, b) -> Float.compare b a)
      sla.Evaluate.pair_delays
  in
  let limit =
    match top with Some t -> min t (List.length pairs) | None -> List.length pairs
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "High-priority pair delays (SLA bound %.1f ms)"
           params.Sla.theta)
      ~columns:[ "src"; "dst"; "delay (ms)"; "margin (ms)"; "verdict"; "penalty" ]
  in
  List.iteri
    (fun i (s, t, d) ->
      if i < limit then
        Table.add_row table
          (if d = Float.infinity then
             [ node_name s; node_name t; "-"; "-inf"; "UNREACHABLE"; "inf" ]
           else
             [
               node_name s;
               node_name t;
               Printf.sprintf "%.2f" d;
               (* Slack against the SLA bound: positive = headroom. *)
               Printf.sprintf "%+.2f" (params.Sla.theta -. d);
               (if Sla.violated params ~delay:d then "VIOLATED" else "ok");
               Printf.sprintf "%.1f" (Sla.penalty params ~delay:d);
             ]))
    pairs;
  table

let utilization_percentiles_table (e : Evaluate.t) =
  let util = Evaluate.utilization e in
  let h_util = Evaluate.h_utilization e in
  let table =
    Table.create ~title:"Link-utilization percentiles"
      ~columns:[ "percentile"; "total util"; "H util" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          (if Float.is_integer p then Printf.sprintf "p%.0f" p
           else Printf.sprintf "p%g" p);
          Printf.sprintf "%.3f" (Stats.percentile util p);
          Printf.sprintf "%.3f" (Stats.percentile h_util p);
        ])
    [ 10.; 25.; 50.; 75.; 90.; 95.; 99.; 100. ];
  table

let top_phi_table ?top (e : Evaluate.t) =
  let g = e.Evaluate.graph in
  let m = Graph.arc_count g in
  let cost id = e.Evaluate.phi_h_per_arc.(id) +. e.Evaluate.phi_l_per_arc.(id) in
  let total = e.Evaluate.phi_h +. e.Evaluate.phi_l in
  let ids = Array.init m (fun i -> i) in
  Array.sort (fun a b -> Float.compare (cost b) (cost a)) ids;
  let limit = match top with Some t -> min t m | None -> m in
  let table =
    Table.create ~title:"Costliest links (by total Fortz cost Phi_H + Phi_L)"
      ~columns:[ "arc"; "link"; "util"; "PhiH"; "PhiL"; "total"; "share" ]
  in
  let util = Evaluate.utilization e in
  for i = 0 to limit - 1 do
    let id = ids.(i) in
    let a = Graph.arc g id in
    Table.add_row table
      [
        string_of_int id;
        Printf.sprintf "%d->%d" a.Graph.src a.Graph.dst;
        Printf.sprintf "%.3f" util.(id);
        Printf.sprintf "%.1f" e.Evaluate.phi_h_per_arc.(id);
        Printf.sprintf "%.1f" e.Evaluate.phi_l_per_arc.(id);
        Printf.sprintf "%.1f" (cost id);
        (if total > 0. then Printf.sprintf "%.1f%%" (100. *. cost id /. total)
         else "-");
      ]
  done;
  table

let convergence_table ?(title = "Convergence (best objective vs. evaluations)")
    curve =
  let table =
    Table.create ~title ~columns:[ "evaluations"; "objective" ]
  in
  List.iter
    (fun (evals, obj) ->
      let obj_str =
        String.concat " / "
          (Array.to_list (Array.map (Printf.sprintf "%.6g") obj))
      in
      Table.add_row table [ string_of_int evals; obj_str ])
    curve;
  table

let summary_table ?sla (e : Evaluate.t) =
  let util = Evaluate.utilization e in
  let overloaded = Array.fold_left (fun acc u -> if u > 1. then acc + 1 else acc) 0 util in
  let table = Table.create ~title:"Evaluation summary" ~columns:[ "metric"; "value" ] in
  Table.add_row table [ "Phi_H"; Printf.sprintf "%.4g" e.Evaluate.phi_h ];
  Table.add_row table [ "Phi_L"; Printf.sprintf "%.4g" e.Evaluate.phi_l ];
  Table.add_row table
    [ "avg utilization"; Printf.sprintf "%.3f" (Evaluate.avg_utilization e) ];
  Table.add_row table
    [ "max utilization"; Printf.sprintf "%.3f" (Evaluate.max_utilization e) ];
  Table.add_row table [ "overloaded arcs (>1.0)"; string_of_int overloaded ];
  (match sla with
  | None -> ()
  | Some (s : Evaluate.sla) ->
      Table.add_row table [ "Lambda"; Printf.sprintf "%.4g" s.Evaluate.lambda ];
      Table.add_row table
        [ "SLA violations"; string_of_int s.Evaluate.violations ];
      Table.add_row table
        [ "unreachable pairs"; string_of_int s.Evaluate.unreachable ];
      Table.add_row table
        [ "worst pair delay (ms)"; Printf.sprintf "%.2f" s.Evaluate.worst_delay ]);
  table

let robustness_table ~baseline outcomes =
  let module Lexico = Dtr_cost.Lexico in
  let finite =
    Array.to_list outcomes
    |> List.filter Failure_sweep.is_finite
    |> List.map (fun (o : Failure_sweep.outcome) -> o.Failure_sweep.cost)
  in
  let infinite = Failure_sweep.infinite_count outcomes in
  let severed =
    Array.fold_left
      (fun n (o : Failure_sweep.outcome) -> n + o.Failure_sweep.unreachable_pairs)
      0 outcomes
  in
  let table =
    Table.create ~title:"Single-link failure robustness (same weights, no re-optimization)"
      ~columns:
        [
          "class";
          "no-failure cost";
          "mean finite post-failure";
          "worst post-failure";
          "disconnecting";
        ]
  in
  let disco =
    if infinite = 0 then "0"
    else Printf.sprintf "%d (%d pairs severed)" infinite severed
  in
  let row klass base select =
    let arr = Array.of_list (List.map select finite) in
    Table.add_row table
      [
        klass;
        Printf.sprintf "%.4g" base;
        Printf.sprintf "%.4g" (Stats.mean arr);
        (if infinite > 0 then "inf"
         else Printf.sprintf "%.4g" (Array.fold_left Float.max 0. arr));
        disco;
      ]
  in
  row "high" baseline.Lexico.primary (fun c -> c.Lexico.primary);
  row "low" baseline.Lexico.secondary (fun c -> c.Lexico.secondary);
  table
