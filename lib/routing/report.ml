module Graph = Dtr_graph.Graph
module Table = Dtr_util.Table
module Sla = Dtr_cost.Sla

let per_link_table ?top (e : Evaluate.t) =
  let g = e.Evaluate.graph in
  let util = Evaluate.utilization e in
  let ids = Array.init (Graph.arc_count g) (fun i -> i) in
  Array.sort (fun a b -> Float.compare util.(b) util.(a)) ids;
  let limit = match top with Some t -> min t (Array.length ids) | None -> Array.length ids in
  let table =
    Table.create ~title:"Per-link report (sorted by total utilization)"
      ~columns:
        [ "arc"; "link"; "cap"; "H load"; "L load"; "residual"; "util"; "PhiH"; "PhiL" ]
  in
  for i = 0 to limit - 1 do
    let id = ids.(i) in
    let a = Graph.arc g id in
    Table.add_row table
      [
        string_of_int id;
        Printf.sprintf "%d->%d" a.Graph.src a.Graph.dst;
        Printf.sprintf "%.0f" a.Graph.capacity;
        Printf.sprintf "%.1f" e.Evaluate.h_loads.(id);
        Printf.sprintf "%.1f" e.Evaluate.l_loads.(id);
        Printf.sprintf "%.1f" e.Evaluate.residual.(id);
        Printf.sprintf "%.3f" util.(id);
        Printf.sprintf "%.1f" e.Evaluate.phi_h_per_arc.(id);
        Printf.sprintf "%.1f" e.Evaluate.phi_l_per_arc.(id);
      ]
  done;
  table

let per_pair_delay_table ?top ?(node_name = string_of_int) (sla : Evaluate.sla)
    params =
  let pairs =
    List.sort
      (fun (_, _, a) (_, _, b) -> Float.compare b a)
      sla.Evaluate.pair_delays
  in
  let limit =
    match top with Some t -> min t (List.length pairs) | None -> List.length pairs
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "High-priority pair delays (SLA bound %.1f ms)"
           params.Sla.theta)
      ~columns:[ "src"; "dst"; "delay (ms)"; "verdict"; "penalty" ]
  in
  List.iteri
    (fun i (s, t, d) ->
      if i < limit then
        Table.add_row table
          (if d = Float.infinity then
             [ node_name s; node_name t; "-"; "UNREACHABLE"; "inf" ]
           else
             [
               node_name s;
               node_name t;
               Printf.sprintf "%.2f" d;
               (if Sla.violated params ~delay:d then "VIOLATED" else "ok");
               Printf.sprintf "%.1f" (Sla.penalty params ~delay:d);
             ]))
    pairs;
  table

let convergence_table ?(title = "Convergence (best objective vs. evaluations)")
    curve =
  let table =
    Table.create ~title ~columns:[ "evaluations"; "objective" ]
  in
  List.iter
    (fun (evals, obj) ->
      let obj_str =
        String.concat " / "
          (Array.to_list (Array.map (Printf.sprintf "%.6g") obj))
      in
      Table.add_row table [ string_of_int evals; obj_str ])
    curve;
  table

let summary_table (e : Evaluate.t) =
  let util = Evaluate.utilization e in
  let overloaded = Array.fold_left (fun acc u -> if u > 1. then acc + 1 else acc) 0 util in
  let table = Table.create ~title:"Evaluation summary" ~columns:[ "metric"; "value" ] in
  Table.add_row table [ "Phi_H"; Printf.sprintf "%.4g" e.Evaluate.phi_h ];
  Table.add_row table [ "Phi_L"; Printf.sprintf "%.4g" e.Evaluate.phi_l ];
  Table.add_row table
    [ "avg utilization"; Printf.sprintf "%.3f" (Evaluate.avg_utilization e) ];
  Table.add_row table
    [ "max utilization"; Printf.sprintf "%.3f" (Evaluate.max_utilization e) ];
  Table.add_row table [ "overloaded arcs (>1.0)"; string_of_int overloaded ];
  table
