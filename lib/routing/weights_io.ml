let to_string sets =
  if Array.length sets = 0 then invalid_arg "Weights_io.to_string: no vectors";
  let m = Array.length sets.(0) in
  Array.iter
    (fun w ->
      if Array.length w <> m then
        invalid_arg "Weights_io.to_string: length mismatch")
    sets;
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "arcs %d topologies %d\n" m (Array.length sets));
  for arc = 0 to m - 1 do
    Buffer.add_string buf (Printf.sprintf "w %d" arc);
    Array.iter (fun w -> Buffer.add_string buf (Printf.sprintf " %d" w.(arc))) sets;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let header = ref None in
  let rows = Hashtbl.create 64 in
  let error = ref None in
  List.iteri
    (fun lineno line ->
      if !error = None then begin
        let line = String.trim line in
        if line <> "" && line.[0] <> '#' then begin
          let parts = List.filter (( <> ) "") (String.split_on_char ' ' line) in
          match parts with
          | [ "arcs"; m; "topologies"; t ] -> (
              match (int_of_string_opt m, int_of_string_opt t) with
              | Some m, Some t when m > 0 && t > 0 -> header := Some (m, t)
              | _ ->
                  error := Some (Printf.sprintf "line %d: bad header" (lineno + 1)))
          | "w" :: arc :: values -> (
              match (int_of_string_opt arc, List.map int_of_string_opt values) with
              | Some arc, values when List.for_all Option.is_some values -> (
                  let values = List.map Option.get values in
                  if Hashtbl.mem rows arc then
                    error :=
                      Some (Printf.sprintf "line %d: duplicate arc %d" (lineno + 1) arc)
                  else
                    (* Range-check here, where the offending line is
                       known — a vector accepted by the parser must be
                       directly usable as a search starting point. *)
                    match
                      List.find_opt
                        (fun v -> v < Weights.min_weight || v > Weights.max_weight)
                        values
                    with
                    | Some v ->
                        error :=
                          Some
                            (Printf.sprintf
                               "line %d: weight %d out of range [%d, %d]"
                               (lineno + 1) v Weights.min_weight
                               Weights.max_weight)
                    | None -> Hashtbl.add rows arc values)
              | _ -> error := Some (Printf.sprintf "line %d: bad weights" (lineno + 1)))
          | _ ->
              error := Some (Printf.sprintf "line %d: unknown directive" (lineno + 1))
        end
      end)
    lines;
  match (!error, !header) with
  | Some e, _ -> Error e
  | None, None -> Error "missing header"
  | None, Some (m, t) ->
      if Hashtbl.length rows <> m then
        Error
          (Printf.sprintf "expected %d arcs, found %d" m (Hashtbl.length rows))
      else begin
        let sets = Array.make_matrix t m 0 in
        let bad = ref None in
        Hashtbl.iter
          (fun arc values ->
            if arc < 0 || arc >= m then bad := Some (Printf.sprintf "arc %d out of range" arc)
            else if List.length values <> t then
              bad := Some (Printf.sprintf "arc %d: expected %d weights" arc t)
            else
              List.iteri (fun topo v -> sets.(topo).(arc) <- v) values)
          rows;
        match !bad with Some e -> Error e | None -> Ok sets
      end

let save sets path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string sets))

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      of_string s
