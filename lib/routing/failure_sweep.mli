(** Single-link failure sweeps on the delta engine.

    OSPF/MT-OSPF reacts to a link failure by re-running SPF on the
    surviving topology with the {e same} weights — no re-optimization
    — so the post-failure cost of a weight setting is a pure function
    of the setting and the failed link.  This module prices every
    physical (bidirectional) link failure of a context's graph:

    {ul
    {- {!sweep} models each failure as an arc-suppression delta
       ({!Eval_ctx.fail_probe}): no reduced-graph rebuild, no weight
       remapping — only destinations whose shortest-path DAGs used a
       failed arc are re-screened and re-projected.}
    {- {!oracle_sweep} is the retained from-scratch specification
       (reduced graph + remapped weights); the delta sweep is bitwise
       identical to it, outcome for outcome, on both cost models.}}

    A failure that severs a positive-demand pair (in either class) is
    priced as an {e infinite} outcome carrying the severed-pair count —
    it stays in the cost list, so max/percentile post-failure
    statistics are never optimistic.  A failure that disconnects only
    demand-free node pairs stays finite.

    Outcomes are indexed by {!Dtr_graph.Graph.undirected_link_pairs}
    order and are identical for every pool width. *)

type outcome = {
  cost : Dtr_cost.Lexico.t;
      (** Post-failure objective under the sweep's cost model;
          {!Dtr_cost.Lexico.infinity} when the failure severs demand. *)
  unreachable_pairs : int;
      (** Severed positive-demand (class, src, dst) pairs; [0] exactly
          when [cost] is finite. *)
}

val is_finite : outcome -> bool

val sweep :
  ?pool:Dtr_util.Pool.t ->
  ?model:Objective.model ->
  th:Dtr_traffic.Matrix.t ->
  Eval_ctx.t ->
  outcome array
(** Price every single-link failure against the context's current
    weights via failure probes.  [th] is the high-priority matrix the
    SLA model walks delays for (ignored under [Load]).  The context is
    not modified.  With a pool of [j > 1] workers the link range is
    split into [j] contiguous chunks, each probed against a private
    clone; results are reassembled in link order, so the outcome array
    is identical for every pool width.
    @raise Invalid_argument unless the context has exactly 2 classes. *)

val fail_link :
  Dtr_graph.Graph.t ->
  link:int * int ->
  Dtr_graph.Graph.t * int array
(** Remove exactly the undirected link [(a, b)] — arc [a] and its
    reverse twin [b] as paired by
    {!Dtr_graph.Graph.undirected_link_pairs} ([a = b] for a one-way
    arc) — never any parallel arcs between the same endpoints.
    Returns the reduced graph and, for each surviving arc, its
    original arc id (for weight remapping).  The reduced graph may be
    disconnected; callers decide what that means.
    @raise Invalid_argument if the ids are out of range or not reverse
    twins of each other. *)

val oracle :
  model:Objective.model ->
  Dtr_graph.Graph.t ->
  wh:int array ->
  wl:int array ->
  th:Dtr_traffic.Matrix.t ->
  tl:Dtr_traffic.Matrix.t ->
  link:int * int ->
  outcome
(** From-scratch price of one link failure: build the reduced graph,
    remap the weights, count severed positive-demand pairs, and (when
    none) evaluate the model on the reduced graph.  The specification
    {!sweep} must match bitwise. *)

val oracle_sweep :
  ?pool:Dtr_util.Pool.t ->
  ?model:Objective.model ->
  Dtr_graph.Graph.t ->
  wh:int array ->
  wl:int array ->
  th:Dtr_traffic.Matrix.t ->
  tl:Dtr_traffic.Matrix.t ->
  outcome array
(** {!oracle} over every physical link, in
    {!Dtr_graph.Graph.undirected_link_pairs} order. *)

val penalty : ?top_k:int -> outcome array -> Dtr_cost.Lexico.t
(** Mean of the [top_k] worst {e finite} outcomes (default 1 = pure
    worst case), ordered by untolerated {!Dtr_cost.Lexico.compare}.
    Infinite outcomes are excluded: single-link reachability is
    weight-independent, so disconnecting failures price every weight
    setting identically and would drown the signal the search can
    move.  {!Dtr_cost.Lexico.zero} when no finite outcome exists.
    @raise Invalid_argument if [top_k < 1]. *)

val infinite_count : outcome array -> int
(** Outcomes priced as infinite (disconnecting failures). *)
