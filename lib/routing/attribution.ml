module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Table = Dtr_util.Table

type dest_entry = { de_dst : int; de_load : float }

type pair_entry = {
  pe_src : int;
  pe_dst : int;
  pe_demand : float;
  pe_load : float;
}

let check t name ~klass ~arc =
  if klass < 0 || klass >= Eval_ctx.class_count t then
    invalid_arg (Printf.sprintf "Attribution.%s: class out of range" name);
  if arc < 0 || arc >= Graph.arc_count (Eval_ctx.graph t) then
    invalid_arg (Printf.sprintf "Attribution.%s: arc out of range" name)

(* Ascending-destination sum of the committed contribution rows: the
   association Eval_ctx.create / patch_rows use, so the result is
   bitwise equal to the committed load total. *)
let link_load t ~klass ~arc =
  check t "link_load" ~klass ~arc;
  let n = Graph.node_count (Eval_ctx.graph t) in
  let s = ref 0. in
  for dst = 0 to n - 1 do
    let c = Eval_ctx.contrib_view t ~klass ~dst in
    if Array.length c > 0 then s := !s +. c.(arc)
  done;
  !s

let by_destination t ~klass ~arc =
  check t "by_destination" ~klass ~arc;
  let n = Graph.node_count (Eval_ctx.graph t) in
  let acc = ref [] in
  for dst = n - 1 downto 0 do
    let c = Eval_ctx.contrib_view t ~klass ~dst in
    if Array.length c > 0 && c.(arc) <> 0. then
      acc := { de_dst = dst; de_load = c.(arc) } :: !acc
  done;
  let entries = Array.of_list !acc in
  Array.sort
    (fun a b ->
      let c = Float.compare b.de_load a.de_load in
      if c <> 0 then c else compare a.de_dst b.de_dst)
    entries;
  entries

(* Backward ECMP-fraction pass for one (class, destination, arc):
   frac.(v) is the expected fraction of one unit of flow injected at
   [v] that crosses [arc] en route to the destination.  Nodes are
   finalized in increasing-distance order (the reverse of the DAG's
   order_desc), so every ECMP next hop — strictly closer to the
   destination — is final before its predecessors read it. *)
let fractions g (dag : Spf.dag) ~arc ~frac =
  let order = dag.Spf.order_desc in
  let dsts = Graph.dsts g in
  frac.(dag.Spf.dst) <- 0.;
  for i = Array.length order - 1 downto 0 do
    let v = order.(i) in
    let next = dag.Spf.next_arcs.(v) in
    let deg = Array.length next in
    let s = ref 0. in
    for j = 0 to deg - 1 do
      let e = next.(j) in
      s := !s +. ((if e = arc then 1. else 0.) +. frac.(dsts.(e)))
    done;
    frac.(v) <- (if deg = 0 then 0. else !s /. float_of_int deg)
  done

let by_pair t ~klass ~arc =
  check t "by_pair" ~klass ~arc;
  let g = Eval_ctx.graph t in
  let n = Graph.node_count g in
  let dags = Eval_ctx.dags t klass in
  let frac = Array.make n 0. in
  let acc = ref [] in
  for dst = n - 1 downto 0 do
    let c = Eval_ctx.contrib_view t ~klass ~dst in
    if Array.length c > 0 && c.(arc) <> 0. then begin
      let dem = Eval_ctx.demand_view t ~klass ~dst in
      let dag = dags.(dst) in
      (* Reset only the nodes the pass will write. *)
      Array.iter (fun v -> frac.(v) <- 0.) dag.Spf.order_desc;
      fractions g dag ~arc ~frac;
      for src = n - 1 downto 0 do
        if dem.(src) > 0. && frac.(src) > 0. then
          acc :=
            {
              pe_src = src;
              pe_dst = dst;
              pe_demand = dem.(src);
              pe_load = dem.(src) *. frac.(src);
            }
            :: !acc
      done
    end
  done;
  let entries = Array.of_list !acc in
  Array.sort
    (fun a b ->
      let c = Float.compare b.pe_load a.pe_load in
      if c <> 0 then c
      else
        let c = compare a.pe_src b.pe_src in
        if c <> 0 then c else compare a.pe_dst b.pe_dst)
    entries;
  entries

let class_label t k =
  if Eval_ctx.class_count t = 2 then if k = 0 then "H" else "L"
  else Printf.sprintf "class %d" k

let link_name g arc = Printf.sprintf "%d->%d" (Graph.src g arc) (Graph.dst g arc)

let share ~part ~total =
  if total > 0. then Printf.sprintf "%.1f%%" (100. *. part /. total) else "-"

let explain_table ?(top = 10) t ~arc =
  check t "explain_table" ~klass:0 ~arc;
  let g = Eval_ctx.graph t in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "Flow attribution for arc %d (%s): top OD pairs" arc
           (link_name g arc))
      ~columns:[ "class"; "pair"; "demand"; "on link"; "link load"; "share" ]
  in
  for k = 0 to Eval_ctx.class_count t - 1 do
    let total = link_load t ~klass:k ~arc in
    let pairs = by_pair t ~klass:k ~arc in
    let limit = min top (Array.length pairs) in
    if limit = 0 then
      Table.add_row table
        [ class_label t k; "(none)"; "-"; "0.0"; Printf.sprintf "%.1f" total; "-" ]
    else
      for i = 0 to limit - 1 do
        let p = pairs.(i) in
        Table.add_row table
          [
            class_label t k;
            Printf.sprintf "%d->%d" p.pe_src p.pe_dst;
            Printf.sprintf "%.1f" p.pe_demand;
            Printf.sprintf "%.1f" p.pe_load;
            Printf.sprintf "%.1f" total;
            share ~part:p.pe_load ~total;
          ]
      done
  done;
  table

let destinations_table ?(top = 10) t ~arc =
  check t "destinations_table" ~klass:0 ~arc;
  let g = Eval_ctx.graph t in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Flow attribution for arc %d (%s): top destinations (exact \
            subtotals)"
           arc (link_name g arc))
      ~columns:[ "class"; "dest"; "on link"; "link load"; "share" ]
  in
  for k = 0 to Eval_ctx.class_count t - 1 do
    let total = link_load t ~klass:k ~arc in
    let dests = by_destination t ~klass:k ~arc in
    let limit = min top (Array.length dests) in
    if limit = 0 then
      Table.add_row table
        [ class_label t k; "(none)"; "0.0"; Printf.sprintf "%.1f" total; "-" ]
    else
      for i = 0 to limit - 1 do
        let d = dests.(i) in
        Table.add_row table
          [
            class_label t k;
            string_of_int d.de_dst;
            Printf.sprintf "%.1f" d.de_load;
            Printf.sprintf "%.1f" total;
            share ~part:d.de_load ~total;
          ]
      done
  done;
  table

let hottest_table ?(top = 10) t =
  let g = Eval_ctx.graph t in
  let m = Graph.arc_count g in
  let classes = Eval_ctx.class_count t in
  let cost a =
    let s = ref 0. in
    for k = 0 to classes - 1 do
      s := !s +. (Eval_ctx.phi_per_arc t k).(a)
    done;
    !s
  in
  let total_cost = ref 0. in
  for a = 0 to m - 1 do
    total_cost := !total_cost +. cost a
  done;
  let ids = Array.init m (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = Float.compare (cost b) (cost a) in
      if c <> 0 then c else compare a b)
    ids;
  let caps = Graph.capacities g in
  let columns =
    [ "arc"; "link"; "util"; "Phi"; "share" ]
    @ List.init classes (fun k ->
          Printf.sprintf "top %s flow" (class_label t k))
  in
  let table =
    Table.create
      ~title:
        "Hottest links by total Fortz cost, with dominant flows \
         (--explain-top)"
      ~columns
  in
  let limit = min top m in
  for i = 0 to limit - 1 do
    let a = ids.(i) in
    let load = ref 0. in
    for k = 0 to classes - 1 do
      load := !load +. (Eval_ctx.loads t k).(a)
    done;
    let util = if caps.(a) > 0. then !load /. caps.(a) else 0. in
    let flows =
      List.init classes (fun k ->
          let pairs = by_pair t ~klass:k ~arc:a in
          if Array.length pairs = 0 then "-"
          else
            let p = pairs.(0) in
            Printf.sprintf "%d->%d (%.1f)" p.pe_src p.pe_dst p.pe_load)
    in
    Table.add_row table
      ([
         string_of_int a;
         link_name g a;
         Printf.sprintf "%.3f" util;
         Printf.sprintf "%.1f" (cost a);
         share ~part:(cost a) ~total:!total_cost;
       ]
      @ flows)
  done;
  table
