(** Weight-diff churn engine: compare two settings of the same problem
    and report exactly what a deployment would move.

    Operators accept a weight change only if they can see what
    reroutes and what the transition costs.  Given two evaluation
    contexts of the same problem (same graph, same matrices), this
    module computes, per class:

    - the changed arcs (weight before/after);
    - the rerouted OD pairs — a pair (s, t) counts as rerouted when
      the ECMP next-hop structure its flow traverses differs between
      the two settings, detected exactly by diffing per-destination
      DAG membership and propagating "uses an affected node" flags
      backward through both DAGs;
    - the traffic moved, [Σ_a |Δload_a|] (each unit of rerouted flow
      counts once where it left and once where it landed);
    - the Φ / utilization deltas (and Λ under the SLA model);

    plus the MT-OSPF reconvergence price of deploying the diff as one
    batch ({!reconvergence}, via {!Dtr_mtospf.Network.apply_changes}).

    Everything is a pure function of the two committed states:
    results are identical for every [jobs] value (per-destination
    work is folded back in ascending destination order). *)

type class_diff = {
  cd_changed_arcs : (int * int * int) list;
      (** (arc, weight before, weight after), ascending by arc *)
  cd_rerouted_pairs : int;
  cd_total_pairs : int;  (** positive-demand OD pairs of the class *)
  cd_rerouted_demand : float;
  cd_total_demand : float;
  cd_traffic_moved : float;  (** [Σ_a |Δload_a|] *)
  cd_phi_before : float;
  cd_phi_after : float;
  cd_load_delta : float array;  (** per-arc [load_B − load_A] *)
}

type t = {
  classes : class_diff array;
  changed_arcs : int;  (** distinct (class, arc) weight changes *)
  avg_util_before : float;
  avg_util_after : float;
  max_util_before : float;
  max_util_after : float;
  lambda : (float * float) option;
      (** SLA penalty Λ before/after, when requested *)
}

val is_empty : t -> bool
(** No changed arcs, no rerouted pair, no load moved — the self-diff
    of any context. *)

val compute :
  ?jobs:int ->
  ?sla:Dtr_cost.Sla.params * Dtr_traffic.Matrix.t ->
  Eval_ctx.t ->
  Eval_ctx.t ->
  t
(** [compute ctxA ctxB] diffs two committed states of the same
    problem.  [jobs] parallelizes the per-destination DAG diff over a
    domain pool (default 1; the result is bit-identical for every
    value).  [sla] (params and the high-priority matrix) additionally
    prices Λ before/after — requires a two-class context.
    @raise Invalid_argument when the contexts disagree on graph
    (physical equality) or class structure. *)

val of_changes :
  ?jobs:int ->
  ?sla:Dtr_cost.Sla.params * Dtr_traffic.Matrix.t ->
  Eval_ctx.t ->
  klass:int ->
  changes:(int * int) list ->
  t
(** Diff the incumbent against the candidate obtained by applying
    [changes] to [klass]'s weight vector — probe/commit against a
    throwaway clone; the given context is not modified. *)

type reconvergence = {
  rc_changes : int;  (** weight changes applied (over all topologies) *)
  rc_routers : int;  (** routers that re-originated *)
  rc_stats : Dtr_mtospf.Network.flood_stats;
      (** LSA flooding cost of the batched update *)
}

val reconvergence : Eval_ctx.t -> Eval_ctx.t -> reconvergence
(** Price deploying the diff through the MT-OSPF control plane: build
    a converged area on [ctxA]'s weight vectors (one topology per
    class), apply every changed weight as one batch
    ({!Dtr_mtospf.Network.apply_changes}) and report the reflood
    cost.  Zero stats for an empty diff. *)

val class_label : t -> int -> string
(** ["H"]/["L"] for two-class diffs, ["class k"] otherwise. *)

val summary_table : t -> Dtr_util.Table.t
(** Per-class churn summary: changed arcs, rerouted pairs/demand,
    traffic moved, Φ before/after, plus network-wide utilization (and
    Λ) deltas. *)

val changed_arcs_table :
  ?top:int -> Eval_ctx.t -> t -> Dtr_util.Table.t
(** Per-arc detail of the diff, sorted by decreasing [|Δload|] summed
    over classes: endpoints, per-class weight change and load delta.
    Covers arcs with a weight change or a load change; [top] limits
    the rows (default 20).  The context argument supplies arc
    endpoints/capacities (either side of the diff works). *)

val reconvergence_table : reconvergence -> Dtr_util.Table.t

val to_json : ?reconv:reconvergence -> t -> string
(** Deterministic JSON document (floats as ["%.17g"], arrays in
    ascending order): the churn numbers per class, the network-wide
    deltas, and the reconvergence price when given.  Per-arc load
    deltas are summarized (count of moved arcs), not dumped. *)
