(** OSPF link-weight vectors: one positive integer per arc, bounded by
    [max_weight] (the paper restricts weights to [\[1, 30\]]). *)

val min_weight : int
(** 1. *)

val max_weight : int
(** 30. *)

val validate : Dtr_graph.Graph.t -> int array -> unit
(** @raise Invalid_argument if the length differs from the arc count or
    any weight is outside [\[min_weight, max_weight\]]. *)

val uniform : Dtr_graph.Graph.t -> int -> int array
(** All arcs get the same weight.  @raise Invalid_argument if out of
    bounds. *)

val random : Dtr_util.Prng.t -> Dtr_graph.Graph.t -> int array
(** Independent uniform draws in [\[min_weight, max_weight\]]. *)

val inverse_capacity : Dtr_graph.Graph.t -> int array
(** Cisco-style default: weight proportional to the inverse of arc
    capacity, scaled into [\[min_weight, max_weight\]] (the highest
    capacity link gets weight 1). *)

val perturb :
  Dtr_util.Prng.t -> fraction:float -> int array -> int array
(** Fresh vector with [ceil (fraction ⋅ len)] randomly chosen entries
    re-drawn uniformly — the diversification move of Algorithm 1.
    @raise Invalid_argument if [fraction] is outside [\[0, 1\]]. *)

val step :
  int array -> arc:int -> delta:int -> int array
(** Fresh vector with [arc]'s weight moved by [delta], clamped into
    bounds.  @raise Invalid_argument on a bad arc id. *)
