(** Flow attribution: invert an evaluation context's per-destination
    load contributions into "why is this link loaded?" answers.

    {!Eval_ctx} already stores, for every class and destination, the
    exact per-arc load contribution row its committed totals are summed
    from.  This module reads those rows back out — {e exact}, not
    sampled — as per-link attributions:

    - {b by destination}: the contribution of each destination's flow
      tree to one arc is literally the committed row entry, so summing
      the reported rows in ascending destination order reproduces the
      context's link load {e bitwise} ({!link_load});
    - {b by OD pair}: each destination's contribution is split over its
      sources by a backward ECMP-fraction pass over the shortest-path
      DAG — [frac(v)] is the expected fraction of one unit injected at
      [v] that crosses the arc, so a pair's share is
      [demand(s,t) * frac(s)].  Pair shares are mathematically exact
      (they re-associate the same even splits), but summing them
      associates differently from the committed row, so they reconcile
      to the link load within floating-point tolerance rather than
      bitwise.

    Demand-only contexts are handled for free: demandless destinations
    carry empty rows and are skipped. *)

type dest_entry = {
  de_dst : int;  (** destination node *)
  de_load : float;  (** this destination's contribution to the arc *)
}

type pair_entry = {
  pe_src : int;
  pe_dst : int;
  pe_demand : float;  (** the pair's total demand *)
  pe_load : float;  (** the share of it crossing the arc *)
}

val link_load : Eval_ctx.t -> klass:int -> arc:int -> float
(** The class's load on the arc, re-summed from the per-destination
    contribution rows in ascending destination order — bitwise equal
    to [(Eval_ctx.loads t klass).(arc)] by construction.
    @raise Invalid_argument on a class or arc out of range. *)

val by_destination :
  Eval_ctx.t -> klass:int -> arc:int -> dest_entry array
(** All destinations contributing nonzero load to the arc, sorted by
    decreasing contribution (ties: ascending destination id).
    @raise Invalid_argument on a class or arc out of range. *)

val by_pair : Eval_ctx.t -> klass:int -> arc:int -> pair_entry array
(** All OD pairs contributing nonzero load to the arc, sorted by
    decreasing contribution (ties: ascending source, then
    destination).  Exact ECMP shares via the backward-fraction pass.
    @raise Invalid_argument on a class or arc out of range. *)

val class_label : Eval_ctx.t -> int -> string
(** ["H"]/["L"] for two-class contexts, ["class k"] otherwise. *)

val explain_table : ?top:int -> Eval_ctx.t -> arc:int -> Dtr_util.Table.t
(** Per-class top contributing OD pairs of one arc, with each pair's
    demand, the share of it crossing the arc, and its share of the
    class's link load.  [top] limits the rows {e per class}
    (default 10). *)

val destinations_table :
  ?top:int -> Eval_ctx.t -> arc:int -> Dtr_util.Table.t
(** Per-class top contributing destinations of one arc (the exact
    committed subtotals {!link_load} re-sums bitwise). *)

val hottest_table :
  ?top:int -> Eval_ctx.t -> Dtr_util.Table.t
(** The costliest links by total Fortz cost [Σ_k Φ_k,l] with, for each
    class, the dominant OD pair crossing the link — the
    [inspect --explain-top] view.  [top] limits the row count
    (default 10). *)
