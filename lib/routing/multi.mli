(** Generalization of {!Evaluate} to [T >= 2] traffic classes under
    strict priority queueing: class 0 is served first, class [i] sees
    the residual capacity left by classes [0 .. i-1].

    The paper's DTR is the special case [T = 2]; this module is the
    substrate for the multi-topology extension the paper points to
    (RFC 4915 supports up to 128 topologies). *)

type t = {
  graph : Dtr_graph.Graph.t;
  dags : Dtr_graph.Spf.dag array array;
      (** [dags.(k)]: per-destination DAGs of class [k]'s weights *)
  loads : float array array;  (** [loads.(k).(arc)] *)
  capacity_seen : float array array;
      (** [capacity_seen.(k).(arc)]: residual capacity available to
          class [k] ([capacity_seen.(0)] is the raw capacity) *)
  phi_per_arc : float array array;
      (** Fortz cost of class [k] on each arc, against the residual *)
  phi : float array;  (** per-class totals [Φ_k] *)
}

val evaluate :
  Dtr_graph.Graph.t ->
  weights:int array array ->
  matrices:Dtr_traffic.Matrix.t array ->
  t
(** [evaluate g ~weights ~matrices] routes class [k] on
    [weights.(k)] and charges it the Fortz cost against the capacity
    left by higher-priority classes.  Physically equal weight vectors
    share their shortest-path DAGs (so single-topology routing costs
    one SPF, not [T]).
    @raise Invalid_argument if fewer than one class is given, the
    arrays disagree in length, or any class has unroutable demand. *)

val class_count : t -> int

val objective : t -> float array
(** The lexicographic objective vector: per-class [Φ_k], highest
    priority first (fresh copy). *)

val compare_objective : float array -> float array -> int
(** Lexicographic comparison of objective vectors.
    @raise Invalid_argument on length mismatch. *)

val utilization : t -> float array
(** Per-arc total utilization across all classes. *)

val avg_utilization : t -> float
