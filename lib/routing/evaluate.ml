module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Dijkstra = Dtr_graph.Dijkstra
module Matrix = Dtr_traffic.Matrix
module Fortz = Dtr_cost.Fortz
module Sla = Dtr_cost.Sla

type t = {
  graph : Graph.t;
  dags_h : Spf.dag array;
  dags_l : Spf.dag array;
  h_loads : float array;
  l_loads : float array;
  residual : float array;
  phi_h_per_arc : float array;
  phi_l_per_arc : float array;
  phi_h : float;
  phi_l : float;
}

let assemble g ~dags_h ~h_loads ~dags_l ~l_loads =
  let caps = Graph.capacities g in
  let m = Graph.arc_count g in
  let residual = Array.init m (fun i -> Float.max (caps.(i) -. h_loads.(i)) 0.) in
  let phi_h_per_arc =
    Array.init m (fun i -> Fortz.phi ~load:h_loads.(i) ~capacity:caps.(i))
  in
  let phi_l_per_arc =
    Array.init m (fun i -> Fortz.phi ~load:l_loads.(i) ~capacity:residual.(i))
  in
  {
    graph = g;
    dags_h;
    dags_l;
    h_loads;
    l_loads;
    residual;
    phi_h_per_arc;
    phi_l_per_arc;
    phi_h = Array.fold_left ( +. ) 0. phi_h_per_arc;
    phi_l = Array.fold_left ( +. ) 0. phi_l_per_arc;
  }

let evaluate g ~wh ~wl ~th ~tl =
  Weights.validate g wh;
  Weights.validate g wl;
  let ws = Dijkstra.workspace () in
  let dags_h = Spf.all_destinations ~ws g ~weights:wh in
  (* Structural equality: equal-but-distinct weight vectors must share
     the SPF too, not silently double the work. *)
  let dags_l =
    if wh == wl || wh = wl then dags_h
    else Spf.all_destinations ~ws g ~weights:wl
  in
  let h_loads = Loads.of_matrix g ~dags:dags_h th in
  let l_loads = Loads.of_matrix g ~dags:dags_l tl in
  assemble g ~dags_h ~h_loads ~dags_l ~l_loads

let utilization t =
  let caps = Graph.capacities t.graph in
  Array.init (Array.length caps) (fun i ->
      (t.h_loads.(i) +. t.l_loads.(i)) /. caps.(i))

let h_utilization t =
  let caps = Graph.capacities t.graph in
  Array.init (Array.length caps) (fun i -> t.h_loads.(i) /. caps.(i))

let avg_utilization t = Dtr_util.Stats.mean (utilization t)

let max_utilization t =
  Array.fold_left Float.max 0. (utilization t)

type sla = {
  arc_delay : float array;
  pair_delays : (int * int * float) list;
  lambda : float;
  violations : int;
  unreachable : int;
  worst_delay : float;
}

let evaluate_sla params t ~th =
  let arc_delay = Delay.arc_delays params t.graph ~phi_h_per_arc:t.phi_h_per_arc in
  let pairs = List.map (fun (s, d, _) -> (s, d)) (Matrix.pairs th) in
  let raw = Delay.pair_delays t.graph ~dags:t.dags_h ~arc_delay ~pairs in
  (* Encode a severed pair as an infinite delay: the penalty (and so
     Λ) becomes infinite — any routing that reconnects the pair
     compares strictly better — without aborting the sweep. *)
  let pair_delays =
    List.map
      (fun (s, d, pd) ->
        match pd with
        | Delay.Reachable x -> (s, d, x)
        | Delay.Unreachable -> (s, d, Float.infinity))
      raw
  in
  let lambda = ref 0. and violations = ref 0 and worst = ref 0. in
  let unreachable = ref 0 in
  List.iter
    (fun (_, _, d) ->
      let p = Sla.penalty params ~delay:d in
      lambda := !lambda +. p;
      if Sla.violated params ~delay:d then incr violations;
      if d = Float.infinity then incr unreachable;
      if d > !worst then worst := d)
    pair_delays;
  {
    arc_delay;
    pair_delays;
    lambda = !lambda;
    violations = !violations;
    unreachable = !unreachable;
    worst_delay = !worst;
  }
