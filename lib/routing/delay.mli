(** Per-arc and end-to-end mean delays for high-priority traffic
    (paper Eq. 3), averaged over ECMP splits. *)

val arc_delays :
  Dtr_cost.Sla.params ->
  Dtr_graph.Graph.t ->
  phi_h_per_arc:float array ->
  float array
(** Mean delay (ms) of every arc given the per-arc Fortz cost of
    high-priority traffic.  @raise Invalid_argument on length
    mismatch. *)

val expected_to_destination :
  Dtr_graph.Graph.t ->
  dag:Dtr_graph.Spf.dag ->
  arc_delay:float array ->
  float array
(** [xi.(v)]: expected delay from [v] to [dag.dst] when flow splits
    evenly at every ECMP hop; [xi.(dst) = 0.]; [nan] for unreachable
    nodes. *)

type pair_delay = Reachable of float | Unreachable
(** A disconnected SD pair is a data condition (failure sweeps evaluate
    deliberately cut topologies), not an error. *)

val pair_delays :
  Dtr_graph.Graph.t ->
  dags:Dtr_graph.Spf.dag array ->
  arc_delay:float array ->
  pairs:(int * int) list ->
  (int * int * pair_delay) list
(** Expected delays for specific SD pairs; [Unreachable] for pairs with
    no path instead of raising mid-sweep. *)
