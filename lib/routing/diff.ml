module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Table = Dtr_util.Table
module Pool = Dtr_util.Pool
module Network = Dtr_mtospf.Network

type class_diff = {
  cd_changed_arcs : (int * int * int) list;
  cd_rerouted_pairs : int;
  cd_total_pairs : int;
  cd_rerouted_demand : float;
  cd_total_demand : float;
  cd_traffic_moved : float;
  cd_phi_before : float;
  cd_phi_after : float;
  cd_load_delta : float array;
}

type t = {
  classes : class_diff array;
  changed_arcs : int;
  avg_util_before : float;
  avg_util_after : float;
  max_util_before : float;
  max_util_after : float;
  lambda : (float * float) option;
}

let is_empty t =
  t.changed_arcs = 0
  && Array.for_all
       (fun c ->
         c.cd_rerouted_pairs = 0 && c.cd_traffic_moved = 0.
         && c.cd_changed_arcs = [])
       t.classes

let check_compatible a b =
  if Eval_ctx.graph a != Eval_ctx.graph b then
    invalid_arg "Diff: contexts evaluate different graphs";
  if Eval_ctx.class_count a <> Eval_ctx.class_count b then
    invalid_arg "Diff: contexts disagree on class count"

(* Per-destination rerouted-pair detection.  [differ.(v)] marks nodes
   whose ECMP next-hop set changed; a backward pass over each DAG (in
   increasing-distance order, so next hops are final before their
   predecessors) then flags every node whose flow traverses an
   affected node in that setting.  A pair is rerouted iff its source
   is flagged under either setting — exact, since a pair's forwarding
   changed exactly when some node on its (old or new) shortest-path
   DAG changed its next-hop set. *)
let propagate_flags (dag : Spf.dag) ~differ ~flag dsts =
  let order = dag.Spf.order_desc in
  flag.(dag.Spf.dst) <- false;
  for i = Array.length order - 1 downto 0 do
    let v = order.(i) in
    let f = ref differ.(v) in
    let next = dag.Spf.next_arcs.(v) in
    let j = ref 0 in
    let deg = Array.length next in
    while (not !f) && !j < deg do
      if flag.(dsts.(next.(!j))) then f := true;
      incr j
    done;
    flag.(v) <- !f
  done

(* One destination's (rerouted pairs, rerouted demand): scratch is
   allocated by the caller (one set per parallel task). *)
let diff_dest g ~(dag_a : Spf.dag) ~(dag_b : Spf.dag) ~dem ~differ ~flag_a
    ~flag_b =
  let n = Graph.node_count g in
  let dsts = Graph.dsts g in
  let any = ref false in
  for v = 0 to n - 1 do
    let d = dag_a.Spf.next_arcs.(v) <> dag_b.Spf.next_arcs.(v) in
    differ.(v) <- d;
    if d then any := true
  done;
  if not !any then (0, 0.)
  else begin
    propagate_flags dag_a ~differ ~flag:flag_a dsts;
    propagate_flags dag_b ~differ ~flag:flag_b dsts;
    let pairs = ref 0 and demand = ref 0. in
    for s = 0 to n - 1 do
      if dem.(s) > 0. && (flag_a.(s) || flag_b.(s)) then begin
        incr pairs;
        demand := !demand +. dem.(s)
      end
    done;
    (!pairs, !demand)
  end

let utilizations ctx =
  let g = Eval_ctx.graph ctx in
  let m = Graph.arc_count g in
  let caps = Graph.capacities g in
  let classes = Eval_ctx.class_count ctx in
  let avg = ref 0. and mx = ref 0. in
  for a = 0 to m - 1 do
    let load = ref 0. in
    for k = 0 to classes - 1 do
      load := !load +. (Eval_ctx.loads ctx k).(a)
    done;
    let u = if caps.(a) > 0. then !load /. caps.(a) else 0. in
    avg := !avg +. u;
    if u > !mx then mx := u
  done;
  ((if m > 0 then !avg /. float_of_int m else 0.), !mx)

let compute ?(jobs = 1) ?sla ctx_a ctx_b =
  check_compatible ctx_a ctx_b;
  let g = Eval_ctx.graph ctx_a in
  let n = Graph.node_count g in
  let m = Graph.arc_count g in
  let classes = Eval_ctx.class_count ctx_a in
  let changed = ref 0 in
  let class_diffs =
    Array.init classes (fun k ->
        let wa = Eval_ctx.weights_view ctx_a k in
        let wb = Eval_ctx.weights_view ctx_b k in
        let changed_arcs = ref [] in
        for a = m - 1 downto 0 do
          if wa.(a) <> wb.(a) then
            changed_arcs := (a, wa.(a), wb.(a)) :: !changed_arcs
        done;
        changed := !changed + List.length !changed_arcs;
        (* Destinations carrying demand in this class (rows are fixed
           per problem, so both contexts agree). *)
        let dests = ref [] in
        let total_pairs = ref 0 and total_demand = ref 0. in
        for dst = n - 1 downto 0 do
          let dem = Eval_ctx.demand_view ctx_a ~klass:k ~dst in
          if Array.length dem > 0 then begin
            dests := dst :: !dests;
            for s = 0 to n - 1 do
              if dem.(s) > 0. then begin
                incr total_pairs;
                total_demand := !total_demand +. dem.(s)
              end
            done
          end
        done;
        let dests = Array.of_list !dests in
        let dags_a = Eval_ctx.dags ctx_a k in
        let dags_b = Eval_ctx.dags ctx_b k in
        (* Index-ordered parallel map; folding the per-destination
           results in ascending order keeps sums jobs-invariant. *)
        let per_dest =
          Pool.run ~jobs (Array.length dests) ~f:(fun i ->
              let dst = dests.(i) in
              let dem = Eval_ctx.demand_view ctx_a ~klass:k ~dst in
              diff_dest g ~dag_a:dags_a.(dst) ~dag_b:dags_b.(dst) ~dem
                ~differ:(Array.make n false) ~flag_a:(Array.make n false)
                ~flag_b:(Array.make n false))
        in
        let rerouted_pairs = ref 0 and rerouted_demand = ref 0. in
        Array.iter
          (fun (p, d) ->
            rerouted_pairs := !rerouted_pairs + p;
            rerouted_demand := !rerouted_demand +. d)
          per_dest;
        let la = Eval_ctx.loads ctx_a k and lb = Eval_ctx.loads ctx_b k in
        let load_delta = Array.init m (fun a -> lb.(a) -. la.(a)) in
        let moved = ref 0. in
        for a = 0 to m - 1 do
          moved := !moved +. Float.abs load_delta.(a)
        done;
        {
          cd_changed_arcs = !changed_arcs;
          cd_rerouted_pairs = !rerouted_pairs;
          cd_total_pairs = !total_pairs;
          cd_rerouted_demand = !rerouted_demand;
          cd_total_demand = !total_demand;
          cd_traffic_moved = !moved;
          cd_phi_before = (Eval_ctx.phi ctx_a).(k);
          cd_phi_after = (Eval_ctx.phi ctx_b).(k);
          cd_load_delta = load_delta;
        })
  in
  let avg_a, max_a = utilizations ctx_a in
  let avg_b, max_b = utilizations ctx_b in
  let lambda =
    match sla with
    | None -> None
    | Some (params, th) ->
        let lam ctx =
          (Evaluate.evaluate_sla params (Eval_ctx.to_evaluate ctx) ~th)
            .Evaluate.lambda
        in
        Some (lam ctx_a, lam ctx_b)
  in
  {
    classes = class_diffs;
    changed_arcs = !changed;
    avg_util_before = avg_a;
    avg_util_after = avg_b;
    max_util_before = max_a;
    max_util_after = max_b;
    lambda;
  }

let of_changes ?jobs ?sla ctx ~klass ~changes =
  let candidate = Eval_ctx.clone ctx in
  let p = Eval_ctx.probe candidate ~klass ~changes in
  Eval_ctx.commit candidate p;
  compute ?jobs ?sla ctx candidate

type reconvergence = {
  rc_changes : int;
  rc_routers : int;
  rc_stats : Network.flood_stats;
}

let reconvergence ctx_a ctx_b =
  check_compatible ctx_a ctx_b;
  let g = Eval_ctx.graph ctx_a in
  let m = Graph.arc_count g in
  let classes = Eval_ctx.class_count ctx_a in
  let weight_sets =
    Array.init classes (fun k -> Eval_ctx.weights ctx_a k)
  in
  let changes = ref [] in
  for k = classes - 1 downto 0 do
    let wa = Eval_ctx.weights_view ctx_a k
    and wb = Eval_ctx.weights_view ctx_b k in
    for a = m - 1 downto 0 do
      if wa.(a) <> wb.(a) then changes := (k, a, wb.(a)) :: !changes
    done
  done;
  let changes = !changes in
  if changes = [] then
    {
      rc_changes = 0;
      rc_routers = 0;
      rc_stats = { Network.rounds = 0; messages = 0 };
    }
  else begin
    let net = Network.create g ~weight_sets in
    ignore (Network.flood net);
    let routers =
      List.sort_uniq compare (List.map (fun (_, a, _) -> Graph.src g a) changes)
    in
    let stats = Network.apply_changes net changes in
    {
      rc_changes = List.length changes;
      rc_routers = List.length routers;
      rc_stats = stats;
    }
  end

let class_label t k =
  if Array.length t.classes = 2 then if k = 0 then "H" else "L"
  else Printf.sprintf "class %d" k

let summary_table t =
  let table =
    Table.create ~title:"Weight-diff churn summary"
      ~columns:
        [
          "class";
          "changed arcs";
          "rerouted pairs";
          "rerouted demand";
          "traffic moved";
          "Phi before";
          "Phi after";
          "dPhi";
        ]
  in
  Array.iteri
    (fun k c ->
      Table.add_row table
        [
          class_label t k;
          string_of_int (List.length c.cd_changed_arcs);
          Printf.sprintf "%d / %d" c.cd_rerouted_pairs c.cd_total_pairs;
          Printf.sprintf "%.1f / %.1f" c.cd_rerouted_demand c.cd_total_demand;
          Printf.sprintf "%.1f" c.cd_traffic_moved;
          Printf.sprintf "%.4g" c.cd_phi_before;
          Printf.sprintf "%.4g" c.cd_phi_after;
          Printf.sprintf "%+.4g" (c.cd_phi_after -. c.cd_phi_before);
        ])
    t.classes;
  let net metric before after =
    Table.add_row table
      [
        metric;
        "-";
        "-";
        "-";
        "-";
        Printf.sprintf "%.4g" before;
        Printf.sprintf "%.4g" after;
        Printf.sprintf "%+.4g" (after -. before);
      ]
  in
  net "avg util" t.avg_util_before t.avg_util_after;
  net "max util" t.max_util_before t.max_util_after;
  (match t.lambda with
  | None -> ()
  | Some (before, after) -> net "Lambda" before after);
  table

let changed_arcs_table ?(top = 20) ctx t =
  let g = Eval_ctx.graph ctx in
  let m = Graph.arc_count g in
  let classes = Array.length t.classes in
  (* Arcs worth a row: a weight change or a load change in any class. *)
  let total_delta a =
    let s = ref 0. in
    for k = 0 to classes - 1 do
      s := !s +. Float.abs t.classes.(k).cd_load_delta.(a)
    done;
    !s
  in
  let weight_change k a =
    List.find_opt (fun (a', _, _) -> a' = a) t.classes.(k).cd_changed_arcs
  in
  let interesting = ref [] in
  for a = m - 1 downto 0 do
    let has_w =
      let rec go k =
        k < classes && (weight_change k a <> None || go (k + 1))
      in
      go 0
    in
    if has_w || total_delta a <> 0. then interesting := a :: !interesting
  done;
  let ids = Array.of_list !interesting in
  Array.sort
    (fun a b ->
      let c = Float.compare (total_delta b) (total_delta a) in
      if c <> 0 then c else compare a b)
    ids;
  let columns =
    [ "arc"; "link" ]
    @ List.concat_map
        (fun k ->
          let l = class_label t k in
          [ "w " ^ l; "dload " ^ l ])
        (List.init classes Fun.id)
  in
  let table =
    Table.create ~title:"Changed arcs (sorted by total |dload|)" ~columns
  in
  let limit = min top (Array.length ids) in
  for i = 0 to limit - 1 do
    let a = ids.(i) in
    let cells =
      List.concat_map
        (fun k ->
          let w =
            match weight_change k a with
            | Some (_, before, after) -> Printf.sprintf "%d->%d" before after
            | None -> "="
          in
          [ w; Printf.sprintf "%+.1f" t.classes.(k).cd_load_delta.(a) ])
        (List.init classes Fun.id)
    in
    Table.add_row table
      ([
         string_of_int a;
         Printf.sprintf "%d->%d" (Graph.src g a) (Graph.dst g a);
       ]
      @ cells)
  done;
  table

let reconvergence_table r =
  let table =
    Table.create ~title:"MT-OSPF reconvergence price (batched deployment)"
      ~columns:[ "weight changes"; "routers re-originating"; "flood rounds"; "LSA messages" ]
  in
  Table.add_row table
    [
      string_of_int r.rc_changes;
      string_of_int r.rc_routers;
      string_of_int r.rc_stats.Network.rounds;
      string_of_int r.rc_stats.Network.messages;
    ];
  table

let float_str x = Printf.sprintf "%.17g" x

let to_json ?reconv t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"classes\":[";
  Array.iteri
    (fun k c ->
      if k > 0 then Buffer.add_char b ',';
      let moved_arcs =
        Array.fold_left
          (fun acc d -> if d <> 0. then acc + 1 else acc)
          0 c.cd_load_delta
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"label\":%S,\"changed_arcs\":[%s],\"rerouted_pairs\":%d,\"total_pairs\":%d,\"rerouted_demand\":%s,\"total_demand\":%s,\"traffic_moved\":%s,\"arcs_load_moved\":%d,\"phi_before\":%s,\"phi_after\":%s}"
           (class_label t k)
           (String.concat ","
              (List.map
                 (fun (a, before, after) ->
                   Printf.sprintf "{\"arc\":%d,\"before\":%d,\"after\":%d}" a
                     before after)
                 c.cd_changed_arcs))
           c.cd_rerouted_pairs c.cd_total_pairs
           (float_str c.cd_rerouted_demand)
           (float_str c.cd_total_demand)
           (float_str c.cd_traffic_moved)
           moved_arcs
           (float_str c.cd_phi_before)
           (float_str c.cd_phi_after)))
    t.classes;
  Buffer.add_string b "],";
  Buffer.add_string b
    (Printf.sprintf
       "\"changed_arcs\":%d,\"avg_util_before\":%s,\"avg_util_after\":%s,\"max_util_before\":%s,\"max_util_after\":%s"
       t.changed_arcs
       (float_str t.avg_util_before)
       (float_str t.avg_util_after)
       (float_str t.max_util_before)
       (float_str t.max_util_after));
  (match t.lambda with
  | None -> ()
  | Some (before, after) ->
      Buffer.add_string b
        (Printf.sprintf ",\"lambda_before\":%s,\"lambda_after\":%s"
           (float_str before) (float_str after)));
  (match reconv with
  | None -> ()
  | Some r ->
      Buffer.add_string b
        (Printf.sprintf
           ",\"reconvergence\":{\"changes\":%d,\"routers\":%d,\"rounds\":%d,\"messages\":%d}"
           r.rc_changes r.rc_routers r.rc_stats.Network.rounds
           r.rc_stats.Network.messages));
  Buffer.add_char b '}';
  Buffer.contents b
