(** The paper's two optimization objectives as a single entry point:
    evaluate a (dual) weight setting into a lexicographic cost, and
    produce the per-link lexicographic costs Algorithm 2 sorts on. *)

type model =
  | Load  (** [A = ⟨Φ_H, Φ_L⟩] — Eq. (2) *)
  | Sla of Dtr_cost.Sla.params  (** [S = ⟨Λ, Φ_L⟩] — Eq. (5) *)

type result = {
  objective : Dtr_cost.Lexico.t;
      (** [⟨Φ_H, Φ_L⟩] or [⟨Λ, Φ_L⟩] depending on the model *)
  eval : Evaluate.t;
  sla : Evaluate.sla option;  (** present iff the model is [Sla _] *)
}

val evaluate :
  model ->
  Dtr_graph.Graph.t ->
  wh:int array ->
  wl:int array ->
  th:Dtr_traffic.Matrix.t ->
  tl:Dtr_traffic.Matrix.t ->
  result
(** Full evaluation of a weight setting; [wh == wl] (physical equality)
    is the STR case. *)

val of_eval :
  model ->
  Evaluate.t ->
  th:Dtr_traffic.Matrix.t ->
  ?sla:Evaluate.sla ->
  unit ->
  result
(** Assemble the objective from an existing two-class evaluation.
    Passing [?sla] (when the high-priority routing is unchanged from a
    previous evaluation) skips recomputing delays and penalties. *)

val link_costs_h : model -> result -> Dtr_cost.Lexico.t array
(** Per-arc lexicographic link costs for FindH:
    [⟨Φ_{H,l}, Φ_{L,l}⟩] under [Load], [⟨D_l, Φ_{L,l}⟩] under
    [Sla] (paper §4). *)

val link_costs_l : result -> float array
(** Per-arc costs for FindL: [Φ_{L,l}] (low-priority weights cannot
    affect the high-priority class). *)

val model_name : model -> string
