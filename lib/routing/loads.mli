(** ECMP load distribution: project a traffic matrix onto per-arc
    loads under the OSPF forwarding model (even splitting across all
    shortest-path next hops, per destination). *)

val of_matrix :
  ?drop_unroutable:bool ->
  Dtr_graph.Graph.t ->
  dags:Dtr_graph.Spf.dag array ->
  Dtr_traffic.Matrix.t ->
  float array
(** [of_matrix g ~dags tm] returns per-arc loads (indexed by arc id).
    [dags.(t)] must be the shortest-path DAG for destination [t] (as
    from {!Dtr_graph.Spf.all_destinations}).

    Demand between a pair with no path raises [Invalid_argument]
    unless [drop_unroutable] is set (default [false]), in which case
    it is silently discarded.
    @raise Invalid_argument on a matrix/graph size mismatch. *)

val node_throughflow :
  Dtr_graph.Graph.t ->
  dag:Dtr_graph.Spf.dag ->
  demand_to_dst:float array ->
  float array
(** Per-node total flow towards [dag.dst] (own demand plus transit),
    the intermediate quantity of the even-split recursion.  Exposed for
    tests (flow conservation checks). *)

val destination_loads :
  Dtr_graph.Graph.t ->
  dag:Dtr_graph.Spf.dag ->
  demand_to_dst:float array ->
  float array
(** One destination's per-arc load contribution: the even-split
    projection of [demand_to_dst] onto the dag's arcs.  {!of_matrix} is
    the sum of these over all destinations in ascending order, which is
    exactly how the incremental engine ({!Eval_ctx}) patches totals —
    each arc receives at most one share per destination, so subtotals
    recombine bitwise-identically. *)

val destination_loads_into :
  Dtr_graph.Graph.t ->
  dag:Dtr_graph.Spf.dag ->
  demand_to_dst:float array ->
  flow:float array ->
  contrib:float array ->
  unit
(** Arena variant of {!destination_loads}: writes the contribution
    into the caller-owned [contrib] row (length >= arc count) using
    [flow] (length >= node count) as flow scratch.  Both buffers are
    fully reinitialized, so they can be reused across destinations;
    the resulting shares are bitwise identical to
    {!destination_loads}.
    @raise Invalid_argument on a length mismatch or undersized
    scratch. *)

val destination_demand :
  ?drop_unroutable:bool ->
  dag:Dtr_graph.Spf.dag ->
  Dtr_traffic.Matrix.t ->
  float array option
(** The demand column towards [dag.dst] ([None] when no source has
    routable positive demand), with {!of_matrix}'s unroutable-pair
    handling.  Reachability does not depend on (positive) weights, so
    the column can be gathered once and reused across re-routings. *)
