(** ECMP load distribution: project a traffic matrix onto per-arc
    loads under the OSPF forwarding model (even splitting across all
    shortest-path next hops, per destination). *)

val of_matrix :
  ?drop_unroutable:bool ->
  Dtr_graph.Graph.t ->
  dags:Dtr_graph.Spf.dag array ->
  Dtr_traffic.Matrix.t ->
  float array
(** [of_matrix g ~dags tm] returns per-arc loads (indexed by arc id).
    [dags.(t)] must be the shortest-path DAG for destination [t] (as
    from {!Dtr_graph.Spf.all_destinations}).

    Demand between a pair with no path raises [Invalid_argument]
    unless [drop_unroutable] is set (default [false]), in which case
    it is silently discarded.
    @raise Invalid_argument on a matrix/graph size mismatch. *)

val node_throughflow :
  Dtr_graph.Graph.t ->
  dag:Dtr_graph.Spf.dag ->
  demand_to_dst:float array ->
  float array
(** Per-node total flow towards [dag.dst] (own demand plus transit),
    the intermediate quantity of the even-split recursion.  Exposed for
    tests (flow conservation checks). *)
