(** Incremental multi-class evaluation context.

    A context holds one full evaluation — per-group shortest-path DAGs
    ({!Dtr_graph.Spf_delta} keeps them current), per-destination load
    contributions, per-class load totals, the residual-capacity
    cascade, and per-arc Fortz costs — and re-evaluates candidate
    weight changes incrementally: {!probe} screens which destinations a
    change can affect, re-projects only their flows, patches only the
    arcs whose load moved (including the high→residual→low coupling),
    and returns the candidate's objective vector without touching the
    committed state.  {!commit} installs a probe; {!abort} discards it.

    Probes are pure: many can be taken from the same state, compared,
    and all but the winner dropped — this is the apply/undo protocol of
    the search inner loops.  All quantities are bitwise-identical to a
    from-scratch {!Evaluate.evaluate} / {!Multi.evaluate} of the same
    weights: per-arc loads receive at most one share per destination,
    so patched totals re-associate exactly as the full sum, and Φ
    totals are re-folded (not differentially adjusted) over the per-arc
    array. *)

type t

type dest_mode =
  | All  (** one DAG per destination node (the classic mode) *)
  | Demand
      (** DAGs only for destinations that sink positive demand in some
          member class of the group — the others carry placeholder
          dags and are skipped by every delta screen.  Memory drops
          from O(n) to O(demand destinations) DAG sets, which is what
          makes 10k-node contexts fit; loads and Φ are bitwise
          identical to [All] because demandless destinations
          contribute empty rows either way.  Restriction: {!dags}
          (and views derived from it) expose placeholder dags for
          inactive destinations. *)

val create :
  ?dags:Dtr_graph.Spf.dag array array ->
  ?dest_mode:dest_mode ->
  Dtr_graph.Graph.t ->
  weights:int array array ->
  matrices:Dtr_traffic.Matrix.t array ->
  t
(** Build a context from a full evaluation of [weights] (one vector
    per class; {e physically} equal vectors form a group that is
    re-routed together, exactly like {!Multi.evaluate}).  The vectors
    are copied.  [dags], when given, must be the per-class DAG arrays
    already computed for these weights (e.g. from a {!Evaluate.t}) and
    skips the SPF rebuild.  [dest_mode] defaults to [All].
    @raise Invalid_argument on length/size mismatches, invalid
    weights, or unroutable positive demand. *)

val clone : t -> t
(** A context sharing all immutable data (graph, demand, DAGs, load
    rows — commits replace rows, never mutate them) with the original
    but owning its mutable spine and SPF workspace, so probes against
    the clone are race-free while the original keeps evaluating.  The
    intended owner is one scan worker domain; clones are brought back
    in step with {!sync} instead of re-cloned. *)

val sync : src:t -> dst:t -> unit
(** Make [dst] (a {!clone} of [src]'s lineage) evaluate exactly as
    [src] by blitting the shared-row spine across.  O(groups + classes
    ⋅ destinations), no recomputation.
    @raise Invalid_argument when the contexts disagree on graph or
    class structure. *)

type probe
(** A candidate evaluation: the full consequence of a weight change,
    computed against — but not installed into — the context. *)

val probe : t -> klass:int -> changes:(int * int) list -> probe
(** [probe t ~klass ~changes] evaluates setting arc [a] to weight [v]
    for each [(a, v)] in [changes] on [klass]'s weight vector (classes
    sharing the vector change together).  No-op entries are ignored.
    The context is not modified.
    @raise Invalid_argument on an arc id or weight out of range. *)

val probe_phi : probe -> float array
(** The candidate's per-class objective vector [Φ_k] (fresh copy),
    comparable with {!Multi.compare_objective}. *)

val probe_touched : probe -> int list
(** Arcs whose load contribution the probe moved (unordered, no
    duplicates).  A committed probe changes per-arc quantities — loads,
    residual capacities, Fortz costs — at exactly these indices, which
    is what lets callers repair sorted-by-cost arc rankings
    incrementally instead of re-sorting all arcs. *)

val commit : t -> probe -> unit
(** Install a probe.  Only probes taken from the current state may be
    committed; committing advances the state.
    @raise Invalid_argument on a stale probe. *)

val abort : t -> probe -> unit
(** Discard a probe.  A no-op — probes never touch the context — but
    marks the reject branch of the apply/undo protocol explicitly. *)

type failure
(** A link-failure evaluation: the full consequence of suppressing one
    physical link's arcs in {e every} topology at once, computed
    against — but never installed into — the context. *)

val fail_probe : t -> arcs:int list -> failure
(** [fail_probe t ~arcs] evaluates the context's current weights with
    [arcs] removed from every class's topology (arc suppression via
    {!Dtr_graph.Dijkstra.suppressed}; no graph rebuild, no weight
    remapping).  Only destinations whose shortest-path DAGs used a
    failed arc are re-screened and re-projected.  If the failure
    severs any positive-demand pair the probe short-circuits: the
    per-class objective is infinite and {!failure_unreachable} counts
    the severed pairs.  Otherwise all patched quantities are bitwise
    identical to a from-scratch evaluation of the reduced graph.
    The context is not modified, and failure probes cannot be
    committed.
    @raise Invalid_argument on an empty list or arc id out of range. *)

val failure_unreachable : failure -> int
(** Severed positive-demand (class, source, destination) pairs; [0]
    exactly when the failure leaves every demand routable. *)

val failure_dirty : failure -> int
(** Destinations re-screened as dirty (patched or rebuilt), summed
    over weight-vector groups. *)

val failure_phi : failure -> float array
(** Post-failure per-class objective vector [Φ_k] (fresh copy); every
    entry is [Float.infinity] for a disconnecting failure. *)

val failure_dags : t -> failure -> int -> Dtr_graph.Spf.dag array
(** Post-failure per-destination DAGs of a class (shared with the
    context for untouched destinations; treat as immutable). *)

val failure_phi_row : failure -> int -> float array
(** Post-failure per-arc Fortz costs of a class — failed arcs carry
    zero load and zero cost.  Feeds the SLA delay walk.
    @raise Invalid_argument for a disconnecting failure (the rows are
    not computed: severed demand cannot be projected). *)

val class_count : t -> int

val graph : t -> Dtr_graph.Graph.t
(** The (shared) graph the context evaluates on. *)

val phi : t -> float array
(** Current per-class objective vector (fresh copy). *)

val weights : t -> int -> int array
(** Current weight vector of a class (fresh copy). *)

val weights_view : t -> int -> int array
(** Current weight vector of a class, {e without} copying.  The array
    is the live committed vector: commits replace it, so a held view
    stays valid as a snapshot, but callers must never mutate it.  For
    hot paths (per-scan hashing) where {!weights}'s copy is the cost
    being avoided. *)

val dags : t -> int -> Dtr_graph.Spf.dag array
(** Current per-destination DAGs of a class (shared; treat as
    immutable — commits replace, never mutate, them). *)

val loads : t -> int -> float array
(** Current per-arc load totals of a class (shared; commits replace
    the array, so snapshots stay valid). *)

val phi_per_arc : t -> int -> float array
(** Current per-arc Fortz costs of a class (shared; commits replace
    the row, so snapshots stay valid).  Lets the search loops rank
    arcs from the live context instead of re-deriving link costs from
    a solution. *)

val contrib_view : t -> klass:int -> dst:int -> float array
(** One destination's committed per-arc load contribution for a class
    — the exact row {!loads} sums in ascending-destination order (so
    re-summing the rows reproduces the totals {e bitwise}).  [[||]]
    when the destination has no routable positive demand in that
    class.  Shared, not copied: commits replace rows, never mutate
    them, so a held view is a stable snapshot.  This is the raw
    material of {!Attribution}.
    @raise Invalid_argument on a class or destination out of range. *)

val demand_view : t -> klass:int -> dst:int -> float array
(** One destination's per-source demand column for a class ([[||]]
    mirrors {!contrib_view}; fixed for the context's lifetime —
    reachability is weight-independent).  Shared; never mutate.
    @raise Invalid_argument on a class or destination out of range. *)

val capacity_seen_view : t -> int -> float array
(** Per-arc capacity a class is charged against (class 0: the physical
    capacities; class [k]: the residual cascade after class [k-1]).
    Shared; commits replace the row.
    @raise Invalid_argument on a class out of range. *)

val shares_group : t -> int -> int -> bool
(** Whether two classes share (alias) one weight vector. *)

val to_evaluate : t -> Evaluate.t
(** Materialize the two-class view.  O(1): the record references the
    context's current arrays, which later commits replace rather than
    mutate.  @raise Invalid_argument unless [class_count t = 2]. *)

val to_multi : t -> Multi.t
(** Materialize the [T]-class view (same sharing discipline). *)

val probes : t -> int
(** Probes taken against this context (delta evaluations). *)

val commits : t -> int
