module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Dijkstra = Dtr_graph.Dijkstra
module Matrix = Dtr_traffic.Matrix
module Lexico = Dtr_cost.Lexico
module Sla = Dtr_cost.Sla
module Pool = Dtr_util.Pool
module Metrics = Dtr_util.Metrics

let m_sweeps =
  Metrics.counter ~help:"Single-link failure sweeps."
    "dtr_failure_sweeps_total"

let m_evals =
  Metrics.counter ~help:"Link failures priced across all sweeps."
    "dtr_failure_evals_total"

let m_infinite =
  Metrics.counter
    ~help:"Link failures priced as infinite (severed positive demand)."
    "dtr_failure_infinite_total"

type outcome = { cost : Lexico.t; unreachable_pairs : int }

let is_finite o = o.unreachable_pairs = 0

(* Λ of the post-failure high-priority routing, mirroring
   Evaluate.evaluate_sla term for term: same pair list, same penalty
   fold order, and arc delays computed from the patched Φ_H row —
   failed arcs keep a (cheap, unread) delay entry that no surviving
   DAG walks. *)
let sla_lambda params g ~th ~dags_h ~phi_h_per_arc =
  let arc_delay = Delay.arc_delays params g ~phi_h_per_arc in
  let pairs = List.map (fun (s, d, _) -> (s, d)) (Matrix.pairs th) in
  let raw = Delay.pair_delays g ~dags:dags_h ~arc_delay ~pairs in
  List.fold_left
    (fun lambda (_, _, pd) ->
      let d =
        match pd with
        | Delay.Reachable x -> x
        | Delay.Unreachable -> Float.infinity
      in
      lambda +. Sla.penalty params ~delay:d)
    0. raw

let price ~model ~th ctx f =
  let unreachable_pairs = Eval_ctx.failure_unreachable f in
  if unreachable_pairs > 0 then begin
    Metrics.incr_counter m_infinite;
    { cost = Lexico.infinity; unreachable_pairs }
  end
  else begin
    let phi = Eval_ctx.failure_phi f in
    let cost =
      match model with
      | Objective.Load -> Lexico.make ~primary:phi.(0) ~secondary:phi.(1)
      | Objective.Sla params ->
          let lambda =
            sla_lambda params (Eval_ctx.graph ctx) ~th
              ~dags_h:(Eval_ctx.failure_dags ctx f 0)
              ~phi_h_per_arc:(Eval_ctx.failure_phi_row f 0)
          in
          Lexico.make ~primary:lambda ~secondary:phi.(1)
    in
    { cost; unreachable_pairs = 0 }
  end

let eval_link ~model ~th ~links ctx i =
  Metrics.incr_counter m_evals;
  let a, b = links.(i) in
  let arcs = if a = b then [ a ] else [ a; b ] in
  price ~model ~th ctx (Eval_ctx.fail_probe ctx ~arcs)

let sweep ?pool ?(model = Objective.Load) ~th ctx =
  if Eval_ctx.class_count ctx <> 2 then
    invalid_arg "Failure_sweep.sweep: need a 2-class context";
  Metrics.incr_counter m_sweeps;
  let links = Graph.undirected_link_pairs (Eval_ctx.graph ctx) in
  let k = Array.length links in
  match pool with
  | Some p when Pool.jobs p > 1 ->
      (* Contiguous chunks, one clone per task: a failure probe reads
         the shared rows and writes only its own SPF workspace, so
         clones make concurrent probes race-free; results are
         reassembled in link order, identical to the sequential
         sweep. *)
      let jobs = Pool.jobs p in
      let chunks =
        Pool.map p jobs ~f:(fun j ->
            let lo = j * k / jobs and hi = (j + 1) * k / jobs in
            let c = if hi - lo > 0 then Eval_ctx.clone ctx else ctx in
            let out =
              Array.make (hi - lo) { cost = Lexico.zero; unreachable_pairs = 0 }
            in
            for i = 0 to hi - lo - 1 do
              out.(i) <- eval_link ~model ~th ~links c (lo + i)
            done;
            out)
      in
      Array.concat (Array.to_list chunks)
  | _ ->
      (* Explicit ascending loop: Array.init's order is unspecified. *)
      let out = Array.make k { cost = Lexico.zero; unreachable_pairs = 0 } in
      for i = 0 to k - 1 do
        out.(i) <- eval_link ~model ~th ~links ctx i
      done;
      out

(* ------------------------------------------------------------------ *)
(* From-scratch oracle: reduced-graph rebuild with weight remapping.
   Kept (and exercised by property tests) as the specification the
   delta sweep must match bitwise. *)

let fail_link g ~link:(a, b) =
  let m = Graph.arc_count g in
  if a < 0 || a >= m || b < 0 || b >= m then
    invalid_arg "Failure_sweep.fail_link: arc out of range";
  (if a <> b then begin
     let aa = Graph.arc g a and ab = Graph.arc g b in
     if aa.Graph.src <> ab.Graph.dst || aa.Graph.dst <> ab.Graph.src then
       invalid_arg "Failure_sweep.fail_link: arcs are not reverse twins"
   end);
  let survivors = ref [] and mapping = ref [] in
  Array.iteri
    (fun id arc ->
      if id <> a && id <> b then begin
        survivors := arc :: !survivors;
        mapping := id :: !mapping
      end)
    (Graph.arcs g);
  ( Graph.build ~n:(Graph.node_count g) (List.rev !survivors),
    Array.of_list (List.rev !mapping) )

let remap_weights w mapping = Array.map (fun orig -> w.(orig)) mapping

(* Severed positive-demand pairs on the reduced graph, with the same
   counting rule as Eval_ctx.fail_probe: one per (class, src, dst)
   with positive matrix demand and no surviving path.  Reachability is
   weight-independent, so unit weights do. *)
let severed_pairs reduced ~matrices =
  let n = Graph.node_count reduced in
  let ones = Array.make (Graph.arc_count reduced) 1 in
  let count = ref 0 in
  for dst = 0 to n - 1 do
    let dist = Dijkstra.distances_to_unchecked reduced ~weights:ones ~dst in
    Array.iter
      (fun tm ->
        for s = 0 to n - 1 do
          if
            s <> dst
            && Matrix.get tm s dst > 0.
            && dist.(s) = Dijkstra.unreachable
          then incr count
        done)
      matrices
  done;
  !count

let oracle ~model g ~wh ~wl ~th ~tl ~link =
  let reduced, mapping = fail_link g ~link in
  let unreachable_pairs = severed_pairs reduced ~matrices:[| th; tl |] in
  if unreachable_pairs > 0 then { cost = Lexico.infinity; unreachable_pairs }
  else begin
    let wh' = remap_weights wh mapping in
    let wl' = remap_weights wl mapping in
    let r = Objective.evaluate model reduced ~wh:wh' ~wl:wl' ~th ~tl in
    { cost = r.Objective.objective; unreachable_pairs = 0 }
  end

let oracle_sweep ?pool ?(model = Objective.Load) g ~wh ~wl ~th ~tl =
  let links = Graph.undirected_link_pairs g in
  let k = Array.length links in
  let eval i = oracle ~model g ~wh ~wl ~th ~tl ~link:links.(i) in
  match pool with
  | Some p when Pool.jobs p > 1 -> Pool.map p k ~f:eval
  | _ ->
      let out = Array.make k { cost = Lexico.zero; unreachable_pairs = 0 } in
      for i = 0 to k - 1 do
        out.(i) <- eval i
      done;
      out

(* ------------------------------------------------------------------ *)
(* Robust penalty: aggregate a sweep into one Lexico term. *)

let scale f (l : Lexico.t) =
  Lexico.make ~primary:(f *. l.Lexico.primary)
    ~secondary:(f *. l.Lexico.secondary)

(* Mean of the k worst finite outcomes.  Infinite (disconnecting)
   outcomes are excluded: single-link reachability is weight-
   independent, so they price every weight setting identically and
   would only drown the finite signal the search can actually move. *)
let penalty ?(top_k = 1) outcomes =
  if top_k < 1 then invalid_arg "Failure_sweep.penalty: top_k must be >= 1";
  let finite =
    Array.of_list
      (List.filter is_finite (Array.to_list outcomes) |> List.map (fun o -> o.cost))
  in
  Array.sort (fun a b -> Lexico.compare b a) finite;
  let k = min top_k (Array.length finite) in
  if k = 0 then Lexico.zero
  else begin
    let acc = ref Lexico.zero in
    for i = 0 to k - 1 do
      acc := Lexico.add !acc finite.(i)
    done;
    scale (1. /. float_of_int k) !acc
  end

let infinite_count outcomes =
  Array.fold_left (fun n o -> if is_finite o then n else n + 1) 0 outcomes
