(** Traffic matrices: [get m s t] is the demand (Mbps) from node [s]
    to node [t].  The diagonal is always zero. *)

type t

val create : int -> t
(** All-zero [n × n] matrix, dense storage.
    @raise Invalid_argument if [n <= 0]. *)

val create_sparse : int -> t
(** All-zero [n × n] matrix with column-major sparse storage — for
    real-ISP scale instances where demand touches a small fraction of
    the n² pairs.  Observationally identical to {!create} (every
    enumeration is emitted in sorted row-major order), with O(entries)
    memory; {!map2}/{!equal} remain O(n²).
    @raise Invalid_argument if [n <= 0]. *)

val is_sparse : t -> bool

val size : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit
(** @raise Invalid_argument on the diagonal, a negative demand, or an
    index out of range. *)

val add : t -> int -> int -> float -> unit
(** Accumulate onto an entry (same constraints as {!set}). *)

val total : t -> float
(** Sum of all demands. *)

val scale : t -> float -> t
(** Fresh matrix with every entry multiplied by a non-negative factor.
    @raise Invalid_argument on a negative factor. *)

val copy : t -> t

val pairs : t -> (int * int * float) list
(** All [(s, t, demand)] with positive demand, in row-major order. *)

val pair_count : t -> int
(** Number of positive entries. *)

val iter : t -> (int -> int -> float -> unit) -> unit
(** Iterate positive entries in row-major order. *)

val iter_col : t -> int -> (int -> float -> unit) -> unit
(** [iter_col m t f] iterates the positive entries of destination
    column [t] in ascending source order — O(column entries) on a
    sparse matrix instead of O(n) probes.
    @raise Invalid_argument if [t] is out of range. *)

val map2 : t -> t -> (float -> float -> float) -> t
(** Pointwise combination; @raise Invalid_argument on size mismatch or
    if the result would be negative anywhere. *)

val equal : ?eps:float -> t -> t -> bool
(** Pointwise comparison with tolerance (default [1e-9]). *)
