module Prng = Dtr_util.Prng
module Dist = Dtr_util.Dist

type params = {
  demand_levels : (float * float * float) array;
  mass_range : float * float;
}

let default =
  {
    demand_levels = [| (0.6, 10., 50.); (0.35, 80., 130.); (0.05, 150., 200.) |];
    mass_range = (1.0, 1.5);
  }

let generate rng ~n p =
  if n < 2 then invalid_arg "Gravity.generate: need at least 2 nodes";
  let mlo, mhi = p.mass_range in
  if mhi < mlo then invalid_arg "Gravity.generate: bad mass range";
  let mass = Array.init n (fun _ -> Prng.uniform rng mlo mhi) in
  let attraction = Array.map exp mass in
  let d = Array.init n (fun _ -> Dist.three_level rng p.demand_levels) in
  let m = Matrix.create n in
  let total_attraction = Array.fold_left ( +. ) 0. attraction in
  for s = 0 to n - 1 do
    (* Eq. (6): the denominator excludes the source's own mass. *)
    let denom = total_attraction -. attraction.(s) in
    for t = 0 to n - 1 do
      if t <> s then Matrix.set m s t (d.(s) *. attraction.(t) /. denom)
    done
  done;
  m
