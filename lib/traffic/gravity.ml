module Prng = Dtr_util.Prng
module Dist = Dtr_util.Dist

type params = {
  demand_levels : (float * float * float) array;
  mass_range : float * float;
}

let default =
  {
    demand_levels = [| (0.6, 10., 50.); (0.35, 80., 130.); (0.05, 150., 200.) |];
    mass_range = (1.0, 1.5);
  }

(* PoP-level gravity: the same Eq. (6) model restricted to a set of
   PoP nodes — a realistic ISP matrix concentrates demand between a
   few dozen PoPs, not all n² pairs — written into a sparse matrix so
   memory scales with PoP pairs, not nodes².  Draw order follows the
   [pops] array, so results are deterministic in (seed, pops). *)
let generate_pop rng ~n ~pops p =
  let k = Array.length pops in
  if k < 2 then invalid_arg "Gravity.generate_pop: need at least 2 PoPs";
  Array.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Gravity.generate_pop: PoP out of range")
    pops;
  let mlo, mhi = p.mass_range in
  if mhi < mlo then invalid_arg "Gravity.generate_pop: bad mass range";
  let mass = Array.map (fun _ -> Prng.uniform rng mlo mhi) pops in
  let attraction = Array.map exp mass in
  let d = Array.init k (fun _ -> Dist.three_level rng p.demand_levels) in
  let m = Matrix.create_sparse n in
  let total_attraction = Array.fold_left ( +. ) 0. attraction in
  for i = 0 to k - 1 do
    let denom = total_attraction -. attraction.(i) in
    for j = 0 to k - 1 do
      if j <> i && pops.(i) <> pops.(j) then
        Matrix.set m pops.(i) pops.(j) (d.(i) *. attraction.(j) /. denom)
    done
  done;
  m

let generate rng ~n p =
  if n < 2 then invalid_arg "Gravity.generate: need at least 2 nodes";
  let mlo, mhi = p.mass_range in
  if mhi < mlo then invalid_arg "Gravity.generate: bad mass range";
  let mass = Array.init n (fun _ -> Prng.uniform rng mlo mhi) in
  let attraction = Array.map exp mass in
  let d = Array.init n (fun _ -> Dist.three_level rng p.demand_levels) in
  let m = Matrix.create n in
  let total_attraction = Array.fold_left ( +. ) 0. attraction in
  for s = 0 to n - 1 do
    (* Eq. (6): the denominator excludes the source's own mass. *)
    let denom = total_attraction -. attraction.(s) in
    for t = 0 to n - 1 do
      if t <> s then Matrix.set m s t (d.(s) *. attraction.(t) /. denom)
    done
  done;
  m
