(** Diurnal (time-of-day) demand profiles.

    Operators re-engineer weights rarely; traffic swings daily.  This
    module turns one base matrix pair into a sequence of scaled
    snapshots following a smooth day curve, so experiments can measure
    how stale a weight setting becomes off-peak and what re-optimizing
    per period would cost in reconfiguration churn. *)

type profile = {
  trough : float;  (** demand multiplier at the quietest hour, > 0 *)
  peak : float;  (** multiplier at the busiest hour, >= trough *)
  peak_hour : float;  (** hour in [0, 24) of the maximum *)
}

val default : profile
(** trough 0.35 at ~4am, peak 1.0 at 20:00 — a typical eyeball-ISP
    shape. *)

val multiplier : profile -> hour:float -> float
(** Sinusoidal interpolation between trough and peak; periodic in 24 h.
    @raise Invalid_argument on a malformed profile. *)

val snapshots :
  profile ->
  hours:float list ->
  th:Matrix.t ->
  tl:Matrix.t ->
  (float * Matrix.t * Matrix.t) list
(** Scaled copies [(hour, th_h, tl_h)] of the base matrices (which
    represent the peak-hour demand). *)
