(** High-priority traffic models (paper §5.1.2).

    Two pair-selection models — {e random} (a fraction [k] of all SD
    pairs) and {e sink} (popular servers with bidirectional client
    traffic) — combined with a volume model that makes high-priority
    traffic a fraction [f] of the total network traffic, with per-pair
    heterogeneity [m(s,t) ~ Uniform(1, 4)]. *)

val random_pairs :
  Dtr_util.Prng.t -> n:int -> density:float -> (int * int) list
(** [random_pairs g ~n ~density] selects
    [round (density ⋅ n ⋅ (n−1))] distinct ordered SD pairs.
    @raise Invalid_argument if [density] is outside [\[0, 1\]] or
    [n < 2]. *)

val sink_pairs : sinks:int array -> clients:int array -> (int * int) list
(** Bidirectional pairs between every client and every sink (clients
    and sinks must be disjoint; duplicates rejected).
    @raise Invalid_argument on overlap or duplicates. *)

type placement =
  | Uniform  (** clients drawn uniformly among non-sink nodes *)
  | Local
      (** clients are the non-sink nodes nearest (hop count) to any
          sink, emulating §5.2.3's "Local" scenario *)

val select_clients :
  Dtr_util.Prng.t ->
  Dtr_graph.Graph.t ->
  sinks:int array ->
  count:int ->
  placement ->
  int array
(** Choose [count] client nodes.  @raise Invalid_argument if [count]
    exceeds the number of non-sink nodes. *)

val client_count_for_density :
  n:int -> sinks:int -> density:float -> int
(** Number of clients such that the bidirectional client–sink pairs
    make up (approximately) a fraction [density] of all [n(n−1)]
    ordered pairs: [round (density ⋅ n ⋅ (n−1) / (2 ⋅ sinks))],
    clamped to [\[1, n − sinks\]]. *)

val volumes :
  Dtr_util.Prng.t ->
  low:Matrix.t ->
  fraction:float ->
  pairs:(int * int) list ->
  Matrix.t
(** [volumes g ~low ~fraction ~pairs] builds the high-priority matrix:
    total volume [η_L ⋅ f / (1 − f)] (so the high-priority share of
    all traffic is [f]), split across [pairs] proportionally to
    independent [Uniform(1,4)] marks.
    @raise Invalid_argument if [fraction] is outside [(0, 1)] or
    [pairs] is empty or contains a diagonal pair. *)
