type t = { n : int; data : float array }

let create n =
  if n <= 0 then invalid_arg "Matrix.create: size must be positive";
  { n; data = Array.make (n * n) 0. }

let size m = m.n

let check m s t =
  if s < 0 || s >= m.n || t < 0 || t >= m.n then
    invalid_arg "Matrix: index out of range"

let get m s t =
  check m s t;
  m.data.((s * m.n) + t)

let set m s t v =
  check m s t;
  if s = t then invalid_arg "Matrix.set: diagonal must stay zero";
  if v < 0. then invalid_arg "Matrix.set: negative demand";
  m.data.((s * m.n) + t) <- v

let add m s t v = set m s t (get m s t +. v)

let total m = Array.fold_left ( +. ) 0. m.data

let scale m f =
  if f < 0. then invalid_arg "Matrix.scale: negative factor";
  { n = m.n; data = Array.map (fun x -> x *. f) m.data }

let copy m = { n = m.n; data = Array.copy m.data }

let iter m f =
  for s = 0 to m.n - 1 do
    for t = 0 to m.n - 1 do
      let v = m.data.((s * m.n) + t) in
      if v > 0. then f s t v
    done
  done

let pairs m =
  let acc = ref [] in
  iter m (fun s t v -> acc := (s, t, v) :: !acc);
  List.rev !acc

let pair_count m =
  let c = ref 0 in
  iter m (fun _ _ _ -> incr c);
  !c

let map2 a b f =
  if a.n <> b.n then invalid_arg "Matrix.map2: size mismatch";
  let r = create a.n in
  for s = 0 to a.n - 1 do
    for t = 0 to a.n - 1 do
      if s <> t then begin
        let v = f a.data.((s * a.n) + t) b.data.((s * a.n) + t) in
        if v < 0. then invalid_arg "Matrix.map2: negative result";
        r.data.((s * a.n) + t) <- v
      end
    done
  done;
  r

let equal ?(eps = 1e-9) a b =
  a.n = b.n
  && begin
       let ok = ref true in
       Array.iteri
         (fun i x -> if Float.abs (x -. b.data.(i)) > eps then ok := false)
         a.data;
       !ok
     end
