(* Two representations behind one interface: the original dense
   row-major float array (every existing code path, unchanged), and a
   column-major sparse store for real-ISP scale matrices — a 10k-node
   dense matrix is 800 MB of mostly-zero floats, while PoP-gravity
   demand touches a few thousand pairs.  Columns (per-destination
   tables) are the natural axis: load projection consumes demand one
   destination at a time ({!iter_col}).

   Every enumeration is emitted in sorted row-major order regardless
   of representation, so outputs stay deterministic and independent of
   hash-table internals. *)

type repr =
  | Dense of float array  (* n * n, row-major *)
  | Sparse of (int, float) Hashtbl.t array  (* cols.(t) : src -> demand *)

type t = { n : int; repr : repr }

let create n =
  if n <= 0 then invalid_arg "Matrix.create: size must be positive";
  { n; repr = Dense (Array.make (n * n) 0.) }

let create_sparse n =
  if n <= 0 then invalid_arg "Matrix.create_sparse: size must be positive";
  { n; repr = Sparse (Array.init n (fun _ -> Hashtbl.create 8)) }

let is_sparse m = match m.repr with Dense _ -> false | Sparse _ -> true

let size m = m.n

let check m s t =
  if s < 0 || s >= m.n || t < 0 || t >= m.n then
    invalid_arg "Matrix: index out of range"

let get m s t =
  check m s t;
  match m.repr with
  | Dense data -> data.((s * m.n) + t)
  | Sparse cols -> ( match Hashtbl.find_opt cols.(t) s with Some v -> v | None -> 0.)

let set m s t v =
  check m s t;
  if s = t then invalid_arg "Matrix.set: diagonal must stay zero";
  if v < 0. then invalid_arg "Matrix.set: negative demand";
  match m.repr with
  | Dense data -> data.((s * m.n) + t) <- v
  | Sparse cols ->
      if v = 0. then Hashtbl.remove cols.(t) s else Hashtbl.replace cols.(t) s v

let add m s t v = set m s t (get m s t +. v)

let total m =
  match m.repr with
  | Dense data -> Array.fold_left ( +. ) 0. data
  | Sparse cols ->
      (* Row-major accumulation over positive entries: the same partial
         sums a dense fold over the padded array would produce (adding
         zeros is exact). *)
      let entries = ref [] in
      Array.iteri
        (fun t col -> Hashtbl.iter (fun s v -> entries := (s, t, v) :: !entries) col)
        cols;
      let a = Array.of_list !entries in
      Array.sort compare a;
      Array.fold_left (fun acc (_, _, v) -> acc +. v) 0. a

let scale m f =
  if f < 0. then invalid_arg "Matrix.scale: negative factor";
  match m.repr with
  | Dense data -> { n = m.n; repr = Dense (Array.map (fun x -> x *. f) data) }
  | Sparse cols ->
      { n = m.n;
        repr =
          Sparse
            (Array.map
               (fun col ->
                 let c = Hashtbl.create (Hashtbl.length col) in
                 Hashtbl.iter (fun s v -> Hashtbl.replace c s (v *. f)) col;
                 c)
               cols) }

let copy m =
  match m.repr with
  | Dense data -> { n = m.n; repr = Dense (Array.copy data) }
  | Sparse cols -> { n = m.n; repr = Sparse (Array.map Hashtbl.copy cols) }

let iter m f =
  match m.repr with
  | Dense data ->
      for s = 0 to m.n - 1 do
        for t = 0 to m.n - 1 do
          let v = data.((s * m.n) + t) in
          if v > 0. then f s t v
        done
      done
  | Sparse cols ->
      let entries = ref [] in
      Array.iteri
        (fun t col -> Hashtbl.iter (fun s v -> entries := (s, t, v) :: !entries) col)
        cols;
      let a = Array.of_list !entries in
      Array.sort compare a;
      Array.iter (fun (s, t, v) -> if v > 0. then f s t v) a

let iter_col m t f =
  if t < 0 || t >= m.n then invalid_arg "Matrix.iter_col: index out of range";
  match m.repr with
  | Dense data ->
      for s = 0 to m.n - 1 do
        let v = data.((s * m.n) + t) in
        if v > 0. then f s v
      done
  | Sparse cols ->
      let entries = ref [] in
      Hashtbl.iter (fun s v -> entries := (s, v) :: !entries) cols.(t);
      let a = Array.of_list !entries in
      Array.sort compare a;
      Array.iter (fun (s, v) -> if v > 0. then f s v) a

let pairs m =
  let acc = ref [] in
  iter m (fun s t v -> acc := (s, t, v) :: !acc);
  List.rev !acc

let pair_count m =
  let c = ref 0 in
  iter m (fun _ _ _ -> incr c);
  !c

(* Pointwise over all off-diagonal pairs (including zeros — [f] may
   map 0,0 somewhere else).  O(n^2) even for sparse operands, so keep
   it off the large-scale hot paths; the result uses the left
   operand's representation. *)
let map2 a b f =
  if a.n <> b.n then invalid_arg "Matrix.map2: size mismatch";
  let r = if is_sparse a then create_sparse a.n else create a.n in
  for s = 0 to a.n - 1 do
    for t = 0 to a.n - 1 do
      if s <> t then begin
        let v = f (get a s t) (get b s t) in
        if v < 0. then invalid_arg "Matrix.map2: negative result";
        if v <> 0. || not (is_sparse a) then set r s t v
      end
    done
  done;
  r

let equal ?(eps = 1e-9) a b =
  a.n = b.n
  && begin
       let ok = ref true in
       for s = 0 to a.n - 1 do
         for t = 0 to a.n - 1 do
           if Float.abs (get a s t -. get b s t) > eps then ok := false
         done
       done;
       !ok
     end
