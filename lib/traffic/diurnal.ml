type profile = {
  trough : float;
  peak : float;
  peak_hour : float;
}

let default = { trough = 0.35; peak = 1.0; peak_hour = 20. }

let validate p =
  if p.trough <= 0. then invalid_arg "Diurnal: trough must be positive";
  if p.peak < p.trough then invalid_arg "Diurnal: peak must be >= trough";
  if p.peak_hour < 0. || p.peak_hour >= 24. then
    invalid_arg "Diurnal: peak_hour must be in [0, 24)"

let multiplier p ~hour =
  validate p;
  let phase = (hour -. p.peak_hour) /. 24. *. 2. *. Float.pi in
  let mid = (p.peak +. p.trough) /. 2. in
  let amp = (p.peak -. p.trough) /. 2. in
  mid +. (amp *. cos phase)

let snapshots p ~hours ~th ~tl =
  List.map
    (fun hour ->
      let m = multiplier p ~hour in
      (hour, Matrix.scale th m, Matrix.scale tl m))
    hours
