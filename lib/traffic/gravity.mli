(** Gravity-model traffic generation for the low-priority class
    (paper Eqs. 6–7).

    Each node [s] originates a total demand [d_s] drawn from a
    three-level mixture (low 60%, medium 35%, hot-spot 5%), spread over
    destinations [t ≠ s] proportionally to [exp(V_t)] where the node
    "mass" [V_t] is uniform on [1, 1.5]. *)

type params = {
  demand_levels : (float * float * float) array;
      (** [(probability, lo, hi)] bands for the per-node total demand
          [d_s]; paper: [(0.6, 10, 50); (0.35, 80, 130); (0.05, 150, 200)] *)
  mass_range : float * float;  (** range of [V_t]; paper: [1, 1.5] *)
}

val default : params
(** The paper's Eq. (7) setting. *)

val generate : Dtr_util.Prng.t -> n:int -> params -> Matrix.t
(** Dense matrix with positive demand between every ordered pair
    (gravity models are dense).  @raise Invalid_argument if [n < 2] or
    the parameters are malformed. *)

val generate_pop :
  Dtr_util.Prng.t -> n:int -> pops:int array -> params -> Matrix.t
(** The same gravity model restricted to the given PoP nodes: a sparse
    [n × n] matrix with positive demand between every ordered pair of
    distinct PoPs and zero elsewhere — the realistic shape of an ISP
    matrix at 1k–10k nodes, and the input the demand-only evaluation
    mode is sized for.  @raise Invalid_argument on fewer than 2 PoPs,
    a PoP out of range, or malformed parameters. *)
