module Prng = Dtr_util.Prng
module Graph = Dtr_graph.Graph

let random_pairs rng ~n ~density =
  if n < 2 then invalid_arg "Highpri.random_pairs: need at least 2 nodes";
  if density < 0. || density > 1. then
    invalid_arg "Highpri.random_pairs: density must be in [0, 1]";
  let all = n * (n - 1) in
  let count = int_of_float (Float.round (density *. float_of_int all)) in
  let chosen = Prng.sample_without_replacement rng count all in
  (* Ordered-pair index p maps to (s, t): s = p / (n-1); t skips s. *)
  Array.to_list
    (Array.map
       (fun p ->
         let s = p / (n - 1) in
         let r = p mod (n - 1) in
         let t = if r >= s then r + 1 else r in
         (s, t))
       chosen)

let sink_pairs ~sinks ~clients =
  let seen = Hashtbl.create 16 in
  let check_distinct label arr =
    Array.iter
      (fun v ->
        if Hashtbl.mem seen v then
          invalid_arg ("Highpri.sink_pairs: duplicate/overlapping " ^ label);
        Hashtbl.add seen v ())
      arr
  in
  check_distinct "sinks" sinks;
  check_distinct "clients" clients;
  let acc = ref [] in
  Array.iter
    (fun c ->
      Array.iter
        (fun s ->
          acc := (c, s) :: (s, c) :: !acc)
        sinks)
    clients;
  List.rev !acc

type placement = Uniform | Local

let hop_distance_to_set g sinks =
  (* Multi-source BFS over outgoing arcs (graphs here are symmetric). *)
  let n = Graph.node_count g in
  let dist = Array.make n max_int in
  let q = Queue.create () in
  Array.iter
    (fun s ->
      dist.(s) <- 0;
      Queue.add s q)
    sinks;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let off = Graph.out_offsets g and ids = Graph.out_arc_ids g in
    for k = off.(v) to off.(v + 1) - 1 do
      let u = Graph.dst g ids.(k) in
      if dist.(u) = max_int then begin
        dist.(u) <- dist.(v) + 1;
        Queue.add u q
      end
    done
  done;
  dist

let select_clients rng g ~sinks ~count placement =
  let n = Graph.node_count g in
  let is_sink = Array.make n false in
  Array.iter (fun s -> is_sink.(s) <- true) sinks;
  let candidates = ref [] in
  for v = n - 1 downto 0 do
    if not is_sink.(v) then candidates := v :: !candidates
  done;
  let candidates = Array.of_list !candidates in
  if count < 0 || count > Array.length candidates then
    invalid_arg "Highpri.select_clients: count out of range";
  match placement with
  | Uniform ->
      let idx = Prng.sample_without_replacement rng count (Array.length candidates) in
      Array.map (fun i -> candidates.(i)) idx
  | Local ->
      let dist = hop_distance_to_set g sinks in
      (* Shuffle first so equal-distance ties break randomly. *)
      Prng.shuffle rng candidates;
      let sorted = Array.copy candidates in
      Array.sort (fun a b -> compare dist.(a) dist.(b)) sorted;
      Array.sub sorted 0 count

let client_count_for_density ~n ~sinks ~density =
  if sinks <= 0 then invalid_arg "Highpri.client_count_for_density: no sinks";
  let ideal =
    density *. float_of_int (n * (n - 1)) /. (2. *. float_of_int sinks)
  in
  let c = int_of_float (Float.round ideal) in
  max 1 (min c (n - sinks))

let volumes rng ~low ~fraction ~pairs =
  if fraction <= 0. || fraction >= 1. then
    invalid_arg "Highpri.volumes: fraction must be in (0, 1)";
  if pairs = [] then invalid_arg "Highpri.volumes: no pairs";
  List.iter
    (fun (s, t) -> if s = t then invalid_arg "Highpri.volumes: diagonal pair")
    pairs;
  let eta_l = Matrix.total low in
  let target = eta_l *. fraction /. (1. -. fraction) in
  let marks = List.map (fun _ -> Prng.uniform rng 1. 4.) pairs in
  let mark_sum = List.fold_left ( +. ) 0. marks in
  let m = Matrix.create (Matrix.size low) in
  List.iter2
    (fun (s, t) mk -> Matrix.add m s t (target *. mk /. mark_sum))
    pairs marks;
  m
