(* Run manifests: the provenance record emitted alongside every trace,
   metrics, or bench artifact so a result file can be traced back to
   the exact code revision, configuration, seed and topology that
   produced it.  Everything in a manifest is either deterministic
   (config, seed, digest) or explicitly environmental (git revision,
   OCaml version, core count) — there are no wall-clock timestamps, so
   two runs of the same build on the same inputs write byte-identical
   manifests. *)

module Vhash = Dtr_util.Vhash
module Graph = Dtr_graph.Graph

let version = "1.0.0"

let getenv name =
  match Sys.getenv_opt name with Some "" | None -> None | some -> some

(* Revision resolution order: an explicit override (set by CI or the
   bench harness), the Actions-provided SHA, then asking git itself;
   "unknown" when building from a tarball. *)
let git_rev () =
  match getenv "DTR_GIT_REV" with
  | Some r -> r
  | None -> (
      match getenv "GITHUB_SHA" with
      | Some r -> r
      | None -> (
          try
            let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
            let line = try input_line ic with End_of_file -> "" in
            match Unix.close_process_in ic with
            | Unix.WEXITED 0 when line <> "" -> line
            | _ -> "unknown"
          with _ -> "unknown"))

let build_info () =
  Printf.sprintf "dtr %s (rev %s, ocaml %s, %d cores)" version (git_rev ())
    Sys.ocaml_version
    (Domain.recommended_domain_count ())

(* Structural fingerprint of a topology: node/arc counts and every
   arc's endpoints, capacity and delay folded through Vhash.combine in
   arc-id order.  Float fields enter as their IEEE bit patterns, so the
   digest distinguishes topologies down to the last ulp. *)
let topology_digest g =
  let bits f =
    Int64.to_int (Int64.logand (Int64.bits_of_float f) Int64.max_int)
  in
  let h = ref (Vhash.combine 0 (Graph.node_count g)) in
  h := Vhash.combine !h (Graph.arc_count g);
  Array.iter
    (fun (a : Graph.arc) ->
      h := Vhash.combine !h a.src;
      h := Vhash.combine !h a.dst;
      h := Vhash.combine !h (bits a.capacity);
      h := Vhash.combine !h (bits a.delay))
    (Graph.arcs g);
  Printf.sprintf "%016x" (!h land max_int)

let float_str x = Printf.sprintf "%.17g" x

let config_json (c : Search_config.t) =
  let robust =
    match c.robust with
    | None -> "null"
    | Some r ->
        Printf.sprintf "{\"alpha\":%s,\"top_k\":%d}"
          (float_str r.Search_config.alpha)
          r.Search_config.top_k
  in
  Printf.sprintf
    "{\"n_iters\":%d,\"k_iters\":%d,\"m_neighbors\":%d,\"diversify_after\":%d,\"g1\":%s,\"g2\":%s,\"g3\":%s,\"tau\":%s,\"max_step\":%d,\"scan_probability\":%s,\"seed_split\":%d,\"scan_jobs\":%d,\"trace_probes\":%b,\"trace_sample\":%d,\"robust\":%s}"
    c.n_iters c.k_iters c.m_neighbors c.diversify_after (float_str c.g1)
    (float_str c.g2) (float_str c.g3) (float_str c.tau) c.max_step
    (float_str c.scan_probability) c.seed_split c.scan_jobs c.trace_probes
    c.trace_sample robust

let to_json ?seed ?jobs ?restarts ?model ?topology ?config ?graph () =
  let b = Buffer.create 256 in
  let field name value =
    if Buffer.length b > 1 then Buffer.add_char b ',';
    Buffer.add_string b (Printf.sprintf "%S:" name);
    Buffer.add_string b value
  in
  Buffer.add_char b '{';
  field "tool" "\"dtr\"";
  field "version" (Printf.sprintf "%S" version);
  field "git_rev" (Printf.sprintf "%S" (git_rev ()));
  field "ocaml" (Printf.sprintf "%S" Sys.ocaml_version);
  field "os_type" (Printf.sprintf "%S" Sys.os_type);
  field "cores" (string_of_int (Domain.recommended_domain_count ()));
  (match seed with Some s -> field "seed" (string_of_int s) | None -> ());
  (match jobs with Some j -> field "jobs" (string_of_int j) | None -> ());
  (match restarts with
  | Some r -> field "restarts" (string_of_int r)
  | None -> ());
  (match model with Some m -> field "model" (Printf.sprintf "%S" m) | None -> ());
  (match topology with
  | Some t -> field "topology" (Printf.sprintf "%S" t)
  | None -> ());
  (match graph with
  | Some g ->
      field "nodes" (string_of_int (Graph.node_count g));
      field "arcs" (string_of_int (Graph.arc_count g));
      field "topology_digest" (Printf.sprintf "%S" (topology_digest g))
  | None -> ());
  (match config with Some c -> field "config" (config_json c) | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let write ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc json;
      output_char oc '\n')
