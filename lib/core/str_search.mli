(** STR baseline: the Fortz–Thorup “single weight change” local search
    (paper §5.1.3), used as the comparison point for DTR.

    Each iteration picks one arc — half the time uniformly, half the
    time biased toward costly arcs through the same heavy-tailed rank
    distribution as Algorithm 2 — and scans every candidate weight
    value for it, accepting the best if it improves the lexicographic
    objective; the same stall-triggered diversification as Algorithm 1
    applies.

    The search also maintains a Pareto archive of evaluated
    [(Φ_H, Φ_L)] points, which implements §5.3.1's relaxation: the
    best low-priority cost achievable while degrading the high-priority
    cost by at most a factor [(1 + ε)] ({!relaxed_best}). *)

type archive_point = {
  phi_h : float;
  phi_l : float;
  w : int array;  (** the weight vector achieving this trade-off *)
}

type report = {
  best : Problem.solution;
  objective : Dtr_cost.Lexico.t;
  evaluations : int;
  improvements : int;
  memo_hits : int;
      (** scan candidates served from the evaluated-solution memo
          instead of being re-evaluated *)
  memo_misses : int;  (** scan candidates that had to be evaluated *)
  archive : archive_point list;
      (** Pareto-nondominated [(Φ_H, Φ_L)] trade-offs encountered,
          sorted by increasing [phi_h].  Only tracked under the
          load-based model; empty under SLA. *)
}

val default_iters : Search_config.t -> int
(** Iteration count giving twice the objective-evaluation budget of
    Algorithm 1 ([(2N + K) ⋅ m] evaluations): one single-weight-change
    iteration scans all 29 alternative weight values of an arc, so the
    default is [(2N + K) ⋅ m / 29]. *)

val run :
  ?w0:int array ->
  ?iters:int ->
  ?stop:(unit -> bool) ->
  ?on_progress:(int -> Dtr_cost.Lexico.t -> unit) ->
  ?trace:Trace.t ->
  Dtr_util.Prng.t ->
  Search_config.t ->
  Problem.t ->
  report
(** [w0] defaults to mid-range uniform weights; [iters] to
    {!default_iters}.  [stop], polled once per iteration, ends the run
    early when it returns [true] (the wall-clock budget hook; at least
    one iteration always runs, and a run that is never stopped is
    bit-identical to one without the callback).  With an enabled
    [trace], one [Str_scan] event is recorded per iteration ([detail] =
    scanned arc) and one [Diversify] event per perturbation
    ([detail] = -1); every field but the timestamp is identical for
    every [scan_jobs] value.
    @raise Invalid_argument on an out-of-range or wrong-length [w0]
    ({!Dtr_routing.Weights.validate}). *)

val relaxed_best : report -> epsilon:float -> archive_point option
(** Best (lowest) [Φ_L] among archive points with
    [Φ_H <= (1 + epsilon) ⋅ Φ*_H], where [Φ*_H] is the best
    high-priority cost the search found.  [None] when the archive is
    empty (SLA model) or nothing qualifies.
    @raise Invalid_argument on [epsilon < 0.]. *)
