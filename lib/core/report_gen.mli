(** Aggregated run reports: fold a JSONL trace (plus an optional
    metrics snapshot and manifest) into one self-contained document —
    the convergence curve, acceptance/diversification/memo rates by
    phase, wall-clock per phase, and the run's final state — so a
    finished run can be read without grepping JSONL by hand.

    {b Determinism.}  Every number in a report is a pure function of
    the input artifacts: a trace recorded with timestamps normalized
    ([--trace-timestamps off], [Trace.ring ~timestamps:false]) yields
    byte-identical reports for every [--jobs × --scan-jobs]
    combination, in both Markdown and JSON form.  No wall-clock
    timestamps or file paths are embedded. *)

type t

val load :
  ?metrics:string -> ?manifest:string -> string -> (t, string) result
(** [load trace_path] parses a JSONL trace (one {!Trace.to_json} line
    per event; blank lines skipped).  [metrics] names a
    [Dtr_util.Metrics.to_json] snapshot, [manifest] a {!Manifest}
    sidecar; both are parsed and embedded.  Errors on an unreadable
    file, an unparseable metrics/manifest document, or a trace with
    events but none parseable.  Lines that fail to parse are counted
    ({!bad_lines}), not fatal — a truncated tail must not hide the
    rest of a long run. *)

val events : t -> Trace.event list
(** Parsed events in file order. *)

val bad_lines : t -> int

(** {1 Derived statistics} *)

type phase = {
  p_restart : int;  (** [-1] outside a multi-start *)
  p_label : string;
  p_moves : int;  (** iteration-level decision events in the phase *)
  p_accepted : int;
  p_probes : int;
  p_memo_probes : int;  (** probes served from the memo *)
  p_diversify : int;
  p_evaluations : int;  (** objective evaluations spent in the phase *)
  p_memo_hits : int;
  p_memo_misses : int;
  p_wall_us : float;  (** 0 on a timestamp-normalized trace *)
  p_best : float array;  (** incumbent objective at phase end *)
}

val phases : t -> phase list
(** One entry per [Phase_done] event, in trace order: the events since
    the previous phase boundary of the same restart, with evaluation /
    memo counters and wall-clock differenced against that boundary.
    Phase labels are inferred from the event kinds present (DTR
    routine ordinals, MTR passes, annealing phases). *)

type totals = {
  t_events : int;
  t_probes : int;
  t_memo_probes : int;
  t_moves : int;
  t_accepted : int;
  t_diversify : int;
  t_restarts : int;  (** [Restart_done] events; 0 for a single run *)
  t_evaluations : int;  (** summed across restart segments *)
  t_full : int;
  t_delta : int;
  t_memo_hits : int;
  t_memo_misses : int;
  t_duration_us : float;  (** max event timestamp *)
  t_best : float array;  (** lexicographic minimum of [best] fields *)
}

val totals : t -> totals

(** {1 Tables} *)

val summary_table : t -> Dtr_util.Table.t

val kind_table : t -> Dtr_util.Table.t
(** Events and acceptance counts per event kind. *)

val phase_table : t -> Dtr_util.Table.t
(** {!phases} rendered with acceptance / memo-hit rates and wall-clock
    seconds per phase. *)

val restart_table : t -> Dtr_util.Table.t
(** One row per [Restart_done]: final objective, whether it improved
    on all lower indices, evaluations spent.  Empty for single runs. *)

val convergence_table : t -> Dtr_util.Table.t
(** Best-so-far improvements over cumulative evaluations
    ({!Trace.convergence} rendered by
    [Dtr_routing.Report.convergence_table]). *)

val spans_table : t -> Dtr_util.Table.t option
(** Wall-clock per profiler span from the metrics snapshot ([None]
    without one, or when it has no spans). *)

(** {1 Documents} *)

val to_markdown : t -> string
(** Self-contained Markdown report: summary, per-kind and per-phase
    statistics, restart and convergence tables, profiler spans, and
    the manifest (verbatim, fenced) when given. *)

val to_json : t -> string
(** The same content as one JSON document (floats as ["%.17g"]); the
    manifest is embedded verbatim as an object. *)
