module Prng = Dtr_util.Prng
module Lexico = Dtr_cost.Lexico
module Objective = Dtr_routing.Objective
module Weights = Dtr_routing.Weights

type schedule = {
  t0_ratio : float;
  cooling : float;
  moves_per_temp : int;
  t_min_ratio : float;
}

let default_schedule =
  { t0_ratio = 0.05; cooling = 0.95; moves_per_temp = 50; t_min_ratio = 1e-4 }

let validate_schedule s =
  if s.t0_ratio <= 0. then invalid_arg "Anneal_search: t0_ratio must be positive";
  if s.cooling <= 0. || s.cooling >= 1. then
    invalid_arg "Anneal_search: cooling must be in (0, 1)";
  if s.moves_per_temp < 1 then
    invalid_arg "Anneal_search: moves_per_temp must be positive";
  if s.t_min_ratio <= 0. || s.t_min_ratio >= 1. then
    invalid_arg "Anneal_search: t_min_ratio must be in (0, 1)"

type report = {
  best : Problem.solution;
  objective : Lexico.t;
  evaluations : int;
  accepted : int;
}

(* Propose one two-arc move on [w] using the Algorithm-2 candidate
   machinery with a cost ranking. *)
let propose rng cfg ~costs_cmp ~n_arcs w =
  let ranking = Neighborhood.rank_by_cost ~cmp:costs_cmp n_arcs in
  let a, b =
    Neighborhood.candidate_sets rng ~tau:cfg.Search_config.tau ~m:1 ~ranking
  in
  match Neighborhood.moves rng ~a ~b with
  | [] -> Array.copy w
  | move :: _ ->
      let step = Prng.int_incl rng 1 cfg.Search_config.max_step in
      Neighborhood.apply move ~step w

(* One annealing phase: minimize [energy] by mutating the class chosen
   by [mutate].  Returns the accepted-move count.  With an enabled
   [trace], one [Anneal_step] event is recorded per Metropolis proposal
   ([detail] = phase ordinal, [value] = current temperature,
   [counts0] = the run's counter baselines). *)
let anneal_phase ?(trace = Trace.disabled) ?(detail = 0) ?(counts0 = (0, 0, 0))
    rng schedule ~energy ~mutate ~current ~best =
  let eval0, full0, delta0 = counts0 in
  (* The incumbent's energy is cached and refreshed only on acceptance
     (it was already computed as the candidate's energy then), instead
     of recomputing [energy !current] on every proposal.  Cached and
     recomputed values are the same float, so the trajectory is
     bit-identical. *)
  let e_cur = ref (energy !current) in
  let e0 = Float.max 1e-9 !e_cur in
  let t = ref (schedule.t0_ratio *. e0) in
  let t_min = !t *. schedule.t_min_ratio in
  let accepted = ref 0 in
  let step = ref 0 in
  while !t > t_min do
    for _ = 1 to schedule.moves_per_temp do
      incr step;
      let before = Problem.objective !current in
      let cand = mutate rng !current in
      let e_cand = energy cand in
      let delta = e_cand -. !e_cur in
      let accept =
        delta <= 0. || Prng.float rng 1.0 < exp (-.delta /. !t)
      in
      if accept then begin
        current := cand;
        e_cur := e_cand;
        incr accepted;
        if Lexico.lt ~rel_tol:1e-9 (Problem.objective cand) (Problem.objective !best)
        then best := cand
      end;
      if Trace.enabled trace then begin
        let e, f, d = Problem.domain_eval_counts () in
        Trace.emit trace ~kind:Trace.Anneal_step ~iteration:!step ~detail
          ~accepted:accept
          ~before:(Trace.pair before)
          ~after:(Trace.pair (Problem.objective !current))
          ~best:(Trace.pair (Problem.objective !best))
          ~evaluations:(e - eval0) ~full:(f - full0) ~delta:(d - delta0)
          ~value:!t ()
      end
    done;
    t := !t *. schedule.cooling
  done;
  !accepted

let run ?(schedule = default_schedule) ?w0 ?(trace = Trace.disabled) rng cfg
    problem =
  Search_config.validate cfg;
  validate_schedule schedule;
  let ((eval0, full0, delta0) as counts0) = Problem.domain_eval_counts () in
  let phase_done ~detail best =
    if Trace.enabled trace then begin
      let e, f, d = Problem.domain_eval_counts () in
      let b = Trace.pair (Problem.objective best) in
      Trace.emit trace ~kind:Trace.Phase_done ~iteration:0 ~detail ~before:b
        ~after:b ~best:b ~evaluations:(e - eval0) ~full:(f - full0)
        ~delta:(d - delta0) ()
    end
  in
  let mid = (Weights.min_weight + Weights.max_weight) / 2 in
  let m = Dtr_graph.Graph.arc_count problem.Problem.graph in
  let wh0, wl0 =
    match w0 with Some w -> w | None -> (Array.make m mid, Array.make m mid)
  in
  (* Validate caller-supplied starting vectors up front: an
     out-of-range weight used to survive until a scan indexed past a
     value table. *)
  (match w0 with
  | None -> ()
  | Some (wh, wl) ->
      Weights.validate problem.Problem.graph wh;
      Weights.validate problem.Problem.graph wl);
  let current = ref (Problem.eval_dtr problem ~wh:wh0 ~wl:wl0) in
  let best = ref !current in
  (* Phase 1: anneal W_H against the primary cost. *)
  let mutate_h rng (sol : Problem.solution) =
    let costs = Objective.link_costs_h problem.Problem.model sol.Problem.result in
    let wh =
      propose rng cfg
        ~costs_cmp:(fun a b -> Lexico.compare costs.(a) costs.(b))
        ~n_arcs:m sol.Problem.wh
    in
    Problem.combine problem
      ~h:(Problem.route_h problem wh)
      ~l:(Problem.l_routing_of sol)
  in
  let acc1 =
    anneal_phase ~trace ~detail:0 ~counts0 rng schedule
      ~energy:(fun s -> (Problem.objective s).Lexico.primary)
      ~mutate:mutate_h ~current ~best
  in
  phase_done ~detail:0 !best;
  (* Fix the best W_H found, then anneal W_L against Φ_L. *)
  current :=
    Problem.combine problem
      ~h:(Problem.h_routing_of !best)
      ~l:(Problem.l_routing_of !current);
  if Lexico.lt ~rel_tol:1e-9 (Problem.objective !current) (Problem.objective !best)
  then best := !current;
  let mutate_l rng (sol : Problem.solution) =
    let costs = Objective.link_costs_l sol.Problem.result in
    let wl =
      propose rng cfg
        ~costs_cmp:(fun a b -> Float.compare costs.(a) costs.(b))
        ~n_arcs:m sol.Problem.wl
    in
    Problem.combine problem
      ~h:(Problem.h_routing_of sol)
      ~l:(Problem.route_l problem wl)
  in
  let acc2 =
    anneal_phase ~trace ~detail:1 ~counts0 rng schedule
      ~energy:(fun s -> (Problem.objective s).Lexico.secondary)
      ~mutate:mutate_l ~current ~best
  in
  phase_done ~detail:1 !best;
  {
    best = !best;
    objective = Problem.objective !best;
    evaluations = Problem.domain_evaluations () - eval0;
    accepted = acc1 + acc2;
  }
