(** Extension beyond the paper's two classes: the Algorithm-1 search
    generalized to [T >= 2] priority classes over the load-based cost,
    each class routed on its own topology (MT-OSPF supports up to 128).

    The objective is the length-[T] lexicographic vector
    [⟨Φ_0, Φ_1, …⟩] (class 0 = highest priority).  The search runs one
    Algorithm-1-style routine per class in priority order — optimizing
    class [k]'s weights with all other classes frozen — followed by a
    joint refinement phase cycling over the classes, with the same
    stall-triggered diversification as the two-class search.

    [run_single_topology] is the STR baseline in this setting: one
    shared weight vector for all classes, optimized against the same
    vector objective. *)

type problem = {
  graph : Dtr_graph.Graph.t;
  matrices : Dtr_traffic.Matrix.t array;
      (** per-class demand, highest priority first *)
}

val create_problem :
  graph:Dtr_graph.Graph.t -> matrices:Dtr_traffic.Matrix.t array -> problem
(** @raise Invalid_argument on fewer than 2 classes, size mismatch, or
    a graph that is not strongly connected. *)

type report = {
  weights : int array array;  (** best per-class weight vectors *)
  objective : float array;  (** [⟨Φ_0, …, Φ_{T−1}⟩] of the best *)
  eval : Dtr_routing.Multi.t;  (** full evaluation of the best *)
  evaluations : int;
  improvements : int;
}

val run :
  ?w0:int array array ->
  ?trace:Trace.t ->
  Dtr_util.Prng.t ->
  Search_config.t ->
  problem ->
  report
(** Multi-topology search.  [w0] defaults to mid-range uniform vectors
    (one per class).  With an enabled [trace], one [Mtr_pass] event is
    recorded per iteration ([detail] = class being optimized, or [T]
    during joint refinement), plus [Diversify] and [Phase_done] events;
    objectives are the length-[T] vectors.  MTR passes are sequential
    (first-improvement commits mid-scan), so the trace is trivially
    identical under every [--scan-jobs].
    @raise Invalid_argument on a [w0] with the wrong class count, or
    any vector out of range or mis-sized
    ({!Dtr_routing.Weights.validate}). *)

val run_single_topology :
  ?w0:int array ->
  ?trace:Trace.t ->
  Dtr_util.Prng.t ->
  Search_config.t ->
  problem ->
  report
(** Single shared weight vector for every class (the STR baseline);
    the returned [weights] repeats that vector [T] times (physically
    shared).
    @raise Invalid_argument on an out-of-range or wrong-length [w0]
    ({!Dtr_routing.Weights.validate}). *)
