(** Tuning knobs of the weight-search heuristics (paper §5.1.3).

    The paper's published budget ([N = 300 000], [K = 800 000]) targets
    hours of C runtime; the heuristic is anytime, so the scaled-down
    presets below reach the same qualitative STR/DTR gap in seconds.
    EXPERIMENTS.md records the preset used for every reported number. *)

type robust = {
  alpha : float;
      (** weight of the failure penalty in the robust objective
          [J = normal + alpha * penalty]; must be non-negative *)
  top_k : int;
      (** failures averaged by the penalty: the mean of the [top_k]
          worst {e finite} single-link post-failure costs
          ({!Dtr_routing.Failure_sweep.penalty}); [1] is the pure
          worst case *)
}
(** Failure-robust search mode (CLI [--robust single-link]). *)

type t = {
  n_iters : int;  (** [N]: iterations of routines 1 and 2 each *)
  k_iters : int;  (** [K]: iterations of the refinement routine *)
  m_neighbors : int;  (** [m]: neighbors evaluated per iteration; paper 5 *)
  diversify_after : int;
      (** [M]: iterations without improvement before perturbing *)
  g1 : float;  (** fraction of [W_H] weights perturbed in routine 1; paper 5% *)
  g2 : float;  (** fraction of [W_L] weights perturbed in routine 2; paper 5% *)
  g3 : float;  (** fraction of both perturbed in routine 3; paper 3% *)
  tau : float;  (** heavy-tail exponent of the rank distribution; paper 1.5 *)
  max_step : int;
      (** upper bound of the (uniform) random magnitude of a single
          weight increase/decrease; the paper leaves the amount
          unspecified *)
  scan_probability : float;
      (** probability that a FindH/FindL pass replaces its two-arc
          neighborhood by a full value scan of one cost-ranked arc
          (the Fortz–Thorup move).  Compensates for running orders of
          magnitude fewer iterations than the paper's N = 300 000;
          set to 0. for the literal Algorithm 2 neighborhood. *)
  seed_split : int;  (** stream id so sub-searches decorrelate *)
  scan_jobs : int;
      (** worker domains for the neighborhood-scan engine ({!Scan})
          inside one search run; results are bit-identical for every
          value (CLI [--scan-jobs]).  Default 1 (sequential). *)
  trace_probes : bool;
      (** when a {!Trace} sink is active, also record one [Probe]
          event per scan candidate (re-emitted in candidate order, so
          still jobs-invariant).  Probes dominate trace volume —
          roughly [m_neighbors] (or 29, on a value scan) events per
          iteration — so long runs may want them off.  Ignored (zero
          cost) when tracing is disabled.  Default [true]. *)
  trace_sample : int;
      (** probe decimation period: when probes are traced, keep every
          [trace_sample]-th one per search run ({!Trace.sample} — the
          counter advances per probe offered, so the kept set is
          jobs-invariant).  [1] keeps every probe, byte-identical to a
          build without the sampler (CLI [--trace-sample]).
          Default [1]. *)
  robust : robust option;
      (** when set, the searches pick their incumbent best by the
          robust objective [J = normal + alpha * penalty(single-link
          sweep)] instead of the normal cost alone.  Inner-loop scans
          still descend the normal cost; a sweep only runs when a
          candidate's normal cost beats the robust best (since
          [J >= normal], nothing better can hide behind a worse
          normal cost).  Default [None] — and with [None] every
          search path is bit-identical to the non-robust build. *)
  reference_loops : bool;
      (** test oracle: force the pre-incremental inner loops — full
          arc re-sort per {!Str_search.pick_arc}/FindH/FindL pass and
          a fresh Zobrist rehash of both weight vectors per scan —
          instead of the cached ranking repaired across commits and
          the incrementally shifted base key.  Both paths are
          bit-identical by construction; this switch exists so tests
          can assert it.  Default [false] (incremental). *)
}

val paper : t
(** The published parameters (very slow: [N = 300000], [K = 800000]). *)

val default : t
(** Balanced preset used by examples and the CLI:
    [N = 1500], [K = 3000], [M = 60]. *)

val quick : t
(** Small preset for tests and smoke benches:
    [N = 250], [K = 500], [M = 30]. *)

val scale : t -> float -> t
(** Multiply the iteration budgets ([n_iters], [k_iters],
    [diversify_after]) by a positive factor (min 1 iteration each).
    @raise Invalid_argument on a non-positive factor. *)

val validate : t -> unit
(** @raise Invalid_argument on nonsensical settings (non-positive
    budgets, fractions outside [0,1], [m_neighbors < 1], ...). *)
