(** Run manifests: provenance records emitted alongside trace, metrics
    and bench artifacts.

    A manifest ties a result file to the code revision, build, machine
    shape, configuration, seed and topology that produced it, so an
    artifact found in CI storage (or a colleague's scratch directory)
    is self-describing.  Manifests contain no wall-clock timestamps:
    re-running the same build on the same inputs writes byte-identical
    manifests, which keeps them diffable in CI alongside the
    deterministic metrics snapshot. *)

val version : string
(** Tool version string (matches the CLI's advertised version). *)

val git_rev : unit -> string
(** Source revision: the [DTR_GIT_REV] environment variable if set,
    else [GITHUB_SHA], else [git rev-parse HEAD], else ["unknown"]. *)

val build_info : unit -> string
(** One-line human summary — version, revision, OCaml version, core
    count — used by [dtr_cli --version]. *)

val topology_digest : Dtr_graph.Graph.t -> string
(** 16-hex-digit structural fingerprint of a graph: node/arc counts
    and every arc's endpoints, capacity and delay (as IEEE bit
    patterns) folded in arc-id order through {!Dtr_util.Vhash.combine}.
    Equal graphs always digest equal; distinct graphs collide with
    probability ~2{^-63}. *)

val config_json : Search_config.t -> string
(** JSON object with every field of a search configuration. *)

val to_json :
  ?seed:int ->
  ?jobs:int ->
  ?restarts:int ->
  ?model:string ->
  ?topology:string ->
  ?config:Search_config.t ->
  ?graph:Dtr_graph.Graph.t ->
  unit ->
  string
(** One-line JSON manifest.  Always includes tool name, version, git
    revision, OCaml version, OS type and core count; each optional
    argument adds the corresponding field ([graph] adds node count,
    arc count and {!topology_digest}). *)

val write : path:string -> string -> unit
(** Write a manifest (or any one-line JSON payload) to [path],
    newline-terminated. *)
