(** Cached cost-sorted arc rankings, repaired incrementally across
    context commits.

    A full {!Neighborhood.rank_by_cost} is O(m log m) per search
    iteration; a commit moves the cost rows of only a handful of arcs.
    [arcs] returns exactly the array a full sort would (the ordering's
    arc-id tiebreak makes the sorted permutation unique), but when the
    cache is warm it only re-sorts the arcs the context reports as
    changed since the cached version ({!Problem.ctx_changes_since})
    and merges them back in O(m).

    A cache is valid for one context (physical identity) and falls
    back to a full sort whenever the context was rebuilt by a
    full-evaluation commit, the reader lags past the context's bounded
    commit log, or the context changed identity.  Callers must treat
    the returned array as read-only; it stays valid until the next
    [arcs] call on the same cache. *)

type t

val create : unit -> t
(** An empty cache (no context, no ranking). *)

val arcs :
  ?reference:bool -> t -> Problem.ctx -> cmp:(int -> int -> int) -> int -> int array
(** [arcs t ctx ~cmp n_arcs] is bitwise
    [Neighborhood.rank_by_cost ~cmp n_arcs] for the context's current
    cost rows, served from the repaired cache when possible.  [cmp]
    must be freshly derived from [ctx] (e.g.
    {!Problem.ctx_arc_cmp_h}[ problem ctx] this iteration — the
    closures snapshot live rows, which commits replace).
    [~reference:true] (the {!Search_config.t.reference_loops} oracle)
    bypasses the cache entirely and full-sorts a fresh array. *)
