module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Matrix = Dtr_traffic.Matrix
module Objective = Dtr_routing.Objective
module Evaluate = Dtr_routing.Evaluate
module Loads = Dtr_routing.Loads
module Weights = Dtr_routing.Weights

type t = {
  graph : Graph.t;
  th : Matrix.t;
  tl : Matrix.t;
  model : Objective.model;
}

let create ~graph ~th ~tl ~model =
  let n = Graph.node_count graph in
  if Matrix.size th <> n || Matrix.size tl <> n then
    invalid_arg "Problem.create: matrix size mismatch";
  if not (Graph.is_strongly_connected graph) then
    invalid_arg "Problem.create: graph must be strongly connected";
  { graph; th; tl; model }

type solution = {
  wh : int array;
  wl : int array;
  result : Objective.result;
}

type class_routing = {
  w : int array;
  dags : Spf.dag array;
  loads : float array;
  mutable sla_cache : Evaluate.sla option;
}

let objective s = s.result.Objective.objective

let eval_count = ref 0

let evaluations () = !eval_count

let reset_evaluations () = eval_count := 0

let route_with t matrix w =
  Weights.validate t.graph w;
  let w = Array.copy w in
  let dags = Spf.all_destinations t.graph ~weights:w in
  let loads = Loads.of_matrix t.graph ~dags matrix in
  { w; dags; loads; sla_cache = None }

let route_h t w = route_with t t.th w

let route_l t w = route_with t t.tl w

let routing_weights r = Array.copy r.w

let combine t ~h ~l =
  incr eval_count;
  let eval =
    Evaluate.assemble t.graph ~dags_h:h.dags ~h_loads:h.loads ~dags_l:l.dags
      ~l_loads:l.loads
  in
  let result =
    match t.model with
    | Objective.Load -> Objective.of_eval t.model eval ~th:t.th ()
    | Objective.Sla params -> (
        match h.sla_cache with
        | Some sla -> Objective.of_eval t.model eval ~th:t.th ~sla ()
        | None ->
            let sla = Evaluate.evaluate_sla params eval ~th:t.th in
            h.sla_cache <- Some sla;
            Objective.of_eval t.model eval ~th:t.th ~sla ())
  in
  { wh = h.w; wl = l.w; result }

let eval_dtr t ~wh ~wl = combine t ~h:(route_h t wh) ~l:(route_l t wl)

let eval_str t ~w =
  incr eval_count;
  Weights.validate t.graph w;
  let w = Array.copy w in
  let dags = Spf.all_destinations t.graph ~weights:w in
  let h_loads = Loads.of_matrix t.graph ~dags t.th in
  let l_loads = Loads.of_matrix t.graph ~dags t.tl in
  let eval =
    Evaluate.assemble t.graph ~dags_h:dags ~h_loads ~dags_l:dags ~l_loads
  in
  let result = Objective.of_eval t.model eval ~th:t.th () in
  { wh = w; wl = w; result }

let is_str s = s.wh == s.wl

let h_routing_of s =
  {
    w = s.wh;
    dags = s.result.Objective.eval.Evaluate.dags_h;
    loads = s.result.Objective.eval.Evaluate.h_loads;
    sla_cache = s.result.Objective.sla;
  }

let l_routing_of s =
  {
    w = s.wl;
    dags = s.result.Objective.eval.Evaluate.dags_l;
    loads = s.result.Objective.eval.Evaluate.l_loads;
    sla_cache = None;
  }
