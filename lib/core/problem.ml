module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Matrix = Dtr_traffic.Matrix
module Objective = Dtr_routing.Objective
module Evaluate = Dtr_routing.Evaluate
module Eval_ctx = Dtr_routing.Eval_ctx
module Loads = Dtr_routing.Loads
module Weights = Dtr_routing.Weights
module Lexico = Dtr_cost.Lexico

type t = {
  graph : Graph.t;
  th : Matrix.t;
  tl : Matrix.t;
  model : Objective.model;
  dest_mode : Eval_ctx.dest_mode;
}

let create ~graph ~th ~tl ~model =
  let n = Graph.node_count graph in
  if Matrix.size th <> n || Matrix.size tl <> n then
    invalid_arg "Problem.create: matrix size mismatch";
  if not (Graph.is_strongly_connected graph) then
    invalid_arg "Problem.create: graph must be strongly connected";
  { graph; th; tl; model; dest_mode = Eval_ctx.All }

(* Demand mode: destinations that sink positive demand in any of the
   given matrices.  Full evaluations restrict their SPF sweeps to these
   (bitwise-identically: demandless destinations contribute nothing),
   which is what makes from-scratch evaluations affordable on the
   large presets. *)
let active_for t matrices =
  match t.dest_mode with
  | Eval_ctx.All -> None
  | Eval_ctx.Demand ->
      let act = Array.make (Graph.node_count t.graph) false in
      List.iter (fun m -> Matrix.iter m (fun _ dst _ -> act.(dst) <- true)) matrices;
      Some act

type solution = {
  wh : int array;
  wl : int array;
  result : Objective.result;
}

type class_routing = {
  w : int array;
  dags : Spf.dag array;
  loads : float array;
  mutable sla_cache : Evaluate.sla option;
}

let objective s = s.result.Objective.objective

(* Evaluation accounting.  Two levels:

   - process-wide totals, kept in [Atomic.t] so concurrent searches on
     a domain pool never lose increments;
   - per-domain counters (domain-local storage, single-writer, no
     contention), which the search loops difference to report their
     own effort — a delta of the *global* counter would absorb
     whatever other domains evaluated concurrently, making report
     fields like [Str_search.report.evaluations] depend on
     scheduling. *)

let eval_count = Atomic.make 0
let full_count = Atomic.make 0
let delta_count = Atomic.make 0

module Metrics = Dtr_util.Metrics

let m_full =
  Metrics.counter ~help:"Full (from-scratch) objective evaluations."
    "dtr_eval_full_total"

let m_delta =
  Metrics.counter ~help:"Incremental (delta) objective evaluations."
    "dtr_eval_delta_total"

type domain_counts = {
  mutable dc_eval : int;
  mutable dc_full : int;
  mutable dc_delta : int;
}

let domain_counts_key =
  Domain.DLS.new_key (fun () -> { dc_eval = 0; dc_full = 0; dc_delta = 0 })

let count_full () =
  Atomic.incr eval_count;
  Atomic.incr full_count;
  Metrics.incr_counter m_full;
  let c = Domain.DLS.get domain_counts_key in
  c.dc_eval <- c.dc_eval + 1;
  c.dc_full <- c.dc_full + 1

let count_delta () =
  Atomic.incr eval_count;
  Atomic.incr delta_count;
  Metrics.incr_counter m_delta;
  let c = Domain.DLS.get domain_counts_key in
  c.dc_eval <- c.dc_eval + 1;
  c.dc_delta <- c.dc_delta + 1

let evaluations () = Atomic.get eval_count

let full_evaluations () = Atomic.get full_count

let delta_evaluations () = Atomic.get delta_count

let domain_evaluations () = (Domain.DLS.get domain_counts_key).dc_eval

(* Transfer plumbing for the parallel scan engine: a scan task
   measures its own domain's counter delta, rolls it back, and the
   engine re-adds the per-task deltas on the calling domain in task
   order — so a report's [evaluations] field is identical for every
   [--scan-jobs].  The process-wide atomics are never adjusted (they
   counted the work exactly once, wherever it ran). *)

let domain_eval_counts () =
  let c = Domain.DLS.get domain_counts_key in
  (c.dc_eval, c.dc_full, c.dc_delta)

let move_domain_counts ~eval ~full ~delta =
  let c = Domain.DLS.get domain_counts_key in
  c.dc_eval <- c.dc_eval + eval;
  c.dc_full <- c.dc_full + full;
  c.dc_delta <- c.dc_delta + delta

let reset_evaluations () =
  Atomic.set eval_count 0;
  Atomic.set full_count 0;
  Atomic.set delta_count 0;
  let c = Domain.DLS.get domain_counts_key in
  c.dc_eval <- 0;
  c.dc_full <- 0;
  c.dc_delta <- 0

let spf_sweep t ~w ~matrices =
  match active_for t matrices with
  | None -> Spf.all_destinations t.graph ~weights:w
  | Some active -> Spf.for_destinations t.graph ~weights:w ~active

let route_with t matrix w =
  Weights.validate t.graph w;
  let w = Array.copy w in
  let dags = spf_sweep t ~w ~matrices:[ matrix ] in
  let loads = Loads.of_matrix t.graph ~dags matrix in
  { w; dags; loads; sla_cache = None }

let route_h t w = route_with t t.th w

let route_l t w = route_with t t.tl w

let routing_weights r = Array.copy r.w

let combine_raw t ~h ~l =
  let eval =
    Evaluate.assemble t.graph ~dags_h:h.dags ~h_loads:h.loads ~dags_l:l.dags
      ~l_loads:l.loads
  in
  let result =
    match t.model with
    | Objective.Load -> Objective.of_eval t.model eval ~th:t.th ()
    | Objective.Sla params -> (
        match h.sla_cache with
        | Some sla -> Objective.of_eval t.model eval ~th:t.th ~sla ()
        | None ->
            let sla = Evaluate.evaluate_sla params eval ~th:t.th in
            h.sla_cache <- Some sla;
            Objective.of_eval t.model eval ~th:t.th ~sla ())
  in
  { wh = h.w; wl = l.w; result }

let combine t ~h ~l =
  count_full ();
  combine_raw t ~h ~l

let eval_dtr t ~wh ~wl = combine t ~h:(route_h t wh) ~l:(route_l t wl)

let eval_str_raw t ~w =
  Weights.validate t.graph w;
  let w = Array.copy w in
  let dags = spf_sweep t ~w ~matrices:[ t.th; t.tl ] in
  let h_loads = Loads.of_matrix t.graph ~dags t.th in
  let l_loads = Loads.of_matrix t.graph ~dags t.tl in
  let eval =
    Evaluate.assemble t.graph ~dags_h:dags ~h_loads ~dags_l:dags ~l_loads
  in
  let result = Objective.of_eval t.model eval ~th:t.th () in
  { wh = w; wl = w; result }

let eval_str t ~w =
  count_full ();
  eval_str_raw t ~w

let is_str s = s.wh == s.wl

let h_routing_of s =
  {
    w = s.wh;
    dags = s.result.Objective.eval.Evaluate.dags_h;
    loads = s.result.Objective.eval.Evaluate.h_loads;
    sla_cache = s.result.Objective.sla;
  }

let l_routing_of s =
  {
    w = s.wl;
    dags = s.result.Objective.eval.Evaluate.dags_l;
    loads = s.result.Objective.eval.Evaluate.l_loads;
    sla_cache = None;
  }

(* ------------------------------------------------------------------ *)
(* Incremental evaluation.

   A [ctx] wraps an {!Eval_ctx.t} with class 0 = H, class 1 = L (for
   STR both classes alias one weight vector, so one probe moves both).
   [eval_delta] evaluates single candidates as probes whenever the
   objective is reachable incrementally, and falls back to a full
   evaluation when it is not: under the SLA model a high-priority
   weight change moves the delay of every H path, so Λ cannot be
   patched from per-arc Φ deltas — the per-pair delays must be
   re-walked, which is what the full evaluation does anyway. *)

type cls = [ `H | `L ]

module Vhash = Dtr_util.Vhash

type ctx = {
  mutable ec : Eval_ctx.t;
  c_str : bool;
  mutable c_sla : Evaluate.sla option;
      (* delay/penalty evaluation of the context's CURRENT high-priority
         routing; invalidated whenever a commit moves W_H *)
  mutable c_version : int;  (* bumps on every commit *)
  mutable c_log : (int * int array) list;
      (* newest-first (version, arcs whose per-arc rows that commit
         moved); bounded, cleared on full-fallback commits so readers
         see the gap and fall back to a full recompute *)
  mutable c_key : int option;
      (* Zobrist base key of the current weight vectors (both classes),
         shifted per change on probe commits; None until first demanded
         or after a full-fallback commit *)
}

let ec_of_solution t s =
  let eval = s.result.Objective.eval in
  let weights = if is_str s then [| s.wh; s.wh |] else [| s.wh; s.wl |] in
  let dags = [| eval.Evaluate.dags_h; eval.Evaluate.dags_l |] in
  Eval_ctx.create ~dags ~dest_mode:t.dest_mode t.graph ~weights
    ~matrices:[| t.th; t.tl |]

let ctx_of_solution t s =
  {
    ec = ec_of_solution t s;
    c_str = is_str s;
    c_sla = s.result.Objective.sla;
    c_version = 0;
    c_log = [];
    c_key = None;
  }

let ctx_is_str ctx = ctx.c_str

let ctx_weights ctx cls =
  Eval_ctx.weights ctx.ec (match cls with `H -> 0 | `L -> 1)

let ctx_weights_view ctx cls =
  Eval_ctx.weights_view ctx.ec (match cls with `H -> 0 | `L -> 1)

let ctx_version ctx = ctx.c_version

(* Commits a reader may lag behind before incremental repair stops
   paying for itself; past this the log is dropped from the tail and
   stale readers recompute from scratch. *)
let log_bound = 32

let ctx_changes_since ctx ~since =
  if since > ctx.c_version then None
  else
    let rec go acc expect log =
      if expect = since then Some (Array.of_list acc)
      else
        match log with
        | [] -> None
        | (v, arcs) :: rest ->
            if v <> expect then None
            else
              go
                (Array.fold_left (fun acc a -> a :: acc) acc arcs)
                (expect - 1) rest
    in
    go [] ctx.c_version ctx.c_log

(* Same construction as Scan's former per-scan rehash: XOR of both
   class vectors, each hashed under its own cls tag (for STR both
   classes view one vector, hashed twice under cls 0 and 1). *)
let compute_base_key ctx =
  let wh = Eval_ctx.weights_view ctx.ec 0 in
  let wl = Eval_ctx.weights_view ctx.ec 1 in
  Vhash.vector ~cls:0 wh lxor Vhash.vector ~cls:1 wl

let ctx_base_key ctx =
  match ctx.c_key with
  | Some k -> k
  | None ->
      let k = compute_base_key ctx in
      ctx.c_key <- Some k;
      k

let ctx_base_key_fresh ctx = compute_base_key ctx

let clone_ctx _t ctx =
  {
    ec = Eval_ctx.clone ctx.ec;
    c_str = ctx.c_str;
    c_sla = ctx.c_sla;
    c_version = ctx.c_version;
    c_log = ctx.c_log;
    c_key = ctx.c_key;
  }

let sync_ctx ~src ~dst =
  if src.c_str <> dst.c_str then
    invalid_arg "Problem.sync_ctx: class-sharing mismatch";
  Eval_ctx.sync ~src:src.ec ~dst:dst.ec;
  dst.c_sla <- src.c_sla;
  dst.c_version <- src.c_version;
  dst.c_log <- src.c_log;
  dst.c_key <- src.c_key

let ctx_sla params t ctx =
  match ctx.c_sla with
  | Some sla -> sla
  | None ->
      let sla =
        Evaluate.evaluate_sla params (Eval_ctx.to_evaluate ctx.ec) ~th:t.th
      in
      ctx.c_sla <- Some sla;
      sla

let ctx_solution t ctx =
  let ev = Eval_ctx.to_evaluate ctx.ec in
  let wh = Eval_ctx.weights ctx.ec 0 in
  let wl = if ctx.c_str then wh else Eval_ctx.weights ctx.ec 1 in
  let result =
    match t.model with
    | Objective.Load -> Objective.of_eval t.model ev ~th:t.th ()
    | Objective.Sla params ->
        Objective.of_eval t.model ev ~th:t.th ~sla:(ctx_sla params t ctx) ()
  in
  { wh; wl; result }

let weight_changes base w' =
  if Array.length base <> Array.length w' then
    invalid_arg "Problem.weight_changes: length mismatch";
  let acc = ref [] in
  for i = Array.length base - 1 downto 0 do
    if base.(i) <> w'.(i) then acc := (i, w'.(i)) :: !acc
  done;
  !acc

type delta = {
  d_cls : cls;
  d_changes : (int * int) list;  (* the candidate's (arc, weight) changes *)
  d_probe : Eval_ctx.probe option;  (* incremental path *)
  d_full : solution option;  (* fallback path *)
  d_objective : Lexico.t;
  d_phi_h : float;
  d_phi_l : float;
}

let delta_objective d = d.d_objective

let delta_phi_h d = d.d_phi_h

let delta_phi_l d = d.d_phi_l

let apply_changes w changes =
  let w' = Array.copy w in
  List.iter (fun (a, v) -> w'.(a) <- v) changes;
  w'

let eval_delta ?(count = true) t ctx ~cls ~changes =
  let probe_path ~lambda =
    if count then count_delta ();
    let klass = match cls with `H -> 0 | `L -> 1 in
    let p = Eval_ctx.probe ctx.ec ~klass ~changes in
    let phi = Eval_ctx.probe_phi p in
    let primary = match lambda with None -> phi.(0) | Some l -> l in
    {
      d_cls = cls;
      d_changes = changes;
      d_probe = Some p;
      d_full = None;
      d_objective = Lexico.make ~primary ~secondary:phi.(1);
      d_phi_h = phi.(0);
      d_phi_l = phi.(1);
    }
  in
  let full sol =
    let ev = sol.result.Objective.eval in
    {
      d_cls = cls;
      d_changes = changes;
      d_probe = None;
      d_full = Some sol;
      d_objective = sol.result.Objective.objective;
      d_phi_h = ev.Evaluate.phi_h;
      d_phi_l = ev.Evaluate.phi_l;
    }
  in
  match t.model with
  | Objective.Load -> probe_path ~lambda:None
  | Objective.Sla params ->
      if ctx.c_str then
        (* Any STR change moves the high-priority routing. *)
        let w = apply_changes (Eval_ctx.weights ctx.ec 0) changes in
        full (if count then eval_str t ~w else eval_str_raw t ~w)
      else if cls = `L then
        (* W_L cannot affect the H routing, so Λ is the cached value and
           only the secondary Φ_L needs the probe. *)
        probe_path ~lambda:(Some (ctx_sla params t ctx).Evaluate.lambda)
      else
        (* FindH under SLA: fall back (see the module comment above). *)
        let wh = apply_changes (Eval_ctx.weights ctx.ec 0) changes in
        let l =
          {
            w = Eval_ctx.weights ctx.ec 1;
            dags = Eval_ctx.dags ctx.ec 1;
            loads = Eval_ctx.loads ctx.ec 1;
            sla_cache = None;
          }
        in
        full
          ((if count then combine else combine_raw) t ~h:(route_h t wh) ~l)

(* Arc rankings for neighborhood construction, read from the live
   context's rows (shared, replaced-not-mutated on commit) instead of
   re-materializing Objective.link_costs_h's m Lexico records per
   iteration.  Orderings are identical: Lexico.compare without a
   tolerance is Float.compare on the primary, then the secondary. *)

let ctx_arc_cmp_h t ctx =
  let phi_l = Eval_ctx.phi_per_arc ctx.ec 1 in
  match t.model with
  | Objective.Load ->
      let phi_h = Eval_ctx.phi_per_arc ctx.ec 0 in
      fun a b ->
        let c = Float.compare phi_h.(a) phi_h.(b) in
        if c <> 0 then c else Float.compare phi_l.(a) phi_l.(b)
  | Objective.Sla params ->
      let delay = (ctx_sla params t ctx).Evaluate.arc_delay in
      fun a b ->
        let c = Float.compare delay.(a) delay.(b) in
        if c <> 0 then c else Float.compare phi_l.(a) phi_l.(b)

let ctx_arc_cmp_l _t ctx =
  let phi_l = Eval_ctx.phi_per_arc ctx.ec 1 in
  fun a b -> Float.compare phi_l.(a) phi_l.(b)

(* Shift the cached base key across a probe commit.  Must run before
   the weights move: before-values come from the live views.  A change
   list may revisit an arc, so earlier entries shadow the view. *)
let shift_key ctx ~cls ~changes =
  match ctx.c_key with
  | None -> ()
  | Some k ->
      let view = ctx_weights_view ctx cls in
      let k = ref k in
      let applied = ref [] in
      List.iter
        (fun (arc, v) ->
          let before =
            match List.assoc_opt arc !applied with
            | Some b -> b
            | None -> view.(arc)
          in
          if before <> v then
            if ctx.c_str then begin
              k := Vhash.shift !k ~cls:0 ~arc ~before ~after:v;
              k := Vhash.shift !k ~cls:1 ~arc ~before ~after:v
            end
            else begin
              let ci = match cls with `H -> 0 | `L -> 1 in
              k := Vhash.shift !k ~cls:ci ~arc ~before ~after:v
            end;
          applied := (arc, v) :: !applied)
        changes;
      ctx.c_key <- Some !k

let trim_log log =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | e :: rest -> e :: take (n - 1) rest
  in
  take log_bound log

let commit_delta t ctx d =
  match (d.d_probe, d.d_full) with
  | Some p, _ ->
      shift_key ctx ~cls:d.d_cls ~changes:d.d_changes;
      let touched = Array.of_list (Eval_ctx.probe_touched p) in
      Eval_ctx.commit ctx.ec p;
      ctx.c_version <- ctx.c_version + 1;
      ctx.c_log <- trim_log ((ctx.c_version, touched) :: ctx.c_log);
      if ctx.c_str || d.d_cls = `H then ctx.c_sla <- None;
      ctx_solution t ctx
  | None, Some sol ->
      ctx.ec <- ec_of_solution t sol;
      ctx.c_sla <- sol.result.Objective.sla;
      ctx.c_version <- ctx.c_version + 1;
      ctx.c_log <- [];
      ctx.c_key <- None;
      sol
  | None, None -> assert false

let abort_delta ctx d =
  match d.d_probe with Some p -> Eval_ctx.abort ctx.ec p | None -> ()

(* ------------------------------------------------------------------ *)
(* Failure-robust pricing: one single-link sweep against the context's
   current weights, aggregated into the robust objective
   J = normal + alpha * penalty.  The sweep runs sequentially on the
   calling domain (its cost is bounded by the pruning rule in the
   search loops: J >= normal, so only candidates whose normal cost
   beats the robust best are ever swept). *)

module Failure_sweep = Dtr_routing.Failure_sweep

type robust_price = {
  rp_objective : Lexico.t;  (* J = normal + alpha * penalty *)
  rp_penalty : Lexico.t;  (* mean of the top_k worst finite failures *)
  rp_infinite : int;  (* failures priced as infinite (severed demand) *)
}

let failure_outcomes ?pool t ctx =
  Failure_sweep.sweep ?pool ~model:t.model ~th:t.th ctx.ec

let robust_price t ctx ~alpha ~top_k ~normal =
  let outcomes = failure_outcomes t ctx in
  let penalty = Failure_sweep.penalty ~top_k outcomes in
  {
    rp_objective = Lexico.add normal (Lexico.scale alpha penalty);
    rp_penalty = penalty;
    rp_infinite = Failure_sweep.infinite_count outcomes;
  }
