module Json = Dtr_util.Json
module Table = Dtr_util.Table

type t = {
  events : Trace.event list;
  bad_lines : int;
  metrics : Json.t option;
  manifest_raw : string option;
}

let events t = t.events
let bad_lines t = t.bad_lines

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ?metrics ?manifest trace_path =
  match
    let lines = read_lines trace_path in
    let evs = ref [] and bad = ref 0 and total = ref 0 in
    List.iter
      (fun line ->
        if String.trim line <> "" then begin
          incr total;
          match Trace.of_json line with
          | Ok e -> evs := e :: !evs
          | Error _ -> incr bad
        end)
      lines;
    if !total > 0 && !evs = [] then
      Error (Printf.sprintf "%s: no parseable trace events" trace_path)
    else
      let parse_doc what path =
        let raw = read_all path in
        match Json.parse raw with
        | Ok j -> Ok (raw, j)
        | Error e -> Error (Printf.sprintf "%s (%s): %s" path what e)
      in
      let ( let* ) = Result.bind in
      let* metrics =
        match metrics with
        | None -> Ok None
        | Some p ->
            let* _, j = parse_doc "metrics" p in
            Ok (Some j)
      in
      let* manifest_raw =
        match manifest with
        | None -> Ok None
        | Some p ->
            let* raw, _ = parse_doc "manifest" p in
            Ok (Some (String.trim raw))
      in
      Ok
        {
          events = List.rev !evs;
          bad_lines = !bad;
          metrics;
          manifest_raw;
        }
  with
  | r -> r
  | exception Sys_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Derived statistics.                                                 *)

type phase = {
  p_restart : int;
  p_label : string;
  p_moves : int;
  p_accepted : int;
  p_probes : int;
  p_memo_probes : int;
  p_diversify : int;
  p_evaluations : int;
  p_memo_hits : int;
  p_memo_misses : int;
  p_wall_us : float;
  p_best : float array;
}

(* Which search family produced the trace, inferred from the event
   kinds present; phase ordinals mean different things per family. *)
type flavor = Dtr | Mtr of int | Anneal | Other

let flavor evs =
  let has k = List.exists (fun (e : Trace.event) -> e.Trace.kind = k) evs in
  if has Trace.Find_h || has Trace.Find_l then Dtr
  else if has Trace.Mtr_pass then begin
    (* MTR per-class phases carry detail 0..T-1 and the joint
       refinement detail T, so the maximum detail is the class count. *)
    let dmax =
      List.fold_left
        (fun acc (e : Trace.event) ->
          if e.Trace.kind = Trace.Phase_done then max acc e.Trace.detail
          else acc)
        0 evs
    in
    Mtr dmax
  end
  else if has Trace.Anneal_step then Anneal
  else Other

let phase_label fl detail =
  match fl with
  | Dtr -> (
      match detail with
      | 0 -> "optimize W_H"
      | 1 -> "optimize W_L"
      | 2 -> "refine"
      | d -> Printf.sprintf "phase %d" d)
  | Mtr classes ->
      if detail = classes then "joint refine"
      else Printf.sprintf "class %d" detail
  | Anneal -> Printf.sprintf "anneal phase %d" detail
  | Other -> Printf.sprintf "phase %d" detail

let phases t =
  let fl = flavor t.events in
  let acc = ref [] in
  let cur_restart = ref min_int in
  let moves = ref 0
  and accepted = ref 0
  and probes = ref 0
  and memo_probes = ref 0
  and diversify = ref 0 in
  let base_evals = ref 0
  and base_hits = ref 0
  and base_misses = ref 0
  and base_us = ref 0. in
  let reset_segment () =
    moves := 0;
    accepted := 0;
    probes := 0;
    memo_probes := 0;
    diversify := 0
  in
  List.iter
    (fun (e : Trace.event) ->
      (* Restarts are serialized contiguously (Multistart replays the
         per-restart rings in index order), so counter baselines reset
         exactly at restart boundaries. *)
      if e.Trace.restart <> !cur_restart then begin
        cur_restart := e.Trace.restart;
        reset_segment ();
        base_evals := 0;
        base_hits := 0;
        base_misses := 0;
        base_us := 0.
      end;
      match e.Trace.kind with
      | Trace.Probe ->
          incr probes;
          if e.Trace.accepted then incr memo_probes
      | Trace.Diversify -> incr diversify
      | Trace.Str_scan | Trace.Find_h | Trace.Find_l | Trace.Mtr_pass
      | Trace.Anneal_step | Trace.Robust_sweep ->
          incr moves;
          if e.Trace.accepted then incr accepted
      | Trace.Restart_done -> ()
      | Trace.Phase_done ->
          acc :=
            {
              p_restart = e.Trace.restart;
              p_label = phase_label fl e.Trace.detail;
              p_moves = !moves;
              p_accepted = !accepted;
              p_probes = !probes;
              p_memo_probes = !memo_probes;
              p_diversify = !diversify;
              p_evaluations = e.Trace.evaluations - !base_evals;
              p_memo_hits = e.Trace.memo_hits - !base_hits;
              p_memo_misses = e.Trace.memo_misses - !base_misses;
              p_wall_us = e.Trace.time_us -. !base_us;
              p_best = e.Trace.best;
            }
            :: !acc;
          base_evals := e.Trace.evaluations;
          base_hits := e.Trace.memo_hits;
          base_misses := e.Trace.memo_misses;
          base_us := e.Trace.time_us;
          reset_segment ())
    t.events;
  List.rev !acc

type totals = {
  t_events : int;
  t_probes : int;
  t_memo_probes : int;
  t_moves : int;
  t_accepted : int;
  t_diversify : int;
  t_restarts : int;
  t_evaluations : int;
  t_full : int;
  t_delta : int;
  t_memo_hits : int;
  t_memo_misses : int;
  t_duration_us : float;
  t_best : float array;
}

(* Exact lexicographic order, mirroring Trace.convergence. *)
let vec_lt a b =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i >= n then Array.length a < Array.length b
    else if a.(i) < b.(i) then true
    else if a.(i) > b.(i) then false
    else go (i + 1)
  in
  go 0

let totals t =
  let events = ref 0
  and probes = ref 0
  and memo_probes = ref 0
  and moves = ref 0
  and accepted = ref 0
  and diversify = ref 0
  and restarts = ref 0 in
  (* Per-restart-segment counters are cumulative; sum the per-segment
     maxima across segments (the trace serializes restarts, so a
     segment ends exactly when the restart id changes). *)
  let segment = ref min_int in
  let seg_evals = ref 0
  and seg_full = ref 0
  and seg_delta = ref 0
  and seg_hits = ref 0
  and seg_misses = ref 0 in
  let evals = ref 0
  and full = ref 0
  and delta = ref 0
  and hits = ref 0
  and misses = ref 0 in
  let close_segment () =
    evals := !evals + !seg_evals;
    full := !full + !seg_full;
    delta := !delta + !seg_delta;
    hits := !hits + !seg_hits;
    misses := !misses + !seg_misses;
    seg_evals := 0;
    seg_full := 0;
    seg_delta := 0;
    seg_hits := 0;
    seg_misses := 0
  in
  let duration = ref 0. in
  let best = ref [||] in
  List.iter
    (fun (e : Trace.event) ->
      incr events;
      if e.Trace.restart <> !segment then begin
        if !segment <> min_int then close_segment ();
        segment := e.Trace.restart
      end;
      seg_evals := max !seg_evals e.Trace.evaluations;
      seg_full := max !seg_full e.Trace.full_evals;
      seg_delta := max !seg_delta e.Trace.delta_evals;
      seg_hits := max !seg_hits e.Trace.memo_hits;
      seg_misses := max !seg_misses e.Trace.memo_misses;
      if e.Trace.time_us > !duration then duration := e.Trace.time_us;
      if
        Array.length e.Trace.best > 0
        && (Array.length !best = 0 || vec_lt e.Trace.best !best)
      then best := e.Trace.best;
      match e.Trace.kind with
      | Trace.Probe ->
          incr probes;
          if e.Trace.accepted then incr memo_probes
      | Trace.Diversify -> incr diversify
      | Trace.Restart_done -> incr restarts
      | Trace.Phase_done -> ()
      | Trace.Str_scan | Trace.Find_h | Trace.Find_l | Trace.Mtr_pass
      | Trace.Anneal_step | Trace.Robust_sweep ->
          incr moves;
          if e.Trace.accepted then incr accepted)
    t.events;
  if !segment <> min_int then close_segment ();
  {
    t_events = !events;
    t_probes = !probes;
    t_memo_probes = !memo_probes;
    t_moves = !moves;
    t_accepted = !accepted;
    t_diversify = !diversify;
    t_restarts = !restarts;
    t_evaluations = !evals;
    t_full = !full;
    t_delta = !delta;
    t_memo_hits = !hits;
    t_memo_misses = !misses;
    t_duration_us = !duration;
    t_best = !best;
  }

(* ------------------------------------------------------------------ *)
(* Tables.                                                             *)

let pct num den =
  if den = 0 then "-" else Printf.sprintf "%.1f%%" (100. *. float_of_int num /. float_of_int den)

let vec_str v =
  if Array.length v = 0 then "-"
  else
    String.concat " / "
      (Array.to_list (Array.map Table.float_cell v))

let seconds us = Printf.sprintf "%.3f" (us /. 1e6)

let summary_table t =
  let tt = totals t in
  let tbl = Table.create ~title:"Run summary" ~columns:[ "metric"; "value" ] in
  let row k v = Table.add_row tbl [ k; v ] in
  row "events" (string_of_int tt.t_events);
  if t.bad_lines > 0 then row "unparseable lines" (string_of_int t.bad_lines);
  row "search moves" (string_of_int tt.t_moves);
  row "accepted moves"
    (Printf.sprintf "%d (%s)" tt.t_accepted (pct tt.t_accepted tt.t_moves));
  row "probes" (string_of_int tt.t_probes);
  row "probes served from memo"
    (Printf.sprintf "%d (%s)" tt.t_memo_probes (pct tt.t_memo_probes tt.t_probes));
  row "diversifications" (string_of_int tt.t_diversify);
  if tt.t_restarts > 0 then row "restarts" (string_of_int tt.t_restarts);
  row "evaluations"
    (Printf.sprintf "%d (full %d, delta %d)" tt.t_evaluations tt.t_full
       tt.t_delta);
  row "memo hit rate" (pct tt.t_memo_hits (tt.t_memo_hits + tt.t_memo_misses));
  row "best objective" (vec_str tt.t_best);
  row "duration [s]" (seconds tt.t_duration_us);
  tbl

let all_kinds =
  [
    Trace.Str_scan;
    Trace.Find_h;
    Trace.Find_l;
    Trace.Mtr_pass;
    Trace.Anneal_step;
    Trace.Probe;
    Trace.Diversify;
    Trace.Phase_done;
    Trace.Restart_done;
    Trace.Robust_sweep;
  ]

let kind_counts t =
  List.filter_map
    (fun kind ->
      let n = ref 0 and acc = ref 0 in
      List.iter
        (fun (e : Trace.event) ->
          if e.Trace.kind = kind then begin
            incr n;
            if e.Trace.accepted then incr acc
          end)
        t.events;
      if !n = 0 then None else Some (kind, !n, !acc))
    all_kinds

let kind_table t =
  let tbl =
    Table.create ~title:"Events by kind"
      ~columns:[ "kind"; "events"; "accepted"; "rate" ]
  in
  List.iter
    (fun (kind, n, acc) ->
      Table.add_row tbl
        [ Trace.kind_name kind; string_of_int n; string_of_int acc; pct acc n ])
    (kind_counts t);
  tbl

let phase_table t =
  let tbl =
    Table.create ~title:"Phases"
      ~columns:
        [
          "restart";
          "phase";
          "moves";
          "accepted";
          "probes";
          "memo probes";
          "diversify";
          "evals";
          "memo hit rate";
          "wall [s]";
          "best";
        ]
  in
  List.iter
    (fun p ->
      Table.add_row tbl
        [
          (if p.p_restart < 0 then "-" else string_of_int p.p_restart);
          p.p_label;
          string_of_int p.p_moves;
          Printf.sprintf "%d (%s)" p.p_accepted (pct p.p_accepted p.p_moves);
          string_of_int p.p_probes;
          string_of_int p.p_memo_probes;
          string_of_int p.p_diversify;
          string_of_int p.p_evaluations;
          pct p.p_memo_hits (p.p_memo_hits + p.p_memo_misses);
          seconds p.p_wall_us;
          vec_str p.p_best;
        ])
    (phases t);
  tbl

let restart_rows t =
  (* Evaluations spent by a restart: the per-segment maximum of its
     cumulative counter (Restart_done itself carries none). *)
  let seg_max = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      let r = e.Trace.restart in
      if r >= 0 then
        let cur = try Hashtbl.find seg_max r with Not_found -> 0 in
        if e.Trace.evaluations > cur then
          Hashtbl.replace seg_max r e.Trace.evaluations)
    t.events;
  List.filter_map
    (fun (e : Trace.event) ->
      if e.Trace.kind = Trace.Restart_done then
        Some
          ( e.Trace.detail,
            e.Trace.after,
            e.Trace.accepted,
            (try Hashtbl.find seg_max e.Trace.detail with Not_found -> 0) )
      else None)
    t.events

let restart_table t =
  let tbl =
    Table.create ~title:"Restarts"
      ~columns:[ "restart"; "objective"; "improved"; "evals" ]
  in
  List.iter
    (fun (i, obj, improved, evals) ->
      Table.add_row tbl
        [
          string_of_int i;
          vec_str obj;
          (if improved then "yes" else "no");
          string_of_int evals;
        ])
    (restart_rows t);
  tbl

let convergence_table t =
  Dtr_routing.Report.convergence_table (Trace.convergence t.events)

let span_rows t =
  match t.metrics with
  | None -> []
  | Some j -> (
      match Json.member "spans" j with
      | Some (Json.Obj fields) ->
          List.filter_map
            (fun (path, v) ->
              match
                ( Option.bind (Json.member "calls" v) Json.to_int,
                  Option.bind (Json.member "seconds" v) Json.to_float )
              with
              | Some calls, Some seconds -> Some (path, calls, seconds)
              | _ -> None)
            fields
      | _ -> [])

let spans_table t =
  match span_rows t with
  | [] -> None
  | rows ->
      let tbl =
        Table.create ~title:"Profiler spans"
          ~columns:[ "span"; "calls"; "seconds" ]
      in
      List.iter
        (fun (path, calls, seconds) ->
          Table.add_row tbl
            [ path; string_of_int calls; Printf.sprintf "%.6f" seconds ])
        rows;
      Some tbl

(* ------------------------------------------------------------------ *)
(* Documents.                                                          *)

let to_markdown t =
  let b = Buffer.create 4096 in
  let section title tbl =
    Buffer.add_string b (Printf.sprintf "## %s\n\n```\n" title);
    Buffer.add_string b (Table.to_string tbl);
    Buffer.add_string b "```\n\n"
  in
  Buffer.add_string b "# DTR run report\n\n";
  section "Summary" (summary_table t);
  section "Events by kind" (kind_table t);
  (match phases t with [] -> () | _ -> section "Phases" (phase_table t));
  (match restart_rows t with
  | [] -> ()
  | _ -> section "Restarts" (restart_table t));
  section "Convergence" (convergence_table t);
  (match spans_table t with
  | None -> ()
  | Some tbl -> section "Profiler spans" tbl);
  (match t.manifest_raw with
  | None -> ()
  | Some raw ->
      Buffer.add_string b "## Provenance\n\n```json\n";
      Buffer.add_string b raw;
      Buffer.add_string b "\n```\n");
  Buffer.contents b

let float_str x = Printf.sprintf "%.17g" x

let json_vec v =
  Printf.sprintf "[%s]"
    (String.concat "," (Array.to_list (Array.map float_str v)))

let to_json t =
  let tt = totals t in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"summary\": {\"events\": %d, \"bad_lines\": %d, \"moves\": %d, \
        \"accepted\": %d, \"probes\": %d, \"memo_probes\": %d, \
        \"diversify\": %d, \"restarts\": %d, \"evaluations\": %d, \
        \"full\": %d, \"delta\": %d, \"memo_hits\": %d, \"memo_misses\": %d, \
        \"duration_us\": %s, \"best\": %s}"
       tt.t_events t.bad_lines tt.t_moves tt.t_accepted tt.t_probes
       tt.t_memo_probes tt.t_diversify tt.t_restarts tt.t_evaluations tt.t_full
       tt.t_delta tt.t_memo_hits tt.t_memo_misses (float_str tt.t_duration_us)
       (json_vec tt.t_best));
  Buffer.add_string b ",\n  \"kinds\": [";
  List.iteri
    (fun i (kind, n, acc) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "{\"kind\": %S, \"events\": %d, \"accepted\": %d}"
           (Trace.kind_name kind) n acc))
    (kind_counts t);
  Buffer.add_string b "]";
  Buffer.add_string b ",\n  \"phases\": [";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"restart\": %d, \"label\": %S, \"moves\": %d, \"accepted\": %d, \
            \"probes\": %d, \"memo_probes\": %d, \"diversify\": %d, \
            \"evaluations\": %d, \"memo_hits\": %d, \"memo_misses\": %d, \
            \"wall_us\": %s, \"best\": %s}"
           p.p_restart p.p_label p.p_moves p.p_accepted p.p_probes
           p.p_memo_probes p.p_diversify p.p_evaluations p.p_memo_hits
           p.p_memo_misses (float_str p.p_wall_us) (json_vec p.p_best)))
    (phases t);
  Buffer.add_string b "]";
  Buffer.add_string b ",\n  \"restarts\": [";
  List.iteri
    (fun i (r, obj, improved, evals) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"restart\": %d, \"objective\": %s, \"improved\": %b, \
            \"evaluations\": %d}"
           r (json_vec obj) improved evals))
    (restart_rows t);
  Buffer.add_string b "]";
  Buffer.add_string b ",\n  \"convergence\": [";
  List.iteri
    (fun i (evals, obj) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "{\"evaluations\": %d, \"objective\": %s}" evals
           (json_vec obj)))
    (Trace.convergence t.events);
  Buffer.add_string b "]";
  (match span_rows t with
  | [] -> ()
  | rows ->
      Buffer.add_string b ",\n  \"spans\": {";
      List.iteri
        (fun i (path, calls, seconds) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf "%S: {\"calls\": %d, \"seconds\": %s}" path calls
               (float_str seconds)))
        rows;
      Buffer.add_string b "}");
  (match t.manifest_raw with
  | None -> ()
  | Some raw ->
      Buffer.add_string b ",\n  \"manifest\": ";
      Buffer.add_string b raw);
  Buffer.add_string b "\n}\n";
  Buffer.contents b
