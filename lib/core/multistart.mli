(** Deterministic multi-start driver: run [restarts] independent
    restarts of a weight search, optionally in parallel on a domain
    pool, and pick the winner.

    Determinism contract: every per-restart PRNG stream is derived
    from the master generator with {!Dtr_util.Prng.split} {e before}
    any work is dispatched, in restart order, and the winner is chosen
    by exact [(objective, restart index)] order — strictly smaller
    lexicographic objective wins, ties go to the lower index.  Results
    are therefore bit-identical for every [jobs] value (including 1).

    Restart 0 starts from the canonical mid-range uniform weights (the
    same initial point the single-run searches use); restarts [>= 1]
    start from weights drawn uniformly at random from their own
    stream. *)

type algo = Str | Dtr | Anneal
(** Which search a restart runs: {!Str_search}, {!Dtr_search} or
    {!Anneal_search} (with its default schedule). *)

val algo_name : algo -> string

type restart = {
  index : int;
  objective : Dtr_cost.Lexico.t;
  solution : Problem.solution;
}

type report = {
  best : Problem.solution;
  objective : Dtr_cost.Lexico.t;
  best_index : int;  (** which restart won *)
  restarts : restart array;  (** every restart, in index order *)
  evaluations : int;
      (** total objective evaluations across all restarts (exact even
          under the pool: the counters are atomic) *)
}

val run :
  ?pool:Dtr_util.Pool.t ->
  ?jobs:int ->
  ?trace:Trace.t ->
  restarts:int ->
  algo:algo ->
  Dtr_util.Prng.t ->
  Search_config.t ->
  Problem.t ->
  report
(** [run ~restarts ~algo rng cfg problem] runs the restarts on [pool]
    if given, else on a temporary pool of [jobs] workers (default 1 =
    sequential, no domain spawned).  [rng] is advanced by [restarts]
    splits.  @raise Invalid_argument if [restarts < 1].

    With an enabled [trace], each restart records its search events
    into a private ring on whichever worker runs it; the rings are
    replayed into [trace] in restart-index order after the joins, with
    the [restart] field set, followed by one [Restart_done] event per
    restart ([accepted] = improved on all lower indices).  Every field
    but the timestamps is therefore identical for every [jobs]
    value. *)
