module Pool = Dtr_util.Pool
module Vhash = Dtr_util.Vhash
module Vmemo = Dtr_util.Vmemo
module Lexico = Dtr_cost.Lexico
module Metrics = Dtr_util.Metrics

let m_dispatches =
  Metrics.counter ~help:"Neighborhood scans served by the scan engine."
    "dtr_scan_dispatches_total"

let m_candidates =
  Metrics.counter ~help:"Candidates submitted to the scan engine."
    "dtr_scan_candidates_total"

let m_memo_served =
  Metrics.counter ~help:"Scan candidates short-circuited by the memo."
    "dtr_scan_memo_served_total"

let m_batch =
  Metrics.histogram
    ~help:"Candidates actually evaluated (memo misses) per scan dispatch."
    "dtr_scan_batch"

type summary = { objective : Lexico.t; phi_h : float; phi_l : float }

type t = {
  problem : Problem.t;
  pool : Pool.t option;
  reference : bool;
      (* oracle mode: rehash the base memo key from scratch every scan
         instead of reading the context's incrementally shifted key *)
  mutable clones : Problem.ctx array;
      (* one per worker, allocated on the first parallel scan and
         resynchronized (blits, no re-evaluation) before every later
         one — clones are reused across iterations, not reallocated *)
  mutable scans : int;
      (* scans served so far; the [iteration] stamp of probe events *)
}

let create ?(reference = false) ~jobs problem =
  if jobs < 1 then invalid_arg "Scan.create: jobs must be positive";
  {
    problem;
    pool = (if jobs = 1 then None else Some (Pool.create ~jobs));
    reference;
    clones = [||];
    scans = 0;
  }

let jobs t = match t.pool with None -> 1 | Some p -> Pool.jobs p

let shutdown t =
  (match t.pool with None -> () | Some p -> Pool.shutdown p);
  t.clones <- [||]

let with_engine ?reference ~jobs problem f =
  let t = create ?reference ~jobs problem in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Memo keys: one Zobrist hash covering BOTH weight vectors — the
   objective is a pure function of the (W_H, W_L) pair (probes are
   bitwise-identical to full evaluations, PR 1), so a FindH candidate
   and a FindL candidate reaching the same pair may share an entry.
   For an STR context one change moves both aliased vectors, hence
   both cell sets shift.  The base key is the context's cached one,
   maintained by two shifts per changed arc across probe commits
   (Problem.ctx_base_key) — identical to the from-scratch rehash of
   both vectors, which [reference] forces for the oracle tests. *)
let candidate_keys ?(reference = false) ctx ~cls ~changes_of n =
  let str = Problem.ctx_is_str ctx in
  let wh = Problem.ctx_weights_view ctx `H in
  let wl = Problem.ctx_weights_view ctx `L in
  let base =
    if reference then Problem.ctx_base_key_fresh ctx
    else Problem.ctx_base_key ctx
  in
  let shift_change key (arc, after) =
    if str then
      let key = Vhash.shift key ~cls:0 ~arc ~before:wh.(arc) ~after in
      Vhash.shift key ~cls:1 ~arc ~before:wh.(arc) ~after
    else
      match cls with
      | `H -> Vhash.shift key ~cls:0 ~arc ~before:wh.(arc) ~after
      | `L -> Vhash.shift key ~cls:1 ~arc ~before:wl.(arc) ~after
  in
  Array.init n (fun i -> List.fold_left shift_change base (changes_of i))

let evaluate t ctx ?memo ?(trace = Trace.disabled) ~cls ~changes_of n =
  if n < 0 then invalid_arg "Scan.evaluate: negative candidate count";
  t.scans <- t.scans + 1;
  let results = Array.make n None in
  (* Memo screening happens on the calling domain, in candidate order,
     before any dispatch — hit patterns (and the hit/miss counters) are
     a pure function of the trajectory, never of worker scheduling. *)
  let keys =
    match memo with
    | None -> [||]
    | Some m ->
        let keys = candidate_keys ~reference:t.reference ctx ~cls ~changes_of n in
        for i = 0 to n - 1 do
          match Vmemo.find m keys.(i) with
          | Some s -> results.(i) <- Some s
          | None -> ()
        done;
        keys
  in
  let miss = ref [] in
  for i = n - 1 downto 0 do
    match results.(i) with None -> miss := i :: !miss | Some _ -> ()
  done;
  let miss = Array.of_list !miss in
  (* Which candidates the memo served — recorded before dispatch so
     probe events can tag them; allocated only when tracing. *)
  let from_memo =
    if Trace.enabled trace then Array.map Option.is_some results else [||]
  in
  let eval_one ctx' i =
    let d = Problem.eval_delta t.problem ctx' ~cls ~changes:(changes_of i) in
    let s =
      {
        objective = Problem.delta_objective d;
        phi_h = Problem.delta_phi_h d;
        phi_l = Problem.delta_phi_l d;
      }
    in
    Problem.abort_delta ctx' d;
    results.(i) <- Some s
  in
  let k = Array.length miss in
  if Metrics.enabled () then begin
    Metrics.incr_counter m_dispatches;
    Metrics.add m_candidates n;
    Metrics.add m_memo_served (n - k);
    Metrics.observe m_batch (float_of_int k)
  end;
  Metrics.span "scan" @@ fun () ->
  (match t.pool with
  | Some pool when k > 1 ->
      let jobs = Pool.jobs pool in
      if Array.length t.clones = 0 then
        t.clones <- Array.init jobs (fun _ -> Problem.clone_ctx t.problem ctx)
      else Array.iter (fun c -> Problem.sync_ctx ~src:ctx ~dst:c) t.clones;
      (* Contiguous balanced chunks; every task measures its own
         domain-counter delta, rolls it back, and returns it so the
         engine can re-add the total on the calling domain — reported
         evaluation counts are identical for every jobs value. *)
      let counts =
        Pool.map pool jobs ~f:(fun j ->
            let clone = t.clones.(j) in
            let e0, f0, d0 = Problem.domain_eval_counts () in
            let lo = j * k / jobs and hi = (j + 1) * k / jobs in
            for idx = lo to hi - 1 do
              eval_one clone miss.(idx)
            done;
            let e1, f1, d1 = Problem.domain_eval_counts () in
            let de = e1 - e0 and df = f1 - f0 and dd = d1 - d0 in
            Problem.move_domain_counts ~eval:(-de) ~full:(-df) ~delta:(-dd);
            (de, df, dd))
      in
      let te = ref 0 and tf = ref 0 and td = ref 0 in
      Array.iter
        (fun (e, f, d) ->
          te := !te + e;
          tf := !tf + f;
          td := !td + d)
        counts;
      Problem.move_domain_counts ~eval:!te ~full:!tf ~delta:!td
  | _ -> Array.iter (eval_one ctx) miss);
  (match memo with
  | None -> ()
  | Some m ->
      Array.iter
        (fun i ->
          match results.(i) with
          | Some s -> Vmemo.add m keys.(i) s
          | None -> assert false)
        miss);
  let summaries = Array.map (function Some s -> s | None -> assert false) results in
  (* Re-emit one probe event per candidate, on the calling domain, in
     candidate order — exactly the order the sequential fold visits
     them — so the trace is identical for every jobs value no matter
     which worker evaluated which chunk. *)
  if Trace.enabled trace then
    Array.iteri
      (fun i (s : summary) ->
        Trace.emit trace ~kind:Trace.Probe ~iteration:t.scans ~detail:i
          ~accepted:(Array.length from_memo > 0 && from_memo.(i))
          ~after:(Trace.pair s.objective) ())
      summaries;
  summaries

let commit t ctx ~cls ~changes =
  (* The winner was evaluated (and counted) as a summary — possibly on
     a worker's clone or out of the memo; re-derive its delta against
     the main context without recounting.  Probes are deterministic
     functions of the context's value state, so this reproduces the
     winning candidate bitwise. *)
  let d = Problem.eval_delta ~count:false t.problem ctx ~cls ~changes in
  Problem.commit_delta t.problem ctx d
