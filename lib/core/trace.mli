(** Structured search telemetry: a per-run event sink recording every
    accepted/rejected move of the lexicographic searches, so search
    {e quality} (not just the final objective) is observable — the
    convergence curves the paper's evaluation (§3.3.1, §5) reasons
    about.

    {b Determinism.}  Every event field except [time_us] is a pure
    function of the search trajectory: objectives come from the
    jobs-invariant summaries the searches already fold over, counters
    come from the per-domain evaluation counters (transferred in task
    order by {!Scan}) and the per-run memo, and events produced on
    worker domains (multi-start restarts, parallel scan tasks) are
    buffered and re-emitted on the calling domain in sequential order
    — restart order for {!Multistart}, candidate order for {!Scan}.
    A JSONL trace is therefore byte-identical for every
    [--jobs × --scan-jobs] combination once the [t_us] timing field is
    normalized.

    {b Cost.}  The disabled sink ({!disabled}) is a shared immutable
    value; call sites guard every emission with {!enabled}, which is a
    single pointer comparison, so a search run with tracing off
    allocates nothing and pays one predictable branch per iteration. *)

type kind =
  | Str_scan  (** one STR single-arc value-scan iteration *)
  | Find_h  (** one FindH pass (Algorithm 2) *)
  | Find_l  (** one FindL pass (Algorithm 2) *)
  | Mtr_pass  (** one MTR per-class pass ([detail] = class) *)
  | Anneal_step  (** one Metropolis proposal ([value] = temperature) *)
  | Probe
      (** one scan candidate, re-emitted by {!Scan} in candidate order
          ([detail] = candidate index; [accepted] = served from memo) *)
  | Diversify  (** stall-triggered perturbation *)
  | Phase_done  (** end of a search routine ([detail] = phase ordinal) *)
  | Restart_done  (** end of a multi-start restart ([detail] = index) *)
  | Robust_sweep
      (** one single-link failure sweep in robust mode ([detail] =
          failures priced as infinite; [value] = failure penalty's
          primary component; [before]/[after] = normal vs. robust
          objective of the swept candidate; [accepted] = became the
          robust best) *)

val kind_name : kind -> string

val kind_of_name : string -> kind option
(** Inverse of {!kind_name}; [None] on unknown names. *)

type event = {
  seq : int;  (** per-sink sequence number, assigned at emission *)
  restart : int;  (** multi-start restart index; [-1] outside one *)
  kind : kind;
  iteration : int;
  detail : int;  (** kind-specific payload (arc, phase, class, index) *)
  accepted : bool;
  before : float array;  (** objective vector before the move; [[||]] n/a *)
  after : float array;  (** objective vector after the move *)
  best : float array;  (** incumbent best-so-far objective vector *)
  evaluations : int;  (** objective evaluations since the run started *)
  full_evals : int;  (** ... of which full evaluations *)
  delta_evals : int;  (** ... of which incremental probes *)
  memo_hits : int;  (** cumulative memo hits of the run *)
  memo_misses : int;
  value : float;  (** kind-specific float payload (temperature, ...) *)
  time_us : float;
      (** microseconds since the sink was created, forced monotone.
          The only nondeterministic field: JSONL diffs must normalize
          it (it is emitted last on the line for that reason). *)
}

type t
(** A sink.  Not thread-safe: emit from one domain at a time (worker
    domains buffer into their own ring and {!replay} afterwards). *)

val disabled : t
(** The shared null sink: {!enabled} is [false], {!emit} is a no-op.
    The default everywhere a trace is accepted. *)

val enabled : t -> bool
(** One pointer comparison; guard every {!emit} with it so event
    payloads (the objective arrays) are never allocated when tracing
    is off. *)

val ring : ?capacity:int -> ?timestamps:bool -> unit -> t
(** In-memory sink.  Unbounded by default (it grows by doubling); with
    [capacity] it keeps only the most recent [capacity] events.
    With [~timestamps:false] the sink zeroes [time_us] at recording,
    making its output fully deterministic (byte-diffable in CI without
    any post-processing).  Default [true].
    @raise Invalid_argument on [capacity < 1]. *)

val jsonl : ?timestamps:bool -> out_channel -> t
(** Streaming sink: one JSON object per event per line, written at
    emission.  The channel is not closed by the sink.  [~timestamps]
    as for {!ring}: [false] zeroes [t_us] on every emitted line,
    including events replayed from worker rings. *)

val tee : t -> t -> t
(** Emit into both sinks (each assigns its own [seq]/[time_us]).
    [enabled] iff either side is. *)

val sample : int -> t -> t
(** [sample n t] decimates the {e probe} stream: every [n]-th [Probe]
    event offered (the first, the [n+1]-th, ...) reaches [t]; every
    other event kind always passes through.  The decision is
    counter-based — the counter advances once per probe offered,
    kept or not — so which probes survive is a pure function of the
    probe stream and the sampled trace stays byte-identical for every
    [jobs × scan-jobs] combination.  [sample 1 t] and sampling a
    disabled sink return [t] itself (no wrapper, byte-identical
    output).  [seq] numbers are assigned by [t], so a sampled JSONL
    trace has consecutive sequence numbers.
    @raise Invalid_argument on [n < 1]. *)

val emit :
  t ->
  kind:kind ->
  ?restart:int ->
  iteration:int ->
  ?detail:int ->
  ?accepted:bool ->
  ?before:float array ->
  ?after:float array ->
  ?best:float array ->
  ?evaluations:int ->
  ?full:int ->
  ?delta:int ->
  ?memo_hits:int ->
  ?memo_misses:int ->
  ?value:float ->
  unit ->
  unit
(** Record one event.  Omitted fields default to [-1]/[0]/[false]/
    [[||]] as appropriate; [seq] and [time_us] are assigned by the
    sink. *)

val length : t -> int
(** Events currently held ([ring]) or written so far ([jsonl]);
    0 for {!disabled}. *)

val events : t -> event list
(** Buffered events of a [ring] sink in emission order (oldest first);
    [[]] for every other sink. *)

val replay : t -> into:t -> restart:int -> unit
(** Re-emit every buffered event of a ring sink into another sink with
    its [restart] field set; [seq] is reassigned by the target,
    [time_us] is preserved (the worker's clock already recorded it).
    Used by {!Multistart} to serialize per-restart traces in restart
    order, keeping the merged trace jobs-invariant. *)

val pair : Dtr_cost.Lexico.t -> float array
(** [[| primary; secondary |]] — the objective-vector encoding of the
    two-class lexicographic cost. *)

val to_json : event -> string
(** One-line JSON encoding, fixed field order, floats printed with
    ["%.17g"] (exact round-trip).  [t_us] is the last field so trace
    diffs can normalize it with a single regex. *)

val of_json : string -> (event, string) result
(** Parse one {!to_json} line back into an event (extra fields are
    ignored; field order is free).  Floats round-trip bit-exactly
    (["%.17g"] ↔ [float_of_string]).  Errors name the offending field
    or carry the JSON parser's message. *)

val convergence : event list -> (int * float array) list
(** Best-so-far convergence curve: [(cumulative evaluations,
    objective)] points at which the running (exact lexicographic)
    minimum of the [best] field improved, in event order.  Events with
    an empty [best] (probes) are skipped.  Evaluations are accumulated
    across restart segments, so the curve of a multi-start trace is
    plotted against the total budget spent. *)
