module Prng = Dtr_util.Prng
module Pool = Dtr_util.Pool
module Graph = Dtr_graph.Graph
module Lexico = Dtr_cost.Lexico
module Weights = Dtr_routing.Weights

type algo = Str | Dtr | Anneal

let algo_name = function Str -> "str" | Dtr -> "dtr" | Anneal -> "anneal"

type restart = {
  index : int;
  objective : Lexico.t;
  solution : Problem.solution;
}

type report = {
  best : Problem.solution;
  objective : Lexico.t;
  best_index : int;
  restarts : restart array;
  evaluations : int;
}

let mid_weights problem =
  let m = Graph.arc_count problem.Problem.graph in
  Array.make m ((Weights.min_weight + Weights.max_weight) / 2)

let run ?pool ?(jobs = 1) ?(trace = Trace.disabled) ~restarts ~algo rng cfg
    problem =
  if restarts < 1 then invalid_arg "Multistart.run: restarts must be >= 1";
  Search_config.validate cfg;
  let eval0 = Problem.evaluations () in
  (* All per-restart streams are split off the master before dispatch,
     in restart order: the streams are a function of the master seed
     alone, never of worker scheduling. *)
  let rngs = Array.make restarts rng in
  for i = 0 to restarts - 1 do
    rngs.(i) <- Prng.split rng
  done;
  (* Each restart records into its own private ring on whichever domain
     runs it; the rings are replayed into [trace] in restart order
     below, so the merged trace never depends on worker scheduling. *)
  let rings =
    Array.init restarts (fun _ ->
        if Trace.enabled trace then Trace.ring () else Trace.disabled)
  in
  let run_one index =
    let rng = rngs.(index) in
    let trace = rings.(index) in
    let solution =
      match algo with
      | Str ->
          let w0 =
            if index = 0 then mid_weights problem
            else Weights.random rng problem.Problem.graph
          in
          (Str_search.run ~w0 ~trace rng cfg problem).Str_search.best
      | Dtr | Anneal ->
          let w0 =
            if index = 0 then (mid_weights problem, mid_weights problem)
            else
              let wh = Weights.random rng problem.Problem.graph in
              let wl = Weights.random rng problem.Problem.graph in
              (wh, wl)
          in
          if algo = Dtr then
            (Dtr_search.run ~w0 ~trace rng cfg problem).Dtr_search.best
          else (Anneal_search.run ~w0 ~trace rng cfg problem).Anneal_search.best
    in
    { index; objective = Problem.objective solution; solution }
  in
  let restart_results =
    match pool with
    | Some p -> Pool.map p restarts ~f:run_one
    | None -> Pool.run ~jobs restarts ~f:run_one
  in
  (if Trace.enabled trace then
     let best_obj = ref restart_results.(0).objective in
     Array.iteri
       (fun i (r : restart) ->
         Trace.replay rings.(i) ~into:trace ~restart:i;
         let improved = i = 0 || Lexico.compare r.objective !best_obj < 0 in
         if improved then best_obj := r.objective;
         Trace.emit trace ~kind:Trace.Restart_done ~restart:i ~iteration:0
           ~detail:i ~accepted:improved
           ~after:(Trace.pair r.objective)
           ~best:(Trace.pair !best_obj) ())
       restart_results);
  (* Exact comparison (no tolerance): the winner must be a pure
     function of the restart results; ties go to the lower index
     because the fold scans in index order and only replaces on a
     strict improvement. *)
  let best =
    Array.fold_left
      (fun (acc : restart) (r : restart) ->
        if Lexico.compare r.objective acc.objective < 0 then r else acc)
      restart_results.(0) restart_results
  in
  {
    best = best.solution;
    objective = best.objective;
    best_index = best.index;
    restarts = restart_results;
    evaluations = Problem.evaluations () - eval0;
  }
