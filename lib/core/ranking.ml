(* Cached cost-sorted arc rankings, repaired incrementally across
   context commits.

   The search loops want arcs "sorted into decreasing cost order, ties
   broken by arc id" (Neighborhood.rank_by_cost) once per iteration —
   an O(m log m) full sort that dominates at the 1k-10k tier, even
   though a commit moves the cost rows of only a handful of arcs
   (Eval_ctx.probe_touched).  This cache keeps the previous sorted
   order, asks the context which arcs moved since
   (Problem.ctx_changes_since), extracts exactly those, re-sorts the
   small set under the fresh comparator and merges it back in O(m).

   Why the repaired array is bitwise-identical to a full re-sort: the
   ordering is a strict total order (ties cannot survive the arc-id
   tiebreak), so the sorted permutation is unique — any procedure that
   produces *a* sorted array produces *the* sorted array.  Untouched
   arcs' cost rows are unchanged (commits patch per-arc quantities only
   at touched indices and replace rows rather than mutate them), so
   their relative order under the new comparator equals their cached
   order and the stable partition of the cached array is a sorted run;
   the re-sorted touched arcs form the other; merging two sorted runs
   under the same comparator yields a sorted array, hence *the* sorted
   array. *)

type t = {
  mutable owner : Problem.ctx option;  (* cache validity: physical identity *)
  mutable version : int;  (* Problem.ctx_version the cache reflects *)
  mutable ids : int array;  (* the cached sorted ranking *)
  mutable flags : bool array;  (* scratch, arc-count sized, all-false *)
  mutable scratch : int array;  (* merge output, arc-count sized *)
}

let create () =
  { owner = None; version = 0; ids = [||]; flags = [||]; scratch = [||] }

(* The exact comparator of Neighborhood.rank_by_cost: decreasing cost,
   increasing arc id on ties — a strict total order. *)
let order ~cmp a b =
  let c = cmp b a in
  if c <> 0 then c else compare a b

let repair t ~cmp ~changed n_arcs =
  (* Unique touched ids via the scratch flag row; the flags stay set
     through the merge (as the membership test) and are cleared at the
     end, restoring the all-false invariant. *)
  let flags = t.flags in
  let uniq = ref [] in
  let count = ref 0 in
  Array.iter
    (fun a ->
      if not flags.(a) then begin
        flags.(a) <- true;
        uniq := a :: !uniq;
        incr count
      end)
    changed;
  if !count > 0 then begin
    let touched = Array.make !count 0 in
    let k = ref 0 in
    List.iter
      (fun a ->
        touched.(!k) <- a;
        incr k)
      !uniq;
    Array.sort (order ~cmp) touched;
    let old_ids = t.ids in
    let out = t.scratch in
    let oi = ref 0 and ti = ref 0 and wi = ref 0 in
    (* Skip touched entries inside the cached run as they are passed:
       what remains of old_ids is the untouched sorted run. *)
    while !wi < n_arcs do
      while !oi < n_arcs && flags.(old_ids.(!oi)) do
        incr oi
      done;
      if !oi >= n_arcs then begin
        out.(!wi) <- touched.(!ti);
        incr ti;
        incr wi
      end
      else if !ti >= !count then begin
        out.(!wi) <- old_ids.(!oi);
        incr oi;
        incr wi
      end
      else if order ~cmp old_ids.(!oi) touched.(!ti) <= 0 then begin
        out.(!wi) <- old_ids.(!oi);
        incr oi;
        incr wi
      end
      else begin
        out.(!wi) <- touched.(!ti);
        incr ti;
        incr wi
      end
    done;
    Array.iter (fun a -> flags.(a) <- false) touched;
    (* Swap: the old ids array becomes the next repair's scratch. *)
    t.ids <- out;
    t.scratch <- old_ids
  end

let arcs ?(reference = false) t ctx ~cmp n_arcs =
  if reference then Neighborhood.rank_by_cost ~cmp n_arcs
  else begin
    let fresh () =
      t.owner <- Some ctx;
      t.version <- Problem.ctx_version ctx;
      t.ids <- Neighborhood.rank_by_cost ~cmp n_arcs;
      if Array.length t.flags <> n_arcs then begin
        t.flags <- Array.make n_arcs false;
        t.scratch <- Array.make n_arcs 0
      end;
      t.ids
    in
    match t.owner with
    | Some owner when owner == ctx && Array.length t.ids = n_arcs -> (
        let v = Problem.ctx_version ctx in
        if v = t.version then t.ids
        else
          match Problem.ctx_changes_since ctx ~since:t.version with
          | None -> fresh ()
          | Some changed ->
              repair t ~cmp ~changed n_arcs;
              t.version <- v;
              t.ids)
    | _ -> fresh ()
  end
