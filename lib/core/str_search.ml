module Prng = Dtr_util.Prng
module Dist = Dtr_util.Dist
module Lexico = Dtr_cost.Lexico
module Objective = Dtr_routing.Objective
module Weights = Dtr_routing.Weights
module Evaluate = Dtr_routing.Evaluate

(* See Dtr_search: tolerant primary comparison enables the
   lexicographic tie-break. *)
let rel_tol = 1e-9

let lex_lt a b = Lexico.lt ~rel_tol a b

type archive_point = { phi_h : float; phi_l : float; w : int array }

type report = {
  best : Problem.solution;
  objective : Lexico.t;
  evaluations : int;
  improvements : int;
  archive : archive_point list;
}

let default_iters cfg =
  (* Evaluation-budget parity with Algorithm 1 — and then doubled.
     Algorithm 1 spends (2N + K) passes of m evaluations each, while
     one single-weight-change iteration scans (max_weight - min_weight)
     candidate values; the extra factor of 2 over-provisions the STR
     baseline (it takes fewer, larger steps, so it needs more of them),
     which makes the reported STR/DTR gaps conservative. *)
  let dtr_evals =
    ((2 * cfg.Search_config.n_iters) + cfg.Search_config.k_iters)
    * cfg.Search_config.m_neighbors
  in
  let scan = Weights.max_weight - Weights.min_weight in
  max 1 (2 * dtr_evals / scan)

(* Bounded Pareto archive over (phi_h, phi_l); dominated points are
   discarded, so it stays small in practice. *)
let archive_max = 512

let archive_insert archive cand =
  let dominated_by a = a.phi_h <= cand.phi_h && a.phi_l <= cand.phi_l in
  if List.exists dominated_by archive then archive
  else begin
    let survivors =
      List.filter
        (fun a -> not (cand.phi_h <= a.phi_h && cand.phi_l <= a.phi_l))
        archive
    in
    let archive = cand :: survivors in
    if List.length archive > archive_max then
      (* Drop the worst-phi_l point to stay bounded. *)
      match
        List.sort (fun a b -> Float.compare b.phi_l a.phi_l) archive
      with
      | [] -> archive
      | _ :: rest -> rest
    else archive
  end

let pick_arc rng cfg sol problem =
  let costs = Objective.link_costs_h problem.Problem.model sol.Problem.result in
  let n = Array.length costs in
  if Prng.bool rng then Prng.int rng n
  else begin
    let ranking =
      Neighborhood.rank_by_cost
        ~cmp:(fun a b -> Lexico.compare costs.(a) costs.(b))
        n
    in
    let ht = Dist.heavy_tail ~tau:cfg.Search_config.tau ~n in
    ranking.(Dist.heavy_tail_sample ht rng - 1)
  end

let run ?w0 ?iters ?on_progress rng cfg problem =
  Search_config.validate cfg;
  let iters = match iters with Some i -> i | None -> default_iters cfg in
  if iters < 1 then invalid_arg "Str_search.run: iters must be positive";
  let eval0 = Problem.domain_evaluations () in
  let mid = (Weights.min_weight + Weights.max_weight) / 2 in
  let w0 =
    match w0 with
    | Some w -> w
    | None -> Array.make (Dtr_graph.Graph.arc_count problem.Problem.graph) mid
  in
  let track_archive = problem.Problem.model = Objective.Load in
  let archive = ref [] in
  let observe sol =
    if track_archive then begin
      let eval = sol.Problem.result.Objective.eval in
      archive :=
        archive_insert !archive
          {
            phi_h = eval.Evaluate.phi_h;
            phi_l = eval.Evaluate.phi_l;
            w = sol.Problem.wh;
          }
    end
  in
  (* Candidates are evaluated as delta probes, so the archive point is
     built from the delta (the weight copy is only made when the
     archive is live). *)
  let observe_delta w' d =
    if track_archive then
      archive :=
        archive_insert !archive
          {
            phi_h = Problem.delta_phi_h d;
            phi_l = Problem.delta_phi_l d;
            w = w';
          }
  in
  let current = ref (Problem.eval_str problem ~w:w0) in
  let ctx = Problem.ctx_of_solution problem !current in
  observe !current;
  let best = ref !current in
  let improvements = ref 0 in
  let stall = ref 0 in
  for iteration = 1 to iters do
    let arc = pick_arc rng cfg !current problem in
    let w = !current.Problem.wh in
    let best_neighbor = ref None in
    for v = Weights.min_weight to Weights.max_weight do
      if v <> w.(arc) then begin
        let cand = Problem.eval_delta problem ctx ~cls:`H ~changes:[ (arc, v) ] in
        (if track_archive then begin
           let w' = Array.copy w in
           w'.(arc) <- v;
           observe_delta w' cand
         end);
        match !best_neighbor with
        | None -> best_neighbor := Some cand
        | Some bn ->
            if lex_lt (Problem.delta_objective cand) (Problem.delta_objective bn)
            then begin
              Problem.abort_delta ctx bn;
              best_neighbor := Some cand
            end
            else Problem.abort_delta ctx cand
      end
    done;
    (match !best_neighbor with
    | Some bn
      when lex_lt (Problem.delta_objective bn) (Problem.objective !current) ->
        current := Problem.commit_delta problem ctx bn
    | Some bn -> Problem.abort_delta ctx bn
    | None -> ());
    if lex_lt (Problem.objective !current) (Problem.objective !best) then begin
      best := !current;
      incr improvements;
      stall := 0
    end
    else incr stall;
    if !stall >= cfg.Search_config.diversify_after then begin
      let w =
        Weights.perturb rng ~fraction:cfg.Search_config.g1 !current.Problem.wh
      in
      let changes = Problem.weight_changes !current.Problem.wh w in
      let d = Problem.eval_delta problem ctx ~cls:`H ~changes in
      current := Problem.commit_delta problem ctx d;
      observe !current;
      stall := 0
    end;
    match on_progress with
    | None -> ()
    | Some f -> f iteration (Problem.objective !best)
  done;
  {
    best = !best;
    objective = Problem.objective !best;
    evaluations = Problem.domain_evaluations () - eval0;
    improvements = !improvements;
    archive =
      List.sort (fun a b -> Float.compare a.phi_h b.phi_h) !archive;
  }

let relaxed_best report ~epsilon =
  if epsilon < 0. then invalid_arg "Str_search.relaxed_best: negative epsilon";
  match report.archive with
  | [] -> None
  | archive ->
      let star_h =
        List.fold_left (fun acc a -> Float.min acc a.phi_h) Float.infinity
          archive
      in
      let bound = (1. +. epsilon) *. star_h in
      List.fold_left
        (fun acc a ->
          if a.phi_h <= bound then
            match acc with
            | None -> Some a
            | Some b -> if a.phi_l < b.phi_l then Some a else acc
          else acc)
        None archive
