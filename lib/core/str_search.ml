module Prng = Dtr_util.Prng
module Dist = Dtr_util.Dist
module Vmemo = Dtr_util.Vmemo
module Lexico = Dtr_cost.Lexico
module Objective = Dtr_routing.Objective
module Weights = Dtr_routing.Weights
module Evaluate = Dtr_routing.Evaluate

(* See Dtr_search: tolerant primary comparison enables the
   lexicographic tie-break. *)
let rel_tol = 1e-9

let lex_lt a b = Lexico.lt ~rel_tol a b

type archive_point = { phi_h : float; phi_l : float; w : int array }

type report = {
  best : Problem.solution;
  objective : Lexico.t;
  evaluations : int;
  improvements : int;
  memo_hits : int;
  memo_misses : int;
  archive : archive_point list;
}

let default_iters cfg =
  (* Evaluation-budget parity with Algorithm 1 — and then doubled.
     Algorithm 1 spends (2N + K) passes of m evaluations each, while
     one single-weight-change iteration scans (max_weight - min_weight)
     candidate values; the extra factor of 2 over-provisions the STR
     baseline (it takes fewer, larger steps, so it needs more of them),
     which makes the reported STR/DTR gaps conservative. *)
  let dtr_evals =
    ((2 * cfg.Search_config.n_iters) + cfg.Search_config.k_iters)
    * cfg.Search_config.m_neighbors
  in
  let scan = Weights.max_weight - Weights.min_weight in
  max 1 (2 * dtr_evals / scan)

(* Bounded Pareto archive over (phi_h, phi_l); dominated points are
   discarded, so it stays small in practice.  The size is tracked so
   an insert never walks the list just to count it, and an overflow
   evicts the worst-phi_l point with one fold instead of a sort. *)
let archive_max = 512

type archive = { pts : archive_point list; size : int }

let archive_empty = { pts = []; size = 0 }

(* [w] is a thunk: the weight vector is materialized only when the
   point actually enters the archive.  Dominance is decided from the
   (phi_h, phi_l) pair alone, so laziness cannot change the archive's
   contents — it only skips the O(m) copy for the (vast majority of)
   dominated candidates. *)
let archive_insert ar ~phi_h ~phi_l ~w =
  let dominated_by a = a.phi_h <= phi_h && a.phi_l <= phi_l in
  if List.exists dominated_by ar.pts then ar
  else begin
    let removed = ref 0 in
    let survivors =
      List.filter
        (fun a ->
          if phi_h <= a.phi_h && phi_l <= a.phi_l then begin
            incr removed;
            false
          end
          else true)
        ar.pts
    in
    let pts = { phi_h; phi_l; w = w () } :: survivors in
    let size = ar.size - !removed + 1 in
    if size > archive_max then begin
      (* Evict the first-in-list point of maximal phi_l — the same
         victim the previous stable descending sort dropped. *)
      let _, worst, _ =
        List.fold_left
          (fun (i, wi, wv) a ->
            if a.phi_l > wv then (i + 1, i, a.phi_l) else (i + 1, wi, wv))
          (0, -1, Float.neg_infinity)
          pts
      in
      { pts = List.filteri (fun i _ -> i <> worst) pts; size = size - 1 }
    end
    else { pts; size }
  end

(* Rank arcs straight from the live context's cost rows
   (Problem.ctx_arc_cmp_h) instead of materializing m Lexico records
   from the solution every iteration; the ordering is identical.  The
   ranking itself comes from the [Ranking] cache — repaired from the
   arcs the commits since the last call actually moved, instead of a
   full O(m log m) re-sort — and [ht] is the heavy-tail table over all
   m arcs, hoisted out of the loop (it depends only on (tau, m)). *)
let pick_arc rng cfg ~rcache ~ht ctx problem =
  let n = Dtr_graph.Graph.arc_count problem.Problem.graph in
  if Prng.bool rng then Prng.int rng n
  else begin
    let ranking =
      Ranking.arcs ~reference:cfg.Search_config.reference_loops rcache ctx
        ~cmp:(Problem.ctx_arc_cmp_h problem ctx) n
    in
    ranking.(Dist.heavy_tail_sample ht rng - 1)
  end

let run ?w0 ?iters ?stop ?on_progress ?(trace = Trace.disabled) rng cfg problem
    =
  Search_config.validate cfg;
  let iters = match iters with Some i -> i | None -> default_iters cfg in
  if iters < 1 then invalid_arg "Str_search.run: iters must be positive";
  let eval0, full0, delta0 = Problem.domain_eval_counts () in
  let probe_trace =
    if cfg.Search_config.trace_probes then
      Trace.sample cfg.Search_config.trace_sample trace
    else Trace.disabled
  in
  let mid = (Weights.min_weight + Weights.max_weight) / 2 in
  let w0 =
    match w0 with
    | Some w ->
        (* Out-of-range warm-start weights used to slip through to the
           candidate-value fill below and overflow [vals] (the
           "current value" exclusion never fired); reject them here. *)
        Weights.validate problem.Problem.graph w;
        w
    | None -> Array.make (Dtr_graph.Graph.arc_count problem.Problem.graph) mid
  in
  let track_archive = problem.Problem.model = Objective.Load in
  let archive = ref archive_empty in
  let observe sol =
    if track_archive then begin
      let eval = sol.Problem.result.Objective.eval in
      archive :=
        archive_insert !archive ~phi_h:eval.Evaluate.phi_h
          ~phi_l:eval.Evaluate.phi_l
          ~w:(fun () -> sol.Problem.wh)
    end
  in
  Scan.with_engine ~reference:cfg.Search_config.reference_loops
    ~jobs:cfg.Search_config.scan_jobs problem
  @@ fun scan ->
  (* Per-run memo of evaluated settings; scans consult it in candidate
     order, so hits (and the counters below) are jobs-invariant. *)
  let memo = Vmemo.create () in
  let current = ref (Problem.eval_str problem ~w:w0) in
  let ctx = Problem.ctx_of_solution problem !current in
  observe !current;
  let best = ref !current in
  let robust = cfg.Search_config.robust in
  (* The robust best's objective J = normal + alpha * penalty; in
     normal mode it simply mirrors the best's normal objective, so the
     report can read it unconditionally. *)
  let best_j = ref (Problem.objective !best) in
  let improvements = ref 0 in
  let stall = ref 0 in
  let n_vals = Weights.max_weight - Weights.min_weight in
  let vals = Array.make n_vals 0 in
  (* One iteration-level event, emitted after the acceptance decision;
     every field but the timestamp is a pure function of the
     trajectory (see Trace). *)
  let tell kind ~iteration ~detail ~before ~prev =
    if Trace.enabled trace then begin
      let e, f, d = Problem.domain_eval_counts () in
      Trace.emit trace ~kind ~iteration ~detail
        ~accepted:(not (prev == !current))
        ~before:(Trace.pair before)
        ~after:(Trace.pair (Problem.objective !current))
        ~best:(Trace.pair (Problem.objective !best))
        ~evaluations:(e - eval0) ~full:(f - full0) ~delta:(d - delta0)
        ~memo_hits:(Vmemo.hits memo) ~memo_misses:(Vmemo.misses memo) ()
    end
  in
  let tell_sweep ~iteration ~normal ~(rp : Problem.robust_price) ~accepted =
    if Trace.enabled trace then begin
      let e, f, d = Problem.domain_eval_counts () in
      Trace.emit trace ~kind:Trace.Robust_sweep ~iteration
        ~detail:rp.Problem.rp_infinite ~accepted ~before:(Trace.pair normal)
        ~after:(Trace.pair rp.Problem.rp_objective) ~best:(Trace.pair !best_j)
        ~evaluations:(e - eval0) ~full:(f - full0) ~delta:(d - delta0)
        ~memo_hits:(Vmemo.hits memo) ~memo_misses:(Vmemo.misses memo)
        ~value:rp.Problem.rp_penalty.Dtr_cost.Lexico.primary ()
    end
  in
  (* Robust-mode incumbent update.  A candidate is swept only when its
     normal cost beats the robust best: J >= normal componentwise, so
     nothing better can hide behind a worse normal cost, and the sweep
     frequency decays as the robust best tightens.  [moved] skips
     candidates the iteration left in place (their J was priced when
     they were accepted). *)
  let consider_best ~iteration ~moved ~count =
    match robust with
    | None ->
        if lex_lt (Problem.objective !current) (Problem.objective !best) then begin
          best := !current;
          best_j := Problem.objective !best;
          if count then incr improvements;
          stall := 0
        end
        else incr stall
    | Some r ->
        let normal = Problem.objective !current in
        if moved && lex_lt normal !best_j then begin
          let rp =
            Problem.robust_price problem ctx ~alpha:r.Search_config.alpha
              ~top_k:r.Search_config.top_k ~normal
          in
          let improved = lex_lt rp.Problem.rp_objective !best_j in
          if improved then begin
            best := !current;
            best_j := rp.Problem.rp_objective;
            if count then incr improvements;
            stall := 0
          end
          else incr stall;
          tell_sweep ~iteration ~normal ~rp ~accepted:improved
        end
        else incr stall
  in
  (* Price the starting point so the robust best is comparable from
     iteration one. *)
  (match robust with
  | None -> ()
  | Some r ->
      let normal = Problem.objective !current in
      let rp =
        Problem.robust_price problem ctx ~alpha:r.Search_config.alpha
          ~top_k:r.Search_config.top_k ~normal
      in
      best_j := rp.Problem.rp_objective;
      tell_sweep ~iteration:0 ~normal ~rp ~accepted:true);
  (* Loop-invariant tables: the rank sampler depends only on (tau, m)
     and the ranking cache is repaired across commits — neither is
     rebuilt per iteration. *)
  let ht =
    Dist.heavy_tail ~tau:cfg.Search_config.tau
      ~n:(Dtr_graph.Graph.arc_count problem.Problem.graph)
  in
  let rcache = Ranking.create () in
  let should_stop () = match stop with None -> false | Some f -> f () in
  let iteration = ref 0 in
  while !iteration < iters && not (!iteration > 0 && should_stop ()) do
    incr iteration;
    let iteration = !iteration in
    let arc = pick_arc rng cfg ~rcache ~ht ctx problem in
    let before = Problem.objective !current in
    let prev = !current in
    let w = !current.Problem.wh in
    (* The candidate values for this arc: every in-range weight except
       the current one, ascending — the same order the sequential scan
       visited them in. *)
    let pos = ref 0 in
    for v = Weights.min_weight to Weights.max_weight do
      if v <> w.(arc) then begin
        vals.(!pos) <- v;
        incr pos
      end
    done;
    let summaries =
      Scan.evaluate scan ctx ~memo ~trace:probe_trace ~cls:`H
        ~changes_of:(fun i -> [ (arc, vals.(i)) ])
        n_vals
    in
    (if track_archive then
       Array.iteri
         (fun i (s : Scan.summary) ->
           archive :=
             archive_insert !archive ~phi_h:s.Scan.phi_h ~phi_l:s.Scan.phi_l
               ~w:(fun () ->
                 let w' = Array.copy w in
                 w'.(arc) <- vals.(i);
                 w'))
         summaries);
    (* Replay the sequential argmin fold over the summaries (first
       strict improvement wins — identical tie-break). *)
    let best_i = ref (-1) in
    Array.iteri
      (fun i (s : Scan.summary) ->
        if !best_i < 0 then best_i := i
        else if lex_lt s.Scan.objective summaries.(!best_i).Scan.objective then
          best_i := i)
      summaries;
    (if !best_i >= 0 then
       let s = summaries.(!best_i) in
       if lex_lt s.Scan.objective (Problem.objective !current) then
         current := Scan.commit scan ctx ~cls:`H ~changes:[ (arc, vals.(!best_i)) ]);
    consider_best ~iteration ~moved:(not (prev == !current)) ~count:true;
    tell Trace.Str_scan ~iteration ~detail:arc ~before ~prev;
    if !stall >= cfg.Search_config.diversify_after then begin
      let before = Problem.objective !current in
      let w =
        Weights.perturb rng ~fraction:cfg.Search_config.g1 !current.Problem.wh
      in
      let changes = Problem.weight_changes !current.Problem.wh w in
      let d = Problem.eval_delta problem ctx ~cls:`H ~changes in
      let prev = !current in
      current := Problem.commit_delta problem ctx d;
      observe !current;
      (* A perturbation can land on a point better than the incumbent
         best; it used to be silently dropped (lost if the next scan
         moved away).  Offer it — uncounted, like Dtr_search's
         inter-routine reconciliation — before resetting the stall.
         When the perturbed point doesn't improve, only the stall
         counter moves, and it is re-zeroed right after. *)
      consider_best ~iteration ~moved:true ~count:false;
      stall := 0;
      tell Trace.Diversify ~iteration ~detail:(-1) ~before ~prev
    end;
    match on_progress with
    | None -> ()
    | Some f -> f iteration (Problem.objective !best)
  done;
  {
    best = !best;
    objective = !best_j;
    evaluations = Problem.domain_evaluations () - eval0;
    improvements = !improvements;
    memo_hits = Vmemo.hits memo;
    memo_misses = Vmemo.misses memo;
    archive =
      List.sort (fun a b -> Float.compare a.phi_h b.phi_h) (!archive).pts;
  }

let relaxed_best report ~epsilon =
  if epsilon < 0. then invalid_arg "Str_search.relaxed_best: negative epsilon";
  match report.archive with
  | [] -> None
  | archive ->
      let star_h =
        List.fold_left (fun acc a -> Float.min acc a.phi_h) Float.infinity
          archive
      in
      let bound = (1. +. epsilon) *. star_h in
      List.fold_left
        (fun acc a ->
          if a.phi_h <= bound then
            match acc with
            | None -> Some a
            | Some b -> if a.phi_l < b.phi_l then Some a else acc
          else acc)
        None archive
