module Lexico = Dtr_cost.Lexico

type kind =
  | Str_scan
  | Find_h
  | Find_l
  | Mtr_pass
  | Anneal_step
  | Probe
  | Diversify
  | Phase_done
  | Restart_done
  | Robust_sweep

let kind_name = function
  | Str_scan -> "str_scan"
  | Find_h -> "find_h"
  | Find_l -> "find_l"
  | Mtr_pass -> "mtr_pass"
  | Anneal_step -> "anneal_step"
  | Probe -> "probe"
  | Diversify -> "diversify"
  | Phase_done -> "phase_done"
  | Restart_done -> "restart_done"
  | Robust_sweep -> "robust_sweep"

let kind_of_name = function
  | "str_scan" -> Some Str_scan
  | "find_h" -> Some Find_h
  | "find_l" -> Some Find_l
  | "mtr_pass" -> Some Mtr_pass
  | "anneal_step" -> Some Anneal_step
  | "probe" -> Some Probe
  | "diversify" -> Some Diversify
  | "phase_done" -> Some Phase_done
  | "restart_done" -> Some Restart_done
  | "robust_sweep" -> Some Robust_sweep
  | _ -> None

type event = {
  seq : int;
  restart : int;
  kind : kind;
  iteration : int;
  detail : int;
  accepted : bool;
  before : float array;
  after : float array;
  best : float array;
  evaluations : int;
  full_evals : int;
  delta_evals : int;
  memo_hits : int;
  memo_misses : int;
  value : float;
  time_us : float;
}

(* A bounded ring degenerates to a growable array until [cap] events
   are held, then overwrites the oldest slot. *)
type ring_state = {
  mutable buf : event option array;
  mutable len : int;  (* events held *)
  mutable head : int;  (* index of the oldest event once saturated *)
  cap : int;
}

type sink =
  | Null
  | Ring of ring_state
  | Jsonl of out_channel
  | Tee of t * t
  | Sample of sample_state

(* Counter-based probe decimation: the counter advances once per Probe
   event offered, whether or not the event is kept, so which probes
   survive is a pure function of the probe stream (jobs-invariant —
   probes are already re-emitted in candidate order on the calling
   domain). *)
and sample_state = { every : int; inner : t; mutable seen : int }

and t = {
  sink : sink;
  mutable seq : int;
  mutable count : int;
  mutable last_us : float;
  t0 : float;
  stamps : bool;
}

let make ?(timestamps = true) sink =
  {
    sink;
    seq = 0;
    count = 0;
    last_us = 0.;
    t0 = Unix.gettimeofday ();
    stamps = timestamps;
  }

let disabled = make Null

let ring ?(capacity = max_int) ?timestamps () =
  if capacity < 1 then invalid_arg "Trace.ring: capacity must be positive";
  make ?timestamps
    (Ring { buf = Array.make (min capacity 256) None; len = 0; head = 0; cap = capacity })

let jsonl ?timestamps oc = make ?timestamps (Jsonl oc)

let tee a b = make (Tee (a, b))

let rec enabled t =
  match t.sink with
  | Null -> false
  | Ring _ | Jsonl _ -> true
  | Tee (a, b) -> enabled a || enabled b
  | Sample s -> enabled s.inner

let sample n t =
  if n < 1 then invalid_arg "Trace.sample: period must be positive";
  if n = 1 || not (enabled t) then t
  else make (Sample { every = n; inner = t; seen = 0 })

(* Forced-monotone elapsed time: wall clocks can step backwards (NTP),
   and the schema promises a monotone timing field. *)
let now t =
  let us = (Unix.gettimeofday () -. t.t0) *. 1e6 in
  let us = if us > t.last_us then us else t.last_us in
  t.last_us <- us;
  us

let float_str x = Printf.sprintf "%.17g" x

let array_str a =
  let b = Buffer.create 32 in
  Buffer.add_char b '[';
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (float_str x))
    a;
  Buffer.add_char b ']';
  Buffer.contents b

let to_json (e : event) =
  Printf.sprintf
    "{\"seq\":%d,\"restart\":%d,\"kind\":%S,\"iter\":%d,\"detail\":%d,\"accepted\":%b,\"before\":%s,\"after\":%s,\"best\":%s,\"evals\":%d,\"full\":%d,\"delta\":%d,\"memo_hits\":%d,\"memo_misses\":%d,\"value\":%s,\"t_us\":%s}"
    e.seq e.restart (kind_name e.kind) e.iteration e.detail e.accepted
    (array_str e.before) (array_str e.after) (array_str e.best) e.evaluations
    e.full_evals e.delta_evals e.memo_hits e.memo_misses (float_str e.value)
    (float_str e.time_us)

exception Bad_field of string

let of_json line =
  let module J = Dtr_util.Json in
  match J.parse line with
  | Error e -> Error e
  | Ok j -> (
      let get name conv =
        match Option.bind (J.member name j) conv with
        | Some x -> x
        | None -> raise (Bad_field name)
      in
      let farr name =
        get name (fun v ->
            match J.to_list v with
            | None -> None
            | Some l ->
                let rec go acc = function
                  | [] -> Some (Array.of_list (List.rev acc))
                  | x :: tl -> (
                      match J.to_float x with
                      | Some f -> go (f :: acc) tl
                      | None -> None)
                in
                go [] l)
      in
      try
        Ok
          {
            seq = get "seq" J.to_int;
            restart = get "restart" J.to_int;
            kind =
              get "kind" (fun v -> Option.bind (J.to_string v) kind_of_name);
            iteration = get "iter" J.to_int;
            detail = get "detail" J.to_int;
            accepted = get "accepted" J.to_bool;
            before = farr "before";
            after = farr "after";
            best = farr "best";
            evaluations = get "evals" J.to_int;
            full_evals = get "full" J.to_int;
            delta_evals = get "delta" J.to_int;
            memo_hits = get "memo_hits" J.to_int;
            memo_misses = get "memo_misses" J.to_int;
            value = get "value" J.to_float;
            time_us = get "t_us" J.to_float;
          }
      with Bad_field name ->
        Error (Printf.sprintf "Trace.of_json: bad or missing field %S" name))

let ring_push r (e : event) =
  if r.len < r.cap then begin
    if r.len = Array.length r.buf then begin
      (* Grow (still under the capacity bound). *)
      let buf = Array.make (min r.cap (2 * r.len)) None in
      Array.blit r.buf 0 buf 0 r.len;
      r.buf <- buf
    end;
    r.buf.(r.len) <- Some e;
    r.len <- r.len + 1
  end
  else begin
    r.buf.(r.head) <- Some e;
    r.head <- (r.head + 1) mod r.cap
  end

(* Record a fully-built event, assigning this sink's [seq] but keeping
   the caller's [time_us] (used by replay, where the worker's clock
   already stamped the event). *)
let rec record t (e : event) =
  match t.sink with
  | Null -> ()
  | Ring r ->
      let e =
        { e with seq = t.seq; time_us = (if t.stamps then e.time_us else 0.) }
      in
      t.seq <- t.seq + 1;
      t.count <- t.count + 1;
      ring_push r e
  | Jsonl oc ->
      let e =
        { e with seq = t.seq; time_us = (if t.stamps then e.time_us else 0.) }
      in
      t.seq <- t.seq + 1;
      t.count <- t.count + 1;
      output_string oc (to_json e);
      output_char oc '\n'
  | Tee (a, b) ->
      record a e;
      record b e
  | Sample s -> (
      match e.kind with
      | Probe ->
          let keep = s.seen mod s.every = 0 in
          s.seen <- s.seen + 1;
          if keep then record s.inner e
      | _ -> record s.inner e)

let emit t ~kind ?(restart = -1) ~iteration ?(detail = -1) ?(accepted = false)
    ?(before = [||]) ?(after = [||]) ?(best = [||]) ?(evaluations = 0)
    ?(full = 0) ?(delta = 0) ?(memo_hits = 0) ?(memo_misses = 0) ?(value = 0.)
    () =
  match t.sink with
  | Null -> ()
  | _ ->
      record t
        {
          seq = 0;
          restart;
          kind;
          iteration;
          detail;
          accepted;
          before;
          after;
          best;
          evaluations;
          full_evals = full;
          delta_evals = delta;
          memo_hits;
          memo_misses;
          value;
          time_us = now t;
        }

let rec length t =
  match t.sink with Sample s -> length s.inner | _ -> t.count

let rec events t =
  match t.sink with
  | Ring r ->
      let get i =
        match r.buf.((r.head + i) mod Array.length r.buf) with
        | Some e -> e
        | None -> assert false
      in
      (* Before saturation head = 0 and the modulo is the identity. *)
      List.init r.len get
  | Sample s -> events s.inner
  | Null | Jsonl _ | Tee _ -> []

let replay t ~into ~restart =
  List.iter (fun e -> record into { e with restart }) (events t)

let pair (l : Lexico.t) = [| l.Lexico.primary; l.Lexico.secondary |]

(* Exact lexicographic order on equal-length objective vectors; the
   arrays the searches emit never contain NaN. *)
let vec_lt a b =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i >= n then Array.length a < Array.length b
    else if a.(i) < b.(i) then true
    else if a.(i) > b.(i) then false
    else go (i + 1)
  in
  go 0

let convergence evs =
  let acc = ref [] in
  let best = ref [||] in
  let base = ref 0 in
  let segment = ref min_int in
  let seg_last = ref 0 in
  List.iter
    (fun e ->
      if Array.length e.best > 0 then begin
        (* Restart segments each count evaluations from zero; offset
           them by the budget the previous segments spent. *)
        if e.restart <> !segment then begin
          if !segment <> min_int then base := !base + !seg_last;
          segment := e.restart;
          seg_last := 0
        end;
        if e.evaluations > !seg_last then seg_last := e.evaluations;
        if Array.length !best = 0 || vec_lt e.best !best then begin
          best := e.best;
          acc := (!base + e.evaluations, e.best) :: !acc
        end
      end)
    evs;
  List.rev !acc
