(** Simulated-annealing variant of the DTR weight search, used as an
    alternative optimizer in the ablation study.

    The lexicographic objective does not admit a single scalar energy,
    but the two-phase structure of Algorithm 1 does: phase 1 anneals
    the high-priority weights against the primary cost ([Φ_H] or [Λ]),
    and phase 2 anneals the low-priority weights against [Φ_L] — which
    cannot change the primary cost, so each phase is a well-posed
    scalar annealing problem.  Moves are the same two-arc Algorithm-2
    moves; acceptance is Metropolis with a geometric cooling
    schedule. *)

type schedule = {
  t0_ratio : float;
      (** initial temperature as a fraction of the initial energy *)
  cooling : float;  (** geometric factor per temperature step, in (0, 1) *)
  moves_per_temp : int;  (** Metropolis proposals per temperature *)
  t_min_ratio : float;
      (** stop when T falls below this fraction of the initial T *)
}

val default_schedule : schedule
(** [t0_ratio = 0.05], [cooling = 0.95], [moves_per_temp = 50],
    [t_min_ratio = 1e-4]. *)

val validate_schedule : schedule -> unit
(** @raise Invalid_argument on nonsensical values. *)

type report = {
  best : Problem.solution;
  objective : Dtr_cost.Lexico.t;
  evaluations : int;
  accepted : int;  (** accepted Metropolis proposals (both phases) *)
}

val run :
  ?schedule:schedule ->
  ?w0:int array * int array ->
  ?trace:Trace.t ->
  Dtr_util.Prng.t ->
  Search_config.t ->
  Problem.t ->
  report
(** The [Search_config] supplies the neighborhood parameters
    ([m_neighbors] is unused — annealing proposes one move at a time —
    but [tau] and [max_step] apply).  With an enabled [trace], one
    [Anneal_step] event is recorded per Metropolis proposal
    ([detail] = phase 0/1, [value] = temperature) plus a [Phase_done]
    per phase; annealing is sequential, so the trace is trivially
    jobs-invariant.
    @raise Invalid_argument on an out-of-range or wrong-length vector
    in [w0] ({!Dtr_routing.Weights.validate}). *)
