module Prng = Dtr_util.Prng
module Dist = Dtr_util.Dist
module Weights = Dtr_routing.Weights

type move = { up_arc : int; down_arc : int }

let rank_by_cost ~cmp n_arcs =
  let ids = Array.init n_arcs (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = cmp b a in
      (* decreasing cost *)
      if c <> 0 then c else compare a b)
    ids;
  ids

let candidate_sets ?ht rng ~tau ~m ~ranking =
  let n = Array.length ranking in
  if n = 0 then invalid_arg "Neighborhood.candidate_sets: empty ranking";
  if m < 1 then invalid_arg "Neighborhood.candidate_sets: m must be positive";
  let m = min m n in
  let support = n - m + 1 in
  let ht =
    match ht with
    | Some t ->
        if Dist.heavy_tail_size t <> support then
          invalid_arg "Neighborhood.candidate_sets: sampler size mismatch";
        t
    | None -> Dist.heavy_tail ~tau ~n:support
  in
  let k1 = Dist.heavy_tail_sample ht rng in
  let k2 = Dist.heavy_tail_sample ht rng in
  (* A: ranks k1 .. k1+m-1 (1-based from the top). *)
  let a = Array.init m (fun i -> ranking.(k1 - 1 + i)) in
  (* B: ranks n+1-k2 down to n+2-k2-m (1-based), i.e. m consecutive
     ranks ending k2-1 above the bottom. *)
  let b = Array.init m (fun i -> ranking.(n - k2 - i)) in
  (a, b)

let moves rng ~a ~b =
  let a = Array.copy a and b = Array.copy b in
  Prng.shuffle rng a;
  Prng.shuffle rng b;
  let count = min (Array.length a) (Array.length b) in
  let acc = ref [] in
  for i = count - 1 downto 0 do
    if a.(i) <> b.(i) then acc := { up_arc = a.(i); down_arc = b.(i) } :: !acc
  done;
  !acc

let apply move ~step w =
  if step < 1 then invalid_arg "Neighborhood.apply: step must be positive";
  let result = Array.copy w in
  result.(move.up_arc) <-
    min Weights.max_weight (result.(move.up_arc) + step);
  result.(move.down_arc) <-
    max Weights.min_weight (result.(move.down_arc) - step);
  result
