(** A weight-optimization problem instance: network, the two traffic
    matrices, and the objective model. *)

type t = {
  graph : Dtr_graph.Graph.t;
  th : Dtr_traffic.Matrix.t;  (** high-priority traffic matrix *)
  tl : Dtr_traffic.Matrix.t;  (** low-priority traffic matrix *)
  model : Dtr_routing.Objective.model;
}

val create :
  graph:Dtr_graph.Graph.t ->
  th:Dtr_traffic.Matrix.t ->
  tl:Dtr_traffic.Matrix.t ->
  model:Dtr_routing.Objective.model ->
  t
(** @raise Invalid_argument on a size mismatch or a graph that is not
    strongly connected (the paper's model needs all pairs routable). *)

type solution = {
  wh : int array;
  wl : int array;
  result : Dtr_routing.Objective.result;
}
(** An evaluated weight setting.  For STR solutions [wh == wl]
    (physical equality is preserved so re-evaluations stay cheap). *)

val objective : solution -> Dtr_cost.Lexico.t

val eval_dtr : t -> wh:int array -> wl:int array -> solution
(** Evaluate a dual setting (the arrays are defensively copied). *)

val eval_str : t -> w:int array -> solution
(** Evaluate a single-topology setting ([wh == wl] in the result). *)

val is_str : solution -> bool

type class_routing
(** One traffic class's routing state (weights, shortest-path DAGs,
    arc loads) — the reusable half of an evaluation when a search pass
    mutates only the other class's weights. *)

val route_h : t -> int array -> class_routing
(** Route the high-priority matrix on the given weights. *)

val route_l : t -> int array -> class_routing
(** Route the low-priority matrix on the given weights. *)

val routing_weights : class_routing -> int array
(** The weight vector the routing was computed from (fresh copy). *)

val combine : t -> h:class_routing -> l:class_routing -> solution
(** Assemble a solution from per-class routings.  Under the SLA model
    the delay/penalty computation is cached inside the high-priority
    routing, so re-combining the same [h] with many [l] candidates
    (FindL) costs only the low-priority Fortz sum. *)

val h_routing_of : solution -> class_routing
(** Recover the (cached) high-priority routing of a solution. *)

val l_routing_of : solution -> class_routing

val evaluations : unit -> int
(** Process-wide count of objective evaluations performed through this
    module (monotonic; used to report search effort). *)

val reset_evaluations : unit -> unit
