(** A weight-optimization problem instance: network, the two traffic
    matrices, and the objective model. *)

type t = {
  graph : Dtr_graph.Graph.t;
  th : Dtr_traffic.Matrix.t;  (** high-priority traffic matrix *)
  tl : Dtr_traffic.Matrix.t;  (** low-priority traffic matrix *)
  model : Dtr_routing.Objective.model;
  dest_mode : Dtr_routing.Eval_ctx.dest_mode;
      (** destination coverage of every evaluation — [Demand] restricts
          SPF sweeps and contexts to demand-sinking destinations
          (bitwise-identical objectives; the only viable setting on the
          large presets) *)
}

val create :
  graph:Dtr_graph.Graph.t ->
  th:Dtr_traffic.Matrix.t ->
  tl:Dtr_traffic.Matrix.t ->
  model:Dtr_routing.Objective.model ->
  t
(** [dest_mode] is [All]; switch with a record update
    ([{ p with dest_mode = Demand }] — validation is mode-independent).
    @raise Invalid_argument on a size mismatch or a graph that is not
    strongly connected (the paper's model needs all pairs routable). *)

type solution = {
  wh : int array;
  wl : int array;
  result : Dtr_routing.Objective.result;
}
(** An evaluated weight setting.  For STR solutions [wh == wl]
    (physical equality is preserved so re-evaluations stay cheap). *)

val objective : solution -> Dtr_cost.Lexico.t

val eval_dtr : t -> wh:int array -> wl:int array -> solution
(** Evaluate a dual setting (the arrays are defensively copied). *)

val eval_str : t -> w:int array -> solution
(** Evaluate a single-topology setting ([wh == wl] in the result). *)

val is_str : solution -> bool

type class_routing
(** One traffic class's routing state (weights, shortest-path DAGs,
    arc loads) — the reusable half of an evaluation when a search pass
    mutates only the other class's weights. *)

val route_h : t -> int array -> class_routing
(** Route the high-priority matrix on the given weights. *)

val route_l : t -> int array -> class_routing
(** Route the low-priority matrix on the given weights. *)

val routing_weights : class_routing -> int array
(** The weight vector the routing was computed from (fresh copy). *)

val combine : t -> h:class_routing -> l:class_routing -> solution
(** Assemble a solution from per-class routings.  Under the SLA model
    the delay/penalty computation is cached inside the high-priority
    routing, so re-combining the same [h] with many [l] candidates
    (FindL) costs only the low-priority Fortz sum. *)

val h_routing_of : solution -> class_routing
(** Recover the (cached) high-priority routing of a solution. *)

val l_routing_of : solution -> class_routing

(** {2 Incremental evaluation}

    The search inner loops scan many candidates that differ from the
    incumbent in one or two arc weights.  A {!ctx} keeps the incumbent's
    full evaluation state live (per-destination DAGs, per-destination
    load contributions, the residual cascade, per-arc Fortz costs, via
    {!Dtr_routing.Eval_ctx}), so each candidate costs a {!eval_delta}
    probe — recompute only the destinations the changed arc can affect —
    instead of a from-scratch SPF + load projection.  Probes are
    numerically {e bitwise} identical to {!eval_str} / {!eval_dtr}, so
    switching a search loop to the delta engine preserves its exact
    trajectory for a fixed seed.

    Protocol: take any number of probes from the same context state
    (apply/undo — probes never modify the context), then
    {!commit_delta} the winner (advancing the context) or
    {!abort_delta} the rest.  Under the SLA model a high-priority
    change re-prices every H path delay, which per-arc deltas cannot
    express, so those probes transparently fall back to a full
    evaluation (and committing one resynchronizes the context). *)

type ctx
(** Live evaluation state of an incumbent solution. *)

type cls = [ `H | `L ]
(** Which class's weight vector a change targets.  For an STR context
    the classes share one vector, so either value moves both. *)

val ctx_of_solution : t -> solution -> ctx
(** Build a context from an evaluated solution, reusing its DAGs. *)

val ctx_is_str : ctx -> bool
(** Whether the context's classes share one weight vector. *)

val ctx_weights : ctx -> cls -> int array
(** A class's current weight vector (fresh copy). *)

val ctx_weights_view : ctx -> cls -> int array
(** A class's current weight vector {e without} copying
    ({!Dtr_routing.Eval_ctx.weights_view}).  Commits replace the
    array, so a held view is a stable snapshot — but callers must
    never mutate it. *)

val ctx_version : ctx -> int
(** Commit counter: bumps by one on every {!commit_delta}.  Keys the
    incremental caches below. *)

val ctx_changes_since : ctx -> since:int -> int array option
(** Arcs whose per-arc rows (loads, residual capacities, Fortz costs)
    moved in the commits after version [since]: [Some [||]] when the
    context is still at [since], [Some arcs] (possibly with
    duplicates across commits) when the bounded commit log covers the
    whole range, [None] when it does not — a full-fallback commit
    intervened, or the reader lags more than the log holds — and the
    caller must recompute from scratch.  Rankings sorted by
    {!ctx_arc_cmp_h}/{!ctx_arc_cmp_l} can be repaired from exactly
    this set: untouched arcs' cost rows are unchanged, so their
    relative order is preserved. *)

val ctx_base_key : ctx -> int
(** Zobrist base key of the context's current weight vectors (class 0
    under cls 0 XOR class 1 under cls 1 — the construction
    {!Scan.candidate_keys} shifts candidates from).  Computed O(arcs)
    on first demand, then maintained by two {!Dtr_util.Vhash.shift}s
    per changed arc across probe commits; bitwise-identical to
    {!ctx_base_key_fresh} always. *)

val ctx_base_key_fresh : ctx -> int
(** The same key recomputed from scratch (test/reference oracle for
    {!ctx_base_key}; also the fallback after full-evaluation
    commits). *)

val clone_ctx : t -> ctx -> ctx
(** A context evaluating identically to [ctx] but owning its mutable
    state ({!Dtr_routing.Eval_ctx.clone}), so another domain can probe
    it concurrently.  Clones are kept in step with {!sync_ctx} — the
    scan engine allocates one per worker and reuses it across
    iterations. *)

val sync_ctx : src:ctx -> dst:ctx -> unit
(** Resynchronize a clone with its original by blitting the shared-row
    spine (no re-evaluation).  Sound even after [src] was rebuilt by a
    full-evaluation fallback commit: contexts of one problem share
    shapes, and demand is weight-independent (strong connectivity), so
    the blit reproduces [src]'s evaluation state exactly.
    @raise Invalid_argument on incompatible contexts. *)

val ctx_arc_cmp_h : t -> ctx -> int -> int -> int
(** Comparator ranking arcs by the high-priority link cost (load
    model: [(Φ_H,l, Φ_L,l)]; SLA: [(delay_l, Φ_L,l)]), read from the
    live context's rows.  Ordering is identical to
    [Lexico.compare (Objective.link_costs_h ...)] on the materialized
    solution, without allocating [m] cost records per iteration. *)

val ctx_arc_cmp_l : t -> ctx -> int -> int -> int
(** Same for the low-priority ranking ([Φ_L,l] only). *)

val ctx_solution : t -> ctx -> solution
(** Materialize the context's current state as a solution.  O(arcs):
    the solution snapshots the context's arrays, which later commits
    replace rather than mutate. *)

val weight_changes : int array -> int array -> (int * int) list
(** [weight_changes base w'] lists the [(arc, new_value)] pairs where
    [w'] differs from [base], ascending by arc. *)

type delta
(** An evaluated candidate: objective plus whatever is needed to
    install it. *)

val eval_delta :
  ?count:bool -> t -> ctx -> cls:cls -> changes:(int * int) list -> delta
(** Evaluate the candidate obtained by applying [changes] to [cls]'s
    current weight vector.  Counted under {!delta_evaluations} when the
    incremental path is taken, under {!full_evaluations} otherwise.
    [~count:false] suppresses both counters: the scan engine uses it to
    re-derive an already-counted winner against the main context, so
    reported evaluation counts stay independent of [--scan-jobs]. *)

val delta_objective : delta -> Dtr_cost.Lexico.t

val delta_phi_h : delta -> float
(** The candidate's Φ_H (for archive bookkeeping under the load model). *)

val delta_phi_l : delta -> float

val commit_delta : t -> ctx -> delta -> solution
(** Install a candidate and return it as a full solution.  Only deltas
    evaluated against the context's current state may be committed.
    @raise Invalid_argument on a stale delta. *)

val abort_delta : ctx -> delta -> unit
(** Discard a candidate (no-op; closes the apply/undo protocol). *)

val failure_outcomes :
  ?pool:Dtr_util.Pool.t ->
  t ->
  ctx ->
  Dtr_routing.Failure_sweep.outcome array
(** Price every single-link failure against the context's current
    weights under the problem's cost model
    ({!Dtr_routing.Failure_sweep.sweep}).  The context is not
    modified; outcomes are in
    {!Dtr_graph.Graph.undirected_link_pairs} order and identical for
    every pool width. *)

type robust_price = {
  rp_objective : Dtr_cost.Lexico.t;
      (** the robust objective [J = normal + alpha * penalty] *)
  rp_penalty : Dtr_cost.Lexico.t;
      (** mean of the [top_k] worst finite post-failure costs *)
  rp_infinite : int;
      (** failures priced as infinite (they sever positive demand) *)
}

val robust_price :
  t ->
  ctx ->
  alpha:float ->
  top_k:int ->
  normal:Dtr_cost.Lexico.t ->
  robust_price
(** One sequential single-link sweep against the context's current
    weights, aggregated into the robust objective.  [normal] is the
    caller's current normal-cost objective (already known to every
    search loop; not recomputed).  Pure: the context is unchanged. *)

val evaluations : unit -> int
(** Process-wide count of objective evaluations performed through this
    module (monotonic; used to report search effort).  Total: every
    full and every delta evaluation counts once.  Kept in an
    [Atomic.t], so the count stays exact when several domains evaluate
    concurrently (e.g. under {!Multistart}). *)

val full_evaluations : unit -> int
(** The subset of {!evaluations} performed from scratch
    ({!eval_str}, {!eval_dtr}, {!combine}, and delta fallbacks). *)

val delta_evaluations : unit -> int
(** The subset of {!evaluations} performed incrementally. *)

val domain_evaluations : unit -> int
(** Evaluations performed by the {e calling domain} only.  The search
    loops difference this counter for their reports, so a report's
    [evaluations] field covers exactly that search's own work and is
    identical whether the search ran alone or beside others on a
    domain pool. *)

val domain_eval_counts : unit -> int * int * int
(** The calling domain's [(total, full, delta)] counters.  Plumbing
    for {!Scan}: a worker task differences these around its chunk,
    rolls its own counters back ({!move_domain_counts} with negative
    amounts), and the engine re-adds the deltas on the calling domain
    — keeping per-report counts independent of [--scan-jobs]. *)

val move_domain_counts : eval:int -> full:int -> delta:int -> unit
(** Adjust the calling domain's counters by the given (possibly
    negative) amounts.  The process-wide atomics are untouched. *)

val reset_evaluations : unit -> unit
(** Reset the process-wide totals and the calling domain's local
    counter.  Call only while no other domain is evaluating. *)
