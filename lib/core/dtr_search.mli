(** The paper's DTR weight-search heuristic (Algorithm 1), built from
    the FindH / FindL passes (Algorithm 2).

    Three routines: (1) optimize the high-priority weights [W_H] with
    [W_L] frozen; (2) freeze the best [W_H] and optimize [W_L]; (3)
    refine both around the incumbent, restarting from it (with a small
    perturbation) whenever [M] iterations pass without improvement. *)

type phase = Optimize_h | Optimize_l | Refine

type progress = {
  phase : phase;
  iteration : int;
  best_objective : Dtr_cost.Lexico.t;
}

type report = {
  best : Problem.solution;  (** incumbent after all three routines *)
  objective : Dtr_cost.Lexico.t;
  evaluations : int;  (** objective evaluations spent *)
  improvements : int;  (** accepted strict improvements *)
  memo_hits : int;
      (** neighborhood candidates served from the evaluated-solution
          memo instead of being re-evaluated *)
  memo_misses : int;  (** candidates that had to be evaluated *)
  phase_objectives : (phase * Dtr_cost.Lexico.t) list;
      (** incumbent objective at the end of each routine, in order *)
}

val find_h :
  Dtr_util.Prng.t ->
  Search_config.t ->
  Problem.t ->
  Problem.solution ->
  Problem.solution
(** One FindH pass: build the Algorithm-2 neighborhood on the
    high-priority weights and return the best neighbor if it strictly
    improves the lexicographic objective, the input solution
    otherwise.  Neighbors are evaluated incrementally
    ({!Problem.eval_delta}) against a context built from the input
    solution; the full search threads one long-lived context through
    its passes instead of rebuilding it here. *)

val find_l :
  Dtr_util.Prng.t ->
  Search_config.t ->
  Problem.t ->
  Problem.solution ->
  Problem.solution
(** Symmetric pass on the low-priority weights (ranking links by
    [Φ_{L,l}] only, since [W_L] cannot affect the high-priority
    class); the high-priority routing — including the SLA delay
    computation, whose cached [Λ] prices every probe — is reused. *)

val run :
  ?w0:int array * int array ->
  ?stop:(unit -> bool) ->
  ?on_progress:(progress -> unit) ->
  ?trace:Trace.t ->
  Dtr_util.Prng.t ->
  Search_config.t ->
  Problem.t ->
  report
(** Full Algorithm 1.  [w0] defaults to all weights =
    [(min_weight + max_weight) / 2] for both classes so initial moves
    can go both ways.  [stop], polled after every completed iteration,
    ends the run early when it returns [true] (the wall-clock budget
    hook): the remaining iterations of all three routines are skipped,
    while the inter-routine reconciliations and the final report still
    execute.  At least one iteration always runs, and a run that is
    never stopped is bit-identical to one without the callback.
    [on_progress] fires once per iteration.

    With an enabled [trace], one [Find_h] / [Find_l] event is recorded
    per pass ([detail] = routine ordinal 0/1/2), one [Diversify] per
    perturbation, and one [Phase_done] per routine; every field but
    the timestamp is identical for every [scan_jobs] value.
    @raise Invalid_argument on an out-of-range or wrong-length vector
    in [w0] ({!Dtr_routing.Weights.validate}). *)
