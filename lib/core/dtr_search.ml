module Prng = Dtr_util.Prng
module Lexico = Dtr_cost.Lexico
module Objective = Dtr_routing.Objective
module Weights = Dtr_routing.Weights

(* Primary costs within this relative tolerance are considered equal,
   letting the lexicographic tie-break (the secondary cost) fire: at
   low load exponentially many weight settings attain the optimal
   primary cost and differ only in low-priority cost, but accumulated
   floating-point sums of the primary differ in the last bits. *)
let rel_tol = 1e-9

let lex_lt a b = Lexico.lt ~rel_tol a b

type phase = Optimize_h | Optimize_l | Refine

type progress = {
  phase : phase;
  iteration : int;
  best_objective : Lexico.t;
}

type report = {
  best : Problem.solution;
  objective : Lexico.t;
  evaluations : int;
  improvements : int;
  phase_objectives : (phase * Lexico.t) list;
}

(* Scan the neighborhood as delta probes against [ctx] (which must be
   synchronized with [sol]) and commit the best strict improvement —
   the incremental analogue of folding [best_of_candidates] over fully
   evaluated neighbors, with identical comparison order. *)
let best_delta_of problem ctx sol ~cls ~base_w ~vectors =
  let best_obj = ref (Problem.objective sol) in
  let best = ref None in
  List.iter
    (fun w' ->
      let changes = Problem.weight_changes base_w w' in
      let d = Problem.eval_delta problem ctx ~cls ~changes in
      if lex_lt (Problem.delta_objective d) !best_obj then begin
        (match !best with Some b -> Problem.abort_delta ctx b | None -> ());
        best_obj := Problem.delta_objective d;
        best := Some d
      end
      else Problem.abort_delta ctx d)
    vectors;
  match !best with
  | Some d -> Problem.commit_delta problem ctx d
  | None -> sol

(* Weight vectors for a full value scan of one heavy-tail-ranked arc
   (the Fortz–Thorup move; used with probability scan_probability). *)
let scan_vectors rng cfg ~ranking w =
  let ht =
    Dtr_util.Dist.heavy_tail ~tau:cfg.Search_config.tau ~n:(Array.length ranking)
  in
  let arc = ranking.(Dtr_util.Dist.heavy_tail_sample ht rng - 1) in
  let acc = ref [] in
  for v = Weights.min_weight to Weights.max_weight do
    if v <> w.(arc) then begin
      let w' = Array.copy w in
      w'.(arc) <- v;
      acc := w' :: !acc
    end
  done;
  !acc

(* Weight vectors for the literal Algorithm-2 neighborhood: m two-arc
   moves (one weight up, one down) built from the candidate windows. *)
let move_vectors rng cfg ~ranking w =
  let a, b =
    Neighborhood.candidate_sets rng ~tau:cfg.Search_config.tau
      ~m:cfg.Search_config.m_neighbors ~ranking
  in
  List.map
    (fun move ->
      let step = Prng.int_incl rng 1 cfg.Search_config.max_step in
      Neighborhood.apply move ~step w)
    (Neighborhood.moves rng ~a ~b)

let neighbor_vectors rng cfg ~ranking w =
  if Prng.float rng 1.0 < cfg.Search_config.scan_probability then
    scan_vectors rng cfg ~ranking w
  else move_vectors rng cfg ~ranking w

let find_h_ctx rng cfg problem ctx sol =
  let costs = Objective.link_costs_h problem.Problem.model sol.Problem.result in
  let ranking =
    Neighborhood.rank_by_cost
      ~cmp:(fun a b -> Lexico.compare costs.(a) costs.(b))
      (Array.length costs)
  in
  let vectors = neighbor_vectors rng cfg ~ranking sol.Problem.wh in
  best_delta_of problem ctx sol ~cls:`H ~base_w:sol.Problem.wh ~vectors

let find_l_ctx rng cfg problem ctx sol =
  let costs = Objective.link_costs_l sol.Problem.result in
  let ranking =
    Neighborhood.rank_by_cost
      ~cmp:(fun a b -> Float.compare costs.(a) costs.(b))
      (Array.length costs)
  in
  let vectors = neighbor_vectors rng cfg ~ranking sol.Problem.wl in
  best_delta_of problem ctx sol ~cls:`L ~base_w:sol.Problem.wl ~vectors

(* One-shot wrappers for callers holding just a solution (the full
   search threads a long-lived context through the passes instead). *)
let find_h rng cfg problem sol =
  find_h_ctx rng cfg problem (Problem.ctx_of_solution problem sol) sol

let find_l rng cfg problem sol =
  find_l_ctx rng cfg problem (Problem.ctx_of_solution problem sol) sol

let default_w0 problem =
  let mid = (Weights.min_weight + Weights.max_weight) / 2 in
  let m = Dtr_graph.Graph.arc_count problem.Problem.graph in
  (Array.make m mid, Array.make m mid)

let run ?w0 ?on_progress rng cfg problem =
  Search_config.validate cfg;
  let eval0 = Problem.domain_evaluations () in
  let improvements = ref 0 in
  let wh0, wl0 = match w0 with Some w -> w | None -> default_w0 problem in
  let current = ref (Problem.eval_dtr problem ~wh:wh0 ~wl:wl0) in
  (* Long-lived incremental context, kept synchronized with [current];
     rebuilt (cheaply, reusing the solution's DAGs) whenever [current]
     is replaced by a full evaluation instead of a committed delta. *)
  let ctx = ref (Problem.ctx_of_solution problem !current) in
  let best = ref !current in
  let notify phase iteration =
    match on_progress with
    | None -> ()
    | Some f ->
        f { phase; iteration; best_objective = Problem.objective !best }
  in
  let phase_objectives = ref [] in

  (* Routine 1: optimize W_H with W_L frozen. *)
  let stall = ref 0 in
  for iteration = 1 to cfg.Search_config.n_iters do
    current := find_h_ctx rng cfg problem !ctx !current;
    if lex_lt (Problem.objective !current) (Problem.objective !best) then begin
      best := !current;
      incr improvements;
      stall := 0
    end
    else incr stall;
    if !stall >= cfg.Search_config.diversify_after then begin
      let wh =
        Weights.perturb rng ~fraction:cfg.Search_config.g1 !current.Problem.wh
      in
      let changes = Problem.weight_changes !current.Problem.wh wh in
      let d = Problem.eval_delta problem !ctx ~cls:`H ~changes in
      current := Problem.commit_delta problem !ctx d;
      stall := 0
    end;
    notify Optimize_h iteration
  done;
  phase_objectives := (Optimize_h, Problem.objective !best) :: !phase_objectives;

  (* Routine 2: freeze the best W_H, optimize W_L. *)
  current :=
    Problem.combine problem
      ~h:(Problem.h_routing_of !best)
      ~l:(Problem.l_routing_of !current);
  ctx := Problem.ctx_of_solution problem !current;
  if lex_lt (Problem.objective !current) (Problem.objective !best) then
    best := !current;
  stall := 0;
  for iteration = 1 to cfg.Search_config.n_iters do
    current := find_l_ctx rng cfg problem !ctx !current;
    if lex_lt (Problem.objective !current) (Problem.objective !best) then begin
      best := !current;
      incr improvements;
      stall := 0
    end
    else incr stall;
    if !stall >= cfg.Search_config.diversify_after then begin
      let wl =
        Weights.perturb rng ~fraction:cfg.Search_config.g2 !current.Problem.wl
      in
      let changes = Problem.weight_changes !current.Problem.wl wl in
      let d = Problem.eval_delta problem !ctx ~cls:`L ~changes in
      current := Problem.commit_delta problem !ctx d;
      stall := 0
    end;
    notify Optimize_l iteration
  done;
  phase_objectives := (Optimize_l, Problem.objective !best) :: !phase_objectives;

  (* Routine 3: joint refinement around the incumbent. *)
  current := !best;
  ctx := Problem.ctx_of_solution problem !current;
  stall := 0;
  for iteration = 1 to cfg.Search_config.k_iters do
    current := find_h_ctx rng cfg problem !ctx !current;
    current := find_l_ctx rng cfg problem !ctx !current;
    if lex_lt (Problem.objective !current) (Problem.objective !best) then begin
      best := !current;
      incr improvements;
      stall := 0
    end
    else incr stall;
    if !stall >= cfg.Search_config.diversify_after then begin
      (* Restart from the incumbent, slightly perturbed on both sides. *)
      let wh =
        Weights.perturb rng ~fraction:cfg.Search_config.g3 !best.Problem.wh
      in
      let wl =
        Weights.perturb rng ~fraction:cfg.Search_config.g3 !best.Problem.wl
      in
      current := Problem.eval_dtr problem ~wh ~wl;
      ctx := Problem.ctx_of_solution problem !current;
      stall := 0
    end;
    notify Refine iteration
  done;
  phase_objectives := (Refine, Problem.objective !best) :: !phase_objectives;

  {
    best = !best;
    objective = Problem.objective !best;
    evaluations = Problem.domain_evaluations () - eval0;
    improvements = !improvements;
    phase_objectives = List.rev !phase_objectives;
  }
