module Prng = Dtr_util.Prng
module Vmemo = Dtr_util.Vmemo
module Lexico = Dtr_cost.Lexico
module Weights = Dtr_routing.Weights

(* Primary costs within this relative tolerance are considered equal,
   letting the lexicographic tie-break (the secondary cost) fire: at
   low load exponentially many weight settings attain the optimal
   primary cost and differ only in low-priority cost, but accumulated
   floating-point sums of the primary differ in the last bits. *)
let rel_tol = 1e-9

let lex_lt a b = Lexico.lt ~rel_tol a b

type phase = Optimize_h | Optimize_l | Refine

type progress = {
  phase : phase;
  iteration : int;
  best_objective : Lexico.t;
}

type report = {
  best : Problem.solution;
  objective : Lexico.t;
  evaluations : int;
  improvements : int;
  memo_hits : int;
  memo_misses : int;
  phase_objectives : (phase * Lexico.t) list;
}

(* Evaluate the neighborhood through the scan engine (parallel over
   clones when configured, memo-short-circuited when a memo is given)
   against [ctx] (which must be synchronized with [sol]), then replay
   the sequential argmin fold over the returned summaries and commit
   the best strict improvement — identical comparison order, and
   identical results for every scan-jobs value. *)
let best_delta_of scan ?memo ?trace ctx sol ~cls ~base_w ~vectors =
  let changes = Array.of_list (List.map (Problem.weight_changes base_w) vectors) in
  let summaries =
    Scan.evaluate scan ctx ?memo ?trace ~cls
      ~changes_of:(fun i -> changes.(i))
      (Array.length changes)
  in
  let best_obj = ref (Problem.objective sol) in
  let best = ref (-1) in
  Array.iteri
    (fun i (s : Scan.summary) ->
      if lex_lt s.Scan.objective !best_obj then begin
        best_obj := s.Scan.objective;
        best := i
      end)
    summaries;
  if !best < 0 then sol else Scan.commit scan ctx ~cls ~changes:changes.(!best)

(* Weight vectors for a full value scan of one heavy-tail-ranked arc
   (the Fortz–Thorup move; used with probability scan_probability).
   [ht] lets the full search hoist the sampler table out of its loops
   (deterministic in (tau, n), so hoisting is bitwise-neutral). *)
let scan_vectors ?ht rng cfg ~ranking w =
  let n = Array.length ranking in
  let ht =
    match ht with
    | Some t ->
        if Dtr_util.Dist.heavy_tail_size t <> n then
          invalid_arg "Dtr_search.scan_vectors: sampler size mismatch";
        t
    | None -> Dtr_util.Dist.heavy_tail ~tau:cfg.Search_config.tau ~n
  in
  let arc = ranking.(Dtr_util.Dist.heavy_tail_sample ht rng - 1) in
  let acc = ref [] in
  for v = Weights.min_weight to Weights.max_weight do
    if v <> w.(arc) then begin
      let w' = Array.copy w in
      w'.(arc) <- v;
      acc := w' :: !acc
    end
  done;
  !acc

(* Weight vectors for the literal Algorithm-2 neighborhood: m two-arc
   moves (one weight up, one down) built from the candidate windows. *)
let move_vectors ?ht rng cfg ~ranking w =
  let a, b =
    Neighborhood.candidate_sets ?ht rng ~tau:cfg.Search_config.tau
      ~m:cfg.Search_config.m_neighbors ~ranking
  in
  List.map
    (fun move ->
      let step = Prng.int_incl rng 1 cfg.Search_config.max_step in
      Neighborhood.apply move ~step w)
    (Neighborhood.moves rng ~a ~b)

let neighbor_vectors ?ht_arc ?ht_cand rng cfg ~ranking w =
  if Prng.float rng 1.0 < cfg.Search_config.scan_probability then
    scan_vectors ?ht:ht_arc rng cfg ~ranking w
  else move_vectors ?ht:ht_cand rng cfg ~ranking w

(* Arc rankings come from the live context's cost rows
   (Problem.ctx_arc_cmp_h/_l) — same ordering as the solution-derived
   Objective.link_costs_h/_l, without allocating m cost records per
   pass.  With [rcache], the ranking is a cached sorted permutation
   repaired incrementally from the arcs the last commits touched
   (Ranking.arcs — bitwise the full sort) instead of an O(m log m)
   re-sort per pass. *)
let ranking_of ?rcache ~reference ~cmp ctx n_arcs =
  match rcache with
  | Some r -> Ranking.arcs ~reference r ctx ~cmp n_arcs
  | None -> Neighborhood.rank_by_cost ~cmp n_arcs

let find_h_ctx scan ?memo ?trace ?rcache ?ht_arc ?ht_cand rng cfg problem ctx
    sol =
  let ranking =
    ranking_of ?rcache ~reference:cfg.Search_config.reference_loops
      ~cmp:(Problem.ctx_arc_cmp_h problem ctx)
      ctx
      (Dtr_graph.Graph.arc_count problem.Problem.graph)
  in
  let vectors =
    neighbor_vectors ?ht_arc ?ht_cand rng cfg ~ranking sol.Problem.wh
  in
  best_delta_of scan ?memo ?trace ctx sol ~cls:`H ~base_w:sol.Problem.wh
    ~vectors

let find_l_ctx scan ?memo ?trace ?rcache ?ht_arc ?ht_cand rng cfg problem ctx
    sol =
  let ranking =
    ranking_of ?rcache ~reference:cfg.Search_config.reference_loops
      ~cmp:(Problem.ctx_arc_cmp_l problem ctx)
      ctx
      (Dtr_graph.Graph.arc_count problem.Problem.graph)
  in
  let vectors =
    neighbor_vectors ?ht_arc ?ht_cand rng cfg ~ranking sol.Problem.wl
  in
  best_delta_of scan ?memo ?trace ctx sol ~cls:`L ~base_w:sol.Problem.wl
    ~vectors

(* One-shot wrappers for callers holding just a solution (the full
   search threads a long-lived engine and context through the passes
   instead).  Sequential and unmemoized: one pass has no revisits to
   exploit, and spinning a pool up per pass would cost more than the
   scan. *)
let find_h rng cfg problem sol =
  Scan.with_engine ~jobs:1 problem @@ fun scan ->
  find_h_ctx scan rng cfg problem (Problem.ctx_of_solution problem sol) sol

let find_l rng cfg problem sol =
  Scan.with_engine ~jobs:1 problem @@ fun scan ->
  find_l_ctx scan rng cfg problem (Problem.ctx_of_solution problem sol) sol

let default_w0 problem =
  let mid = (Weights.min_weight + Weights.max_weight) / 2 in
  let m = Dtr_graph.Graph.arc_count problem.Problem.graph in
  (Array.make m mid, Array.make m mid)

let run ?w0 ?stop ?on_progress ?(trace = Trace.disabled) rng cfg problem =
  Search_config.validate cfg;
  let eval0, full0, delta0 = Problem.domain_eval_counts () in
  let probe_trace =
    if cfg.Search_config.trace_probes then
      Trace.sample cfg.Search_config.trace_sample trace
    else Trace.disabled
  in
  let improvements = ref 0 in
  let wh0, wl0 = match w0 with Some w -> w | None -> default_w0 problem in
  (* Caller-supplied starting points are validated here rather than
     trusted: an out-of-range weight used to survive until the value
     scan indexed past its table. *)
  (match w0 with
  | None -> ()
  | Some (wh, wl) ->
      Weights.validate problem.Problem.graph wh;
      Weights.validate problem.Problem.graph wl);
  (* Loop-invariant heavy-tail sampler tables, hoisted out of the
     FindH/FindL passes: one over all m arcs (value scans), one over
     the candidate-window support (two-arc moves).  Both depend only on
     (tau, n), so sharing them across iterations is bitwise-neutral. *)
  let n_arcs = Dtr_graph.Graph.arc_count problem.Problem.graph in
  let ht_arc = Dtr_util.Dist.heavy_tail ~tau:cfg.Search_config.tau ~n:n_arcs in
  let ht_cand =
    Dtr_util.Dist.heavy_tail ~tau:cfg.Search_config.tau
      ~n:(n_arcs - min cfg.Search_config.m_neighbors n_arcs + 1)
  in
  (* One ranking cache per cost ordering: FindH ranks by Φ_H rows,
     FindL by Φ_L rows, and each repairs against the same context's
     commit log independently. *)
  let rcache_h = Ranking.create () in
  let rcache_l = Ranking.create () in
  let stopped = ref false in
  let poll_stop () =
    match stop with
    | None -> ()
    | Some f -> if f () then stopped := true
  in
  Scan.with_engine ~reference:cfg.Search_config.reference_loops
    ~jobs:cfg.Search_config.scan_jobs problem
  @@ fun scan ->
  (* Per-run memo shared by all three routines: FindH and FindL
     candidates key on the full (W_H, W_L) pair, so revisits across
     phases and diversification jumps hit too. *)
  let memo = Vmemo.create () in
  let current = ref (Problem.eval_dtr problem ~wh:wh0 ~wl:wl0) in
  (* Long-lived incremental context, kept synchronized with [current];
     rebuilt (cheaply, reusing the solution's DAGs) whenever [current]
     is replaced by a full evaluation instead of a committed delta. *)
  let ctx = ref (Problem.ctx_of_solution problem !current) in
  let best = ref !current in
  let robust = cfg.Search_config.robust in
  (* The robust best's objective J = normal + alpha * penalty; in
     normal mode it mirrors the best's normal objective, so the report
     and phase summaries can read it unconditionally. *)
  let best_j = ref (Problem.objective !best) in
  let stall = ref 0 in
  let notify phase iteration =
    match on_progress with
    | None -> ()
    | Some f ->
        f { phase; iteration; best_objective = Problem.objective !best }
  in
  let phase_objectives = ref [] in
  (* One iteration-level event, emitted after the acceptance decision;
     every field but the timestamp is a pure function of the
     trajectory (see Trace).  [detail] is the routine ordinal. *)
  let tell kind ~iteration ~detail ~before ~prev =
    if Trace.enabled trace then begin
      let e, f, d = Problem.domain_eval_counts () in
      Trace.emit trace ~kind ~iteration ~detail
        ~accepted:(not (prev == !current))
        ~before:(Trace.pair before)
        ~after:(Trace.pair (Problem.objective !current))
        ~best:(Trace.pair (Problem.objective !best))
        ~evaluations:(e - eval0) ~full:(f - full0) ~delta:(d - delta0)
        ~memo_hits:(Vmemo.hits memo) ~memo_misses:(Vmemo.misses memo) ()
    end
  in
  let phase_done ~iteration ~detail =
    if Trace.enabled trace then begin
      let e, f, d = Problem.domain_eval_counts () in
      let b = Trace.pair (Problem.objective !best) in
      Trace.emit trace ~kind:Trace.Phase_done ~iteration ~detail ~before:b
        ~after:b ~best:b ~evaluations:(e - eval0) ~full:(f - full0)
        ~delta:(d - delta0) ~memo_hits:(Vmemo.hits memo)
        ~memo_misses:(Vmemo.misses memo) ()
    end
  in
  let tell_sweep ~iteration ~detail ~normal ~(rp : Problem.robust_price)
      ~accepted =
    if Trace.enabled trace then begin
      let e, f, d = Problem.domain_eval_counts () in
      Trace.emit trace ~kind:Trace.Robust_sweep ~iteration ~detail
        ~accepted ~before:(Trace.pair normal)
        ~after:(Trace.pair rp.Problem.rp_objective) ~best:(Trace.pair !best_j)
        ~evaluations:(e - eval0) ~full:(f - full0) ~delta:(d - delta0)
        ~memo_hits:(Vmemo.hits memo) ~memo_misses:(Vmemo.misses memo)
        ~value:rp.Problem.rp_penalty.Lexico.primary ()
    end
  in
  (* Robust-mode incumbent update, shared by all three routines.  A
     candidate is swept only when its normal cost beats the robust
     best: J >= normal componentwise, so nothing better can hide
     behind a worse normal cost, and sweeps grow rarer as the robust
     best tightens.  [moved] skips candidates the pass left in place;
     [count] distinguishes loop sites (improvement/stall bookkeeping)
     from the inter-routine reconciliation, which keeps none. *)
  let consider_best ~iteration ~detail ~moved ~count =
    let on_improve () =
      if count then begin
        incr improvements;
        stall := 0
      end
    in
    let on_reject () = if count then incr stall in
    match robust with
    | None ->
        if lex_lt (Problem.objective !current) (Problem.objective !best) then begin
          best := !current;
          best_j := Problem.objective !best;
          on_improve ()
        end
        else on_reject ()
    | Some r ->
        let normal = Problem.objective !current in
        if moved && lex_lt normal !best_j then begin
          let rp =
            Problem.robust_price problem !ctx ~alpha:r.Search_config.alpha
              ~top_k:r.Search_config.top_k ~normal
          in
          let improved = lex_lt rp.Problem.rp_objective !best_j in
          if improved then begin
            best := !current;
            best_j := rp.Problem.rp_objective
          end;
          tell_sweep ~iteration ~detail ~normal ~rp ~accepted:improved;
          if improved then on_improve () else on_reject ()
        end
        else on_reject ()
  in
  (* Price the starting point so the robust best is comparable from
     iteration one. *)
  (match robust with
  | None -> ()
  | Some r ->
      let normal = Problem.objective !current in
      let rp =
        Problem.robust_price problem !ctx ~alpha:r.Search_config.alpha
          ~top_k:r.Search_config.top_k ~normal
      in
      best_j := rp.Problem.rp_objective;
      tell_sweep ~iteration:0 ~detail:0 ~normal ~rp ~accepted:true);

  (* Routine 1: optimize W_H with W_L frozen.  [stop] is polled after
     every completed iteration (so at least one always runs); once it
     fires, the remaining iterations of every routine are skipped while
     the inter-routine reconciliations — and the report — still
     execute. *)
  stall := 0;
  for iteration = 1 to cfg.Search_config.n_iters do
    if not !stopped then begin
      let before = Problem.objective !current in
      let prev = !current in
      current :=
        find_h_ctx scan ~memo ~trace:probe_trace ~rcache:rcache_h ~ht_arc
          ~ht_cand rng cfg problem !ctx !current;
      consider_best ~iteration ~detail:0 ~moved:(not (prev == !current))
        ~count:true;
      tell Trace.Find_h ~iteration ~detail:0 ~before ~prev;
      if !stall >= cfg.Search_config.diversify_after then begin
        let before = Problem.objective !current in
        let wh =
          Weights.perturb rng ~fraction:cfg.Search_config.g1 !current.Problem.wh
        in
        let changes = Problem.weight_changes !current.Problem.wh wh in
        let d = Problem.eval_delta problem !ctx ~cls:`H ~changes in
        let prev = !current in
        current := Problem.commit_delta problem !ctx d;
        stall := 0;
        tell Trace.Diversify ~iteration ~detail:0 ~before ~prev
      end;
      notify Optimize_h iteration;
      poll_stop ()
    end
  done;
  phase_objectives := (Optimize_h, !best_j) :: !phase_objectives;
  phase_done ~iteration:cfg.Search_config.n_iters ~detail:0;

  (* Routine 2: freeze the best W_H, optimize W_L. *)
  current :=
    Problem.combine problem
      ~h:(Problem.h_routing_of !best)
      ~l:(Problem.l_routing_of !current);
  ctx := Problem.ctx_of_solution problem !current;
  consider_best ~iteration:0 ~detail:1 ~moved:true ~count:false;
  stall := 0;
  for iteration = 1 to cfg.Search_config.n_iters do
    if not !stopped then begin
      let before = Problem.objective !current in
      let prev = !current in
      current :=
        find_l_ctx scan ~memo ~trace:probe_trace ~rcache:rcache_l ~ht_arc
          ~ht_cand rng cfg problem !ctx !current;
      consider_best ~iteration ~detail:1 ~moved:(not (prev == !current))
        ~count:true;
      tell Trace.Find_l ~iteration ~detail:1 ~before ~prev;
      if !stall >= cfg.Search_config.diversify_after then begin
        let before = Problem.objective !current in
        let wl =
          Weights.perturb rng ~fraction:cfg.Search_config.g2 !current.Problem.wl
        in
        let changes = Problem.weight_changes !current.Problem.wl wl in
        let d = Problem.eval_delta problem !ctx ~cls:`L ~changes in
        let prev = !current in
        current := Problem.commit_delta problem !ctx d;
        stall := 0;
        tell Trace.Diversify ~iteration ~detail:1 ~before ~prev
      end;
      notify Optimize_l iteration;
      poll_stop ()
    end
  done;
  phase_objectives := (Optimize_l, !best_j) :: !phase_objectives;
  phase_done ~iteration:cfg.Search_config.n_iters ~detail:1;

  (* Routine 3: joint refinement around the incumbent. *)
  current := !best;
  ctx := Problem.ctx_of_solution problem !current;
  stall := 0;
  for iteration = 1 to cfg.Search_config.k_iters do
    if not !stopped then begin
      let before_h = Problem.objective !current in
      let prev_h = !current in
      current :=
        find_h_ctx scan ~memo ~trace:probe_trace ~rcache:rcache_h ~ht_arc
          ~ht_cand rng cfg problem !ctx !current;
      tell Trace.Find_h ~iteration ~detail:2 ~before:before_h ~prev:prev_h;
      let before_l = Problem.objective !current in
      let prev_l = !current in
      current :=
        find_l_ctx scan ~memo ~trace:probe_trace ~rcache:rcache_l ~ht_arc
          ~ht_cand rng cfg problem !ctx !current;
      consider_best ~iteration ~detail:2
        ~moved:(not (prev_h == !current) || not (prev_l == !current))
        ~count:true;
      tell Trace.Find_l ~iteration ~detail:2 ~before:before_l ~prev:prev_l;
      if !stall >= cfg.Search_config.diversify_after then begin
        (* Restart from the incumbent, slightly perturbed on both sides. *)
        let before = Problem.objective !current in
        let wh =
          Weights.perturb rng ~fraction:cfg.Search_config.g3 !best.Problem.wh
        in
        let wl =
          Weights.perturb rng ~fraction:cfg.Search_config.g3 !best.Problem.wl
        in
        let prev = !current in
        current := Problem.eval_dtr problem ~wh ~wl;
        ctx := Problem.ctx_of_solution problem !current;
        stall := 0;
        tell Trace.Diversify ~iteration ~detail:2 ~before ~prev
      end;
      notify Refine iteration;
      poll_stop ()
    end
  done;
  phase_objectives := (Refine, !best_j) :: !phase_objectives;
  phase_done ~iteration:cfg.Search_config.k_iters ~detail:2;

  {
    best = !best;
    objective = !best_j;
    evaluations = Problem.domain_evaluations () - eval0;
    improvements = !improvements;
    memo_hits = Vmemo.hits memo;
    memo_misses = Vmemo.misses memo;
    phase_objectives = List.rev !phase_objectives;
  }
