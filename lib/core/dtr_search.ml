module Prng = Dtr_util.Prng
module Lexico = Dtr_cost.Lexico
module Objective = Dtr_routing.Objective
module Weights = Dtr_routing.Weights

(* Primary costs within this relative tolerance are considered equal,
   letting the lexicographic tie-break (the secondary cost) fire: at
   low load exponentially many weight settings attain the optimal
   primary cost and differ only in low-priority cost, but accumulated
   floating-point sums of the primary differ in the last bits. *)
let rel_tol = 1e-9

let lex_lt a b = Lexico.lt ~rel_tol a b

type phase = Optimize_h | Optimize_l | Refine

type progress = {
  phase : phase;
  iteration : int;
  best_objective : Lexico.t;
}

type report = {
  best : Problem.solution;
  objective : Lexico.t;
  evaluations : int;
  improvements : int;
  phase_objectives : (phase * Lexico.t) list;
}

let best_of_candidates current candidates =
  List.fold_left
    (fun acc cand ->
      if lex_lt (Problem.objective cand) (Problem.objective acc) then cand
      else acc)
    current candidates

(* Weight vectors for a full value scan of one heavy-tail-ranked arc
   (the Fortz–Thorup move; used with probability scan_probability). *)
let scan_vectors rng cfg ~ranking w =
  let ht =
    Dtr_util.Dist.heavy_tail ~tau:cfg.Search_config.tau ~n:(Array.length ranking)
  in
  let arc = ranking.(Dtr_util.Dist.heavy_tail_sample ht rng - 1) in
  let acc = ref [] in
  for v = Weights.min_weight to Weights.max_weight do
    if v <> w.(arc) then begin
      let w' = Array.copy w in
      w'.(arc) <- v;
      acc := w' :: !acc
    end
  done;
  !acc

(* Weight vectors for the literal Algorithm-2 neighborhood: m two-arc
   moves (one weight up, one down) built from the candidate windows. *)
let move_vectors rng cfg ~ranking w =
  let a, b =
    Neighborhood.candidate_sets rng ~tau:cfg.Search_config.tau
      ~m:cfg.Search_config.m_neighbors ~ranking
  in
  List.map
    (fun move ->
      let step = Prng.int_incl rng 1 cfg.Search_config.max_step in
      Neighborhood.apply move ~step w)
    (Neighborhood.moves rng ~a ~b)

let neighbor_vectors rng cfg ~ranking w =
  if Prng.float rng 1.0 < cfg.Search_config.scan_probability then
    scan_vectors rng cfg ~ranking w
  else move_vectors rng cfg ~ranking w

let find_h rng cfg problem sol =
  let costs = Objective.link_costs_h problem.Problem.model sol.Problem.result in
  let ranking =
    Neighborhood.rank_by_cost
      ~cmp:(fun a b -> Lexico.compare costs.(a) costs.(b))
      (Array.length costs)
  in
  let l = Problem.l_routing_of sol in
  let candidates =
    List.map
      (fun wh -> Problem.combine problem ~h:(Problem.route_h problem wh) ~l)
      (neighbor_vectors rng cfg ~ranking sol.Problem.wh)
  in
  best_of_candidates sol candidates

let find_l rng cfg problem sol =
  let costs = Objective.link_costs_l sol.Problem.result in
  let ranking =
    Neighborhood.rank_by_cost
      ~cmp:(fun a b -> Float.compare costs.(a) costs.(b))
      (Array.length costs)
  in
  let h = Problem.h_routing_of sol in
  let candidates =
    List.map
      (fun wl -> Problem.combine problem ~h ~l:(Problem.route_l problem wl))
      (neighbor_vectors rng cfg ~ranking sol.Problem.wl)
  in
  best_of_candidates sol candidates

let default_w0 problem =
  let mid = (Weights.min_weight + Weights.max_weight) / 2 in
  let m = Dtr_graph.Graph.arc_count problem.Problem.graph in
  (Array.make m mid, Array.make m mid)

let run ?w0 ?on_progress rng cfg problem =
  Search_config.validate cfg;
  let eval0 = Problem.evaluations () in
  let improvements = ref 0 in
  let wh0, wl0 = match w0 with Some w -> w | None -> default_w0 problem in
  let current = ref (Problem.eval_dtr problem ~wh:wh0 ~wl:wl0) in
  let best = ref !current in
  let notify phase iteration =
    match on_progress with
    | None -> ()
    | Some f ->
        f { phase; iteration; best_objective = Problem.objective !best }
  in
  let phase_objectives = ref [] in

  (* Routine 1: optimize W_H with W_L frozen. *)
  let stall = ref 0 in
  for iteration = 1 to cfg.Search_config.n_iters do
    current := find_h rng cfg problem !current;
    if lex_lt (Problem.objective !current) (Problem.objective !best) then begin
      best := !current;
      incr improvements;
      stall := 0
    end
    else incr stall;
    if !stall >= cfg.Search_config.diversify_after then begin
      let wh =
        Weights.perturb rng ~fraction:cfg.Search_config.g1 !current.Problem.wh
      in
      current :=
        Problem.combine problem
          ~h:(Problem.route_h problem wh)
          ~l:(Problem.l_routing_of !current);
      stall := 0
    end;
    notify Optimize_h iteration
  done;
  phase_objectives := (Optimize_h, Problem.objective !best) :: !phase_objectives;

  (* Routine 2: freeze the best W_H, optimize W_L. *)
  current :=
    Problem.combine problem
      ~h:(Problem.h_routing_of !best)
      ~l:(Problem.l_routing_of !current);
  if lex_lt (Problem.objective !current) (Problem.objective !best) then
    best := !current;
  stall := 0;
  for iteration = 1 to cfg.Search_config.n_iters do
    current := find_l rng cfg problem !current;
    if lex_lt (Problem.objective !current) (Problem.objective !best) then begin
      best := !current;
      incr improvements;
      stall := 0
    end
    else incr stall;
    if !stall >= cfg.Search_config.diversify_after then begin
      let wl =
        Weights.perturb rng ~fraction:cfg.Search_config.g2 !current.Problem.wl
      in
      current :=
        Problem.combine problem
          ~h:(Problem.h_routing_of !current)
          ~l:(Problem.route_l problem wl);
      stall := 0
    end;
    notify Optimize_l iteration
  done;
  phase_objectives := (Optimize_l, Problem.objective !best) :: !phase_objectives;

  (* Routine 3: joint refinement around the incumbent. *)
  current := !best;
  stall := 0;
  for iteration = 1 to cfg.Search_config.k_iters do
    current := find_h rng cfg problem !current;
    current := find_l rng cfg problem !current;
    if lex_lt (Problem.objective !current) (Problem.objective !best) then begin
      best := !current;
      incr improvements;
      stall := 0
    end
    else incr stall;
    if !stall >= cfg.Search_config.diversify_after then begin
      (* Restart from the incumbent, slightly perturbed on both sides. *)
      let wh =
        Weights.perturb rng ~fraction:cfg.Search_config.g3 !best.Problem.wh
      in
      let wl =
        Weights.perturb rng ~fraction:cfg.Search_config.g3 !best.Problem.wl
      in
      current := Problem.eval_dtr problem ~wh ~wl;
      stall := 0
    end;
    notify Refine iteration
  done;
  phase_objectives := (Refine, Problem.objective !best) :: !phase_objectives;

  {
    best = !best;
    objective = Problem.objective !best;
    evaluations = Problem.evaluations () - eval0;
    improvements = !improvements;
    phase_objectives = List.rev !phase_objectives;
  }
