(** The Algorithm-2 neighborhood: rank links by cost, draw the
    candidate windows with a heavy-tailed rank distribution, and build
    [m] two-arc moves (one weight up, one weight down). *)

type move = {
  up_arc : int;  (** arc whose weight increases (from the high-cost set A) *)
  down_arc : int;  (** arc whose weight decreases (from the low-cost set B) *)
}

val rank_by_cost : cmp:(int -> int -> int) -> int -> int array
(** [rank_by_cost ~cmp n_arcs] returns arc ids sorted into decreasing
    cost order, where [cmp a b] compares the costs of arcs [a] and [b]
    (standard comparison contract); stable ties broken by arc id so
    runs are deterministic. *)

val candidate_sets :
  ?ht:Dtr_util.Dist.heavy_tail ->
  Dtr_util.Prng.t ->
  tau:float ->
  m:int ->
  ranking:int array ->
  int array * int array
(** [(a, b)]: the high-cost window A ([m] consecutive ranks starting at
    a heavy-tail-drawn rank [k1]) and the low-cost window B ([m]
    consecutive ranks ending at a heavy-tail-drawn distance [k2] from
    the bottom).  Both have length [min m n].  [ht], when given, must
    be a heavy-tail sampler over exactly the window support
    [n - min m n + 1] for the same [tau] — the tables are a pure
    function of [(tau, n)], so hoisting one out of a loop is
    draw-for-draw identical to rebuilding it here.
    @raise Invalid_argument if the ranking is empty, [m < 1], or a
    given [ht] has the wrong size. *)

val moves :
  Dtr_util.Prng.t -> a:int array -> b:int array -> move list
(** Random pairing of A and B without replacement; pairs that would
    select the same arc on both sides are dropped.  Length is at most
    [min |A| |B|]. *)

val apply : move -> step:int -> int array -> int array
(** Fresh weight vector with the move applied ([step >= 1]), clamped to
    the [\[1, 30\]] weight bounds.  Identity moves (both arcs already
    pinned at their bound) still return a fresh copy. *)
