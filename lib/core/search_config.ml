(* Robust (failure-aware) search mode: optimize
   normal_cost + alpha * penalty, where the penalty is the mean of the
   top_k worst finite single-link post-failure costs
   (Failure_sweep.penalty).  top_k = 1 is the pure worst case. *)
type robust = { alpha : float; top_k : int }

type t = {
  n_iters : int;
  k_iters : int;
  m_neighbors : int;
  diversify_after : int;
  g1 : float;
  g2 : float;
  g3 : float;
  tau : float;
  max_step : int;
  scan_probability : float;
  seed_split : int;
  scan_jobs : int;
  trace_probes : bool;
  trace_sample : int;
  robust : robust option;
  reference_loops : bool;
}

let paper =
  {
    n_iters = 300_000;
    k_iters = 800_000;
    m_neighbors = 5;
    diversify_after = 300;
    g1 = 0.05;
    g2 = 0.05;
    g3 = 0.03;
    tau = 1.5;
    max_step = 5;
    scan_probability = 0.;
    seed_split = 0;
    scan_jobs = 1;
    trace_probes = true;
    trace_sample = 1;
    robust = None;
    reference_loops = false;
  }

let default =
  {
    paper with
    n_iters = 1_500;
    k_iters = 3_000;
    diversify_after = 60;
    scan_probability = 0.15;
  }

let quick =
  {
    paper with
    n_iters = 250;
    k_iters = 500;
    diversify_after = 30;
    scan_probability = 0.15;
  }

let scale t factor =
  if factor <= 0. then invalid_arg "Search_config.scale: non-positive factor";
  let mul x = max 1 (int_of_float (Float.round (float_of_int x *. factor))) in
  {
    t with
    n_iters = mul t.n_iters;
    k_iters = mul t.k_iters;
    diversify_after = mul t.diversify_after;
  }

let validate t =
  if t.n_iters < 1 then invalid_arg "Search_config: n_iters must be positive";
  if t.k_iters < 0 then invalid_arg "Search_config: k_iters must be non-negative";
  if t.m_neighbors < 1 then invalid_arg "Search_config: m_neighbors must be positive";
  if t.diversify_after < 1 then
    invalid_arg "Search_config: diversify_after must be positive";
  let frac name x =
    if x < 0. || x > 1. then invalid_arg ("Search_config: " ^ name ^ " out of [0,1]")
  in
  frac "g1" t.g1;
  frac "g2" t.g2;
  frac "g3" t.g3;
  if t.tau < 0. then invalid_arg "Search_config: tau must be non-negative";
  if t.max_step < 1 then invalid_arg "Search_config: max_step must be positive";
  frac "scan_probability" t.scan_probability;
  if t.scan_jobs < 1 then invalid_arg "Search_config: scan_jobs must be positive";
  if t.trace_sample < 1 then
    invalid_arg "Search_config: trace_sample must be positive";
  match t.robust with
  | None -> ()
  | Some r ->
      if not (r.alpha >= 0.) then
        invalid_arg "Search_config: robust alpha must be non-negative";
      if r.top_k < 1 then
        invalid_arg "Search_config: robust top_k must be positive"
