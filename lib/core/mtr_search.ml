module Prng = Dtr_util.Prng
module Graph = Dtr_graph.Graph
module Matrix = Dtr_traffic.Matrix
module Multi = Dtr_routing.Multi
module Eval_ctx = Dtr_routing.Eval_ctx
module Weights = Dtr_routing.Weights

type problem = {
  graph : Graph.t;
  matrices : Matrix.t array;
}

let create_problem ~graph ~matrices =
  if Array.length matrices < 2 then
    invalid_arg "Mtr_search.create_problem: need at least 2 classes";
  let n = Graph.node_count graph in
  Array.iter
    (fun m ->
      if Matrix.size m <> n then
        invalid_arg "Mtr_search.create_problem: matrix size mismatch")
    matrices;
  if not (Graph.is_strongly_connected graph) then
    invalid_arg "Mtr_search.create_problem: graph must be strongly connected";
  { graph; matrices }

type report = {
  weights : int array array;
  objective : float array;
  eval : Multi.t;
  evaluations : int;
  improvements : int;
}

type state = {
  mutable current_w : int array array;
  mutable current : Multi.t;
  mutable ctx : Eval_ctx.t;  (* incremental view of [current] *)
  mutable best_w : int array array;
  mutable best : Multi.t;
  mutable evaluations : int;
  mutable improvements : int;
  mutable stall : int;
}

let copy_weights w = Array.map Array.copy w

(* Full (re-)evaluation through the incremental context, so later
   probes start from it: bitwise identical to Multi.evaluate. *)
let eval_state st problem w =
  st.evaluations <- st.evaluations + 1;
  st.ctx <- Eval_ctx.create problem.graph ~weights:w ~matrices:problem.matrices;
  Eval_ctx.to_multi st.ctx

let better a b = Multi.compare_objective (Multi.objective a) (Multi.objective b) < 0

(* One local-search pass mutating [target] weight vectors (indices into
   the per-class weights; a single shared vector passes [[|0|]] with
   the vector aliased everywhere).  Arc ranking uses the summed
   per-class arc costs of the mutated classes. *)
let pass ?ht_arc ?ht_cand rng cfg problem st ~klass =
  let w = st.current_w in
  let m = Graph.arc_count problem.graph in
  (* Rank directly over the incumbent's per-arc cost row — the sort
     completes before any probe commits, so reading the live row is
     bitwise-identical to the O(m) snapshot it replaces. *)
  let costs = st.current.Multi.phi_per_arc.(klass) in
  let ranking =
    Neighborhood.rank_by_cost ~cmp:(fun x y -> Float.compare costs.(x) costs.(y)) m
  in
  let vectors =
    if Prng.float rng 1.0 < cfg.Search_config.scan_probability then begin
      let ht =
        match ht_arc with
        | Some t -> t
        | None ->
            Dtr_util.Dist.heavy_tail ~tau:cfg.Search_config.tau
              ~n:(Array.length ranking)
      in
      let arc = ranking.(Dtr_util.Dist.heavy_tail_sample ht rng - 1) in
      let acc = ref [] in
      for v = Weights.min_weight to Weights.max_weight do
        if v <> w.(klass).(arc) then begin
          let w' = Array.copy w.(klass) in
          w'.(arc) <- v;
          acc := w' :: !acc
        end
      done;
      !acc
    end
    else begin
      let a, b =
        Neighborhood.candidate_sets ?ht:ht_cand rng ~tau:cfg.Search_config.tau
          ~m:cfg.Search_config.m_neighbors ~ranking
      in
      List.map
        (fun move ->
          let step = Prng.int_incl rng 1 cfg.Search_config.max_step in
          Neighborhood.apply move ~step w.(klass))
        (Neighborhood.moves rng ~a ~b)
    end
  in
  (* Probe each candidate against the context; only accepted moves are
     committed (first-improvement, exactly as the full-evaluation loop:
     identical comparison operands, bitwise).

     This pass deliberately does NOT go through the Scan engine (and
     stays sequential under --scan-jobs): it commits the first
     improvement mid-scan, so each later candidate is probed against a
     context that may already have moved.  Parallel probes of the
     original context would score candidates against the wrong
     incumbent — a different search trajectory, not just a different
     schedule.  The engine only fits scans whose winner is chosen
     after the whole neighborhood is scored (STR, FindH/FindL). *)
  List.iter
    (fun w_k ->
      st.evaluations <- st.evaluations + 1;
      let changes = ref [] in
      for a = m - 1 downto 0 do
        if st.current_w.(klass).(a) <> w_k.(a) then
          changes := (a, w_k.(a)) :: !changes
      done;
      let d = Eval_ctx.probe st.ctx ~klass ~changes:!changes in
      if Multi.compare_objective (Eval_ctx.probe_phi d) (Multi.objective st.current) < 0
      then begin
        Eval_ctx.commit st.ctx d;
        let cand_w = Array.copy w in
        cand_w.(klass) <- w_k;
        st.current_w <- cand_w;
        st.current <- Eval_ctx.to_multi st.ctx
      end
      else Eval_ctx.abort st.ctx d)
    vectors

let record_best st =
  if better st.current st.best then begin
    st.best_w <- copy_weights st.current_w;
    st.best <- st.current;
    st.improvements <- st.improvements + 1;
    st.stall <- 0
  end
  else st.stall <- st.stall + 1

let diversify rng problem st ~fraction ~classes =
  let w = copy_weights st.current_w in
  List.iter (fun k -> w.(k) <- Weights.perturb rng ~fraction w.(k)) classes;
  st.current_w <- w;
  st.current <- eval_state st problem w;
  st.stall <- 0

let finish st =
  {
    weights = copy_weights st.best_w;
    objective = Multi.objective st.best;
    eval = st.best;
    evaluations = st.evaluations;
    improvements = st.improvements;
  }

let init_state problem w0 =
  let ctx =
    Eval_ctx.create problem.graph ~weights:w0 ~matrices:problem.matrices
  in
  let current = Eval_ctx.to_multi ctx in
  {
    current_w = w0;
    current;
    ctx;
    best_w = copy_weights w0;
    best = current;
    evaluations = 1;
    improvements = 0;
    stall = 0;
  }

(* Re-point the context at the incumbent after a phase transition
   ([current_w] is a fresh copy of [best_w], so the incumbent's DAGs
   are still the right ones and the SPF is skipped). *)
let resync st problem =
  st.ctx <-
    Eval_ctx.create ~dags:st.best.Multi.dags problem.graph
      ~weights:st.current_w ~matrices:problem.matrices

(* One iteration-level event (kind Mtr_pass, or Diversify after a
   perturbation).  MTR passes never run through the scan engine, so
   every field — including [st.evaluations] — is trivially
   scheduling-independent; objectives are the length-T vectors. *)
let tell trace st kind ~iteration ~detail ~before ~prev =
  if Trace.enabled trace then
    Trace.emit trace ~kind ~iteration ~detail
      ~accepted:(not (prev == st.current))
      ~before ~after:(Multi.objective st.current)
      ~best:(Multi.objective st.best) ~evaluations:st.evaluations ()

let run ?w0 ?(trace = Trace.disabled) rng cfg problem =
  Search_config.validate cfg;
  let classes = Array.length problem.matrices in
  let mid = (Weights.min_weight + Weights.max_weight) / 2 in
  let m = Graph.arc_count problem.graph in
  let w0 =
    match w0 with
    | Some w ->
        if Array.length w <> classes then
          invalid_arg "Mtr_search.run: w0 class count mismatch";
        (* Validate every starting vector up front: an out-of-range
           weight used to survive until a value scan indexed past its
           table. *)
        Array.iter (Weights.validate problem.graph) w;
        copy_weights w
    | None -> Array.init classes (fun _ -> Array.make m mid)
  in
  (* Loop-invariant heavy-tail sampler tables (deterministic in
     (tau, n) — hoisting is bitwise-neutral). *)
  let ht_arc = Dtr_util.Dist.heavy_tail ~tau:cfg.Search_config.tau ~n:m in
  let ht_cand =
    Dtr_util.Dist.heavy_tail ~tau:cfg.Search_config.tau
      ~n:(m - min cfg.Search_config.m_neighbors m + 1)
  in
  let pass rng cfg problem st ~klass =
    pass ~ht_arc ~ht_cand rng cfg problem st ~klass
  in
  let st = init_state problem w0 in
  (* One routine per class, in priority order. *)
  for klass = 0 to classes - 1 do
    st.stall <- 0;
    (* Continue each routine from the incumbent. *)
    st.current_w <- copy_weights st.best_w;
    st.current <- st.best;
    resync st problem;
    for iteration = 1 to cfg.Search_config.n_iters do
      let before = Multi.objective st.current in
      let prev = st.current in
      pass rng cfg problem st ~klass;
      record_best st;
      tell trace st Trace.Mtr_pass ~iteration ~detail:klass ~before ~prev;
      if st.stall >= cfg.Search_config.diversify_after then begin
        let before = Multi.objective st.current in
        let prev = st.current in
        diversify rng problem st ~fraction:cfg.Search_config.g1
          ~classes:[ klass ];
        tell trace st Trace.Diversify ~iteration ~detail:klass ~before ~prev
      end
    done;
    if Trace.enabled trace then begin
      let b = Multi.objective st.best in
      Trace.emit trace ~kind:Trace.Phase_done
        ~iteration:cfg.Search_config.n_iters ~detail:klass ~before:b ~after:b
        ~best:b ~evaluations:st.evaluations ()
    end
  done;
  (* Joint refinement cycling over classes; its events carry
     [detail = classes] to distinguish them from the per-class
     routines. *)
  st.current_w <- copy_weights st.best_w;
  st.current <- st.best;
  resync st problem;
  st.stall <- 0;
  let all_classes = List.init classes Fun.id in
  for iteration = 1 to cfg.Search_config.k_iters do
    let before = Multi.objective st.current in
    let prev = st.current in
    List.iter (fun klass -> pass rng cfg problem st ~klass) all_classes;
    record_best st;
    tell trace st Trace.Mtr_pass ~iteration ~detail:classes ~before ~prev;
    if st.stall >= cfg.Search_config.diversify_after then begin
      let before = Multi.objective st.current in
      let prev = st.current in
      st.current_w <- copy_weights st.best_w;
      st.current <- st.best;
      diversify rng problem st ~fraction:cfg.Search_config.g3
        ~classes:all_classes;
      tell trace st Trace.Diversify ~iteration ~detail:classes ~before ~prev
    end
  done;
  if Trace.enabled trace then begin
    let b = Multi.objective st.best in
    Trace.emit trace ~kind:Trace.Phase_done ~iteration:cfg.Search_config.k_iters
      ~detail:classes ~before:b ~after:b ~best:b ~evaluations:st.evaluations ()
  end;
  finish st

let run_single_topology ?w0 ?(trace = Trace.disabled) rng cfg problem =
  Search_config.validate cfg;
  let classes = Array.length problem.matrices in
  let mid = (Weights.min_weight + Weights.max_weight) / 2 in
  let m = Graph.arc_count problem.graph in
  let shared =
    match w0 with
    | Some w ->
        Weights.validate problem.graph w;
        Array.copy w
    | None -> Array.make m mid
  in
  (* All classes alias the same vector, so Multi shares one SPF. *)
  let make_w shared = Array.make classes shared in
  let st = init_state problem (make_w shared) in
  let ht_cand =
    Dtr_util.Dist.heavy_tail ~tau:cfg.Search_config.tau
      ~n:(m - min cfg.Search_config.m_neighbors m + 1)
  in
  let iters = (classes * cfg.Search_config.n_iters) + cfg.Search_config.k_iters in
  for iteration = 1 to iters do
    let before = Multi.objective st.current in
    let prev = st.current in
    (* Mutate through class 0's slot; re-alias so the change applies to
       every class. *)
    let w = st.current_w.(0) in
    let costs =
      Array.init m (fun a ->
          let total = ref 0. in
          Array.iter (fun pa -> total := !total +. pa.(a)) st.current.Multi.phi_per_arc;
          !total)
    in
    let ranking =
      Neighborhood.rank_by_cost ~cmp:(fun x y -> Float.compare costs.(x) costs.(y)) m
    in
    let a, b =
      Neighborhood.candidate_sets ~ht:ht_cand rng ~tau:cfg.Search_config.tau
        ~m:cfg.Search_config.m_neighbors ~ranking
    in
    List.iter
      (fun move ->
        let step = Prng.int_incl rng 1 cfg.Search_config.max_step in
        let w' = Neighborhood.apply move ~step w in
        st.evaluations <- st.evaluations + 1;
        (* The context groups all aliased classes, so one probe on
           class 0 re-routes every class. *)
        let changes = ref [] in
        for a = m - 1 downto 0 do
          if st.current_w.(0).(a) <> w'.(a) then changes := (a, w'.(a)) :: !changes
        done;
        let d = Eval_ctx.probe st.ctx ~klass:0 ~changes:!changes in
        if
          Multi.compare_objective (Eval_ctx.probe_phi d)
            (Multi.objective st.current)
          < 0
        then begin
          Eval_ctx.commit st.ctx d;
          st.current_w <- make_w w';
          st.current <- Eval_ctx.to_multi st.ctx
        end
        else Eval_ctx.abort st.ctx d)
      (Neighborhood.moves rng ~a ~b);
    record_best st;
    tell trace st Trace.Mtr_pass ~iteration ~detail:(-1) ~before ~prev;
    if st.stall >= cfg.Search_config.diversify_after then begin
      let before = Multi.objective st.current in
      let prev = st.current in
      let w' = Weights.perturb rng ~fraction:cfg.Search_config.g1 st.current_w.(0) in
      st.current_w <- make_w w';
      st.current <- eval_state st problem st.current_w;
      st.stall <- 0;
      tell trace st Trace.Diversify ~iteration ~detail:(-1) ~before ~prev
    end
  done;
  finish st
