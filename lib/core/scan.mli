(** Hot-loop scan engine: evaluate a neighborhood of candidate weight
    changes against one incumbent context — in parallel over a domain
    pool when configured, short-circuited by an evaluated-solution
    memo when given — and hand the caller plain per-candidate
    summaries to fold exactly as the sequential loop would.

    {b Determinism.}  The engine never reduces in parallel: it returns
    every candidate's summary (in candidate order) and the caller
    replays the sequential argmin fold on them.  This matters because
    the searches compare objectives with a tolerant
    [Lexico.lt ~rel_tol], which is not transitive — a chunk-local
    argmin followed by a cross-chunk reduction can pick a different
    winner than the flat left-to-right fold.  Chunking only decides
    {e where} a candidate is probed; probes are bitwise-identical to
    full evaluations regardless of the context instance they run
    against, so the summaries (and everything folded from them) are
    identical for every [jobs] value.  Memo lookups and insertions
    happen on the calling domain in candidate order, so hit/miss
    patterns are scheduling-independent too; evaluation counters are
    measured per task, rolled back, and re-added on the calling
    domain in task order. *)

type summary = {
  objective : Dtr_cost.Lexico.t;
  phi_h : float;
  phi_l : float;
}
(** What a search fold needs from one evaluated candidate. *)

type t
(** An engine: an optional worker pool plus per-worker context clones,
    reused across iterations of one search run. *)

val create : ?reference:bool -> jobs:int -> Problem.t -> t
(** [reference] (default [false], see
    {!Search_config.t.reference_loops}) forces the pre-incremental
    memo keying: the base Zobrist hash of both weight vectors is
    recomputed from scratch every scan instead of read from the
    context's incrementally maintained key — bit-identical keys, so
    identical memo hits and counters; exists as the test oracle.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int

val shutdown : t -> unit
(** Join the worker domains and drop the clones.  Idempotent. *)

val with_engine : ?reference:bool -> jobs:int -> Problem.t -> (t -> 'a) -> 'a
(** Run [f] on a fresh engine, shutting it down on exit (normal or
    exceptional).  [jobs = 1] spawns no domains: scans degenerate to
    the plain sequential loop. *)

val evaluate :
  t ->
  Problem.ctx ->
  ?memo:summary Dtr_util.Vmemo.t ->
  ?trace:Trace.t ->
  cls:Problem.cls ->
  changes_of:(int -> (int * int) list) ->
  int ->
  summary array
(** [evaluate t ctx ?memo ~cls ~changes_of n] evaluates the [n]
    candidates [changes_of 0 .. changes_of (n-1)] (each a change list
    against [cls]'s current vector in [ctx]) and returns their
    summaries in candidate order.  [ctx] itself is not advanced.
    With [memo], already-seen settings are served from the table (and
    fresh ones added) — cached summaries are bitwise-equal to
    re-evaluation, so the caller's fold is unchanged; only the
    counted work shrinks.  [changes_of] must be pure (it may be
    re-invoked, including from worker domains).  With an enabled
    [trace], one [Probe] event per candidate is re-emitted on the
    calling domain in candidate order after the scan ([detail] =
    candidate index, [accepted] = served from the memo, [iteration] =
    the engine's scan counter) — never from the workers, so the trace
    is identical for every [jobs] value. *)

val commit :
  t -> Problem.ctx -> cls:Problem.cls -> changes:(int * int) list ->
  Problem.solution
(** Install a winning candidate into the main context and return it as
    a solution.  The candidate is re-derived against the context by an
    {e uncounted} probe (its evaluation was already counted when the
    scan summarized it), so evaluation reports stay jobs-invariant. *)
