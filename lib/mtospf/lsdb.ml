type t = (int, Lsa.t) Hashtbl.t

let create () = Hashtbl.create 16

type install_outcome = Installed | Ignored

let install t (lsa : Lsa.t) =
  match Hashtbl.find_opt t lsa.Lsa.origin with
  | None ->
      Hashtbl.replace t lsa.Lsa.origin lsa;
      Installed
  | Some existing ->
      if Lsa.newer lsa existing then begin
        Hashtbl.replace t lsa.Lsa.origin lsa;
        Installed
      end
      else Ignored

let find t origin = Hashtbl.find_opt t origin

let origins t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let size t = Hashtbl.length t

let equal a b =
  size a = size b
  && List.for_all
       (fun o ->
         match (find a o, find b o) with
         | Some x, Some y -> x.Lsa.seq = y.Lsa.seq
         | _ -> false)
       (origins a)

let copy t = Hashtbl.copy t
