(** A router's link-state database: the freshest LSA per origin. *)

type t

val create : unit -> t

type install_outcome =
  | Installed  (** new origin or strictly newer sequence *)
  | Ignored  (** already have this or a newer sequence *)

val install : t -> Lsa.t -> install_outcome

val find : t -> int -> Lsa.t option
(** Current LSA of a given origin. *)

val origins : t -> int list
(** Sorted origins present. *)

val size : t -> int

val equal : t -> t -> bool
(** Same origins with the same sequence numbers (content is implied by
    origin + seq in this model). *)

val copy : t -> t
