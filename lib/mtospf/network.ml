module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Weights = struct
  (* Bounds mirrored from Dtr_routing.Weights without depending on it
     (the control plane floods whatever the optimizer produced). *)
  let min_weight = 1
  let max_weight = 30
end

type message = { lsa : Lsa.t; to_router : int; from_router : int }

type t = {
  graph : Graph.t;
  topologies : int;
  weights : int option array array;  (* topology -> arc -> weight *)
  alive : bool array;  (* per arc *)
  lsdbs : Lsdb.t array;  (* per router *)
  seqs : int array;  (* per router: last originated sequence *)
  mutable pending : message list;
}

let check_weight w =
  if w < Weights.min_weight || w > Weights.max_weight then
    invalid_arg "Mtospf: weight out of bounds"

let build_lsa t router =
  let links = ref [] in
  Array.iter
    (fun id ->
      if t.alive.(id) then begin
        let a = Graph.arc t.graph id in
        let weights =
          Array.init t.topologies (fun topo -> t.weights.(topo).(id))
        in
        links :=
          {
            Lsa.arc_id = id;
            neighbor = a.Graph.dst;
            capacity = a.Graph.capacity;
            delay = a.Graph.delay;
            weights;
          }
          :: !links
      end)
    (Graph.out_arcs t.graph router);
  Lsa.make ~origin:router ~seq:t.seqs.(router) ~links:(List.rev !links)

let neighbors_via_alive t router =
  let acc = ref [] in
  Array.iter
    (fun id ->
      if t.alive.(id) then acc := (Graph.arc t.graph id).Graph.dst :: !acc)
    (Graph.out_arcs t.graph router);
  List.rev !acc

let originate t router =
  t.seqs.(router) <- t.seqs.(router) + 1;
  let lsa = build_lsa t router in
  ignore (Lsdb.install t.lsdbs.(router) lsa);
  List.iter
    (fun nbr ->
      t.pending <-
        { lsa; to_router = nbr; from_router = router } :: t.pending)
    (neighbors_via_alive t router)

let create g ~weight_sets =
  let m = Graph.arc_count g in
  if Array.length weight_sets = 0 then
    invalid_arg "Mtospf.create: need at least one topology";
  Array.iter
    (fun ws ->
      if Array.length ws <> m then
        invalid_arg "Mtospf.create: weight vector length mismatch";
      Array.iter check_weight ws)
    weight_sets;
  let n = Graph.node_count g in
  let t =
    {
      graph = g;
      topologies = Array.length weight_sets;
      weights = Array.map (fun ws -> Array.map (fun w -> Some w) ws) weight_sets;
      alive = Array.make m true;
      lsdbs = Array.init n (fun _ -> Lsdb.create ());
      seqs = Array.make n (-1);
      pending = [];
    }
  in
  for r = 0 to n - 1 do
    originate t r
  done;
  t

let topology_count t = t.topologies

type flood_stats = { rounds : int; messages : int }

let flood t =
  let rounds = ref 0 and messages = ref 0 in
  while t.pending <> [] do
    incr rounds;
    let batch = List.rev t.pending in
    t.pending <- [];
    List.iter
      (fun msg ->
        incr messages;
        match Lsdb.install t.lsdbs.(msg.to_router) msg.lsa with
        | Lsdb.Ignored -> ()
        | Lsdb.Installed ->
            List.iter
              (fun nbr ->
                if nbr <> msg.from_router then
                  t.pending <-
                    { lsa = msg.lsa; to_router = nbr; from_router = msg.to_router }
                    :: t.pending)
              (neighbors_via_alive t msg.to_router))
      batch
  done;
  { rounds = !rounds; messages = !messages }

let converged t =
  let n = Array.length t.lsdbs in
  let ok = ref true in
  for r = 1 to n - 1 do
    if not (Lsdb.equal t.lsdbs.(0) t.lsdbs.(r)) then ok := false
  done;
  !ok && t.pending = []

let check_arc t arc =
  if arc < 0 || arc >= Graph.arc_count t.graph then
    invalid_arg "Mtospf: arc id out of range"

let check_topology t topo =
  if topo < 0 || topo >= t.topologies then
    invalid_arg "Mtospf: topology id out of range"

let set_weight t ~topology ~arc ~weight =
  check_arc t arc;
  check_topology t topology;
  check_weight weight;
  if not t.alive.(arc) then invalid_arg "Mtospf.set_weight: arc is down";
  t.weights.(topology).(arc) <- Some weight;
  originate t (Graph.arc t.graph arc).Graph.src;
  flood t

(* Batch reconfiguration: one maintenance window applying a whole
   weight diff.  Every router with at least one changed outgoing arc
   re-originates exactly once (its LSA carries all of its changes),
   then a single flood disseminates the batch — the realistic
   reconvergence price of a multi-arc weight change, as opposed to
   flooding after every single change. *)
let apply_changes t changes =
  List.iter
    (fun (topology, arc, weight) ->
      check_arc t arc;
      check_topology t topology;
      check_weight weight;
      if not t.alive.(arc) then
        invalid_arg "Mtospf.apply_changes: arc is down")
    changes;
  List.iter
    (fun (topology, arc, weight) ->
      t.weights.(topology).(arc) <- Some weight)
    changes;
  let routers =
    List.sort_uniq compare
      (List.map (fun (_, arc, _) -> (Graph.arc t.graph arc).Graph.src) changes)
  in
  List.iter (originate t) routers;
  flood t

let exclude_arc t ~topology ~arc =
  check_arc t arc;
  check_topology t topology;
  t.weights.(topology).(arc) <- None;
  originate t (Graph.arc t.graph arc).Graph.src;
  flood t

let fail_arc t ~arc =
  check_arc t arc;
  t.alive.(arc) <- false;
  originate t (Graph.arc t.graph arc).Graph.src;
  flood t

let routing_table t ~router ~topology =
  check_topology t topology;
  if router < 0 || router >= Array.length t.lsdbs then
    invalid_arg "Mtospf.routing_table: router out of range";
  let lsdb = t.lsdbs.(router) in
  (* Rebuild the view graph from the LSDB; remember global arc ids. *)
  let view_arcs = ref [] and global_ids = ref [] in
  List.iter
    (fun origin ->
      match Lsdb.find lsdb origin with
      | None -> ()
      | Some lsa ->
          List.iter
            (fun (l : Lsa.link_info) ->
              match l.Lsa.weights.(topology) with
              | None -> ()
              | Some w ->
                  view_arcs :=
                    ( {
                        Graph.src = origin;
                        dst = l.Lsa.neighbor;
                        capacity = l.Lsa.capacity;
                        delay = l.Lsa.delay;
                      },
                      w )
                    :: !view_arcs;
                  global_ids := l.Lsa.arc_id :: !global_ids)
            lsa.Lsa.links)
    (Lsdb.origins lsdb);
  let view_arcs = List.rev !view_arcs in
  let global_ids = Array.of_list (List.rev !global_ids) in
  let n = Graph.node_count t.graph in
  let view = Graph.build ~n (List.map fst view_arcs) in
  let weights = Array.of_list (List.map snd view_arcs) in
  let dags = Spf.all_destinations view ~weights in
  (* Translate local arc ids back to global ids. *)
  Array.map
    (fun (dag : Spf.dag) ->
      {
        dag with
        Spf.next_arcs =
          Array.map (Array.map (fun local -> global_ids.(local))) dag.Spf.next_arcs;
      })
    dags

let lsdb_sizes t = Array.map Lsdb.size t.lsdbs
