(** Synchronous-round simulation of an MT-OSPF area: LSA origination,
    reliable flooding over adjacencies, per-topology SPF from each
    router's own LSDB.

    The model demonstrates (and lets tests verify) that a weight pair
    computed by the DTR heuristic can be disseminated with standard
    multi-topology flooding and that every router's per-topology
    forwarding state then agrees with the global {!Dtr_graph.Spf}
    computation the optimizer used. *)

type t

type flood_stats = {
  rounds : int;  (** synchronous rounds until quiescence *)
  messages : int;  (** LSA transmissions over adjacencies *)
}

val create : Dtr_graph.Graph.t -> weight_sets:int array array -> t
(** [create g ~weight_sets] builds one router per node; topology [k]
    assigns weight [weight_sets.(k).(arc)] to each arc.  Every router
    starts having originated its own LSA but nothing has been flooded
    yet ({!flood} runs the exchange).
    @raise Invalid_argument if no topology is given or a weight vector
    has the wrong length or out-of-bounds weights. *)

val topology_count : t -> int

val flood : t -> flood_stats
(** Run synchronous flooding rounds until no LSA is in flight. *)

val converged : t -> bool
(** All routers hold identical LSDBs. *)

val set_weight : t -> topology:int -> arc:int -> weight:int -> flood_stats
(** Reconfigure one arc's weight in one topology: the arc's head
    router re-originates with a higher sequence number and the change
    is flooded.  Returns the flooding cost.
    @raise Invalid_argument on bad indices/bounds or a failed arc. *)

val apply_changes : t -> (int * int * int) list -> flood_stats
(** [apply_changes t [(topology, arc, weight); ...]] installs a whole
    batch of weight changes as one maintenance window: every router
    owning at least one changed arc re-originates {e once} (its new
    LSA carries all of its changes) and a single flood disseminates
    the batch.  Returns the flooding cost — the MT-OSPF reconvergence
    price of deploying a multi-arc weight diff, cheaper than the sum
    of per-change {!set_weight} refloods.  The empty list floods
    nothing and returns zero stats.
    @raise Invalid_argument on bad indices/bounds or a failed arc
    (nothing is applied in that case). *)

val exclude_arc : t -> topology:int -> arc:int -> flood_stats
(** Remove an arc from one topology only (MT-OSPF per-topology
    exclusion); it keeps carrying other topologies. *)

val fail_arc : t -> arc:int -> flood_stats
(** Take an arc down in every topology (interface failure); flooding
    stops using it too. *)

val routing_table :
  t -> router:int -> topology:int -> Dtr_graph.Spf.dag array
(** Per-destination shortest-path DAGs computed from [router]'s own
    LSDB for one topology.  Arc ids in the result are global arc ids
    of the underlying graph, so the tables are directly comparable to
    [Spf.all_destinations].  Destinations unreachable in that
    router's current view get empty next-hop sets. *)

val lsdb_sizes : t -> int array
(** Per-router LSDB size (diagnostic). *)
