(** Router LSAs carrying per-topology link weights (the RFC 4915
    multi-topology extension the paper's DTR deployment relies on).

    Each router originates one LSA describing its outgoing links; every
    link advertises one weight per topology, or [None] when the link is
    excluded from that topology. *)

type link_info = {
  arc_id : int;  (** global arc id (stands in for the interface id) *)
  neighbor : int;  (** router at the other end *)
  capacity : float;
  delay : float;
  weights : int option array;  (** per-topology weight; [None] = excluded *)
}

type t = {
  origin : int;  (** advertising router *)
  seq : int;  (** sequence number; higher wins *)
  links : link_info list;
}

val make : origin:int -> seq:int -> links:link_info list -> t
(** @raise Invalid_argument on a negative sequence number, an empty
    weight vector, or inconsistent topology counts across links. *)

val topology_count : t -> int
(** Number of topologies advertised (0 for a link-less LSA). *)

val newer : t -> t -> bool
(** [newer a b]: [a] supersedes [b] (same origin, higher seq).
    @raise Invalid_argument on different origins. *)
