type link_info = {
  arc_id : int;
  neighbor : int;
  capacity : float;
  delay : float;
  weights : int option array;
}

type t = { origin : int; seq : int; links : link_info list }

let make ~origin ~seq ~links =
  if seq < 0 then invalid_arg "Lsa.make: negative sequence number";
  (match links with
  | [] -> ()
  | first :: rest ->
      let k = Array.length first.weights in
      if k = 0 then invalid_arg "Lsa.make: empty weight vector";
      List.iter
        (fun l ->
          if Array.length l.weights <> k then
            invalid_arg "Lsa.make: inconsistent topology counts")
        rest);
  { origin; seq; links }

let topology_count t =
  match t.links with [] -> 0 | l :: _ -> Array.length l.weights

let newer a b =
  if a.origin <> b.origin then invalid_arg "Lsa.newer: different origins";
  a.seq > b.seq
