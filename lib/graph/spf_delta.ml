type change = { arc : int; before : int; after : int }

(* What a weight change does to one destination's DAG, decided from
   the previous distance labels alone (the screening step). *)
type effect =
  | Clean  (* neither distances nor any next-hop set can move *)
  | Patch  (* distances provably unchanged; only the changed arc's
              tail node gains or loses that arc in its next-hop set *)
  | Rebuild  (* distances may move: full per-destination recompute *)

(* [after = Dijkstra.suppressed] (arc failure) rides the weight-
   increase branch below without special-casing: the branch never adds
   [after] to anything, it only asks whether the arc was tight under
   [before] — exactly the question "did any shortest path use the
   failed arc?". *)
let classify dag ~u ~v ~before ~after =
  let dv = dag.Spf.dist.(v) in
  if dv = Dijkstra.unreachable then Clean
  else begin
    (* [u] reaches the destination whenever [v] does (through this very
       arc), so [du] is finite and [before + dv >= du]. *)
    let du = dag.Spf.dist.(u) in
    if after < before then begin
      let c = after + dv in
      if c < du then Rebuild
      else if c = du then Patch (* arc becomes tight; no distance moves *)
      else Clean
    end
    else if after > before then begin
      if before + dv = du then
        (* The arc was on a shortest path.  If [u] keeps another tight
           arc, every node retains a shortest path avoiding this arc
           (induction on distance), so only [u]'s next-hop set shrinks;
           otherwise distances upstream of [u] may grow. *)
        if Array.length dag.Spf.next_arcs.(u) >= 2 then Patch else Rebuild
      else Clean
    end
    else Clean
  end

module Metrics = Dtr_util.Metrics

let m_updates =
  Metrics.counter ~help:"Delta-SPF update calls (one per probe per group)."
    "dtr_spf_delta_updates_total"

let m_rebuilds =
  Metrics.counter
    ~help:"Destinations fully rebuilt by delta-SPF updates."
    "dtr_spf_delta_rebuilds_total"

let m_patches =
  Metrics.counter
    ~help:"Destinations patched (membership-only) by delta-SPF updates."
    "dtr_spf_delta_patches_total"

let m_dirty =
  Metrics.histogram
    ~help:"Dirty destinations (rebuilt or patched) per delta-SPF update."
    "dtr_spf_delta_dirty"

(* The rebuild scratch arena is Dijkstra's own: the settled buffer and
   bucket queue are reused across destinations while each rebuilt dag
   owns a fresh distance array.  Rebuild distances therefore match
   Dijkstra.distances_to exactly (same kernel), and rebuild traffic
   lands on Dijkstra's SPF counters. *)
type workspace = Dijkstra.workspace

let workspace () = Dijkstra.workspace ()

let rebuild ws g ~weights ~dst =
  let dist = Dijkstra.distances_to_unchecked ~ws g ~weights ~dst in
  Spf.of_dist g ~weights ~dst ~dist

(* Membership-only patch: distances (and hence order_desc) are shared
   with the previous dag; only node [u]'s next-hop set is re-filtered
   under the new weights. *)
let patch_node g ~weights dag ~u =
  let next_arcs = Array.copy dag.Spf.next_arcs in
  next_arcs.(u) <- Spf.node_next_arcs g ~weights ~dist:dag.Spf.dist u;
  { dag with Spf.next_arcs }

let validate g ~weights ~prev ~changes =
  if Array.length weights <> Graph.arc_count g then
    invalid_arg "Spf_delta.update: weights length mismatch";
  if Array.length prev <> Graph.node_count g then
    invalid_arg "Spf_delta.update: prev dags length mismatch";
  List.iter
    (fun c ->
      if c.arc < 0 || c.arc >= Graph.arc_count g then
        invalid_arg "Spf_delta.update: arc id out of range";
      if c.before <= 0 || c.after <= 0 then
        invalid_arg "Spf_delta.update: weights must be positive";
      if weights.(c.arc) <> c.after then
        invalid_arg "Spf_delta.update: weights/changes disagree")
    changes

let update ?ws ?active g ~weights ~prev ~changes =
  validate g ~weights ~prev ~changes;
  (match active with
  | Some a when Array.length a <> Graph.node_count g ->
      invalid_arg "Spf_delta.update: active length mismatch"
  | _ -> ());
  let ws = match ws with Some w -> w | None -> workspace () in
  let changes = List.filter (fun c -> c.before <> c.after) changes in
  if changes = [] then (prev, [])
  else begin
    let endpoints =
      List.map
        (fun c -> (c, Graph.src g c.arc, Graph.dst g c.arc))
        changes
    in
    let mon = Metrics.enabled () in
    let rebuilt = ref 0 and patched = ref 0 in
    let n = Graph.node_count g in
    let dags = Array.copy prev in
    let dirty = ref [] in
    let is_active =
      match active with None -> fun _ -> true | Some a -> fun t -> a.(t)
    in
    for t = n - 1 downto 0 do
      if is_active t then begin
      let dag = prev.(t) in
      (* The Patch classification is only sound in isolation: two
         simultaneous changes can each look membership-only yet move
         distances together (e.g. both tight arcs of one node raised at
         once), so any destination flagged by more than one change is
         rebuilt. *)
      let patches = ref 0 and rebuilds = ref 0 and patch_u = ref (-1) in
      List.iter
        (fun (c, u, v) ->
          match classify dag ~u ~v ~before:c.before ~after:c.after with
          | Clean -> ()
          | Patch ->
              incr patches;
              patch_u := u
          | Rebuild -> incr rebuilds)
        endpoints;
      if !rebuilds > 0 || !patches > 1 then begin
        dags.(t) <- rebuild ws g ~weights ~dst:t;
        if mon then incr rebuilt;
        dirty := t :: !dirty
      end
      else if !patches = 1 then begin
        dags.(t) <- patch_node g ~weights dag ~u:!patch_u;
        if mon then incr patched;
        dirty := t :: !dirty
      end
      end
    done;
    if mon then begin
      Metrics.incr_counter m_updates;
      Metrics.add m_rebuilds !rebuilt;
      Metrics.add m_patches !patched;
      Metrics.observe m_dirty (float_of_int (!rebuilt + !patched))
    end;
    (dags, !dirty)
  end
