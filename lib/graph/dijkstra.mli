(** Single-destination / single-source shortest paths over integer arc
    weights (OSPF-style weights in [\[1, 30\]], but any positive ints
    work).

    Distances are computed by Dial's algorithm: bounded positive
    integer weights make tentative distances monotone integer
    priorities, so a bucket queue ({!Dtr_util.Bucket_queue}) settles
    the graph in O(m + maxdist) without a comparison heap.  A
    binary-heap variant is kept as an independent reference for
    property tests.

    Unreachable nodes get distance {!unreachable}. *)

val unreachable : int
(** Sentinel distance ([max_int]). *)

val suppressed : int
(** Sentinel weight ([max_int]) marking an arc as failed/absent: every
    kernel skips such arcs entirely, so a weight vector with
    suppressed entries computes distances on the surviving subgraph.
    Positive by construction, so it passes {!validate_weights} — the
    failure machinery relies on that to reuse unmodified validation
    paths. *)

type workspace
(** Preallocated scratch arena (settled set + bucket queue) reused
    across runs; the distance arrays themselves are always fresh, so
    results never alias the workspace. *)

val workspace : unit -> workspace
(** An empty arena; buffers are sized lazily on first use. *)

val distances_to : Graph.t -> weights:int array -> dst:int -> int array
(** [distances_to g ~weights ~dst] returns [d] with [d.(v)] the least
    total weight of a directed path from [v] to [dst] ([0] for [dst]
    itself).  Runs Dijkstra over incoming arcs.
    @raise Invalid_argument if [weights] has the wrong length, contains
    a non-positive weight, or [dst] is out of range. *)

val distances_to_unchecked :
  ?ws:workspace -> Graph.t -> weights:int array -> dst:int -> int array
(** {!distances_to} without the O(m) weight validation — for callers
    that validate once per weight vector ({!validate_weights}) and
    then sweep every destination ({!Spf.all_destinations}).  The O(1)
    node-range check is kept.  [?ws] reuses the given arena's scratch
    buffers instead of allocating per call.
    @raise Invalid_argument if [dst] is out of range. *)

val distances_to_heap : Graph.t -> weights:int array -> dst:int -> int array
(** Same result as {!distances_to} computed with a float-keyed binary
    heap; reference implementation for kernel-equivalence tests. *)

val distances_from : Graph.t -> weights:int array -> src:int -> int array
(** Distances from [src] to every node, over outgoing arcs. *)

val validate_weights : Graph.t -> weights:int array -> unit
(** @raise Invalid_argument if [weights] has the wrong length or
    contains a non-positive entry.  O(m); callers on the per-candidate
    hot path run it once per weight vector, not once per destination. *)

val bellman_ford_to : Graph.t -> weights:int array -> dst:int -> int array
(** Same result as {!distances_to} computed by Bellman–Ford in
    O(nm); kept as an independent oracle for property tests. *)
