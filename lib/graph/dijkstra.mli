(** Single-destination / single-source shortest paths over integer arc
    weights (OSPF-style weights in [\[1, 30\]], but any positive ints
    work).

    Unreachable nodes get distance {!unreachable}. *)

val unreachable : int
(** Sentinel distance ([max_int]). *)

val distances_to : Graph.t -> weights:int array -> dst:int -> int array
(** [distances_to g ~weights ~dst] returns [d] with [d.(v)] the least
    total weight of a directed path from [v] to [dst] ([0] for [dst]
    itself).  Runs Dijkstra over incoming arcs.
    @raise Invalid_argument if [weights] has the wrong length, contains
    a non-positive weight, or [dst] is out of range. *)

val distances_from : Graph.t -> weights:int array -> src:int -> int array
(** Distances from [src] to every node, over outgoing arcs. *)

val bellman_ford_to : Graph.t -> weights:int array -> dst:int -> int array
(** Same result as {!distances_to} computed by Bellman–Ford in
    O(nm); kept as an independent oracle for property tests. *)
