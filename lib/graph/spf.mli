(** Per-destination shortest-path DAGs with ECMP next-hop sets.

    This encodes the OSPF forwarding model: for destination [dst], a
    node [v] forwards over {e all} outgoing arcs [(v, u)] with
    [w(v,u) + d(u, dst) = d(v, dst)], splitting traffic evenly among
    them (Fortz–Thorup). *)

type dag = {
  dst : int;
  dist : int array;
      (** [dist.(v)]: weighted distance from [v] to [dst];
          {!Dijkstra.unreachable} when there is no path. *)
  next_arcs : int array array;
      (** [next_arcs.(v)]: arc ids on shortest paths from [v]; empty for
          [dst] itself and for unreachable nodes. *)
  order_desc : int array;
      (** Nodes that can reach [dst] (excluding [dst]), sorted by
          strictly decreasing [dist]; ties broken by node id.  Pushing
          flow in this order guarantees each node is finalized before
          its downstream neighbors. *)
}

val to_destination : Graph.t -> weights:int array -> dst:int -> dag
(** Build the DAG for one destination.
    @raise Invalid_argument as {!Dijkstra.distances_to}. *)

val of_dist : Graph.t -> weights:int array -> dst:int -> dist:int array -> dag
(** Build the DAG from an already-computed distance array (as from
    {!Dijkstra.distances_to}); the array is owned by the returned dag.
    Exposed so {!Spf_delta} can rebuild single destinations with its
    own (buffer-reusing) Dijkstra while sharing this exact
    construction, keeping incremental results structurally identical
    to {!to_destination}. *)

val node_next_arcs :
  Graph.t -> weights:int array -> dist:int array -> int -> int array
(** The ECMP next-hop arc set of one node, filtered from its out-arcs
    in arc-id order: all arcs [(v, u)] with [w(v,u) + dist(u) =
    dist(v)].  The per-node step of {!of_dist}, exposed for
    {!Spf_delta}'s membership-only patches. *)

val all_destinations :
  ?ws:Dijkstra.workspace -> Graph.t -> weights:int array -> dag array
(** One DAG per destination node, indexed by node id.  [?ws] reuses
    the given Dijkstra arena across the whole sweep (a fresh one is
    used otherwise). *)

val for_destinations :
  ?ws:Dijkstra.workspace ->
  Graph.t ->
  weights:int array ->
  active:bool array ->
  dag array
(** Like {!all_destinations} but builds real DAGs only for
    destinations with [active.(dst)]; the rest get a placeholder dag
    ({!is_placeholder}) carrying just the destination id.  Callers
    must never route demand toward an inactive destination.
    @raise Invalid_argument if [active] has the wrong length. *)

val is_placeholder : dag -> bool
(** True for the placeholder dags produced by {!for_destinations} on
    inactive destinations (their label arrays are empty). *)

val path_count : Graph.t -> dag -> src:int -> float
(** Number of distinct shortest paths from [src] to the destination
    (as a float; can be exponential in pathological graphs).  0. if
    unreachable, 1. for [src = dst]. *)

val first_path : Graph.t -> dag -> src:int -> int list
(** One concrete shortest path (list of arc ids), choosing the
    smallest-id next arc at every step.  Empty for [src = dst].
    @raise Invalid_argument if [src] cannot reach the destination. *)
