(* CSR-style flat-array graph core.

   Arcs live in four parallel rows indexed by arc id (src, dst,
   capacity, delay); adjacency is offset-indexed into two flat id
   arrays (out_ids / in_ids) instead of a per-node array of arrays.
   Within a node's segment arc ids appear in ascending order — the
   same enumeration order the previous record-based representation
   produced — so everything downstream that depends on iteration
   order (tight-arc lists, load summation) is bit-identical.

   A second per-source index (out_by_dst, sorted by (dst, id) within
   each segment) backs the binary-search find_arc without disturbing
   the canonical enumeration order.

   OCaml float arrays are already unboxed flat buffers, so cap/del
   are the flat per-arc float rows — no Bigarray needed. *)

type arc = { src : int; dst : int; capacity : float; delay : float }

type t = {
  n : int;
  m : int;
  arc_src : int array;  (* m: source node per arc id *)
  arc_dst : int array;  (* m: destination node per arc id *)
  cap : float array;  (* m: capacity per arc id; shared, never mutated *)
  del : float array;  (* m: delay per arc id; shared, never mutated *)
  out_off : int array;  (* n+1: segment offsets into out_ids *)
  out_ids : int array;  (* m: arc ids leaving each node, ascending id *)
  in_off : int array;  (* n+1: segment offsets into in_ids *)
  in_ids : int array;  (* m: arc ids entering each node, ascending id *)
  out_by_dst : int array;
      (* m: out_ids re-sorted by (dst, id) within each source segment,
         for binary-search find_arc *)
}

let validate_arc n a =
  if a.src < 0 || a.src >= n then invalid_arg "Graph.build: src out of range";
  if a.dst < 0 || a.dst >= n then invalid_arg "Graph.build: dst out of range";
  if a.src = a.dst then invalid_arg "Graph.build: self-loop";
  if a.capacity <= 0. then invalid_arg "Graph.build: non-positive capacity";
  if a.delay < 0. then invalid_arg "Graph.build: negative delay"

(* Counting sort by endpoint: a stable pass over ascending arc ids, so
   each node's segment lists its arcs in ascending id order. *)
let segment_index n m endpoint =
  let off = Array.make (n + 1) 0 in
  for id = 0 to m - 1 do
    let v = endpoint.(id) in
    off.(v + 1) <- off.(v + 1) + 1
  done;
  for v = 1 to n do
    off.(v) <- off.(v) + off.(v - 1)
  done;
  let ids = Array.make m 0 in
  let pos = Array.sub off 0 n in
  for id = 0 to m - 1 do
    let v = endpoint.(id) in
    ids.(pos.(v)) <- id;
    pos.(v) <- pos.(v) + 1
  done;
  (off, ids)

let build ~n arcs =
  if n <= 0 then invalid_arg "Graph.build: need at least one node";
  let arcs = Array.of_list arcs in
  Array.iter (validate_arc n) arcs;
  let m = Array.length arcs in
  let arc_src = Array.make m 0 and arc_dst = Array.make m 0 in
  let cap = Array.make m 0. and del = Array.make m 0. in
  Array.iteri
    (fun id a ->
      arc_src.(id) <- a.src;
      arc_dst.(id) <- a.dst;
      cap.(id) <- a.capacity;
      del.(id) <- a.delay)
    arcs;
  let out_off, out_ids = segment_index n m arc_src in
  let in_off, in_ids = segment_index n m arc_dst in
  let out_by_dst = Array.copy out_ids in
  for v = 0 to n - 1 do
    let lo = out_off.(v) in
    let len = out_off.(v + 1) - lo in
    if len > 1 then begin
      let seg = Array.sub out_by_dst lo len in
      Array.sort
        (fun a b ->
          let c = compare arc_dst.(a) arc_dst.(b) in
          if c <> 0 then c else compare a b)
        seg;
      Array.blit seg 0 out_by_dst lo len
    end
  done;
  { n; m; arc_src; arc_dst; cap; del; out_off; out_ids; in_off; in_ids;
    out_by_dst }

let node_count t = t.n

let arc_count t = t.m

let arc t id =
  if id < 0 || id >= t.m then invalid_arg "Graph.arc: bad id";
  { src = t.arc_src.(id);
    dst = t.arc_dst.(id);
    capacity = t.cap.(id);
    delay = t.del.(id) }

let arcs t =
  Array.init t.m (fun id ->
      { src = t.arc_src.(id);
        dst = t.arc_dst.(id);
        capacity = t.cap.(id);
        delay = t.del.(id) })

(* O(1) non-allocating per-arc accessors for hot paths. *)
let src t id = t.arc_src.(id)
let dst t id = t.arc_dst.(id)
let capacity t id = t.cap.(id)
let delay t id = t.del.(id)

(* Raw CSR views: shared rows, callers must not mutate. *)
let srcs t = t.arc_src
let dsts t = t.arc_dst
let out_offsets t = t.out_off
let out_arc_ids t = t.out_ids
let in_offsets t = t.in_off
let in_arc_ids t = t.in_ids

let out_arcs t v = Array.sub t.out_ids t.out_off.(v) (t.out_off.(v + 1) - t.out_off.(v))

let in_arcs t v = Array.sub t.in_ids t.in_off.(v) (t.in_off.(v + 1) - t.in_off.(v))

let out_degree t v = t.out_off.(v + 1) - t.out_off.(v)

let in_degree t v = t.in_off.(v + 1) - t.in_off.(v)

(* Leftmost entry with matching dst in the (dst, id)-sorted segment:
   ties sort by ascending id, so this returns the lowest-id arc
   src -> dst, matching the old linear scan's first-match answer. *)
let find_arc t ~src ~dst =
  let lo = ref t.out_off.(src) and hi = ref t.out_off.(src + 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.arc_dst.(t.out_by_dst.(mid)) < dst then lo := mid + 1 else hi := mid
  done;
  if !lo < t.out_off.(src + 1) && t.arc_dst.(t.out_by_dst.(!lo)) = dst then
    Some t.out_by_dst.(!lo)
  else None

(* Cached shared rows — no per-call allocation. *)
let capacities t = t.cap

let delays t = t.del

let reachable_count t ~off ~ids ~endpoint start =
  let seen = Array.make t.n false in
  let stack = ref [ start ] in
  seen.(start) <- true;
  let count = ref 0 in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        incr count;
        for k = off.(v) to off.(v + 1) - 1 do
          let u = endpoint.(ids.(k)) in
          if not seen.(u) then begin
            seen.(u) <- true;
            stack := u :: !stack
          end
        done
  done;
  !count

let is_strongly_connected t =
  if t.n = 0 then true
  else begin
    let fwd =
      reachable_count t ~off:t.out_off ~ids:t.out_ids ~endpoint:t.arc_dst 0
    in
    let bwd =
      reachable_count t ~off:t.in_off ~ids:t.in_ids ~endpoint:t.arc_src 0
    in
    fwd = t.n && bwd = t.n
  end

let reverse t =
  let flipped = ref [] in
  for id = t.m - 1 downto 0 do
    flipped :=
      { src = t.arc_dst.(id);
        dst = t.arc_src.(id);
        capacity = t.cap.(id);
        delay = t.del.(id) }
      :: !flipped
  done;
  build ~n:t.n !flipped

let add_symmetric ~capacity ~delay u v acc =
  { src = u; dst = v; capacity; delay }
  :: { src = v; dst = u; capacity; delay }
  :: acc

let undirected_link_pairs t =
  let paired = Array.make t.m false in
  let pairs = ref [] in
  for id = 0 to t.m - 1 do
    if not paired.(id) then begin
      let a_src = t.arc_src.(id) and a_dst = t.arc_dst.(id) in
      (* Find the lowest-id unpaired reverse twin. *)
      let twin = ref None in
      for k = t.out_off.(a_dst) to t.out_off.(a_dst + 1) - 1 do
        let rid = t.out_ids.(k) in
        if !twin = None && rid <> id && (not paired.(rid))
           && t.arc_dst.(rid) = a_src
        then twin := Some rid
      done;
      match !twin with
      | Some rid ->
          paired.(id) <- true;
          paired.(rid) <- true;
          let lo = min id rid and hi = max id rid in
          pairs := (lo, hi) :: !pairs
      | None ->
          paired.(id) <- true;
          pairs := (id, id) :: !pairs
    end
  done;
  let a = Array.of_list (List.rev !pairs) in
  Array.sort compare a;
  a

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph g {\n";
  for id = 0 to t.m - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  %d -> %d [label=\"a%d c=%.0f d=%.1f\"];\n"
         t.arc_src.(id) t.arc_dst.(id) id t.cap.(id) t.del.(id))
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf t = Format.fprintf ppf "graph(%d nodes, %d arcs)" t.n t.m
