type arc = { src : int; dst : int; capacity : float; delay : float }

type t = {
  n : int;
  arcs : arc array;
  out_adj : int array array;
  in_adj : int array array;
}

let validate_arc n a =
  if a.src < 0 || a.src >= n then invalid_arg "Graph.build: src out of range";
  if a.dst < 0 || a.dst >= n then invalid_arg "Graph.build: dst out of range";
  if a.src = a.dst then invalid_arg "Graph.build: self-loop";
  if a.capacity <= 0. then invalid_arg "Graph.build: non-positive capacity";
  if a.delay < 0. then invalid_arg "Graph.build: negative delay"

let build ~n arcs =
  if n <= 0 then invalid_arg "Graph.build: need at least one node";
  let arcs = Array.of_list arcs in
  Array.iter (validate_arc n) arcs;
  let out_deg = Array.make n 0 and in_deg = Array.make n 0 in
  Array.iter
    (fun a ->
      out_deg.(a.src) <- out_deg.(a.src) + 1;
      in_deg.(a.dst) <- in_deg.(a.dst) + 1)
    arcs;
  let out_adj = Array.init n (fun v -> Array.make out_deg.(v) 0) in
  let in_adj = Array.init n (fun v -> Array.make in_deg.(v) 0) in
  let out_pos = Array.make n 0 and in_pos = Array.make n 0 in
  Array.iteri
    (fun id a ->
      out_adj.(a.src).(out_pos.(a.src)) <- id;
      out_pos.(a.src) <- out_pos.(a.src) + 1;
      in_adj.(a.dst).(in_pos.(a.dst)) <- id;
      in_pos.(a.dst) <- in_pos.(a.dst) + 1)
    arcs;
  { n; arcs; out_adj; in_adj }

let node_count t = t.n

let arc_count t = Array.length t.arcs

let arc t id =
  if id < 0 || id >= Array.length t.arcs then invalid_arg "Graph.arc: bad id";
  t.arcs.(id)

let arcs t = Array.copy t.arcs

let out_arcs t v = t.out_adj.(v)

let in_arcs t v = t.in_adj.(v)

let out_degree t v = Array.length t.out_adj.(v)

let in_degree t v = Array.length t.in_adj.(v)

let find_arc t ~src ~dst =
  let result = ref None in
  Array.iter
    (fun id -> if !result = None && t.arcs.(id).dst = dst then result := Some id)
    t.out_adj.(src);
  !result

let capacities t = Array.map (fun a -> a.capacity) t.arcs

let delays t = Array.map (fun a -> a.delay) t.arcs

let reachable_from adj arcs_of n start =
  let seen = Array.make n false in
  let stack = ref [ start ] in
  seen.(start) <- true;
  let count = ref 0 in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        incr count;
        Array.iter
          (fun id ->
            let u = arcs_of id in
            if not seen.(u) then begin
              seen.(u) <- true;
              stack := u :: !stack
            end)
          adj.(v)
  done;
  !count

let is_strongly_connected t =
  if t.n = 0 then true
  else begin
    let fwd = reachable_from t.out_adj (fun id -> t.arcs.(id).dst) t.n 0 in
    let bwd = reachable_from t.in_adj (fun id -> t.arcs.(id).src) t.n 0 in
    fwd = t.n && bwd = t.n
  end

let reverse t =
  let flipped =
    Array.to_list (Array.map (fun a -> { a with src = a.dst; dst = a.src }) t.arcs)
  in
  build ~n:t.n flipped

let add_symmetric ~capacity ~delay u v acc =
  { src = u; dst = v; capacity; delay }
  :: { src = v; dst = u; capacity; delay }
  :: acc

let undirected_link_pairs t =
  let m = Array.length t.arcs in
  let paired = Array.make m false in
  let pairs = ref [] in
  for id = 0 to m - 1 do
    if not paired.(id) then begin
      let a = t.arcs.(id) in
      (* Find an unpaired reverse twin with matching attributes. *)
      let twin = ref None in
      Array.iter
        (fun rid ->
          if !twin = None && rid <> id && not paired.(rid) then begin
            let r = t.arcs.(rid) in
            if r.dst = a.src then twin := Some rid
          end)
        t.out_adj.(a.dst);
      match !twin with
      | Some rid ->
          paired.(id) <- true;
          paired.(rid) <- true;
          let lo = min id rid and hi = max id rid in
          pairs := (lo, hi) :: !pairs
      | None ->
          paired.(id) <- true;
          pairs := (id, id) :: !pairs
    end
  done;
  let a = Array.of_list (List.rev !pairs) in
  Array.sort compare a;
  a

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph g {\n";
  Array.iteri
    (fun id a ->
      Buffer.add_string buf
        (Printf.sprintf "  %d -> %d [label=\"a%d c=%.0f d=%.1f\"];\n" a.src a.dst
           id a.capacity a.delay))
    t.arcs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "graph(%d nodes, %d arcs)" t.n (Array.length t.arcs)
