type dag = {
  dst : int;
  dist : int array;
  next_arcs : int array array;
  order_desc : int array;
}

let node_next_arcs g ~weights ~dist v =
  (* Two passes over the CSR out-segment: count, then fill — avoids
     building an intermediate list on this very hot path.  The segment
     lists arc ids in ascending order, so [keep] does too. *)
  let off = Graph.out_offsets g and ids = Graph.out_arc_ids g in
  let dsts = Graph.dsts g in
  let lo = off.(v) and hi = off.(v + 1) in
  let count = ref 0 in
  for k = lo to hi - 1 do
    let id = ids.(k) in
    let d = dist.(dsts.(id)) in
    if
      d <> Dijkstra.unreachable
      && weights.(id) <> Dijkstra.suppressed
      && weights.(id) + d = dist.(v)
    then incr count
  done;
  let keep = Array.make !count 0 in
  let pos = ref 0 in
  for k = lo to hi - 1 do
    let id = ids.(k) in
    let d = dist.(dsts.(id)) in
    if
      d <> Dijkstra.unreachable
      && weights.(id) <> Dijkstra.suppressed
      && weights.(id) + d = dist.(v)
    then begin
      keep.(!pos) <- id;
      incr pos
    end
  done;
  keep

let of_dist g ~weights ~dst ~dist =
  let n = Graph.node_count g in
  let next_arcs =
    Array.init n (fun v ->
        if v = dst || dist.(v) = Dijkstra.unreachable then [||]
        else node_next_arcs g ~weights ~dist v)
  in
  let reachable_count = ref 0 in
  for v = 0 to n - 1 do
    if v <> dst && dist.(v) <> Dijkstra.unreachable then incr reachable_count
  done;
  let order_desc = Array.make !reachable_count 0 in
  let pos = ref 0 in
  for v = 0 to n - 1 do
    if v <> dst && dist.(v) <> Dijkstra.unreachable then begin
      order_desc.(!pos) <- v;
      incr pos
    end
  done;
  (* Sort by decreasing distance, ties by increasing node id. *)
  Array.sort
    (fun a b ->
      let c = compare dist.(b) dist.(a) in
      if c <> 0 then c else compare a b)
    order_desc;
  { dst; dist; next_arcs; order_desc }

let to_destination g ~weights ~dst =
  let dist = Dijkstra.distances_to g ~weights ~dst in
  of_dist g ~weights ~dst ~dist

(* Placeholder for destinations excluded from a subset build: carries
   only the destination id.  Nothing downstream may read its (empty)
   labels — Eval_ctx guarantees that by keeping every excluded
   destination's demand row empty. *)
let placeholder dst = { dst; dist = [||]; next_arcs = [||]; order_desc = [||] }

let is_placeholder dag = Array.length dag.dist = 0

let all_destinations ?ws g ~weights =
  (* Validate the weight vector once for the whole sweep; the
     per-destination O(m) re-scan used to dominate small evaluations.
     The workspace (fresh here when not supplied) reuses the settled
     set and bucket queue across all n runs. *)
  Dijkstra.validate_weights g ~weights;
  let ws = match ws with Some ws -> ws | None -> Dijkstra.workspace () in
  Array.init (Graph.node_count g) (fun dst ->
      let dist = Dijkstra.distances_to_unchecked ~ws g ~weights ~dst in
      of_dist g ~weights ~dst ~dist)

let for_destinations ?ws g ~weights ~active =
  Dijkstra.validate_weights g ~weights;
  let n = Graph.node_count g in
  if Array.length active <> n then
    invalid_arg "Spf.for_destinations: active length mismatch";
  let ws = match ws with Some ws -> ws | None -> Dijkstra.workspace () in
  Array.init n (fun dst ->
      if not active.(dst) then placeholder dst
      else begin
        let dist = Dijkstra.distances_to_unchecked ~ws g ~weights ~dst in
        of_dist g ~weights ~dst ~dist
      end)

let path_count g dag ~src =
  let n = Array.length dag.dist in
  if src < 0 || src >= n then invalid_arg "Spf.path_count: src out of range";
  if dag.dist.(src) = Dijkstra.unreachable then 0.
  else begin
    let counts = Array.make n (-1.) in
    counts.(dag.dst) <- 1.;
    (* order_desc is decreasing in distance; walk it reversed so every
       next-hop (strictly closer to dst) is counted first. *)
    for i = Array.length dag.order_desc - 1 downto 0 do
      let v = dag.order_desc.(i) in
      let acc = ref 0. in
      Array.iter
        (fun id -> acc := !acc +. counts.(Graph.dst g id))
        dag.next_arcs.(v);
      counts.(v) <- !acc
    done;
    counts.(src)
  end

let first_path g dag ~src =
  if dag.dist.(src) = Dijkstra.unreachable then
    invalid_arg "Spf.first_path: unreachable";
  let rec go v acc =
    if v = dag.dst then List.rev acc
    else begin
      let best = ref max_int in
      Array.iter (fun id -> if id < !best then best := id) dag.next_arcs.(v);
      assert (!best <> max_int);
      go (Graph.dst g !best) (!best :: acc)
    end
  in
  go src []
