let unreachable = max_int

(* Arcs carrying this weight are treated as absent.  The sentinel is
   positive (so weight validation passes) but must never enter the
   relaxation arithmetic: [dist + suppressed] wraps negative and would
   win every comparison, so each kernel skips suppressed arcs
   explicitly. *)
let suppressed = max_int

module Metrics = Dtr_util.Metrics

(* Shared with Spf_delta (registration is idempotent by name): every
   full per-destination SPF — initial builds and delta rebuilds alike
   — counts here, with its bucket-queue traffic. *)
let m_spf_runs =
  Metrics.counter ~help:"Full single-destination SPF (Dijkstra) runs."
    "dtr_spf_runs_total"

let m_bucket_adds =
  Metrics.counter ~help:"Bucket-queue insertions across all SPF runs."
    "dtr_spf_bucket_adds_total"

let m_bucket_pops =
  Metrics.counter ~help:"Bucket-queue pops across all SPF runs."
    "dtr_spf_bucket_pops_total"

let validate_weights g ~weights =
  if Array.length weights <> Graph.arc_count g then
    invalid_arg "Dijkstra: weights length mismatch";
  Array.iter
    (fun w -> if w <= 0 then invalid_arg "Dijkstra: weights must be positive")
    weights

let validate_node g ~node =
  if node < 0 || node >= Graph.node_count g then
    invalid_arg "Dijkstra: node out of range"

let validate g ~weights ~node =
  validate_weights g ~weights;
  validate_node g ~node

(* Preallocated arena for the per-run scratch state: the settled set
   and the bucket queue are reused across runs (sized lazily from the
   graph), so a sweep over all destinations allocates only the
   distance arrays its dags keep. *)
type workspace = {
  mutable settled : bool array;
  queue : Dtr_util.Bucket_queue.t;
}

let workspace () = { settled = [||]; queue = Dtr_util.Bucket_queue.create () }

let scratch ws n =
  if Array.length ws.settled < n then ws.settled <- Array.make n false
  else Array.fill ws.settled 0 n false;
  Dtr_util.Bucket_queue.clear ws.queue;
  (ws.settled, ws.queue)

(* Dial's algorithm over the flat CSR rows: weights are bounded
   positive integers, so tentative distances are monotone integer
   priorities and a bucket queue settles the whole graph in
   O(m + maxdist) — no comparisons, no boxed float keys, no per-node
   adjacency allocation.  [off]/[ids] are the CSR adjacency for the
   search direction and [endpoint.(id)] the neighbor reached through
   arc [id].  The distance array is fresh (callers keep it); settled
   set and queue come from the workspace when given. *)
let run_flat ?ws n ~off ~ids ~endpoint ~weights ~start =
  (* Hoisted metrics guard: when disabled the loop body pays one
     predicted branch per queue op; totals are added once per run. *)
  let mon = Metrics.enabled () in
  let adds = ref 1 and pops = ref 0 in
  let dist = Array.make n unreachable in
  let settled, q =
    match ws with
    | Some ws -> scratch ws n
    | None -> (Array.make n false, Dtr_util.Bucket_queue.create ())
  in
  dist.(start) <- 0;
  Dtr_util.Bucket_queue.add q ~prio:0 start;
  let continue = ref true in
  while !continue do
    match Dtr_util.Bucket_queue.pop_min q with
    | None -> continue := false
    | Some (_, v) ->
        if mon then incr pops;
        if not settled.(v) then begin
          settled.(v) <- true;
          let dv = dist.(v) in
          for k = off.(v) to off.(v + 1) - 1 do
            let id = ids.(k) in
            let u = endpoint.(id) in
            if (not settled.(u)) && weights.(id) <> suppressed then begin
              let cand = dv + weights.(id) in
              if cand < dist.(u) then begin
                dist.(u) <- cand;
                if mon then incr adds;
                Dtr_util.Bucket_queue.add q ~prio:cand u
              end
            end
          done
        end
  done;
  if mon then begin
    Metrics.incr_counter m_spf_runs;
    Metrics.add m_bucket_adds !adds;
    Metrics.add m_bucket_pops !pops
  end;
  dist

(* Binary-heap Dijkstra, kept as an independent reference
   implementation for the kernel-equivalence property tests. *)
let run_heap n ~adj ~other ~weights ~start =
  let dist = Array.make n unreachable in
  let settled = Array.make n false in
  let q = Dtr_util.Pqueue.create () in
  dist.(start) <- 0;
  Dtr_util.Pqueue.add q 0. start;
  let continue = ref true in
  while !continue do
    match Dtr_util.Pqueue.pop_min q with
    | None -> continue := false
    | Some (_, v) ->
        if not settled.(v) then begin
          settled.(v) <- true;
          Array.iter
            (fun id ->
              let u = other id in
              if (not settled.(u)) && weights.(id) <> suppressed then begin
                let cand = dist.(v) + weights.(id) in
                if cand < dist.(u) then begin
                  dist.(u) <- cand;
                  Dtr_util.Pqueue.add q (float_of_int cand) u
                end
              end)
            (adj v)
        end
  done;
  dist

let distances_to_unchecked ?ws g ~weights ~dst =
  validate_node g ~node:dst;
  run_flat ?ws (Graph.node_count g) ~off:(Graph.in_offsets g)
    ~ids:(Graph.in_arc_ids g) ~endpoint:(Graph.srcs g) ~weights ~start:dst

let distances_to g ~weights ~dst =
  validate_weights g ~weights;
  distances_to_unchecked g ~weights ~dst

let distances_to_heap g ~weights ~dst =
  validate g ~weights ~node:dst;
  run_heap (Graph.node_count g)
    ~adj:(Graph.in_arcs g)
    ~other:(fun id -> Graph.src g id)
    ~weights ~start:dst

let distances_from g ~weights ~src =
  validate g ~weights ~node:src;
  run_flat (Graph.node_count g) ~off:(Graph.out_offsets g)
    ~ids:(Graph.out_arc_ids g) ~endpoint:(Graph.dsts g) ~weights ~start:src

let bellman_ford_to g ~weights ~dst =
  validate g ~weights ~node:dst;
  let n = Graph.node_count g in
  let m = Graph.arc_count g in
  let srcs = Graph.srcs g and dsts = Graph.dsts g in
  let dist = Array.make n unreachable in
  dist.(dst) <- 0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    for id = 0 to m - 1 do
      if dist.(dsts.(id)) <> unreachable && weights.(id) <> suppressed then begin
        let cand = dist.(dsts.(id)) + weights.(id) in
        if cand < dist.(srcs.(id)) then begin
          dist.(srcs.(id)) <- cand;
          changed := true
        end
      end
    done
  done;
  dist
