(** Directed network graph.

    Nodes are integers [0 .. n-1]; arcs (directed links) carry a
    capacity (Mbps) and a propagation delay (ms) and are identified by
    dense integer ids [0 .. arc_count-1], so per-arc state (weights,
    loads, costs) lives in plain arrays.

    Physical bidirectional links are modelled as two arcs, one per
    direction, as in the paper's directed-graph formulation. *)

type arc = {
  src : int;
  dst : int;
  capacity : float;  (** Mbps; must be positive *)
  delay : float;  (** propagation delay, ms; must be non-negative *)
}

type t

val build : n:int -> arc list -> t
(** [build ~n arcs] freezes an immutable graph with [n] nodes.
    @raise Invalid_argument on an endpoint out of range, a self-loop,
    a non-positive capacity or a negative delay. *)

val node_count : t -> int

val arc_count : t -> int

val arc : t -> int -> arc
(** @raise Invalid_argument on an id out of range. *)

val arcs : t -> arc array
(** All arcs, indexed by id (fresh copy). *)

val out_arcs : t -> int -> int array
(** Arc ids leaving a node (shared; do not mutate). *)

val in_arcs : t -> int -> int array
(** Arc ids entering a node (shared; do not mutate). *)

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val find_arc : t -> src:int -> dst:int -> int option
(** First arc from [src] to [dst], if any. *)

val capacities : t -> float array
(** Per-arc capacities, indexed by arc id (fresh copy). *)

val delays : t -> float array
(** Per-arc propagation delays, indexed by arc id (fresh copy). *)

val is_strongly_connected : t -> bool
(** True when every node can reach every other node. *)

val reverse : t -> t
(** Graph with every arc flipped (same arc ids). *)

val add_symmetric :
  capacity:float -> delay:float -> int -> int -> arc list -> arc list
(** [add_symmetric ~capacity ~delay u v acc] prepends both directions
    of the physical link [u—v]. *)

val undirected_link_pairs : t -> (int * int) array
(** Pairs of arc ids [(a, b)] where [b] is the reverse arc of [a] and
    [a < b]; arcs with no reverse twin appear as [(a, a)].  Useful for
    treating symmetric topologies link-wise. *)

val to_dot : t -> string
(** Graphviz rendering (one edge per arc) for debugging. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: node and arc counts. *)
