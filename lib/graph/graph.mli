(** Directed network graph.

    Nodes are integers [0 .. n-1]; arcs (directed links) carry a
    capacity (Mbps) and a propagation delay (ms) and are identified by
    dense integer ids [0 .. arc_count-1], so per-arc state (weights,
    loads, costs) lives in plain arrays.

    Physical bidirectional links are modelled as two arcs, one per
    direction, as in the paper's directed-graph formulation. *)

type arc = {
  src : int;
  dst : int;
  capacity : float;  (** Mbps; must be positive *)
  delay : float;  (** propagation delay, ms; must be non-negative *)
}

type t
(** CSR-style flat-array core: parallel per-arc rows (src, dst,
    capacity, delay) plus offset-indexed out/in adjacency.  Within a
    node's adjacency segment, arc ids appear in ascending order. *)

val build : n:int -> arc list -> t
(** [build ~n arcs] freezes an immutable graph with [n] nodes.
    @raise Invalid_argument on an endpoint out of range, a self-loop,
    a non-positive capacity or a negative delay. *)

val node_count : t -> int

val arc_count : t -> int

val arc : t -> int -> arc
(** @raise Invalid_argument on an id out of range. *)

val arcs : t -> arc array
(** All arcs, indexed by id (fresh copy). *)

val src : t -> int -> int
(** [src t id] — source node of arc [id] (O(1), no allocation). *)

val dst : t -> int -> int
(** [dst t id] — destination node of arc [id] (O(1), no allocation). *)

val capacity : t -> int -> float
(** [capacity t id] — capacity of arc [id] (O(1), no allocation). *)

val delay : t -> int -> float
(** [delay t id] — delay of arc [id] (O(1), no allocation). *)

val srcs : t -> int array
(** Flat per-arc source row, indexed by arc id (shared; do not
    mutate). *)

val dsts : t -> int array
(** Flat per-arc destination row, indexed by arc id (shared; do not
    mutate). *)

val out_offsets : t -> int array
(** CSR offsets (length [n+1]) into {!out_arc_ids}: node [v]'s
    outgoing arc ids occupy positions [out_offsets.(v)] up to
    (excluding) [out_offsets.(v+1)] (shared; do not mutate). *)

val out_arc_ids : t -> int array
(** Flat outgoing-adjacency row (length [arc_count]); within each
    node's segment, ids ascend (shared; do not mutate). *)

val in_offsets : t -> int array
(** CSR offsets (length [n+1]) into {!in_arc_ids} (shared; do not
    mutate). *)

val in_arc_ids : t -> int array
(** Flat incoming-adjacency row (length [arc_count]); within each
    node's segment, ids ascend (shared; do not mutate). *)

val out_arcs : t -> int -> int array
(** Arc ids leaving a node, ascending id (fresh copy; hot paths
    should iterate {!out_offsets}/{!out_arc_ids} instead). *)

val in_arcs : t -> int -> int array
(** Arc ids entering a node, ascending id (fresh copy; hot paths
    should iterate {!in_offsets}/{!in_arc_ids} instead). *)

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val find_arc : t -> src:int -> dst:int -> int option
(** Lowest-id arc from [src] to [dst], if any.  Binary search over a
    per-source (dst, id)-sorted index: O(log out_degree). *)

val capacities : t -> float array
(** Per-arc capacities, indexed by arc id (cached, shared; do not
    mutate). *)

val delays : t -> float array
(** Per-arc propagation delays, indexed by arc id (cached, shared; do
    not mutate). *)

val is_strongly_connected : t -> bool
(** True when every node can reach every other node. *)

val reverse : t -> t
(** Graph with every arc flipped (same arc ids). *)

val add_symmetric :
  capacity:float -> delay:float -> int -> int -> arc list -> arc list
(** [add_symmetric ~capacity ~delay u v acc] prepends both directions
    of the physical link [u—v]. *)

val undirected_link_pairs : t -> (int * int) array
(** Pairs of arc ids [(a, b)] where [b] is the reverse arc of [a] and
    [a < b]; arcs with no reverse twin appear as [(a, a)].  Useful for
    treating symmetric topologies link-wise. *)

val to_dot : t -> string
(** Graphviz rendering (one edge per arc) for debugging. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: node and arc counts. *)
