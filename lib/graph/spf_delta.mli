(** Incremental shortest-path recomputation after arc-weight changes.

    Local search probes thousands of single-weight changes per
    iteration; rebuilding all [N] destination DAGs
    ({!Spf.all_destinations}) for each probe wastes almost all of that
    work, because a change to arc [(u, v)] can only affect destinations
    whose distance labels actually move.  {!update} screens every
    destination in O(1) against the previous labels and then either

    - keeps the previous dag (physically shared) when provably
      unaffected,
    - patches only node [u]'s ECMP next-hop set when distances are
      provably unchanged (a weight drop landing exactly on the current
      shortest distance, or a raise of one of several tight arcs), or
    - reruns a single-destination Dijkstra (with buffers reused from
      the {!workspace}) when distances may move.

    Results are structurally identical to a from-scratch
    {!Spf.all_destinations} under the new weights: distance labels are
    the unique shortest distances, and next-hop sets and traversal
    orders are built by the very same {!Spf.of_dist} /
    {!Spf.node_next_arcs} code. *)

type change = {
  arc : int;  (** arc id whose weight changed *)
  before : int;  (** weight the [prev] dags were built with *)
  after : int;  (** new weight; must equal [weights.(arc)] *)
}

type workspace = Dijkstra.workspace
(** Reusable scratch arena (settled set, bucket queue) for the
    per-destination Dijkstra reruns; shared with {!Dijkstra}'s own
    sweeps so one arena serves both full and delta evaluation. *)

val workspace : unit -> workspace

val update :
  ?ws:workspace ->
  ?active:bool array ->
  Graph.t ->
  weights:int array ->
  prev:Spf.dag array ->
  changes:change list ->
  Spf.dag array * int list
(** [update g ~weights ~prev ~changes] returns the destination DAGs
    under the new [weights] together with the list of {e dirty}
    destinations — those whose dag differs from [prev] — in ascending
    order.  Unaffected destinations share their dag physically with
    [prev]; [prev] itself is never mutated (with no effective change
    it is returned as-is).  [weights] must be the full new weight
    vector and [changes] the arcs on which it differs from the vector
    [prev] was computed with.  [?active] restricts the screen to the
    flagged destinations (for demand-only contexts whose [prev] holds
    placeholder dags elsewhere); inactive destinations always keep
    their previous dag and are never reported dirty.
    @raise Invalid_argument on length mismatches, non-positive
    weights, or a [change] whose [after] disagrees with [weights]. *)
