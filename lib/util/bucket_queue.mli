(** Dial-style bucket queue: a priority queue over small non-negative
    integer priorities, backed by an array of buckets and a monotone
    scan cursor.

    Intended for monotone consumers — Dijkstra over positive integer
    weights bounded by [max_weight] pushes priorities that never fall
    below the last popped one, so a full drain of [p] pushes costs
    O(p + max_prio) total instead of the O(p log p) of a comparison
    heap.  Non-monotone use is still correct (pushing below the cursor
    rewinds it) but loses the amortized bound.

    Entries sharing a priority pop in LIFO order; callers must not
    depend on the order within one priority (Dijkstra's distance
    labels never do — they are the unique shortest distances). *)

type t

val create : ?capacity:int -> unit -> t
(** An empty queue.  [capacity] (default 64) pre-sizes the bucket
    array; it grows geometrically on demand.
    @raise Invalid_argument if [capacity < 1]. *)

val add : t -> prio:int -> int -> unit
(** Insert a value with the given priority.
    @raise Invalid_argument on a negative priority. *)

val pop_min : t -> (int * int) option
(** Remove and return [(prio, value)] with the least priority, or
    [None] when empty. *)

val length : t -> int

val is_empty : t -> bool

val clear : t -> unit
(** Empty the queue and rewind the cursor, retaining the bucket array
    for reuse.  O(occupied bucket range). *)
