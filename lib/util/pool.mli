(** Fixed-size domain pool with deterministic, ordered result
    collection.

    A pool runs batches of independent indexed tasks on OCaml 5
    domains.  Results are always delivered as an array indexed by task
    id, so the output of {!map} is a pure function of the task bodies —
    never of worker scheduling.  Combined with the seeding discipline
    of {!Prng.split} (derive every per-task stream from the master
    generator {e before} dispatch, in task order), a parallel run is
    bit-identical to a sequential one.

    Determinism contract for task bodies: a task may only read shared
    data that no other concurrent task mutates, and must own every
    piece of mutable state it touches (its PRNG, its evaluation
    context, its result buffers).  Tasks must not depend on execution
    order.

    A pool created with [jobs = n] uses [n] worker domains in total:
    [n - 1] spawned domains plus the calling domain, which participates
    in draining the task queue during {!map}.  With [jobs = 1] no
    domain is ever spawned and {!map} degenerates to a plain ascending
    loop in the caller. *)

type t

val create : jobs:int -> t
(** Spawn a pool of [jobs] workers ([jobs - 1] domains).
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The worker count the pool was created with. *)

val map : t -> int -> f:(int -> 'a) -> 'a array
(** [map pool n ~f] computes [[| f 0; …; f (n-1) |]], distributing the
    calls over the pool's workers.  Every task is attempted even if
    some fail; if any raised, the exception of the {e lowest-indexed}
    failing task is re-raised (with its backtrace) after the batch
    drains, so failure reporting is deterministic too.

    Only one batch may be in flight per pool: [map] must not be called
    from inside a task of the same pool, nor concurrently from several
    domains.  @raise Invalid_argument on a busy or shut-down pool. *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  Idempotent.  Must not be
    called while a batch is in flight.  Subsequent {!map} calls
    raise. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down on
    exit, normal or exceptional. *)

val run : jobs:int -> int -> f:(int -> 'a) -> 'a array
(** One-shot [map] on a temporary pool: equivalent to
    [with_pool ~jobs (fun p -> map p n ~f)]. *)
