(** Zobrist-style incremental hashing of integer weight vectors.

    A vector hashes to the XOR of one splitmix64-finalized signature
    per [(cls, arc, value)] cell, so the hash of a one-arc change is
    two XORs away from the incumbent's ({!shift}) — no O(m) rehash per
    scan candidate.  [cls] tags which weight vector a cell belongs to,
    letting one key cover a multi-vector setting (hash each vector
    with its own [cls] and XOR the results).

    Signatures are 63-bit (native [int]); treat equal hashes as equal
    vectors only where a ~2^-63 false-positive rate per lookup is
    acceptable (see {!Vmemo}). *)

val cell : cls:int -> arc:int -> value:int -> int
(** Signature of one coordinate cell.
    @raise Invalid_argument on a negative coordinate. *)

val vector : cls:int -> int array -> int
(** XOR of the cells of a whole vector. *)

val shift : int -> cls:int -> arc:int -> before:int -> after:int -> int
(** [shift h ~cls ~arc ~before ~after] is the hash of the vector
    hashing to [h] with [arc]'s value changed from [before] to
    [after]. *)

val combine : int -> int -> int
(** [combine h x] folds an arbitrary word into a digest — an
    order-dependent mixing chain (not incremental, unlike {!shift}).
    Used for whole-structure fingerprints such as topology digests. *)
