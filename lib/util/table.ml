type t = {
  title : string;
  columns : string list;
  mutable rev_rows : string list list;
}

let create ~title ~columns = { title; columns; rev_rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rev_rows <- row :: t.rev_rows

let float_cell x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.4g" x

let add_float_row t ?(fmt = float_cell) row = add_row t (List.map fmt row)

let title t = t.title

let columns t = t.columns

let rows t = List.rev t.rev_rows

let to_string t =
  let all = t.columns :: rows t in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if String.length cell > widths.(i) then widths.(i) <- String.length cell)
        row)
    all;
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let render_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  render_row t.columns;
  let rule = Array.fold_left (fun acc w -> acc + w) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make rule '-');
  Buffer.add_char buf '\n';
  List.iter render_row (rows t);
  Buffer.contents buf

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else cell

let to_csv t =
  let buf = Buffer.create 256 in
  let render_row row =
    Buffer.add_string buf (String.concat "," (List.map csv_escape row));
    Buffer.add_char buf '\n'
  in
  render_row t.columns;
  List.iter render_row (rows t);
  Buffer.contents buf
