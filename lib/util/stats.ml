let mean a =
  let n = Array.length a in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let acc = ref 0. in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) a;
    !acc /. float_of_int n
  end

let stddev a = sqrt (variance a)

let min_max a =
  if Array.length a = 0 then invalid_arg "Stats.min_max: empty array";
  let lo = ref a.(0) and hi = ref a.(0) in
  Array.iter
    (fun x ->
      if x < !lo then lo := x;
      if x > !hi then hi := x)
    a;
  (!lo, !hi)

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg "Stats.percentile: NaN sample")
    a;
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let median a = percentile a 50.

type histogram = {
  lo : float;
  width : float;
  counts : int array;
  overflow : int;
}

let histogram ~lo ~hi ~bins samples =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if hi <= lo then invalid_arg "Stats.histogram: empty range";
  let width = (hi -. lo) /. float_of_int bins in
  let counts = Array.make bins 0 in
  let overflow = ref 0 in
  Array.iter
    (fun x ->
      if x >= hi then incr overflow
      else begin
        let i = int_of_float ((x -. lo) /. width) in
        let i = if i < 0 then 0 else if i >= bins then bins - 1 else i in
        counts.(i) <- counts.(i) + 1
      end)
    samples;
  { lo; width; counts; overflow = !overflow }

let histogram_bin_center h i = h.lo +. ((float_of_int i +. 0.5) *. h.width)

let gini a =
  Array.iter
    (fun x -> if x < 0. then invalid_arg "Stats.gini: negative value")
    a;
  let n = Array.length a in
  if n = 0 then 0.
  else begin
    let total = Array.fold_left ( +. ) 0. a in
    if total <= 0. then 0.
    else begin
      let sorted = Array.copy a in
      Array.sort Float.compare sorted;
      (* G = (2 * sum_i i*x_(i) / (n * total)) - (n + 1) / n, 1-based. *)
      let weighted = ref 0. in
      Array.iteri
        (fun i x -> weighted := !weighted +. (float_of_int (i + 1) *. x))
        sorted;
      (2. *. !weighted /. (float_of_int n *. total))
      -. ((float_of_int n +. 1.) /. float_of_int n)
    end
  end

let weighted_mean ~values ~weights =
  if Array.length values <> Array.length weights then
    invalid_arg "Stats.weighted_mean: length mismatch";
  let num = ref 0. and den = ref 0. in
  Array.iteri
    (fun i v ->
      num := !num +. (v *. weights.(i));
      den := !den +. weights.(i))
    values;
  if !den <= 0. then invalid_arg "Stats.weighted_mean: non-positive total weight";
  !num /. !den
