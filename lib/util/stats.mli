(** Descriptive statistics and histogram helpers for experiment output. *)

val mean : float array -> float
(** Arithmetic mean; 0. on an empty array. *)

val variance : float array -> float
(** Population variance; 0. on arrays with fewer than 2 elements. *)

val stddev : float array -> float
(** Population standard deviation. *)

val min_max : float array -> float * float
(** @raise Invalid_argument on an empty array. *)

val percentile : float array -> float -> float
(** [percentile a p] for [p] in [\[0, 100\]], linear interpolation
    between order statistics (the array is not modified).  Sorts with
    [Float.compare]; NaN samples are rejected rather than silently
    mis-sorted.
    @raise Invalid_argument on empty input, [p] out of range, or a NaN
    sample. *)

val median : float array -> float
(** 50th percentile. *)

type histogram = {
  lo : float;  (** left edge of the first bin *)
  width : float;  (** bin width *)
  counts : int array;  (** per-bin counts *)
  overflow : int;  (** samples above the last bin edge *)
}

val histogram : lo:float -> hi:float -> bins:int -> float array -> histogram
(** Fixed-width histogram of samples in [\[lo, hi)]; samples [>= hi] are
    counted in [overflow], samples [< lo] clamp into the first bin.
    @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)

val histogram_bin_center : histogram -> int -> float
(** Center of bin [i]. *)

val weighted_mean : values:float array -> weights:float array -> float
(** Weighted mean; @raise Invalid_argument on length mismatch or
    non-positive total weight. *)

val gini : float array -> float
(** Gini coefficient of a non-negative sample: 0 = perfectly even,
    → 1 = concentrated on one element.  Used to quantify how evenly a
    routing spreads load over links.  0. for empty or all-zero input.
    @raise Invalid_argument on a negative value. *)
