(** Random distributions used by the paper's models.

    Includes the heavy-tailed discrete rank distribution
    [P(k) ∝ k^(−τ)] that Algorithm 2 uses to pick which high/low cost
    links enter the candidate sets (Boettcher & Percus,
    "Nature's way of optimizing"). *)

type heavy_tail
(** Precomputed inverse-CDF sampler for [P(k) ∝ k^(−τ)] on
    [{1, …, n}]. *)

val heavy_tail : tau:float -> n:int -> heavy_tail
(** [heavy_tail ~tau ~n] precomputes the distribution.  [tau >= 0.];
    [tau = 0.] is uniform; large [tau] concentrates mass on rank 1.
    @raise Invalid_argument if [n <= 0] or [tau < 0.]. *)

val heavy_tail_sample : heavy_tail -> Prng.t -> int
(** Draw a rank in [{1, …, n}] (1-based, matching the paper). *)

val heavy_tail_mass : heavy_tail -> int -> float
(** [heavy_tail_mass d k] is [P(k)]; ranks are 1-based.
    @raise Invalid_argument if [k] is out of range. *)

val heavy_tail_size : heavy_tail -> int
(** The [n] the sampler was built for.  The tables are deterministic
    in [(tau, n)], so hot loops precompute them once and assert the
    size at the point of use. *)

val weighted_choice : Prng.t -> float array -> int
(** [weighted_choice g w] draws index [i] with probability proportional
    to [w.(i)].  All weights must be non-negative with positive sum.
    @raise Invalid_argument otherwise. *)

val exponential : Prng.t -> rate:float -> float
(** Exponential variate with the given rate (mean [1/rate]); used by the
    packet-level simulator for Poisson arrivals.
    @raise Invalid_argument if [rate <= 0.]. *)

val three_level : Prng.t -> (float * float * float) array -> float
(** [three_level g levels] picks a band [(p, lo, hi)] with probability
    [p] and returns a uniform draw in [\[lo, hi\]].  The probabilities
    must sum to 1 (within 1e-9).  Implements the paper's Eq. (7) style
    mixed demand model.
    @raise Invalid_argument on a malformed specification. *)
