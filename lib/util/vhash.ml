(* Zobrist-style incremental hashing of weight vectors.

   Each (class, arc, value) cell gets a pseudo-random signature —
   the splitmix64 finalizer applied to an injective packing of the
   coordinates — and a vector's hash is the XOR of its cells.
   Changing one arc's weight therefore shifts the hash by two XORs
   (out with the old cell, in with the new), which is what lets the
   scan engine key a memo table without rehashing O(m) weights per
   candidate.  Hashes live in OCaml's native int (the top bit of the
   64-bit mix is dropped), giving 63 usable bits. *)

(* splitmix64 finalizer: full avalanche, bijective on 64 bits. *)
let mix x =
  let z = Int64.of_int x in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31))

let cell ~cls ~arc ~value =
  if cls < 0 || arc < 0 || value < 0 then
    invalid_arg "Vhash.cell: negative coordinate";
  (* Injective for cls < 2^8, value < 2^8, arc < 2^40 — far beyond any
     instance this code base routes. *)
  mix ((cls lsl 48) lxor (arc lsl 8) lxor value)

let vector ~cls w =
  let h = ref 0 in
  for arc = 0 to Array.length w - 1 do
    h := !h lxor cell ~cls ~arc ~value:w.(arc)
  done;
  !h

let shift h ~cls ~arc ~before ~after =
  h lxor cell ~cls ~arc ~value:before lxor cell ~cls ~arc ~value:after

(* Order-dependent chaining for digests of heterogeneous data (e.g. a
   topology fingerprint): unlike the XOR-of-cells scheme this absorbs
   arbitrary 63-bit words, at the price of losing incrementality. *)
let combine h x = mix (h lxor mix x)
