type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length q = q.size

let is_empty q = q.size = 0

let before a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow q filler =
  let cap = Array.length q.data in
  if q.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap filler in
    Array.blit q.data 0 nd 0 q.size;
    q.data <- nd
  end

let add q key value =
  let e = { key; seq = q.next_seq; value } in
  grow q e;
  q.next_seq <- q.next_seq + 1;
  (* Sift up. *)
  let i = ref q.size in
  q.size <- q.size + 1;
  q.data.(!i) <- e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before e q.data.(parent) then begin
      q.data.(!i) <- q.data.(parent);
      q.data.(parent) <- e;
      i := parent
    end
    else continue := false
  done

let peek_min q = if q.size = 0 then None else Some (q.data.(0).key, q.data.(0).value)

let pop_min q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      let last = q.data.(q.size) in
      q.data.(0) <- last;
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.size && before q.data.(l) q.data.(!smallest) then smallest := l;
        if r < q.size && before q.data.(r) q.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = q.data.(!i) in
          q.data.(!i) <- q.data.(!smallest);
          q.data.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.key, top.value)
  end

let clear q =
  q.size <- 0;
  q.next_seq <- 0
