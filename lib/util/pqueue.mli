(** Minimum-priority queue over float keys (binary heap).

    Used by Dijkstra (with lazy deletion) and by the discrete-event
    simulator's calendar.  Insertion order breaks ties, making runs
    deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> float -> 'a -> unit
(** [add q key v] inserts [v] with priority [key]. *)

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the entry with the smallest key; ties are broken
    by insertion order (FIFO). *)

val peek_min : 'a t -> (float * 'a) option

val clear : 'a t -> unit
