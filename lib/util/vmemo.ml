(* Open-addressing memo table keyed by precomputed signatures
   (Vhash).  Fortz–Thorup style two-level hashing: the low bits of
   the signature pick the slot (primary hash), the full 63-bit
   signature is stored and compared on lookup (secondary hash) — no
   keys are kept, so a lookup can return a wrong entry only on a
   full 63-bit collision (~2^-63 per probe; callers accept this).

   Linear probing, power-of-two capacity, grown at load factor 1/2,
   entries are never removed. *)

type 'a t = {
  mutable signatures : int array;
  mutable occupied : bool array;
  mutable values : 'a option array;
  mutable mask : int;
  mutable size : int;
  mutable hits : int;
  mutable misses : int;
}

let m_hits =
  Metrics.counter ~help:"Memo lookups served from the table." "dtr_memo_hits_total"

let m_misses =
  Metrics.counter ~help:"Memo lookups that missed." "dtr_memo_misses_total"

let m_inserts =
  Metrics.counter ~help:"Entries added to memo tables." "dtr_memo_inserts_total"

let m_grows =
  Metrics.counter ~help:"Memo table growth events (load factor 1/2 reached)."
    "dtr_memo_grows_total"

let rec pow2_at_least c n = if n >= c then n else pow2_at_least c (2 * n)

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Vmemo.create: capacity must be positive";
  let cap = pow2_at_least capacity 16 in
  {
    signatures = Array.make cap 0;
    occupied = Array.make cap false;
    values = Array.make cap None;
    mask = cap - 1;
    size = 0;
    hits = 0;
    misses = 0;
  }

let size t = t.size

let hits t = t.hits

let misses t = t.misses

(* Slot holding [signature], or the free slot where it belongs. *)
let slot t signature =
  let i = ref (signature land t.mask) in
  while t.occupied.(!i) && t.signatures.(!i) <> signature do
    i := (!i + 1) land t.mask
  done;
  !i

let grow t =
  let old_sig = t.signatures and old_occ = t.occupied and old_val = t.values in
  let cap = 2 * Array.length old_sig in
  t.signatures <- Array.make cap 0;
  t.occupied <- Array.make cap false;
  t.values <- Array.make cap None;
  t.mask <- cap - 1;
  Array.iteri
    (fun i occ ->
      if occ then begin
        let j = slot t old_sig.(i) in
        t.signatures.(j) <- old_sig.(i);
        t.occupied.(j) <- true;
        t.values.(j) <- old_val.(i)
      end)
    old_occ

let find t signature =
  let i = slot t signature in
  if t.occupied.(i) then begin
    t.hits <- t.hits + 1;
    Metrics.incr_counter m_hits;
    t.values.(i)
  end
  else begin
    t.misses <- t.misses + 1;
    Metrics.incr_counter m_misses;
    None
  end

let add t signature v =
  let i = slot t signature in
  if not t.occupied.(i) then begin
    t.signatures.(i) <- signature;
    t.occupied.(i) <- true;
    t.size <- t.size + 1;
    Metrics.incr_counter m_inserts
  end;
  t.values.(i) <- Some v;
  if 2 * t.size > Array.length t.signatures then begin
    Metrics.incr_counter m_grows;
    grow t
  end
