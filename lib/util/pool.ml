(* Work distribution: tasks are claimed from a shared atomic counter
   (any worker may run any index), but every result is written to the
   slot of its own index, so the collected array — and the choice of
   which exception to re-raise — never depends on scheduling. *)

type batch = {
  run : int -> unit;  (* run task [i]; must never raise *)
  n : int;
  next : int Atomic.t;  (* next unclaimed task index *)
  mutable completed : int;  (* finished tasks; protected by the pool mutex *)
}

type t = {
  pool_jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;  (* new batch posted, or shutdown *)
  batch_done : Condition.t;  (* all tasks of the current batch finished *)
  mutable batch : batch option;
  mutable generation : int;  (* bumped once per batch *)
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.pool_jobs

let m_batches =
  Metrics.counter ~det:false
    ~help:"Batches submitted to domain pools (task counts scale with the worker count)."
    "dtr_pool_batches"

let m_tasks =
  Metrics.counter ~det:false ~help:"Tasks run by domain pools."
    "dtr_pool_tasks"

(* Claim-and-run loop shared by workers and the submitting domain.
   Task completion is recorded under the mutex so the submitter can
   sleep on [batch_done] instead of spinning.  With metrics on, the
   time each domain spends inside task bodies is accumulated under
   "pool/busy" (the waiting side is "pool/wait", measured in
   [worker]). *)
let drain t batch =
  let busy = Metrics.enabled () in
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add batch.next 1 in
    if i >= batch.n then continue := false
    else begin
      if busy then begin
        let t0 = Unix.gettimeofday () in
        batch.run i;
        Metrics.record "pool/busy" (Unix.gettimeofday () -. t0);
        Metrics.incr_counter m_tasks
      end
      else batch.run i;
      Mutex.lock t.mutex;
      batch.completed <- batch.completed + 1;
      if batch.completed = batch.n then Condition.broadcast t.batch_done;
      Mutex.unlock t.mutex
    end
  done

let rec worker t last_generation =
  let t0 = if Metrics.enabled () then Unix.gettimeofday () else 0. in
  Mutex.lock t.mutex;
  while (not t.stopped) && t.generation = last_generation do
    Condition.wait t.work_ready t.mutex
  done;
  if t0 > 0. then Metrics.record "pool/wait" (Unix.gettimeofday () -. t0);
  if t.stopped then Mutex.unlock t.mutex
  else begin
    let generation = t.generation in
    let batch = t.batch in
    Mutex.unlock t.mutex;
    (* [batch] can be [None] if the batch drained and was cleared
       before this worker woke up; the generation still advances. *)
    (match batch with Some b -> drain t b | None -> ());
    worker t generation
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      pool_jobs = jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      batch = None;
      generation = 0;
      stopped = false;
      domains = [];
    }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t 0));
  t

let map t n ~f =
  if n < 0 then invalid_arg "Pool.map: negative task count";
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let run i =
      match f i with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
    in
    let batch = { run; n; next = Atomic.make 0; completed = 0 } in
    Mutex.lock t.mutex;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.map: pool is shut down"
    end;
    (match t.batch with
    | Some _ ->
        Mutex.unlock t.mutex;
        invalid_arg "Pool.map: a batch is already in flight"
    | None -> ());
    t.batch <- Some batch;
    Metrics.incr_counter m_batches;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    (* The caller is one of the [jobs] workers. *)
    drain t batch;
    Mutex.lock t.mutex;
    while batch.completed < batch.n do
      Condition.wait t.batch_done t.mutex
    done;
    t.batch <- None;
    Mutex.unlock t.mutex;
    let first_error = ref None in
    for i = n - 1 downto 0 do
      match errors.(i) with Some _ as e -> first_error := e | None -> ()
    done;
    match !first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map
          (function Some v -> v | None -> assert false (* every task ran *))
          results
  end

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopped then Mutex.unlock t.mutex
  else begin
    t.stopped <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run ~jobs n ~f = with_pool ~jobs (fun t -> map t n ~f)
