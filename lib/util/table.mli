(** Plain-text table rendering for experiment reports.

    Every experiment runner produces a [t]; the bench harness and the
    CLI print them with {!to_string} and dump them with {!to_csv}. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a title row and named columns. *)

val add_row : t -> string list -> unit
(** Append a row.  @raise Invalid_argument if the arity differs from
    the number of columns. *)

val add_float_row : t -> ?fmt:(float -> string) -> float list -> unit
(** Convenience: format every cell with [fmt] (default ["%.4g"]). *)

val title : t -> string

val columns : t -> string list

val rows : t -> string list list
(** Rows in insertion order. *)

val to_string : t -> string
(** Aligned ASCII rendering with a header rule. *)

val to_csv : t -> string
(** RFC-4180-ish CSV (cells containing commas or quotes are quoted). *)

val float_cell : float -> string
(** The default float formatting used across experiment output. *)
