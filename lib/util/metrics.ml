(* Process-global metrics registry.

   One registry for the whole process, off by default: every recording
   entry point loads one atomic flag and branches away, the same
   near-zero-when-disabled discipline as Dtr_core.Trace's pointer
   compare.  Counters and histograms are sharded per domain (a single
   domain-local table indexed by metric id, single-writer, no
   contention — the discipline of Problem's eval counters); reads sum
   the shards, which is exact once the domains that produced them have
   quiesced (pool batches are barriers, so every CLI/bench read site
   qualifies).

   Determinism contract: a metric registered with [~det:true] promises
   that its *total* is a pure function of the work performed, never of
   how that work was scheduled — so deterministic counter/histogram
   totals are bit-identical for every --jobs × --scan-jobs
   combination.  Timers (spans), gauges and ~det:false counters are
   exempt; the renderers group them below a
   "# nondeterministic below this line" marker so a diff can stop
   there. *)

let on = Atomic.make false

let enabled () = Atomic.get on

let set_enabled b = Atomic.set on b

let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* ------------------------------------------------------------------ *)
(* Histogram bucketing.

   Log (base-2) buckets derived from Float.frexp: a finite positive
   value v = m * 2^e (m in [0.5, 1)) lands in the bucket of exponent
   e, i.e. the half-open range [2^(e-1), 2^e).  Exponents are clamped
   to [min_exp, max_exp], so subnormals (e down to -1073) fall into
   the lowest bucket and max_float (e = 1024) into the highest; an
   exact zero has its own bucket below all exponent buckets.  NaN and
   negative values are rejected into a separate count — never
   silently dropped, never raising from a hot path. *)

let min_exp = -64

let max_exp = 64

let n_buckets = max_exp - min_exp + 2 (* zero bucket + one per exponent *)

(* Bucket slot of a value, or -1 for rejected (NaN / negative). *)
let bucket_of v =
  if Float.is_nan v || v < 0. then -1
  else if v = 0. then 0
  else if v = Float.infinity then n_buckets - 1
  else begin
    let _, e = Float.frexp v in
    let e = if e < min_exp then min_exp else if e > max_exp then max_exp else e in
    e - min_exp + 1
  end

(* Upper bound (exclusive) of a bucket slot, for rendering. *)
let bucket_upper slot =
  if slot = 0 then 0. else Float.ldexp 1. (slot - 1 + min_exp)

(* ------------------------------------------------------------------ *)
(* Metric records.  Shards live in a per-domain table indexed by the
   metric's registration id; a shard is also linked into the metric's
   own list (under the registry mutex) so reads and resets can reach
   every domain's contribution, including domains that have since
   terminated. *)

type counter = {
  c_id : int;
  c_name : string;
  c_help : string;
  c_det : bool;
  mutable c_shards : int ref list;
}

type histogram = {
  h_id : int;
  h_name : string;
  h_help : string;
  h_det : bool;
  mutable h_shards : h_shard list;
}

and h_shard = { hs_counts : int array; mutable hs_rejected : int }

type gauge = { g_name : string; g_help : string; mutable g_value : float }

type timer = { mutable tm_calls : int; mutable tm_seconds : float }

(* Registration order is the render order. *)
let counters : counter list ref = ref []

let histograms : histogram list ref = ref []

let gauges : gauge list ref = ref []

let timers : (string, timer) Hashtbl.t = Hashtbl.create 16

let next_id = ref 0

(* Per-domain shard tables: metric id -> shard.  One DLS key for
   counters, one for histograms; slots are created on a domain's first
   touch of each metric and registered into the metric under the
   mutex. *)
type 'a shard_table = { mutable slots : 'a option array }

let counter_shards : int ref shard_table Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { slots = [||] })

let histogram_shards : h_shard shard_table Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { slots = [||] })

let ensure_slot tbl id =
  if id >= Array.length tbl.slots then begin
    let slots = Array.make (max 16 (2 * (id + 1))) None in
    Array.blit tbl.slots 0 slots 0 (Array.length tbl.slots);
    tbl.slots <- slots
  end

(* ------------------------------------------------------------------ *)
(* Registration.  Idempotent by name: modules at different layers may
   share a metric (Dijkstra and Spf_delta both count SPF runs) without
   exporting handles across library boundaries.  A re-registration
   with a different determinism class is a programming error. *)

let find_counter name = List.find_opt (fun c -> c.c_name = name) !counters

let find_histogram name = List.find_opt (fun h -> h.h_name = name) !histograms

let counter ?(det = true) ~help name =
  locked (fun () ->
      match find_counter name with
      | Some c ->
          if c.c_det <> det then
            invalid_arg ("Metrics.counter: determinism mismatch for " ^ name);
          c
      | None ->
          if find_histogram name <> None then
            invalid_arg ("Metrics.counter: " ^ name ^ " is a histogram");
          let c =
            { c_id = !next_id; c_name = name; c_help = help; c_det = det;
              c_shards = [] }
          in
          incr next_id;
          counters := c :: !counters;
          c)

let histogram ?(det = true) ~help name =
  locked (fun () ->
      match find_histogram name with
      | Some h ->
          if h.h_det <> det then
            invalid_arg ("Metrics.histogram: determinism mismatch for " ^ name);
          h
      | None ->
          if find_counter name <> None then
            invalid_arg ("Metrics.histogram: " ^ name ^ " is a counter");
          let h =
            { h_id = !next_id; h_name = name; h_help = help; h_det = det;
              h_shards = [] }
          in
          incr next_id;
          histograms := h :: !histograms;
          h)

let gauge ~help name =
  locked (fun () ->
      match List.find_opt (fun g -> g.g_name = name) !gauges with
      | Some g -> g
      | None ->
          let g = { g_name = name; g_help = help; g_value = 0. } in
          gauges := g :: !gauges;
          g)

(* ------------------------------------------------------------------ *)
(* Recording *)

let counter_shard c =
  let tbl = Domain.DLS.get counter_shards in
  ensure_slot tbl c.c_id;
  match tbl.slots.(c.c_id) with
  | Some r -> r
  | None ->
      let r = ref 0 in
      tbl.slots.(c.c_id) <- Some r;
      locked (fun () -> c.c_shards <- r :: c.c_shards);
      r

let add c n = if Atomic.get on then (let r = counter_shard c in r := !r + n)

let incr_counter c = add c 1

let histogram_shard h =
  let tbl = Domain.DLS.get histogram_shards in
  ensure_slot tbl h.h_id;
  match tbl.slots.(h.h_id) with
  | Some s -> s
  | None ->
      let s = { hs_counts = Array.make n_buckets 0; hs_rejected = 0 } in
      tbl.slots.(h.h_id) <- Some s;
      locked (fun () -> h.h_shards <- s :: h.h_shards);
      s

let observe h v =
  if Atomic.get on then begin
    let s = histogram_shard h in
    match bucket_of v with
    | -1 -> s.hs_rejected <- s.hs_rejected + 1
    | slot -> s.hs_counts.(slot) <- s.hs_counts.(slot) + 1
  end

let set_gauge g v = if Atomic.get on then g.g_value <- v

(* Timers: low-frequency (one update per span end / pool task), so a
   mutex-protected table is fine. *)
let record path seconds =
  if Atomic.get on then
    locked (fun () ->
        let tm =
          match Hashtbl.find_opt timers path with
          | Some tm -> tm
          | None ->
              let tm = { tm_calls = 0; tm_seconds = 0. } in
              Hashtbl.add timers path tm;
              tm
        in
        tm.tm_calls <- tm.tm_calls + 1;
        tm.tm_seconds <- tm.tm_seconds +. seconds)

(* Hierarchical phase profiler: nested spans accumulate under the
   "/"-joined path of the enclosing spans of the same domain. *)
let span_stack : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let span name f =
  if not (Atomic.get on) then f ()
  else begin
    let stack = Domain.DLS.get span_stack in
    stack := name :: !stack;
    let path = String.concat "/" (List.rev !stack) in
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        stack := List.tl !stack;
        record path (Unix.gettimeofday () -. t0))
      f
  end

(* ------------------------------------------------------------------ *)
(* Reading.  Exact once writer domains have quiesced; see the module
   comment. *)

let counter_value c =
  locked (fun () -> List.fold_left (fun acc r -> acc + !r) 0 c.c_shards)

let histogram_counts h =
  locked (fun () ->
      let counts = Array.make n_buckets 0 in
      let rejected = ref 0 in
      List.iter
        (fun s ->
          rejected := !rejected + s.hs_rejected;
          for i = 0 to n_buckets - 1 do
            counts.(i) <- counts.(i) + s.hs_counts.(i)
          done)
        h.h_shards;
      (counts, !rejected))

let gauge_value g = g.g_value

let reset () =
  locked (fun () ->
      List.iter (fun c -> List.iter (fun r -> r := 0) c.c_shards) !counters;
      List.iter
        (fun h ->
          List.iter
            (fun s ->
              Array.fill s.hs_counts 0 n_buckets 0;
              s.hs_rejected <- 0)
            h.h_shards)
        !histograms;
      List.iter (fun g -> g.g_value <- 0.) !gauges;
      Hashtbl.reset timers)

(* ------------------------------------------------------------------ *)
(* Rendering *)

let nondet_marker = "# nondeterministic below this line"

let registered_counters () = List.rev !counters

let registered_histograms () = List.rev !histograms

let partition_det l det_of = List.partition det_of l

let fmt_float v =
  (* Shortest exact decimal round-trip, as elsewhere in the repo. *)
  Printf.sprintf "%.17g" v

(* Peak resident set size in kB, read from /proc/self/status (VmHWM:
   the high-water mark, which is exactly the "peak RSS vs. node count"
   a capacity plan needs).  -1 where procfs is unavailable. *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception _ -> -1
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> -1
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              try Scanf.sscanf (String.sub line 6 (String.length line - 6))
                    " %d" (fun x -> x)
              with _ -> -1
            else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let gc_gauges () =
  let s = Gc.quick_stat () in
  [
    ("dtr_gc_minor_words", s.Gc.minor_words);
    ("dtr_gc_promoted_words", s.Gc.promoted_words);
    ("dtr_gc_major_words", s.Gc.major_words);
    ("dtr_gc_minor_collections", float_of_int s.Gc.minor_collections);
    ("dtr_gc_major_collections", float_of_int s.Gc.major_collections);
    ("dtr_gc_compactions", float_of_int s.Gc.compactions);
    ("dtr_gc_heap_words", float_of_int s.Gc.heap_words);
    ("dtr_gc_top_heap_words", float_of_int s.Gc.top_heap_words);
    ("dtr_peak_rss_kb", float_of_int (peak_rss_kb ()));
  ]

let prom_histogram b h =
  let counts, rejected = histogram_counts h in
  Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" h.h_name h.h_help);
  Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" h.h_name);
  let cum = ref 0 in
  Array.iteri
    (fun slot n ->
      if n > 0 then begin
        cum := !cum + n;
        let le = if slot = 0 then "0" else fmt_float (bucket_upper slot) in
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" h.h_name le !cum)
      end)
    counts;
  Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" h.h_name !cum);
  Buffer.add_string b (Printf.sprintf "%s_count %d\n" h.h_name !cum);
  Buffer.add_string b
    (Printf.sprintf "%s_rejected %d\n" h.h_name rejected)

let to_prometheus () =
  let b = Buffer.create 4096 in
  let det_c, nondet_c = partition_det (registered_counters ()) (fun c -> c.c_det) in
  let det_h, nondet_h =
    partition_det (registered_histograms ()) (fun h -> h.h_det)
  in
  let prom_counter c =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" c.c_name c.c_help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" c.c_name);
    Buffer.add_string b (Printf.sprintf "%s %d\n" c.c_name (counter_value c))
  in
  List.iter prom_counter det_c;
  List.iter (prom_histogram b) det_h;
  Buffer.add_string b (nondet_marker ^ "\n");
  List.iter prom_counter nondet_c;
  List.iter (prom_histogram b) nondet_h;
  List.iter
    (fun g ->
      Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" g.g_name g.g_help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" g.g_name);
      Buffer.add_string b (Printf.sprintf "%s %s\n" g.g_name (fmt_float g.g_value)))
    (List.rev !gauges);
  List.iter
    (fun (name, v) ->
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" name);
      Buffer.add_string b (Printf.sprintf "%s %s\n" name (fmt_float v)))
    (gc_gauges ());
  let spans =
    locked (fun () -> Hashtbl.fold (fun k tm acc -> (k, tm) :: acc) timers [])
  in
  let spans = List.sort compare spans in
  if spans <> [] then begin
    Buffer.add_string b "# TYPE dtr_span_seconds gauge\n";
    List.iter
      (fun (path, tm) ->
        Buffer.add_string b
          (Printf.sprintf "dtr_span_seconds{path=%S} %s\n" path
             (fmt_float tm.tm_seconds));
        Buffer.add_string b
          (Printf.sprintf "dtr_span_calls{path=%S} %d\n" path tm.tm_calls))
      spans
  end;
  Buffer.contents b

let json_histogram h =
  let counts, rejected = histogram_counts h in
  let buckets = Buffer.create 64 in
  let first = ref true in
  Array.iteri
    (fun slot n ->
      if n > 0 then begin
        if not !first then Buffer.add_string buckets ", ";
        first := false;
        let le = if slot = 0 then "0" else fmt_float (bucket_upper slot) in
        Buffer.add_string buckets (Printf.sprintf "[%s, %d]" le n)
      end)
    counts;
  let total = Array.fold_left ( + ) 0 counts in
  Printf.sprintf
    "{ \"buckets\": [%s], \"count\": %d, \"rejected\": %d }"
    (Buffer.contents buckets) total rejected

let to_json () =
  let b = Buffer.create 4096 in
  let det_c, nondet_c = partition_det (registered_counters ()) (fun c -> c.c_det) in
  let det_h, nondet_h =
    partition_det (registered_histograms ()) (fun h -> h.h_det)
  in
  let obj b entries =
    Buffer.add_string b "{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ",";
        Buffer.add_string b (Printf.sprintf "\n    %S: %s" k v))
      entries;
    Buffer.add_string b (if entries = [] then "}" else "\n  }")
  in
  Buffer.add_string b "{\n  \"counters\": ";
  obj b (List.map (fun c -> (c.c_name, string_of_int (counter_value c))) det_c);
  Buffer.add_string b ",\n  \"histograms\": ";
  obj b (List.map (fun h -> (h.h_name, json_histogram h)) det_h);
  Buffer.add_string b ",\n  \"nondeterministic\": ";
  obj b
    (List.map (fun c -> (c.c_name, string_of_int (counter_value c))) nondet_c
    @ List.map (fun h -> (h.h_name, json_histogram h)) nondet_h
    @ List.map
        (fun (g : gauge) -> (g.g_name, fmt_float g.g_value))
        (List.rev !gauges)
    @ List.map (fun (n, v) -> (n, fmt_float v)) (gc_gauges ()));
  Buffer.add_string b ",\n  \"spans\": ";
  let spans =
    locked (fun () -> Hashtbl.fold (fun k tm acc -> (k, tm) :: acc) timers [])
  in
  obj b
    (List.map
       (fun (path, tm) ->
         ( path,
           Printf.sprintf "{ \"calls\": %d, \"seconds\": %s }" tm.tm_calls
             (fmt_float tm.tm_seconds) ))
       (List.sort compare spans));
  Buffer.add_string b "\n}\n";
  Buffer.contents b

(* The section a determinism diff compares: deterministic counters and
   histograms only, rendered in registration order. *)
let deterministic_snapshot () =
  let stop = ref false in
  let acc = ref [] in
  List.iter
    (fun line ->
      if line = nondet_marker then stop := true
      else if not !stop then acc := line :: !acc)
    (String.split_on_char '\n' (to_prometheus ()));
  String.concat "\n" (List.rev !acc)
