type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: David Stafford's mix13 variant, the reference
   construction from Steele, Lea & Flood (OOPSLA 2014). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = s }

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Mask to 62 bits so the conversion to int is non-negative, then use
     modulo; the bias is negligible for the bounds used here (< 2^31). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod n

let int_incl t lo hi =
  if hi < lo then invalid_arg "Prng.int_incl: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random bits mapped to [0, 1), scaled. *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. x

let uniform t a b =
  if b < a then invalid_arg "Prng.uniform: empty range";
  a +. float t (b -. a)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Partial Fisher–Yates over an index array. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))
