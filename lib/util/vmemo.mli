(** Memo table for evaluated weight settings, keyed by {!Vhash}
    signatures.

    Fortz–Thorup two-level hashing: the signature's low bits address
    the slot (primary hash) and the full 63-bit signature is stored
    and compared (secondary hash); the hashed vector itself is never
    kept.  A lookup can therefore return another setting's value only
    on a full 63-bit collision (~2^-63 per probe) — the standard,
    accepted risk of hash-based evaluation memoization.

    Entries are never evicted; {!find} counts a hit or a miss on
    every call, which the search reports surface. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** An empty table.  [capacity] (default 1024) is rounded up to a
    power of two; the table grows at load factor 1/2.
    @raise Invalid_argument if [capacity < 1]. *)

val find : 'a t -> int -> 'a option
(** Look a signature up, counting a hit or a miss. *)

val add : 'a t -> int -> 'a -> unit
(** Bind a signature (overwriting any previous binding). *)

val size : 'a t -> int
(** Number of distinct signatures stored. *)

val hits : 'a t -> int

val misses : 'a t -> int
