(** Minimal JSON reader for the repo's own artifacts (trace JSONL
    lines, metrics snapshots, manifests).  No external dependency; no
    writer — every artifact writer in the repo already emits its own
    fixed-format JSON.

    Numbers are parsed with [float_of_string], so the ["%.17g"] floats
    the writers emit round-trip bit-exactly.  Strings support the
    standard JSON escapes, including [u]-escapes (decoded to UTF-8,
    surrogate pairs handled). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed; trailing
    garbage is an error).  Errors carry a character offset. *)

val member : string -> t -> t option
(** Field lookup on an [Obj] (first match); [None] otherwise. *)

val to_float : t -> float option
(** [Num]s only. *)

val to_int : t -> int option
(** [Num]s representing integers ([Float.is_integer]). *)

val to_string : t -> string option

val to_bool : t -> bool option

val to_list : t -> t list option
