(** Process-global metrics: named counters, gauges, log-bucketed
    histograms and a hierarchical phase profiler, exposed as
    Prometheus text and JSON.

    {b Cost.}  The registry is off by default.  Every recording entry
    point ({!add}, {!observe}, {!record}, {!span}, {!set_gauge}) loads
    one atomic flag and branches away when disabled — the same
    near-zero discipline as [Dtr_core.Trace]'s pointer compare, so
    instrumented hot loops (SPF, probes, scans) pay one predictable
    branch per event with metrics off.

    {b Domain safety.}  Counters and histograms are sharded per
    domain: a recording touches only its own domain's slot
    (single-writer, no contention), and reads sum the shards — exact
    once the producing domains have quiesced, which every read site in
    the repo guarantees (pool batches are barriers).

    {b Determinism.}  A metric registered with [det:true] (the
    default) promises its total is a pure function of the work done,
    never of scheduling, extending the repo's contract to metrics:
    deterministic counter and histogram totals are bit-identical for
    every [--jobs × --scan-jobs] combination.  Timers, gauges and
    [det:false] counters (e.g. clone/sync counts, which scale with the
    worker count) are exempt and rendered below the
    ["# nondeterministic below this line"] marker. *)

val enabled : unit -> bool
(** One atomic load. *)

val set_enabled : bool -> unit
(** Turn recording on or off process-wide.  Enable before spawning
    worker domains (or accept that a racing worker may drop a few
    early events). *)

val reset : unit -> unit
(** Zero every counter, histogram, gauge and span accumulator (metric
    registrations are kept).  Call between runs to scope totals to one
    run.  Not safe concurrently with recording domains. *)

(** {1 Counters} *)

type counter

val counter : ?det:bool -> help:string -> string -> counter
(** Register (or look up) a named counter.  Registration is
    idempotent by name so modules at different layers can share a
    metric without exporting handles.
    @raise Invalid_argument if the name is already registered with a
    different determinism class or as a histogram. *)

val add : counter -> int -> unit

val incr_counter : counter -> unit

val counter_value : counter -> int
(** Sum over all domain shards. *)

(** {1 Histograms} *)

type histogram

val histogram : ?det:bool -> help:string -> string -> histogram
(** Log-bucketed (base-2) histogram: a finite positive value
    [v = m * 2^e] lands in the bucket of exponent [e] — the range
    [[2^(e-1), 2^e)] — with exponents clamped to [[-64, 64]], so
    subnormals fall into the lowest bucket and [max_float] into the
    highest; exact zero has its own bucket.  NaN and negative values
    are counted as rejected, never bucketed and never raising. *)

val observe : histogram -> float -> unit

val histogram_counts : histogram -> int array * int
(** [(per-bucket counts, rejected count)] summed over shards.  Slot 0
    is the zero bucket; slot [i > 0] covers values below
    {!bucket_upper}[ i]. *)

val bucket_of : float -> int
(** Bucket slot of a value, [-1] for rejected (NaN / negative). *)

val bucket_upper : int -> float
(** Exclusive upper bound of a bucket slot ([0.] for the zero
    bucket). *)

(** {1 Gauges} *)

type gauge

val gauge : help:string -> string -> gauge
(** Point-in-time value, set by whoever knows it last; always in the
    nondeterministic section. *)

val set_gauge : gauge -> float -> unit

val gauge_value : gauge -> float

val peak_rss_kb : unit -> int
(** Peak resident set size of this process in kB ([VmHWM] from
    [/proc/self/status]); [-1] where procfs is unavailable.  Rendered
    (with the GC gauges) in the nondeterministic section of
    {!to_prometheus}/{!to_json}, and embedded in bench manifests. *)

(** {1 Phase profiler} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f] and accumulates the elapsed seconds under
    the "/"-joined path of the enclosing spans of the current domain
    (e.g. ["optimize/dtr/scan"]) — a hierarchical wall-time
    attribution of where a run spent its life.  When disabled, calls
    [f] directly (one atomic load, no allocation). *)

val record : string -> float -> unit
(** Accumulate [seconds] under an explicit path without entering the
    span stack — for callers that measure time themselves (the pool's
    busy/wait accounting). *)

(** {1 Exposition} *)

val to_prometheus : unit -> string
(** Prometheus text: deterministic counters and histograms first (in
    registration order), then the marker line, then [det:false]
    metrics, gauges, GC statistics captured at render time, and span
    timings. *)

val to_json : unit -> string
(** Same content as {!to_prometheus} as one JSON object with
    ["counters"], ["histograms"], ["nondeterministic"] and ["spans"]
    sections. *)

val deterministic_snapshot : unit -> string
(** The prefix of {!to_prometheus} above the marker line — the exact
    byte string the determinism contract promises is invariant across
    [--jobs × --scan-jobs]. *)

val nondet_marker : string
(** The marker line separating the deterministic section. *)
