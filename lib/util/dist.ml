type heavy_tail = { cdf : float array; pmf : float array }

let heavy_tail ~tau ~n =
  if n <= 0 then invalid_arg "Dist.heavy_tail: n must be positive";
  if tau < 0. then invalid_arg "Dist.heavy_tail: tau must be non-negative";
  let raw = Array.init n (fun i -> Float.pow (float_of_int (i + 1)) (-.tau)) in
  let total = Array.fold_left ( +. ) 0. raw in
  let pmf = Array.map (fun x -> x /. total) raw in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    pmf;
  cdf.(n - 1) <- 1.0;
  { cdf; pmf }

let heavy_tail_sample d g =
  let u = Prng.float g 1.0 in
  (* Binary search for the first index with cdf >= u. *)
  let n = Array.length d.cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if d.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo + 1

let heavy_tail_mass d k =
  if k < 1 || k > Array.length d.pmf then
    invalid_arg "Dist.heavy_tail_mass: rank out of range";
  d.pmf.(k - 1)

let heavy_tail_size d = Array.length d.pmf

let weighted_choice g w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Dist.weighted_choice: empty weights";
  let total = ref 0. in
  Array.iter
    (fun x ->
      if x < 0. || Float.is_nan x then
        invalid_arg "Dist.weighted_choice: negative or NaN weight";
      total := !total +. x)
    w;
  if !total <= 0. then invalid_arg "Dist.weighted_choice: zero total weight";
  let u = Prng.float g !total in
  let acc = ref 0. and chosen = ref (n - 1) and stop = ref false in
  for i = 0 to n - 1 do
    if not !stop then begin
      acc := !acc +. w.(i);
      if u < !acc then begin
        chosen := i;
        stop := true
      end
    end
  done;
  !chosen

let exponential g ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  let u = 1.0 -. Prng.float g 1.0 in
  -.Float.log u /. rate

let three_level g levels =
  if Array.length levels = 0 then invalid_arg "Dist.three_level: empty spec";
  let psum = Array.fold_left (fun acc (p, _, _) -> acc +. p) 0. levels in
  if Float.abs (psum -. 1.0) > 1e-9 then
    invalid_arg "Dist.three_level: probabilities must sum to 1";
  let u = Prng.float g 1.0 in
  let acc = ref 0. in
  let result = ref None in
  Array.iter
    (fun (p, lo, hi) ->
      if !result = None then begin
        acc := !acc +. p;
        if u < !acc then result := Some (Prng.uniform g lo hi)
      end)
    levels;
  match !result with
  | Some v -> v
  | None ->
      (* Rounding left us past the last band; use it. *)
      let _, lo, hi = levels.(Array.length levels - 1) in
      Prng.uniform g lo hi
