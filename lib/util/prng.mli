(** Deterministic pseudo-random number generation.

    A small, fast, splittable PRNG (splitmix64) used everywhere in the
    library so that every topology, traffic matrix and heuristic run is
    reproducible from a single integer seed.  The global [Random] module
    is deliberately never used. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of the remainder of [g]'s stream.  Used to
    give sub-systems (topology, traffic, search) their own streams. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)].  @raise Invalid_argument if
    [n <= 0]. *)

val int_incl : t -> int -> int -> int
(** [int_incl g lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)]. *)

val uniform : t -> float -> float -> float
(** [uniform g a b] is uniform in [\[a, b)].
    @raise Invalid_argument if [b < a]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement g k n] draws [k] distinct integers from
    [\[0, n)], in random order.  @raise Invalid_argument if [k > n] or
    [k < 0]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)
