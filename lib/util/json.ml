type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of int * string

let fail pos msg = raise (Fail (pos, msg))

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_ws s pos =
  let n = String.length s in
  let p = ref pos in
  while !p < n && is_ws s.[!p] do
    incr p
  done;
  !p

let expect s pos c =
  if pos >= String.length s || s.[pos] <> c then
    fail pos (Printf.sprintf "expected '%c'" c);
  pos + 1

let parse_literal s pos word v =
  let len = String.length word in
  if
    pos + len <= String.length s
    && String.equal (String.sub s pos len) word
  then (v, pos + len)
  else fail pos (Printf.sprintf "expected %s" word)

let utf8_of_code b code =
  (* Encode one Unicode scalar value as UTF-8. *)
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let hex4 s pos =
  if pos + 4 > String.length s then fail pos "truncated \\u escape";
  let v = ref 0 in
  for i = pos to pos + 3 do
    let d =
      match s.[i] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | _ -> fail i "bad hex digit in \\u escape"
    in
    v := (!v lsl 4) lor d
  done;
  (!v, pos + 4)

let parse_string s pos =
  let n = String.length s in
  let pos = expect s pos '"' in
  let b = Buffer.create 16 in
  let p = ref pos in
  let result = ref None in
  while !result = None do
    if !p >= n then fail !p "unterminated string";
    match s.[!p] with
    | '"' -> result := Some (Buffer.contents b, !p + 1)
    | '\\' ->
        if !p + 1 >= n then fail !p "truncated escape";
        (match s.[!p + 1] with
        | '"' -> Buffer.add_char b '"'; p := !p + 2
        | '\\' -> Buffer.add_char b '\\'; p := !p + 2
        | '/' -> Buffer.add_char b '/'; p := !p + 2
        | 'b' -> Buffer.add_char b '\b'; p := !p + 2
        | 'f' -> Buffer.add_char b '\012'; p := !p + 2
        | 'n' -> Buffer.add_char b '\n'; p := !p + 2
        | 'r' -> Buffer.add_char b '\r'; p := !p + 2
        | 't' -> Buffer.add_char b '\t'; p := !p + 2
        | 'u' ->
            let code, p' = hex4 s (!p + 2) in
            (* Surrogate pair? *)
            if code >= 0xD800 && code <= 0xDBFF && p' + 6 <= n
               && s.[p'] = '\\' && s.[p' + 1] = 'u'
            then begin
              let lo, p'' = hex4 s (p' + 2) in
              if lo >= 0xDC00 && lo <= 0xDFFF then begin
                let c =
                  0x10000 + (((code - 0xD800) lsl 10) lor (lo - 0xDC00))
                in
                utf8_of_code b c;
                p := p''
              end
              else begin
                utf8_of_code b code;
                p := p'
              end
            end
            else begin
              utf8_of_code b code;
              p := p'
            end
        | c -> fail !p (Printf.sprintf "bad escape '\\%c'" c))
    | c when Char.code c < 0x20 -> fail !p "control character in string"
    | c ->
        Buffer.add_char b c;
        incr p
  done;
  match !result with Some r -> r | None -> assert false

let parse_number s pos =
  let n = String.length s in
  let p = ref pos in
  if !p < n && s.[!p] = '-' then incr p;
  while
    !p < n
    && (match s.[!p] with
       | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
       | _ -> false)
  do
    incr p
  done;
  if !p = pos then fail pos "expected number";
  let lit = String.sub s pos (!p - pos) in
  match float_of_string_opt lit with
  | Some v -> (v, !p)
  | None -> fail pos (Printf.sprintf "bad number %S" lit)

let rec parse_value s pos =
  let pos = skip_ws s pos in
  if pos >= String.length s then fail pos "unexpected end of input";
  match s.[pos] with
  | 'n' ->
      let v, p = parse_literal s pos "null" Null in
      (v, p)
  | 't' -> parse_literal s pos "true" (Bool true)
  | 'f' -> parse_literal s pos "false" (Bool false)
  | '"' ->
      let str, p = parse_string s pos in
      (Str str, p)
  | '[' -> parse_array s (pos + 1)
  | '{' -> parse_obj s (pos + 1)
  | _ ->
      let v, p = parse_number s pos in
      (Num v, p)

and parse_array s pos =
  let pos = skip_ws s pos in
  if pos < String.length s && s.[pos] = ']' then (Arr [], pos + 1)
  else
    let rec loop acc pos =
      let v, pos = parse_value s pos in
      let pos = skip_ws s pos in
      if pos >= String.length s then fail pos "unterminated array"
      else if s.[pos] = ',' then loop (v :: acc) (pos + 1)
      else if s.[pos] = ']' then (Arr (List.rev (v :: acc)), pos + 1)
      else fail pos "expected ',' or ']'"
    in
    loop [] pos

and parse_obj s pos =
  let pos = skip_ws s pos in
  if pos < String.length s && s.[pos] = '}' then (Obj [], pos + 1)
  else
    let rec loop acc pos =
      let pos = skip_ws s pos in
      let key, pos = parse_string s pos in
      let pos = skip_ws s pos in
      let pos = expect s pos ':' in
      let v, pos = parse_value s pos in
      let pos = skip_ws s pos in
      if pos >= String.length s then fail pos "unterminated object"
      else if s.[pos] = ',' then loop ((key, v) :: acc) (pos + 1)
      else if s.[pos] = '}' then (Obj (List.rev ((key, v) :: acc)), pos + 1)
      else fail pos "expected ',' or '}'"
    in
    loop [] pos

let parse s =
  match
    let v, pos = parse_value s 0 in
    let pos = skip_ws s pos in
    if pos <> String.length s then fail pos "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (pos, msg) ->
      Error (Printf.sprintf "JSON error at offset %d: %s" pos msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function Arr l -> Some l | _ -> None
