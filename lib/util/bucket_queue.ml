(* Dial-style bucket queue over small non-negative integer priorities.
   A monotone consumer (Dijkstra with bounded positive arc weights)
   pays O(1) per push and amortized O(1) per pop plus one final sweep
   of max_prio empty buckets, so a full drain is O(pushes + max_prio).

   The cursor never moves backward while pops stay monotone; pushing
   below the cursor (allowed, but not the intended use) rewinds it. *)

type t = {
  mutable buckets : int list array;
  mutable cursor : int;  (* no occupied bucket strictly below this index *)
  mutable limit : int;  (* no occupied bucket at or above this index *)
  mutable size : int;
}

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Bucket_queue.create: capacity must be positive";
  { buckets = Array.make capacity []; cursor = 0; limit = 0; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t prio =
  let cap = Array.length t.buckets in
  if prio >= cap then begin
    let buckets = Array.make (max (prio + 1) (2 * cap)) [] in
    Array.blit t.buckets 0 buckets 0 cap;
    t.buckets <- buckets
  end

let add t ~prio v =
  if prio < 0 then invalid_arg "Bucket_queue.add: negative priority";
  grow t prio;
  t.buckets.(prio) <- v :: t.buckets.(prio);
  if prio < t.cursor then t.cursor <- prio;
  if prio >= t.limit then t.limit <- prio + 1;
  t.size <- t.size + 1

let rec pop_min t =
  if t.size = 0 then None
  else
    match t.buckets.(t.cursor) with
    | v :: rest ->
        t.buckets.(t.cursor) <- rest;
        t.size <- t.size - 1;
        Some (t.cursor, v)
    | [] ->
        t.cursor <- t.cursor + 1;
        pop_min t

let clear t =
  if t.size > 0 then
    for i = t.cursor to t.limit - 1 do
      t.buckets.(i) <- []
    done;
  t.cursor <- 0;
  t.limit <- 0;
  t.size <- 0
