type t = { primary : float; secondary : float }

let make ~primary ~secondary = { primary; secondary }

let primaries_equal rel_tol x y =
  match rel_tol with
  | None -> x = y
  | Some tol ->
      let scale = Float.max 1. (Float.max (Float.abs x) (Float.abs y)) in
      Float.abs (x -. y) <= tol *. scale

let compare ?rel_tol a b =
  if primaries_equal rel_tol a.primary b.primary then
    Stdlib.compare a.secondary b.secondary
  else Stdlib.compare a.primary b.primary

let lt ?rel_tol a b = Stdlib.( < ) (compare ?rel_tol a b) 0

let ( < ) a b = lt a b

let min ?rel_tol a b = if lt ?rel_tol b a then b else a

let add a b =
  { primary = a.primary +. b.primary; secondary = a.secondary +. b.secondary }

let scale f t = { primary = f *. t.primary; secondary = f *. t.secondary }

let zero = { primary = 0.; secondary = 0. }

let infinity = { primary = Float.infinity; secondary = Float.infinity }

let to_joint ~alpha t =
  if Stdlib.( < ) alpha 0. then invalid_arg "Lexico.to_joint: negative alpha";
  (alpha *. t.primary) +. t.secondary

let pp ppf t = Format.fprintf ppf "(%.6g, %.6g)" t.primary t.secondary
