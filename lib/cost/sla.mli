(** SLA (delay-bound) cost model for high-priority traffic
    (paper Eqs. 3–4).

    Units: capacities and loads in Mbps, delays in milliseconds, packet
    size in bits. *)

type params = {
  theta : float;  (** SLA delay bound, ms; paper default 25 ms *)
  a : float;  (** fixed penalty per violated SLA; paper: 100 *)
  b : float;  (** penalty per ms of excess delay; paper: 1 *)
  packet_size_bits : float;
      (** mean packet size [s] in Eq. (3); default 8000 (1000 bytes) *)
}

val default : params
(** [theta = 25.], [a = 100.], [b = 1.], [packet_size_bits = 8000.]. *)

val link_delay :
  params -> capacity:float -> phi_h:float -> prop_delay:float -> float
(** Mean delay of a link seen by high-priority traffic, Eq. (3):
    [s/C ⋅ (Φ_{H,l}/C + 1) + p_l], with [s/C] converted to ms.
    @raise Invalid_argument on a non-positive capacity. *)

val penalty : params -> delay:float -> float
(** Eq. (4): [0] when [delay <= theta], else [a + b⋅(delay − theta)]. *)

val violated : params -> delay:float -> bool
(** True when the delay exceeds the bound. *)

val with_relaxed_bound : params -> epsilon:float -> params
(** Loosen the bound to [(1 + epsilon) ⋅ theta] (§3.3.2).
    @raise Invalid_argument on [epsilon < 0.]. *)
