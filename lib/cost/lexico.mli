(** Lexicographically ordered cost tuples [⟨primary, secondary⟩]
    (paper Eqs. 2 and 5): the high-priority cost dominates; the
    low-priority cost breaks ties.

    Strict lexicographic comparison on floats is brittle (two runs of
    the same search can differ in the 15th digit), so comparisons
    treat primaries within a relative tolerance as equal.  The
    tolerance is configurable per comparison and defaults to exact. *)

type t = { primary : float; secondary : float }

val make : primary:float -> secondary:float -> t

val compare : ?rel_tol:float -> t -> t -> int
(** Standard comparison contract.  With [rel_tol] (e.g. [1e-9]),
    primaries closer than [rel_tol ⋅ max(|x|, |y|, 1)] are considered
    equal and the secondaries decide. *)

val ( < ) : t -> t -> bool
(** Exact strict lexicographic less-than. *)

val lt : ?rel_tol:float -> t -> t -> bool

val min : ?rel_tol:float -> t -> t -> t
(** The smaller of the two (first on ties). *)

val add : t -> t -> t
(** Componentwise sum (used to accumulate per-link lexicographic link
    costs). *)

val scale : float -> t -> t
(** Componentwise scaling (used to weight the failure penalty in the
    robust objective). *)

val zero : t

val infinity : t
(** [⟨∞, ∞⟩], the identity for {!min}. *)

val to_joint : alpha:float -> t -> float
(** The scalarized cost [α ⋅ primary + secondary] of §3.3.1.
    @raise Invalid_argument on [alpha < 0.]. *)

val pp : Format.formatter -> t -> unit
