(* Slopes and intercept factors of Eq. (1): piece i is
   slope.(i) * load - intercept.(i) * capacity. *)
let slopes = [| 1.; 3.; 10.; 70.; 500.; 5000. |]

let intercepts = [| 0.; 2. /. 3.; 16. /. 3.; 178. /. 3.; 1468. /. 3.; 16318. /. 3. |]

let breakpoints = [| 1. /. 3.; 2. /. 3.; 0.9; 1.0; 1.1 |]

let phi ~load ~capacity =
  if load < 0. then invalid_arg "Fortz.phi: negative load";
  if capacity < 0. then invalid_arg "Fortz.phi: negative capacity";
  let best = ref 0. in
  for i = 0 to Array.length slopes - 1 do
    let v = (slopes.(i) *. load) -. (intercepts.(i) *. capacity) in
    if v > !best then best := v
  done;
  !best

let segment ~utilization =
  let i = ref 0 in
  while !i < Array.length breakpoints && utilization > breakpoints.(!i) do
    incr i
  done;
  !i

let phi_uncapacitated u = phi ~load:u ~capacity:1.
