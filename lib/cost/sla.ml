type params = {
  theta : float;
  a : float;
  b : float;
  packet_size_bits : float;
}

let default = { theta = 25.; a = 100.; b = 1.; packet_size_bits = 8000. }

let link_delay p ~capacity ~phi_h ~prop_delay =
  if capacity <= 0. then invalid_arg "Sla.link_delay: non-positive capacity";
  (* capacity is in Mbps: s/C seconds = s / (C * 1e6); in ms multiply
     by 1e3, i.e. divide by (C * 1e3). *)
  let transmission_ms = p.packet_size_bits /. (capacity *. 1000.) in
  (transmission_ms *. ((phi_h /. capacity) +. 1.)) +. prop_delay

let penalty p ~delay =
  if delay <= p.theta then 0. else p.a +. (p.b *. (delay -. p.theta))

let violated p ~delay = delay > p.theta

let with_relaxed_bound p ~epsilon =
  if epsilon < 0. then invalid_arg "Sla.with_relaxed_bound: negative epsilon";
  { p with theta = p.theta *. (1. +. epsilon) }
