(** The Fortz–Thorup piecewise-linear link cost (paper Eq. 1), a convex
    approximation of M/M/1 queueing cost.

    [phi ~load ~capacity] is implemented as the maximum of the six
    affine pieces (valid because the function is convex and the pieces
    are its supporting lines), which is branch-free, exact at segment
    boundaries, and degrades gracefully to [5000 ⋅ load] when the
    capacity is zero — exactly what the residual-capacity model needs
    when high-priority traffic saturates a link. *)

val phi : load:float -> capacity:float -> float
(** Cost of carrying [load] on a link of capacity [capacity].  Both
    must be non-negative; [phi ~load:0. ~capacity] = 0.
    @raise Invalid_argument on a negative load or capacity. *)

val breakpoints : float array
(** Utilization breakpoints [ [|1/3; 2/3; 9/10; 1; 11/10|] ]. *)

val slopes : float array
(** Per-segment slopes [ [|1; 3; 10; 70; 500; 5000|] ]. *)

val segment : utilization:float -> int
(** Index (0–5) of the segment a utilization falls in. *)

val phi_uncapacitated : float -> float
(** [phi_uncapacitated u] is the cost per unit of capacity at
    utilization [u], i.e. [phi ~load:(u*c) ~capacity:c / c]; useful for
    plotting and tests. *)
