module Graph = Dtr_graph.Graph

let sym = Graph.add_symmetric

let triangle ?(capacity = 1.0) ?(delay = 1.0) () =
  let arcs =
    [] |> sym ~capacity ~delay 0 1 |> sym ~capacity ~delay 1 2
    |> sym ~capacity ~delay 0 2
  in
  Graph.build ~n:3 arcs

let ring ?(capacity = 1.0) ?(delay = 1.0) n =
  if n < 3 then invalid_arg "Classic.ring: need at least 3 nodes";
  let arcs = ref [] in
  for v = 0 to n - 1 do
    arcs := sym ~capacity ~delay v ((v + 1) mod n) !arcs
  done;
  Graph.build ~n !arcs

let full_mesh ?(capacity = 1.0) ?(delay = 1.0) n =
  if n < 2 then invalid_arg "Classic.full_mesh: need at least 2 nodes";
  let arcs = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      arcs := sym ~capacity ~delay u v !arcs
    done
  done;
  Graph.build ~n !arcs

let grid ?(capacity = 1.0) ?(delay = 1.0) ~rows ~cols () =
  if rows < 1 || cols < 1 || rows * cols < 2 then
    invalid_arg "Classic.grid: need at least 2 nodes";
  let id r c = (r * cols) + c in
  let arcs = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then arcs := sym ~capacity ~delay (id r c) (id r (c + 1)) !arcs;
      if r + 1 < rows then arcs := sym ~capacity ~delay (id r c) (id (r + 1) c) !arcs
    done
  done;
  Graph.build ~n:(rows * cols) !arcs

let line ?(capacity = 1.0) ?(delay = 1.0) n =
  if n < 2 then invalid_arg "Classic.line: need at least 2 nodes";
  let arcs = ref [] in
  for v = 0 to n - 2 do
    arcs := sym ~capacity ~delay v (v + 1) !arcs
  done;
  Graph.build ~n !arcs

let dumbbell ?(capacity = 1.0) ?bottleneck ?(delay = 1.0) k =
  if k < 1 then invalid_arg "Classic.dumbbell: need at least 1 leaf per side";
  let bottleneck = Option.value bottleneck ~default:capacity in
  let left_hub = k and right_hub = k + 1 in
  let arcs = ref [] in
  for leaf = 0 to k - 1 do
    arcs := sym ~capacity ~delay leaf left_hub !arcs;
    arcs := sym ~capacity ~delay (k + 2 + leaf) right_hub !arcs
  done;
  arcs := sym ~capacity:bottleneck ~delay left_hub right_hub !arcs;
  Graph.build ~n:((2 * k) + 2) !arcs
