module Graph = Dtr_graph.Graph
module Prng = Dtr_util.Prng

type params = {
  nodes : int;
  alpha : float;
  beta : float;
  capacity : float;
  delay_range : float * float;
}

let default =
  {
    nodes = 30;
    alpha = 0.25;
    beta = 0.4;
    capacity = 500.;
    delay_range = (1.2, 15.);
  }

let validate p =
  if p.nodes < 2 then invalid_arg "Waxman.generate: need >= 2 nodes";
  if p.alpha <= 0. || p.alpha > 1. then
    invalid_arg "Waxman.generate: alpha must be in (0, 1]";
  if p.beta <= 0. || p.beta > 1. then
    invalid_arg "Waxman.generate: beta must be in (0, 1]";
  let lo, hi = p.delay_range in
  if lo < 0. || hi < lo then invalid_arg "Waxman.generate: bad delay range"

let positions rng p =
  validate p;
  let n = p.nodes in
  let pos = Array.init n (fun _ -> (Prng.float rng 1.0, Prng.float rng 1.0)) in
  let dist u v =
    let xu, yu = pos.(u) and xv, yv = pos.(v) in
    sqrt (((xu -. xv) ** 2.) +. ((yu -. yv) ** 2.))
  in
  let diagonal = sqrt 2. in
  let adj = Array.make_matrix n n false in
  let links = ref [] in
  let add u v =
    adj.(u).(v) <- true;
    adj.(v).(u) <- true;
    links := (u, v) :: !links
  in
  (* Spanning tree for connectivity. *)
  let order = Array.init n (fun i -> i) in
  Prng.shuffle rng order;
  for i = 1 to n - 1 do
    add order.(Prng.int rng i) order.(i)
  done;
  (* Waxman links. *)
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if not adj.(u).(v) then begin
        let prob = p.alpha *. exp (-.dist u v /. (p.beta *. diagonal)) in
        if Prng.float rng 1.0 < prob then add u v
      end
    done
  done;
  (* Delays: map Euclidean distances onto the requested range. *)
  let dlo, dhi = p.delay_range in
  let dists = List.map (fun (u, v) -> dist u v) !links in
  let dmin = List.fold_left Float.min Float.infinity dists in
  let dmax = List.fold_left Float.max Float.neg_infinity dists in
  let span = if dmax > dmin then dmax -. dmin else 1. in
  let arcs =
    List.fold_left2
      (fun acc (u, v) d ->
        let delay = dlo +. ((dhi -. dlo) *. (d -. dmin) /. span) in
        Graph.add_symmetric ~capacity:p.capacity ~delay u v acc)
      [] !links dists
  in
  (Graph.build ~n arcs, pos)

let generate rng p = fst (positions rng p)
