(** Random degree-balanced topologies (the paper's “random topology”:
    links added between random nodes, all nodes end with similar
    degrees).

    The generator first draws a random spanning tree (guaranteeing
    strong connectivity, since every link is bidirectional), then adds
    the remaining links between the currently lowest-degree node pairs
    with random tie-breaking, which keeps the degree distribution
    nearly uniform. *)

type params = {
  nodes : int;  (** number of nodes, >= 2 *)
  links : int;  (** number of undirected links, >= nodes - 1 *)
  capacity : float;  (** capacity of every link (Mbps); paper: 500 *)
  delay_range : float * float;
      (** propagation delays drawn uniformly from this range (ms);
          paper: 1.2 – 15 ms *)
}

val default : params
(** The paper's evaluation instance: 30 nodes, 150 links, 500 Mbps,
    1.2–15 ms. *)

val generate : Dtr_util.Prng.t -> params -> Dtr_graph.Graph.t
(** @raise Invalid_argument if [links < nodes - 1], [nodes < 2], or
    [links] exceeds the complete-graph bound [nodes*(nodes-1)/2]. *)
