(** Small fixed topologies used by examples and tests.

    All links are bidirectional (two arcs). *)

val triangle : ?capacity:float -> ?delay:float -> unit -> Dtr_graph.Graph.t
(** The 3-node network of the paper's Fig. 1 (nodes A=0, B=1, C=2),
    default capacity 1.0 and delay 1.0. *)

val ring : ?capacity:float -> ?delay:float -> int -> Dtr_graph.Graph.t
(** Cycle over [n >= 3] nodes.  @raise Invalid_argument otherwise. *)

val full_mesh : ?capacity:float -> ?delay:float -> int -> Dtr_graph.Graph.t
(** Complete graph over [n >= 2] nodes. *)

val grid : ?capacity:float -> ?delay:float -> rows:int -> cols:int -> unit
  -> Dtr_graph.Graph.t
(** [rows × cols] grid, [rows, cols >= 1], at least 2 nodes. *)

val line : ?capacity:float -> ?delay:float -> int -> Dtr_graph.Graph.t
(** Path graph over [n >= 2] nodes. *)

val dumbbell :
  ?capacity:float -> ?bottleneck:float -> ?delay:float -> int
  -> Dtr_graph.Graph.t
(** Two stars of [k >= 1] leaves joined by a single (possibly smaller
    capacity) bottleneck link; nodes [0..k-1] left leaves, [k] left hub,
    [k+1] right hub, [k+2..2k+1] right leaves. *)
