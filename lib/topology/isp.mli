(** A 16-node, 70-arc (35 bidirectional link) North-American ISP
    backbone, emulating the topology used in the paper's evaluation.

    Node ids map to cities ({!city_name}); per-link propagation delays
    are derived from great-circle distances between the cities and
    mapped linearly onto the paper's 8–15 ms range.  All capacities
    default to 500 Mbps. *)

val node_count : int
(** 16. *)

val link_count : int
(** 35 undirected links (70 arcs). *)

val city_name : int -> string
(** @raise Invalid_argument if out of range. *)

val city_position : int -> float * float
(** (latitude, longitude) in degrees. *)

val generate : ?capacity:float -> unit -> Dtr_graph.Graph.t
(** Build the backbone graph.  Deterministic (no randomness). *)

val great_circle_km : float * float -> float * float -> float
(** Haversine distance between two (lat, lon) points, km.  Exposed for
    tests. *)
