(* Real-ISP-scale topology presets: transit–stub and power-law
   instances at nominal 1k / 5k / 10k nodes with tiered capacities
   (overprovisioned core/hub mesh vs. access links), the benchmark
   tier the CSR graph core and arena-based evaluation are sized for.
   Everything is seed-deterministic through the caller's Prng. *)

module Prng = Dtr_util.Prng
module Graph = Dtr_graph.Graph

type spec =
  | Ts of Transit_stub.params
  | Pl of { p : Power_law.params; hub_capacity : float; hub_degree : int }

type preset = {
  name : string;
  spec : spec;
  pops : int;  (* suggested PoP count for demand generation *)
}

(* Capacities in Mbps: 40G core / hub links, 4–10G access. *)
let ts p ~transit ~stubs_per_transit ~stub_size =
  Ts
    {
      Transit_stub.transit;
      stubs_per_transit;
      stub_size;
      core_capacity = 40_000.;
      edge_capacity = 4_000.;
      delay_range = (0.5, 10.);
    }
  |> fun spec -> { name = p; spec; pops = 0 }

let pl name ~nodes ~m0 ~m ~pops =
  {
    name;
    spec =
      Pl
        {
          p =
            {
              Power_law.nodes;
              m0;
              m;
              capacity = 10_000.;
              delay_range = (0.5, 10.);
            };
          hub_capacity = 40_000.;
          hub_degree = 40;
        };
    pops;
  }

let presets =
  [|
    { (ts "ts-1k" ~transit:10 ~stubs_per_transit:3 ~stub_size:33) with pops = 30 };
    { (ts "ts-5k" ~transit:20 ~stubs_per_transit:5 ~stub_size:50) with pops = 60 };
    { (ts "ts-10k" ~transit:25 ~stubs_per_transit:8 ~stub_size:50) with
      pops = 100 };
    pl "pl-1k" ~nodes:1_000 ~m0:10 ~m:4 ~pops:30;
    pl "pl-5k" ~nodes:5_000 ~m0:10 ~m:4 ~pops:60;
    pl "pl-10k" ~nodes:10_000 ~m0:12 ~m:5 ~pops:100;
  |]

let names () = Array.to_list (Array.map (fun p -> p.name) presets)

let find name = Array.find_opt (fun p -> p.name = name) presets

let node_count p =
  match p.spec with
  | Ts t -> Transit_stub.node_count t
  | Pl { p; _ } -> p.Power_law.nodes

let generate rng p =
  match p.spec with
  | Ts t -> Transit_stub.generate rng t
  | Pl { p; hub_capacity; hub_degree } ->
      Power_law.generate_ba ~hub_capacity ~hub_degree rng p

(* Demand endpoints: the highest-degree nodes are the natural PoPs —
   transit routers in a transit–stub instance, hubs in a power-law
   one. *)
let pop_nodes g p = Power_law.top_degree_nodes g p.pops
