module Graph = Dtr_graph.Graph
module Prng = Dtr_util.Prng

type params = {
  transit : int;
  stubs_per_transit : int;
  stub_size : int;
  core_capacity : float;
  edge_capacity : float;
  delay_range : float * float;
}

let default =
  {
    transit = 4;
    stubs_per_transit = 2;
    stub_size = 3;
    core_capacity = 1000.;
    edge_capacity = 500.;
    delay_range = (1.2, 15.);
  }

let node_count p = p.transit * (1 + (p.stubs_per_transit * p.stub_size))

let is_transit p v = v >= 0 && v < p.transit

let generate rng p =
  if p.transit < 2 then invalid_arg "Transit_stub.generate: need >= 2 transit";
  if p.stubs_per_transit < 0 then
    invalid_arg "Transit_stub.generate: negative stub count";
  if p.stub_size < 1 then invalid_arg "Transit_stub.generate: empty stub";
  let dlo, dhi = p.delay_range in
  if dlo < 0. || dhi < dlo then
    invalid_arg "Transit_stub.generate: bad delay range";
  let delay () = Prng.uniform rng dlo dhi in
  let arcs = ref [] in
  let add ~capacity u v =
    arcs := Graph.add_symmetric ~capacity ~delay:(delay ()) u v !arcs
  in
  (* Full-mesh transit core. *)
  for u = 0 to p.transit - 1 do
    for v = u + 1 to p.transit - 1 do
      add ~capacity:p.core_capacity u v
    done
  done;
  (* Stub domains: contiguous id blocks after the core. *)
  let next_id = ref p.transit in
  for t = 0 to p.transit - 1 do
    for _ = 1 to p.stubs_per_transit do
      let base = !next_id in
      next_id := !next_id + p.stub_size;
      (* Ring inside the stub (single node: just the uplink). *)
      if p.stub_size >= 3 then
        for i = 0 to p.stub_size - 1 do
          add ~capacity:p.edge_capacity (base + i)
            (base + ((i + 1) mod p.stub_size))
        done
      else if p.stub_size = 2 then add ~capacity:p.edge_capacity base (base + 1);
      (* Uplink from a random stub router to the transit router. *)
      let gw = base + Prng.int rng p.stub_size in
      add ~capacity:p.edge_capacity t gw
    done
  done;
  Graph.build ~n:(node_count p) !arcs
