(** Waxman random topologies (Waxman 1988): nodes placed uniformly in
    the unit square, a link between [u] and [v] added with probability
    [alpha * exp (-d(u,v) / (beta * L))] where [L] is the diagonal —
    nearby nodes connect more often, giving geographically plausible
    graphs.  A random spanning tree is overlaid first so the result is
    always strongly connected.

    Propagation delays derive from the Euclidean distances, scaled into
    a configurable range, so Waxman graphs plug directly into the
    SLA-based experiments. *)

type params = {
  nodes : int;  (** >= 2 *)
  alpha : float;  (** overall link density, in (0, 1] *)
  beta : float;  (** locality: small beta = only short links, in (0, 1] *)
  capacity : float;
  delay_range : float * float;  (** delays mapped onto this range (ms) *)
}

val default : params
(** 30 nodes, [alpha = 0.25], [beta = 0.4], 500 Mbps, 1.2–15 ms. *)

val generate : Dtr_util.Prng.t -> params -> Dtr_graph.Graph.t
(** @raise Invalid_argument on out-of-range parameters. *)

val positions :
  Dtr_util.Prng.t -> params -> Dtr_graph.Graph.t * (float * float) array
(** Like {!generate} but also returns the node coordinates (for
    plotting or locality checks). *)
