module Graph = Dtr_graph.Graph

let cities =
  [|
    ("Seattle", 47.6, -122.3);
    ("SanFrancisco", 37.8, -122.4);
    ("LosAngeles", 34.0, -118.2);
    ("Phoenix", 33.4, -112.1);
    ("SaltLakeCity", 40.8, -111.9);
    ("Denver", 39.7, -105.0);
    ("Dallas", 32.8, -96.8);
    ("Houston", 29.8, -95.4);
    ("KansasCity", 39.1, -94.6);
    ("Chicago", 41.9, -87.6);
    ("StLouis", 38.6, -90.2);
    ("Atlanta", 33.7, -84.4);
    ("Miami", 25.8, -80.2);
    ("WashingtonDC", 38.9, -77.0);
    ("NewYork", 40.7, -74.0);
    ("Boston", 42.4, -71.1);
  |]

let node_count = Array.length cities

(* 35 undirected links: a plausible Tier-1 mesh over the 16 POPs with
   average degree 4.375, matching the paper's 16-node / 70-link count. *)
let links =
  [
    (0, 1); (0, 4); (0, 5); (0, 9);
    (1, 2); (1, 4);
    (2, 3); (2, 4); (2, 6); (2, 7);
    (3, 4); (3, 6);
    (4, 5); (4, 8);
    (5, 6); (5, 8);
    (6, 7); (6, 8); (6, 10); (6, 11);
    (7, 11); (7, 12);
    (8, 9); (8, 10);
    (9, 10); (9, 14); (9, 15);
    (10, 11); (10, 13);
    (11, 12); (11, 13);
    (12, 13);
    (13, 14); (13, 15);
    (14, 15);
  ]

let link_count = List.length links

let city_name i =
  if i < 0 || i >= node_count then invalid_arg "Isp.city_name: out of range";
  let name, _, _ = cities.(i) in
  name

let city_position i =
  if i < 0 || i >= node_count then invalid_arg "Isp.city_position: out of range";
  let _, lat, lon = cities.(i) in
  (lat, lon)

let great_circle_km (lat1, lon1) (lat2, lon2) =
  let rad d = d *. Float.pi /. 180. in
  let dlat = rad (lat2 -. lat1) and dlon = rad (lon2 -. lon1) in
  let a =
    (sin (dlat /. 2.) ** 2.)
    +. (cos (rad lat1) *. cos (rad lat2) *. (sin (dlon /. 2.) ** 2.))
  in
  let c = 2. *. atan2 (sqrt a) (sqrt (1. -. a)) in
  6371. *. c

let generate ?(capacity = 500.) () =
  let dists =
    List.map
      (fun (u, v) -> great_circle_km (city_position u) (city_position v))
      links
  in
  let dmin = List.fold_left min infinity dists in
  let dmax = List.fold_left max neg_infinity dists in
  let span = if dmax > dmin then dmax -. dmin else 1. in
  let arcs =
    List.fold_left2
      (fun acc (u, v) d ->
        let delay = 8. +. (7. *. (d -. dmin) /. span) in
        Graph.add_symmetric ~capacity ~delay u v acc)
      [] links dists
  in
  Graph.build ~n:node_count arcs
