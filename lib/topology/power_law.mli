(** Power-law topologies via Barabási–Albert preferential attachment
    (the paper cites [21]); node degrees follow a heavy-tailed
    distribution like the observed AS-level Internet.

    Construction: a seed clique of [m0] nodes, then each arriving node
    attaches [m] links to distinct existing nodes chosen with
    probability proportional to their current degree. *)

type params = {
  nodes : int;  (** total number of nodes; must be > [m0] *)
  m0 : int;  (** seed clique size, >= 2 *)
  m : int;  (** links added per arriving node, [1 <= m <= m0] *)
  capacity : float;
  delay_range : float * float;
}

val default : params
(** The paper's instance: 30 nodes / 162 links — an [m0 = 9] seed
    clique (36 links) plus 21 arrivals × [m = 6] links = 162
    undirected links. *)

val link_count : params -> int
(** Number of undirected links the construction yields:
    [m0*(m0-1)/2 + (nodes-m0)*m]. *)

val generate : Dtr_util.Prng.t -> params -> Dtr_graph.Graph.t
(** @raise Invalid_argument on inconsistent parameters. *)

val generate_ba :
  ?hub_capacity:float ->
  ?hub_degree:int ->
  Dtr_util.Prng.t ->
  params ->
  Dtr_graph.Graph.t
(** Same Barabási–Albert process implemented by repeated-endpoints
    sampling: O(1) per degree-proportional draw instead of
    {!generate}'s O(n) weight rebuild, making 1k–10k-node instances
    cheap.  Produces the same degree-distribution family but a
    different (still seed-deterministic) stream of graphs, so the
    classic {!generate} remains untouched for byte-stable replays.
    When [hub_capacity] is given, links whose endpoints both reach
    final degree >= [hub_degree] carry it instead of [p.capacity] —
    a simple overprovisioned-hub-mesh capacity mix.
    @raise Invalid_argument on inconsistent parameters. *)

val degrees : Dtr_graph.Graph.t -> int array
(** Undirected degree of each node (out-degree, which equals in-degree
    for symmetric graphs). *)

val top_degree_nodes : Dtr_graph.Graph.t -> int -> int array
(** [top_degree_nodes g k] returns the [k] highest-degree nodes
    (ties by node id); used to pick the sink nodes of §5.2.3.
    @raise Invalid_argument if [k] exceeds the node count. *)
