module Graph = Dtr_graph.Graph

let to_string g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Graph.node_count g));
  Array.iter
    (fun (a : Graph.arc) ->
      Buffer.add_string buf
        (Printf.sprintf "arc %d %d %.17g %.17g\n" a.src a.dst a.capacity a.delay))
    (Graph.arcs g);
  Buffer.contents buf

(* Field separator: any run of blanks, so tab-separated (and, via
   String.trim, CRLF-terminated) files parse the same as
   space-separated ones. *)
let is_blank c = c = ' ' || c = '\t' || c = '\r' || c = '\012'

let split_fields line =
  let n = String.length line in
  let fields = ref [] in
  let start = ref (-1) in
  for i = n - 1 downto 0 do
    if is_blank line.[i] then begin
      if !start >= 0 then begin
        fields := String.sub line (i + 1) (!start - i) :: !fields;
        start := -1
      end
    end
    else begin
      if !start < 0 then start := i;
      if i = 0 then fields := String.sub line 0 (!start + 1) :: !fields
    end
  done;
  !fields

let of_string s =
  let lines = String.split_on_char '\n' s in
  let nodes = ref None in
  let arcs = ref [] in
  let error = ref None in
  List.iteri
    (fun lineno line ->
      if !error = None then begin
        let line = String.trim line in
        let fail fmt =
          Printf.ksprintf (fun msg -> error := Some msg) ("line %d: " ^^ fmt)
            (lineno + 1)
        in
        if line <> "" && not (String.length line > 0 && line.[0] = '#') then begin
          match split_fields line with
          | [ "nodes"; n ] -> (
              match int_of_string_opt n with
              | Some n when n > 0 -> nodes := Some n
              | _ -> fail "bad node count")
          | [ "arc"; src; dst; cap; delay ] -> (
              match
                ( int_of_string_opt src,
                  int_of_string_opt dst,
                  float_of_string_opt cap,
                  float_of_string_opt delay )
              with
              | Some src, Some dst, Some capacity, Some delay ->
                  (* Reject values that would only blow up deep inside a
                     search (Φ with capacity 0, NaN propagating through
                     every load sum) — a parse error with a line number
                     beats an exception mid-sweep. *)
                  if Float.is_nan capacity || Float.is_nan delay then
                    fail "arc has NaN field"
                  else if
                    capacity = Float.infinity || capacity = Float.neg_infinity
                    || delay = Float.infinity || delay = Float.neg_infinity
                  then fail "arc has infinite field"
                  else if capacity <= 0. then
                    fail "arc capacity must be positive (got %.17g)" capacity
                  else if delay < 0. then
                    fail "arc delay must be non-negative (got %.17g)" delay
                  else arcs := { Graph.src; dst; capacity; delay } :: !arcs
              | _ -> fail "bad arc")
          | _ -> fail "unknown directive"
        end
      end)
    lines;
  match (!error, !nodes) with
  | Some e, _ -> Error e
  | None, None -> Error "missing 'nodes' directive"
  | None, Some n -> (
      match Graph.build ~n (List.rev !arcs) with
      | g -> Ok g
      | exception Invalid_argument msg -> Error msg)

let save g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      of_string s
