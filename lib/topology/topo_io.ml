module Graph = Dtr_graph.Graph

let to_string g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Graph.node_count g));
  Array.iter
    (fun (a : Graph.arc) ->
      Buffer.add_string buf
        (Printf.sprintf "arc %d %d %.17g %.17g\n" a.src a.dst a.capacity a.delay))
    (Graph.arcs g);
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let nodes = ref None in
  let arcs = ref [] in
  let error = ref None in
  List.iteri
    (fun lineno line ->
      if !error = None then begin
        let line = String.trim line in
        if line <> "" && not (String.length line > 0 && line.[0] = '#') then begin
          let parts =
            List.filter (fun p -> p <> "") (String.split_on_char ' ' line)
          in
          match parts with
          | [ "nodes"; n ] -> (
              match int_of_string_opt n with
              | Some n when n > 0 -> nodes := Some n
              | _ -> error := Some (Printf.sprintf "line %d: bad node count" (lineno + 1)))
          | [ "arc"; src; dst; cap; delay ] -> (
              match
                ( int_of_string_opt src,
                  int_of_string_opt dst,
                  float_of_string_opt cap,
                  float_of_string_opt delay )
              with
              | Some src, Some dst, Some capacity, Some delay ->
                  arcs := { Graph.src; dst; capacity; delay } :: !arcs
              | _ -> error := Some (Printf.sprintf "line %d: bad arc" (lineno + 1)))
          | _ -> error := Some (Printf.sprintf "line %d: unknown directive" (lineno + 1))
        end
      end)
    lines;
  match (!error, !nodes) with
  | Some e, _ -> Error e
  | None, None -> Error "missing 'nodes' directive"
  | None, Some n -> (
      match Graph.build ~n (List.rev !arcs) with
      | g -> Ok g
      | exception Invalid_argument msg -> Error msg)

let save g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      of_string s
