(** Real-ISP-scale topology presets (nominal 1k / 5k / 10k nodes).

    Transit–stub presets keep the paper's hierarchical structure at
    scale (full-mesh 40G core, ringed 4G access stubs); power-law
    presets use the O(links) Barabási–Albert sampler with a 40G
    hub-mesh capacity tier.  Together with {!pop_nodes} +
    {!Dtr_traffic.Gravity} PoP demands they form the large benchmark
    tier. *)

type spec =
  | Ts of Transit_stub.params
  | Pl of { p : Power_law.params; hub_capacity : float; hub_degree : int }

type preset = {
  name : string;  (** e.g. ["ts-1k"], ["pl-10k"] *)
  spec : spec;
  pops : int;  (** suggested PoP count for demand generation *)
}

val presets : preset array
(** [ts-1k ts-5k ts-10k pl-1k pl-5k pl-10k]. *)

val names : unit -> string list

val find : string -> preset option

val node_count : preset -> int
(** Exact node count the preset generates (e.g. 10025 for ["ts-10k"]:
    the transit–stub construction quantizes to
    [transit * (1 + stubs_per_transit * stub_size)]). *)

val generate : Dtr_util.Prng.t -> preset -> Dtr_graph.Graph.t

val pop_nodes : Dtr_graph.Graph.t -> preset -> int array
(** The preset's [pops] highest-degree nodes (ties by id): demand
    endpoints for a PoP-level gravity matrix. *)
