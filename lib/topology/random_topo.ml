module Graph = Dtr_graph.Graph
module Prng = Dtr_util.Prng

type params = {
  nodes : int;
  links : int;
  capacity : float;
  delay_range : float * float;
}

let default =
  { nodes = 30; links = 150; capacity = 500.; delay_range = (1.2, 15.) }

let generate rng p =
  if p.nodes < 2 then invalid_arg "Random_topo.generate: need >= 2 nodes";
  if p.links < p.nodes - 1 then
    invalid_arg "Random_topo.generate: too few links to connect";
  if p.links > p.nodes * (p.nodes - 1) / 2 then
    invalid_arg "Random_topo.generate: more links than node pairs";
  let dlo, dhi = p.delay_range in
  if dhi < dlo || dlo < 0. then
    invalid_arg "Random_topo.generate: bad delay range";
  let n = p.nodes in
  let adj = Array.make_matrix n n false in
  let degree = Array.make n 0 in
  let link_list = ref [] in
  let add_link u v =
    adj.(u).(v) <- true;
    adj.(v).(u) <- true;
    degree.(u) <- degree.(u) + 1;
    degree.(v) <- degree.(v) + 1;
    link_list := (u, v) :: !link_list
  in
  (* Random spanning tree: attach each node (in random order) to a
     uniformly random, already-attached node. *)
  let order = Array.init n (fun i -> i) in
  Prng.shuffle rng order;
  for i = 1 to n - 1 do
    let v = order.(i) in
    let u = order.(Prng.int rng i) in
    add_link u v
  done;
  (* Degree-balanced extra links: candidate endpoints are nodes of
     minimum degree; pick uniformly among valid (non-adjacent) pairs. *)
  let remaining = ref (p.links - (n - 1)) in
  while !remaining > 0 do
    (* Collect all non-adjacent pairs with the minimal degree sum. *)
    let best = ref max_int in
    let cands = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if not adj.(u).(v) then begin
          let s = degree.(u) + degree.(v) in
          if s < !best then begin
            best := s;
            cands := [ (u, v) ]
          end
          else if s = !best then cands := (u, v) :: !cands
        end
      done
    done;
    (match !cands with
    | [] -> invalid_arg "Random_topo.generate: graph saturated"
    | l ->
        let a = Array.of_list l in
        let u, v = Prng.choose rng a in
        add_link u v);
    decr remaining
  done;
  let arcs =
    List.fold_left
      (fun acc (u, v) ->
        let delay = Prng.uniform rng dlo dhi in
        Graph.add_symmetric ~capacity:p.capacity ~delay u v acc)
      [] !link_list
  in
  Graph.build ~n arcs
