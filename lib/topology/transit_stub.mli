(** Two-level transit–stub topologies (in the spirit of GT-ITM):
    a well-connected transit core of [transit] routers, each with
    [stubs_per_transit] stub domains of [stub_size] routers hanging off
    it.  Stub domains are small rings (every router 2-connected inside
    its domain) attached to their transit router by one uplink.

    The shape stresses the routing heuristics differently from flat
    random graphs: all inter-domain traffic funnels through the core,
    so core links are the contended resource. *)

type params = {
  transit : int;  (** core routers, >= 2 *)
  stubs_per_transit : int;  (** >= 0 *)
  stub_size : int;  (** routers per stub domain, >= 1 *)
  core_capacity : float;  (** transit–transit links *)
  edge_capacity : float;  (** uplinks and intra-stub links *)
  delay_range : float * float;
}

val default : params
(** 4 transit routers (full mesh), 2 stubs each, 3 routers per stub:
    28 nodes; core at 1000 Mbps, edges at 500 Mbps, 1.2–15 ms. *)

val node_count : params -> int
(** [transit * (1 + stubs_per_transit * stub_size)]. *)

val generate : Dtr_util.Prng.t -> params -> Dtr_graph.Graph.t
(** The transit core is a full mesh.  @raise Invalid_argument on
    out-of-range parameters. *)

val is_transit : params -> int -> bool
(** Whether a node id is a core router (ids [0 .. transit-1]). *)
