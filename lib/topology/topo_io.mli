(** Plain-text serialization of graphs.

    Format (line oriented, [#] comments allowed):
    {v
    nodes <n>
    arc <src> <dst> <capacity> <delay>
    ...
    v}

    Fields are separated by any run of blanks (spaces or tabs); CRLF
    line endings are accepted. *)

val to_string : Dtr_graph.Graph.t -> string

val of_string : string -> (Dtr_graph.Graph.t, string) result
(** Parse errors are returned as [Error message] with a line number.
    Arc values are validated at parse time: NaN or infinite capacity /
    delay, non-positive capacity, and negative delay are rejected here
    (with the offending line number) instead of surfacing as a NaN
    objective or an exception deep inside a search. *)

val save : Dtr_graph.Graph.t -> string -> unit
(** Write to a file path.  @raise Sys_error on I/O failure. *)

val load : string -> (Dtr_graph.Graph.t, string) result
