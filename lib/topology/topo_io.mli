(** Plain-text serialization of graphs.

    Format (line oriented, [#] comments allowed):
    {v
    nodes <n>
    arc <src> <dst> <capacity> <delay>
    ...
    v} *)

val to_string : Dtr_graph.Graph.t -> string

val of_string : string -> (Dtr_graph.Graph.t, string) result
(** Parse errors are returned as [Error message] with a line number. *)

val save : Dtr_graph.Graph.t -> string -> unit
(** Write to a file path.  @raise Sys_error on I/O failure. *)

val load : string -> (Dtr_graph.Graph.t, string) result
