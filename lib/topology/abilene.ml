module Graph = Dtr_graph.Graph

let cities =
  [|
    ("Seattle", 47.6, -122.3);
    ("Sunnyvale", 37.4, -122.0);
    ("LosAngeles", 34.0, -118.2);
    ("Denver", 39.7, -105.0);
    ("KansasCity", 39.1, -94.6);
    ("Houston", 29.8, -95.4);
    ("Indianapolis", 39.8, -86.2);
    ("Atlanta", 33.7, -84.4);
    ("Chicago", 41.9, -87.6);
    ("NewYork", 40.7, -74.0);
    ("WashingtonDC", 38.9, -77.0);
  |]

let node_count = Array.length cities

(* The published Abilene map. *)
let links =
  [
    (0, 1); (0, 3);            (* Seattle - Sunnyvale, Denver *)
    (1, 2); (1, 3);            (* Sunnyvale - LA, Denver *)
    (2, 5);                    (* LA - Houston *)
    (3, 4);                    (* Denver - Kansas City *)
    (4, 5); (4, 6);            (* KC - Houston, Indianapolis *)
    (5, 7);                    (* Houston - Atlanta *)
    (6, 8); (6, 7);            (* Indianapolis - Chicago, Atlanta *)
    (7, 10);                   (* Atlanta - DC *)
    (8, 9);                    (* Chicago - New York *)
    (9, 10);                   (* New York - DC *)
  ]

let link_count = List.length links

let city_name i =
  if i < 0 || i >= node_count then invalid_arg "Abilene.city_name: out of range";
  let name, _, _ = cities.(i) in
  name

let city_position i =
  if i < 0 || i >= node_count then
    invalid_arg "Abilene.city_position: out of range";
  let _, lat, lon = cities.(i) in
  (lat, lon)

let generate ?(capacity = 9920.) () =
  let arcs =
    List.fold_left
      (fun acc (u, v) ->
        let km = Isp.great_circle_km (city_position u) (city_position v) in
        (* Fiber path at 2/3 c: 1 ms per ~200 km. *)
        let delay = km /. 200. in
        Graph.add_symmetric ~capacity ~delay u v acc)
      [] links
  in
  Graph.build ~n:node_count arcs
