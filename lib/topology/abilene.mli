(** The Abilene research backbone (Internet2, ca. 2004): 11 POPs and 14
    OC-192 links — the most widely used real reference topology in the
    traffic-engineering literature.

    Node ids map to cities ({!city_name}); propagation delays derive
    from great-circle distances at 2/3 the speed of light. *)

val node_count : int
(** 11. *)

val link_count : int
(** 14 undirected links (28 arcs). *)

val city_name : int -> string
(** @raise Invalid_argument if out of range. *)

val city_position : int -> float * float
(** (latitude, longitude) in degrees. *)

val generate : ?capacity:float -> unit -> Dtr_graph.Graph.t
(** Deterministic.  Default capacity 9920 Mbps (OC-192). *)
