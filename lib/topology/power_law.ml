module Graph = Dtr_graph.Graph
module Prng = Dtr_util.Prng
module Dist = Dtr_util.Dist

type params = {
  nodes : int;
  m0 : int;
  m : int;
  capacity : float;
  delay_range : float * float;
}

let default =
  { nodes = 30; m0 = 9; m = 6; capacity = 500.; delay_range = (1.2, 15.) }

let link_count p = (p.m0 * (p.m0 - 1) / 2) + ((p.nodes - p.m0) * p.m)

let generate rng p =
  if p.m0 < 2 then invalid_arg "Power_law.generate: m0 must be >= 2";
  if p.nodes <= p.m0 then invalid_arg "Power_law.generate: nodes must exceed m0";
  if p.m < 1 || p.m > p.m0 then
    invalid_arg "Power_law.generate: need 1 <= m <= m0";
  let dlo, dhi = p.delay_range in
  if dhi < dlo || dlo < 0. then invalid_arg "Power_law.generate: bad delay range";
  let n = p.nodes in
  let degree = Array.make n 0 in
  let adj = Array.make_matrix n n false in
  let links = ref [] in
  let add_link u v =
    adj.(u).(v) <- true;
    adj.(v).(u) <- true;
    degree.(u) <- degree.(u) + 1;
    degree.(v) <- degree.(v) + 1;
    links := (u, v) :: !links
  in
  (* Seed clique. *)
  for u = 0 to p.m0 - 1 do
    for v = u + 1 to p.m0 - 1 do
      add_link u v
    done
  done;
  (* Preferential attachment. *)
  for v = p.m0 to n - 1 do
    let attached = ref 0 in
    while !attached < p.m do
      (* Draw an existing node with probability proportional to its
         degree, rejecting duplicates. *)
      let w = Array.init v (fun u -> float_of_int degree.(u)) in
      Array.iteri (fun u _ -> if adj.(u).(v) then w.(u) <- 0.) w;
      let u = Dist.weighted_choice rng w in
      if not adj.(u).(v) then begin
        add_link u v;
        incr attached
      end
    done
  done;
  let arcs =
    List.fold_left
      (fun acc (u, v) ->
        let delay = Prng.uniform rng dlo dhi in
        Graph.add_symmetric ~capacity:p.capacity ~delay u v acc)
      [] !links
  in
  Graph.build ~n arcs

(* Barabási–Albert by repeated-endpoints sampling: every link endpoint
   is appended to a flat pool, so drawing a uniform pool slot is
   exactly a degree-proportional draw — O(1) per attempt instead of
   the O(n) weight rebuild {!generate} pays per draw, which is what
   makes 10k-node instances feasible.  Duplicate/self draws are
   rejected ([mark] stamps the nodes already attached to [v]).
   Kept separate from {!generate}: the classic generator's byte-exact
   output is pinned by seeded tests and experiments.

   [hub_degree]/[hub_capacity] add a capacity mix: once the degree
   sequence is final, links joining two nodes of degree >=
   [hub_degree] (the hub mesh a real backbone overprovisions) get
   [hub_capacity] instead of [p.capacity]. *)
let generate_ba ?hub_capacity ?(hub_degree = max_int) rng p =
  if p.m0 < 2 then invalid_arg "Power_law.generate_ba: m0 must be >= 2";
  if p.nodes <= p.m0 then
    invalid_arg "Power_law.generate_ba: nodes must exceed m0";
  if p.m < 1 || p.m > p.m0 then
    invalid_arg "Power_law.generate_ba: need 1 <= m <= m0";
  let dlo, dhi = p.delay_range in
  if dhi < dlo || dlo < 0. then
    invalid_arg "Power_law.generate_ba: bad delay range";
  let n = p.nodes in
  let total_links = link_count p in
  let pool = Array.make (2 * total_links) 0 in
  let pool_len = ref 0 in
  let degree = Array.make n 0 in
  let mark = Array.make n (-1) in
  let links = ref [] in
  let add_link u v =
    pool.(!pool_len) <- u;
    pool.(!pool_len + 1) <- v;
    pool_len := !pool_len + 2;
    degree.(u) <- degree.(u) + 1;
    degree.(v) <- degree.(v) + 1;
    links := (u, v) :: !links
  in
  (* Seed clique. *)
  for u = 0 to p.m0 - 1 do
    for v = u + 1 to p.m0 - 1 do
      add_link u v
    done
  done;
  (* Preferential attachment. *)
  for v = p.m0 to n - 1 do
    let attached = ref 0 in
    while !attached < p.m do
      let u = pool.(Prng.int rng !pool_len) in
      if u <> v && mark.(u) <> v then begin
        mark.(u) <- v;
        add_link u v;
        incr attached
      end
    done
  done;
  let capacity_of u v =
    match hub_capacity with
    | Some hc when degree.(u) >= hub_degree && degree.(v) >= hub_degree -> hc
    | _ -> p.capacity
  in
  let arcs =
    List.fold_left
      (fun acc (u, v) ->
        let delay = Prng.uniform rng dlo dhi in
        Graph.add_symmetric ~capacity:(capacity_of u v) ~delay u v acc)
      [] !links
  in
  Graph.build ~n arcs

let degrees g = Array.init (Graph.node_count g) (fun v -> Graph.out_degree g v)

let top_degree_nodes g k =
  let n = Graph.node_count g in
  if k < 0 || k > n then invalid_arg "Power_law.top_degree_nodes: bad k";
  let ids = Array.init n (fun i -> i) in
  let deg = degrees g in
  Array.sort
    (fun a b ->
      let c = compare deg.(b) deg.(a) in
      if c <> 0 then c else compare a b)
    ids;
  Array.sub ids 0 k
