module Table = Dtr_util.Table
module Prng = Dtr_util.Prng
module Objective = Dtr_routing.Objective
module Problem = Dtr_core.Problem
module Sim = Dtr_netsim.Sim
module Link_queue = Dtr_netsim.Link_queue

let run ?(cfg = Dtr_core.Search_config.quick) ?(seed = 89) ?(target_util = 0.65)
    ?(sim_duration = 2500.) () =
  let spec =
    {
      Scenario.topology = Scenario.Isp;
      fraction = 0.30;
      hp = Scenario.Random_density 0.10;
      seed;
    }
  in
  let inst = Scenario.make spec in
  let inst = Scenario.scale_to_utilization inst ~target:target_util in
  let problem = Scenario.problem inst ~model:Objective.Load in
  let report = Dtr_core.Dtr_search.run (Prng.create (seed + 3)) cfg problem in
  let sol = report.Dtr_core.Dtr_search.best in
  let simulate discipline =
    Sim.run inst.Scenario.graph ~wh:sol.Problem.wh ~wl:sol.Problem.wl
      ~th:inst.Scenario.th ~tl:inst.Scenario.tl
      {
        Sim.default_config with
        Sim.duration = sim_duration;
        warmup = sim_duration /. 10.;
        seed;
        discipline;
      }
  in
  let prio = simulate Link_queue.Priority in
  let fifo = simulate Link_queue.Fifo in
  let table =
    Table.create
      ~title:
        "Extension: contention resolution matters - priority vs FIFO queues (ISP, DTR weights)"
      ~columns:[ "discipline"; "class"; "mean delay (ms)"; "p95 delay (ms)" ]
  in
  let add name klass (s : Sim.class_stats) =
    Table.add_row table
      [
        name;
        klass;
        Printf.sprintf "%.3f" s.Sim.mean_delay;
        Printf.sprintf "%.3f" s.Sim.p95_delay;
      ]
  in
  add "priority" "high" prio.Sim.high;
  add "priority" "low" prio.Sim.low;
  add "fifo" "high" fifo.Sim.high;
  add "fifo" "low" fifo.Sim.low;
  table
