module Table = Dtr_util.Table
module Prng = Dtr_util.Prng
module Lexico = Dtr_cost.Lexico
module Objective = Dtr_routing.Objective
module Search_config = Dtr_core.Search_config
module Dtr_search = Dtr_core.Dtr_search

let scenario ~seed ~target_util =
  let spec =
    {
      Scenario.topology = Scenario.Isp;
      fraction = 0.30;
      hp = Scenario.Random_density 0.10;
      seed;
    }
  in
  let inst = Scenario.make spec in
  let inst = Scenario.scale_to_utilization inst ~target:target_util in
  Scenario.problem inst ~model:Objective.Load

let run_variants ~title ~seed ~target_util variants =
  let problem = scenario ~seed ~target_util in
  let table =
    Table.create ~title
      ~columns:[ "variant"; "PhiH"; "PhiL"; "evaluations"; "improvements" ]
  in
  List.iter
    (fun (name, cfg) ->
      let report = Dtr_search.run (Prng.create (seed + 13)) cfg problem in
      Table.add_row table
        [
          name;
          Printf.sprintf "%.1f" report.Dtr_search.objective.Lexico.primary;
          Printf.sprintf "%.4g" report.Dtr_search.objective.Lexico.secondary;
          string_of_int report.Dtr_search.evaluations;
          string_of_int report.Dtr_search.improvements;
        ])
    variants;
  table

let run_neighborhood ?(cfg = Search_config.quick) ?(seed = 67)
    ?(target_util = 0.6) () =
  run_variants
    ~title:"Ablation: FindH/FindL neighborhood (ISP, load cost, f=30%, k=10%)"
    ~seed ~target_util
    [
      ( "literal Algorithm 2 (step 1, no scan)",
        { cfg with Search_config.max_step = 1; scan_probability = 0. } );
      ( "random step <= 5",
        { cfg with Search_config.max_step = 5; scan_probability = 0. } );
      ( "random step + 15% value scans",
        { cfg with Search_config.max_step = 5; scan_probability = 0.15 } );
    ]

let run_tau ?(cfg = Search_config.quick) ?(seed = 71) ?(target_util = 0.6) () =
  run_variants
    ~title:"Ablation: heavy-tail rank exponent tau (ISP, load cost)"
    ~seed ~target_util
    [
      ("tau = 0 (uniform link choice)", { cfg with Search_config.tau = 0. });
      ("tau = 1.5 (paper)", { cfg with Search_config.tau = 1.5 });
      ("tau = 5 (greedy extremes)", { cfg with Search_config.tau = 5. });
    ]

let run_optimizer ?(cfg = Search_config.quick) ?(seed = 77) ?(target_util = 0.6)
    () =
  let problem = scenario ~seed ~target_util in
  let table =
    Table.create
      ~title:"Ablation: Algorithm-1 local search vs simulated annealing (ISP, load cost)"
      ~columns:[ "optimizer"; "PhiH"; "PhiL"; "evaluations" ]
  in
  let local = Dtr_search.run (Prng.create (seed + 13)) cfg problem in
  Table.add_row table
    [
      "Algorithm 1 (local search)";
      Printf.sprintf "%.1f" local.Dtr_search.objective.Lexico.primary;
      Printf.sprintf "%.4g" local.Dtr_search.objective.Lexico.secondary;
      string_of_int local.Dtr_search.evaluations;
    ];
  let sa =
    Dtr_core.Anneal_search.run (Prng.create (seed + 14)) cfg problem
  in
  Table.add_row table
    [
      "simulated annealing";
      Printf.sprintf "%.1f" sa.Dtr_core.Anneal_search.objective.Lexico.primary;
      Printf.sprintf "%.4g" sa.Dtr_core.Anneal_search.objective.Lexico.secondary;
      string_of_int sa.Dtr_core.Anneal_search.evaluations;
    ];
  table

let run_diversification ?(cfg = Search_config.quick) ?(seed = 73)
    ?(target_util = 0.6) () =
  run_variants
    ~title:"Ablation: stall-triggered diversification (ISP, load cost)"
    ~seed ~target_util
    [
      ( "diversification off",
        { cfg with Search_config.diversify_after = max_int } );
      ( Printf.sprintf "diversify after %d stalls (preset)"
          cfg.Search_config.diversify_after,
        cfg );
    ]
