module Prng = Dtr_util.Prng
module Graph = Dtr_graph.Graph
module Matrix = Dtr_traffic.Matrix
module Gravity = Dtr_traffic.Gravity
module Highpri = Dtr_traffic.Highpri
module Random_topo = Dtr_topology.Random_topo
module Power_law = Dtr_topology.Power_law
module Isp = Dtr_topology.Isp
module Large = Dtr_topology.Large
module Evaluate = Dtr_routing.Evaluate
module Eval_ctx = Dtr_routing.Eval_ctx
module Weights = Dtr_routing.Weights

type topology_kind =
  | Random_topo
  | Power_law
  | Isp
  | Waxman
  | Transit_stub
  | Abilene
  | Large of Large.preset

let topology_name = function
  | Random_topo -> "random"
  | Power_law -> "power-law"
  | Isp -> "isp"
  | Waxman -> "waxman"
  | Transit_stub -> "transit-stub"
  | Abilene -> "abilene"
  | Large p -> p.Large.name

type hp_model =
  | Random_density of float
  | Sinks of {
      sinks : int;
      density : float;
      placement : Highpri.placement;
    }

type spec = {
  topology : topology_kind;
  fraction : float;
  hp : hp_model;
  seed : int;
}

type instance = {
  graph : Graph.t;
  th : Matrix.t;
  tl : Matrix.t;
  spec : spec;
}

let build_topology rng = function
  | Random_topo -> Dtr_topology.Random_topo.generate rng Dtr_topology.Random_topo.default
  | Power_law -> Dtr_topology.Power_law.generate rng Dtr_topology.Power_law.default
  | Isp -> Dtr_topology.Isp.generate ()
  | Waxman -> Dtr_topology.Waxman.generate rng Dtr_topology.Waxman.default
  | Transit_stub ->
      Dtr_topology.Transit_stub.generate rng Dtr_topology.Transit_stub.default
  | Abilene -> Dtr_topology.Abilene.generate ()
  | Large p -> Large.generate rng p

(* Large presets: PoP-level gravity demand (sparse) with the high
   class riding a density-[k] subset of the low-class pairs at
   [fraction] of the pair's volume — the same f/k knobs as the dense
   scenarios, applied to the sparse tier (mirrors Large_bench). *)
let make_large spec p =
  let density =
    match spec.hp with
    | Random_density k -> k
    | Sinks _ ->
        invalid_arg
          "Scenario.make: sink placement is not supported on large presets \
           (PoP demand pairs have no per-node client model); use \
           Random_density"
  in
  let root = Prng.create spec.seed in
  let topo_rng = Prng.split root in
  let traffic_rng = Prng.split root in
  let graph = Large.generate topo_rng p in
  let n = Graph.node_count graph in
  let pops = Large.pop_nodes graph p in
  let tl = Gravity.generate_pop traffic_rng ~n ~pops Gravity.default in
  let th = Matrix.create_sparse n in
  Matrix.iter tl (fun s t v ->
      if Prng.float traffic_rng 1.0 < density then
        Matrix.set th s t (spec.fraction *. v));
  { graph; th; tl; spec }

let make spec =
  match spec.topology with
  | Large p -> make_large spec p
  | _ ->
  let root = Prng.create spec.seed in
  let topo_rng = Prng.split root in
  let traffic_rng = Prng.split root in
  let graph = build_topology topo_rng spec.topology in
  let n = Graph.node_count graph in
  let tl = Gravity.generate traffic_rng ~n Gravity.default in
  let pairs =
    match spec.hp with
    | Random_density k -> Highpri.random_pairs traffic_rng ~n ~density:k
    | Sinks { sinks; density; placement } ->
        let sink_nodes = Dtr_topology.Power_law.top_degree_nodes graph sinks in
        let count =
          Highpri.client_count_for_density ~n ~sinks ~density
        in
        let clients =
          Highpri.select_clients traffic_rng graph ~sinks:sink_nodes ~count
            placement
        in
        Highpri.sink_pairs ~sinks:sink_nodes ~clients
  in
  let th =
    Highpri.volumes traffic_rng ~low:tl ~fraction:spec.fraction ~pairs
  in
  { graph; th; tl; spec }

let reference_avg_utilization inst =
  let mid = (Weights.min_weight + Weights.max_weight) / 2 in
  let w = Array.make (Graph.arc_count inst.graph) mid in
  match inst.spec.topology with
  | Large _ ->
      (* Demand-only context: DAGs for the ~30-100 PoP destinations
         instead of all 1k-10k nodes — same utilizations, since
         inactive destinations carry no demand. *)
      let ctx =
        Eval_ctx.create ~dest_mode:Eval_ctx.Demand inst.graph
          ~weights:[| w; w |]
          ~matrices:[| inst.th; inst.tl |]
      in
      Evaluate.avg_utilization (Eval_ctx.to_evaluate ctx)
  | _ ->
      let eval =
        Evaluate.evaluate inst.graph ~wh:w ~wl:w ~th:inst.th ~tl:inst.tl
      in
      Evaluate.avg_utilization eval

let scale_to_utilization inst ~target =
  if target <= 0. then invalid_arg "Scenario.scale_to_utilization: bad target";
  let current = reference_avg_utilization inst in
  let factor = target /. current in
  {
    inst with
    th = Matrix.scale inst.th factor;
    tl = Matrix.scale inst.tl factor;
  }

let problem inst ~model =
  let p = Dtr_core.Problem.create ~graph:inst.graph ~th:inst.th ~tl:inst.tl ~model in
  match inst.spec.topology with
  | Large _ ->
      (* Searches on the large tier route only toward destinations
         that sink demand; every matrix the problem evaluates is
         covered because both classes came from the same PoP set. *)
      { p with Dtr_core.Problem.dest_mode = Dtr_routing.Eval_ctx.Demand }
  | _ -> p
