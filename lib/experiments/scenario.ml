module Prng = Dtr_util.Prng
module Graph = Dtr_graph.Graph
module Matrix = Dtr_traffic.Matrix
module Gravity = Dtr_traffic.Gravity
module Highpri = Dtr_traffic.Highpri
module Random_topo = Dtr_topology.Random_topo
module Power_law = Dtr_topology.Power_law
module Isp = Dtr_topology.Isp
module Evaluate = Dtr_routing.Evaluate
module Weights = Dtr_routing.Weights

type topology_kind = Random_topo | Power_law | Isp | Waxman | Transit_stub | Abilene

let topology_name = function
  | Random_topo -> "random"
  | Power_law -> "power-law"
  | Isp -> "isp"
  | Waxman -> "waxman"
  | Transit_stub -> "transit-stub"
  | Abilene -> "abilene"

type hp_model =
  | Random_density of float
  | Sinks of {
      sinks : int;
      density : float;
      placement : Highpri.placement;
    }

type spec = {
  topology : topology_kind;
  fraction : float;
  hp : hp_model;
  seed : int;
}

type instance = {
  graph : Graph.t;
  th : Matrix.t;
  tl : Matrix.t;
  spec : spec;
}

let build_topology rng = function
  | Random_topo -> Dtr_topology.Random_topo.generate rng Dtr_topology.Random_topo.default
  | Power_law -> Dtr_topology.Power_law.generate rng Dtr_topology.Power_law.default
  | Isp -> Dtr_topology.Isp.generate ()
  | Waxman -> Dtr_topology.Waxman.generate rng Dtr_topology.Waxman.default
  | Transit_stub ->
      Dtr_topology.Transit_stub.generate rng Dtr_topology.Transit_stub.default
  | Abilene -> Dtr_topology.Abilene.generate ()

let make spec =
  let root = Prng.create spec.seed in
  let topo_rng = Prng.split root in
  let traffic_rng = Prng.split root in
  let graph = build_topology topo_rng spec.topology in
  let n = Graph.node_count graph in
  let tl = Gravity.generate traffic_rng ~n Gravity.default in
  let pairs =
    match spec.hp with
    | Random_density k -> Highpri.random_pairs traffic_rng ~n ~density:k
    | Sinks { sinks; density; placement } ->
        let sink_nodes = Dtr_topology.Power_law.top_degree_nodes graph sinks in
        let count =
          Highpri.client_count_for_density ~n ~sinks ~density
        in
        let clients =
          Highpri.select_clients traffic_rng graph ~sinks:sink_nodes ~count
            placement
        in
        Highpri.sink_pairs ~sinks:sink_nodes ~clients
  in
  let th =
    Highpri.volumes traffic_rng ~low:tl ~fraction:spec.fraction ~pairs
  in
  { graph; th; tl; spec }

let reference_avg_utilization inst =
  let mid = (Weights.min_weight + Weights.max_weight) / 2 in
  let w = Array.make (Graph.arc_count inst.graph) mid in
  let eval =
    Evaluate.evaluate inst.graph ~wh:w ~wl:w ~th:inst.th ~tl:inst.tl
  in
  Evaluate.avg_utilization eval

let scale_to_utilization inst ~target =
  if target <= 0. then invalid_arg "Scenario.scale_to_utilization: bad target";
  let current = reference_avg_utilization inst in
  let factor = target /. current in
  {
    inst with
    th = Matrix.scale inst.th factor;
    tl = Matrix.scale inst.tl factor;
  }

let problem inst ~model =
  Dtr_core.Problem.create ~graph:inst.graph ~th:inst.th ~tl:inst.tl ~model
