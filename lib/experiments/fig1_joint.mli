(** §3.3.1's worked example: on the 3-node triangle, a joint cost
    [J = α Φ_H + Φ_L] flips from the lexicographic solution to a
    priority-inverting one between [α = 35] and [α = 30].

    The runner exhaustively enumerates STR weight settings on the
    triangle (the space is tiny) and reports, for each α, the
    minimizing routing's [Φ_H] and [Φ_L] — reproducing the paper's
    [Φ_H = 1/3, Φ_L = 64/9] vs [Φ_H = 1/2, Φ_L = 4/3] numbers. *)

val run : alphas:float list -> Dtr_util.Table.t
(** One row per α, plus a lexicographic-optimum reference row. *)

val optimum_for_alpha : alpha:float -> float * float
(** [(Φ_H, Φ_L)] of the joint-cost optimum (exhaustive).  Exposed for
    tests. *)
