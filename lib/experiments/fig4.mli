(** Fig. 4: impact of the high-priority traffic share [f] on the
    L-cost ratio (random topology, load-based cost, [k = 10%]).
    Expected: [R_L] grows with [f]. *)

val run :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?targets:float list ->
  ?fractions:float list ->
  unit ->
  Dtr_util.Table.t
(** Columns: measured utilization, then one [R_L] column per
    fraction (defaults 20% and 40%). *)
