module Table = Dtr_util.Table
module Objective = Dtr_routing.Objective
module Highpri = Dtr_traffic.Highpri

let run ?cfg ?(seed = 47) ?(targets = [ 0.4; 0.5; 0.6; 0.7; 0.8 ]) ~model () =
  let sweeps =
    List.map
      (fun (name, placement) ->
        let spec =
          {
            Scenario.topology = Scenario.Power_law;
            fraction = 0.20;
            hp = Scenario.Sinks { sinks = 3; density = 0.10; placement };
            seed;
          }
        in
        (name, Compare.sweep ?cfg spec ~model ~targets))
      [ ("Uniform", Highpri.Uniform); ("Local", Highpri.Local) ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig 8: sink model, Uniform vs Local clients (power-law, %s cost, f=20%%, k=10%%)"
           (Objective.model_name model))
      ~columns:
        ("target-util"
        :: List.map (fun (name, _) -> Printf.sprintf "RL (%s)" name) sweeps)
  in
  List.iteri
    (fun i target ->
      let cells =
        List.map
          (fun (_, points) ->
            let p = List.nth points i in
            Printf.sprintf "%.2f" p.Compare.rl)
          sweeps
      in
      Table.add_row table (Printf.sprintf "%.2f" target :: cells))
    targets;
  table
