module Table = Dtr_util.Table
module Graph = Dtr_graph.Graph
module Objective = Dtr_routing.Objective
module Evaluate = Dtr_routing.Evaluate
module Problem = Dtr_core.Problem
module Sim = Dtr_netsim.Sim
module Prng = Dtr_util.Prng

let run ?cfg ?(seed = 61) ?(target_util = 0.5) ?sim_config () =
  let sim_config =
    match sim_config with Some c -> c | None -> Sim.default_config
  in
  let spec =
    {
      Scenario.topology = Scenario.Isp;
      fraction = 0.30;
      hp = Scenario.Random_density 0.10;
      seed;
    }
  in
  let inst = Scenario.make spec in
  let inst = Scenario.scale_to_utilization inst ~target:target_util in
  let problem = Scenario.problem inst ~model:Objective.Load in
  let cfg = match cfg with Some c -> c | None -> Dtr_core.Search_config.quick in
  let report = Dtr_core.Dtr_search.run (Prng.create (seed + 2)) cfg problem in
  let sol = report.Dtr_core.Dtr_search.best in
  let eval = sol.Problem.result.Objective.eval in
  let predicted_util = Evaluate.utilization eval in
  let sim =
    Sim.run inst.Scenario.graph ~wh:sol.Problem.wh ~wl:sol.Problem.wl
      ~th:inst.Scenario.th ~tl:inst.Scenario.tl sim_config
  in
  let abs_err =
    Array.mapi
      (fun i p -> Float.abs (p -. sim.Sim.link_utilization.(i)))
      predicted_util
  in
  let table =
    Table.create
      ~title:"Validation: flow-level model vs packet-level simulation (ISP, DTR weights)"
      ~columns:[ "metric"; "flow-level"; "packet-level" ]
  in
  Table.add_row table
    [
      "avg link utilization";
      Printf.sprintf "%.4f" (Dtr_util.Stats.mean predicted_util);
      Printf.sprintf "%.4f" (Dtr_util.Stats.mean sim.Sim.link_utilization);
    ];
  Table.add_row table
    [
      "max link utilization";
      Printf.sprintf "%.4f" (Array.fold_left Float.max 0. predicted_util);
      Printf.sprintf "%.4f"
        (Array.fold_left Float.max 0. sim.Sim.link_utilization);
    ];
  Table.add_row table
    [
      "mean abs per-arc util error";
      "-";
      Printf.sprintf "%.4f" (Dtr_util.Stats.mean abs_err);
    ];
  Table.add_row table
    [
      "HP packets delivered";
      "-";
      string_of_int sim.Sim.high.Sim.delivered;
    ];
  Table.add_row table
    [
      "HP mean delay (ms)";
      "-";
      Printf.sprintf "%.3f" sim.Sim.high.Sim.mean_delay;
    ];
  Table.add_row table
    [
      "LP mean delay (ms)";
      "-";
      Printf.sprintf "%.3f" sim.Sim.low.Sim.mean_delay;
    ];
  table
