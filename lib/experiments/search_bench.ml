(* Large-tier search benchmark: run the STR and DTR weight searches on
   one {!Dtr_topology.Large} preset under a wall-clock budget and
   report search-throughput figures — time to first accepted
   improvement and iterations per second — next to the search outcome.

   Everything except the timing columns (ttfi_s, elapsed_s,
   iters_per_sec) is deterministic in (preset, seed, cfg, model) for a
   run that is never stopped; under a budget the iteration counts
   depend on the machine, which is the point of the bench.  The PRNG
   derivation matches {!Compare.run_point} (root from
   [seed + spec.seed * 7919], STR stream split first), so an unstopped
   run reproduces the comparison's trajectories exactly. *)

module Prng = Dtr_util.Prng
module Lexico = Dtr_cost.Lexico
module Graph = Dtr_graph.Graph
module Large = Dtr_topology.Large
module Problem = Dtr_core.Problem
module Str_search = Dtr_core.Str_search
module Dtr_search = Dtr_core.Dtr_search
module Trace = Dtr_core.Trace

let rel_tol = 1e-9

type row = {
  preset : string;
  algo : string;
  nodes : int;
  arcs : int;
  iterations : int;
  improvements : int;
  evaluations : int;
  memo_hits : int;
  memo_misses : int;
  ttfi_s : float option;
  elapsed_s : float;
  iters_per_sec : float;
  objective : Lexico.t;
  stopped_early : bool;
}

let default_util = 0.6

let spec ?(fraction = 0.30) ?(density = 0.10) ~seed p =
  {
    Scenario.topology = Scenario.Large p;
    fraction;
    hp = Scenario.Random_density density;
    seed;
  }

(* Shared measurement scaffolding for one search run: iteration
   counter, wall clock, budget-stop closure and first-improvement
   detection against the starting objective. *)
type meter = {
  t0 : float;
  iters : int ref;
  ttfi : float option ref;
  hit_budget : bool ref;
  stop : (unit -> bool) option;
  o0 : Lexico.t;
}

let meter ?time_budget o0 =
  let t0 = Unix.gettimeofday () in
  let hit_budget = ref false in
  let stop =
    match time_budget with
    | None -> None
    | Some b ->
        Some
          (fun () ->
            let over = Unix.gettimeofday () -. t0 > b in
            if over then hit_budget := true;
            over)
  in
  { t0; iters = ref 0; ttfi = ref None; hit_budget; stop; o0 }

let observe m best =
  incr m.iters;
  if !(m.ttfi) = None && Lexico.lt ~rel_tol best m.o0 then
    m.ttfi := Some (Unix.gettimeofday () -. m.t0)

let finish m p g ~algo ~iterations ~improvements ~evaluations ~memo_hits
    ~memo_misses ~objective =
  let elapsed = Unix.gettimeofday () -. m.t0 in
  {
    preset = p.Large.name;
    algo;
    nodes = Graph.node_count g;
    arcs = Graph.arc_count g;
    iterations;
    improvements;
    evaluations;
    memo_hits;
    memo_misses;
    ttfi_s = !(m.ttfi);
    elapsed_s = elapsed;
    iters_per_sec =
      (if elapsed > 0. then float_of_int iterations /. elapsed else 0.);
    objective;
    stopped_early = !(m.hit_budget);
  }

let run ?(cfg = Dtr_core.Search_config.quick) ?(seed = 1) ?time_budget
    ?str_iters ?w0 ?fraction ?density ?(util = default_util)
    ?(progress = fun _ -> ()) ?(trace = Trace.disabled) ~model p =
  let spec = spec ?fraction ?density ~seed p in
  progress
    (Printf.sprintf "%s: generating topology + demand (%d nodes)..."
       p.Large.name (Large.node_count p));
  let inst = Scenario.make spec in
  let inst = Scenario.scale_to_utilization inst ~target:util in
  let problem = Scenario.problem inst ~model in
  let g = inst.Scenario.graph in
  (* Same derivation as Compare.run_point: unstopped trajectories are
     identical to the comparison path's. *)
  let root = Prng.create (seed + (inst.Scenario.spec.Scenario.seed * 7919)) in
  let str_rng = Prng.split root in
  let dtr_rng = Prng.split root in
  let weight_rng = Prng.split root in
  (* Default start: seeded random weights (as in Large_bench's probe
     scenario), NOT the searches' mid-range uniform default — on the
     full-mesh-core presets uniform weights shortest-hop-route every
     PoP pair over its direct core link, which is already locally
     optimal, so a mid start measures no time-to-first-improvement at
     all. *)
  let wh0, wl0 =
    match w0 with
    | Some (wh, wl) -> (wh, wl)
    | None ->
        ( Dtr_routing.Weights.random weight_rng g,
          Dtr_routing.Weights.random weight_rng g )
  in
  let w0 = Some (wh0, wl0) in
  (* Each search gets the full budget, measured from its own start. *)
  progress (Printf.sprintf "%s: STR search..." p.Large.name);
  let str_row =
    let o0 = Problem.objective (Problem.eval_str problem ~w:wh0) in
    let m = meter ?time_budget o0 in
    let r =
      Str_search.run ?w0:(Option.map fst w0) ?iters:str_iters ?stop:m.stop
        ~on_progress:(fun _ best -> observe m best)
        ~trace str_rng cfg problem
    in
    finish m p g ~algo:"str" ~iterations:!(m.iters)
      ~improvements:r.Str_search.improvements
      ~evaluations:r.Str_search.evaluations
      ~memo_hits:r.Str_search.memo_hits ~memo_misses:r.Str_search.memo_misses
      ~objective:r.Str_search.objective
  in
  progress
    (Printf.sprintf "%s: STR done (%d iterations, %d improvements, %.1f s)"
       p.Large.name str_row.iterations str_row.improvements str_row.elapsed_s);
  progress (Printf.sprintf "%s: DTR search..." p.Large.name);
  let dtr_row =
    let o0 = Problem.objective (Problem.eval_dtr problem ~wh:wh0 ~wl:wl0) in
    let m = meter ?time_budget o0 in
    let r =
      Dtr_search.run ?w0 ?stop:m.stop
        ~on_progress:(fun pr -> observe m pr.Dtr_search.best_objective)
        ~trace dtr_rng cfg problem
    in
    finish m p g ~algo:"dtr" ~iterations:!(m.iters)
      ~improvements:r.Dtr_search.improvements
      ~evaluations:r.Dtr_search.evaluations
      ~memo_hits:r.Dtr_search.memo_hits ~memo_misses:r.Dtr_search.memo_misses
      ~objective:r.Dtr_search.objective
  in
  progress
    (Printf.sprintf "%s: DTR done (%d iterations, %d improvements, %.1f s)"
       p.Large.name dtr_row.iterations dtr_row.improvements dtr_row.elapsed_s);
  [ str_row; dtr_row ]

let table rows =
  let t =
    Dtr_util.Table.create ~title:"large-tier search benchmark"
      ~columns:
        [
          "preset"; "algo"; "nodes"; "arcs"; "iters"; "improved"; "evals";
          "memo h/m"; "ttfi s"; "elapsed s"; "iters/s"; "objective";
        ]
  in
  List.iter
    (fun r ->
      Dtr_util.Table.add_row t
        [
          r.preset;
          r.algo;
          string_of_int r.nodes;
          string_of_int r.arcs;
          string_of_int r.iterations;
          string_of_int r.improvements;
          string_of_int r.evaluations;
          Printf.sprintf "%d/%d" r.memo_hits r.memo_misses;
          (match r.ttfi_s with
          | Some s -> Printf.sprintf "%.2f" s
          | None -> "-");
          Printf.sprintf "%.1f" r.elapsed_s;
          Printf.sprintf "%.1f" r.iters_per_sec;
          Printf.sprintf "%.6g" r.objective.Lexico.primary;
        ])
    rows;
  t

let to_json ~seed rows =
  let row_json r =
    Printf.sprintf
      "    { \"preset\": %S, \"algo\": %S, \"nodes\": %d, \"arcs\": %d,\n\
      \      \"iterations\": %d, \"improvements\": %d, \"evaluations\": %d,\n\
      \      \"memo_hits\": %d, \"memo_misses\": %d,\n\
      \      \"ttfi_s\": %s, \"elapsed_s\": %.3f, \"iters_per_sec\": %.2f,\n\
      \      \"objective_primary\": %.9g, \"objective_secondary\": %.9g,\n\
      \      \"stopped_early\": %b }"
      r.preset r.algo r.nodes r.arcs r.iterations r.improvements r.evaluations
      r.memo_hits r.memo_misses
      (match r.ttfi_s with
      | Some s -> Printf.sprintf "%.3f" s
      | None -> "null")
      r.elapsed_s r.iters_per_sec r.objective.Lexico.primary
      r.objective.Lexico.secondary r.stopped_early
  in
  Printf.sprintf
    "{\n\
    \  \"benchmark\": \"large-search\",\n\
    \  \"manifest\": %s,\n\
    \  \"seed\": %d,\n\
    \  \"rows\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (Large_bench.stamp ~seed) seed
    (String.concat ",\n" (List.map row_json rows))
