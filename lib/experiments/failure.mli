(** Extension experiment (not in the paper): robustness of optimized
    weight settings to single-link failures.

    OSPF/MT-OSPF reacts to a failure by re-running SPF on the surviving
    topology with the {e same} weights — no re-optimization.  This
    experiment optimizes STR and DTR weights on the ISP backbone, then
    fails each physical (bidirectional) link in turn and re-evaluates
    both classes on the reduced graph.  Reported per scheme: the
    no-failure cost and the mean and worst post-failure costs.

    Failures that disconnect the network are skipped (and counted). *)

val run :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?target_util:float ->
  unit ->
  Dtr_util.Table.t

val fail_link :
  Dtr_graph.Graph.t ->
  arc:int ->
  (Dtr_graph.Graph.t * int array) option
(** Remove the physical link containing [arc] (both directions).
    Returns the reduced graph and, for each surviving arc, its original
    arc id (for weight remapping) — or [None] if the reduced graph is
    no longer strongly connected.  Exposed for tests. *)
