(** Extension experiment (not in the paper): robustness of optimized
    weight settings to single-link failures.

    OSPF/MT-OSPF reacts to a failure by re-running SPF on the surviving
    topology with the {e same} weights — no re-optimization.  This
    experiment optimizes STR and DTR weights on the ISP backbone, then
    fails each physical (bidirectional) link in turn and re-evaluates
    both classes on the reduced graph.  Reported per scheme: the
    no-failure cost and the mean and worst post-failure costs.

    Failures that disconnect the network are skipped (and counted).

    The per-link sweep is embarrassingly parallel; [?jobs] sets the
    domain-pool width (default 1 = sequential).  Costs are collected by
    link index, so the table is byte-identical for every [jobs]. *)

val run :
  ?cfg:Dtr_core.Search_config.t ->
  ?jobs:int ->
  ?seed:int ->
  ?target_util:float ->
  unit ->
  Dtr_util.Table.t

val fail_link :
  Dtr_graph.Graph.t ->
  arc:int ->
  (Dtr_graph.Graph.t * int array) option
(** Remove the physical link containing [arc] (both directions).
    Returns the reduced graph and, for each surviving arc, its original
    arc id (for weight remapping) — or [None] if the reduced graph is
    no longer strongly connected.  Exposed for tests. *)

val post_failure_costs :
  ?pool:Dtr_util.Pool.t ->
  Scenario.instance ->
  wh:int array ->
  wl:int array ->
  Dtr_cost.Lexico.t list * int
(** Fail every physical link of the instance's graph in turn and
    re-evaluate [(wh, wl)] on each surviving topology, on [pool] if
    given.  Returns the per-link objectives in link-index order plus
    the number of disconnecting (skipped) failures.  Exposed for
    tests. *)
