(** Extension experiment (not in the paper): robustness of optimized
    weight settings to single-link failures.

    OSPF/MT-OSPF reacts to a failure by re-running SPF on the surviving
    topology with the {e same} weights — no re-optimization.  This
    experiment optimizes STR and DTR weights on the ISP backbone, then
    fails each physical (bidirectional) link in turn and re-prices both
    classes on the surviving topology.  Reported per scheme: the
    no-failure cost, the mean over finite post-failure costs, the worst
    post-failure cost, and the disconnecting-failure count.

    Failures that sever positive demand are {e not} skipped: they are
    priced as infinite outcomes (with their severed-pair counts), so
    the worst-case column reads [inf] whenever the topology has a
    demand-carrying cut link.  The sweep itself runs on the delta
    engine ({!Dtr_routing.Failure_sweep.sweep}): each failure is an
    arc-suppression probe against a live evaluation context, patching
    only the destinations whose shortest-path DAGs used the failed
    link.

    The per-link sweep is embarrassingly parallel; [?jobs] sets the
    domain-pool width (default 1 = sequential).  Outcomes are collected
    by link index, so the table is byte-identical for every [jobs]. *)

val run :
  ?cfg:Dtr_core.Search_config.t ->
  ?jobs:int ->
  ?seed:int ->
  ?target_util:float ->
  unit ->
  Dtr_util.Table.t

val fail_link :
  Dtr_graph.Graph.t ->
  link:int * int ->
  Dtr_graph.Graph.t * int array
(** {!Dtr_routing.Failure_sweep.fail_link}: remove exactly the
    undirected link [(a, b)] — arc [a] and its reverse twin [b] as
    paired by {!Dtr_graph.Graph.undirected_link_pairs}, never any
    parallel arcs between the same endpoints.  Returns the reduced
    graph and, for each surviving arc, its original arc id (for weight
    remapping).  The reduced graph may be disconnected; callers decide
    what that means.  Exposed for tests. *)

val post_failure_costs :
  ?pool:Dtr_util.Pool.t ->
  ?model:Dtr_routing.Objective.model ->
  Scenario.instance ->
  wh:int array ->
  wl:int array ->
  Dtr_routing.Failure_sweep.outcome array
(** Price every single-link failure of the instance's graph against
    [(wh, wl)] on the delta engine, on [pool] if given (default model:
    [Load]).  One outcome per physical link in
    {!Dtr_graph.Graph.undirected_link_pairs} order — disconnecting
    failures appear as infinite-cost outcomes with their severed-pair
    counts.  Identical for every pool width.  Exposed for tests. *)
