(** Table 1: low-priority performance of ε-relaxed STR (§5.3.1) vs
    DTR, load-based cost, [f = 30%], [k = 10%].

    For each topology and each network load, reports
    [R_L] (strict STR / DTR), [R_{L,5%}] and [R_{L,30%}] (relaxed STR
    / DTR).  Expected: relaxation narrows but never closes the gap. *)

val run :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?targets:float list ->
  ?epsilons:float list ->
  topology:Scenario.topology_kind ->
  unit ->
  Dtr_util.Table.t
