module Table = Dtr_util.Table
module Objective = Dtr_routing.Objective
module Evaluate = Dtr_routing.Evaluate
module Problem = Dtr_core.Problem
module Lexico = Dtr_cost.Lexico

let run ?cfg ?(seed = 53) ?(target_util = 0.5)
    ?(thetas = [ 25.; 27.5; 30.; 32.5; 35. ]) () =
  let spec =
    {
      Scenario.topology = Scenario.Random_topo;
      fraction = 0.30;
      hp = Scenario.Random_density 0.30;
      seed;
    }
  in
  let inst = Scenario.make spec in
  let table =
    Table.create
      ~title:
        "Fig 9: SLA-bound sweep (random, f=30%, k=30%, avg util ~ 0.5)"
      ~columns:
        [
          "theta (ms)";
          "violations STR";
          "violations DTR";
          "PhiL STR";
          "PhiL DTR";
          "max-util STR";
          "max-util DTR";
        ]
  in
  List.iter
    (fun theta ->
      let model = Objective.Sla { Dtr_cost.Sla.default with theta } in
      let point = Compare.run_point ?cfg inst ~model ~target_util in
      let str_sol = point.Compare.str.Dtr_core.Str_search.best in
      let dtr_sol = point.Compare.dtr.Dtr_core.Dtr_search.best in
      let violations (sol : Problem.solution) =
        match sol.Problem.result.Objective.sla with
        | Some s -> s.Evaluate.violations
        | None -> 0
      in
      Table.add_row table
        [
          Printf.sprintf "%.1f" theta;
          string_of_int (violations str_sol);
          string_of_int (violations dtr_sol);
          Printf.sprintf "%.3g"
            (Problem.objective str_sol).Lexico.secondary;
          Printf.sprintf "%.3g"
            (Problem.objective dtr_sol).Lexico.secondary;
          Printf.sprintf "%.3f"
            (Evaluate.max_utilization str_sol.Problem.result.Objective.eval);
          Printf.sprintf "%.3f"
            (Evaluate.max_utilization dtr_sol.Problem.result.Objective.eval);
        ])
    thetas;
  table
