module Table = Dtr_util.Table
module Objective = Dtr_routing.Objective
module Lexico = Dtr_cost.Lexico
module Str_search = Dtr_core.Str_search

let run ?cfg ?(seed = 59) ?(targets = [ 0.45; 0.55; 0.65; 0.75; 0.85 ])
    ?(epsilons = [ 0.05; 0.30 ]) ~topology () =
  let spec =
    {
      Scenario.topology;
      fraction = 0.30;
      hp = Scenario.Random_density 0.10;
      seed;
    }
  in
  let points = Compare.sweep ?cfg spec ~model:Objective.Load ~targets in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Table 1: relaxed STR vs DTR, %s topology (load cost, f=30%%, k=10%%)"
           (Scenario.topology_name topology))
      ~columns:
        ("AD (avg util)" :: "RL"
        :: List.map
             (fun e -> Printf.sprintf "RL,%.0f%%" (e *. 100.))
             epsilons)
  in
  List.iter
    (fun p ->
      let dtr_phi_l = p.Compare.dtr.Dtr_core.Dtr_search.objective.Lexico.secondary in
      let relaxed_cells =
        List.map
          (fun epsilon ->
            match Str_search.relaxed_best p.Compare.str ~epsilon with
            | None -> "n/a"
            | Some a ->
                Printf.sprintf "%.2f"
                  (Compare.ratio ~num:a.Str_search.phi_l ~den:dtr_phi_l))
          epsilons
      in
      Table.add_row table
        (Printf.sprintf "%.2f" p.Compare.measured_util
        :: Printf.sprintf "%.2f" p.Compare.rl
        :: relaxed_cells))
    points;
  table
