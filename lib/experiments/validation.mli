(** Extra experiment (not in the paper): validate the flow-level model
    the whole evaluation rests on against the packet-level simulator.

    A DTR-optimized ISP scenario is replayed packet-by-packet; the
    table compares predicted vs simulated per-arc utilization (mean
    absolute error) and per-class mean delays. *)

val run :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?target_util:float ->
  ?sim_config:Dtr_netsim.Sim.config ->
  unit ->
  Dtr_util.Table.t
