(** Real-ISP-scale benchmark tier: 1k-10k-node presets, demand-only
    evaluation contexts, and probe-latency measurement.

    Each {!row} is one {!Dtr_topology.Large} preset taken through the
    full pipeline: topology generation, a sparse PoP-level gravity
    matrix ({!Dtr_traffic.Gravity.generate_pop}) with the paper's
    [f = 0.30] / [k = 0.10] high-priority mix on top, a
    {!Dtr_routing.Eval_ctx.Demand}-mode context (shortest-path DAGs
    only for PoP destinations — what makes 10k nodes fit), then timed
    single-weight-change probes through the delta engine.  Scenario
    contents are deterministic in (preset, seed); only the timings and
    the RSS gauge vary by machine. *)

type row = {
  preset : string;
  nodes : int;
  arcs : int;
  pops : int;
  demand_pairs : int;  (** positive entries across both class matrices *)
  gen_s : float;  (** topology + traffic + weights generation *)
  full_eval_s : float;  (** demand-mode [Eval_ctx.create]: SPF + loads + Φ *)
  probe_ns_p50 : float;
  probe_ns_p90 : float;
  probe_ns_p99 : float;
  probe_evals_per_sec : float;  (** [1e9 / probe_ns_p50] *)
  peak_rss_kb : int;
      (** process high-water mark after this row; per-row attribution
          holds because {!run} orders rows by ascending node count *)
}

val default_probes : int
(** Timed probes per preset (200). *)

val run_preset : ?probes:int -> seed:int -> Dtr_topology.Large.preset -> row

val run :
  ?probes:int ->
  ?progress:(string -> unit) ->
  seed:int ->
  string list ->
  row list
(** [run ~seed names] benchmarks the named presets in ascending
    node-count order (so the monotone peak-RSS gauge attributes to the
    row that grew it).  [progress] receives one line before and after
    each preset.  @raise Invalid_argument on an unknown preset name. *)

val table : row list -> Dtr_util.Table.t

val stamp : seed:int -> string
(** The shared provenance stamp (revision, toolchain, machine shape,
    peak RSS at stamp time) embedded in the bench JSON documents. *)

val to_json : seed:int -> probes:int -> row list -> string
(** The [BENCH_large.json] document: provenance stamp plus one entry
    per row. *)
