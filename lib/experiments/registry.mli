(** Name-indexed registry of every reproduced figure/table, shared by
    the CLI ([dtr experiment <name>]) and the bench harness. *)

type experiment = {
  name : string;  (** e.g. "fig2a", "table1-isp" *)
  description : string;
  run :
    cfg:Dtr_core.Search_config.t -> seed:int -> Dtr_util.Table.t list;
}

val all : experiment list
(** Every experiment, in paper order. *)

val find : string -> experiment option

val names : unit -> string list
