(** Name-indexed registry of every reproduced figure/table, shared by
    the CLI ([dtr experiment <name>]) and the bench harness. *)

type experiment = {
  name : string;  (** e.g. "fig2a", "table1-isp" *)
  description : string;
  run :
    cfg:Dtr_core.Search_config.t -> seed:int -> Dtr_util.Table.t list;
}

val all : experiment list
(** Every experiment, in paper order. *)

val find : string -> experiment option

val names : unit -> string list

val run_all :
  ?jobs:int ->
  cfg:Dtr_core.Search_config.t ->
  seed:int ->
  experiment list ->
  (experiment * Dtr_util.Table.t list) list
(** Run the given experiments, [jobs] at a time on a domain pool
    (default 1 = sequential, no domain spawned), returning each
    experiment's tables in input order.  Tables are built purely, so
    the results — and anything printed from them in order — are
    identical for every [jobs] value. *)
