module Table = Dtr_util.Table
module Prng = Dtr_util.Prng
module Pool = Dtr_util.Pool
module Graph = Dtr_graph.Graph
module Lexico = Dtr_cost.Lexico
module Objective = Dtr_routing.Objective
module Eval_ctx = Dtr_routing.Eval_ctx
module Failure_sweep = Dtr_routing.Failure_sweep
module Problem = Dtr_core.Problem
module Search_config = Dtr_core.Search_config

let fail_link = Failure_sweep.fail_link

let post_failure_costs ?pool ?(model = Objective.Load) inst ~wh ~wl =
  let ctx =
    Eval_ctx.create inst.Scenario.graph ~weights:[| wh; wl |]
      ~matrices:[| inst.Scenario.th; inst.Scenario.tl |]
  in
  Failure_sweep.sweep ?pool ~model ~th:inst.Scenario.th ctx

let run ?(cfg = Search_config.quick) ?(jobs = 1) ?(seed = 79)
    ?(target_util = 0.55) () =
  let spec =
    {
      Scenario.topology = Scenario.Isp;
      fraction = 0.30;
      hp = Scenario.Random_density 0.10;
      seed;
    }
  in
  let inst = Scenario.make spec in
  let inst = Scenario.scale_to_utilization inst ~target:target_util in
  let problem = Scenario.problem inst ~model:Objective.Load in
  let str = Dtr_core.Str_search.run (Prng.create (seed + 1)) cfg problem in
  let dtr = Dtr_core.Dtr_search.run (Prng.create (seed + 2)) cfg problem in
  let table =
    Table.create
      ~title:
        "Extension: single-link failure robustness without re-optimization (ISP, load cost)"
      ~columns:
        [
          "scheme";
          "class";
          "no-failure cost";
          "mean finite post-failure";
          "worst post-failure";
          "disconnecting";
        ]
  in
  Pool.with_pool ~jobs @@ fun pool ->
  let describe name ~wh ~wl (baseline : Lexico.t) =
    let outcomes = post_failure_costs ~pool inst ~wh ~wl in
    let finite =
      Array.to_list outcomes
      |> List.filter Failure_sweep.is_finite
      |> List.map (fun (o : Failure_sweep.outcome) -> o.Failure_sweep.cost)
    in
    let infinite = Failure_sweep.infinite_count outcomes in
    let severed =
      Array.fold_left
        (fun n (o : Failure_sweep.outcome) ->
          n + o.Failure_sweep.unreachable_pairs)
        0 outcomes
    in
    let primaries = Array.of_list (List.map (fun c -> c.Lexico.primary) finite) in
    let secondaries =
      Array.of_list (List.map (fun c -> c.Lexico.secondary) finite)
    in
    let disco =
      if infinite = 0 then "0"
      else Printf.sprintf "%d (%d pairs severed)" infinite severed
    in
    (* A disconnecting failure makes the worst-case cost infinite for
       every weight setting — the honest number, not a skip. *)
    let row klass base arr =
      Table.add_row table
        [
          name;
          klass;
          Printf.sprintf "%.4g" base;
          Printf.sprintf "%.4g" (Dtr_util.Stats.mean arr);
          (if infinite > 0 then "inf"
           else Printf.sprintf "%.4g" (Array.fold_left Float.max 0. arr));
          disco;
        ]
    in
    row "high" baseline.Lexico.primary primaries;
    row "low" baseline.Lexico.secondary secondaries
  in
  let str_sol = str.Dtr_core.Str_search.best in
  let dtr_sol = dtr.Dtr_core.Dtr_search.best in
  describe "STR" ~wh:str_sol.Problem.wh ~wl:str_sol.Problem.wl
    str.Dtr_core.Str_search.objective;
  describe "DTR" ~wh:dtr_sol.Problem.wh ~wl:dtr_sol.Problem.wl
    dtr.Dtr_core.Dtr_search.objective;
  table
