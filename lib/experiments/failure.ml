module Table = Dtr_util.Table
module Prng = Dtr_util.Prng
module Pool = Dtr_util.Pool
module Graph = Dtr_graph.Graph
module Lexico = Dtr_cost.Lexico
module Objective = Dtr_routing.Objective
module Problem = Dtr_core.Problem
module Search_config = Dtr_core.Search_config

let fail_link g ~arc =
  if arc < 0 || arc >= Graph.arc_count g then
    invalid_arg "Failure.fail_link: arc out of range";
  let target = Graph.arc g arc in
  let drop (a : Graph.arc) =
    (a.Graph.src = target.Graph.src && a.Graph.dst = target.Graph.dst)
    || (a.Graph.src = target.Graph.dst && a.Graph.dst = target.Graph.src)
  in
  let survivors = ref [] and mapping = ref [] in
  Array.iteri
    (fun id a ->
      if not (drop a) then begin
        survivors := a :: !survivors;
        mapping := id :: !mapping
      end)
    (Graph.arcs g);
  let reduced = Graph.build ~n:(Graph.node_count g) (List.rev !survivors) in
  if Graph.is_strongly_connected reduced then
    Some (reduced, Array.of_list (List.rev !mapping))
  else None

let remap_weights w mapping = Array.map (fun orig -> w.(orig)) mapping

(* Each link failure is an independent evaluation on its own reduced
   graph, so the sweep parallelizes trivially: results are collected by
   link index, which keeps the cost list (and hence the table) identical
   for every [jobs] value. *)
let post_failure_costs ?pool inst ~wh ~wl =
  let g = inst.Scenario.graph in
  let links = Graph.undirected_link_pairs g in
  let eval_link i =
    let a, _ = links.(i) in
    match fail_link g ~arc:a with
    | None -> None
    | Some (reduced, mapping) ->
        let wh' = remap_weights wh mapping in
        let wl' = remap_weights wl mapping in
        let r =
          Objective.evaluate Objective.Load reduced ~wh:wh' ~wl:wl'
            ~th:inst.Scenario.th ~tl:inst.Scenario.tl
        in
        Some r.Objective.objective
  in
  let outcomes =
    match pool with
    | Some p -> Pool.map p (Array.length links) ~f:eval_link
    | None ->
        (* Explicit ascending loop: Array.init's order is unspecified. *)
        let out = Array.make (Array.length links) None in
        for i = 0 to Array.length links - 1 do
          out.(i) <- eval_link i
        done;
        out
  in
  let costs = Array.fold_right (fun o acc ->
      match o with Some c -> c :: acc | None -> acc)
      outcomes []
  in
  let skipped =
    Array.fold_left
      (fun n o -> match o with None -> n + 1 | Some _ -> n)
      0 outcomes
  in
  (costs, skipped)

let run ?(cfg = Search_config.quick) ?(jobs = 1) ?(seed = 79)
    ?(target_util = 0.55) () =
  let spec =
    {
      Scenario.topology = Scenario.Isp;
      fraction = 0.30;
      hp = Scenario.Random_density 0.10;
      seed;
    }
  in
  let inst = Scenario.make spec in
  let inst = Scenario.scale_to_utilization inst ~target:target_util in
  let problem = Scenario.problem inst ~model:Objective.Load in
  let str = Dtr_core.Str_search.run (Prng.create (seed + 1)) cfg problem in
  let dtr = Dtr_core.Dtr_search.run (Prng.create (seed + 2)) cfg problem in
  let table =
    Table.create
      ~title:
        "Extension: single-link failure robustness without re-optimization (ISP, load cost)"
      ~columns:
        [ "scheme"; "class"; "no-failure cost"; "mean post-failure"; "worst post-failure" ]
  in
  Pool.with_pool ~jobs @@ fun pool ->
  let describe name ~wh ~wl (baseline : Lexico.t) =
    let costs, skipped = post_failure_costs ~pool inst ~wh ~wl in
    let primaries = Array.of_list (List.map (fun c -> c.Lexico.primary) costs) in
    let secondaries = Array.of_list (List.map (fun c -> c.Lexico.secondary) costs) in
    let row klass base arr =
      Table.add_row table
        [
          name;
          klass;
          Printf.sprintf "%.4g" base;
          Printf.sprintf "%.4g" (Dtr_util.Stats.mean arr);
          Printf.sprintf "%.4g" (Array.fold_left Float.max 0. arr);
        ]
    in
    row "high" baseline.Lexico.primary primaries;
    row "low" baseline.Lexico.secondary secondaries;
    skipped
  in
  let str_sol = str.Dtr_core.Str_search.best in
  let dtr_sol = dtr.Dtr_core.Dtr_search.best in
  let s1 =
    describe "STR" ~wh:str_sol.Problem.wh ~wl:str_sol.Problem.wl
      str.Dtr_core.Str_search.objective
  in
  let s2 =
    describe "DTR" ~wh:dtr_sol.Problem.wh ~wl:dtr_sol.Problem.wl
      dtr.Dtr_core.Dtr_search.objective
  in
  if s1 + s2 > 0 then
    Table.add_row table
      [
        "(skipped)";
        "-";
        Printf.sprintf "%d disconnecting failures" (s1 + s2);
        "-";
        "-";
      ];
  table
