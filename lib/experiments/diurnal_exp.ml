module Table = Dtr_util.Table
module Prng = Dtr_util.Prng
module Matrix = Dtr_traffic.Matrix
module Diurnal = Dtr_traffic.Diurnal
module Lexico = Dtr_cost.Lexico
module Objective = Dtr_routing.Objective
module Problem = Dtr_core.Problem
module Dtr_search = Dtr_core.Dtr_search
module Network = Dtr_mtospf.Network

let weight_churn old_w new_w =
  let changed = ref [] in
  Array.iteri (fun i w -> if w <> old_w.(i) then changed := i :: !changed) new_w;
  List.rev !changed

let run ?(cfg = Dtr_core.Search_config.quick) ?(seed = 97) ?(peak_util = 0.75)
    ?(hours = [ 0.; 4.; 8.; 12.; 16.; 20. ]) () =
  let spec =
    {
      Scenario.topology = Scenario.Isp;
      fraction = 0.30;
      hp = Scenario.Random_density 0.10;
      seed;
    }
  in
  let inst = Scenario.make spec in
  let inst = Scenario.scale_to_utilization inst ~target:peak_util in
  let g = inst.Scenario.graph in
  let snapshots =
    Diurnal.snapshots Diurnal.default ~hours ~th:inst.Scenario.th
      ~tl:inst.Scenario.tl
  in
  (* Strategy A: optimize once at the peak snapshot. *)
  let peak_problem =
    Problem.create ~graph:g ~th:inst.Scenario.th ~tl:inst.Scenario.tl
      ~model:Objective.Load
  in
  let static = Dtr_search.run (Prng.create (seed + 4)) cfg peak_problem in
  let static_sol = static.Dtr_search.best in
  (* Control plane carrying the static weights; re-optimizations flood
     their deltas into it. *)
  let net =
    Network.create g
      ~weight_sets:[| static_sol.Problem.wh; static_sol.Problem.wl |]
  in
  ignore (Network.flood net);
  let table =
    Table.create
      ~title:
        "Extension: diurnal demand - static peak weights vs per-period re-optimization (ISP)"
      ~columns:
        [
          "hour";
          "multiplier";
          "PhiL static";
          "PhiL reopt";
          "weights changed";
          "LSA messages";
        ]
  in
  let prev = ref (static_sol.Problem.wh, static_sol.Problem.wl) in
  List.iter
    (fun (hour, th_h, tl_h) ->
      let problem =
        Problem.create ~graph:g ~th:th_h ~tl:tl_h ~model:Objective.Load
      in
      let static_eval =
        Problem.eval_dtr problem ~wh:static_sol.Problem.wh
          ~wl:static_sol.Problem.wl
      in
      let reopt =
        Dtr_search.run
          ~w0:(Array.copy (fst !prev), Array.copy (snd !prev))
          (Prng.create (seed + 5 + int_of_float hour))
          cfg problem
      in
      let reopt_sol = reopt.Dtr_search.best in
      let changed_h = weight_churn (fst !prev) reopt_sol.Problem.wh in
      let changed_l = weight_churn (snd !prev) reopt_sol.Problem.wl in
      (* Flood the deltas through the MT-OSPF area. *)
      let messages = ref 0 in
      List.iter
        (fun arc ->
          let stats =
            Network.set_weight net ~topology:0 ~arc
              ~weight:reopt_sol.Problem.wh.(arc)
          in
          messages := !messages + stats.Network.messages)
        changed_h;
      List.iter
        (fun arc ->
          let stats =
            Network.set_weight net ~topology:1 ~arc
              ~weight:reopt_sol.Problem.wl.(arc)
          in
          messages := !messages + stats.Network.messages)
        changed_l;
      prev := (reopt_sol.Problem.wh, reopt_sol.Problem.wl);
      Table.add_row table
        [
          Printf.sprintf "%.0f" hour;
          Printf.sprintf "%.2f" (Diurnal.multiplier Diurnal.default ~hour);
          Printf.sprintf "%.4g" (Problem.objective static_eval).Lexico.secondary;
          Printf.sprintf "%.4g" reopt.Dtr_search.objective.Lexico.secondary;
          string_of_int (List.length changed_h + List.length changed_l);
          string_of_int !messages;
        ])
    snapshots;
  table
