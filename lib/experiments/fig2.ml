module Objective = Dtr_routing.Objective

let default_targets = function
  (* The paper plots 0.5-0.9; we add a 0.35 point so the light-load
     end of the increase-then-decrease pattern is visible. *)
  | Scenario.Random_topo -> [ 0.35; 0.5; 0.6; 0.7; 0.8; 0.9 ]
  | Scenario.Power_law -> [ 0.4; 0.5; 0.6; 0.7; 0.8 ]
  | Scenario.Isp | Scenario.Waxman | Scenario.Transit_stub
  | Scenario.Abilene | Scenario.Large _ ->
      [ 0.4; 0.5; 0.6; 0.7; 0.8 ]

let run ?cfg ?(seed = 11) ?targets ~topology ~model () =
  let targets =
    match targets with Some t -> t | None -> default_targets topology
  in
  let spec =
    {
      Scenario.topology;
      fraction = 0.30;
      hp = Scenario.Random_density 0.10;
      seed;
    }
  in
  let points = Compare.sweep ?cfg spec ~model ~targets in
  let title =
    Printf.sprintf "Fig 2: cost ratios, %s topology, %s cost (f=30%%, k=10%%)"
      (Scenario.topology_name topology)
      (Objective.model_name model)
  in
  Compare.points_table ~title points
