module Table = Dtr_util.Table
module Objective = Dtr_routing.Objective
module Evaluate = Dtr_routing.Evaluate
module Problem = Dtr_core.Problem
module Str_search = Dtr_core.Str_search
module Prng = Dtr_util.Prng

let sorted_h_utilization ?cfg ~seed ~target_util density =
  let spec =
    {
      Scenario.topology = Scenario.Random_topo;
      fraction = 0.30;
      hp = Scenario.Random_density density;
      seed;
    }
  in
  let inst = Scenario.make spec in
  let inst = Scenario.scale_to_utilization inst ~target:target_util in
  let problem = Scenario.problem inst ~model:Objective.Load in
  let cfg = match cfg with Some c -> c | None -> Dtr_core.Search_config.default in
  let report = Str_search.run (Prng.create (seed + 1)) cfg problem in
  let h_util =
    Evaluate.h_utilization report.Str_search.best.Problem.result.Objective.eval
  in
  Array.sort (fun a b -> Float.compare b a) h_util;
  h_util

let run ?cfg ?(seed = 41) ?(target_util = 0.6) ?(densities = [ 0.10; 0.30 ])
    ?(stride = 10) () =
  if stride < 1 then invalid_arg "Fig6.run: stride must be positive";
  let curves =
    List.map
      (fun k -> (k, sorted_h_utilization ?cfg ~seed ~target_util k))
      densities
  in
  let table =
    Table.create
      ~title:"Fig 6: sorted per-link H-utilization under STR (random, load cost, f=30%)"
      ~columns:
        ("link-rank"
        :: List.map
             (fun k -> Printf.sprintf "H-util (k=%.0f%%)" (k *. 100.))
             densities)
  in
  let len =
    List.fold_left (fun acc (_, c) -> min acc (Array.length c)) max_int curves
  in
  let rank = ref 0 in
  while !rank < len do
    Table.add_row table
      (string_of_int (!rank + 1)
      :: List.map (fun (_, c) -> Printf.sprintf "%.3f" c.(!rank)) curves);
    rank := !rank + stride
  done;
  (* Flatness summary: the paper reads "flatter" off the plot; the Gini
     coefficient quantifies it (lower = more even spread). *)
  Table.add_row table
    ("gini"
    :: List.map
         (fun (_, c) -> Printf.sprintf "%.3f" (Dtr_util.Stats.gini c))
         curves);
  table
