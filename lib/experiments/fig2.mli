(** Fig. 2: STR/DTR cost ratios vs average link utilization, for one
    topology and one cost model ([f = 30%], [k = 10%]).  Panels:
    (a–c) load-based on random / power-law / ISP, (d–f) SLA-based on
    the same three topologies. *)

val run :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?targets:float list ->
  topology:Scenario.topology_kind ->
  model:Dtr_routing.Objective.model ->
  unit ->
  Dtr_util.Table.t

val default_targets : Scenario.topology_kind -> float list
(** The x-range the paper uses for each topology. *)
