module Table = Dtr_util.Table
module Graph = Dtr_graph.Graph
module Objective = Dtr_routing.Objective
module Evaluate = Dtr_routing.Evaluate
module Problem = Dtr_core.Problem

let run ?cfg ?(seed = 43) ?(target_util = 0.5) ?(buckets = 5) () =
  if buckets < 1 then invalid_arg "Fig7.run: need at least one bucket";
  let spec =
    {
      Scenario.topology = Scenario.Random_topo;
      fraction = 0.30;
      hp = Scenario.Random_density 0.30;
      seed;
    }
  in
  let inst = Scenario.make spec in
  let model = Objective.Sla Dtr_cost.Sla.default in
  let point = Compare.run_point ?cfg inst ~model ~target_util in
  let g = inst.Scenario.graph in
  let delays = Graph.delays g in
  let str_util =
    Evaluate.utilization
      point.Compare.str.Dtr_core.Str_search.best.Problem.result.Objective.eval
  in
  let dtr_util =
    Evaluate.utilization
      point.Compare.dtr.Dtr_core.Dtr_search.best.Problem.result.Objective.eval
  in
  let dmin = Array.fold_left Float.min Float.infinity delays in
  let dmax = Array.fold_left Float.max Float.neg_infinity delays in
  let width = (dmax -. dmin) /. float_of_int buckets in
  let width = if width <= 0. then 1. else width in
  let sums_str = Array.make buckets 0. in
  let sums_dtr = Array.make buckets 0. in
  let counts = Array.make buckets 0 in
  Array.iteri
    (fun i d ->
      let b = int_of_float ((d -. dmin) /. width) in
      let b = if b >= buckets then buckets - 1 else b in
      sums_str.(b) <- sums_str.(b) +. str_util.(i);
      sums_dtr.(b) <- sums_dtr.(b) +. dtr_util.(i);
      counts.(b) <- counts.(b) + 1)
    delays;
  let table =
    Table.create
      ~title:
        "Fig 7: mean link utilization by propagation delay (random, SLA cost, f=30%, k=30%)"
      ~columns:[ "delay-bucket (ms)"; "links"; "STR mean util"; "DTR mean util" ]
  in
  for b = 0 to buckets - 1 do
    let lo = dmin +. (float_of_int b *. width) in
    let hi = lo +. width in
    let mean sums =
      if counts.(b) = 0 then 0. else sums.(b) /. float_of_int counts.(b)
    in
    Table.add_row table
      [
        Printf.sprintf "%.1f-%.1f" lo hi;
        string_of_int counts.(b);
        Printf.sprintf "%.3f" (mean sums_str);
        Printf.sprintf "%.3f" (mean sums_dtr);
      ]
  done;
  table
