module Table = Dtr_util.Table
module Prng = Dtr_util.Prng
module Graph = Dtr_graph.Graph
module Matrix = Dtr_traffic.Matrix
module Multi = Dtr_routing.Multi
module Mtr_search = Dtr_core.Mtr_search

let run ?(cfg = Dtr_core.Search_config.quick) ?(seed = 83) ?(target_util = 0.6)
    () =
  let g = Dtr_topology.Isp.generate () in
  let n = Graph.node_count g in
  let rng = Prng.create seed in
  let bronze = Dtr_traffic.Gravity.generate rng ~n Dtr_traffic.Gravity.default in
  let silver_pairs = Dtr_traffic.Highpri.random_pairs rng ~n ~density:0.15 in
  let silver =
    Dtr_traffic.Highpri.volumes rng ~low:bronze ~fraction:0.25 ~pairs:silver_pairs
  in
  let gold_pairs = Dtr_traffic.Highpri.random_pairs rng ~n ~density:0.05 in
  let gold =
    Dtr_traffic.Highpri.volumes rng ~low:bronze ~fraction:0.10 ~pairs:gold_pairs
  in
  let matrices = [| gold; silver; bronze |] in
  let mid = Array.make (Graph.arc_count g) 15 in
  let ref_eval = Multi.evaluate g ~weights:[| mid; mid; mid |] ~matrices in
  let factor = target_util /. Multi.avg_utilization ref_eval in
  let matrices = Array.map (fun m -> Matrix.scale m factor) matrices in
  let problem = Mtr_search.create_problem ~graph:g ~matrices in
  let str = Mtr_search.run_single_topology (Prng.create (seed + 1)) cfg problem in
  let mtr = Mtr_search.run (Prng.create (seed + 2)) cfg problem in
  let table =
    Table.create
      ~title:
        "Extension: 3 classes x 3 topologies (ISP, load cost, gold/silver/bronze)"
      ~columns:[ "class"; "STR cost"; "MTR cost"; "STR/MTR ratio" ]
  in
  let names = [| "gold"; "silver"; "bronze" |] in
  Array.iteri
    (fun k s ->
      let m = mtr.Mtr_search.objective.(k) in
      Table.add_row table
        [
          names.(k);
          Printf.sprintf "%.4g" s;
          Printf.sprintf "%.4g" m;
          Printf.sprintf "%.2f" (Compare.ratio ~num:s ~den:m);
        ])
    str.Mtr_search.objective;
  table
