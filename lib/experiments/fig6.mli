(** Fig. 6: per-link high-priority utilization under STR (load-based
    cost), sorted in descending order, for [k = 10%] vs [k = 30%].
    Expected: the [k = 30%] curve is flatter — the same high-priority
    volume spreads over more links. *)

val run :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?target_util:float ->
  ?densities:float list ->
  ?stride:int ->
  unit ->
  Dtr_util.Table.t
(** Rows are sorted link ranks (sampled every [stride], default 10);
    one H-utilization column per density. *)
