(** Fig. 5: impact of the high-priority SD-pair density [k] on the
    L-cost ratio (random topology, [f = 30%]).  Expected: larger [k]
    lowers [R_L] under the load-based cost (a) but raises it under the
    SLA-based cost (b). *)

val run :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?targets:float list ->
  ?densities:float list ->
  model:Dtr_routing.Objective.model ->
  unit ->
  Dtr_util.Table.t
(** Columns: target utilization, one [R_L] column per density
    (defaults 10% and 30%). *)
