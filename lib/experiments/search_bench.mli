(** Large-tier {e search} benchmark: STR and DTR weight searches on a
    {!Dtr_topology.Large} preset under a wall-clock budget.

    Where {!Large_bench} measures the evaluation plumbing (full-eval
    time, probe latency), this measures the search loops themselves —
    time to first accepted improvement and iterations per second at
    1k-10k nodes — and is the source of [BENCH_search_large.json].

    The scenario derivation and PRNG streams match
    {!Compare.run_point}, so a budget-free run is deterministic in
    (preset, seed, config, model) — only the timing columns are
    machine-dependent.  Unlike the comparison path, the searches start
    from seeded {e random} weights rather than the mid-range uniform
    default: on the full-mesh-core presets the uniform start
    shortest-hop-routes every PoP pair over its direct core link and
    is already locally optimal, which would leave nothing for
    time-to-first-improvement to measure. *)

type row = {
  preset : string;
  algo : string;  (** ["str"] or ["dtr"] *)
  nodes : int;
  arcs : int;
  iterations : int;  (** search iterations completed *)
  improvements : int;  (** accepted strict improvements *)
  evaluations : int;  (** objective evaluations spent *)
  memo_hits : int;
  memo_misses : int;
  ttfi_s : float option;
      (** wall-clock seconds to the first accepted improvement over
          the starting objective; [None] if none was found *)
  elapsed_s : float;
  iters_per_sec : float;
  objective : Dtr_cost.Lexico.t;
  stopped_early : bool;  (** the wall-clock budget ended the run *)
}

val default_util : float
(** Target average link utilization the demand is scaled to (0.6). *)

val run :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?time_budget:float ->
  ?str_iters:int ->
  ?w0:int array * int array ->
  ?fraction:float ->
  ?density:float ->
  ?util:float ->
  ?progress:(string -> unit) ->
  ?trace:Dtr_core.Trace.t ->
  model:Dtr_routing.Objective.model ->
  Dtr_topology.Large.preset ->
  row list
(** Build the preset's scenario (PoP gravity demand, demand-only
    routing contexts), scale to [util], then run STR and DTR in
    sequence — one {!row} each, in that order.  [time_budget] (seconds)
    is granted to {e each} search separately, polled once per
    iteration; [str_iters] caps the STR iteration count (default
    {!Dtr_core.Str_search.default_iters}, which grows with the arc
    count — cap it for budget-free deterministic runs); [w0]
    warm-starts both (STR takes the first vector; default: seeded
    random weights, see above).
    [cfg] defaults to {!Dtr_core.Search_config.quick} — at this scale
    the budget, not the iteration cap, is meant to end the run.
    [progress] receives one line per phase (generation, each search's
    start and finish).
    @raise Invalid_argument on an out-of-range or wrong-length vector
    in [w0]. *)

val table : row list -> Dtr_util.Table.t

val to_json : seed:int -> row list -> string
(** The [BENCH_search_large.json] document: provenance stamp plus one
    entry per row. *)
