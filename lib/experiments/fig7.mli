(** Fig. 7: link load as a function of propagation delay under the
    SLA-based cost (random topology, [f = 30%], [k = 30%]).
    Expected: under STR, links with small propagation delay attract a
    disproportionate load (the SLA optimization concentrates
    high-priority paths — and, in STR, the low-priority traffic that
    rides along — on low-delay links); DTR spreads the low-priority
    load out. *)

val run :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?target_util:float ->
  ?buckets:int ->
  unit ->
  Dtr_util.Table.t
(** Links are grouped into propagation-delay buckets; each row reports
    the bucket's mean total utilization under STR and DTR. *)
