(** Extension experiment (not in the paper): three priority classes on
    three routing topologies (gold / silver / bronze on the ISP
    backbone), single shared topology vs one topology per class.
    Expected: the highest class is unaffected, every lower class
    improves, the lowest by the largest factor. *)

val run :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?target_util:float ->
  unit ->
  Dtr_util.Table.t
