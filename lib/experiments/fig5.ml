module Table = Dtr_util.Table
module Objective = Dtr_routing.Objective

let run ?cfg ?(seed = 37) ?(targets = [ 0.5; 0.6; 0.7; 0.8 ])
    ?(densities = [ 0.10; 0.30 ]) ~model () =
  let sweeps =
    List.map
      (fun k ->
        let spec =
          {
            Scenario.topology = Scenario.Random_topo;
            fraction = 0.30;
            hp = Scenario.Random_density k;
            seed;
          }
        in
        (k, Compare.sweep ?cfg spec ~model ~targets))
      densities
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig 5: impact of HP SD-pair density k on RL (random, %s cost, f=30%%)"
           (Objective.model_name model))
      ~columns:
        ("target-util"
        :: List.map (fun k -> Printf.sprintf "RL (k=%.0f%%)" (k *. 100.)) densities
        )
  in
  List.iteri
    (fun i target ->
      let cells =
        List.map
          (fun (_, points) ->
            let p = List.nth points i in
            Printf.sprintf "%.2f" p.Compare.rl)
          sweeps
      in
      Table.add_row table (Printf.sprintf "%.2f" target :: cells))
    targets;
  table
