module Prng = Dtr_util.Prng
module Table = Dtr_util.Table
module Lexico = Dtr_cost.Lexico
module Evaluate = Dtr_routing.Evaluate
module Objective = Dtr_routing.Objective
module Problem = Dtr_core.Problem
module Str_search = Dtr_core.Str_search
module Dtr_search = Dtr_core.Dtr_search
module Trace = Dtr_core.Trace

type point = {
  target_util : float;
  measured_util : float;
  rh : float;
  rl : float;
  str : Str_search.report;
  dtr : Dtr_search.report;
}

let ratio ~num ~den =
  let eps = 1e-12 in
  if den <= eps then if num <= eps then 1. else Float.infinity
  else num /. den

let run_point ?(cfg = Dtr_core.Search_config.default) ?(seed = 0)
    ?(trace = Trace.disabled) ?stop ?w0 inst ~model ~target_util =
  let inst = Scenario.scale_to_utilization inst ~target:target_util in
  let problem = Scenario.problem inst ~model in
  let root = Prng.create (seed + (inst.Scenario.spec.Scenario.seed * 7919)) in
  let str_rng = Prng.split root in
  let dtr_rng = Prng.split root in
  (* Each search records into its own ring; the merged stream tags STR
     events [restart = 0] and DTR events [restart = 1]. *)
  let str_ring = if Trace.enabled trace then Trace.ring () else Trace.disabled in
  let dtr_ring = if Trace.enabled trace then Trace.ring () else Trace.disabled in
  let str_w0 = Option.map fst w0 in
  let str = Str_search.run ?w0:str_w0 ?stop ~trace:str_ring str_rng cfg problem in
  let dtr = Dtr_search.run ?w0 ?stop ~trace:dtr_ring dtr_rng cfg problem in
  if Trace.enabled trace then begin
    Trace.replay str_ring ~into:trace ~restart:0;
    Trace.replay dtr_ring ~into:trace ~restart:1
  end;
  let measured_util =
    Evaluate.avg_utilization
      str.Str_search.best.Problem.result.Objective.eval
  in
  {
    target_util;
    measured_util;
    rh =
      ratio ~num:str.Str_search.objective.Lexico.primary
        ~den:dtr.Dtr_search.objective.Lexico.primary;
    rl =
      ratio ~num:str.Str_search.objective.Lexico.secondary
        ~den:dtr.Dtr_search.objective.Lexico.secondary;
    str;
    dtr;
  }

let sweep ?cfg ?seed spec ~model ~targets =
  let inst = Scenario.make spec in
  List.map (fun t -> run_point ?cfg ?seed inst ~model ~target_util:t) targets

let points_table ~title points =
  let table =
    Table.create ~title
      ~columns:[ "avg-util"; "H-cost-ratio (RH)"; "L-cost-ratio (RL)" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          Printf.sprintf "%.3f" p.measured_util;
          Printf.sprintf "%.3f" p.rh;
          Printf.sprintf "%.2f" p.rl;
        ])
    points;
  table
