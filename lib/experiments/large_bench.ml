(* Real-ISP-scale benchmark tier.

   One row per Large preset: generate the topology and a PoP-level
   gravity demand (sparse), build a demand-only evaluation context
   (DAGs for the ~30-100 PoP destinations instead of all 1k-10k
   nodes), then measure full-evaluation time and the latency
   distribution of single-weight-change probes through the delta
   engine.  Every scenario is deterministic in (preset, seed); the
   timings and the peak-RSS gauge are the only machine-dependent
   outputs.

   Peak RSS is the process-wide high-water mark, so it is monotone
   across rows: {!run} sorts the requested presets by node count so
   each row's value approximates the footprint of the largest context
   built so far — its own. *)

module Prng = Dtr_util.Prng
module Stats = Dtr_util.Stats
module Metrics = Dtr_util.Metrics
module Graph = Dtr_graph.Graph
module Large = Dtr_topology.Large
module Matrix = Dtr_traffic.Matrix
module Gravity = Dtr_traffic.Gravity
module Weights = Dtr_routing.Weights
module Eval_ctx = Dtr_routing.Eval_ctx

type row = {
  preset : string;
  nodes : int;
  arcs : int;
  pops : int;
  demand_pairs : int;
  gen_s : float;
  full_eval_s : float;
  probe_ns_p50 : float;
  probe_ns_p90 : float;
  probe_ns_p99 : float;
  probe_evals_per_sec : float;
  peak_rss_kb : int;
}

let default_probes = 200

(* The paper's two-class mix at PoP scale: the low class is a PoP
   gravity matrix, the high class rides a density-0.10 subset of the
   same PoP pairs at fraction 0.30 of the pair's volume — the same
   f/k knobs as the 50-node scenarios, applied to the sparse tier. *)
let scenario ~seed p =
  let root = Prng.create seed in
  let topo_rng = Prng.split root in
  let traffic_rng = Prng.split root in
  let weight_rng = Prng.split root in
  let g = Large.generate topo_rng p in
  let pops = Large.pop_nodes g p in
  let n = Graph.node_count g in
  let tl = Gravity.generate_pop traffic_rng ~n ~pops Gravity.default in
  let th = Matrix.create_sparse n in
  Matrix.iter tl (fun s t v ->
      if Prng.float traffic_rng 1.0 < 0.10 then Matrix.set th s t (0.30 *. v));
  let wh = Weights.random weight_rng g in
  let wl = Weights.random weight_rng g in
  (g, pops, th, tl, wh, wl)

let count_pairs m =
  let c = ref 0 in
  Matrix.iter m (fun _ _ _ -> incr c);
  !c

let run_preset ?(probes = default_probes) ~seed p =
  let t0 = Unix.gettimeofday () in
  let g, pops, th, tl, wh, wl = scenario ~seed p in
  let gen_s = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let ctx =
    Eval_ctx.create ~dest_mode:Eval_ctx.Demand g ~weights:[| wh; wl |]
      ~matrices:[| th; tl |]
  in
  let full_eval_s = Unix.gettimeofday () -. t1 in
  let m = Graph.arc_count g in
  (* Rotating single-weight probes, alternating class, stepping
     through the arc space with a stride so samples touch core and
     stub arcs alike. *)
  let stride = (m / 97) + 1 in
  let probe_once i =
    let klass = i land 1 in
    let w = if klass = 0 then wh else wl in
    let arc = i * stride mod m in
    let v = if w.(arc) >= Weights.max_weight then w.(arc) - 1 else w.(arc) + 1 in
    let p = Eval_ctx.probe ctx ~klass ~changes:[ (arc, v) ] in
    Eval_ctx.abort ctx p
  in
  for i = 0 to 19 do
    probe_once i
  done;
  let samples =
    Array.init probes (fun i ->
        let t = Unix.gettimeofday () in
        probe_once (20 + i);
        (Unix.gettimeofday () -. t) *. 1e9)
  in
  let p50 = Stats.percentile samples 50. in
  {
    preset = p.Large.name;
    nodes = Graph.node_count g;
    arcs = m;
    pops = Array.length pops;
    demand_pairs = count_pairs th + count_pairs tl;
    gen_s;
    full_eval_s;
    probe_ns_p50 = p50;
    probe_ns_p90 = Stats.percentile samples 90.;
    probe_ns_p99 = Stats.percentile samples 99.;
    probe_evals_per_sec = (if p50 > 0. then 1e9 /. p50 else 0.);
    peak_rss_kb = Metrics.peak_rss_kb ();
  }

let run ?(probes = default_probes) ?(progress = fun _ -> ()) ~seed names =
  let presets =
    List.map
      (fun name ->
        match Large.find name with
        | Some p -> p
        | None ->
            invalid_arg
              (Printf.sprintf "unknown large preset: %s (expected one of: %s)"
                 name
                 (String.concat ", " (Large.names ()))))
      names
  in
  let presets =
    List.stable_sort
      (fun a b -> compare (Large.node_count a) (Large.node_count b))
      presets
  in
  List.map
    (fun p ->
      progress
        (Printf.sprintf "%s: generating + evaluating %d nodes..." p.Large.name
           (Large.node_count p));
      let row = run_preset ~probes ~seed p in
      progress
        (Printf.sprintf
           "%s: full eval %.2f s, probe p50 %.2f ms, %.0f evals/s, peak RSS %d \
            MB"
           row.preset row.full_eval_s (row.probe_ns_p50 /. 1e6)
           row.probe_evals_per_sec (row.peak_rss_kb / 1024));
      row)
    presets

let table rows =
  let t =
    Dtr_util.Table.create ~title:"large-topology tier (demand-only contexts)"
      ~columns:
        [
          "preset"; "nodes"; "arcs"; "pops"; "pairs"; "gen s"; "eval s";
          "probe p50 ms"; "p90 ms"; "p99 ms"; "evals/s"; "peak RSS MB";
        ]
  in
  List.iter
    (fun r ->
      Dtr_util.Table.add_row t
        [
          r.preset;
          string_of_int r.nodes;
          string_of_int r.arcs;
          string_of_int r.pops;
          string_of_int r.demand_pairs;
          Printf.sprintf "%.2f" r.gen_s;
          Printf.sprintf "%.2f" r.full_eval_s;
          Printf.sprintf "%.3f" (r.probe_ns_p50 /. 1e6);
          Printf.sprintf "%.3f" (r.probe_ns_p90 /. 1e6);
          Printf.sprintf "%.3f" (r.probe_ns_p99 /. 1e6);
          Printf.sprintf "%.0f" r.probe_evals_per_sec;
          string_of_int (r.peak_rss_kb / 1024);
        ])
    rows;
  t

(* Same provenance stamp as bench/meta.ml: revision, toolchain,
   machine shape, and the peak RSS at stamp time. *)
let stamp ~seed =
  Printf.sprintf
    "{ \"git_rev\": %S, \"ocaml\": %S, \"cores\": %d, \"seed\": %d, \
     \"peak_rss_kb\": %d }"
    (Dtr_core.Manifest.git_rev ())
    Sys.ocaml_version
    (Domain.recommended_domain_count ())
    seed
    (Metrics.peak_rss_kb ())

let to_json ~seed ~probes rows =
  let row_json r =
    Printf.sprintf
      "    { \"preset\": %S, \"nodes\": %d, \"arcs\": %d, \"pops\": %d,\n\
      \      \"demand_pairs\": %d, \"gen_s\": %.3f, \"full_eval_s\": %.3f,\n\
      \      \"probe_ns_p50\": %.1f, \"probe_ns_p90\": %.1f, \
       \"probe_ns_p99\": %.1f,\n\
      \      \"probe_evals_per_sec\": %.1f, \"peak_rss_kb\": %d }"
      r.preset r.nodes r.arcs r.pops r.demand_pairs r.gen_s r.full_eval_s
      r.probe_ns_p50 r.probe_ns_p90 r.probe_ns_p99 r.probe_evals_per_sec
      r.peak_rss_kb
  in
  Printf.sprintf
    "{\n\
    \  \"benchmark\": \"large-topologies\",\n\
    \  \"manifest\": %s,\n\
    \  \"seed\": %d,\n\
    \  \"probes_per_preset\": %d,\n\
    \  \"rows\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (stamp ~seed) seed probes
    (String.concat ",\n" (List.map row_json rows))
