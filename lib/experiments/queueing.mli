(** Extension experiment (not in the paper, but its premise): how much
    of the differentiation comes from contention resolution vs routing?

    The same DTR-optimized scenario is replayed packet-by-packet twice:
    once with strict priority queues (the paper's model) and once with
    plain shared FIFOs.  Reported per class: mean and p95 delays under
    each discipline.  Expected: under FIFO the two classes collapse to
    the same delay — scheduling provides the per-hop differentiation,
    routing decides which hops each class crosses. *)

val run :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?target_util:float ->
  ?sim_duration:float ->
  unit ->
  Dtr_util.Table.t
