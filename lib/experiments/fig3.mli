(** Fig. 3: link-utilization histograms, STR vs DTR, on the random
    topology ([f = 30%]).  Panels: (a) load-based cost, [k = 10%];
    (b) SLA-based, [k = 10%]; (c) SLA-based, [k = 30%].

    DTR is expected to show a much shorter overloaded tail. *)

type panel = A | B | C

val panel_name : panel -> string

val run :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?target_util:float ->
  panel ->
  Dtr_util.Table.t
(** One histogram table: bin center, STR link count, DTR link count. *)
