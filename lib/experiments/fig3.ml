module Table = Dtr_util.Table
module Stats = Dtr_util.Stats
module Objective = Dtr_routing.Objective
module Evaluate = Dtr_routing.Evaluate
module Problem = Dtr_core.Problem

type panel = A | B | C

let panel_name = function A -> "a" | B -> "b" | C -> "c"

let panel_setting = function
  | A -> (Objective.Load, 0.10)
  | B -> (Objective.Sla Dtr_cost.Sla.default, 0.10)
  | C -> (Objective.Sla Dtr_cost.Sla.default, 0.30)

let run ?cfg ?(seed = 23) ?(target_util = 0.6) panel =
  let model, density = panel_setting panel in
  let spec =
    {
      Scenario.topology = Scenario.Random_topo;
      fraction = 0.30;
      hp = Scenario.Random_density density;
      seed;
    }
  in
  let inst = Scenario.make spec in
  let point = Compare.run_point ?cfg inst ~model ~target_util in
  let str_util =
    Evaluate.utilization
      point.Compare.str.Dtr_core.Str_search.best.Problem.result.Objective.eval
  in
  let dtr_util =
    Evaluate.utilization
      point.Compare.dtr.Dtr_core.Dtr_search.best.Problem.result.Objective.eval
  in
  let hi =
    Float.max 1.5
      (Float.max
         (Array.fold_left Float.max 0. str_util)
         (Array.fold_left Float.max 0. dtr_util))
  in
  let bins = int_of_float (Float.ceil (hi /. 0.1)) in
  let hist_str = Stats.histogram ~lo:0. ~hi:(0.1 *. float_of_int bins) ~bins str_util in
  let hist_dtr = Stats.histogram ~lo:0. ~hi:(0.1 *. float_of_int bins) ~bins dtr_util in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig 3%s: link utilization histogram, %s cost, k=%.0f%% (f=30%%)"
           (panel_name panel)
           (Objective.model_name model)
           (density *. 100.))
      ~columns:[ "utilization-bin"; "STR links"; "DTR links" ]
  in
  for i = 0 to bins - 1 do
    Table.add_row table
      [
        Printf.sprintf "%.2f" (Stats.histogram_bin_center hist_str i);
        string_of_int hist_str.Stats.counts.(i);
        string_of_int hist_dtr.Stats.counts.(i);
      ]
  done;
  table
