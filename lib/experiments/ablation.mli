(** Ablations of the DTR heuristic's design choices (DESIGN.md §4):

    - the neighborhood: literal Algorithm 2 (±1 two-arc moves) vs the
      randomized step size vs the added single-arc value scan;
    - the heavy-tail rank exponent τ (0 = uniform link choice, the
      paper's 1.5, and a strongly greedy 5);
    - stall-triggered diversification on vs off.

    Each ablation optimizes the same ISP scenario with each variant and
    reports the final lexicographic objective and the evaluation count,
    so the contribution of each ingredient is visible. *)

val run_neighborhood :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?target_util:float ->
  unit ->
  Dtr_util.Table.t

val run_tau :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?target_util:float ->
  unit ->
  Dtr_util.Table.t

val run_diversification :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?target_util:float ->
  unit ->
  Dtr_util.Table.t

val run_optimizer :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?target_util:float ->
  unit ->
  Dtr_util.Table.t
(** Algorithm-1 local search vs the simulated-annealing variant
    ({!Dtr_core.Anneal_search}) on the same scenario. *)
