module Table = Dtr_util.Table
module Objective = Dtr_routing.Objective

let run ?cfg ?(seed = 31) ?(targets = [ 0.4; 0.5; 0.6; 0.7; 0.8 ])
    ?(fractions = [ 0.20; 0.40 ]) () =
  let sweeps =
    List.map
      (fun f ->
        let spec =
          {
            Scenario.topology = Scenario.Random_topo;
            fraction = f;
            hp = Scenario.Random_density 0.10;
            seed;
          }
        in
        (f, Compare.sweep ?cfg spec ~model:Objective.Load ~targets))
      fractions
  in
  let table =
    Table.create
      ~title:"Fig 4: impact of high-priority share f on RL (random, load cost, k=10%)"
      ~columns:
        ("target-util"
        :: List.map (fun f -> Printf.sprintf "RL (f=%.0f%%)" (f *. 100.)) fractions
        )
  in
  List.iteri
    (fun i target ->
      let cells =
        List.map
          (fun (_, points) ->
            let p = List.nth points i in
            Printf.sprintf "%.2f" p.Compare.rl)
          sweeps
      in
      Table.add_row table (Printf.sprintf "%.2f" target :: cells))
    targets;
  table
