(** Extension experiment (not in the paper, motivated by its §1 cost
    discussion): how does a DTR weight pair age over a day of traffic,
    and what does keeping it fresh cost in control-plane churn?

    A peak-hour-optimized weight pair is evaluated against diurnal
    demand snapshots and compared with per-period re-optimization
    (warm-started from the previous period).  For the re-optimizing
    strategy the table also reports how many arc weights changed and
    how many MT-OSPF LSA transmissions the reconfiguration floods
    (measured on the simulated control plane). *)

val run :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?peak_util:float ->
  ?hours:float list ->
  unit ->
  Dtr_util.Table.t
