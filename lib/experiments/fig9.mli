(** Fig. 9: the SLA-relaxation study — vary the SLA delay bound θ from
    25 to 35 ms (random topology, [f = 30%], [k = 30%], network load
    ≈ 0.5) and report, for STR and DTR: (a) the number of violated
    high-priority SLAs, (b) the low-priority cost [Φ_L], (c) the
    maximum link utilization.  Expected: loosening θ lets STR close
    most of the low-priority gap. *)

val run :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?target_util:float ->
  ?thetas:float list ->
  unit ->
  Dtr_util.Table.t
