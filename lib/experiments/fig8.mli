(** Fig. 8: the sink (popular-server) traffic model on the power-law
    topology ([f = 20%], [k = 10%], 3 top-degree sinks), comparing
    Uniform vs Local client placement.  Expected: [R_L ≈ 1] in the
    Local scenario, [R_L] large in the Uniform scenario. *)

val run :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?targets:float list ->
  model:Dtr_routing.Objective.model ->
  unit ->
  Dtr_util.Table.t
(** Columns: target utilization, RL(Uniform), RL(Local). *)
