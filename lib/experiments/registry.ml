module Objective = Dtr_routing.Objective

type experiment = {
  name : string;
  description : string;
  run : cfg:Dtr_core.Search_config.t -> seed:int -> Dtr_util.Table.t list;
}

let sla = Objective.Sla Dtr_cost.Sla.default

let fig2 name topology model desc =
  {
    name;
    description = desc;
    run = (fun ~cfg ~seed -> [ Fig2.run ~cfg ~seed ~topology ~model () ]);
  }

let table1 name topology =
  {
    name;
    description =
      Printf.sprintf "Table 1 (%s topology): relaxed STR vs DTR"
        (Scenario.topology_name topology);
    run = (fun ~cfg ~seed -> [ Table1.run ~cfg ~seed ~topology () ]);
  }

let all =
  [
    {
      name = "fig1";
      description = "S3.3.1 joint-cost pitfall on the 3-node triangle";
      run = (fun ~cfg:_ ~seed:_ -> [ Fig1_joint.run ~alphas:[ 35.; 30. ] ]);
    };
    fig2 "fig2a" Scenario.Random_topo Objective.Load
      "Fig 2a: cost ratios, random topology, load-based cost";
    fig2 "fig2b" Scenario.Power_law Objective.Load
      "Fig 2b: cost ratios, power-law topology, load-based cost";
    fig2 "fig2c" Scenario.Isp Objective.Load
      "Fig 2c: cost ratios, ISP topology, load-based cost";
    fig2 "fig2d" Scenario.Random_topo sla
      "Fig 2d: cost ratios, random topology, SLA-based cost";
    fig2 "fig2e" Scenario.Power_law sla
      "Fig 2e: cost ratios, power-law topology, SLA-based cost";
    fig2 "fig2f" Scenario.Isp sla
      "Fig 2f: cost ratios, ISP topology, SLA-based cost";
    {
      name = "fig3a";
      description = "Fig 3a: utilization histogram, load cost, k=10%";
      run = (fun ~cfg ~seed -> [ Fig3.run ~cfg ~seed Fig3.A ]);
    };
    {
      name = "fig3b";
      description = "Fig 3b: utilization histogram, SLA cost, k=10%";
      run = (fun ~cfg ~seed -> [ Fig3.run ~cfg ~seed Fig3.B ]);
    };
    {
      name = "fig3c";
      description = "Fig 3c: utilization histogram, SLA cost, k=30%";
      run = (fun ~cfg ~seed -> [ Fig3.run ~cfg ~seed Fig3.C ]);
    };
    {
      name = "fig4";
      description = "Fig 4: impact of high-priority share f on RL";
      run = (fun ~cfg ~seed -> [ Fig4.run ~cfg ~seed () ]);
    };
    {
      name = "fig5a";
      description = "Fig 5a: impact of SD-pair density k, load cost";
      run = (fun ~cfg ~seed -> [ Fig5.run ~cfg ~seed ~model:Objective.Load () ]);
    };
    {
      name = "fig5b";
      description = "Fig 5b: impact of SD-pair density k, SLA cost";
      run = (fun ~cfg ~seed -> [ Fig5.run ~cfg ~seed ~model:sla () ]);
    };
    {
      name = "fig6";
      description = "Fig 6: sorted H-utilization under STR, k=10% vs 30%";
      run = (fun ~cfg ~seed -> [ Fig6.run ~cfg ~seed () ]);
    };
    {
      name = "fig7";
      description = "Fig 7: link load vs propagation delay, SLA cost";
      run = (fun ~cfg ~seed -> [ Fig7.run ~cfg ~seed () ]);
    };
    {
      name = "fig8a";
      description = "Fig 8a: sink model Uniform vs Local, load cost";
      run = (fun ~cfg ~seed -> [ Fig8.run ~cfg ~seed ~model:Objective.Load () ]);
    };
    {
      name = "fig8b";
      description = "Fig 8b: sink model Uniform vs Local, SLA cost";
      run = (fun ~cfg ~seed -> [ Fig8.run ~cfg ~seed ~model:sla () ]);
    };
    {
      name = "fig9";
      description = "Fig 9: SLA-bound sweep 25-35 ms";
      run = (fun ~cfg ~seed -> [ Fig9.run ~cfg ~seed () ]);
    };
    table1 "table1-random" Scenario.Random_topo;
    table1 "table1-powerlaw" Scenario.Power_law;
    table1 "table1-isp" Scenario.Isp;
    {
      name = "val-netsim";
      description = "Extra: packet-level validation of the flow model";
      run = (fun ~cfg ~seed -> [ Validation.run ~cfg ~seed () ]);
    };
    {
      name = "ablation-neighborhood";
      description = "Ablation: FindH/FindL neighborhood variants";
      run = (fun ~cfg ~seed -> [ Ablation.run_neighborhood ~cfg ~seed () ]);
    };
    {
      name = "ablation-tau";
      description = "Ablation: heavy-tail rank exponent";
      run = (fun ~cfg ~seed -> [ Ablation.run_tau ~cfg ~seed () ]);
    };
    {
      name = "ablation-diversification";
      description = "Ablation: stall-triggered diversification";
      run = (fun ~cfg ~seed -> [ Ablation.run_diversification ~cfg ~seed () ]);
    };
    {
      name = "ablation-optimizer";
      description = "Ablation: local search vs simulated annealing";
      run = (fun ~cfg ~seed -> [ Ablation.run_optimizer ~cfg ~seed () ]);
    };
    {
      name = "ext-failure";
      description = "Extension: single-link failure robustness";
      run = (fun ~cfg ~seed -> [ Failure.run ~cfg ~seed () ]);
    };
    {
      name = "ext-3class";
      description = "Extension: three classes on three topologies";
      run = (fun ~cfg ~seed -> [ Multi_class.run ~cfg ~seed () ]);
    };
    {
      name = "ext-queueing";
      description = "Extension: priority vs FIFO queueing at the packet level";
      run = (fun ~cfg ~seed -> [ Queueing.run ~cfg ~seed () ]);
    };
    {
      name = "ext-diurnal";
      description = "Extension: diurnal demand, static vs re-optimized weights";
      run = (fun ~cfg ~seed -> [ Diurnal_exp.run ~cfg ~seed () ]);
    };
    fig2 "ext-fig2-waxman" Scenario.Waxman Objective.Load
      "Extension: Fig 2-style sweep on a Waxman topology, load cost";
    fig2 "ext-fig2-transit" Scenario.Transit_stub Objective.Load
      "Extension: Fig 2-style sweep on a transit-stub topology, load cost";
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let names () = List.map (fun e -> e.name) all

(* Experiments build their tables purely (no printing until the caller
   renders them), so running them on worker domains and collecting by
   input index yields byte-identical output for every [jobs]. *)
let run_all ?(jobs = 1) ~cfg ~seed experiments =
  let arr = Array.of_list experiments in
  let tables =
    Dtr_util.Pool.run ~jobs (Array.length arr) ~f:(fun i ->
        arr.(i).run ~cfg ~seed)
  in
  List.mapi (fun i e -> (e, tables.(i))) experiments
