(** Evaluation scenarios (paper §5.1): topology + two-class traffic
    matrices, reproducibly derived from a seed, with demand scaling to
    hit a target average link utilization. *)

type topology_kind =
  | Random_topo  (** 30 nodes / 150 links (paper Fig. 2a) *)
  | Power_law  (** 30 nodes / 162 links, preferential attachment *)
  | Isp  (** the 16-node / 70-arc backbone *)
  | Waxman  (** 30-node geographic Waxman graph (extension) *)
  | Transit_stub  (** 28-node two-level transit-stub graph (extension) *)
  | Abilene  (** the 11-node Abilene research backbone (extension) *)
  | Large of Dtr_topology.Large.preset
      (** real-ISP-scale preset (1k-10k nodes): PoP-level gravity
          demand, the high class a [Random_density]-probability subset
          of the low-class pairs at [fraction] of each pair's volume;
          {!problem} and {!reference_avg_utilization} switch to
          demand-only destination DAGs.  [Sinks] placement is
          rejected. *)

val topology_name : topology_kind -> string

type hp_model =
  | Random_density of float
      (** fraction [k] of all SD pairs carries high-priority traffic *)
  | Sinks of {
      sinks : int;  (** how many top-degree nodes act as sinks *)
      density : float;  (** target fraction of SD pairs, sets client count *)
      placement : Dtr_traffic.Highpri.placement;
    }

type spec = {
  topology : topology_kind;
  fraction : float;  (** f: high-priority share of total volume *)
  hp : hp_model;
  seed : int;
}

type instance = {
  graph : Dtr_graph.Graph.t;
  th : Dtr_traffic.Matrix.t;
  tl : Dtr_traffic.Matrix.t;
  spec : spec;
}

val make : spec -> instance
(** Generate topology and matrices from the seed (two independent
    PRNG streams, so the topology does not change when traffic
    parameters do).
    @raise Invalid_argument on a [Large] spec with [Sinks]
    placement. *)

val scale_to_utilization : instance -> target:float -> instance
(** Scale both matrices by a common factor so that the average link
    utilization under mid-range uniform STR weights equals [target].
    The utilization under optimized weights then lands close to (and
    is always re-measured at) the target.
    @raise Invalid_argument on a non-positive target. *)

val reference_avg_utilization : instance -> float
(** Average link utilization under mid-range uniform STR weights. *)

val problem :
  instance -> model:Dtr_routing.Objective.model -> Dtr_core.Problem.t
(** Wrap into an optimization problem. *)
