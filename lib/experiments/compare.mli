(** One evaluation point: optimize the same scenario with STR and DTR
    and compare costs — the measurement behind Figs. 2, 4, 5, 8 and
    Table 1. *)

type point = {
  target_util : float;  (** requested network load *)
  measured_util : float;  (** average link utilization of the STR solution *)
  rh : float;  (** STR primary cost / DTR primary cost (≈ 1 expected) *)
  rl : float;  (** STR Φ_L / DTR Φ_L (the paper's headline ratio) *)
  str : Dtr_core.Str_search.report;
  dtr : Dtr_core.Dtr_search.report;
}

val ratio : num:float -> den:float -> float
(** Zero-guarded ratio: both ≈ 0 gives 1 (equal performance); a zero
    denominator with a positive numerator gives [infinity]. *)

val run_point :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  ?trace:Dtr_core.Trace.t ->
  ?stop:(unit -> bool) ->
  ?w0:int array * int array ->
  Scenario.instance ->
  model:Dtr_routing.Objective.model ->
  target_util:float ->
  point
(** Scale the instance to [target_util], then run both searches
    (independent PRNG streams derived from [seed], default 0).
    [stop] (the wall-clock budget hook) is polled by both searches
    once per iteration; [w0] warm-starts them — STR takes the first
    vector, DTR the pair.

    With an enabled [trace], both searches record their events (each
    into a private ring, replayed afterwards so ordering never depends
    on scheduling): STR events carry [restart = 0], DTR events
    [restart = 1].
    @raise Invalid_argument on an out-of-range or wrong-length vector
    in [w0]. *)

val sweep :
  ?cfg:Dtr_core.Search_config.t ->
  ?seed:int ->
  Scenario.spec ->
  model:Dtr_routing.Objective.model ->
  targets:float list ->
  point list
(** {!run_point} over a list of target utilizations on one generated
    instance. *)

val points_table :
  title:string -> point list -> Dtr_util.Table.t
(** Render points as the paper's figure series: measured utilization,
    H-cost ratio, L-cost ratio. *)
