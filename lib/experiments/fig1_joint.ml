module Table = Dtr_util.Table
module Matrix = Dtr_traffic.Matrix
module Evaluate = Dtr_routing.Evaluate
module Lexico = Dtr_cost.Lexico

(* The Fig. 1 instance: unit capacities, 1/3 high- and 2/3 low-priority
   units from A (node 0) to C (node 2). *)
let instance () =
  let g = Dtr_topology.Classic.triangle ~capacity:1.0 ~delay:1.0 () in
  let th = Matrix.create 3 and tl = Matrix.create 3 in
  Matrix.set th 0 2 (1. /. 3.);
  Matrix.set tl 0 2 (2. /. 3.);
  (g, th, tl)

(* Enumerate all weight settings in {1, 2, 3}^6; for single-source
   traffic this covers every realizable STR routing of the triangle. *)
let enumerate f =
  let g, th, tl = instance () in
  let m = Dtr_graph.Graph.arc_count g in
  let w = Array.make m 1 in
  let rec go i =
    if i = m then begin
      let eval = Evaluate.evaluate g ~wh:w ~wl:w ~th ~tl in
      f w eval
    end
    else
      for v = 1 to 3 do
        w.(i) <- v;
        go (i + 1)
      done
  in
  go 0

let optimum_for_alpha ~alpha =
  let best = ref Float.infinity and best_point = ref (0., 0.) in
  enumerate (fun _ eval ->
      let j = (alpha *. eval.Evaluate.phi_h) +. eval.Evaluate.phi_l in
      if j < !best then begin
        best := j;
        best_point := (eval.Evaluate.phi_h, eval.Evaluate.phi_l)
      end);
  !best_point

let lexicographic_optimum () =
  let best = ref Lexico.infinity and best_point = ref (0., 0.) in
  enumerate (fun _ eval ->
      let c =
        Lexico.make ~primary:eval.Evaluate.phi_h ~secondary:eval.Evaluate.phi_l
      in
      if Lexico.lt c !best then begin
        best := c;
        best_point := (eval.Evaluate.phi_h, eval.Evaluate.phi_l)
      end);
  !best_point

let run ~alphas =
  let table =
    Table.create
      ~title:
        "Fig 1 (S3.3.1): joint cost J = a*PhiH + PhiL on the 3-node triangle"
      ~columns:[ "setting"; "PhiH"; "PhiL" ]
  in
  let lh, ll = lexicographic_optimum () in
  Table.add_row table
    [ "lexicographic"; Printf.sprintf "%.4f" lh; Printf.sprintf "%.4f" ll ];
  List.iter
    (fun alpha ->
      let h, l = optimum_for_alpha ~alpha in
      Table.add_row table
        [
          Printf.sprintf "alpha=%g" alpha;
          Printf.sprintf "%.4f" h;
          Printf.sprintf "%.4f" l;
        ])
    alphas;
  table
