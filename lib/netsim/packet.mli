(** Packets and traffic classes for the discrete-event simulator. *)

type klass = High | Low

val klass_name : klass -> string

type t = {
  id : int;
  klass : klass;
  src : int;
  dst : int;
  size_bits : float;
  created : float;  (** injection time, ms *)
  mutable hops : int;  (** links traversed so far *)
}

val create :
  id:int ->
  klass:klass ->
  src:int ->
  dst:int ->
  size_bits:float ->
  created:float ->
  t
(** @raise Invalid_argument on a non-positive size or [src = dst]. *)
