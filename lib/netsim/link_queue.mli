(** Output queue of one arc: strict two-priority, non-preemptive,
    work-conserving, infinite buffers (the paper's contention-resolution
    model).

    The queue holds packets waiting for the transmitter; the simulator
    drives it with {!start_service} / {!take_next}. *)

type discipline =
  | Priority  (** strict two-priority, high class first (the paper) *)
  | Fifo  (** single shared FIFO — no differentiation at all *)

type t

val create :
  ?discipline:discipline ->
  ?buffer_packets:int ->
  capacity_mbps:float ->
  unit ->
  t
(** Defaults to [Priority] with unbounded buffers; [buffer_packets]
    bounds each class queue (shared queue under [Fifo]).
    @raise Invalid_argument on a non-positive capacity or buffer. *)

type enqueue_outcome =
  | Accepted
  | Dropped  (** the class queue was full; the packet is lost *)

val discipline : t -> discipline

val enqueue : t -> Packet.t -> enqueue_outcome

val busy : t -> bool

val set_busy : t -> bool -> unit

val take_next : t -> Packet.t option
(** Dequeue the next packet to transmit: the high-priority queue is
    always drained first. *)

val service_time : t -> Packet.t -> float
(** Transmission time of the packet in ms ([size / capacity]). *)

val queue_length : t -> Packet.klass -> int

val total_queued : t -> int

val busy_time : t -> float
(** Accumulated transmission time (ms); divide by elapsed time for
    utilization. *)

val add_busy_time : t -> float -> unit

val transmitted : t -> Packet.klass -> int
(** Packets fully transmitted per class. *)

val dropped : t -> Packet.klass -> int
(** Packets rejected per class because the buffer was full. *)

val note_transmitted : t -> Packet.klass -> unit
