(** Packet-level discrete-event simulation of a two-class network with
    strict priority queueing and ECMP forwarding.

    The simulator validates the paper's flow-level model: Poisson
    packet arrivals per SD pair, exponential packet sizes (so each
    link behaves as an M/M/1 priority queue), per-packet uniform ECMP
    next-hop choice (so mean arc loads match the even-split model),
    infinite buffers, non-preemptive priority service. *)

type config = {
  duration : float;  (** simulated time, ms *)
  warmup : float;  (** deliveries before this time are not measured *)
  mean_packet_bits : float;  (** mean of the exponential size law *)
  seed : int;
  discipline : Link_queue.discipline;
      (** queueing discipline on every link; [Priority] is the paper's
          model, [Fifo] removes contention resolution entirely *)
  buffer_packets : int option;
      (** per-class queue bound on every link; [None] = infinite (the
          paper's model) *)
}

val default_config : config
(** 2000 ms horizon, 200 ms warmup, 8000-bit mean packets, seed 0,
    strict priority queueing. *)

type class_stats = {
  injected : int;
  delivered : int;
  dropped : int;  (** lost to full buffers (0 with infinite buffers) *)
  mean_delay : float;  (** ms, 0. if nothing delivered *)
  p95_delay : float;
  max_delay : float;
  mean_hops : float;
}

type result = {
  high : class_stats;
  low : class_stats;
  link_utilization : float array;
      (** per-arc busy fraction over the full duration *)
  clock : float;  (** final simulation time *)
  pair_delays : (int * int * Packet.klass, float * int) Hashtbl.t;
      (** per-(src, dst, class) delay sum and delivery count; prefer
          {!pair_mean_delay} *)
}

val run :
  Dtr_graph.Graph.t ->
  wh:int array ->
  wl:int array ->
  th:Dtr_traffic.Matrix.t ->
  tl:Dtr_traffic.Matrix.t ->
  config ->
  result
(** Simulate both traffic matrices over their respective routings.
    @raise Invalid_argument on invalid weights, a non-positive
    duration, a warmup >= duration, or unroutable demand. *)

val pair_mean_delay :
  result -> src:int -> dst:int -> klass:Packet.klass -> float option
(** Mean measured end-to-end delay of one SD pair, if any packet of
    that class and pair was delivered after warmup. *)
