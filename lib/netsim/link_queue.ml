type discipline = Priority | Fifo

type enqueue_outcome = Accepted | Dropped

type t = {
  discipline : discipline;
  capacity_mbps : float;
  buffer_packets : int option;
  high : Packet.t Queue.t;
  low : Packet.t Queue.t;  (* unused under Fifo: everything goes high *)
  mutable busy : bool;
  mutable busy_time : float;
  mutable tx_high : int;
  mutable tx_low : int;
  mutable drop_high : int;
  mutable drop_low : int;
}

let create ?(discipline = Priority) ?buffer_packets ~capacity_mbps () =
  if capacity_mbps <= 0. then invalid_arg "Link_queue.create: non-positive capacity";
  (match buffer_packets with
  | Some b when b < 1 -> invalid_arg "Link_queue.create: non-positive buffer"
  | Some _ | None -> ());
  {
    discipline;
    capacity_mbps;
    buffer_packets;
    high = Queue.create ();
    low = Queue.create ();
    busy = false;
    busy_time = 0.;
    tx_high = 0;
    tx_low = 0;
    drop_high = 0;
    drop_low = 0;
  }

let discipline t = t.discipline

let note_dropped t (p : Packet.t) =
  match p.Packet.klass with
  | Packet.High -> t.drop_high <- t.drop_high + 1
  | Packet.Low -> t.drop_low <- t.drop_low + 1

let enqueue t (p : Packet.t) =
  let target =
    match t.discipline with
    | Fifo -> t.high
    | Priority -> (
        match p.Packet.klass with Packet.High -> t.high | Packet.Low -> t.low)
  in
  let full =
    match t.buffer_packets with
    | None -> false
    | Some b -> Queue.length target >= b
  in
  if full then begin
    note_dropped t p;
    Dropped
  end
  else begin
    Queue.add p target;
    Accepted
  end

let busy t = t.busy

let set_busy t b = t.busy <- b

let take_next t =
  if not (Queue.is_empty t.high) then Some (Queue.pop t.high)
  else if not (Queue.is_empty t.low) then Some (Queue.pop t.low)
  else None

let service_time t (p : Packet.t) =
  (* capacity in Mbps = 1000 bits/ms. *)
  p.Packet.size_bits /. (t.capacity_mbps *. 1000.)

let queue_length t klass =
  match (t.discipline, klass) with
  | Fifo, Packet.High -> Queue.length t.high
  | Fifo, Packet.Low -> 0
  | Priority, Packet.High -> Queue.length t.high
  | Priority, Packet.Low -> Queue.length t.low

let total_queued t = Queue.length t.high + Queue.length t.low

let busy_time t = t.busy_time

let add_busy_time t dt = t.busy_time <- t.busy_time +. dt

let transmitted t = function
  | Packet.High -> t.tx_high
  | Packet.Low -> t.tx_low

let note_transmitted t = function
  | Packet.High -> t.tx_high <- t.tx_high + 1
  | Packet.Low -> t.tx_low <- t.tx_low + 1

let dropped t = function
  | Packet.High -> t.drop_high
  | Packet.Low -> t.drop_low
