module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Dijkstra = Dtr_graph.Dijkstra
module Matrix = Dtr_traffic.Matrix
module Prng = Dtr_util.Prng
module Dist = Dtr_util.Dist
module Pqueue = Dtr_util.Pqueue
module Weights = Dtr_routing.Weights

type config = {
  duration : float;
  warmup : float;
  mean_packet_bits : float;
  seed : int;
  discipline : Link_queue.discipline;
  buffer_packets : int option;
}

let default_config =
  {
    duration = 2000.;
    warmup = 200.;
    mean_packet_bits = 8000.;
    seed = 0;
    discipline = Link_queue.Priority;
    buffer_packets = None;
  }

type class_stats = {
  injected : int;
  delivered : int;
  dropped : int;
  mean_delay : float;
  p95_delay : float;
  max_delay : float;
  mean_hops : float;
}

type result = {
  high : class_stats;
  low : class_stats;
  link_utilization : float array;
  clock : float;
  pair_delays : (int * int * Packet.klass, float * int) Hashtbl.t;
}

type flow = {
  f_src : int;
  f_dst : int;
  f_klass : Packet.klass;
  rate_per_ms : float;  (* packet arrival rate *)
}

type event =
  | Inject of int  (* flow index *)
  | Service_done of int  (* arc id *)
  | Arrive of Packet.t * int  (* packet reaches a node *)

(* Growable float accumulator for delay samples. *)
type samples = { mutable data : float array; mutable len : int }

let samples_create () = { data = Array.make 1024 0.; len = 0 }

let samples_add s x =
  if s.len = Array.length s.data then begin
    let nd = Array.make (2 * s.len) 0. in
    Array.blit s.data 0 nd 0 s.len;
    s.data <- nd
  end;
  s.data.(s.len) <- x;
  s.len <- s.len + 1

let samples_array s = Array.sub s.data 0 s.len

let class_stats_of ~injected ~dropped ~hops samples =
  let a = samples_array samples in
  let delivered = Array.length a in
  if delivered = 0 then
    {
      injected;
      delivered = 0;
      dropped;
      mean_delay = 0.;
      p95_delay = 0.;
      max_delay = 0.;
      mean_hops = 0.;
    }
  else
    {
      injected;
      delivered;
      dropped;
      mean_delay = Dtr_util.Stats.mean a;
      p95_delay = Dtr_util.Stats.percentile a 95.;
      max_delay = snd (Dtr_util.Stats.min_max a);
      mean_hops = float_of_int hops /. float_of_int delivered;
    }

let run g ~wh ~wl ~th ~tl config =
  Weights.validate g wh;
  Weights.validate g wl;
  if config.duration <= 0. then invalid_arg "Sim.run: non-positive duration";
  if config.warmup < 0. || config.warmup >= config.duration then
    invalid_arg "Sim.run: warmup must lie in [0, duration)";
  if config.mean_packet_bits <= 0. then
    invalid_arg "Sim.run: non-positive packet size";
  let n = Graph.node_count g in
  if Matrix.size th <> n || Matrix.size tl <> n then
    invalid_arg "Sim.run: matrix size mismatch";
  let rng = Prng.create config.seed in
  let dags_h = Spf.all_destinations g ~weights:wh in
  let dags_l = if wh == wl then dags_h else Spf.all_destinations g ~weights:wl in
  (* Flows: one Poisson source per positive matrix entry. *)
  let flows = ref [] in
  let add_flows matrix klass dags =
    Matrix.iter matrix (fun s t demand ->
        if dags.(t).Spf.dist.(s) = Dijkstra.unreachable then
          invalid_arg (Printf.sprintf "Sim.run: no path %d -> %d" s t);
        (* demand in Mbps = demand * 1000 bits per ms. *)
        let rate = demand *. 1000. /. config.mean_packet_bits in
        flows := { f_src = s; f_dst = t; f_klass = klass; rate_per_ms = rate }
                 :: !flows)
  in
  add_flows th Packet.High dags_h;
  add_flows tl Packet.Low dags_l;
  let flows = Array.of_list !flows in
  let queues =
    Array.init (Graph.arc_count g) (fun id ->
        Link_queue.create ~discipline:config.discipline
          ?buffer_packets:config.buffer_packets
          ~capacity_mbps:(Graph.arc g id).Graph.capacity ())
  in
  let in_service = Array.make (Graph.arc_count g) None in
  let events = Pqueue.create () in
  let next_packet_id = ref 0 in
  let injected_high = ref 0 and injected_low = ref 0 in
  let hops_high = ref 0 and hops_low = ref 0 in
  let delays_high = samples_create () and delays_low = samples_create () in
  let pair_delays = Hashtbl.create 64 in
  let clock = ref 0. in
  let schedule t ev = if t <= config.duration then Pqueue.add events t ev else () in
  let schedule_injection fi =
    let f = flows.(fi) in
    if f.rate_per_ms > 0. then begin
      let dt = Dist.exponential rng ~rate:f.rate_per_ms in
      schedule (!clock +. dt) (Inject fi)
    end
  in
  let record_delivery (p : Packet.t) =
    if !clock >= config.warmup then begin
      let delay = !clock -. p.Packet.created in
      (match p.Packet.klass with
      | Packet.High ->
          samples_add delays_high delay;
          hops_high := !hops_high + p.Packet.hops
      | Packet.Low ->
          samples_add delays_low delay;
          hops_low := !hops_low + p.Packet.hops);
      let key = (p.Packet.src, p.Packet.dst, p.Packet.klass) in
      let sum, count =
        match Hashtbl.find_opt pair_delays key with
        | Some (s, c) -> (s, c)
        | None -> (0., 0)
      in
      Hashtbl.replace pair_delays key (sum +. delay, count + 1)
    end
  in
  let start_service arc (p : Packet.t) =
    let q = queues.(arc) in
    Link_queue.set_busy q true;
    in_service.(arc) <- Some p;
    let st = Link_queue.service_time q p in
    Link_queue.add_busy_time q st;
    schedule (!clock +. st) (Service_done arc)
  in
  let rec handle_at_node (p : Packet.t) v =
    if v = p.Packet.dst then record_delivery p
    else begin
      let dags = match p.Packet.klass with
        | Packet.High -> dags_h
        | Packet.Low -> dags_l
      in
      let next = dags.(p.Packet.dst).Spf.next_arcs.(v) in
      assert (Array.length next > 0);
      let arc = next.(Prng.int rng (Array.length next)) in
      p.Packet.hops <- p.Packet.hops + 1;
      let q = queues.(arc) in
      if Link_queue.busy q then
        match Link_queue.enqueue q p with
        | Link_queue.Accepted | Link_queue.Dropped -> ()
      else start_service arc p
    end
  and handle_event = function
    | Inject fi ->
        let f = flows.(fi) in
        let size = Dist.exponential rng ~rate:(1. /. config.mean_packet_bits) in
        (* Guard against pathological zero-size draws. *)
        let size = Float.max size 1. in
        let p =
          Packet.create ~id:!next_packet_id ~klass:f.f_klass ~src:f.f_src
            ~dst:f.f_dst ~size_bits:size ~created:!clock
        in
        incr next_packet_id;
        (match f.f_klass with
        | Packet.High -> incr injected_high
        | Packet.Low -> incr injected_low);
        schedule_injection fi;
        handle_at_node p f.f_src
    | Service_done arc -> (
        let q = queues.(arc) in
        match in_service.(arc) with
        | None -> assert false
        | Some p ->
            in_service.(arc) <- None;
            Link_queue.note_transmitted q p.Packet.klass;
            let a = Graph.arc g arc in
            schedule (!clock +. a.Graph.delay) (Arrive (p, a.Graph.dst));
            (match Link_queue.take_next q with
            | Some nxt -> start_service arc nxt
            | None -> Link_queue.set_busy q false))
    | Arrive (p, v) -> handle_at_node p v
  in
  Array.iteri (fun fi _ -> schedule_injection fi) flows;
  let running = ref true in
  while !running do
    match Pqueue.pop_min events with
    | None -> running := false
    | Some (t, ev) ->
        clock := t;
        handle_event ev
  done;
  let link_utilization =
    Array.map (fun q -> Link_queue.busy_time q /. config.duration) queues
  in
  let dropped klass =
    Array.fold_left (fun acc q -> acc + Link_queue.dropped q klass) 0 queues
  in
  {
    high =
      class_stats_of ~injected:!injected_high
        ~dropped:(dropped Packet.High) ~hops:!hops_high delays_high;
    low =
      class_stats_of ~injected:!injected_low ~dropped:(dropped Packet.Low)
        ~hops:!hops_low delays_low;
    link_utilization;
    clock = !clock;
    pair_delays;
  }

let pair_mean_delay r ~src ~dst ~klass =
  match Hashtbl.find_opt r.pair_delays (src, dst, klass) with
  | None -> None
  | Some (sum, count) ->
      if count = 0 then None else Some (sum /. float_of_int count)
