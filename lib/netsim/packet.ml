type klass = High | Low

let klass_name = function High -> "high" | Low -> "low"

type t = {
  id : int;
  klass : klass;
  src : int;
  dst : int;
  size_bits : float;
  created : float;
  mutable hops : int;
}

let create ~id ~klass ~src ~dst ~size_bits ~created =
  if size_bits <= 0. then invalid_arg "Packet.create: non-positive size";
  if src = dst then invalid_arg "Packet.create: src = dst";
  { id; klass; src; dst; size_bits; created; hops = 0 }
