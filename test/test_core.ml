(* Tests for Dtr_core: the search configuration, the Algorithm-2
   neighborhood, the problem wrapper with per-class routing caches, and
   the DTR/STR searches themselves (on small instances with small
   budgets). *)

module Prng = Dtr_util.Prng
module Graph = Dtr_graph.Graph
module Matrix = Dtr_traffic.Matrix
module Lexico = Dtr_cost.Lexico
module Objective = Dtr_routing.Objective
module Weights = Dtr_routing.Weights
module Search_config = Dtr_core.Search_config
module Problem = Dtr_core.Problem
module Neighborhood = Dtr_core.Neighborhood
module Dtr_search = Dtr_core.Dtr_search
module Str_search = Dtr_core.Str_search
module Classic = Dtr_topology.Classic

let checkf = Alcotest.(check (float 1e-9))

let tiny_config =
  {
    Search_config.quick with
    Search_config.n_iters = 40;
    k_iters = 60;
    diversify_after = 10;
  }

(* A 6-node ring with capacity 1 and a mixed demand: enough structure
   for the searches to have something to do, small enough to be fast. *)
let ring_problem ?(model = Objective.Load) () =
  let g = Classic.ring ~capacity:1.0 ~delay:2.0 6 in
  let th = Matrix.create 6 and tl = Matrix.create 6 in
  Matrix.set th 0 3 0.3;
  Matrix.set th 1 4 0.2;
  Matrix.set tl 0 3 0.4;
  Matrix.set tl 2 5 0.5;
  Matrix.set tl 4 1 0.3;
  Problem.create ~graph:g ~th ~tl ~model

(* ------------------------------------------------------------------ *)
(* Search_config *)

let test_config_presets_valid () =
  Search_config.validate Search_config.paper;
  Search_config.validate Search_config.default;
  Search_config.validate Search_config.quick

let test_config_paper_values () =
  let p = Search_config.paper in
  Alcotest.(check int) "N" 300_000 p.Search_config.n_iters;
  Alcotest.(check int) "K" 800_000 p.Search_config.k_iters;
  Alcotest.(check int) "m" 5 p.Search_config.m_neighbors;
  Alcotest.(check int) "M" 300 p.Search_config.diversify_after;
  checkf "g1" 0.05 p.Search_config.g1;
  checkf "g3" 0.03 p.Search_config.g3;
  checkf "tau" 1.5 p.Search_config.tau;
  checkf "literal neighborhood" 0. p.Search_config.scan_probability

let test_config_scale () =
  let s = Search_config.scale Search_config.quick 2. in
  Alcotest.(check int) "doubled N" 500 s.Search_config.n_iters;
  Alcotest.(check int) "doubled K" 1000 s.Search_config.k_iters;
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Search_config.scale: non-positive factor") (fun () ->
      ignore (Search_config.scale Search_config.quick 0.))

let test_config_validate_rejects () =
  Alcotest.check_raises "n_iters"
    (Invalid_argument "Search_config: n_iters must be positive") (fun () ->
      Search_config.validate
        { Search_config.quick with Search_config.n_iters = 0 });
  Alcotest.check_raises "g1" (Invalid_argument "Search_config: g1 out of [0,1]")
    (fun () ->
      Search_config.validate { Search_config.quick with Search_config.g1 = 1.5 })

(* ------------------------------------------------------------------ *)
(* Neighborhood *)

let test_rank_by_cost_decreasing () =
  let costs = [| 3.; 9.; 1.; 5. |] in
  let ranking =
    Neighborhood.rank_by_cost
      ~cmp:(fun a b -> Float.compare costs.(a) costs.(b))
      4
  in
  Alcotest.(check (array int)) "decreasing" [| 1; 3; 0; 2 |] ranking

let test_rank_by_cost_stable_ties () =
  let costs = [| 1.; 1.; 1. |] in
  let ranking =
    Neighborhood.rank_by_cost
      ~cmp:(fun a b -> Float.compare costs.(a) costs.(b))
      3
  in
  Alcotest.(check (array int)) "tie broken by id" [| 0; 1; 2 |] ranking

let test_candidate_sets_shape () =
  let rng = Prng.create 1 in
  let ranking = Array.init 20 (fun i -> i) in
  for _ = 1 to 100 do
    let a, b = Neighborhood.candidate_sets rng ~tau:1.5 ~m:5 ~ranking in
    Alcotest.(check int) "A size" 5 (Array.length a);
    Alcotest.(check int) "B size" 5 (Array.length b);
    Array.iter
      (fun id -> Alcotest.(check bool) "A valid" true (id >= 0 && id < 20))
      a;
    Array.iter
      (fun id -> Alcotest.(check bool) "B valid" true (id >= 0 && id < 20))
      b
  done

let test_candidate_sets_small_ranking () =
  let rng = Prng.create 2 in
  let ranking = [| 0; 1; 2 |] in
  let a, b = Neighborhood.candidate_sets rng ~tau:1.5 ~m:5 ~ranking in
  Alcotest.(check int) "clamped to n" 3 (Array.length a);
  Alcotest.(check int) "clamped to n" 3 (Array.length b)

let test_candidate_sets_biased_to_extremes () =
  (* With tau large, A must start at rank 1 and B end at rank n. *)
  let rng = Prng.create 3 in
  let ranking = Array.init 10 (fun i -> 100 + i) in
  let hits_top = ref 0 and hits_bottom = ref 0 in
  for _ = 1 to 200 do
    let a, b = Neighborhood.candidate_sets rng ~tau:8. ~m:3 ~ranking in
    if Array.mem 100 a then incr hits_top;
    if Array.mem 109 b then incr hits_bottom
  done;
  Alcotest.(check bool) "top rank almost always in A" true (!hits_top > 180);
  Alcotest.(check bool) "bottom rank almost always in B" true (!hits_bottom > 180)

let test_moves_pairing () =
  let rng = Prng.create 4 in
  let moves = Neighborhood.moves rng ~a:[| 0; 1; 2 |] ~b:[| 3; 4; 5 |] in
  Alcotest.(check int) "three moves" 3 (List.length moves);
  List.iter
    (fun m ->
      Alcotest.(check bool) "up from A" true (m.Neighborhood.up_arc < 3);
      Alcotest.(check bool) "down from B" true (m.Neighborhood.down_arc >= 3))
    moves;
  let ups = List.map (fun m -> m.Neighborhood.up_arc) moves in
  Alcotest.(check int) "distinct ups" 3 (List.length (List.sort_uniq compare ups))

let test_moves_drops_self_pairs () =
  let rng = Prng.create 5 in
  let moves = Neighborhood.moves rng ~a:[| 7 |] ~b:[| 7 |] in
  Alcotest.(check int) "self pair dropped" 0 (List.length moves)

let test_apply_move () =
  let w = [| 10; 20; 30 |] in
  let m = { Neighborhood.up_arc = 0; down_arc = 1 } in
  let w' = Neighborhood.apply m ~step:3 w in
  Alcotest.(check (array int)) "applied" [| 13; 17; 30 |] w';
  Alcotest.(check (array int)) "original intact" [| 10; 20; 30 |] w;
  let m2 = { Neighborhood.up_arc = 2; down_arc = 0 } in
  let w2 = Neighborhood.apply m2 ~step:25 w in
  Alcotest.(check int) "clamped up" 30 w2.(2);
  Alcotest.(check int) "clamped down" 1 w2.(0)

(* ------------------------------------------------------------------ *)
(* Problem *)

let test_problem_rejects_disconnected () =
  let g =
    Graph.build ~n:3 [ { Graph.src = 0; dst = 1; capacity = 1.; delay = 1. } ]
  in
  let th = Matrix.create 3 and tl = Matrix.create 3 in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Problem.create: graph must be strongly connected")
    (fun () -> ignore (Problem.create ~graph:g ~th ~tl ~model:Objective.Load))

let test_problem_eval_str_is_str () =
  let p = ring_problem () in
  let w = Weights.uniform p.Problem.graph 15 in
  let s = Problem.eval_str p ~w in
  Alcotest.(check bool) "wh == wl" true (Problem.is_str s)

let test_problem_eval_dtr_distinct () =
  let p = ring_problem () in
  let wh = Weights.uniform p.Problem.graph 15 in
  let wl = Weights.uniform p.Problem.graph 10 in
  let s = Problem.eval_dtr p ~wh ~wl in
  Alcotest.(check bool) "not str" false (Problem.is_str s)

let test_problem_defensive_copies () =
  let p = ring_problem () in
  let w = Weights.uniform p.Problem.graph 15 in
  let s = Problem.eval_str p ~w in
  w.(0) <- 1;
  Alcotest.(check int) "solution unaffected" 15 s.Problem.wh.(0)

let test_problem_combine_matches_eval () =
  let p = ring_problem () in
  let wh = Weights.uniform p.Problem.graph 12 in
  let wl = Weights.uniform p.Problem.graph 20 in
  let direct = Problem.eval_dtr p ~wh ~wl in
  let combined =
    Problem.combine p ~h:(Problem.route_h p wh) ~l:(Problem.route_l p wl)
  in
  checkf "same objective primary" (Problem.objective direct).Lexico.primary
    (Problem.objective combined).Lexico.primary;
  checkf "same objective secondary" (Problem.objective direct).Lexico.secondary
    (Problem.objective combined).Lexico.secondary

let test_problem_sla_cache () =
  let p = ring_problem ~model:(Objective.Sla Dtr_cost.Sla.default) () in
  let wh = Weights.uniform p.Problem.graph 12 in
  let h = Problem.route_h p wh in
  let l1 = Problem.route_l p (Weights.uniform p.Problem.graph 10) in
  let l2 = Problem.route_l p (Weights.uniform p.Problem.graph 20) in
  let s1 = Problem.combine p ~h ~l:l1 in
  let s2 = Problem.combine p ~h ~l:l2 in
  match (s1.Problem.result.Objective.sla, s2.Problem.result.Objective.sla) with
  | Some a, Some b -> Alcotest.(check bool) "cache shared" true (a == b)
  | _ -> Alcotest.fail "expected sla results"

let test_problem_evaluation_counter () =
  let p = ring_problem () in
  Problem.reset_evaluations ();
  let w = Weights.uniform p.Problem.graph 15 in
  ignore (Problem.eval_str p ~w);
  ignore (Problem.eval_str p ~w);
  Alcotest.(check int) "two evaluations" 2 (Problem.evaluations ())

let test_problem_routing_weights_copy () =
  let p = ring_problem () in
  let w = Weights.uniform p.Problem.graph 9 in
  let r = Problem.route_h p w in
  Alcotest.(check (array int)) "weights preserved" w (Problem.routing_weights r)

(* ------------------------------------------------------------------ *)
(* Dtr_search / Str_search *)

let objective_of_initial p =
  let mid = (Weights.min_weight + Weights.max_weight) / 2 in
  let w = Array.make (Graph.arc_count p.Problem.graph) mid in
  Problem.objective (Problem.eval_str p ~w)

let test_find_h_never_worsens () =
  let p = ring_problem () in
  let rng = Prng.create 6 in
  let sol =
    ref
      (Problem.eval_dtr p
         ~wh:(Weights.uniform p.Problem.graph 15)
         ~wl:(Weights.uniform p.Problem.graph 15))
  in
  for _ = 1 to 30 do
    let next = Dtr_search.find_h rng tiny_config p !sol in
    Alcotest.(check bool) "monotone" true
      (Lexico.compare (Problem.objective next) (Problem.objective !sol) <= 0);
    sol := next
  done

let test_find_l_preserves_high_priority () =
  let p = ring_problem () in
  let rng = Prng.create 7 in
  let sol =
    ref
      (Problem.eval_dtr p
         ~wh:(Weights.uniform p.Problem.graph 15)
         ~wl:(Weights.uniform p.Problem.graph 15))
  in
  let initial_primary = (Problem.objective !sol).Lexico.primary in
  for _ = 1 to 30 do
    sol := Dtr_search.find_l rng tiny_config p !sol
  done;
  checkf "primary untouched by FindL" initial_primary
    (Problem.objective !sol).Lexico.primary

let test_dtr_run_improves () =
  let p = ring_problem () in
  let report = Dtr_search.run (Prng.create 8) tiny_config p in
  Alcotest.(check bool) "no worse than initial" true
    (Lexico.compare report.Dtr_search.objective (objective_of_initial p) <= 0);
  Alcotest.(check bool) "evaluations counted" true
    (report.Dtr_search.evaluations > 0);
  Alcotest.(check int) "three phase records" 3
    (List.length report.Dtr_search.phase_objectives)

let test_dtr_run_deterministic () =
  let p = ring_problem () in
  let a = Dtr_search.run (Prng.create 9) tiny_config p in
  let b = Dtr_search.run (Prng.create 9) tiny_config p in
  checkf "same primary" a.Dtr_search.objective.Lexico.primary
    b.Dtr_search.objective.Lexico.primary;
  checkf "same secondary" a.Dtr_search.objective.Lexico.secondary
    b.Dtr_search.objective.Lexico.secondary

let test_dtr_run_custom_start () =
  let p = ring_problem () in
  let m = Graph.arc_count p.Problem.graph in
  let w0 = (Array.make m 1, Array.make m 30) in
  let report = Dtr_search.run ~w0 (Prng.create 10) tiny_config p in
  let w0_obj =
    Problem.objective (Problem.eval_dtr p ~wh:(fst w0) ~wl:(snd w0))
  in
  Alcotest.(check bool) "no worse than its start" true
    (Lexico.compare report.Dtr_search.objective w0_obj <= 0)

let test_dtr_progress_callback () =
  let p = ring_problem () in
  let count = ref 0 in
  let seen_phases = Hashtbl.create 4 in
  let on_progress pr =
    incr count;
    Hashtbl.replace seen_phases pr.Dtr_search.phase ()
  in
  ignore (Dtr_search.run ~on_progress (Prng.create 11) tiny_config p);
  Alcotest.(check int) "N + N + K notifications" (40 + 40 + 60) !count;
  Alcotest.(check int) "all three phases seen" 3 (Hashtbl.length seen_phases)

let test_str_run_improves () =
  let p = ring_problem () in
  let report = Str_search.run ~iters:60 (Prng.create 12) tiny_config p in
  Alcotest.(check bool) "no worse than initial" true
    (Lexico.compare report.Str_search.objective (objective_of_initial p) <= 0);
  Alcotest.(check bool) "solution is STR" true
    (Problem.is_str report.Str_search.best)

let test_str_archive_pareto () =
  let p = ring_problem () in
  let report = Str_search.run ~iters:60 (Prng.create 13) tiny_config p in
  let pts = report.Str_search.archive in
  Alcotest.(check bool) "non-empty" true (pts <> []);
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a != b then
            Alcotest.(check bool) "nondominated" false
              (a.Str_search.phi_h <= b.Str_search.phi_h
              && a.Str_search.phi_l <= b.Str_search.phi_l
              && (a.Str_search.phi_h < b.Str_search.phi_h
                 || a.Str_search.phi_l < b.Str_search.phi_l)))
        pts)
    pts;
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Str_search.phi_h <= b.Str_search.phi_h && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted pts)

let test_str_relaxed_best_monotone () =
  let p = ring_problem () in
  let report = Str_search.run ~iters:80 (Prng.create 14) tiny_config p in
  let phi_l_at eps =
    match Str_search.relaxed_best report ~epsilon:eps with
    | Some a -> a.Str_search.phi_l
    | None -> Float.infinity
  in
  Alcotest.(check bool) "epsilon 0 exists" true
    (Str_search.relaxed_best report ~epsilon:0. <> None);
  Alcotest.(check bool) "looser epsilon never hurts" true
    (phi_l_at 0.3 <= phi_l_at 0.05 && phi_l_at 0.05 <= phi_l_at 0.);
  Alcotest.check_raises "negative epsilon"
    (Invalid_argument "Str_search.relaxed_best: negative epsilon") (fun () ->
      ignore (Str_search.relaxed_best report ~epsilon:(-0.1)))

let test_str_archive_empty_under_sla () =
  let p = ring_problem ~model:(Objective.Sla Dtr_cost.Sla.default) () in
  let report = Str_search.run ~iters:20 (Prng.create 15) tiny_config p in
  Alcotest.(check bool) "no archive under SLA" true
    (report.Str_search.archive = []);
  Alcotest.(check bool) "relaxed query yields none" true
    (Str_search.relaxed_best report ~epsilon:0.3 = None)

let test_default_iters_budget () =
  Alcotest.(check int) "tiny config"
    (2 * (((2 * 40) + 60) * 5) / 29)
    (Str_search.default_iters tiny_config)

let test_dtr_beats_or_ties_str_secondary () =
  (* DTR's space contains every STR solution, so with a comparable
     budget it should match STR on both components (tiny slack for
     search noise). *)
  let p = ring_problem () in
  let cfg = { tiny_config with Search_config.n_iters = 80; k_iters = 120 } in
  let str = Str_search.run (Prng.create 16) cfg p in
  let dtr = Dtr_search.run (Prng.create 17) cfg p in
  Alcotest.(check bool) "DTR primary no worse" true
    (dtr.Dtr_search.objective.Lexico.primary
    <= str.Str_search.objective.Lexico.primary +. 1e-6);
  Alcotest.(check bool) "DTR secondary no worse" true
    (dtr.Dtr_search.objective.Lexico.secondary
    <= str.Str_search.objective.Lexico.secondary +. 1e-6)

let test_dtr_finds_known_optimum_on_triangle () =
  (* Fig. 1 instance: 1/3 high- and 2/3 low-priority units from A to C
     on the unit triangle.  The DTR optimum is provably
     ⟨Φ_H, Φ_L⟩ = ⟨1/3, 11/9⟩: H takes the direct arc
     (Φ_H = φ(1/3, 1) = 1/3); L splits evenly between the direct arc
     (residual 2/3) and the two-hop detour, costing
     φ(1/3, 2/3) + 2 φ(1/3, 1) = 5/9 + 2/3 = 11/9 — better than
     direct-only (64/9) or detour-only (8/3). *)
  let g = Classic.triangle ~capacity:1.0 ~delay:1.0 () in
  let th = Matrix.create 3 and tl = Matrix.create 3 in
  Matrix.set th 0 2 (1. /. 3.);
  Matrix.set tl 0 2 (2. /. 3.);
  let p = Problem.create ~graph:g ~th ~tl ~model:Objective.Load in
  let cfg = { tiny_config with Search_config.n_iters = 120; k_iters = 150 } in
  let report = Dtr_search.run (Prng.create 40) cfg p in
  Alcotest.(check (float 1e-9)) "optimal Phi_H" (1. /. 3.)
    report.Dtr_search.objective.Lexico.primary;
  Alcotest.(check (float 1e-9)) "optimal Phi_L" (11. /. 9.)
    report.Dtr_search.objective.Lexico.secondary

let test_str_finds_known_optimum_on_triangle () =
  (* Same instance: under STR both classes share the routing, so the
     strict lexicographic optimum is direct-only — ⟨1/3, 64/9⟩ (the
     even split would halve Φ_L's pain but costs Φ_H = 1/2). *)
  let g = Classic.triangle ~capacity:1.0 ~delay:1.0 () in
  let th = Matrix.create 3 and tl = Matrix.create 3 in
  Matrix.set th 0 2 (1. /. 3.);
  Matrix.set tl 0 2 (2. /. 3.);
  let p = Problem.create ~graph:g ~th ~tl ~model:Objective.Load in
  let report = Str_search.run ~iters:150 (Prng.create 41) tiny_config p in
  Alcotest.(check (float 1e-9)) "optimal Phi_H" (1. /. 3.)
    report.Str_search.objective.Lexico.primary;
  Alcotest.(check (float 1e-9)) "optimal Phi_L" (64. /. 9.)
    report.Str_search.objective.Lexico.secondary

let test_str_relaxation_reaches_split_on_triangle () =
  (* §5.3.1 on the Fig. 1 triangle, exactly: the candidate trade-offs
     are direct-only ⟨1/3, 64/9⟩, even split ⟨1/2, 4/3⟩ and
     detour-only ⟨2/3, 8/3⟩.  With ε = 50 % the split qualifies
     (Φ_H = 1/2 = 1.5 · Φ*_H) and its Φ_L = 4/3 is the best
     admissible value; with ε = 5 % only direct-only qualifies. *)
  let g = Classic.triangle ~capacity:1.0 ~delay:1.0 () in
  let th = Matrix.create 3 and tl = Matrix.create 3 in
  Matrix.set th 0 2 (1. /. 3.);
  Matrix.set tl 0 2 (2. /. 3.);
  let p = Problem.create ~graph:g ~th ~tl ~model:Objective.Load in
  let report = Str_search.run ~iters:150 (Prng.create 42) tiny_config p in
  (match Str_search.relaxed_best report ~epsilon:0.51 with
  | None -> Alcotest.fail "expected a relaxed solution"
  | Some a ->
      Alcotest.(check (float 1e-9)) "split Phi_L" (4. /. 3.) a.Str_search.phi_l;
      Alcotest.(check (float 1e-9)) "split Phi_H" 0.5 a.Str_search.phi_h);
  match Str_search.relaxed_best report ~epsilon:0.05 with
  | None -> Alcotest.fail "expected the strict solution"
  | Some a ->
      Alcotest.(check (float 1e-9)) "strict Phi_L" (64. /. 9.) a.Str_search.phi_l

(* ------------------------------------------------------------------ *)
(* Anneal_search *)

module Anneal_search = Dtr_core.Anneal_search

let fast_schedule =
  {
    Anneal_search.t0_ratio = 0.05;
    cooling = 0.8;
    moves_per_temp = 10;
    t_min_ratio = 0.01;
  }

let test_anneal_schedule_validation () =
  Anneal_search.validate_schedule Anneal_search.default_schedule;
  Alcotest.check_raises "bad cooling"
    (Invalid_argument "Anneal_search: cooling must be in (0, 1)") (fun () ->
      Anneal_search.validate_schedule
        { fast_schedule with Anneal_search.cooling = 1.0 })

let test_anneal_improves () =
  let p = ring_problem () in
  let report =
    Anneal_search.run ~schedule:fast_schedule (Prng.create 30) tiny_config p
  in
  Alcotest.(check bool) "no worse than initial" true
    (Lexico.compare report.Anneal_search.objective (objective_of_initial p) <= 0);
  Alcotest.(check bool) "evaluations counted" true
    (report.Anneal_search.evaluations > 0);
  Alcotest.(check bool) "some proposals accepted" true
    (report.Anneal_search.accepted > 0)

let test_anneal_deterministic () =
  let p = ring_problem () in
  let a = Anneal_search.run ~schedule:fast_schedule (Prng.create 31) tiny_config p in
  let b = Anneal_search.run ~schedule:fast_schedule (Prng.create 31) tiny_config p in
  checkf "same primary" a.Anneal_search.objective.Lexico.primary
    b.Anneal_search.objective.Lexico.primary;
  checkf "same secondary" a.Anneal_search.objective.Lexico.secondary
    b.Anneal_search.objective.Lexico.secondary

let test_anneal_sla_model () =
  let p = ring_problem ~model:(Objective.Sla Dtr_cost.Sla.default) () in
  let report =
    Anneal_search.run ~schedule:fast_schedule (Prng.create 32) tiny_config p
  in
  Alcotest.(check bool) "finite objective" true
    (Float.is_finite report.Anneal_search.objective.Lexico.primary)

(* ------------------------------------------------------------------ *)
(* Mtr_search (multi-class extension) *)

module Mtr_search = Dtr_core.Mtr_search
module Multi = Dtr_routing.Multi

let three_class_problem () =
  let g = Classic.ring ~capacity:1.0 ~delay:2.0 6 in
  let m0 = Matrix.create 6 and m1 = Matrix.create 6 and m2 = Matrix.create 6 in
  Matrix.set m0 0 3 0.2;
  Matrix.set m1 1 4 0.3;
  Matrix.set m1 5 2 0.2;
  Matrix.set m2 0 3 0.4;
  Matrix.set m2 2 5 0.4;
  Mtr_search.create_problem ~graph:g ~matrices:[| m0; m1; m2 |]

let test_mtr_create_rejects () =
  let g = Classic.ring 4 in
  Alcotest.check_raises "one class"
    (Invalid_argument "Mtr_search.create_problem: need at least 2 classes")
    (fun () ->
      ignore (Mtr_search.create_problem ~graph:g ~matrices:[| Matrix.create 4 |]))

let test_mtr_run_improves () =
  let problem = three_class_problem () in
  let report = Mtr_search.run (Prng.create 20) tiny_config problem in
  let mid = Array.make 12 15 in
  let initial =
    Multi.evaluate problem.Mtr_search.graph ~weights:[| mid; mid; mid |]
      ~matrices:problem.Mtr_search.matrices
  in
  Alcotest.(check bool) "no worse than initial" true
    (Multi.compare_objective report.Mtr_search.objective
       (Multi.objective initial)
    <= 0);
  Alcotest.(check int) "three weight vectors" 3
    (Array.length report.Mtr_search.weights);
  Alcotest.(check bool) "evaluations counted" true
    (report.Mtr_search.evaluations > 0)

let test_mtr_deterministic () =
  let problem = three_class_problem () in
  let a = Mtr_search.run (Prng.create 21) tiny_config problem in
  let b = Mtr_search.run (Prng.create 21) tiny_config problem in
  Alcotest.(check int) "same objective" 0
    (Multi.compare_objective a.Mtr_search.objective b.Mtr_search.objective)

let test_mtr_single_topology_shares_vector () =
  let problem = three_class_problem () in
  let report =
    Mtr_search.run_single_topology (Prng.create 22) tiny_config problem
  in
  Alcotest.(check bool) "one shared vector" true
    (report.Mtr_search.weights.(0) = report.Mtr_search.weights.(1)
    && report.Mtr_search.weights.(1) = report.Mtr_search.weights.(2))

let test_mtr_no_worse_than_single_topology () =
  let problem = three_class_problem () in
  let cfg = { tiny_config with Search_config.n_iters = 60; k_iters = 80 } in
  let str = Mtr_search.run_single_topology (Prng.create 23) cfg problem in
  let mtr = Mtr_search.run (Prng.create 24) cfg problem in
  (* The multi-topology space contains the shared-vector space. *)
  Alcotest.(check bool) "lexicographically no worse" true
    (Multi.compare_objective mtr.Mtr_search.objective str.Mtr_search.objective
    <= 0
    ||
    (* allow equality within noise on the leading components *)
    Array.for_all2
      (fun a b -> a <= b +. 1e-6)
      mtr.Mtr_search.objective str.Mtr_search.objective)

(* ------------------------------------------------------------------ *)
(* Warm-start validation.  Every search validates a caller-supplied w0
   at entry, so an out-of-range weight is an immediate
   Invalid_argument instead of a crash (or silent corruption) deep
   inside the first scan — the former failure mode was an overflow in
   the candidate-value tables once an over-max weight reached them. *)

let out_of_bounds = Invalid_argument "Weights.validate: weight out of bounds"
let length_mismatch = Invalid_argument "Weights.validate: length mismatch"

let check_rejects label exn f = Alcotest.check_raises label exn f

let test_str_rejects_bad_w0 () =
  let p = ring_problem () in
  let m = Graph.arc_count p.Problem.graph in
  let over = Array.make m (Weights.max_weight + 1) in
  check_rejects "over max" out_of_bounds (fun () ->
      ignore (Str_search.run ~w0:over (Prng.create 40) tiny_config p));
  check_rejects "short vector" length_mismatch (fun () ->
      ignore (Str_search.run ~w0:(Array.make (m - 1) 1) (Prng.create 40)
                tiny_config p))

let test_dtr_rejects_bad_w0 () =
  let p = ring_problem () in
  let m = Graph.arc_count p.Problem.graph in
  check_rejects "zero weight in wl" out_of_bounds (fun () ->
      ignore
        (Dtr_search.run ~w0:(Array.make m 1, Array.make m 0) (Prng.create 41)
           tiny_config p));
  check_rejects "short wh" length_mismatch (fun () ->
      ignore
        (Dtr_search.run ~w0:(Array.make (m - 1) 1, Array.make m 1)
           (Prng.create 41) tiny_config p))

let test_mtr_rejects_bad_w0 () =
  let problem = three_class_problem () in
  let m = Graph.arc_count problem.Mtr_search.graph in
  let good = Array.make m 1 in
  let bad = Array.make m (Weights.max_weight + 1) in
  check_rejects "bad class vector" out_of_bounds (fun () ->
      ignore
        (Mtr_search.run ~w0:[| good; bad; good |] (Prng.create 42) tiny_config
           problem));
  check_rejects "single topology" out_of_bounds (fun () ->
      ignore
        (Mtr_search.run_single_topology ~w0:bad (Prng.create 42) tiny_config
           problem))

let test_anneal_rejects_bad_w0 () =
  let p = ring_problem () in
  let m = Graph.arc_count p.Problem.graph in
  check_rejects "over max in wh" out_of_bounds (fun () ->
      ignore
        (Anneal_search.run ~schedule:fast_schedule
           ~w0:(Array.make m (Weights.max_weight + 1), Array.make m 1)
           (Prng.create 43) tiny_config p))

let () =
  Alcotest.run "dtr_core"
    [
      ( "config",
        [
          Alcotest.test_case "presets valid" `Quick test_config_presets_valid;
          Alcotest.test_case "paper values" `Quick test_config_paper_values;
          Alcotest.test_case "scale" `Quick test_config_scale;
          Alcotest.test_case "validate rejects" `Quick
            test_config_validate_rejects;
        ] );
      ( "neighborhood",
        [
          Alcotest.test_case "rank decreasing" `Quick test_rank_by_cost_decreasing;
          Alcotest.test_case "rank stable ties" `Quick
            test_rank_by_cost_stable_ties;
          Alcotest.test_case "candidate sets shape" `Quick
            test_candidate_sets_shape;
          Alcotest.test_case "small ranking clamps" `Quick
            test_candidate_sets_small_ranking;
          Alcotest.test_case "biased to extremes" `Quick
            test_candidate_sets_biased_to_extremes;
          Alcotest.test_case "moves pairing" `Quick test_moves_pairing;
          Alcotest.test_case "self pairs dropped" `Quick
            test_moves_drops_self_pairs;
          Alcotest.test_case "apply move" `Quick test_apply_move;
        ] );
      ( "problem",
        [
          Alcotest.test_case "rejects disconnected" `Quick
            test_problem_rejects_disconnected;
          Alcotest.test_case "eval_str is STR" `Quick test_problem_eval_str_is_str;
          Alcotest.test_case "eval_dtr distinct" `Quick
            test_problem_eval_dtr_distinct;
          Alcotest.test_case "defensive copies" `Quick
            test_problem_defensive_copies;
          Alcotest.test_case "combine matches eval" `Quick
            test_problem_combine_matches_eval;
          Alcotest.test_case "sla cache shared" `Quick test_problem_sla_cache;
          Alcotest.test_case "evaluation counter" `Quick
            test_problem_evaluation_counter;
          Alcotest.test_case "routing weights copy" `Quick
            test_problem_routing_weights_copy;
        ] );
      ( "search",
        [
          Alcotest.test_case "FindH never worsens" `Quick test_find_h_never_worsens;
          Alcotest.test_case "FindL preserves high priority" `Quick
            test_find_l_preserves_high_priority;
          Alcotest.test_case "DTR run improves" `Quick test_dtr_run_improves;
          Alcotest.test_case "DTR deterministic" `Quick test_dtr_run_deterministic;
          Alcotest.test_case "DTR custom start" `Quick test_dtr_run_custom_start;
          Alcotest.test_case "progress callback" `Quick test_dtr_progress_callback;
          Alcotest.test_case "STR run improves" `Quick test_str_run_improves;
          Alcotest.test_case "STR archive is Pareto" `Quick test_str_archive_pareto;
          Alcotest.test_case "relaxed best monotone" `Quick
            test_str_relaxed_best_monotone;
          Alcotest.test_case "archive empty under SLA" `Quick
            test_str_archive_empty_under_sla;
          Alcotest.test_case "STR default budget" `Quick test_default_iters_budget;
          Alcotest.test_case "DTR no worse than STR" `Slow
            test_dtr_beats_or_ties_str_secondary;
          Alcotest.test_case "finds known optimum on the Fig.1 triangle"
            `Quick test_dtr_finds_known_optimum_on_triangle;
          Alcotest.test_case "STR finds its known optimum on the triangle"
            `Quick test_str_finds_known_optimum_on_triangle;
          Alcotest.test_case "relaxation reaches the split on the triangle"
            `Quick test_str_relaxation_reaches_split_on_triangle;
        ] );
      ( "anneal",
        [
          Alcotest.test_case "schedule validation" `Quick
            test_anneal_schedule_validation;
          Alcotest.test_case "improves" `Quick test_anneal_improves;
          Alcotest.test_case "deterministic" `Quick test_anneal_deterministic;
          Alcotest.test_case "SLA model" `Quick test_anneal_sla_model;
        ] );
      ( "mtr",
        [
          Alcotest.test_case "create rejects" `Quick test_mtr_create_rejects;
          Alcotest.test_case "run improves" `Quick test_mtr_run_improves;
          Alcotest.test_case "deterministic" `Quick test_mtr_deterministic;
          Alcotest.test_case "single topology shares vector" `Quick
            test_mtr_single_topology_shares_vector;
          Alcotest.test_case "MTR no worse than single topology" `Slow
            test_mtr_no_worse_than_single_topology;
        ] );
      ( "w0-validation",
        [
          Alcotest.test_case "STR rejects bad w0" `Quick test_str_rejects_bad_w0;
          Alcotest.test_case "DTR rejects bad w0" `Quick test_dtr_rejects_bad_w0;
          Alcotest.test_case "MTR rejects bad w0" `Quick test_mtr_rejects_bad_w0;
          Alcotest.test_case "anneal rejects bad w0" `Quick
            test_anneal_rejects_bad_w0;
        ] );
    ]
