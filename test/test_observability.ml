(* Tests for the observability layer: the JSON reader, trace JSONL
   round-trips and probe decimation, flow attribution (the bitwise
   reconciliation contract), the weight-diff churn engine (self-diff
   emptiness, golden output on Abilene, batched MT-OSPF deployment),
   and aggregated run reports. *)

module Json = Dtr_util.Json
module Prng = Dtr_util.Prng
module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Matrix = Dtr_traffic.Matrix
module Classic = Dtr_topology.Classic
module Weights = Dtr_routing.Weights
module Eval_ctx = Dtr_routing.Eval_ctx
module Attribution = Dtr_routing.Attribution
module Diff = Dtr_routing.Diff
module Objective = Dtr_routing.Objective
module Network = Dtr_mtospf.Network
module Search_config = Dtr_core.Search_config
module Problem = Dtr_core.Problem
module Dtr_search = Dtr_core.Dtr_search
module Multistart = Dtr_core.Multistart
module Trace = Dtr_core.Trace
module Report_gen = Dtr_core.Report_gen
module Scenario = Dtr_experiments.Scenario

let bits = Int64.bits_of_float

let check_bitwise msg a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s (%h vs %h)" msg a b)
    true
    (Int64.equal (bits a) (bits b))

(* The six-node ring problem shared by the search tests: two classes,
   a handful of demands, weights that split flow over both ring
   directions. *)
let ring_instance () =
  let g = Classic.ring ~capacity:1.0 ~delay:2.0 6 in
  let th = Matrix.create 6 and tl = Matrix.create 6 in
  Matrix.set th 0 3 0.3;
  Matrix.set th 1 4 0.2;
  Matrix.set tl 0 3 0.4;
  Matrix.set tl 2 5 0.5;
  Matrix.set tl 4 1 0.3;
  (g, th, tl)

let tiny_config =
  {
    Search_config.quick with
    Search_config.n_iters = 12;
    k_iters = 15;
    diversify_after = 6;
  }

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_scalars () =
  let ok s = Result.get_ok (Json.parse s) in
  Alcotest.(check bool) "null" true (ok "null" = Json.Null);
  Alcotest.(check bool) "true" true (ok " true " = Json.Bool true);
  Alcotest.(check bool) "false" true (ok "false" = Json.Bool false);
  Alcotest.(check (option (float 0.)))
    "number" (Some 2.5)
    (Json.to_float (ok "2.5"));
  Alcotest.(check (option int)) "negative int" (Some (-42))
    (Json.to_int (ok "-42"));
  Alcotest.(check (option int)) "non-integer is not an int" None
    (Json.to_int (ok "2.5"));
  Alcotest.(check (option string))
    "string escapes" (Some "a\"b\\c\n\t/")
    (Json.to_string (ok {|"a\"b\\c\n\t\/"|}));
  Alcotest.(check (option string))
    "u-escape" (Some "\xc3\xa9")
    (Json.to_string (ok "\"\\u00e9\""));
  Alcotest.(check (option string))
    "surrogate pair" (Some "\xf0\x9f\x98\x80")
    (Json.to_string (ok "\"\\ud83d\\ude00\""))

let test_json_structures () =
  match Json.parse {|{"a": [1, 2.5, "x"], "b": {"c": null}, "a": 9}|} with
  | Error e -> Alcotest.fail e
  | Ok doc ->
      (match Json.member "a" doc with
      | Some (Json.Arr [ one; _; x ]) ->
          Alcotest.(check (option int)) "first element" (Some 1)
            (Json.to_int one);
          Alcotest.(check (option string))
            "third element" (Some "x") (Json.to_string x)
      | _ -> Alcotest.fail "member a is a 3-array; first match wins");
      (match Json.member "b" doc with
      | Some b ->
          Alcotest.(check bool)
            "nested null" true
            (Json.member "c" b = Some Json.Null)
      | None -> Alcotest.fail "member b present");
      Alcotest.(check bool) "absent member" true (Json.member "z" doc = None)

let test_json_errors () =
  let fails s =
    Alcotest.(check bool)
      (Printf.sprintf "%S rejected" s)
      true
      (Result.is_error (Json.parse s))
  in
  List.iter fails
    [ ""; "{"; "[1,]"; "nul"; "{\"a\":}"; "1 2"; "\"unterminated"; "{'a':1}" ]

let test_json_float_round_trip () =
  List.iter
    (fun x ->
      let s = Printf.sprintf "%.17g" x in
      match Json.parse s with
      | Ok j -> (
          match Json.to_float j with
          | Some y -> check_bitwise (s ^ " round-trips") x y
          | None -> Alcotest.fail (s ^ " parsed as a non-number"))
      | Error e -> Alcotest.fail e)
    [ 0.1; 1. /. 3.; Float.pi; 1e-300; 6.02e23; -0.3333333333333333 ]

(* ------------------------------------------------------------------ *)
(* Trace: JSONL round-trip and probe decimation *)

let traced_events () =
  let ring = Trace.ring ~timestamps:true () in
  let g, th, tl = ring_instance () in
  let problem = Problem.create ~graph:g ~th ~tl ~model:Objective.Load in
  ignore (Dtr_search.run ~trace:ring (Prng.create 11) tiny_config problem);
  Trace.events ring

let test_trace_json_round_trip () =
  let evs = traced_events () in
  Alcotest.(check bool) "events recorded" true (List.length evs > 0);
  List.iter
    (fun (e : Trace.event) ->
      match Trace.of_json (Trace.to_json e) with
      | Error msg -> Alcotest.fail msg
      | Ok e' ->
          (* Floats are emitted with %.17g, so the decoded event is
             structurally identical — polymorphic equality covers every
             field, bit-exact float arrays included. *)
          Alcotest.(check bool)
            (Printf.sprintf "event %d survives the round-trip" e.Trace.seq)
            true (e = e'))
    evs

let test_trace_of_json_rejects () =
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" line)
        true
        (Result.is_error (Trace.of_json line)))
    [
      "";
      "[1]";
      {|{"seq":0}|};
      (* missing the other fields *)
      (let good =
         Trace.to_json
           {
             Trace.seq = 0;
             restart = -1;
             kind = Trace.Probe;
             iteration = 0;
             detail = 0;
             accepted = false;
             before = [||];
             after = [||];
             best = [||];
             evaluations = 0;
             full_evals = 0;
             delta_evals = 0;
             memo_hits = 0;
             memo_misses = 0;
             value = 0.;
             time_us = 0.;
           }
       in
       (* Corrupt the kind name. *)
       let needle = "\"probe\"" in
       let n = String.length needle in
       let rec find i =
         if i + n > String.length good then -1
         else if String.sub good i n = needle then i
         else find (i + 1)
       in
       let i = find 0 in
       String.sub good 0 i ^ "\"probed\""
       ^ String.sub good (i + n) (String.length good - i - n));
    ]

let emit_kind t kind =
  Trace.emit t ~kind ~iteration:0 ()

let test_trace_sample_decimates () =
  let inner = Trace.ring ~timestamps:false () in
  let t = Trace.sample 3 inner in
  for _ = 1 to 10 do
    emit_kind t Trace.Probe
  done;
  emit_kind t Trace.Diversify;
  emit_kind t Trace.Phase_done;
  let evs = Trace.events inner in
  let count k =
    List.length (List.filter (fun (e : Trace.event) -> e.Trace.kind = k) evs)
  in
  (* Probes 1, 4, 7, 10 of the 10 offered survive 1-in-3 decimation. *)
  Alcotest.(check int) "probes kept" 4 (count Trace.Probe);
  Alcotest.(check int) "non-probes all pass" 1 (count Trace.Diversify);
  Alcotest.(check int) "phase boundaries all pass" 1 (count Trace.Phase_done);
  (* seq is assigned by the inner sink: consecutive despite the drops. *)
  List.iteri
    (fun i (e : Trace.event) ->
      Alcotest.(check int) "consecutive seq" i e.Trace.seq)
    evs;
  Alcotest.(check int) "length counts kept events" 6 (Trace.length t)

let test_trace_sample_identity () =
  let inner = Trace.ring () in
  Alcotest.(check bool)
    "sample 1 is the sink itself" true
    (Trace.sample 1 inner == inner);
  Alcotest.(check bool)
    "sampling the disabled sink stays disabled" true
    (Trace.sample 5 Trace.disabled == Trace.disabled);
  Alcotest.check_raises "n < 1 rejected"
    (Invalid_argument "Trace.sample: period must be positive") (fun () ->
      ignore (Trace.sample 0 inner))

(* ------------------------------------------------------------------ *)
(* Attribution: the bitwise reconciliation contract *)

let ring_ctx ?dest_mode ~wh ~wl () =
  let g, th, tl = ring_instance () in
  (g, Eval_ctx.create ?dest_mode g ~weights:[| wh; wl |] ~matrices:[| th; tl |])

(* Σ over reported rows must reconcile with the committed link load:
   destination rows bitwise (same summation order as the context),
   pair rows within floating-point tolerance (ECMP shares re-associate
   the even splits differently). *)
let check_attribution_reconciles g ctx =
  for k = 0 to Eval_ctx.class_count ctx - 1 do
    let loads = Eval_ctx.loads ctx k in
    for arc = 0 to Graph.arc_count g - 1 do
      check_bitwise
        (Printf.sprintf "class %d arc %d link_load" k arc)
        loads.(arc)
        (Attribution.link_load ctx ~klass:k ~arc);
      let dests = Attribution.by_destination ctx ~klass:k ~arc in
      let dsum =
        Array.fold_left (fun s e -> s +. e.Attribution.de_load) 0. dests
      in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "class %d arc %d destination rows sum" k arc)
        loads.(arc) dsum;
      let pairs = Attribution.by_pair ctx ~klass:k ~arc in
      let psum =
        Array.fold_left (fun s p -> s +. p.Attribution.pe_load) 0. pairs
      in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "class %d arc %d pair shares sum" k arc)
        loads.(arc) psum;
      Array.iter
        (fun (p : Attribution.pair_entry) ->
          Alcotest.(check bool)
            "a pair never contributes more than its demand" true
            (p.Attribution.pe_load <= p.Attribution.pe_demand +. 1e-12
            && p.Attribution.pe_load > 0.))
        pairs
    done
  done

let test_attribution_modes () =
  List.iter
    (fun dest_mode ->
      (* Uniform weights: maximal ECMP splitting on the ring. *)
      let g6 = Classic.ring ~capacity:1.0 ~delay:2.0 6 in
      let wh = Weights.uniform g6 1 and wl = Weights.uniform g6 1 in
      let g, ctx = ring_ctx ~dest_mode ~wh ~wl () in
      check_attribution_reconciles g ctx;
      (* Random distinct weights: asymmetric trees per class. *)
      let rng = Prng.create 42 in
      let wh = Weights.random rng g6 and wl = Weights.random rng g6 in
      let g, ctx = ring_ctx ~dest_mode ~wh ~wl () in
      check_attribution_reconciles g ctx)
    [ Eval_ctx.All; Eval_ctx.Demand ]

let test_attribution_after_commit () =
  let g6 = Classic.ring ~capacity:1.0 ~delay:2.0 6 in
  let wh = Weights.uniform g6 15 and wl = Weights.uniform g6 14 in
  let g, ctx = ring_ctx ~wh ~wl () in
  (* The contract must survive the probe/commit path, not just the
     from-scratch construction. *)
  Eval_ctx.commit ctx (Eval_ctx.probe ctx ~klass:0 ~changes:[ (0, 30) ]);
  Eval_ctx.commit ctx (Eval_ctx.probe ctx ~klass:1 ~changes:[ (3, 2); (5, 9) ]);
  check_attribution_reconciles g ctx

let test_attribution_sla_scenario () =
  (* The same contract on a real instance under the SLA cost model:
     loads are cost-model independent, but this exercises the exact
     context `inspect --explain` builds for an SLA run. *)
  let inst =
    Scenario.make
      {
        Scenario.topology = Scenario.Abilene;
        fraction = 0.30;
        hp = Scenario.Random_density 0.10;
        seed = 1;
      }
  in
  let inst = Scenario.scale_to_utilization inst ~target:0.6 in
  let g = inst.Scenario.graph in
  let wh = Weights.uniform g 15 and wl = Weights.uniform g 14 in
  let ctx =
    Eval_ctx.create g ~weights:[| wh; wl |]
      ~matrices:[| inst.Scenario.th; inst.Scenario.tl |]
  in
  check_attribution_reconciles g ctx;
  (* And the evaluation the context attributes is the one Objective
     reports for the same weights. *)
  let r =
    Objective.evaluate (Objective.Sla Dtr_cost.Sla.default) g ~wh ~wl
      ~th:inst.Scenario.th ~tl:inst.Scenario.tl
  in
  let phi = Eval_ctx.phi ctx in
  check_bitwise "phi_h matches Objective" r.Objective.eval.Dtr_routing.Evaluate.phi_h
    phi.(0);
  check_bitwise "phi_l matches Objective" r.Objective.eval.Dtr_routing.Evaluate.phi_l
    phi.(1)

(* ------------------------------------------------------------------ *)
(* Diff *)

let test_diff_self_empty () =
  let g6 = Classic.ring ~capacity:1.0 ~delay:2.0 6 in
  let wh = Weights.uniform g6 15 and wl = Weights.uniform g6 14 in
  let _, ctx = ring_ctx ~wh ~wl () in
  let d = Diff.compute ctx ctx in
  Alcotest.(check bool) "self-diff is empty" true (Diff.is_empty d);
  Alcotest.(check int) "no changed arcs" 0 d.Diff.changed_arcs;
  Array.iter
    (fun (cd : Diff.class_diff) ->
      Alcotest.(check int) "no rerouted pairs" 0 cd.Diff.cd_rerouted_pairs;
      Alcotest.(check (float 0.)) "no traffic moved" 0.
        cd.Diff.cd_traffic_moved)
    d.Diff.classes;
  let rc = Diff.reconvergence ctx ctx in
  Alcotest.(check int) "no reconvergence changes" 0 rc.Diff.rc_changes;
  Alcotest.(check int) "no re-origination" 0 rc.Diff.rc_routers;
  Alcotest.(check int) "no flooding" 0 rc.Diff.rc_stats.Network.messages

let test_diff_jobs_invariant_and_of_changes () =
  (* Diff requires physical graph equality: both contexts must share
     one graph and matrix set. *)
  let g, th, tl = ring_instance () in
  let matrices = [| th; tl |] in
  let wh = Weights.uniform g 15 and wl = Weights.uniform g 14 in
  let ctx_a = Eval_ctx.create g ~weights:[| wh; wl |] ~matrices in
  (* Arcs 10 (0->1) and 8 (1->2) carry the clockwise H flow of the
     0->3 and 1->4 demands, so this change must reroute. *)
  let changes = [ (8, 1); (10, 30) ] in
  let wh' = Array.copy wh in
  wh'.(10) <- 30;
  wh'.(8) <- 1;
  let ctx_b = Eval_ctx.create g ~weights:[| wh'; wl |] ~matrices in
  let d1 = Diff.compute ~jobs:1 ctx_a ctx_b in
  let d4 = Diff.compute ~jobs:4 ctx_a ctx_b in
  Alcotest.(check string) "diff is jobs-invariant" (Diff.to_json d1)
    (Diff.to_json d4);
  let dc = Diff.of_changes ctx_a ~klass:0 ~changes in
  Alcotest.(check string) "of_changes equals the two-context diff"
    (Diff.to_json d1) (Diff.to_json dc);
  Alcotest.(check bool) "the diff is real" false (Diff.is_empty d1);
  Alcotest.(check int) "both arcs counted once" 2 d1.Diff.changed_arcs;
  let cd = d1.Diff.classes.(0) in
  Alcotest.(check bool) "rerouted pairs bounded" true
    (cd.Diff.cd_rerouted_pairs > 0
    && cd.Diff.cd_rerouted_pairs <= cd.Diff.cd_total_pairs);
  Alcotest.(check bool) "rerouting moves traffic" true
    (cd.Diff.cd_traffic_moved > 0.);
  Alcotest.(check bool) "rerouted demand bounded" true
    (cd.Diff.cd_rerouted_demand <= cd.Diff.cd_total_demand +. 1e-12)

let test_diff_golden_abilene () =
  let inst =
    Scenario.make
      {
        Scenario.topology = Scenario.Abilene;
        fraction = 0.30;
        hp = Scenario.Random_density 0.10;
        seed = 1;
      }
  in
  let inst = Scenario.scale_to_utilization inst ~target:0.6 in
  let g = inst.Scenario.graph in
  let matrices = [| inst.Scenario.th; inst.Scenario.tl |] in
  let wh = Weights.uniform g 15 and wl = Weights.uniform g 14 in
  let wh' = Array.copy wh and wl' = Array.copy wl in
  (* A deterministic three-arc maintenance batch. *)
  wh'.(0) <- 30;
  wh'.(7) <- 3;
  wl'.(12) <- 25;
  let ctx_a = Eval_ctx.create g ~weights:[| wh; wl |] ~matrices in
  let ctx_b = Eval_ctx.create g ~weights:[| wh'; wl' |] ~matrices in
  let sla = (Dtr_cost.Sla.default, inst.Scenario.th) in
  let d = Diff.compute ~sla ctx_a ctx_b in
  let rc = Diff.reconvergence ctx_a ctx_b in
  let buf = Buffer.create 1024 in
  let add t =
    Buffer.add_string buf (Dtr_util.Table.to_string t);
    Buffer.add_char buf '\n'
  in
  add (Diff.summary_table d);
  add (Diff.changed_arcs_table ~top:5 ctx_a d);
  add (Diff.reconvergence_table rc);
  Buffer.add_string buf (Diff.to_json ~reconv:rc d);
  Buffer.add_char buf '\n';
  let out = Buffer.contents buf in
  match Sys.getenv_opt "DTR_UPDATE_GOLDEN" with
  | Some _ ->
      let oc = open_out "diff_abilene.golden" in
      output_string oc out;
      close_out oc
  | None ->
      let golden =
        let ic = open_in "diff_abilene.golden" in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check string) "diff tables match golden" golden out

(* ------------------------------------------------------------------ *)
(* Batched weight deployment *)

let test_apply_changes_matches_sequential () =
  let g = Classic.ring ~capacity:1.0 ~delay:2.0 6 in
  let weight_sets = [| Weights.uniform g 15; Weights.uniform g 14 |] in
  let batch = [ (0, 0, 30); (0, 3, 2); (1, 3, 9); (1, 8, 1) ] in
  let net_batch = Network.create g ~weight_sets in
  ignore (Network.flood net_batch);
  let net_seq = Network.create g ~weight_sets in
  ignore (Network.flood net_seq);
  let stats = Network.apply_changes net_batch batch in
  let seq_messages =
    List.fold_left
      (fun acc (topology, arc, weight) ->
        let s = Network.set_weight net_seq ~topology ~arc ~weight in
        acc + s.Network.messages)
      0 batch
  in
  Alcotest.(check bool) "batch converged" true (Network.converged net_batch);
  Alcotest.(check bool) "sequential converged" true (Network.converged net_seq);
  Alcotest.(check bool) "one batch flood is cheaper" true
    (stats.Network.messages <= seq_messages);
  (* Node 3 owns changed arcs in both topologies yet re-originates
     once per batch, so at most one router per changed head. *)
  Alcotest.(check bool) "some routers re-originated" true
    (stats.Network.messages > 0);
  for topology = 0 to 1 do
    for router = 0 to Graph.node_count g - 1 do
      let a = Network.routing_table net_batch ~router ~topology in
      let b = Network.routing_table net_seq ~router ~topology in
      Array.iteri
        (fun dst (dag : Spf.dag) ->
          Alcotest.(check (array int))
            (Printf.sprintf "router %d topo %d dst %d distances" router
               topology dst)
            b.(dst).Spf.dist dag.Spf.dist;
          Array.iteri
            (fun v arcs ->
              let sort a =
                let a = Array.copy a in
                Array.sort compare a;
                a
              in
              Alcotest.(check (array int)) "next hops"
                (sort b.(dst).Spf.next_arcs.(v))
                (sort arcs))
            dag.Spf.next_arcs)
        a
    done
  done;
  Alcotest.(check int) "empty batch floods nothing" 0
    (Network.apply_changes net_batch []).Network.messages

(* ------------------------------------------------------------------ *)
(* Report generation *)

let with_temp_trace f =
  let path = Filename.temp_file "dtr_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_report_single_run () =
  with_temp_trace @@ fun path ->
  let oc = open_out path in
  let trace = Trace.jsonl ~timestamps:false oc in
  let g, th, tl = ring_instance () in
  let problem = Problem.create ~graph:g ~th ~tl ~model:Objective.Load in
  let r = Dtr_search.run ~trace (Prng.create 11) tiny_config problem in
  close_out oc;
  match Report_gen.load path with
  | Error e -> Alcotest.fail e
  | Ok rep ->
      Alcotest.(check int) "no bad lines" 0 (Report_gen.bad_lines rep);
      let totals = Report_gen.totals rep in
      Alcotest.(check int)
        "every line parsed"
        (List.length (Report_gen.events rep))
        totals.Report_gen.t_events;
      Alcotest.(check int) "single run has no restarts" 0
        totals.Report_gen.t_restarts;
      Alcotest.(check bool) "moves recorded" true
        (totals.Report_gen.t_moves > 0);
      (* The DTR search closes three routines per descent round. *)
      let phases = Report_gen.phases rep in
      Alcotest.(check bool) "at least three phases" true
        (List.length phases >= 3);
      List.iter
        (fun (p : Report_gen.phase) ->
          Alcotest.(check bool)
            ("phase accounting: " ^ p.Report_gen.p_label)
            true
            (p.Report_gen.p_accepted <= p.Report_gen.p_moves
            && p.Report_gen.p_evaluations >= 0))
        phases;
      (* The trace's final best is the report's best is the search's. *)
      let best = totals.Report_gen.t_best in
      Alcotest.(check bool) "best vector present" true
        (Array.length best > 0);
      check_bitwise "report best = search best"
        r.Dtr_search.objective.Dtr_cost.Lexico.primary best.(0);
      let md = Report_gen.to_markdown rep in
      List.iter
        (fun needle ->
          let n = String.length needle and m = String.length md in
          let rec go i =
            i + n <= m && (String.sub md i n = needle || go (i + 1))
          in
          Alcotest.(check bool) ("markdown contains " ^ needle) true (go 0))
        [ "# DTR run report"; "## Summary"; "## Events by kind"; "## Phases" ];
      (match Json.parse (Report_gen.to_json rep) with
      | Error e -> Alcotest.fail ("report json invalid: " ^ e)
      | Ok doc ->
          Alcotest.(check bool) "summary object present" true
            (Json.member "summary" doc <> None))

let test_report_multistart_restarts () =
  with_temp_trace @@ fun path ->
  let oc = open_out path in
  let trace = Trace.jsonl ~timestamps:false oc in
  let g, th, tl = ring_instance () in
  let problem = Problem.create ~graph:g ~th ~tl ~model:Objective.Load in
  ignore
    (Multistart.run ~jobs:2 ~trace ~restarts:3 ~algo:Multistart.Dtr
       (Prng.create 7) tiny_config problem);
  close_out oc;
  match Report_gen.load path with
  | Error e -> Alcotest.fail e
  | Ok rep ->
      let totals = Report_gen.totals rep in
      Alcotest.(check int) "three restarts" 3 totals.Report_gen.t_restarts;
      (* Per-restart counters are cumulative within a segment; the
         totals sum the per-segment maxima, so the total evaluation
         count must dominate any single event's counter. *)
      List.iter
        (fun (e : Trace.event) ->
          Alcotest.(check bool) "totals dominate per-segment counters" true
            (totals.Report_gen.t_evaluations >= e.Trace.evaluations))
        (Report_gen.events rep);
      let phases = Report_gen.phases rep in
      Alcotest.(check bool) "phases attributed to restarts" true
        (List.for_all
           (fun (p : Report_gen.phase) -> p.Report_gen.p_restart >= 0)
           phases)

let test_report_load_errors () =
  Alcotest.(check bool) "unreadable file is an error" true
    (Result.is_error (Report_gen.load "/nonexistent/trace.jsonl"));
  with_temp_trace @@ fun path ->
  let oc = open_out path in
  output_string oc "not json\n{\"also\": \"not a trace event\"}\n";
  close_out oc;
  Alcotest.(check bool) "all-garbage trace is an error" true
    (Result.is_error (Report_gen.load path))

let () =
  Alcotest.run "observability"
    [
      ( "json",
        [
          Alcotest.test_case "scalars and escapes" `Quick test_json_scalars;
          Alcotest.test_case "structures" `Quick test_json_structures;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "float round-trip" `Quick
            test_json_float_round_trip;
        ] );
      ( "trace",
        [
          Alcotest.test_case "jsonl round-trip" `Quick
            test_trace_json_round_trip;
          Alcotest.test_case "of_json rejects" `Quick test_trace_of_json_rejects;
          Alcotest.test_case "sample decimates probes" `Quick
            test_trace_sample_decimates;
          Alcotest.test_case "sample identities" `Quick
            test_trace_sample_identity;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "bitwise reconciliation (all modes)" `Quick
            test_attribution_modes;
          Alcotest.test_case "survives probe/commit" `Quick
            test_attribution_after_commit;
          Alcotest.test_case "sla scenario on abilene" `Quick
            test_attribution_sla_scenario;
        ] );
      ( "diff",
        [
          Alcotest.test_case "self-diff is empty" `Quick test_diff_self_empty;
          Alcotest.test_case "jobs-invariant; of_changes agrees" `Quick
            test_diff_jobs_invariant_and_of_changes;
          Alcotest.test_case "golden output on abilene" `Quick
            test_diff_golden_abilene;
        ] );
      ( "mtospf",
        [
          Alcotest.test_case "apply_changes matches sequential" `Quick
            test_apply_changes_matches_sequential;
        ] );
      ( "report",
        [
          Alcotest.test_case "single run" `Quick test_report_single_run;
          Alcotest.test_case "multistart restarts" `Quick
            test_report_multistart_restarts;
          Alcotest.test_case "load errors" `Quick test_report_load_errors;
        ] );
    ]
