(* Tests for Dtr_experiments: scenario construction and scaling, the
   STR/DTR comparison runner, the Fig. 1 exact numbers, the registry,
   and smoke runs of the cheap experiment runners. *)

module Scenario = Dtr_experiments.Scenario
module Compare = Dtr_experiments.Compare
module Fig1_joint = Dtr_experiments.Fig1_joint
module Registry = Dtr_experiments.Registry
module Matrix = Dtr_traffic.Matrix
module Graph = Dtr_graph.Graph
module Objective = Dtr_routing.Objective
module Table = Dtr_util.Table
module Highpri = Dtr_traffic.Highpri
module Search_config = Dtr_core.Search_config

let checkf eps = Alcotest.(check (float eps))

let tiny_cfg =
  {
    Search_config.quick with
    Search_config.n_iters = 30;
    k_iters = 40;
    diversify_after = 10;
  }

let random_spec =
  {
    Scenario.topology = Scenario.Random_topo;
    fraction = 0.30;
    hp = Scenario.Random_density 0.10;
    seed = 3;
  }

(* ------------------------------------------------------------------ *)
(* Scenario *)

let test_scenario_make_shapes () =
  let inst = Scenario.make random_spec in
  Alcotest.(check int) "30 nodes" 30 (Graph.node_count inst.Scenario.graph);
  Alcotest.(check int) "300 arcs" 300 (Graph.arc_count inst.Scenario.graph);
  Alcotest.(check int) "matrix size" 30 (Matrix.size inst.Scenario.th)

let test_scenario_fraction () =
  let inst = Scenario.make random_spec in
  let f =
    Matrix.total inst.Scenario.th
    /. (Matrix.total inst.Scenario.th +. Matrix.total inst.Scenario.tl)
  in
  checkf 1e-9 "f = 30%" 0.30 f

let test_scenario_hp_density () =
  let inst = Scenario.make random_spec in
  (* 10% of 30*29 = 87 pairs. *)
  Alcotest.(check int) "87 hp pairs" 87 (Matrix.pair_count inst.Scenario.th)

let test_scenario_reproducible () =
  let a = Scenario.make random_spec in
  let b = Scenario.make random_spec in
  Alcotest.(check bool) "same traffic" true
    (Matrix.equal a.Scenario.th b.Scenario.th
    && Matrix.equal a.Scenario.tl b.Scenario.tl)

let test_scenario_seed_changes_traffic () =
  let a = Scenario.make random_spec in
  let b = Scenario.make { random_spec with Scenario.seed = 4 } in
  Alcotest.(check bool) "different traffic" false
    (Matrix.equal a.Scenario.tl b.Scenario.tl)

let test_scenario_scaling () =
  let inst = Scenario.make random_spec in
  let scaled = Scenario.scale_to_utilization inst ~target:0.6 in
  checkf 1e-6 "reference utilization hits target" 0.6
    (Scenario.reference_avg_utilization scaled);
  (* The class mix is preserved. *)
  let f m =
    Matrix.total m.Scenario.th
    /. (Matrix.total m.Scenario.th +. Matrix.total m.Scenario.tl)
  in
  checkf 1e-9 "fraction preserved" (f inst) (f scaled)

let test_scenario_sink_model () =
  let spec =
    {
      Scenario.topology = Scenario.Power_law;
      fraction = 0.20;
      hp = Scenario.Sinks { sinks = 3; density = 0.10; placement = Highpri.Uniform };
      seed = 5;
    }
  in
  let inst = Scenario.make spec in
  (* Bidirectional client-sink pairs only. *)
  let sinks = Dtr_topology.Power_law.top_degree_nodes inst.Scenario.graph 3 in
  let is_sink v = Array.mem v sinks in
  Matrix.iter inst.Scenario.th (fun s t _ ->
      Alcotest.(check bool) "one endpoint is a sink" true (is_sink s <> is_sink t))

let test_scenario_isp () =
  let inst = Scenario.make { random_spec with Scenario.topology = Scenario.Isp } in
  Alcotest.(check int) "16 nodes" 16 (Graph.node_count inst.Scenario.graph)

let test_scenario_names () =
  Alcotest.(check string) "random" "random" (Scenario.topology_name Scenario.Random_topo);
  Alcotest.(check string) "power-law" "power-law" (Scenario.topology_name Scenario.Power_law);
  Alcotest.(check string) "isp" "isp" (Scenario.topology_name Scenario.Isp);
  Alcotest.(check string) "waxman" "waxman" (Scenario.topology_name Scenario.Waxman);
  Alcotest.(check string) "transit-stub" "transit-stub"
    (Scenario.topology_name Scenario.Transit_stub);
  Alcotest.(check string) "abilene" "abilene" (Scenario.topology_name Scenario.Abilene)

let test_scenario_extension_topologies_build () =
  List.iter
    (fun kind ->
      let inst = Scenario.make { random_spec with Scenario.topology = kind } in
      Alcotest.(check bool)
        (Scenario.topology_name kind ^ " connected")
        true
        (Graph.is_strongly_connected inst.Scenario.graph))
    [ Scenario.Waxman; Scenario.Transit_stub; Scenario.Abilene ]

(* ------------------------------------------------------------------ *)
(* Compare *)

let test_ratio_guards () =
  checkf 1e-9 "normal" 2. (Compare.ratio ~num:4. ~den:2.);
  checkf 1e-9 "both zero" 1. (Compare.ratio ~num:0. ~den:0.);
  Alcotest.(check bool) "zero denominator" true
    (Compare.ratio ~num:1. ~den:0. = Float.infinity)

let isp_point =
  lazy
    (let inst =
       Scenario.make { random_spec with Scenario.topology = Scenario.Isp }
     in
     Compare.run_point ~cfg:tiny_cfg ~seed:1 inst ~model:Objective.Load
       ~target_util:0.6)

let test_run_point_sane () =
  let p = Lazy.force isp_point in
  Alcotest.(check bool) "measured utilization in range" true
    (p.Compare.measured_util > 0.3 && p.Compare.measured_util < 0.9);
  Alcotest.(check bool) "rh close to 1" true (p.Compare.rh > 0.5 && p.Compare.rh < 2.);
  Alcotest.(check bool) "rl at least ~1" true (p.Compare.rl > 0.5)

let test_points_table_render () =
  let p = Lazy.force isp_point in
  let table = Compare.points_table ~title:"t" [ p ] in
  Alcotest.(check int) "one row" 1 (List.length (Table.rows table));
  Alcotest.(check int) "three columns" 3 (List.length (Table.columns table))

(* ------------------------------------------------------------------ *)
(* Fig 1: the paper's exact numbers *)

let test_fig1_lexicographic_and_alpha35 () =
  let h, l = Fig1_joint.optimum_for_alpha ~alpha:35. in
  checkf 1e-6 "PhiH = 1/3" (1. /. 3.) h;
  checkf 1e-6 "PhiL = 64/9" (64. /. 9.) l

let test_fig1_alpha30_priority_inversion () =
  let h, l = Fig1_joint.optimum_for_alpha ~alpha:30. in
  checkf 1e-6 "PhiH = 1/2" 0.5 h;
  checkf 1e-6 "PhiL = 4/3" (4. /. 3.) l

let test_fig1_table_rows () =
  let t = Fig1_joint.run ~alphas:[ 35.; 30. ] in
  (* lexicographic + two alphas *)
  Alcotest.(check int) "three rows" 3 (List.length (Table.rows t))

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_covers_every_figure () =
  let names = Registry.names () in
  List.iter
    (fun required ->
      Alcotest.(check bool) (required ^ " present") true
        (List.mem required names))
    [
      "fig1"; "fig2a"; "fig2b"; "fig2c"; "fig2d"; "fig2e"; "fig2f"; "fig3a";
      "fig3b"; "fig3c"; "fig4"; "fig5a"; "fig5b"; "fig6"; "fig7"; "fig8a";
      "fig8b"; "fig9"; "table1-random"; "table1-powerlaw"; "table1-isp";
      "val-netsim"; "ablation-neighborhood"; "ablation-tau";
      "ablation-diversification"; "ablation-optimizer"; "ext-failure"; "ext-3class"; "ext-queueing"; "ext-diurnal";
      "ext-fig2-waxman"; "ext-fig2-transit";
    ]

let test_registry_unique_names () =
  let names = Registry.names () in
  Alcotest.(check int) "no duplicates"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_registry_find () =
  (match Registry.find "fig9" with
  | Some e -> Alcotest.(check string) "found" "fig9" e.Registry.name
  | None -> Alcotest.fail "fig9 missing");
  Alcotest.(check bool) "unknown" true (Registry.find "nope" = None)

(* ------------------------------------------------------------------ *)
(* Smoke runs of the cheap experiments (tiny budgets, ISP topology
   where a topology choice exists). *)

let test_smoke_fig2_isp () =
  let t =
    Dtr_experiments.Fig2.run ~cfg:tiny_cfg ~seed:2 ~targets:[ 0.6 ]
      ~topology:Scenario.Isp ~model:Objective.Load ()
  in
  Alcotest.(check int) "one row" 1 (List.length (Table.rows t))

let test_smoke_fig3 () =
  let t = Dtr_experiments.Fig3.run ~cfg:tiny_cfg ~seed:2 ~target_util:0.6 Dtr_experiments.Fig3.A in
  Alcotest.(check bool) "has rows" true (List.length (Table.rows t) > 5);
  (* Total link count in each column equals the number of arcs (300)
     minus overflow; just check columns parse as ints summing > 0. *)
  let sum_col idx =
    List.fold_left
      (fun acc row -> acc + int_of_string (List.nth row idx))
      0 (Table.rows t)
  in
  Alcotest.(check bool) "STR links counted" true (sum_col 1 > 0);
  Alcotest.(check bool) "DTR links counted" true (sum_col 2 > 0)

let test_smoke_table1_isp () =
  let t =
    Dtr_experiments.Table1.run ~cfg:tiny_cfg ~seed:2 ~targets:[ 0.6 ]
      ~topology:Scenario.Isp ()
  in
  Alcotest.(check int) "one row" 1 (List.length (Table.rows t));
  Alcotest.(check int) "four columns" 4 (List.length (Table.columns t))

let test_smoke_fig6 () =
  let t = Dtr_experiments.Fig6.run ~cfg:tiny_cfg ~seed:2 ~stride:25 () in
  Alcotest.(check bool) "rows sampled" true (List.length (Table.rows t) >= 5);
  (* The last row is the Gini summary; the rank rows above it are
     sorted descending per column. *)
  let rank_rows =
    List.filter (fun row -> List.nth row 0 <> "gini") (Table.rows t)
  in
  Alcotest.(check int) "gini row present" (List.length (Table.rows t) - 1)
    (List.length rank_rows);
  let col idx =
    List.map (fun row -> float_of_string (List.nth row idx)) rank_rows
  in
  let rec desc = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && desc rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted descending" true (desc (col 1))

(* ------------------------------------------------------------------ *)
(* Failure extension *)

let test_fail_link_removes_both_directions () =
  let g = Dtr_topology.Isp.generate () in
  let link = (Graph.undirected_link_pairs g).(0) in
  let reduced, mapping = Dtr_experiments.Failure.fail_link g ~link in
  Alcotest.(check int) "two arcs removed" (Graph.arc_count g - 2)
    (Graph.arc_count reduced);
  Alcotest.(check int) "mapping matches" (Graph.arc_count reduced)
    (Array.length mapping);
  (* Mapped arcs agree with their originals. *)
  Array.iteri
    (fun i orig ->
      let a = Graph.arc reduced i and b = Graph.arc g orig in
      Alcotest.(check bool) "same endpoints" true
        (a.Graph.src = b.Graph.src && a.Graph.dst = b.Graph.dst))
    mapping;
  Alcotest.(check bool) "still connected" true
    (Graph.is_strongly_connected reduced)

let test_fail_link_disconnection_is_priced_infinite () =
  (* A line graph disconnects when any link fails; fail_link still
     returns the reduced graph (disconnection is the caller's
     business), and the sweep prices such failures as infinite. *)
  let g = Dtr_topology.Classic.line 3 in
  let link = (Graph.undirected_link_pairs g).(0) in
  let reduced, _ = Dtr_experiments.Failure.fail_link g ~link in
  Alcotest.(check int) "two arcs removed" (Graph.arc_count g - 2)
    (Graph.arc_count reduced);
  Alcotest.(check bool) "reduced graph is disconnected" false
    (Graph.is_strongly_connected reduced)

let test_smoke_ext_3class () =
  let t = Dtr_experiments.Multi_class.run ~cfg:tiny_cfg ~seed:2 () in
  Alcotest.(check int) "three rows" 3 (List.length (Table.rows t));
  (* Gold (row 0) must have ratio ~1: MTR never hurts the top class. *)
  match Table.rows t with
  | gold :: _ ->
      let ratio = float_of_string (List.nth gold 3) in
      Alcotest.(check bool) "gold ratio sane" true (ratio > 0.5 && ratio < 2.)
  | [] -> Alcotest.fail "empty table"

let test_smoke_ablation_neighborhood () =
  let t = Dtr_experiments.Ablation.run_neighborhood ~cfg:tiny_cfg ~seed:2 () in
  Alcotest.(check int) "three variants" 3 (List.length (Table.rows t))

let test_smoke_validation_netsim () =
  let sim_config =
    { Dtr_netsim.Sim.default_config with Dtr_netsim.Sim.duration = 300.; warmup = 50. }
  in
  let t = Dtr_experiments.Validation.run ~cfg:tiny_cfg ~seed:2 ~sim_config () in
  Alcotest.(check bool) "has rows" true (List.length (Table.rows t) >= 5)

let test_smoke_ext_failure () =
  let t = Dtr_experiments.Failure.run ~cfg:tiny_cfg ~seed:2 () in
  (* Two schemes x two classes. *)
  Alcotest.(check int) "four rows" 4 (List.length (Table.rows t));
  (* Post-failure costs dominate the no-failure cost; the ISP survives
     every single failure, so all outcomes are finite. *)
  List.iter
    (fun row ->
      let base = float_of_string (List.nth row 2) in
      let mean = float_of_string (List.nth row 3) in
      let worst = float_of_string (List.nth row 4) in
      Alcotest.(check string) "no disconnecting failures" "0" (List.nth row 5);
      Alcotest.(check bool) "mean >= base" true (mean >= base *. 0.999);
      Alcotest.(check bool) "worst >= mean" true (worst >= mean *. 0.999))
    (Table.rows t)

let test_smoke_ext_diurnal () =
  let t =
    Dtr_experiments.Diurnal_exp.run ~cfg:tiny_cfg ~seed:2 ~hours:[ 20.; 4. ] ()
  in
  Alcotest.(check int) "two hours" 2 (List.length (Table.rows t));
  (* Re-optimized cost tracks the snapshot; tiny budgets add noise, so
     just require it stays within a generous factor of static. *)
  List.iter
    (fun row ->
      let static = float_of_string (List.nth row 2) in
      let reopt = float_of_string (List.nth row 3) in
      Alcotest.(check bool) "reopt no worse than 2x static" true
        (reopt <= 2. *. Float.max static 1.))
    (Table.rows t)

let test_smoke_ext_queueing () =
  let t =
    Dtr_experiments.Queueing.run ~cfg:tiny_cfg ~seed:2 ~sim_duration:1500. ()
  in
  Alcotest.(check int) "four rows" 4 (List.length (Table.rows t));
  let mean_of scheme klass =
    let row =
      List.find
        (fun r -> List.nth r 0 = scheme && List.nth r 1 = klass)
        (Table.rows t)
    in
    float_of_string (List.nth row 2)
  in
  (* Priority differentiates; FIFO keeps the classes together. *)
  let prio_gap = mean_of "priority" "low" -. mean_of "priority" "high" in
  let fifo_gap = Float.abs (mean_of "fifo" "low" -. mean_of "fifo" "high") in
  Alcotest.(check bool) "priority gap positive" true (prio_gap > 0.);
  Alcotest.(check bool) "fifo gap smaller" true
    (fifo_gap < Float.max prio_gap 0.5)

let () =
  Alcotest.run "dtr_experiments"
    [
      ( "scenario",
        [
          Alcotest.test_case "shapes" `Quick test_scenario_make_shapes;
          Alcotest.test_case "fraction" `Quick test_scenario_fraction;
          Alcotest.test_case "hp density" `Quick test_scenario_hp_density;
          Alcotest.test_case "reproducible" `Quick test_scenario_reproducible;
          Alcotest.test_case "seed changes traffic" `Quick
            test_scenario_seed_changes_traffic;
          Alcotest.test_case "scaling" `Quick test_scenario_scaling;
          Alcotest.test_case "sink model" `Quick test_scenario_sink_model;
          Alcotest.test_case "isp" `Quick test_scenario_isp;
          Alcotest.test_case "names" `Quick test_scenario_names;
          Alcotest.test_case "extension topologies build" `Quick
            test_scenario_extension_topologies_build;
        ] );
      ( "compare",
        [
          Alcotest.test_case "ratio guards" `Quick test_ratio_guards;
          Alcotest.test_case "run_point sane" `Slow test_run_point_sane;
          Alcotest.test_case "points table" `Slow test_points_table_render;
        ] );
      ( "fig1",
        [
          Alcotest.test_case "alpha 35 matches paper" `Quick
            test_fig1_lexicographic_and_alpha35;
          Alcotest.test_case "alpha 30 priority inversion" `Quick
            test_fig1_alpha30_priority_inversion;
          Alcotest.test_case "table rows" `Quick test_fig1_table_rows;
        ] );
      ( "registry",
        [
          Alcotest.test_case "covers every figure" `Quick
            test_registry_covers_every_figure;
          Alcotest.test_case "unique names" `Quick test_registry_unique_names;
          Alcotest.test_case "find" `Quick test_registry_find;
        ] );
      ( "smoke",
        [
          Alcotest.test_case "fig2 isp" `Slow test_smoke_fig2_isp;
          Alcotest.test_case "fig3 histogram" `Slow test_smoke_fig3;
          Alcotest.test_case "table1 isp" `Slow test_smoke_table1_isp;
          Alcotest.test_case "fig6 sorted" `Slow test_smoke_fig6;
          Alcotest.test_case "netsim validation" `Slow
            test_smoke_validation_netsim;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "fail_link removes both directions" `Quick
            test_fail_link_removes_both_directions;
          Alcotest.test_case "fail_link keeps disconnecting failures" `Quick
            test_fail_link_disconnection_is_priced_infinite;
          Alcotest.test_case "3-class smoke" `Slow test_smoke_ext_3class;
          Alcotest.test_case "ablation smoke" `Slow
            test_smoke_ablation_neighborhood;
          Alcotest.test_case "failure smoke" `Slow test_smoke_ext_failure;
          Alcotest.test_case "diurnal smoke" `Slow test_smoke_ext_diurnal;
          Alcotest.test_case "queueing smoke" `Slow test_smoke_ext_queueing;
        ] );
    ]
