(* Single-link failure sweeps: the delta engine against the
   from-scratch oracle (bitwise, on both cost models, including
   disconnecting failures), exact fail_link semantics on parallel
   links, infinite-cost handling through the Lexico comparison,
   penalty aggregation, memo key consistency across commits, and the
   robust search mode. *)

module Prng = Dtr_util.Prng
module Pool = Dtr_util.Pool
module Vmemo = Dtr_util.Vmemo
module Graph = Dtr_graph.Graph
module Gravity = Dtr_traffic.Gravity
module Highpri = Dtr_traffic.Highpri
module Weights = Dtr_routing.Weights
module Eval_ctx = Dtr_routing.Eval_ctx
module Failure_sweep = Dtr_routing.Failure_sweep
module Objective = Dtr_routing.Objective
module Lexico = Dtr_cost.Lexico
module Problem = Dtr_core.Problem
module Search_config = Dtr_core.Search_config
module Scan = Dtr_core.Scan

(* ------------------------------------------------------------------ *)
(* Fixtures *)

(* Mix topologies where every failure is survivable with ones where
   failures disconnect: the line graph loses a positive-demand pair on
   every link failure, the sparse Waxman/random graphs usually have at
   least one cut link. *)
let fixture seed =
  match seed mod 4 with
  | 0 -> Dtr_topology.Classic.line (4 + (seed mod 3))
  | 1 ->
      let rec go attempt =
        let rng = Prng.create (seed + (1000 * attempt)) in
        let g =
          Dtr_topology.Waxman.generate rng
            { Dtr_topology.Waxman.default with nodes = 12 }
        in
        if Graph.is_strongly_connected g then g else go (attempt + 1)
      in
      go 0
  | 2 ->
      let rec go attempt =
        let rng = Prng.create (seed + (1000 * attempt)) in
        let g =
          Dtr_topology.Random_topo.generate rng
            { Dtr_topology.Random_topo.default with nodes = 12; links = 22 }
        in
        if Graph.is_strongly_connected g then g else go (attempt + 1)
      in
      go 0
  | _ -> Dtr_topology.Classic.ring 8

let random_matrices rng g =
  let n = Graph.node_count g in
  let tl = Gravity.generate rng ~n Gravity.default in
  let pairs = Highpri.random_pairs rng ~n ~density:0.2 in
  let th = Highpri.volumes rng ~low:tl ~fraction:0.3 ~pairs in
  (th, tl)

let check_outcome ~what i (e : Failure_sweep.outcome)
    (a : Failure_sweep.outcome) =
  (* Stdlib float compare: exact, and total on infinities. *)
  Alcotest.(check int)
    (Printf.sprintf "%s: link %d cost (bitwise)" what i)
    0
    (Lexico.compare e.Failure_sweep.cost a.Failure_sweep.cost);
  Alcotest.(check int)
    (Printf.sprintf "%s: link %d severed pairs" what i)
    e.Failure_sweep.unreachable_pairs a.Failure_sweep.unreachable_pairs

(* ------------------------------------------------------------------ *)
(* Delta sweep vs from-scratch oracle *)

let sweep_matches_oracle ~model seed =
  let g = fixture seed in
  let rng = Prng.create ((seed * 13) + 5) in
  let th, tl = random_matrices rng g in
  let wh = Weights.random rng g in
  let wl = Weights.random rng g in
  let ctx = Eval_ctx.create g ~weights:[| wh; wl |] ~matrices:[| th; tl |] in
  let delta = Failure_sweep.sweep ~model ~th ctx in
  let oracle = Failure_sweep.oracle_sweep ~model g ~wh ~wl ~th ~tl in
  Alcotest.(check int)
    "one outcome per link"
    (Array.length (Graph.undirected_link_pairs g))
    (Array.length delta);
  Alcotest.(check int) "same length" (Array.length oracle) (Array.length delta);
  Array.iteri (fun i e -> check_outcome ~what:"delta=oracle" i e delta.(i)) oracle

let test_sweep_matches_oracle_load () =
  for seed = 0 to 11 do
    sweep_matches_oracle ~model:Objective.Load seed
  done

let test_sweep_matches_oracle_sla () =
  for seed = 0 to 7 do
    sweep_matches_oracle ~model:(Objective.Sla Dtr_cost.Sla.default) seed
  done

let test_sweep_str_weights () =
  (* An STR setting (wh == wl, one routing group) takes the grouped
     path through fail_probe; it must still match the oracle. *)
  let g = fixture 1 in
  let rng = Prng.create 42 in
  let th, tl = random_matrices rng g in
  let w = Weights.random rng g in
  let ctx = Eval_ctx.create g ~weights:[| w; w |] ~matrices:[| th; tl |] in
  let delta = Failure_sweep.sweep ~th ctx in
  let oracle = Failure_sweep.oracle_sweep g ~wh:w ~wl:w ~th ~tl in
  Array.iteri (fun i e -> check_outcome ~what:"str" i e delta.(i)) oracle

let test_disconnecting_failures_are_infinite () =
  (* Every link of a line graph severs positive demand: all outcomes
     must be infinite, carry positive severed-pair counts, and survive
     the Lexico comparison (inf = inf, not dropped). *)
  let g = Dtr_topology.Classic.line 4 in
  let rng = Prng.create 7 in
  let th, tl = random_matrices rng g in
  let wh = Weights.random rng g in
  let wl = Weights.random rng g in
  let ctx = Eval_ctx.create g ~weights:[| wh; wl |] ~matrices:[| th; tl |] in
  let outcomes = Failure_sweep.sweep ~th ctx in
  Alcotest.(check bool) "has outcomes" true (Array.length outcomes > 0);
  Array.iter
    (fun (o : Failure_sweep.outcome) ->
      Alcotest.(check bool) "infinite" false (Failure_sweep.is_finite o);
      Alcotest.(check int) "cost is Lexico.infinity" 0
        (Lexico.compare o.Failure_sweep.cost Lexico.infinity);
      Alcotest.(check bool) "severed pairs counted" true
        (o.Failure_sweep.unreachable_pairs > 0))
    outcomes;
  Alcotest.(check int) "all counted infinite" (Array.length outcomes)
    (Failure_sweep.infinite_count outcomes);
  (* Infinite outcomes order below nothing: max over the list through
     the Lexico comparison is infinity, never an optimistic finite. *)
  let worst =
    Array.fold_left
      (fun acc (o : Failure_sweep.outcome) ->
        if Lexico.compare o.Failure_sweep.cost acc > 0 then
          o.Failure_sweep.cost
        else acc)
      Lexico.zero outcomes
  in
  Alcotest.(check int) "worst is infinite" 0
    (Lexico.compare worst Lexico.infinity)

let test_sweep_jobs_invariance_with_disconnections () =
  let g = Dtr_topology.Classic.line 5 in
  let rng = Prng.create 11 in
  let th, tl = random_matrices rng g in
  let wh = Weights.random rng g in
  let wl = Weights.random rng g in
  let ctx = Eval_ctx.create g ~weights:[| wh; wl |] ~matrices:[| th; tl |] in
  let seq = Failure_sweep.sweep ~th ctx in
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let par = Failure_sweep.sweep ~pool ~th ctx in
  Alcotest.(check int) "same length" (Array.length seq) (Array.length par);
  Array.iteri (fun i e -> check_outcome ~what:"jobs" i e par.(i)) seq

let test_sweep_leaves_context_intact () =
  (* fail_probe is pure: a sweep must not move the context. *)
  let g = fixture 2 in
  let rng = Prng.create 23 in
  let th, tl = random_matrices rng g in
  let wh = Weights.random rng g in
  let wl = Weights.random rng g in
  let ctx = Eval_ctx.create g ~weights:[| wh; wl |] ~matrices:[| th; tl |] in
  let phi_before = Eval_ctx.phi ctx in
  let first = Failure_sweep.sweep ~th ctx in
  let phi_after = Eval_ctx.phi ctx in
  Alcotest.(check (array (float 0.))) "phi unchanged" phi_before phi_after;
  let second = Failure_sweep.sweep ~th ctx in
  Array.iteri (fun i e -> check_outcome ~what:"repeat" i e second.(i)) first

(* ------------------------------------------------------------------ *)
(* fail_link on parallel links *)

(* Two parallel bidirectional links between 0 and 1 plus a 1-2 and a
   0-2 link.  Failing one of the parallel links must remove exactly
   its own two arcs, leaving the twin (and the graph connected). *)
let parallel_graph () =
  let a src dst = { Graph.src; dst; capacity = 100.; delay = 1. } in
  Graph.build ~n:3
    [ a 0 1; a 1 0; a 0 1; a 1 0; a 1 2; a 2 1; a 0 2; a 2 0 ]

let test_fail_link_parallel_links () =
  let g = parallel_graph () in
  let links = Graph.undirected_link_pairs g in
  (* The pairing walks arcs in id order: (0,1), (2,3), (4,5), (6,7). *)
  Alcotest.(check int) "four links" 4 (Array.length links);
  Alcotest.(check bool) "first parallel link pairs its own twin" true
    (links.(0) = (0, 1));
  Alcotest.(check bool) "second parallel link pairs its own twin" true
    (links.(1) = (2, 3));
  let reduced, mapping = Failure_sweep.fail_link g ~link:links.(0) in
  Alcotest.(check int) "exactly two arcs removed" (Graph.arc_count g - 2)
    (Graph.arc_count reduced);
  (* The surviving parallel twin is still there: 0 and 1 remain
     adjacent both ways. *)
  Alcotest.(check bool) "parallel twin survives (0->1)" true
    (Graph.find_arc reduced ~src:0 ~dst:1 <> None);
  Alcotest.(check bool) "parallel twin survives (1->0)" true
    (Graph.find_arc reduced ~src:1 ~dst:0 <> None);
  Alcotest.(check bool) "still strongly connected" true
    (Graph.is_strongly_connected reduced);
  (* The dropped ids are exactly 0 and 1. *)
  Alcotest.(check bool) "mapping skips failed ids" true
    (Array.for_all (fun orig -> orig <> 0 && orig <> 1) mapping);
  Alcotest.check_raises "non-twin pair rejected"
    (Invalid_argument "Failure_sweep.fail_link: arcs are not reverse twins")
    (fun () -> ignore (Failure_sweep.fail_link g ~link:(0, 4)))

let test_sweep_matches_oracle_parallel_links () =
  (* The delta sweep must price a parallel-link failure identically to
     the oracle: only the failed link's arcs disappear, the twin keeps
     carrying load. *)
  let g = parallel_graph () in
  let rng = Prng.create 3 in
  let th, tl = random_matrices rng g in
  let wh = Weights.random rng g in
  let wl = Weights.random rng g in
  let ctx = Eval_ctx.create g ~weights:[| wh; wl |] ~matrices:[| th; tl |] in
  let delta = Failure_sweep.sweep ~th ctx in
  let oracle = Failure_sweep.oracle_sweep g ~wh ~wl ~th ~tl in
  Array.iteri (fun i e -> check_outcome ~what:"parallel" i e delta.(i)) oracle

(* ------------------------------------------------------------------ *)
(* Penalty aggregation *)

let outcome cost = { Failure_sweep.cost; unreachable_pairs = 0 }

let infinite_outcome =
  { Failure_sweep.cost = Lexico.infinity; unreachable_pairs = 3 }

let test_penalty () =
  let fin p s = outcome (Lexico.make ~primary:p ~secondary:s) in
  let outcomes =
    [| fin 10. 1.; infinite_outcome; fin 30. 3.; fin 20. 2. |]
  in
  (* top_k = 1: pure worst finite — infinite excluded. *)
  let p1 = Failure_sweep.penalty outcomes in
  Alcotest.(check (float 0.)) "worst finite primary" 30. p1.Lexico.primary;
  Alcotest.(check (float 0.)) "worst finite secondary" 3. p1.Lexico.secondary;
  (* top_k = 2: mean of the two worst finite. *)
  let p2 = Failure_sweep.penalty ~top_k:2 outcomes in
  Alcotest.(check (float 1e-12)) "top-2 mean primary" 25. p2.Lexico.primary;
  (* top_k larger than the finite pool: mean of what exists. *)
  let p9 = Failure_sweep.penalty ~top_k:9 outcomes in
  Alcotest.(check (float 1e-12)) "top-9 mean primary" 20. p9.Lexico.primary;
  (* All infinite: no signal, penalty zero. *)
  let all_inf = [| infinite_outcome; infinite_outcome |] in
  Alcotest.(check (float 0.)) "all-infinite penalty" 0.
    (Failure_sweep.penalty all_inf).Lexico.primary;
  Alcotest.(check int) "infinite count" 2 (Failure_sweep.infinite_count all_inf);
  Alcotest.check_raises "top_k must be positive"
    (Invalid_argument "Failure_sweep.penalty: top_k must be >= 1")
    (fun () -> ignore (Failure_sweep.penalty ~top_k:0 outcomes))

(* ------------------------------------------------------------------ *)
(* Memo key consistency across commits (Vmemo hit-rate soft spot) *)

let small_problem seed =
  let g = fixture ((4 * seed) + 1) in
  let rng = Prng.create (seed + 100) in
  let th, tl = random_matrices rng g in
  Problem.create ~graph:g ~th ~tl ~model:Objective.Load

let test_memo_keys_stable_across_commit () =
  (* Scan keys are Zobrist hashes shifted from the context's *current*
     vectors, recomputed fresh each scan (Scan.candidate_keys) — so a
     candidate revisited from a different incumbent must produce the
     same key and hit the memo.  Exact counts: n misses on the first
     scan, n hits when re-scanned unchanged, and n hits again after a
     commit moved the incumbent onto one of the scanned settings. *)
  let problem = small_problem 1 in
  let w0 = Array.make (Graph.arc_count problem.Problem.graph) 15 in
  let sol = Problem.eval_str problem ~w:w0 in
  let ctx = Problem.ctx_of_solution problem sol in
  Scan.with_engine ~jobs:1 problem @@ fun scan ->
  let memo = Vmemo.create () in
  let n = 6 in
  let changes_of i = [ (0, i + 1) ] in
  let first = Scan.evaluate scan ctx ~memo ~cls:`H ~changes_of n in
  Alcotest.(check int) "first scan: all misses" n (Vmemo.misses memo);
  Alcotest.(check int) "first scan: no hits" 0 (Vmemo.hits memo);
  let second = Scan.evaluate scan ctx ~memo ~cls:`H ~changes_of n in
  Alcotest.(check int) "re-scan: all hits" n (Vmemo.hits memo);
  Alcotest.(check int) "re-scan: no new misses" n (Vmemo.misses memo);
  Array.iteri
    (fun i (a : Scan.summary) ->
      Alcotest.(check int) "memoized summary identical" 0
        (Lexico.compare a.Scan.objective second.(i).Scan.objective))
    first;
  (* Advance the incumbent onto scanned setting (arc0 = 3), then scan
     the same *absolute* settings from the new base: keys must agree
     with the pre-commit ones, so every candidate hits. *)
  ignore (Scan.commit scan ctx ~cls:`H ~changes:[ (0, 3) ]);
  let _ = Scan.evaluate scan ctx ~memo ~cls:`H ~changes_of n in
  Alcotest.(check int) "post-commit scan: all hits" (2 * n) (Vmemo.hits memo);
  Alcotest.(check int) "post-commit scan: no new misses" n (Vmemo.misses memo)

(* ------------------------------------------------------------------ *)
(* Robust search mode *)

let tiny_cfg =
  {
    Search_config.quick with
    Search_config.n_iters = 20;
    k_iters = 20;
    diversify_after = 8;
  }

let robust_cfg alpha =
  { tiny_cfg with Search_config.robust = Some { Search_config.alpha; top_k = 1 } }

let test_robust_config_validation () =
  Alcotest.check_raises "negative alpha rejected"
    (Invalid_argument "Search_config: robust alpha must be non-negative")
    (fun () -> Search_config.validate (robust_cfg (-1.)));
  Alcotest.check_raises "non-positive top_k rejected"
    (Invalid_argument "Search_config: robust top_k must be positive")
    (fun () ->
      Search_config.validate
        {
          tiny_cfg with
          Search_config.robust = Some { Search_config.alpha = 1.; top_k = 0 };
        })

let test_robust_alpha_zero_matches_normal () =
  (* With alpha = 0 the robust objective J = normal + 0 * penalty is
     bitwise the normal objective, so the whole trajectory — sweeps
     included — must reproduce the normal-mode result exactly. *)
  let problem = small_problem 2 in
  let normal = Dtr_core.Str_search.run (Prng.create 5) tiny_cfg problem in
  let robust = Dtr_core.Str_search.run (Prng.create 5) (robust_cfg 0.) problem in
  Alcotest.(check int) "same objective" 0
    (Lexico.compare normal.Dtr_core.Str_search.objective
       robust.Dtr_core.Str_search.objective);
  Alcotest.(check (array int)) "same best weights"
    normal.Dtr_core.Str_search.best.Problem.wh
    robust.Dtr_core.Str_search.best.Problem.wh;
  let dn = Dtr_core.Dtr_search.run (Prng.create 6) tiny_cfg problem in
  let dr = Dtr_core.Dtr_search.run (Prng.create 6) (robust_cfg 0.) problem in
  Alcotest.(check int) "dtr: same objective" 0
    (Lexico.compare dn.Dtr_core.Dtr_search.objective
       dr.Dtr_core.Dtr_search.objective);
  Alcotest.(check (array int)) "dtr: same best wh"
    dn.Dtr_core.Dtr_search.best.Problem.wh dr.Dtr_core.Dtr_search.best.Problem.wh;
  Alcotest.(check (array int)) "dtr: same best wl"
    dn.Dtr_core.Dtr_search.best.Problem.wl dr.Dtr_core.Dtr_search.best.Problem.wl

let test_robust_objective_decomposition () =
  (* In robust mode the reported objective is J = normal + alpha *
     penalty of the best solution: recomputing the sweep on the
     reported best must reproduce it bitwise. *)
  let problem = small_problem 2 in
  let alpha = 0.5 in
  let report =
    Dtr_core.Str_search.run (Prng.create 9) (robust_cfg alpha) problem
  in
  let best = report.Dtr_core.Str_search.best in
  let ctx = Problem.ctx_of_solution problem best in
  let rp =
    Problem.robust_price problem ctx ~alpha ~top_k:1
      ~normal:(Problem.objective best)
  in
  Alcotest.(check int) "reported J matches repriced best" 0
    (Lexico.compare report.Dtr_core.Str_search.objective
       rp.Problem.rp_objective);
  (* J dominates the normal cost componentwise (finite penalty). *)
  let n = Problem.objective best in
  Alcotest.(check bool) "J >= normal (primary)" true
    (rp.Problem.rp_objective.Lexico.primary >= n.Lexico.primary);
  Alcotest.(check bool) "penalty non-negative" true
    (rp.Problem.rp_penalty.Lexico.primary >= 0.)

let test_robust_search_jobs_invariance () =
  (* Robust sweeps run at deterministic trajectory points with
     link-ordered chunk reassembly, so a multistart at 1 domain and 4
     must pick the same winner with the same robust objective. *)
  let module Multistart = Dtr_core.Multistart in
  let problem = small_problem 2 in
  let cfg = robust_cfg 1.0 in
  let run jobs =
    Multistart.run ~jobs ~restarts:3 ~algo:Multistart.Dtr (Prng.create 4) cfg
      problem
  in
  let seq = run 1 in
  let par = run 4 in
  Alcotest.(check int) "same robust objective" 0
    (Lexico.compare seq.Multistart.objective par.Multistart.objective);
  Alcotest.(check int) "same winning restart" seq.Multistart.best_index
    par.Multistart.best_index;
  Alcotest.(check (array int)) "same winner wh"
    seq.Multistart.best.Problem.wh par.Multistart.best.Problem.wh

let () =
  Alcotest.run "failure"
    [
      ( "sweep-vs-oracle",
        [
          Alcotest.test_case "load model (bitwise)" `Quick
            test_sweep_matches_oracle_load;
          Alcotest.test_case "sla model (bitwise)" `Quick
            test_sweep_matches_oracle_sla;
          Alcotest.test_case "str weights" `Quick test_sweep_str_weights;
          Alcotest.test_case "parallel links" `Quick
            test_sweep_matches_oracle_parallel_links;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "disconnecting failures priced infinite" `Quick
            test_disconnecting_failures_are_infinite;
          Alcotest.test_case "jobs invariance with disconnections" `Quick
            test_sweep_jobs_invariance_with_disconnections;
          Alcotest.test_case "sweep leaves context intact" `Quick
            test_sweep_leaves_context_intact;
          Alcotest.test_case "fail_link parallel links" `Quick
            test_fail_link_parallel_links;
          Alcotest.test_case "penalty aggregation" `Quick test_penalty;
        ] );
      ( "memo",
        [
          Alcotest.test_case "keys stable across commit (exact counts)" `Quick
            test_memo_keys_stable_across_commit;
        ] );
      ( "robust-mode",
        [
          Alcotest.test_case "config validation" `Quick
            test_robust_config_validation;
          Alcotest.test_case "alpha=0 matches normal mode" `Quick
            test_robust_alpha_zero_matches_normal;
          Alcotest.test_case "objective decomposition" `Quick
            test_robust_objective_decomposition;
          Alcotest.test_case "multistart jobs invariance" `Slow
            test_robust_search_jobs_invariance;
        ] );
    ]
