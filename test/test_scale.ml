(* Tests for the real-ISP-scale tier: observational equality of the
   CSR flat-array graph core against a naive adjacency reference
   (including parallel links and disconnected graphs), reusable
   Dijkstra/SPF workspaces, arena load projection, demand-only
   evaluation contexts, sparse traffic matrices, the O(links) BA
   sampler, and the large presets. *)

module Graph = Dtr_graph.Graph
module Dijkstra = Dtr_graph.Dijkstra
module Spf = Dtr_graph.Spf
module Prng = Dtr_util.Prng
module Matrix = Dtr_traffic.Matrix
module Gravity = Dtr_traffic.Gravity
module Power_law = Dtr_topology.Power_law
module Large = Dtr_topology.Large
module Loads = Dtr_routing.Loads
module Weights = Dtr_routing.Weights
module Eval_ctx = Dtr_routing.Eval_ctx

let mkarc ?(capacity = 1.) ?(delay = 1.) src dst =
  { Graph.src; dst; capacity; delay }

(* ------------------------------------------------------------------ *)
(* CSR core vs. a naive reference on random multigraphs.  The arc list
   is drawn uniformly, so parallel links appear routinely and nothing
   guarantees connectivity — exactly the shapes the flat layout has to
   represent faithfully. *)

let random_multigraph_gen =
  QCheck.Gen.(
    let* n = int_range 2 14 in
    let* m = int_range 0 40 in
    let* seed = int_range 0 1_000_000 in
    return (n, m, seed))

let build_multigraph (n, m, seed) =
  let rng = Prng.create seed in
  let arcs =
    List.init m (fun _ ->
        let u = Prng.int rng n in
        let v = (u + 1 + Prng.int rng (n - 1)) mod n in
        mkarc
          ~capacity:(1. +. float_of_int (Prng.int rng 5))
          ~delay:(0.5 +. Prng.float rng 5.)
          u v)
  in
  (Graph.build ~n arcs, Array.of_list arcs)

(* Naive reference: everything recomputed from the arc records. *)
let ref_out_arcs arcs v =
  Array.of_list
    (List.filteri (fun _ _ -> true)
       (List.filter_map
          (fun (i, a) -> if a.Graph.src = v then Some i else None)
          (List.mapi (fun i a -> (i, a)) (Array.to_list arcs))))

let ref_in_arcs arcs v =
  Array.of_list
    (List.filter_map
       (fun (i, a) -> if a.Graph.dst = v then Some i else None)
       (List.mapi (fun i a -> (i, a)) (Array.to_list arcs)))

let ref_find_arc arcs ~src ~dst =
  let rec go i =
    if i >= Array.length arcs then None
    else if arcs.(i).Graph.src = src && arcs.(i).Graph.dst = dst then Some i
    else go (i + 1)
  in
  go 0

let ref_reachable arcs ~n ~from =
  let seen = Array.make n false in
  seen.(from) <- true;
  let queue = Queue.create () in
  Queue.add from queue;
  let count = ref 1 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun a ->
        if a.Graph.src = v && not seen.(a.Graph.dst) then begin
          seen.(a.Graph.dst) <- true;
          incr count;
          Queue.add a.Graph.dst queue
        end)
      arcs
  done;
  !count

(* Lowest-unpaired-twin pairing; a twinless arc pairs with itself.
   Output is the sorted array of normalized (lo, hi) pairs. *)
let ref_link_pairs arcs =
  let m = Array.length arcs in
  let paired = Array.make m false in
  let out = ref [] in
  for a = 0 to m - 1 do
    if not paired.(a) then begin
      let twin = ref (-1) in
      for b = m - 1 downto 0 do
        if
          (not paired.(b)) && b <> a
          && arcs.(b).Graph.src = arcs.(a).Graph.dst
          && arcs.(b).Graph.dst = arcs.(a).Graph.src
        then twin := b
      done;
      paired.(a) <- true;
      if !twin >= 0 then begin
        paired.(!twin) <- true;
        out := (min a !twin, max a !twin) :: !out
      end
      else out := (a, a) :: !out
    end
  done;
  let a = Array.of_list !out in
  Array.sort compare a;
  a

let prop_csr_matches_reference =
  QCheck.Test.make ~name:"CSR accessors = naive reference on multigraphs"
    ~count:300 (QCheck.make random_multigraph_gen) (fun params ->
      let g, arcs = build_multigraph params in
      let n = Graph.node_count g in
      let ok = ref (Graph.arc_count g = Array.length arcs) in
      Array.iteri
        (fun i a ->
          ok :=
            !ok && Graph.arc g i = a
            && Graph.src g i = a.Graph.src
            && Graph.dst g i = a.Graph.dst
            && Graph.capacity g i = a.Graph.capacity
            && Graph.delay g i = a.Graph.delay
            && (Graph.capacities g).(i) = a.Graph.capacity
            && (Graph.delays g).(i) = a.Graph.delay)
        arcs;
      ok := !ok && Graph.arcs g = arcs;
      for v = 0 to n - 1 do
        let out = ref_out_arcs arcs v and inc = ref_in_arcs arcs v in
        ok :=
          !ok
          && Graph.out_arcs g v = out
          && Graph.in_arcs g v = inc
          && Graph.out_degree g v = Array.length out
          && Graph.in_degree g v = Array.length inc
          && Array.sub (Graph.out_arc_ids g)
               (Graph.out_offsets g).(v)
               (Array.length out)
             = out
          && Array.sub (Graph.in_arc_ids g)
               (Graph.in_offsets g).(v)
               (Array.length inc)
             = inc;
        for w = 0 to n - 1 do
          ok := !ok && Graph.find_arc g ~src:v ~dst:w = ref_find_arc arcs ~src:v ~dst:w
        done
      done;
      let sc = Array.for_all (fun v -> ref_reachable arcs ~n ~from:v = n)
          (Array.init n (fun v -> v)) in
      ok := !ok && Graph.is_strongly_connected g = sc;
      let r = Graph.reverse g in
      Array.iteri
        (fun i a ->
          ok :=
            !ok
            && Graph.arc r i
               = {
                   Graph.src = a.Graph.dst;
                   dst = a.Graph.src;
                   capacity = a.Graph.capacity;
                   delay = a.Graph.delay;
                 })
        arcs;
      ok := !ok && Graph.undirected_link_pairs g = ref_link_pairs arcs;
      !ok)

(* ------------------------------------------------------------------ *)
(* Reusable workspaces: a shared arena across a destination sweep must
   reproduce the fresh-allocation runs bit for bit. *)

(* Connected random graph (tree + extras) for routing-level tests. *)
let connected_graph_gen =
  QCheck.Gen.(
    let* n = int_range 3 12 in
    let* extra = int_range 0 25 in
    let* seed = int_range 0 1_000_000 in
    return (n, extra, seed))

let build_connected (n, extra, seed) =
  let rng = Prng.create seed in
  let arcs = ref [] in
  for v = 1 to n - 1 do
    let u = Prng.int rng v in
    arcs := mkarc u v :: mkarc v u :: !arcs
  done;
  for _ = 1 to extra do
    let u = Prng.int rng n and v = Prng.int rng n in
    (* Parallel links welcome: draw without deduplication. *)
    if u <> v then arcs := mkarc u v :: !arcs
  done;
  let g = Graph.build ~n !arcs in
  let w = Array.init (Graph.arc_count g) (fun _ -> 1 + Prng.int rng 30) in
  (g, w, rng)

let prop_workspace_dijkstra_identical =
  QCheck.Test.make ~name:"shared Dijkstra workspace = fresh runs" ~count:200
    (QCheck.make connected_graph_gen) (fun params ->
      let g, w, _ = build_connected params in
      let ws = Dijkstra.workspace () in
      let ok = ref true in
      for dst = 0 to Graph.node_count g - 1 do
        let a = Dijkstra.distances_to_unchecked ~ws g ~weights:w ~dst in
        let b = Dijkstra.distances_to g ~weights:w ~dst in
        if a <> b then ok := false
      done;
      !ok)

let prop_workspace_spf_identical =
  QCheck.Test.make ~name:"shared SPF workspace = fresh sweep" ~count:200
    (QCheck.make connected_graph_gen) (fun params ->
      let g, w, _ = build_connected params in
      let ws = Dijkstra.workspace () in
      Spf.all_destinations ~ws g ~weights:w = Spf.all_destinations g ~weights:w)

let prop_for_destinations_active_subset =
  QCheck.Test.make ~name:"for_destinations: active dags = full sweep dags"
    ~count:200 (QCheck.make connected_graph_gen) (fun params ->
      let g, w, rng = build_connected params in
      let n = Graph.node_count g in
      let active = Array.init n (fun _ -> Prng.bool rng) in
      let all = Spf.all_destinations g ~weights:w in
      let sel = Spf.for_destinations g ~weights:w ~active in
      let ok = ref (Array.length sel = n) in
      for t = 0 to n - 1 do
        if active.(t) then ok := !ok && sel.(t) = all.(t)
        else ok := !ok && Spf.is_placeholder sel.(t) && sel.(t).Spf.dst = t
      done;
      !ok)

let prop_destination_loads_into_identical =
  QCheck.Test.make ~name:"destination_loads_into = destination_loads"
    ~count:200 (QCheck.make connected_graph_gen) (fun params ->
      let g, w, rng = build_connected params in
      let n = Graph.node_count g and m = Graph.arc_count g in
      let dags = Spf.all_destinations g ~weights:w in
      let flow = Array.make n 0. and contrib = Array.make m 0. in
      let ok = ref true in
      for dst = 0 to n - 1 do
        let demand_to_dst =
          Array.init n (fun s ->
              if s <> dst && Prng.bool rng then Prng.float rng 50. else 0.)
        in
        let fresh = Loads.destination_loads g ~dag:dags.(dst) ~demand_to_dst in
        Loads.destination_loads_into g ~dag:dags.(dst) ~demand_to_dst ~flow
          ~contrib;
        if contrib <> fresh then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Demand-only contexts: on any scenario, Demand mode must evaluate,
   probe, fail-probe and commit bitwise-identically to All mode. *)

let random_sparse_matrix rng ~n ~pairs =
  let m = Matrix.create_sparse n in
  for _ = 1 to pairs do
    let s = Prng.int rng n and t = Prng.int rng n in
    if s <> t then Matrix.set m s t (1. +. Prng.float rng 40.)
  done;
  m

let prop_demand_mode_identical =
  QCheck.Test.make ~name:"Demand-mode ctx = All-mode ctx (probe + commit)"
    ~count:120 (QCheck.make connected_graph_gen) (fun params ->
      let g, wh, rng = build_connected params in
      let n = Graph.node_count g and m = Graph.arc_count g in
      let wl = Array.init m (fun _ -> 1 + Prng.int rng 30) in
      let th = random_sparse_matrix rng ~n ~pairs:(1 + Prng.int rng 4) in
      let tl = random_sparse_matrix rng ~n ~pairs:(1 + Prng.int rng 8) in
      let mk dest_mode =
        Eval_ctx.create ~dest_mode g ~weights:[| wh; wl |]
          ~matrices:[| th; tl |]
      in
      let ca = mk Eval_ctx.All and cd = mk Eval_ctx.Demand in
      let ok = ref (Eval_ctx.phi ca = Eval_ctx.phi cd) in
      for _ = 1 to 12 do
        let klass = Prng.int rng 2 in
        let a = Prng.int rng m in
        let v = 1 + Prng.int rng 30 in
        let pa = Eval_ctx.probe ca ~klass ~changes:[ (a, v) ] in
        let pd = Eval_ctx.probe cd ~klass ~changes:[ (a, v) ] in
        ok := !ok && Eval_ctx.probe_phi pa = Eval_ctx.probe_phi pd;
        if Prng.bool rng then begin
          Eval_ctx.commit ca pa;
          Eval_ctx.commit cd pd
        end
        else begin
          Eval_ctx.abort ca pa;
          Eval_ctx.abort cd pd
        end;
        ok := !ok && Eval_ctx.phi ca = Eval_ctx.phi cd
      done;
      (* One single-link failure probe from the final state. *)
      (let pairs = Graph.undirected_link_pairs g in
       if Array.length pairs > 0 then begin
         let a, b = pairs.(0) in
         let fa = Eval_ctx.fail_probe ca ~arcs:[ a; b ] in
         let fd = Eval_ctx.fail_probe cd ~arcs:[ a; b ] in
         ok :=
           !ok
           && Eval_ctx.failure_phi fa = Eval_ctx.failure_phi fd
           && Eval_ctx.failure_unreachable fa = Eval_ctx.failure_unreachable fd
       end);
      !ok)

(* Demand confined to one component of a disconnected graph: both
   modes must agree (and not raise) as long as every positive demand
   is routable. *)
let test_demand_mode_disconnected () =
  (* Two directed triangles with no arcs between them. *)
  let tri base =
    [
      mkarc base (base + 1); mkarc (base + 1) base;
      mkarc (base + 1) (base + 2); mkarc (base + 2) (base + 1);
      mkarc base (base + 2); mkarc (base + 2) base;
    ]
  in
  let g = Graph.build ~n:6 (tri 0 @ tri 3) in
  let m = Graph.arc_count g in
  let th = Matrix.create_sparse 6 and tl = Matrix.create_sparse 6 in
  Matrix.set th 0 2 10.;
  Matrix.set tl 4 3 25.;
  Matrix.set tl 1 2 5.;
  let wh = Array.make m 1 and wl = Array.make m 2 in
  let mk dest_mode =
    Eval_ctx.create ~dest_mode g ~weights:[| wh; wl |] ~matrices:[| th; tl |]
  in
  let ca = mk Eval_ctx.All and cd = mk Eval_ctx.Demand in
  Alcotest.(check (array (float 0.)))
    "phi identical" (Eval_ctx.phi ca) (Eval_ctx.phi cd);
  let pa = Eval_ctx.probe ca ~klass:0 ~changes:[ (0, 9) ] in
  let pd = Eval_ctx.probe cd ~klass:0 ~changes:[ (0, 9) ] in
  Alcotest.(check (array (float 0.)))
    "probe phi identical" (Eval_ctx.probe_phi pa) (Eval_ctx.probe_phi pd)

(* ------------------------------------------------------------------ *)
(* Sparse matrices: observationally identical to dense under the same
   mutation sequence. *)

let matrix_ops_gen =
  QCheck.Gen.(
    let* n = int_range 2 10 in
    let* ops = int_range 0 60 in
    let* seed = int_range 0 1_000_000 in
    return (n, ops, seed))

let prop_sparse_matrix_identical =
  QCheck.Test.make ~name:"sparse matrix = dense matrix (same op sequence)"
    ~count:300 (QCheck.make matrix_ops_gen) (fun (n, ops, seed) ->
      let rng = Prng.create seed in
      let d = Matrix.create n and s = Matrix.create_sparse n in
      for _ = 1 to ops do
        let i = Prng.int rng n and j = Prng.int rng n in
        if i <> j then begin
          match Prng.int rng 3 with
          | 0 ->
              let v = Prng.float rng 50. in
              Matrix.set d i j v;
              Matrix.set s i j v
          | 1 ->
              let v = Prng.float rng 10. in
              Matrix.add d i j v;
              Matrix.add s i j v
          | _ ->
              Matrix.set d i j 0.;
              Matrix.set s i j 0.
        end
      done;
      let ok = ref (Matrix.is_sparse s && not (Matrix.is_sparse d)) in
      ok :=
        !ok
        && Matrix.pairs d = Matrix.pairs s
        && Matrix.pair_count d = Matrix.pair_count s
        && Matrix.total d = Matrix.total s
        && Matrix.equal ~eps:0. d s;
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          ok := !ok && Matrix.get d i j = Matrix.get s i j
        done
      done;
      (* iter and iter_col emit the same entries in the same order. *)
      let trace m =
        let acc = ref [] in
        Matrix.iter m (fun s t v -> acc := (s, t, v) :: !acc);
        for t = 0 to n - 1 do
          Matrix.iter_col m t (fun s v -> acc := (s, t, v) :: !acc)
        done;
        List.rev !acc
      in
      ok := !ok && trace d = trace s;
      !ok)

(* ------------------------------------------------------------------ *)
(* BA sampler and the large presets. *)

let test_generate_ba_structure () =
  let rng = Prng.create 7 in
  let p =
    {
      Power_law.nodes = 400;
      m0 = 8;
      m = 3;
      capacity = 100.;
      delay_range = (1., 5.);
    }
  in
  let g = Power_law.generate_ba ~hub_capacity:1000. ~hub_degree:20 rng p in
  Alcotest.(check int) "node count" 400 (Graph.node_count g);
  Alcotest.(check bool) "strongly connected" true
    (Graph.is_strongly_connected g);
  (* Every arc has a twin (links are symmetric), and capacities follow
     the hub tier: both endpoints at degree >= hub_degree <-> 1000. *)
  let m = Graph.arc_count g in
  let deg = Array.make 400 0 in
  for a = 0 to m - 1 do
    deg.(Graph.src g a) <- deg.(Graph.src g a) + 1
  done;
  let pairs = Graph.undirected_link_pairs g in
  Alcotest.(check int) "all arcs paired" m (2 * Array.length pairs);
  let tier_ok = ref true in
  for a = 0 to m - 1 do
    let hub = deg.(Graph.src g a) >= 20 && deg.(Graph.dst g a) >= 20 in
    if Graph.capacity g a <> (if hub then 1000. else 100.) then
      tier_ok := false
  done;
  Alcotest.(check bool) "hub capacity tier" true !tier_ok;
  (* Determinism: same seed, same graph. *)
  let g' = Power_law.generate_ba ~hub_capacity:1000. ~hub_degree:20 (Prng.create 7) p in
  Alcotest.(check bool) "deterministic" true (Graph.arcs g = Graph.arcs g')

let test_large_presets () =
  Alcotest.(check int) "six presets" 6 (List.length (Large.names ()));
  List.iter
    (fun name ->
      match Large.find name with
      | None -> Alcotest.fail ("missing preset " ^ name)
      | Some p ->
          if Large.node_count p <= 2000 then begin
            let g = Large.generate (Prng.create 3) p in
            Alcotest.(check int)
              (name ^ " node count") (Large.node_count p)
              (Graph.node_count g);
            Alcotest.(check bool)
              (name ^ " strongly connected") true
              (Graph.is_strongly_connected g);
            let pops = Large.pop_nodes g p in
            Alcotest.(check int) (name ^ " pops") p.Large.pops
              (Array.length pops);
            let sorted = Array.copy pops in
            Array.sort compare sorted;
            let distinct = ref true in
            Array.iteri
              (fun i v ->
                if i > 0 && sorted.(i - 1) = v then distinct := false;
                if v < 0 || v >= Graph.node_count g then distinct := false)
              sorted;
            Alcotest.(check bool) (name ^ " pops distinct + in range") true
              !distinct
          end)
    (Large.names ())

let test_gravity_pop () =
  let g = Large.generate (Prng.create 3) (Option.get (Large.find "ts-1k")) in
  let p = Option.get (Large.find "ts-1k") in
  let pops = Large.pop_nodes g p in
  let n = Graph.node_count g in
  let tm = Gravity.generate_pop (Prng.create 5) ~n ~pops Gravity.default in
  let k = Array.length pops in
  Alcotest.(check bool) "sparse" true (Matrix.is_sparse tm);
  Alcotest.(check int) "PoP pair count" (k * (k - 1)) (Matrix.pair_count tm);
  let is_pop = Array.make n false in
  Array.iter (fun v -> is_pop.(v) <- true) pops;
  let ok = ref true in
  Matrix.iter tm (fun s t v ->
      if (not is_pop.(s)) || not is_pop.(t) || v <= 0. then ok := false);
  Alcotest.(check bool) "entries between distinct PoPs, positive" true !ok;
  Alcotest.check_raises "rejects < 2 PoPs"
    (Invalid_argument "Gravity.generate_pop: need at least 2 PoPs") (fun () ->
      ignore (Gravity.generate_pop (Prng.create 1) ~n:10 ~pops:[| 3 |] Gravity.default))

(* Demand-mode = All-mode at the 1k tier: the acceptance check of the
   demand-only evaluation path on a real preset. *)
let test_demand_mode_ts1k () =
  let p = Option.get (Large.find "ts-1k") in
  let root = Prng.create 11 in
  let topo_rng = Prng.split root in
  let traffic_rng = Prng.split root in
  let weight_rng = Prng.split root in
  let g = Large.generate topo_rng p in
  let n = Graph.node_count g in
  let pops = Large.pop_nodes g p in
  let tl = Gravity.generate_pop traffic_rng ~n ~pops Gravity.default in
  let th = Matrix.create_sparse n in
  Matrix.iter tl (fun s t v ->
      if Prng.float traffic_rng 1.0 < 0.10 then Matrix.set th s t (0.30 *. v));
  let wh = Weights.random weight_rng g in
  let wl = Weights.random weight_rng g in
  let mk dest_mode =
    Eval_ctx.create ~dest_mode g ~weights:[| wh; wl |] ~matrices:[| th; tl |]
  in
  let ca = mk Eval_ctx.All and cd = mk Eval_ctx.Demand in
  Alcotest.(check (array (float 0.)))
    "phi identical" (Eval_ctx.phi ca) (Eval_ctx.phi cd);
  let rng = Prng.create 13 in
  let m = Graph.arc_count g in
  for _ = 1 to 8 do
    let klass = Prng.int rng 2 in
    let a = Prng.int rng m in
    let v = 1 + Prng.int rng 30 in
    let pa = Eval_ctx.probe ca ~klass ~changes:[ (a, v) ] in
    let pd = Eval_ctx.probe cd ~klass ~changes:[ (a, v) ] in
    Alcotest.(check (array (float 0.)))
      "probe phi identical" (Eval_ctx.probe_phi pa) (Eval_ctx.probe_phi pd);
    Eval_ctx.commit ca pa;
    Eval_ctx.commit cd pd
  done;
  Alcotest.(check (array (float 0.)))
    "phi identical after commits" (Eval_ctx.phi ca) (Eval_ctx.phi cd)

(* ------------------------------------------------------------------ *)
(* Incremental search bookkeeping vs. the reference loops.  The scaled
   search path keeps a cached arc ranking (repaired incrementally after
   each commit) and maintains the Zobrist base key of the current
   weight setting incrementally; [Search_config.reference_loops]
   switches both back to the original full re-sort / fresh rehash.
   The two paths must produce bit-identical searches — same
   trajectory, same memo traffic, same archive — on both cost models
   and at every scan-jobs setting. *)

module Search_config = Dtr_core.Search_config
module Problem = Dtr_core.Problem
module Str_search = Dtr_core.Str_search
module Dtr_search = Dtr_core.Dtr_search
module Objective = Dtr_routing.Objective
module Sla = Dtr_cost.Sla
module Lexico = Dtr_cost.Lexico

let search_problem ~model =
  let g, _, rng = build_connected (9, 14, 4242) in
  let n = Graph.node_count g in
  let th = random_sparse_matrix rng ~n ~pairs:5 in
  let tl = random_sparse_matrix rng ~n ~pairs:10 in
  Problem.create ~graph:g ~th ~tl ~model

let run_searches ~model ~scan_jobs ~reference_loops =
  let cfg =
    {
      Search_config.quick with
      Search_config.n_iters = 25;
      k_iters = 40;
      diversify_after = 8;
      scan_jobs;
      reference_loops;
    }
  in
  let p = search_problem ~model in
  let s = Str_search.run (Prng.create 77) cfg p in
  let d = Dtr_search.run (Prng.create 78) cfg p in
  (s, d)

let check_reference_identical ~model ~scan_jobs () =
  let si, di = run_searches ~model ~scan_jobs ~reference_loops:false in
  let sr, dr = run_searches ~model ~scan_jobs ~reference_loops:true in
  let lex = Alcotest.testable (Fmt.any "lexico") (fun a b -> a = b) in
  Alcotest.(check lex) "STR objective" sr.Str_search.objective
    si.Str_search.objective;
  Alcotest.(check (array int))
    "STR weights" sr.Str_search.best.Problem.wh si.Str_search.best.Problem.wh;
  Alcotest.(check int) "STR evaluations" sr.Str_search.evaluations
    si.Str_search.evaluations;
  Alcotest.(check int) "STR improvements" sr.Str_search.improvements
    si.Str_search.improvements;
  Alcotest.(check int) "STR memo hits" sr.Str_search.memo_hits
    si.Str_search.memo_hits;
  Alcotest.(check int) "STR memo misses" sr.Str_search.memo_misses
    si.Str_search.memo_misses;
  Alcotest.(check bool) "STR archive" true
    (sr.Str_search.archive = si.Str_search.archive);
  Alcotest.(check lex) "DTR objective" dr.Dtr_search.objective
    di.Dtr_search.objective;
  Alcotest.(check (array int))
    "DTR wh" dr.Dtr_search.best.Problem.wh di.Dtr_search.best.Problem.wh;
  Alcotest.(check (array int))
    "DTR wl" dr.Dtr_search.best.Problem.wl di.Dtr_search.best.Problem.wl;
  Alcotest.(check int) "DTR evaluations" dr.Dtr_search.evaluations
    di.Dtr_search.evaluations;
  Alcotest.(check int) "DTR improvements" dr.Dtr_search.improvements
    di.Dtr_search.improvements;
  Alcotest.(check int) "DTR memo hits" dr.Dtr_search.memo_hits
    di.Dtr_search.memo_hits;
  Alcotest.(check int) "DTR memo misses" dr.Dtr_search.memo_misses
    di.Dtr_search.memo_misses;
  Alcotest.(check bool) "DTR phase objectives" true
    (dr.Dtr_search.phase_objectives = di.Dtr_search.phase_objectives)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "dtr_scale"
    [
      ( "csr",
        [
          qc prop_csr_matches_reference;
        ] );
      ( "arenas",
        [
          qc prop_workspace_dijkstra_identical;
          qc prop_workspace_spf_identical;
          qc prop_for_destinations_active_subset;
          qc prop_destination_loads_into_identical;
        ] );
      ( "demand-mode",
        [
          qc prop_demand_mode_identical;
          Alcotest.test_case "disconnected components" `Quick
            test_demand_mode_disconnected;
          Alcotest.test_case "ts-1k preset bit-identity" `Slow
            test_demand_mode_ts1k;
        ] );
      ( "sparse-matrix",
        [
          qc prop_sparse_matrix_identical;
        ] );
      ( "large-presets",
        [
          Alcotest.test_case "BA sampler structure" `Quick
            test_generate_ba_structure;
          Alcotest.test_case "presets generate + pops" `Slow test_large_presets;
          Alcotest.test_case "PoP gravity matrix" `Quick test_gravity_pop;
        ] );
      ( "incremental-vs-reference",
        [
          Alcotest.test_case "load model, 1 scan job" `Quick
            (check_reference_identical ~model:Objective.Load ~scan_jobs:1);
          Alcotest.test_case "load model, 4 scan jobs" `Quick
            (check_reference_identical ~model:Objective.Load ~scan_jobs:4);
          Alcotest.test_case "SLA model, 1 scan job" `Quick
            (check_reference_identical ~model:(Objective.Sla Sla.default)
               ~scan_jobs:1);
          Alcotest.test_case "SLA model, 4 scan jobs" `Quick
            (check_reference_identical ~model:(Objective.Sla Sla.default)
               ~scan_jobs:4);
        ] );
    ]
