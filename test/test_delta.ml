(* Property tests for the incremental evaluation engine: Spf_delta
   against from-scratch SPF, Eval_ctx probes/commits/aborts against
   from-scratch Multi/Evaluate, and the Problem-level ctx API against
   eval_str/eval_dtr — on random topologies under random single-weight
   change sequences, to 1e-12 (the engine is in fact built to be
   bitwise-identical). *)

module Prng = Dtr_util.Prng
module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Spf_delta = Dtr_graph.Spf_delta
module Matrix = Dtr_traffic.Matrix
module Gravity = Dtr_traffic.Gravity
module Highpri = Dtr_traffic.Highpri
module Weights = Dtr_routing.Weights
module Loads = Dtr_routing.Loads
module Evaluate = Dtr_routing.Evaluate
module Eval_ctx = Dtr_routing.Eval_ctx
module Multi = Dtr_routing.Multi
module Objective = Dtr_routing.Objective
module Lexico = Dtr_cost.Lexico
module Problem = Dtr_core.Problem

(* The engine is designed to be bitwise-reproducible (same summation
   order, re-folded totals), so the comparison tolerance is zero. *)
let eps = 0.

(* ------------------------------------------------------------------ *)
(* Random fixtures *)

(* Strongly connected random topology: Waxman and power-law families
   alternate with the degree-balanced random generator (all three emit
   symmetric arcs, so connected implies strongly connected). *)
let random_graph seed =
  let rec go attempt =
    let rng = Prng.create (seed + (1000 * attempt)) in
    let g =
      match (seed + attempt) mod 3 with
      | 0 ->
          Dtr_topology.Waxman.generate rng
            { Dtr_topology.Waxman.default with nodes = 14 }
      | 1 ->
          Dtr_topology.Power_law.generate rng
            { Dtr_topology.Power_law.default with nodes = 14; m0 = 4; m = 2 }
      | _ ->
          Dtr_topology.Random_topo.generate rng
            { Dtr_topology.Random_topo.default with nodes = 14; links = 28 }
    in
    if Graph.is_strongly_connected g then g
    else if attempt > 50 then Alcotest.fail "no connected topology found"
    else go (attempt + 1)
  in
  go 0

let random_matrices rng g =
  let n = Graph.node_count g in
  let tl = Gravity.generate rng ~n Gravity.default in
  let pairs = Highpri.random_pairs rng ~n ~density:0.2 in
  let th = Highpri.volumes rng ~low:tl ~fraction:0.3 ~pairs in
  (th, tl)

let random_change rng w =
  let arc = Prng.int rng (Array.length w) in
  let v = ref (Prng.int_incl rng Weights.min_weight Weights.max_weight) in
  while !v = w.(arc) do
    v := Prng.int_incl rng Weights.min_weight Weights.max_weight
  done;
  (arc, !v)

(* ------------------------------------------------------------------ *)
(* Structural dag comparison *)

let check_dag_equal ~what expected actual =
  Alcotest.(check int) (what ^ ": dst") expected.Spf.dst actual.Spf.dst;
  Alcotest.(check (array int)) (what ^ ": dist") expected.Spf.dist actual.Spf.dist;
  Alcotest.(check (array int))
    (what ^ ": order") expected.Spf.order_desc actual.Spf.order_desc;
  Array.iteri
    (fun v exp ->
      Alcotest.(check (array int))
        (Printf.sprintf "%s: next_arcs(%d)" what v)
        exp actual.Spf.next_arcs.(v))
    expected.Spf.next_arcs

(* ------------------------------------------------------------------ *)
(* Spf_delta vs from-scratch SPF *)

let spf_delta_matches_scratch seed =
  let g = random_graph seed in
  let rng = Prng.create (seed * 7 + 1) in
  let w = Weights.random rng g in
  let dags = ref (Spf.all_destinations g ~weights:w) in
  let ws = Spf_delta.workspace () in
  for step = 1 to 8 do
    let arc, v = random_change rng w in
    let before = w.(arc) in
    w.(arc) <- v;
    let next, dirty =
      Spf_delta.update ~ws g ~weights:w ~prev:!dags
        ~changes:[ { Spf_delta.arc; before; after = v } ]
    in
    let scratch = Spf.all_destinations g ~weights:w in
    Array.iteri
      (fun t expected ->
        check_dag_equal ~what:(Printf.sprintf "seed %d step %d dst %d" seed step t)
          expected next.(t))
      scratch;
    (* Non-dirty destinations must be the previous dags, shared. *)
    Array.iteri
      (fun t dag ->
        if not (List.mem t dirty) then
          Alcotest.(check bool)
            (Printf.sprintf "clean dst %d shared" t)
            true
            (dag == !dags.(t)))
      next;
    dags := next
  done;
  true

let test_spf_delta_property () =
  QCheck.Test.make ~name:"Spf_delta.update = from-scratch SPF" ~count:15
    QCheck.(int_range 0 10_000)
    spf_delta_matches_scratch

(* Two simultaneous changes (the FindH/FindL two-arc move). *)
let spf_delta_two_changes seed =
  let g = random_graph seed in
  let rng = Prng.create (seed * 11 + 3) in
  let w = Weights.random rng g in
  let dags = Spf.all_destinations g ~weights:w in
  let a1, v1 = random_change rng w in
  let a2 = ref (fst (random_change rng w)) in
  while !a2 = a1 do
    a2 := fst (random_change rng w)
  done;
  let a2 = !a2 in
  let v2 =
    let v = ref (Prng.int_incl rng Weights.min_weight Weights.max_weight) in
    while !v = w.(a2) do
      v := Prng.int_incl rng Weights.min_weight Weights.max_weight
    done;
    !v
  in
  let b1 = w.(a1) and b2 = w.(a2) in
  w.(a1) <- v1;
  w.(a2) <- v2;
  let next, _dirty =
    Spf_delta.update g ~weights:w ~prev:dags
      ~changes:
        [
          { Spf_delta.arc = a1; before = b1; after = v1 };
          { Spf_delta.arc = a2; before = b2; after = v2 };
        ]
  in
  let scratch = Spf.all_destinations g ~weights:w in
  Array.iteri
    (fun t expected ->
      check_dag_equal ~what:(Printf.sprintf "2ch seed %d dst %d" seed t) expected
        next.(t))
    scratch;
  true

let test_spf_delta_two_changes () =
  QCheck.Test.make ~name:"Spf_delta.update handles two-arc moves" ~count:15
    QCheck.(int_range 0 10_000)
    spf_delta_two_changes

(* ------------------------------------------------------------------ *)
(* Loads helper *)

let test_destination_loads_sum () =
  let g = random_graph 42 in
  let rng = Prng.create 5 in
  let th, _ = random_matrices rng g in
  let w = Weights.random rng g in
  let dags = Spf.all_destinations g ~weights:w in
  let full = Loads.of_matrix g ~dags th in
  let n = Graph.node_count g in
  let m = Graph.arc_count g in
  let sum = Array.make m 0. in
  for t = 0 to n - 1 do
    match Loads.destination_demand ~dag:dags.(t) th with
    | None -> ()
    | Some demand ->
        let c = Loads.destination_loads g ~dag:dags.(t) ~demand_to_dst:demand in
        for a = 0 to m - 1 do
          sum.(a) <- sum.(a) +. c.(a)
        done
  done;
  Alcotest.(check bool) "per-destination subtotals recombine exactly" true
    (full = sum)

(* ------------------------------------------------------------------ *)
(* Eval_ctx vs from-scratch Multi/Evaluate *)

let check_arr ~what a b =
  Array.iteri
    (fun i x ->
      if Float.abs (x -. b.(i)) > eps then
        Alcotest.failf "%s: index %d: %.17g vs %.17g" what i x b.(i))
    a

let eval_ctx_matches_scratch seed =
  let g = random_graph seed in
  let rng = Prng.create (seed * 13 + 7) in
  let th, tl = random_matrices rng g in
  let wh = Weights.random rng g in
  let wl = Weights.random rng g in
  let ctx = Eval_ctx.create g ~weights:[| wh; wl |] ~matrices:[| th; tl |] in
  for _step = 1 to 6 do
    let klass = Prng.int rng 2 in
    let w = Eval_ctx.weights ctx klass in
    let arc, v = random_change rng w in
    let pr = Eval_ctx.probe ctx ~klass ~changes:[ (arc, v) ] in
    (* From-scratch evaluation of the candidate. *)
    let cand_w = Array.copy w in
    cand_w.(arc) <- v;
    let weights' =
      if klass = 0 then [| cand_w; Eval_ctx.weights ctx 1 |]
      else [| Eval_ctx.weights ctx 0; cand_w |]
    in
    let scratch = Multi.evaluate g ~weights:weights' ~matrices:[| th; tl |] in
    check_arr ~what:"probe phi" (Eval_ctx.probe_phi pr) scratch.Multi.phi;
    (* Abort path: the context must still match its own base state. *)
    Eval_ctx.abort ctx pr;
    let base =
      Multi.evaluate g
        ~weights:[| Eval_ctx.weights ctx 0; Eval_ctx.weights ctx 1 |]
        ~matrices:[| th; tl |]
    in
    check_arr ~what:"phi after abort" (Eval_ctx.phi ctx) base.Multi.phi;
    (* Commit path: re-probe (aborting loses nothing) and install. *)
    let pr = Eval_ctx.probe ctx ~klass ~changes:[ (arc, v) ] in
    Eval_ctx.commit ctx pr;
    let ev = Eval_ctx.to_evaluate ctx in
    check_arr ~what:"committed h_loads" ev.Evaluate.h_loads scratch.Multi.loads.(0);
    check_arr ~what:"committed l_loads" ev.Evaluate.l_loads scratch.Multi.loads.(1);
    check_arr ~what:"committed residual" ev.Evaluate.residual
      scratch.Multi.capacity_seen.(1);
    check_arr ~what:"committed phi_h_per_arc" ev.Evaluate.phi_h_per_arc
      scratch.Multi.phi_per_arc.(0);
    check_arr ~what:"committed phi_l_per_arc" ev.Evaluate.phi_l_per_arc
      scratch.Multi.phi_per_arc.(1);
    if Float.abs (ev.Evaluate.phi_h -. scratch.Multi.phi.(0)) > eps then
      Alcotest.fail "phi_h drifted";
    if Float.abs (ev.Evaluate.phi_l -. scratch.Multi.phi.(1)) > eps then
      Alcotest.fail "phi_l drifted"
  done;
  true

let test_eval_ctx_property () =
  QCheck.Test.make ~name:"Eval_ctx probe/commit/abort = from-scratch" ~count:12
    QCheck.(int_range 0 10_000)
    eval_ctx_matches_scratch

(* Shared-vector (STR) context: one change moves every class. *)
let eval_ctx_shared_matches seed =
  let g = random_graph seed in
  let rng = Prng.create (seed * 17 + 5) in
  let th, tl = random_matrices rng g in
  let w = Weights.random rng g in
  let ctx = Eval_ctx.create g ~weights:[| w; w |] ~matrices:[| th; tl |] in
  Alcotest.(check bool) "classes alias" true (Eval_ctx.shares_group ctx 0 1);
  let arc, v = random_change rng w in
  let pr = Eval_ctx.probe ctx ~klass:0 ~changes:[ (arc, v) ] in
  let cand = Array.copy w in
  cand.(arc) <- v;
  let scratch = Multi.evaluate g ~weights:[| cand; cand |] ~matrices:[| th; tl |] in
  check_arr ~what:"shared probe phi" (Eval_ctx.probe_phi pr) scratch.Multi.phi;
  Eval_ctx.commit ctx pr;
  check_arr ~what:"shared committed phi" (Eval_ctx.phi ctx) scratch.Multi.phi;
  check_arr ~what:"shared l weights"
    (Array.map float_of_int (Eval_ctx.weights ctx 1))
    (Array.map float_of_int cand);
  true

let test_eval_ctx_shared () =
  QCheck.Test.make ~name:"Eval_ctx shared-vector probes move all classes"
    ~count:10
    QCheck.(int_range 0 10_000)
    eval_ctx_shared_matches

(* Three classes exercise the full residual cascade. *)
let eval_ctx_three_classes seed =
  let g = random_graph seed in
  let rng = Prng.create (seed * 19 + 11) in
  let n = Graph.node_count g in
  let matrices =
    Array.init 3 (fun _ -> Gravity.generate rng ~n Gravity.default)
  in
  let weights = Array.init 3 (fun _ -> Weights.random rng g) in
  let ctx = Eval_ctx.create g ~weights ~matrices in
  let klass = Prng.int rng 3 in
  let w = Eval_ctx.weights ctx klass in
  let arc, v = random_change rng w in
  let pr = Eval_ctx.probe ctx ~klass ~changes:[ (arc, v) ] in
  let weights' = Array.init 3 (Eval_ctx.weights ctx) in
  weights'.(klass).(arc) <- v;
  let scratch = Multi.evaluate g ~weights:weights' ~matrices in
  check_arr ~what:"3-class probe phi" (Eval_ctx.probe_phi pr) scratch.Multi.phi;
  Eval_ctx.commit ctx pr;
  let multi = Eval_ctx.to_multi ctx in
  for k = 0 to 2 do
    check_arr
      ~what:(Printf.sprintf "3-class loads %d" k)
      multi.Multi.loads.(k) scratch.Multi.loads.(k);
    check_arr
      ~what:(Printf.sprintf "3-class capacity %d" k)
      multi.Multi.capacity_seen.(k)
      scratch.Multi.capacity_seen.(k)
  done;
  true

let test_eval_ctx_three_classes () =
  QCheck.Test.make ~name:"Eval_ctx 3-class residual cascade" ~count:10
    QCheck.(int_range 0 10_000)
    eval_ctx_three_classes

(* ------------------------------------------------------------------ *)
(* Problem-level delta API vs eval_str / eval_dtr *)

let check_lex ~what a b =
  if Lexico.compare a b <> 0 then
    Alcotest.failf "%s: ⟨%.17g, %.17g⟩ vs ⟨%.17g, %.17g⟩" what
      a.Lexico.primary a.Lexico.secondary b.Lexico.primary b.Lexico.secondary

let problem_delta_matches seed =
  let g = random_graph seed in
  let rng = Prng.create (seed * 23 + 9) in
  let th, tl = random_matrices rng g in
  List.iter
    (fun model ->
      let problem = Problem.create ~graph:g ~th ~tl ~model in
      (* STR context. *)
      let w0 = Weights.random rng g in
      let sol = ref (Problem.eval_str problem ~w:w0) in
      let ctx = Problem.ctx_of_solution problem !sol in
      for _ = 1 to 3 do
        let w = !sol.Problem.wh in
        let arc, v = random_change rng w in
        let d = Problem.eval_delta problem ctx ~cls:`H ~changes:[ (arc, v) ] in
        let w' = Array.copy w in
        w'.(arc) <- v;
        let scratch = Problem.eval_str problem ~w:w' in
        check_lex ~what:"STR probe objective" (Problem.delta_objective d)
          (Problem.objective scratch);
        (* Reject path: context still evaluates the base exactly. *)
        Problem.abort_delta ctx d;
        let again = Problem.eval_delta problem ctx ~cls:`H ~changes:[ (arc, v) ] in
        check_lex ~what:"STR probe after abort" (Problem.delta_objective again)
          (Problem.objective scratch);
        let committed = Problem.commit_delta problem ctx again in
        check_lex ~what:"STR committed objective" (Problem.objective committed)
          (Problem.objective scratch);
        Alcotest.(check bool) "committed solution is STR" true
          (Problem.is_str committed);
        sol := committed
      done;
      (* DTR context, both classes. *)
      let wh0 = Weights.random rng g and wl0 = Weights.random rng g in
      let sol = ref (Problem.eval_dtr problem ~wh:wh0 ~wl:wl0) in
      let ctx = Problem.ctx_of_solution problem !sol in
      List.iter
        (fun cls ->
          let base =
            match cls with `H -> !sol.Problem.wh | `L -> !sol.Problem.wl
          in
          let arc, v = random_change rng base in
          let d = Problem.eval_delta problem ctx ~cls ~changes:[ (arc, v) ] in
          let w' = Array.copy base in
          w'.(arc) <- v;
          let scratch =
            match cls with
            | `H -> Problem.eval_dtr problem ~wh:w' ~wl:!sol.Problem.wl
            | `L -> Problem.eval_dtr problem ~wh:!sol.Problem.wh ~wl:w'
          in
          check_lex ~what:"DTR probe objective" (Problem.delta_objective d)
            (Problem.objective scratch);
          let committed = Problem.commit_delta problem ctx d in
          check_lex ~what:"DTR committed objective"
            (Problem.objective committed) (Problem.objective scratch);
          sol := committed)
        [ `H; `L ])
    [ Objective.Load; Objective.Sla Dtr_cost.Sla.default ];
  true

let test_problem_delta () =
  QCheck.Test.make ~name:"Problem.eval_delta = eval_str/eval_dtr (both models)"
    ~count:8
    QCheck.(int_range 0 10_000)
    problem_delta_matches

let test_problem_counters () =
  let g = random_graph 7 in
  let rng = Prng.create 31 in
  let th, tl = random_matrices rng g in
  let problem = Problem.create ~graph:g ~th ~tl ~model:Objective.Load in
  Problem.reset_evaluations ();
  let w = Weights.random rng g in
  let sol = Problem.eval_str problem ~w in
  let ctx = Problem.ctx_of_solution problem sol in
  let arc, v = random_change rng sol.Problem.wh in
  let d = Problem.eval_delta problem ctx ~cls:`H ~changes:[ (arc, v) ] in
  ignore (Problem.commit_delta problem ctx d);
  Alcotest.(check int) "full evaluations" 1 (Problem.full_evaluations ());
  Alcotest.(check int) "delta evaluations" 1 (Problem.delta_evaluations ());
  Alcotest.(check int) "total evaluations" 2 (Problem.evaluations ());
  Problem.reset_evaluations ()

let test_eval_ctx_stale_probe () =
  let g = random_graph 3 in
  let rng = Prng.create 23 in
  let th, tl = random_matrices rng g in
  let w = Weights.random rng g in
  let ctx = Eval_ctx.create g ~weights:[| w; w |] ~matrices:[| th; tl |] in
  let arc, v = random_change rng w in
  let p1 = Eval_ctx.probe ctx ~klass:0 ~changes:[ (arc, v) ] in
  let p2 = Eval_ctx.probe ctx ~klass:0 ~changes:[ (arc, v) ] in
  Eval_ctx.commit ctx p1;
  Alcotest.check_raises "stale probe rejected"
    (Invalid_argument "Eval_ctx.commit: stale probe (context has moved on)")
    (fun () -> Eval_ctx.commit ctx p2)

let () =
  Alcotest.run "delta"
    [
      ( "spf_delta",
        [
          QCheck_alcotest.to_alcotest (test_spf_delta_property ());
          QCheck_alcotest.to_alcotest (test_spf_delta_two_changes ());
        ] );
      ( "loads",
        [
          Alcotest.test_case "destination subtotals recombine" `Quick
            test_destination_loads_sum;
        ] );
      ( "eval_ctx",
        [
          QCheck_alcotest.to_alcotest (test_eval_ctx_property ());
          QCheck_alcotest.to_alcotest (test_eval_ctx_shared ());
          QCheck_alcotest.to_alcotest (test_eval_ctx_three_classes ());
          Alcotest.test_case "stale probe rejected" `Quick
            test_eval_ctx_stale_probe;
        ] );
      ( "problem",
        [
          QCheck_alcotest.to_alcotest (test_problem_delta ());
          Alcotest.test_case "full/delta counters" `Quick test_problem_counters;
        ] );
    ]
