(* Tests for Dtr_traffic: matrices, the gravity model (Eqs. 6-7), and
   the high-priority models (random / sink, volume scaling). *)

module Matrix = Dtr_traffic.Matrix
module Gravity = Dtr_traffic.Gravity
module Highpri = Dtr_traffic.Highpri
module Prng = Dtr_util.Prng
module Graph = Dtr_graph.Graph

(* ------------------------------------------------------------------ *)
(* Matrix *)

let test_matrix_get_set () =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 5.;
  Alcotest.(check (float 0.)) "set/get" 5. (Matrix.get m 0 1);
  Alcotest.(check (float 0.)) "other zero" 0. (Matrix.get m 1 0)

let test_matrix_rejects_diagonal () =
  let m = Matrix.create 3 in
  Alcotest.check_raises "diagonal"
    (Invalid_argument "Matrix.set: diagonal must stay zero") (fun () ->
      Matrix.set m 1 1 1.)

let test_matrix_rejects_negative () =
  let m = Matrix.create 3 in
  Alcotest.check_raises "negative"
    (Invalid_argument "Matrix.set: negative demand") (fun () ->
      Matrix.set m 0 1 (-1.))

let test_matrix_rejects_out_of_range () =
  let m = Matrix.create 3 in
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Matrix: index out of range") (fun () ->
      ignore (Matrix.get m 0 3));
  Alcotest.check_raises "set out of range"
    (Invalid_argument "Matrix: index out of range") (fun () ->
      Matrix.set m (-1) 0 1.)

let test_matrix_total_and_scale () =
  let m = Matrix.create 3 in
  Matrix.set m 0 1 2.;
  Matrix.set m 2 0 3.;
  Alcotest.(check (float 1e-9)) "total" 5. (Matrix.total m);
  let s = Matrix.scale m 2. in
  Alcotest.(check (float 1e-9)) "scaled total" 10. (Matrix.total s);
  Alcotest.(check (float 1e-9)) "original untouched" 5. (Matrix.total m)

let test_matrix_add () =
  let m = Matrix.create 2 in
  Matrix.add m 0 1 1.;
  Matrix.add m 0 1 2.;
  Alcotest.(check (float 1e-9)) "accumulated" 3. (Matrix.get m 0 1)

let test_matrix_pairs () =
  let m = Matrix.create 3 in
  Matrix.set m 0 2 1.;
  Matrix.set m 2 1 4.;
  Alcotest.(check int) "pair count" 2 (Matrix.pair_count m);
  Alcotest.(check (list (pair int (pair int (float 0.))))) "row major order"
    [ (0, (2, 1.)); (2, (1, 4.)) ]
    (List.map (fun (s, t, v) -> (s, (t, v))) (Matrix.pairs m))

let test_matrix_copy_independent () =
  let m = Matrix.create 2 in
  Matrix.set m 0 1 1.;
  let c = Matrix.copy m in
  Matrix.set c 0 1 9.;
  Alcotest.(check (float 0.)) "original unchanged" 1. (Matrix.get m 0 1)

let test_matrix_map2 () =
  let a = Matrix.create 2 and b = Matrix.create 2 in
  Matrix.set a 0 1 1.;
  Matrix.set b 0 1 2.;
  let c = Matrix.map2 a b ( +. ) in
  Alcotest.(check (float 0.)) "sum" 3. (Matrix.get c 0 1)

let test_matrix_equal () =
  let a = Matrix.create 2 and b = Matrix.create 2 in
  Matrix.set a 0 1 1.;
  Matrix.set b 0 1 (1. +. 1e-12);
  Alcotest.(check bool) "equal within eps" true (Matrix.equal a b);
  Matrix.set b 0 1 2.;
  Alcotest.(check bool) "not equal" false (Matrix.equal a b)

(* ------------------------------------------------------------------ *)
(* Gravity *)

let test_gravity_dense_positive () =
  let m = Gravity.generate (Prng.create 1) ~n:10 Gravity.default in
  for s = 0 to 9 do
    for t = 0 to 9 do
      if s <> t then
        Alcotest.(check bool) "positive demand" true (Matrix.get m s t > 0.)
    done
  done

let test_gravity_row_sums_in_demand_bands () =
  (* Each node's total originated traffic is one of the three bands of
     Eq. (7): [10, 50], [80, 130] or [150, 200]. *)
  let m = Gravity.generate (Prng.create 2) ~n:20 Gravity.default in
  for s = 0 to 19 do
    let d = ref 0. in
    for t = 0 to 19 do
      if t <> s then d := !d +. Matrix.get m s t
    done;
    let in_band lo hi = !d >= lo -. 1e-6 && !d <= hi +. 1e-6 in
    Alcotest.(check bool) "row total in a band" true
      (in_band 10. 50. || in_band 80. 130. || in_band 150. 200.)
  done

let test_gravity_mass_attraction () =
  (* Within one source row, the split across destinations is
     proportional to exp(V_t): ratios bounded by exp(1.5 - 1). *)
  let m = Gravity.generate (Prng.create 3) ~n:10 Gravity.default in
  let max_ratio = exp 0.5 +. 1e-9 in
  for s = 0 to 9 do
    for t1 = 0 to 9 do
      for t2 = 0 to 9 do
        if t1 <> s && t2 <> s && t1 <> t2 then begin
          let r = Matrix.get m s t1 /. Matrix.get m s t2 in
          Alcotest.(check bool) "bounded attraction ratio" true
            (r <= max_ratio && r >= 1. /. max_ratio)
        end
      done
    done
  done

let test_gravity_reproducible () =
  let a = Gravity.generate (Prng.create 4) ~n:8 Gravity.default in
  let b = Gravity.generate (Prng.create 4) ~n:8 Gravity.default in
  Alcotest.(check bool) "same matrices" true (Matrix.equal a b)

let test_gravity_rejects_small () =
  Alcotest.check_raises "n=1"
    (Invalid_argument "Gravity.generate: need at least 2 nodes") (fun () ->
      ignore (Gravity.generate (Prng.create 1) ~n:1 Gravity.default))

(* ------------------------------------------------------------------ *)
(* Highpri: random pairs *)

let test_random_pairs_count () =
  let pairs = Highpri.random_pairs (Prng.create 1) ~n:10 ~density:0.1 in
  (* 10 * 9 = 90 ordered pairs; 10% = 9. *)
  Alcotest.(check int) "nine pairs" 9 (List.length pairs)

let test_random_pairs_distinct_valid () =
  let n = 12 in
  let pairs = Highpri.random_pairs (Prng.create 2) ~n ~density:0.5 in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (s, t) ->
      Alcotest.(check bool) "valid" true (s >= 0 && s < n && t >= 0 && t < n && s <> t);
      Alcotest.(check bool) "distinct" false (Hashtbl.mem tbl (s, t));
      Hashtbl.add tbl (s, t) ())
    pairs

let test_random_pairs_full_density () =
  let pairs = Highpri.random_pairs (Prng.create 3) ~n:5 ~density:1.0 in
  Alcotest.(check int) "all pairs" 20 (List.length pairs)

let test_random_pairs_rejects () =
  Alcotest.check_raises "density > 1"
    (Invalid_argument "Highpri.random_pairs: density must be in [0, 1]")
    (fun () -> ignore (Highpri.random_pairs (Prng.create 1) ~n:5 ~density:1.5))

(* ------------------------------------------------------------------ *)
(* Highpri: sinks *)

let test_sink_pairs_bidirectional () =
  let pairs = Highpri.sink_pairs ~sinks:[| 0; 1 |] ~clients:[| 2; 3; 4 |] in
  Alcotest.(check int) "2 sinks x 3 clients x 2 directions" 12
    (List.length pairs);
  List.iter
    (fun (s, t) ->
      let is_sink v = v = 0 || v = 1 in
      Alcotest.(check bool) "one endpoint is a sink" true
        (is_sink s <> is_sink t))
    pairs

let test_sink_pairs_rejects_overlap () =
  Alcotest.check_raises "overlap"
    (Invalid_argument "Highpri.sink_pairs: duplicate/overlapping clients")
    (fun () -> ignore (Highpri.sink_pairs ~sinks:[| 0 |] ~clients:[| 0; 1 |]))

let test_select_clients_uniform () =
  let g = Dtr_topology.Classic.ring 10 in
  let clients =
    Highpri.select_clients (Prng.create 1) g ~sinks:[| 0 |] ~count:4
      Highpri.Uniform
  in
  Alcotest.(check int) "four clients" 4 (Array.length clients);
  Array.iter
    (fun c -> Alcotest.(check bool) "not the sink" true (c <> 0))
    clients

let test_select_clients_local () =
  (* On a ring, the nodes closest to sink 0 are 1, 2, 9, 8 (hop <= 2). *)
  let g = Dtr_topology.Classic.ring 10 in
  let clients =
    Highpri.select_clients (Prng.create 2) g ~sinks:[| 0 |] ~count:4
      Highpri.Local
  in
  let sorted = Array.copy clients in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "nearest nodes" [| 1; 2; 8; 9 |] sorted

let test_select_clients_rejects_count () =
  let g = Dtr_topology.Classic.ring 5 in
  Alcotest.check_raises "too many"
    (Invalid_argument "Highpri.select_clients: count out of range") (fun () ->
      ignore
        (Highpri.select_clients (Prng.create 1) g ~sinks:[| 0 |] ~count:5
           Highpri.Uniform))

let test_client_count_for_density () =
  (* n=30, 3 sinks, k=10%: 0.1 * 870 / 6 = 14.5 -> 15 clients. *)
  Alcotest.(check int) "count" 15
    (Highpri.client_count_for_density ~n:30 ~sinks:3 ~density:0.1);
  Alcotest.(check int) "clamped to available" 27
    (Highpri.client_count_for_density ~n:30 ~sinks:3 ~density:1.0);
  Alcotest.(check int) "at least one" 1
    (Highpri.client_count_for_density ~n:30 ~sinks:3 ~density:0.0001)

(* ------------------------------------------------------------------ *)
(* Highpri: volumes *)

let test_volumes_fraction () =
  let rng = Prng.create 5 in
  let low = Gravity.generate rng ~n:12 Gravity.default in
  let pairs = Highpri.random_pairs rng ~n:12 ~density:0.2 in
  let high = Highpri.volumes rng ~low ~fraction:0.3 ~pairs in
  let f = Matrix.total high /. (Matrix.total high +. Matrix.total low) in
  Alcotest.(check (float 1e-9)) "f = 30%" 0.3 f

let test_volumes_only_selected_pairs () =
  let rng = Prng.create 6 in
  let low = Gravity.generate rng ~n:8 Gravity.default in
  let pairs = [ (0, 3); (5, 2) ] in
  let high = Highpri.volumes rng ~low ~fraction:0.25 ~pairs in
  Alcotest.(check int) "two entries" 2 (Matrix.pair_count high);
  Alcotest.(check bool) "selected pair positive" true (Matrix.get high 0 3 > 0.)

let test_volumes_heterogeneous () =
  (* The per-pair marks are Uniform(1,4), so volumes must differ but by
     at most a factor of 4. *)
  let rng = Prng.create 7 in
  let low = Gravity.generate rng ~n:10 Gravity.default in
  let pairs = Highpri.random_pairs rng ~n:10 ~density:0.3 in
  let high = Highpri.volumes rng ~low ~fraction:0.3 ~pairs in
  let vols = List.map (fun (_, _, v) -> v) (Matrix.pairs high) in
  let lo = List.fold_left min infinity vols in
  let hi = List.fold_left max 0. vols in
  Alcotest.(check bool) "spread" true (hi > lo);
  Alcotest.(check bool) "bounded by mark range" true (hi /. lo <= 4. +. 1e-9)

let test_volumes_rejects () =
  let rng = Prng.create 8 in
  let low = Gravity.generate rng ~n:5 Gravity.default in
  Alcotest.check_raises "no pairs"
    (Invalid_argument "Highpri.volumes: no pairs") (fun () ->
      ignore (Highpri.volumes rng ~low ~fraction:0.3 ~pairs:[]));
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Highpri.volumes: fraction must be in (0, 1)") (fun () ->
      ignore (Highpri.volumes rng ~low ~fraction:1.0 ~pairs:[ (0, 1) ]))

(* ------------------------------------------------------------------ *)
(* Diurnal *)

module Diurnal = Dtr_traffic.Diurnal

let test_diurnal_peak_and_trough () =
  let p = Diurnal.default in
  Alcotest.(check (float 1e-9)) "peak at peak_hour" 1.0
    (Diurnal.multiplier p ~hour:20.);
  Alcotest.(check (float 1e-9)) "trough 12h later" 0.35
    (Diurnal.multiplier p ~hour:8.)

let test_diurnal_bounds () =
  let p = Diurnal.default in
  for h = 0 to 23 do
    let m = Diurnal.multiplier p ~hour:(float_of_int h) in
    Alcotest.(check bool) "within [trough, peak]" true
      (m >= p.Diurnal.trough -. 1e-9 && m <= p.Diurnal.peak +. 1e-9)
  done

let test_diurnal_periodic () =
  let p = Diurnal.default in
  Alcotest.(check (float 1e-9)) "24h periodic"
    (Diurnal.multiplier p ~hour:3.)
    (Diurnal.multiplier p ~hour:27.)

let test_diurnal_snapshots_scale () =
  let th = Matrix.create 3 and tl = Matrix.create 3 in
  Matrix.set th 0 1 10.;
  Matrix.set tl 1 2 20.;
  let snaps = Diurnal.snapshots Diurnal.default ~hours:[ 20.; 8. ] ~th ~tl in
  Alcotest.(check int) "two snapshots" 2 (List.length snaps);
  (match snaps with
  | (h1, th1, tl1) :: (h2, th2, _) :: _ ->
      Alcotest.(check (float 1e-9)) "hour kept" 20. h1;
      Alcotest.(check (float 1e-9)) "peak unscaled" 10. (Matrix.get th1 0 1);
      Alcotest.(check (float 1e-9)) "peak unscaled low" 20. (Matrix.get tl1 1 2);
      Alcotest.(check (float 1e-9)) "hour kept 2" 8. h2;
      Alcotest.(check (float 1e-9)) "trough scaled" 3.5 (Matrix.get th2 0 1)
  | _ -> Alcotest.fail "expected two snapshots");
  (* Base matrices untouched. *)
  Alcotest.(check (float 1e-9)) "base intact" 10. (Matrix.get th 0 1)

let test_diurnal_rejects () =
  Alcotest.check_raises "bad profile"
    (Invalid_argument "Diurnal: peak must be >= trough") (fun () ->
      ignore
        (Diurnal.multiplier
           { Diurnal.trough = 1.0; peak = 0.5; peak_hour = 12. }
           ~hour:0.))

let prop_volumes_fraction_exact =
  QCheck.Test.make ~name:"high-priority share is always exactly f" ~count:100
    QCheck.(pair (int_range 0 10_000) (float_range 0.05 0.95))
    (fun (seed, fraction) ->
      let rng = Prng.create seed in
      let low = Gravity.generate rng ~n:6 Gravity.default in
      let pairs = Highpri.random_pairs rng ~n:6 ~density:0.4 in
      if pairs = [] then true
      else begin
        let high = Highpri.volumes rng ~low ~fraction ~pairs in
        let f = Matrix.total high /. (Matrix.total high +. Matrix.total low) in
        Float.abs (f -. fraction) < 1e-9
      end)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "dtr_traffic"
    [
      ( "matrix",
        [
          Alcotest.test_case "get/set" `Quick test_matrix_get_set;
          Alcotest.test_case "rejects diagonal" `Quick
            test_matrix_rejects_diagonal;
          Alcotest.test_case "rejects negative" `Quick
            test_matrix_rejects_negative;
          Alcotest.test_case "rejects out of range" `Quick
            test_matrix_rejects_out_of_range;
          Alcotest.test_case "total and scale" `Quick test_matrix_total_and_scale;
          Alcotest.test_case "add accumulates" `Quick test_matrix_add;
          Alcotest.test_case "pairs" `Quick test_matrix_pairs;
          Alcotest.test_case "copy independence" `Quick
            test_matrix_copy_independent;
          Alcotest.test_case "map2" `Quick test_matrix_map2;
          Alcotest.test_case "equal" `Quick test_matrix_equal;
        ] );
      ( "gravity",
        [
          Alcotest.test_case "dense positive" `Quick test_gravity_dense_positive;
          Alcotest.test_case "row sums in Eq.(7) bands" `Quick
            test_gravity_row_sums_in_demand_bands;
          Alcotest.test_case "mass attraction bounded" `Quick
            test_gravity_mass_attraction;
          Alcotest.test_case "reproducible" `Quick test_gravity_reproducible;
          Alcotest.test_case "rejects n<2" `Quick test_gravity_rejects_small;
        ] );
      ( "highpri-random",
        [
          Alcotest.test_case "pair count" `Quick test_random_pairs_count;
          Alcotest.test_case "distinct valid pairs" `Quick
            test_random_pairs_distinct_valid;
          Alcotest.test_case "full density" `Quick test_random_pairs_full_density;
          Alcotest.test_case "rejects bad density" `Quick
            test_random_pairs_rejects;
        ] );
      ( "highpri-sinks",
        [
          Alcotest.test_case "bidirectional pairs" `Quick
            test_sink_pairs_bidirectional;
          Alcotest.test_case "rejects overlap" `Quick
            test_sink_pairs_rejects_overlap;
          Alcotest.test_case "uniform selection" `Quick
            test_select_clients_uniform;
          Alcotest.test_case "local selection" `Quick test_select_clients_local;
          Alcotest.test_case "rejects bad count" `Quick
            test_select_clients_rejects_count;
          Alcotest.test_case "client count for density" `Quick
            test_client_count_for_density;
        ] );
      ( "diurnal",
        [
          Alcotest.test_case "peak and trough" `Quick
            test_diurnal_peak_and_trough;
          Alcotest.test_case "bounds" `Quick test_diurnal_bounds;
          Alcotest.test_case "periodic" `Quick test_diurnal_periodic;
          Alcotest.test_case "snapshots scale" `Quick
            test_diurnal_snapshots_scale;
          Alcotest.test_case "rejects bad profile" `Quick test_diurnal_rejects;
        ] );
      ( "highpri-volumes",
        [
          Alcotest.test_case "fraction respected" `Quick test_volumes_fraction;
          Alcotest.test_case "only selected pairs" `Quick
            test_volumes_only_selected_pairs;
          Alcotest.test_case "heterogeneous volumes" `Quick
            test_volumes_heterogeneous;
          Alcotest.test_case "rejects bad input" `Quick test_volumes_rejects;
          qc prop_volumes_fraction_exact;
        ] );
    ]
