(* Unit and property tests for Dtr_util: Prng, Dist, Stats, Pqueue,
   Table. *)

module Prng = Dtr_util.Prng
module Dist = Dtr_util.Dist
module Stats = Dtr_util.Stats
module Pqueue = Dtr_util.Pqueue
module Bucket_queue = Dtr_util.Bucket_queue
module Vhash = Dtr_util.Vhash
module Vmemo = Dtr_util.Vmemo
module Table = Dtr_util.Table

let check_float = Alcotest.(check (float 1e-9))

let checkf msg expected actual = check_float msg expected actual

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_determinism () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different streams" true (!same < 4)

let test_prng_int_bounds () =
  let g = Prng.create 5 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_prng_int_rejects_bad_bound () =
  let g = Prng.create 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_prng_int_incl () =
  let g = Prng.create 6 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    let v = Prng.int_incl g 3 7 in
    Alcotest.(check bool) "3 <= v <= 7" true (v >= 3 && v <= 7);
    seen.(v - 3) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_prng_float_range () =
  let g = Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Prng.float g 2.5 in
    Alcotest.(check bool) "0 <= v < 2.5" true (v >= 0. && v < 2.5)
  done

let test_prng_uniform_mean () =
  let g = Prng.create 8 in
  let n = 100_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Prng.uniform g 1. 4.
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean close to 2.5" true (Float.abs (mean -. 2.5) < 0.02)

let test_prng_split_independent () =
  let g = Prng.create 9 in
  let a = Prng.split g in
  let b = Prng.split g in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 4)

let test_prng_shuffle_permutation () =
  let g = Prng.create 10 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation"
    (Array.init 50 (fun i -> i))
    sorted

let test_prng_sample_without_replacement () =
  let g = Prng.create 11 in
  let s = Prng.sample_without_replacement g 10 30 in
  Alcotest.(check int) "ten elements" 10 (Array.length s);
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "in range" true (v >= 0 && v < 30);
      Alcotest.(check bool) "distinct" false (Hashtbl.mem tbl v);
      Hashtbl.add tbl v ())
    s

let test_prng_sample_full () =
  let g = Prng.create 12 in
  let s = Prng.sample_without_replacement g 5 5 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "full sample is permutation" [| 0; 1; 2; 3; 4 |] sorted

let test_prng_sample_rejects () =
  let g = Prng.create 13 in
  Alcotest.check_raises "k > n"
    (Invalid_argument "Prng.sample_without_replacement") (fun () ->
      ignore (Prng.sample_without_replacement g 6 5))

let test_prng_choose () =
  let g = Prng.create 14 in
  for _ = 1 to 100 do
    let v = Prng.choose g [| 3; 5; 9 |] in
    Alcotest.(check bool) "member" true (List.mem v [ 3; 5; 9 ])
  done

(* ------------------------------------------------------------------ *)
(* Dist *)

let test_heavy_tail_support () =
  let g = Prng.create 20 in
  let d = Dist.heavy_tail ~tau:1.5 ~n:10 in
  for _ = 1 to 10_000 do
    let k = Dist.heavy_tail_sample d g in
    Alcotest.(check bool) "1 <= k <= 10" true (k >= 1 && k <= 10)
  done

let test_heavy_tail_bias () =
  (* With tau = 1.5, rank 1 must be sampled far more often than rank n. *)
  let g = Prng.create 21 in
  let d = Dist.heavy_tail ~tau:1.5 ~n:20 in
  let counts = Array.make 21 0 in
  for _ = 1 to 20_000 do
    let k = Dist.heavy_tail_sample d g in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 1 dominates rank 20" true
    (counts.(1) > 5 * counts.(20))

let test_heavy_tail_uniform_when_tau_zero () =
  let d = Dist.heavy_tail ~tau:0. ~n:4 in
  for k = 1 to 4 do
    checkf "uniform mass" 0.25 (Dist.heavy_tail_mass d k)
  done

let test_heavy_tail_mass_sums_to_one () =
  let d = Dist.heavy_tail ~tau:1.5 ~n:50 in
  let total = ref 0. in
  for k = 1 to 50 do
    total := !total +. Dist.heavy_tail_mass d k
  done;
  check_float "sums to 1" 1.0 !total

let test_heavy_tail_rejects () =
  Alcotest.check_raises "n = 0"
    (Invalid_argument "Dist.heavy_tail: n must be positive") (fun () ->
      ignore (Dist.heavy_tail ~tau:1.0 ~n:0));
  Alcotest.check_raises "tau < 0"
    (Invalid_argument "Dist.heavy_tail: tau must be non-negative") (fun () ->
      ignore (Dist.heavy_tail ~tau:(-1.) ~n:3))

let test_heavy_tail_mass_rejects_rank () =
  let d = Dist.heavy_tail ~tau:1.0 ~n:3 in
  Alcotest.check_raises "rank 0"
    (Invalid_argument "Dist.heavy_tail_mass: rank out of range") (fun () ->
      ignore (Dist.heavy_tail_mass d 0));
  Alcotest.check_raises "rank 4"
    (Invalid_argument "Dist.heavy_tail_mass: rank out of range") (fun () ->
      ignore (Dist.heavy_tail_mass d 4))

let test_weighted_choice_respects_zeros () =
  let g = Prng.create 22 in
  for _ = 1 to 1000 do
    let i = Dist.weighted_choice g [| 0.; 1.; 0.; 2.; 0. |] in
    Alcotest.(check bool) "never picks zero weight" true (i = 1 || i = 3)
  done

let test_weighted_choice_proportional () =
  let g = Prng.create 23 in
  let counts = [| 0; 0 |] in
  for _ = 1 to 30_000 do
    let i = Dist.weighted_choice g [| 1.; 3. |] in
    counts.(i) <- counts.(i) + 1
  done;
  let frac = float_of_int counts.(1) /. 30_000. in
  Alcotest.(check bool) "3:1 ratio" true (Float.abs (frac -. 0.75) < 0.02)

let test_weighted_choice_rejects () =
  let g = Prng.create 24 in
  Alcotest.check_raises "all zero"
    (Invalid_argument "Dist.weighted_choice: zero total weight") (fun () ->
      ignore (Dist.weighted_choice g [| 0.; 0. |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Dist.weighted_choice: negative or NaN weight")
    (fun () -> ignore (Dist.weighted_choice g [| 1.; -1. |]))

let test_exponential_mean () =
  let g = Prng.create 25 in
  let n = 100_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Dist.exponential g ~rate:2.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean 1/2" true (Float.abs (mean -. 0.5) < 0.01)

let test_exponential_positive () =
  let g = Prng.create 26 in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "positive" true (Dist.exponential g ~rate:1.0 >= 0.)
  done

let test_three_level_bands () =
  let g = Prng.create 27 in
  let levels = [| (0.6, 10., 50.); (0.35, 80., 130.); (0.05, 150., 200.) |] in
  let in_band v (_, lo, hi) = v >= lo && v <= hi in
  for _ = 1 to 5_000 do
    let v = Dist.three_level g levels in
    Alcotest.(check bool) "in one of the bands" true
      (Array.exists (in_band v) levels)
  done

let test_three_level_proportions () =
  let g = Prng.create 28 in
  let levels = [| (0.6, 0., 1.); (0.4, 10., 11.) |] in
  let low = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Dist.three_level g levels < 5. then incr low
  done;
  let frac = float_of_int !low /. float_of_int n in
  Alcotest.(check bool) "60/40 split" true (Float.abs (frac -. 0.6) < 0.02)

let test_three_level_rejects_bad_probs () =
  let g = Prng.create 29 in
  Alcotest.check_raises "probs sum to 0.9"
    (Invalid_argument "Dist.three_level: probabilities must sum to 1")
    (fun () -> ignore (Dist.three_level g [| (0.5, 0., 1.); (0.4, 2., 3.) |]))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean () =
  checkf "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  checkf "empty mean" 0. (Stats.mean [||])

let test_stats_variance () =
  checkf "variance" 1.25 (Stats.variance [| 1.; 2.; 3.; 4. |]);
  checkf "constant variance" 0. (Stats.variance [| 5.; 5.; 5. |])

let test_stats_stddev () = checkf "stddev" 2. (Stats.stddev [| 2.; 6. |])

let test_stats_min_max () =
  let lo, hi = Stats.min_max [| 3.; -1.; 7.; 0. |] in
  checkf "min" (-1.) lo;
  checkf "max" 7. hi;
  Alcotest.check_raises "empty" (Invalid_argument "Stats.min_max: empty array")
    (fun () -> ignore (Stats.min_max [||]))

let test_stats_percentile () =
  let a = [| 1.; 2.; 3.; 4.; 5. |] in
  checkf "p0" 1. (Stats.percentile a 0.);
  checkf "p50" 3. (Stats.percentile a 50.);
  checkf "p100" 5. (Stats.percentile a 100.);
  checkf "p25 interpolates" 2. (Stats.percentile a 25.)

let test_stats_percentile_total_order () =
  (* Float.compare (not polymorphic compare) must drive the sort:
     negative zeros and denormals around zero order correctly, and a
     NaN sample is rejected up front instead of silently corrupting the
     sort order. *)
  checkf "negative zero orders below positives" (-0.)
    (Stats.percentile [| 1.; -0.; 2. |] 0.);
  checkf "p100 with negatives" 3. (Stats.percentile [| -5.; 3.; -1. |] 100.);
  Alcotest.check_raises "NaN sample"
    (Invalid_argument "Stats.percentile: NaN sample") (fun () ->
      ignore (Stats.percentile [| 1.; Float.nan; 2. |] 50.))

let test_stats_median_even () =
  checkf "median of even count" 2.5 (Stats.median [| 1.; 2.; 3.; 4. |])

let test_stats_histogram () =
  let h = Stats.histogram ~lo:0. ~hi:1. ~bins:4 [| 0.1; 0.3; 0.3; 0.9; 1.5 |] in
  Alcotest.(check (array int)) "counts" [| 1; 2; 0; 1 |] h.Stats.counts;
  Alcotest.(check int) "overflow" 1 h.Stats.overflow;
  checkf "bin 0 center" 0.125 (Stats.histogram_bin_center h 0)

let test_stats_histogram_clamps_low () =
  let h = Stats.histogram ~lo:1. ~hi:2. ~bins:2 [| 0.5 |] in
  Alcotest.(check (array int)) "clamped into first bin" [| 1; 0 |] h.Stats.counts

let test_stats_gini_even () =
  checkf "even spread" 0. (Stats.gini [| 1.; 1.; 1.; 1. |]);
  checkf "empty" 0. (Stats.gini [||]);
  checkf "all zero" 0. (Stats.gini [| 0.; 0. |])

let test_stats_gini_concentrated () =
  (* All mass on one of n elements: G = (n-1)/n. *)
  checkf "one of four" 0.75 (Stats.gini [| 0.; 0.; 0.; 8. |]);
  Alcotest.(check bool) "monotone in skew" true
    (Stats.gini [| 1.; 9. |] > Stats.gini [| 4.; 6. |])

let test_stats_gini_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Stats.gini: negative value")
    (fun () -> ignore (Stats.gini [| 1.; -1. |]))

let test_stats_weighted_mean () =
  checkf "weighted" 3.
    (Stats.weighted_mean ~values:[| 1.; 5. |] ~weights:[| 1.; 1. |]);
  checkf "weighted skewed" 5.
    (Stats.weighted_mean ~values:[| 1.; 5. |] ~weights:[| 0.; 2. |])

let prop_percentile_within_range =
  QCheck.Test.make ~name:"percentile lies between min and max" ~count:300
    QCheck.(pair (list_of_size Gen.(int_range 1 40) (float_range (-100.) 100.))
              (float_range 0. 100.))
    (fun (l, p) ->
      let a = Array.of_list l in
      let v = Stats.percentile a p in
      let lo, hi = Stats.min_max a in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_histogram_conserves_samples =
  QCheck.Test.make ~name:"histogram counts + overflow = samples" ~count:300
    QCheck.(list (float_range (-1.) 3.))
    (fun l ->
      let a = Array.of_list l in
      let h = Stats.histogram ~lo:0. ~hi:2. ~bins:7 a in
      Array.fold_left ( + ) 0 h.Stats.counts + h.Stats.overflow
      = Array.length a)

let prop_int_incl_in_bounds =
  QCheck.Test.make ~name:"int_incl stays within bounds" ~count:300
    QCheck.(triple (int_range 0 10_000) (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let g = Prng.create seed in
      let hi = lo + span in
      let v = Prng.int_incl g lo hi in
      v >= lo && v <= hi)

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pqueue_orders () =
  let q = Pqueue.create () in
  Pqueue.add q 3. "c";
  Pqueue.add q 1. "a";
  Pqueue.add q 2. "b";
  Alcotest.(check (option (pair (float 0.) string))) "a first" (Some (1., "a"))
    (Pqueue.pop_min q);
  Alcotest.(check (option (pair (float 0.) string))) "b second" (Some (2., "b"))
    (Pqueue.pop_min q);
  Alcotest.(check (option (pair (float 0.) string))) "c third" (Some (3., "c"))
    (Pqueue.pop_min q);
  Alcotest.(check (option (pair (float 0.) string))) "empty" None
    (Pqueue.pop_min q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  Pqueue.add q 1. "first";
  Pqueue.add q 1. "second";
  Pqueue.add q 1. "third";
  let pop () = match Pqueue.pop_min q with Some (_, v) -> v | None -> "?" in
  Alcotest.(check string) "fifo 1" "first" (pop ());
  Alcotest.(check string) "fifo 2" "second" (pop ());
  Alcotest.(check string) "fifo 3" "third" (pop ())

let test_pqueue_peek () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Pqueue.add q 5. 50;
  Alcotest.(check (option (pair (float 0.) int))) "peek" (Some (5., 50))
    (Pqueue.peek_min q);
  Alcotest.(check int) "length unchanged" 1 (Pqueue.length q)

let test_pqueue_clear () =
  let q = Pqueue.create () in
  Pqueue.add q 1. 1;
  Pqueue.add q 2. 2;
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains in sorted order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.))
    (fun keys ->
      let q = Pqueue.create () in
      List.iteri (fun i k -> Pqueue.add q k i) keys;
      let rec drain acc =
        match Pqueue.pop_min q with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      let drained = drain [] in
      drained = List.sort compare keys)

(* ------------------------------------------------------------------ *)
(* Bucket_queue *)

let test_bucket_queue_orders () =
  let q = Bucket_queue.create () in
  Bucket_queue.add q ~prio:3 30;
  Bucket_queue.add q ~prio:1 10;
  Bucket_queue.add q ~prio:2 20;
  let popt = Alcotest.(option (pair int int)) in
  Alcotest.check popt "prio 1 first" (Some (1, 10)) (Bucket_queue.pop_min q);
  Alcotest.check popt "prio 2 second" (Some (2, 20)) (Bucket_queue.pop_min q);
  Alcotest.check popt "prio 3 third" (Some (3, 30)) (Bucket_queue.pop_min q);
  Alcotest.check popt "empty" None (Bucket_queue.pop_min q)

let test_bucket_queue_clear_reuse () =
  let q = Bucket_queue.create ~capacity:4 () in
  Bucket_queue.add q ~prio:100 1;
  (* forces growth past the initial capacity *)
  Bucket_queue.add q ~prio:2 2;
  Bucket_queue.clear q;
  Alcotest.(check bool) "cleared" true (Bucket_queue.is_empty q);
  Alcotest.(check int) "length zero" 0 (Bucket_queue.length q);
  Bucket_queue.add q ~prio:5 50;
  Alcotest.(check (option (pair int int))) "usable after clear" (Some (5, 50))
    (Bucket_queue.pop_min q)

let test_bucket_queue_rewinds () =
  (* Adding below the cursor after pops must rewind, not skip. *)
  let q = Bucket_queue.create () in
  Bucket_queue.add q ~prio:10 1;
  ignore (Bucket_queue.pop_min q);
  Bucket_queue.add q ~prio:3 2;
  Alcotest.(check (option (pair int int))) "low prio found" (Some (3, 2))
    (Bucket_queue.pop_min q)

let test_bucket_queue_rejects_negative () =
  let q = Bucket_queue.create () in
  Alcotest.check_raises "negative priority"
    (Invalid_argument "Bucket_queue.add: negative priority") (fun () ->
      Bucket_queue.add q ~prio:(-1) 0)

let prop_bucket_queue_sorts =
  QCheck.Test.make ~name:"bucket queue drains in priority order" ~count:200
    QCheck.(list (int_bound 500))
    (fun prios ->
      let q = Bucket_queue.create () in
      List.iteri (fun i p -> Bucket_queue.add q ~prio:p i) prios;
      let rec drain acc =
        match Bucket_queue.pop_min q with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare prios)

(* ------------------------------------------------------------------ *)
(* Vhash / Vmemo *)

let test_vhash_shift_consistency () =
  let rng = Prng.create 11 in
  for _ = 1 to 50 do
    let n = 1 + Prng.int rng 20 in
    let w = Array.init n (fun _ -> 1 + Prng.int rng 30) in
    let cls = Prng.int rng 2 in
    let h = Vhash.vector ~cls w in
    let arc = Prng.int rng n in
    let before = w.(arc) in
    let after = 1 + Prng.int rng 30 in
    let w' = Array.copy w in
    w'.(arc) <- after;
    Alcotest.(check int) "shift = rehash" (Vhash.vector ~cls w')
      (Vhash.shift h ~cls ~arc ~before ~after)
  done

let test_vhash_class_sensitivity () =
  let w = [| 3; 7; 15 |] in
  Alcotest.(check bool) "classes hash differently" true
    (Vhash.vector ~cls:0 w <> Vhash.vector ~cls:1 w)

let test_vhash_rejects_negative () =
  Alcotest.check_raises "negative cell input"
    (Invalid_argument "Vhash.cell: negative coordinate") (fun () ->
      ignore (Vhash.cell ~cls:0 ~arc:(-1) ~value:1))

let test_vmemo_find_add () =
  let m = Vmemo.create () in
  Alcotest.(check (option int)) "miss" None (Vmemo.find m 42);
  Vmemo.add m 42 1000;
  Alcotest.(check (option int)) "hit" (Some 1000) (Vmemo.find m 42);
  Vmemo.add m 42 2000;
  Alcotest.(check (option int)) "overwrite" (Some 2000) (Vmemo.find m 42);
  Alcotest.(check int) "hits" 2 (Vmemo.hits m);
  Alcotest.(check int) "misses" 1 (Vmemo.misses m);
  Alcotest.(check int) "size" 1 (Vmemo.size m)

let test_vmemo_growth () =
  let m = Vmemo.create ~capacity:16 () in
  for k = 0 to 999 do
    Vmemo.add m (Vhash.cell ~cls:0 ~arc:k ~value:1) k
  done;
  Alcotest.(check int) "all retained" 1000 (Vmemo.size m);
  let ok = ref true in
  for k = 0 to 999 do
    if Vmemo.find m (Vhash.cell ~cls:0 ~arc:k ~value:1) <> Some k then
      ok := false
  done;
  Alcotest.(check bool) "all found after growth" true !ok

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_rows_and_render () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_float_row t [ 3.; 4.5 ];
  Alcotest.(check int) "two rows" 2 (List.length (Table.rows t));
  let s = Table.to_string t in
  Alcotest.(check bool) "title present" true
    (String.length s > 0 && String.sub s 0 1 = "T")

let test_table_arity_check () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_csv_escaping () =
  let t = Table.create ~title:"T" ~columns:[ "x" ] in
  Table.add_row t [ "has,comma" ];
  Table.add_row t [ "has\"quote" ];
  let csv = Table.to_csv t in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check string) "comma quoted" "\"has,comma\"" (List.nth lines 1);
  Alcotest.(check string) "quote doubled" "\"has\"\"quote\"" (List.nth lines 2)

let test_table_float_cell () =
  Alcotest.(check string) "integral" "42" (Table.float_cell 42.);
  Alcotest.(check string) "fractional" "3.142" (Table.float_cell 3.14159)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "dtr_util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int rejects bad bound" `Quick
            test_prng_int_rejects_bad_bound;
          Alcotest.test_case "int_incl" `Quick test_prng_int_incl;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "uniform mean" `Quick test_prng_uniform_mean;
          Alcotest.test_case "split independence" `Quick
            test_prng_split_independent;
          Alcotest.test_case "shuffle is a permutation" `Quick
            test_prng_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick
            test_prng_sample_without_replacement;
          Alcotest.test_case "full sample" `Quick test_prng_sample_full;
          Alcotest.test_case "sample rejects k>n" `Quick test_prng_sample_rejects;
          Alcotest.test_case "choose membership" `Quick test_prng_choose;
        ] );
      ( "dist",
        [
          Alcotest.test_case "heavy tail support" `Quick test_heavy_tail_support;
          Alcotest.test_case "heavy tail bias" `Quick test_heavy_tail_bias;
          Alcotest.test_case "heavy tail uniform at tau=0" `Quick
            test_heavy_tail_uniform_when_tau_zero;
          Alcotest.test_case "heavy tail mass sums to 1" `Quick
            test_heavy_tail_mass_sums_to_one;
          Alcotest.test_case "heavy tail rejects" `Quick test_heavy_tail_rejects;
          Alcotest.test_case "heavy tail mass rank bounds" `Quick
            test_heavy_tail_mass_rejects_rank;
          Alcotest.test_case "weighted choice zeros" `Quick
            test_weighted_choice_respects_zeros;
          Alcotest.test_case "weighted choice proportional" `Quick
            test_weighted_choice_proportional;
          Alcotest.test_case "weighted choice rejects" `Quick
            test_weighted_choice_rejects;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "exponential positive" `Quick
            test_exponential_positive;
          Alcotest.test_case "three level bands" `Quick test_three_level_bands;
          Alcotest.test_case "three level proportions" `Quick
            test_three_level_proportions;
          Alcotest.test_case "three level rejects" `Quick
            test_three_level_rejects_bad_probs;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "variance" `Quick test_stats_variance;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min_max" `Quick test_stats_min_max;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile total order" `Quick
            test_stats_percentile_total_order;
          Alcotest.test_case "median even" `Quick test_stats_median_even;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "histogram clamps low" `Quick
            test_stats_histogram_clamps_low;
          Alcotest.test_case "weighted mean" `Quick test_stats_weighted_mean;
          Alcotest.test_case "gini even" `Quick test_stats_gini_even;
          Alcotest.test_case "gini concentrated" `Quick
            test_stats_gini_concentrated;
          Alcotest.test_case "gini rejects negative" `Quick
            test_stats_gini_rejects_negative;
          qc prop_percentile_within_range;
          qc prop_histogram_conserves_samples;
          qc prop_int_incl_in_bounds;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "orders" `Quick test_pqueue_orders;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "peek" `Quick test_pqueue_peek;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          qc prop_pqueue_sorts;
        ] );
      ( "bucket_queue",
        [
          Alcotest.test_case "orders" `Quick test_bucket_queue_orders;
          Alcotest.test_case "clear and reuse" `Quick
            test_bucket_queue_clear_reuse;
          Alcotest.test_case "rewinds below cursor" `Quick
            test_bucket_queue_rewinds;
          Alcotest.test_case "rejects negative priority" `Quick
            test_bucket_queue_rejects_negative;
          qc prop_bucket_queue_sorts;
        ] );
      ( "vhash",
        [
          Alcotest.test_case "shift consistency" `Quick
            test_vhash_shift_consistency;
          Alcotest.test_case "class sensitivity" `Quick
            test_vhash_class_sensitivity;
          Alcotest.test_case "rejects negative" `Quick test_vhash_rejects_negative;
        ] );
      ( "vmemo",
        [
          Alcotest.test_case "find and add" `Quick test_vmemo_find_add;
          Alcotest.test_case "growth" `Quick test_vmemo_growth;
        ] );
      ( "table",
        [
          Alcotest.test_case "rows and render" `Quick test_table_rows_and_render;
          Alcotest.test_case "arity check" `Quick test_table_arity_check;
          Alcotest.test_case "csv escaping" `Quick test_table_csv_escaping;
          Alcotest.test_case "float cell" `Quick test_table_float_cell;
        ] );
    ]
