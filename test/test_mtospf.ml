(* Tests for Dtr_mtospf: LSAs, the LSDB, flooding convergence, and
   agreement of per-topology routing tables with the global SPF. *)

module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Lsa = Dtr_mtospf.Lsa
module Lsdb = Dtr_mtospf.Lsdb
module Network = Dtr_mtospf.Network
module Classic = Dtr_topology.Classic
module Weights = Dtr_routing.Weights
module Prng = Dtr_util.Prng

let link ?(arc_id = 0) ?(neighbor = 1) weights =
  {
    Lsa.arc_id;
    neighbor;
    capacity = 100.;
    delay = 1.;
    weights = Array.map (fun w -> Some w) weights;
  }

(* ------------------------------------------------------------------ *)
(* Lsa *)

let test_lsa_make () =
  let l = Lsa.make ~origin:0 ~seq:3 ~links:[ link [| 1; 2 |] ] in
  Alcotest.(check int) "origin" 0 l.Lsa.origin;
  Alcotest.(check int) "two topologies" 2 (Lsa.topology_count l)

let test_lsa_rejects () =
  Alcotest.check_raises "negative seq"
    (Invalid_argument "Lsa.make: negative sequence number") (fun () ->
      ignore (Lsa.make ~origin:0 ~seq:(-1) ~links:[]));
  Alcotest.check_raises "inconsistent topologies"
    (Invalid_argument "Lsa.make: inconsistent topology counts") (fun () ->
      ignore
        (Lsa.make ~origin:0 ~seq:0
           ~links:[ link [| 1; 2 |]; link ~arc_id:1 [| 1 |] ]))

let test_lsa_newer () =
  let a = Lsa.make ~origin:0 ~seq:2 ~links:[ link [| 1 |] ] in
  let b = Lsa.make ~origin:0 ~seq:1 ~links:[ link [| 1 |] ] in
  Alcotest.(check bool) "a newer" true (Lsa.newer a b);
  Alcotest.(check bool) "b not newer" false (Lsa.newer b a);
  let c = Lsa.make ~origin:1 ~seq:5 ~links:[ link [| 1 |] ] in
  Alcotest.check_raises "different origins"
    (Invalid_argument "Lsa.newer: different origins") (fun () ->
      ignore (Lsa.newer a c))

(* ------------------------------------------------------------------ *)
(* Lsdb *)

let test_lsdb_install_order () =
  let db = Lsdb.create () in
  let old_lsa = Lsa.make ~origin:0 ~seq:1 ~links:[ link [| 1 |] ] in
  let new_lsa = Lsa.make ~origin:0 ~seq:2 ~links:[ link [| 2 |] ] in
  Alcotest.(check bool) "first install" true (Lsdb.install db old_lsa = Lsdb.Installed);
  Alcotest.(check bool) "newer replaces" true (Lsdb.install db new_lsa = Lsdb.Installed);
  Alcotest.(check bool) "older ignored" true (Lsdb.install db old_lsa = Lsdb.Ignored);
  Alcotest.(check bool) "same seq ignored" true (Lsdb.install db new_lsa = Lsdb.Ignored);
  match Lsdb.find db 0 with
  | Some l -> Alcotest.(check int) "kept newest" 2 l.Lsa.seq
  | None -> Alcotest.fail "missing LSA"

let test_lsdb_origins_and_equal () =
  let a = Lsdb.create () and b = Lsdb.create () in
  let l0 = Lsa.make ~origin:0 ~seq:1 ~links:[ link [| 1 |] ] in
  let l1 = Lsa.make ~origin:1 ~seq:1 ~links:[ link [| 1 |] ] in
  ignore (Lsdb.install a l0);
  ignore (Lsdb.install a l1);
  ignore (Lsdb.install b l0);
  Alcotest.(check (list int)) "origins sorted" [ 0; 1 ] (Lsdb.origins a);
  Alcotest.(check bool) "different dbs" false (Lsdb.equal a b);
  ignore (Lsdb.install b l1);
  Alcotest.(check bool) "equal now" true (Lsdb.equal a b);
  Alcotest.(check int) "size" 2 (Lsdb.size a)

(* ------------------------------------------------------------------ *)
(* Network *)

let ring_net ?(n = 6) ?(topos = 2) () =
  let g = Classic.ring ~capacity:100. ~delay:1. n in
  let rng = Prng.create 7 in
  let weight_sets =
    Array.init topos (fun _ -> Weights.random rng g)
  in
  (g, weight_sets, Network.create g ~weight_sets)

let test_network_flood_converges () =
  let _, _, net = ring_net () in
  Alcotest.(check bool) "not converged before flood" false (Network.converged net);
  let stats = Network.flood net in
  Alcotest.(check bool) "converged" true (Network.converged net);
  Alcotest.(check bool) "messages flowed" true (stats.Network.messages > 0);
  (* On a 6-ring, news must travel ~n/2 hops. *)
  Alcotest.(check bool) "multiple rounds" true (stats.Network.rounds >= 3)

let test_network_lsdb_sizes () =
  let _, _, net = ring_net () in
  ignore (Network.flood net);
  Array.iter
    (fun s -> Alcotest.(check int) "every router knows every origin" 6 s)
    (Network.lsdb_sizes net)

let test_network_tables_match_global_spf () =
  let g, weight_sets, net = ring_net () in
  ignore (Network.flood net);
  for topo = 0 to 1 do
    let reference = Spf.all_destinations g ~weights:weight_sets.(topo) in
    for router = 0 to Graph.node_count g - 1 do
      let local = Network.routing_table net ~router ~topology:topo in
      Array.iteri
        (fun dst (dag : Spf.dag) ->
          Alcotest.(check (array int))
            (Printf.sprintf "router %d topo %d dst %d distances" router topo dst)
            reference.(dst).Spf.dist dag.Spf.dist;
          Array.iteri
            (fun v arcs ->
              let sort a =
                let a = Array.copy a in
                Array.sort compare a;
                a
              in
              Alcotest.(check (array int)) "next hops"
                (sort reference.(dst).Spf.next_arcs.(v))
                (sort arcs))
            dag.Spf.next_arcs)
        local
    done
  done

let test_network_set_weight_refloods () =
  let g, weight_sets, net = ring_net () in
  ignore (Network.flood net);
  let stats = Network.set_weight net ~topology:0 ~arc:0 ~weight:30 in
  Alcotest.(check bool) "messages" true (stats.Network.messages > 0);
  Alcotest.(check bool) "converged" true (Network.converged net);
  (* The new weight shows up in the recomputed tables. *)
  let w' = Array.copy weight_sets.(0) in
  w'.(0) <- 30;
  let reference = Spf.all_destinations g ~weights:w' in
  let local = Network.routing_table net ~router:3 ~topology:0 in
  Array.iteri
    (fun dst (dag : Spf.dag) ->
      Alcotest.(check (array int)) "updated distances"
        reference.(dst).Spf.dist dag.Spf.dist)
    local

let test_network_weight_change_isolated_to_topology () =
  let g, weight_sets, net = ring_net () in
  ignore (Network.flood net);
  ignore (Network.set_weight net ~topology:0 ~arc:0 ~weight:30);
  (* Topology 1 still matches its original weights. *)
  let reference = Spf.all_destinations g ~weights:weight_sets.(1) in
  let local = Network.routing_table net ~router:2 ~topology:1 in
  Array.iteri
    (fun dst (dag : Spf.dag) ->
      Alcotest.(check (array int)) "other topology untouched"
        reference.(dst).Spf.dist dag.Spf.dist)
    local

let test_network_exclude_arc () =
  let g, weight_sets, net = ring_net () in
  ignore (Network.flood net);
  let stats = Network.exclude_arc net ~topology:0 ~arc:0 in
  Alcotest.(check bool) "reflooded" true (stats.Network.messages > 0);
  (* Arc 0 never appears as a next hop in topology 0... *)
  let local = Network.routing_table net ~router:0 ~topology:0 in
  Array.iter
    (fun (dag : Spf.dag) ->
      Array.iter
        (fun arcs ->
          Alcotest.(check bool) "excluded arc unused" false (Array.mem 0 arcs))
        dag.Spf.next_arcs)
    local;
  (* ... but can still appear in topology 1. *)
  let w1 = weight_sets.(1) in
  let reference = Spf.all_destinations g ~weights:w1 in
  let local1 = Network.routing_table net ~router:0 ~topology:1 in
  Array.iteri
    (fun dst (dag : Spf.dag) ->
      Alcotest.(check (array int)) "topology 1 intact"
        reference.(dst).Spf.dist dag.Spf.dist)
    local1

let test_network_fail_arc_reconverges () =
  let g, _, net = ring_net ~n:6 () in
  ignore (Network.flood net);
  (* Fail both directions of the link 0 - 1. *)
  let fwd =
    match Graph.find_arc g ~src:0 ~dst:1 with Some id -> id | None -> -1
  in
  let bwd =
    match Graph.find_arc g ~src:1 ~dst:0 with Some id -> id | None -> -1
  in
  ignore (Network.fail_arc net ~arc:fwd);
  ignore (Network.fail_arc net ~arc:bwd);
  Alcotest.(check bool) "converged after failure" true (Network.converged net);
  (* Still a ring minus one link: all destinations reachable the long
     way around. *)
  let local = Network.routing_table net ~router:0 ~topology:0 in
  Array.iteri
    (fun dst (dag : Spf.dag) ->
      if dst <> 0 then
        Alcotest.(check bool) "reachable" true
          (dag.Spf.dist.(0) <> Dtr_graph.Dijkstra.unreachable))
    local;
  (* And the failed arc is not used. *)
  Array.iter
    (fun (dag : Spf.dag) ->
      Array.iter
        (fun arcs ->
          Alcotest.(check bool) "failed arc unused" false (Array.mem fwd arcs))
        dag.Spf.next_arcs)
    local

let test_network_rejects () =
  let _, _, net = ring_net () in
  Alcotest.check_raises "bad topology"
    (Invalid_argument "Mtospf: topology id out of range") (fun () ->
      ignore (Network.set_weight net ~topology:5 ~arc:0 ~weight:1));
  Alcotest.check_raises "bad arc" (Invalid_argument "Mtospf: arc id out of range")
    (fun () -> ignore (Network.fail_arc net ~arc:999));
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Mtospf: weight out of bounds") (fun () ->
      ignore (Network.set_weight net ~topology:0 ~arc:0 ~weight:99))

let test_network_create_rejects () =
  let g = Classic.ring 4 in
  Alcotest.check_raises "no topologies"
    (Invalid_argument "Mtospf.create: need at least one topology") (fun () ->
      ignore (Network.create g ~weight_sets:[||]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Mtospf.create: weight vector length mismatch") (fun () ->
      ignore (Network.create g ~weight_sets:[| [| 1; 2 |] |]))

let test_network_topology_count () =
  let _, _, net = ring_net ~topos:3 () in
  Alcotest.(check int) "three topologies" 3 (Network.topology_count net)

let test_network_routing_table_rejects () =
  let _, _, net = ring_net () in
  ignore (Network.flood net);
  Alcotest.check_raises "bad router"
    (Invalid_argument "Mtospf.routing_table: router out of range") (fun () ->
      ignore (Network.routing_table net ~router:99 ~topology:0));
  Alcotest.check_raises "bad topology"
    (Invalid_argument "Mtospf: topology id out of range") (fun () ->
      ignore (Network.routing_table net ~router:0 ~topology:7))

let test_lsdb_copy_independent () =
  let db = Lsdb.create () in
  ignore (Lsdb.install db (Lsa.make ~origin:0 ~seq:1 ~links:[ link [| 1 |] ]));
  let c = Lsdb.copy db in
  ignore (Lsdb.install db (Lsa.make ~origin:1 ~seq:1 ~links:[ link [| 1 |] ]));
  Alcotest.(check int) "copy unaffected" 1 (Lsdb.size c);
  Alcotest.(check int) "original grew" 2 (Lsdb.size db)

let test_network_set_weight_rejects_failed_arc () =
  let g = Classic.ring ~capacity:100. ~delay:1. 4 in
  let w = Weights.uniform g 10 in
  let net = Network.create g ~weight_sets:[| w |] in
  ignore (Network.flood net);
  ignore (Network.fail_arc net ~arc:0);
  Alcotest.check_raises "failed arc"
    (Invalid_argument "Mtospf.set_weight: arc is down") (fun () ->
      ignore (Network.set_weight net ~topology:0 ~arc:0 ~weight:5))

let test_network_message_complexity_reasonable () =
  (* Flooding cost should be O(n * links): every LSA crosses each
     adjacency a bounded number of times. *)
  let g = Classic.ring ~capacity:100. ~delay:1. 8 in
  let w = Weights.uniform g 10 in
  let net = Network.create g ~weight_sets:[| w |] in
  let stats = Network.flood net in
  let bound = Graph.node_count g * Graph.arc_count g in
  Alcotest.(check bool) "message bound" true (stats.Network.messages <= bound)

let () =
  Alcotest.run "dtr_mtospf"
    [
      ( "lsa",
        [
          Alcotest.test_case "make" `Quick test_lsa_make;
          Alcotest.test_case "rejects" `Quick test_lsa_rejects;
          Alcotest.test_case "newer" `Quick test_lsa_newer;
        ] );
      ( "lsdb",
        [
          Alcotest.test_case "install ordering" `Quick test_lsdb_install_order;
          Alcotest.test_case "origins and equality" `Quick
            test_lsdb_origins_and_equal;
        ] );
      ( "network",
        [
          Alcotest.test_case "flood converges" `Quick test_network_flood_converges;
          Alcotest.test_case "lsdb sizes" `Quick test_network_lsdb_sizes;
          Alcotest.test_case "tables match global SPF" `Quick
            test_network_tables_match_global_spf;
          Alcotest.test_case "set_weight refloods" `Quick
            test_network_set_weight_refloods;
          Alcotest.test_case "weight change isolated to topology" `Quick
            test_network_weight_change_isolated_to_topology;
          Alcotest.test_case "exclude arc" `Quick test_network_exclude_arc;
          Alcotest.test_case "fail arc reconverges" `Quick
            test_network_fail_arc_reconverges;
          Alcotest.test_case "rejects bad operations" `Quick test_network_rejects;
          Alcotest.test_case "create rejects" `Quick test_network_create_rejects;
          Alcotest.test_case "topology count" `Quick test_network_topology_count;
          Alcotest.test_case "message complexity" `Quick
            test_network_message_complexity_reasonable;
          Alcotest.test_case "routing table rejects" `Quick
            test_network_routing_table_rejects;
          Alcotest.test_case "lsdb copy independence" `Quick
            test_lsdb_copy_independent;
          Alcotest.test_case "set_weight rejects failed arc" `Quick
            test_network_set_weight_rejects_failed_arc;
        ] );
    ]
