(* Tests for the metrics subsystem: histogram bucket boundaries,
   disabled-registry no-ops, the determinism contract on counters
   (deterministic snapshots byte-identical across jobs and scan-jobs,
   on both cost models), run manifests, timestamp-free trace sinks,
   and a golden-output check of the inspect report tables. *)

module Metrics = Dtr_util.Metrics
module Prng = Dtr_util.Prng
module Matrix = Dtr_traffic.Matrix
module Objective = Dtr_routing.Objective
module Weights = Dtr_routing.Weights
module Report = Dtr_routing.Report
module Search_config = Dtr_core.Search_config
module Problem = Dtr_core.Problem
module Str_search = Dtr_core.Str_search
module Multistart = Dtr_core.Multistart
module Manifest = Dtr_core.Manifest
module Trace = Dtr_core.Trace
module Scenario = Dtr_experiments.Scenario
module Classic = Dtr_topology.Classic
module Graph = Dtr_graph.Graph

(* Every test that records leaves the registry off and zeroed so test
   order never matters. *)
let with_metrics f =
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    f

let tiny_config =
  {
    Search_config.quick with
    Search_config.n_iters = 15;
    k_iters = 20;
    diversify_after = 8;
  }

let ring_problem ?(model = Objective.Load) ?(scan_jobs = 1) () =
  let g = Classic.ring ~capacity:1.0 ~delay:2.0 6 in
  let th = Matrix.create 6 and tl = Matrix.create 6 in
  Matrix.set th 0 3 0.3;
  Matrix.set th 1 4 0.2;
  Matrix.set tl 0 3 0.4;
  Matrix.set tl 2 5 0.5;
  Matrix.set tl 4 1 0.3;
  ( Problem.create ~graph:g ~th ~tl ~model,
    { tiny_config with Search_config.scan_jobs } )

(* ------------------------------------------------------------------ *)
(* Histogram buckets *)

let test_bucket_boundaries () =
  Alcotest.(check int) "zero has its own bucket" 0 (Metrics.bucket_of 0.);
  Alcotest.(check int) "nan rejected" (-1) (Metrics.bucket_of Float.nan);
  Alcotest.(check int) "negative rejected" (-1) (Metrics.bucket_of (-1.));
  Alcotest.(check int)
    "negative zero is zero" 0
    (Metrics.bucket_of (-0.));
  let s1 = Metrics.bucket_of 1.0 in
  Alcotest.(check (float 0.)) "1.0 bucket upper" 2.0 (Metrics.bucket_upper s1);
  Alcotest.(check int) "1.5 shares 1.0's bucket" s1 (Metrics.bucket_of 1.5);
  Alcotest.(check int)
    "2.0 starts the next bucket" (s1 + 1)
    (Metrics.bucket_of 2.0);
  Alcotest.(check int)
    "0.5 is one bucket below" (s1 - 1)
    (Metrics.bucket_of 0.5);
  (* The smallest subnormal clamps into the lowest nonzero bucket... *)
  Alcotest.(check int)
    "subnormal clamps low" 1
    (Metrics.bucket_of (Float.ldexp 1. (-1074)));
  (* ...and max_float / infinity into the highest. *)
  let top = Metrics.bucket_of Float.max_float in
  Alcotest.(check int) "infinity lands with max_float" top
    (Metrics.bucket_of Float.infinity);
  Alcotest.(check bool) "max_float above 2.0" true (top > Metrics.bucket_of 2.0)

let test_histogram_observe () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram ~help:"test histogram" "dtr_test_hist" in
  List.iter (Metrics.observe h) [ 0.; 1.0; 1.5; Float.nan; -3.; Float.max_float ];
  let counts, rejected = Metrics.histogram_counts h in
  Alcotest.(check int) "nan and negative rejected" 2 rejected;
  Alcotest.(check int) "zero bucket" 1 counts.(0);
  Alcotest.(check int) "1.0 and 1.5 together" 2 counts.(Metrics.bucket_of 1.0);
  Alcotest.(check int)
    "max_float bucket" 1
    counts.(Metrics.bucket_of Float.max_float);
  Alcotest.(check int)
    "total observations" 4
    (Array.fold_left ( + ) 0 counts)

(* ------------------------------------------------------------------ *)
(* Disabled registry *)

let test_disabled_noop () =
  Metrics.set_enabled false;
  let c = Metrics.counter ~help:"test counter" "dtr_test_noop_counter" in
  let h = Metrics.histogram ~help:"test histogram" "dtr_test_noop_hist" in
  Metrics.add c 5;
  Metrics.incr_counter c;
  Metrics.observe h 1.0;
  Metrics.observe h Float.nan;
  Metrics.record "test/path" 1.0;
  let inside = Metrics.span "test" (fun () -> 41 + 1) in
  Alcotest.(check int) "span passes the result through" 42 inside;
  Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
  let counts, rejected = Metrics.histogram_counts h in
  Alcotest.(check int) "histogram untouched" 0 (Array.fold_left ( + ) 0 counts);
  Alcotest.(check int) "rejections untouched" 0 rejected

(* ------------------------------------------------------------------ *)
(* Determinism: byte-identical snapshots across scan-jobs and jobs *)

let str_snapshot ~model ~scan_jobs =
  with_metrics @@ fun () ->
  let problem, cfg = ring_problem ~model ~scan_jobs () in
  ignore (Str_search.run (Prng.create 5) cfg problem);
  Metrics.deterministic_snapshot ()

let test_scan_jobs_invariance_load () =
  Alcotest.(check string)
    "load model: scan-jobs 1 = 4"
    (str_snapshot ~model:Objective.Load ~scan_jobs:1)
    (str_snapshot ~model:Objective.Load ~scan_jobs:4)

let test_scan_jobs_invariance_sla () =
  let model = Objective.Sla Dtr_cost.Sla.default in
  Alcotest.(check string)
    "sla model: scan-jobs 1 = 4"
    (str_snapshot ~model ~scan_jobs:1)
    (str_snapshot ~model ~scan_jobs:4)

let multistart_snapshot ~jobs =
  with_metrics @@ fun () ->
  let problem, cfg = ring_problem () in
  ignore
    (Multistart.run ~jobs ~restarts:3 ~algo:Multistart.Dtr (Prng.create 7) cfg
       problem);
  Metrics.deterministic_snapshot ()

let test_jobs_invariance () =
  Alcotest.(check string)
    "multistart: jobs 1 = 3" (multistart_snapshot ~jobs:1)
    (multistart_snapshot ~jobs:3)

let test_snapshot_is_prefix () =
  with_metrics @@ fun () ->
  let problem, cfg = ring_problem () in
  ignore (Str_search.run (Prng.create 5) cfg problem);
  let full = Metrics.to_prometheus () in
  let snap = Metrics.deterministic_snapshot () in
  Alcotest.(check bool)
    "snapshot is a prefix of the full exposition" true
    (String.length snap < String.length full
    && String.sub full 0 (String.length snap) = snap);
  Alcotest.(check bool)
    "snapshot stops before the marker" false
    (let re = Metrics.nondet_marker in
     let rec contains i =
       i + String.length re <= String.length snap
       && (String.sub snap i (String.length re) = re || contains (i + 1))
     in
     contains 0)

(* ------------------------------------------------------------------ *)
(* Manifest *)

let test_topology_digest () =
  let arcs =
    Graph.add_symmetric ~capacity:10. ~delay:1. 0 1
      (Graph.add_symmetric ~capacity:20. ~delay:2. 1 2 [])
  in
  let g = Graph.build ~n:3 arcs in
  let g' = Graph.build ~n:3 arcs in
  Alcotest.(check string)
    "equal graphs digest equal" (Manifest.topology_digest g)
    (Manifest.topology_digest g');
  let bumped =
    Graph.build ~n:3
      (Graph.add_symmetric ~capacity:10. ~delay:1. 0 1
         (Graph.add_symmetric ~capacity:20.5 ~delay:2. 1 2 []))
  in
  Alcotest.(check bool)
    "capacity change changes the digest" false
    (Manifest.topology_digest g = Manifest.topology_digest bumped);
  Alcotest.(check int)
    "digest is 16 hex chars" 16
    (String.length (Manifest.topology_digest g))

let test_manifest_json () =
  let g = Classic.ring ~capacity:1.0 ~delay:2.0 6 in
  let json =
    Manifest.to_json ~seed:3 ~jobs:2 ~model:"load" ~topology:"ring"
      ~config:Search_config.quick ~graph:g ()
  in
  let has needle =
    let n = String.length needle and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("manifest contains " ^ needle) true (has needle))
    [
      "\"tool\":\"dtr\"";
      "\"seed\":3";
      "\"jobs\":2";
      "\"topology\":\"ring\"";
      "\"topology_digest\":";
      "\"n_iters\":250";
      "\"scan_probability\":";
      "\"ocaml\":";
    ];
  Alcotest.(check bool)
    "manifest is deterministic" true
    (String.equal json
       (Manifest.to_json ~seed:3 ~jobs:2 ~model:"load" ~topology:"ring"
          ~config:Search_config.quick ~graph:g ()))

(* ------------------------------------------------------------------ *)
(* Timestamp-free trace sinks *)

let test_trace_no_timestamps () =
  let ring = Trace.ring ~timestamps:false () in
  let problem, cfg = ring_problem () in
  ignore (Str_search.run ~trace:ring (Prng.create 5) cfg problem);
  let evs = Trace.events ring in
  Alcotest.(check bool) "events were recorded" true (List.length evs > 0);
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check (float 0.)) "t_us zeroed" 0. e.Trace.time_us)
    evs;
  (* The default sink still stamps. *)
  let stamped = Trace.ring () in
  ignore (Str_search.run ~trace:stamped (Prng.create 5) cfg problem);
  Alcotest.(check bool)
    "stamped sink has nonzero timestamps" true
    (List.exists
       (fun (e : Trace.event) -> e.Trace.time_us > 0.)
       (Trace.events stamped))

(* ------------------------------------------------------------------ *)
(* Inspect report tables: golden output on Abilene *)

let test_inspect_golden_abilene () =
  let inst =
    Scenario.make
      {
        Scenario.topology = Scenario.Abilene;
        fraction = 0.30;
        hp = Scenario.Random_density 0.10;
        seed = 1;
      }
  in
  let inst = Scenario.scale_to_utilization inst ~target:0.6 in
  let g = inst.Scenario.graph in
  let wh = Weights.uniform g 15 and wl = Weights.uniform g 14 in
  let r =
    Objective.evaluate (Objective.Sla Dtr_cost.Sla.default) g ~wh ~wl
      ~th:inst.Scenario.th ~tl:inst.Scenario.tl
  in
  let e = r.Objective.eval in
  let buf = Buffer.create 1024 in
  let add t =
    Buffer.add_string buf (Dtr_util.Table.to_string t);
    Buffer.add_char buf '\n'
  in
  add (Report.summary_table ?sla:r.Objective.sla e);
  add (Report.utilization_percentiles_table e);
  add (Report.top_phi_table ~top:3 e);
  (match r.Objective.sla with
  | Some sla ->
      add
        (Report.per_pair_delay_table ~top:3
           ~node_name:Dtr_topology.Abilene.city_name sla Dtr_cost.Sla.default)
  | None -> Alcotest.fail "sla model produced no sla view");
  let golden =
    let ic = open_in "inspect_abilene.golden" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Alcotest.(check string) "inspect tables match golden" golden
    (Buffer.contents buf)

let () =
  Alcotest.run "metrics"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "observe and count" `Quick test_histogram_observe;
        ] );
      ( "registry",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "snapshot is marker-bounded prefix" `Quick
            test_snapshot_is_prefix;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "counters scan-jobs invariant (load)" `Slow
            test_scan_jobs_invariance_load;
          Alcotest.test_case "counters scan-jobs invariant (sla)" `Slow
            test_scan_jobs_invariance_sla;
          Alcotest.test_case "counters jobs invariant (multistart)" `Slow
            test_jobs_invariance;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "topology digest" `Quick test_topology_digest;
          Alcotest.test_case "manifest json" `Quick test_manifest_json;
        ] );
      ( "trace",
        [
          Alcotest.test_case "timestamp-free sink" `Quick
            test_trace_no_timestamps;
        ] );
      ( "inspect",
        [
          Alcotest.test_case "golden output on abilene" `Quick
            test_inspect_golden_abilene;
        ] );
    ]
