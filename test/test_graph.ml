(* Tests for Dtr_graph: Graph construction, Dijkstra (with a
   Bellman–Ford oracle property), and the ECMP SPF DAG. *)

module Graph = Dtr_graph.Graph
module Dijkstra = Dtr_graph.Dijkstra
module Spf = Dtr_graph.Spf
module Prng = Dtr_util.Prng
module Classic = Dtr_topology.Classic

let arc src dst = { Graph.src; dst; capacity = 1.; delay = 1. }

let diamond () =
  (* 0 -> 1 -> 3 and 0 -> 2 -> 3, plus direct 0 -> 3. *)
  Graph.build ~n:4 [ arc 0 1; arc 1 3; arc 0 2; arc 2 3; arc 0 3 ]

(* ------------------------------------------------------------------ *)
(* Graph *)

let test_build_counts () =
  let g = diamond () in
  Alcotest.(check int) "nodes" 4 (Graph.node_count g);
  Alcotest.(check int) "arcs" 5 (Graph.arc_count g)

let test_build_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.build: self-loop")
    (fun () -> ignore (Graph.build ~n:2 [ arc 1 1 ]))

let test_build_rejects_out_of_range () =
  Alcotest.check_raises "bad dst"
    (Invalid_argument "Graph.build: dst out of range") (fun () ->
      ignore (Graph.build ~n:2 [ arc 0 5 ]))

let test_build_rejects_bad_capacity () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Graph.build: non-positive capacity") (fun () ->
      ignore
        (Graph.build ~n:2 [ { Graph.src = 0; dst = 1; capacity = 0.; delay = 1. } ]))

let test_adjacency () =
  let g = diamond () in
  Alcotest.(check int) "out degree of 0" 3 (Graph.out_degree g 0);
  Alcotest.(check int) "in degree of 3" 3 (Graph.in_degree g 3);
  Alcotest.(check int) "out degree of 3" 0 (Graph.out_degree g 3);
  let out0 = Graph.out_arcs g 0 in
  Alcotest.(check bool) "arc ids valid" true
    (Array.for_all (fun id -> (Graph.arc g id).Graph.src = 0) out0)

let test_find_arc () =
  let g = diamond () in
  (match Graph.find_arc g ~src:0 ~dst:3 with
  | Some id ->
      let a = Graph.arc g id in
      Alcotest.(check int) "src" 0 a.Graph.src;
      Alcotest.(check int) "dst" 3 a.Graph.dst
  | None -> Alcotest.fail "expected arc 0 -> 3");
  Alcotest.(check bool) "absent arc" true (Graph.find_arc g ~src:3 ~dst:0 = None)

let test_strongly_connected () =
  Alcotest.(check bool) "diamond is not" false
    (Graph.is_strongly_connected (diamond ()));
  Alcotest.(check bool) "triangle is" true
    (Graph.is_strongly_connected (Classic.triangle ()))

let test_reverse () =
  let g = diamond () in
  let r = Graph.reverse g in
  Alcotest.(check int) "same arc count" (Graph.arc_count g) (Graph.arc_count r);
  let a = Graph.arc g 0 and b = Graph.arc r 0 in
  Alcotest.(check int) "flipped src" a.Graph.dst b.Graph.src;
  Alcotest.(check int) "flipped dst" a.Graph.src b.Graph.dst

let test_add_symmetric () =
  let arcs = Graph.add_symmetric ~capacity:2. ~delay:3. 0 1 [] in
  Alcotest.(check int) "two arcs" 2 (List.length arcs);
  let g = Graph.build ~n:2 arcs in
  Alcotest.(check bool) "connected" true (Graph.is_strongly_connected g)

let test_undirected_link_pairs () =
  let g = Classic.triangle () in
  let pairs = Graph.undirected_link_pairs g in
  Alcotest.(check int) "three physical links" 3 (Array.length pairs);
  Array.iter
    (fun (a, b) ->
      let x = Graph.arc g a and y = Graph.arc g b in
      Alcotest.(check bool) "twins" true
        (x.Graph.src = y.Graph.dst && x.Graph.dst = y.Graph.src))
    pairs

let test_undirected_link_pairs_lone_arc () =
  let g = Graph.build ~n:2 [ arc 0 1 ] in
  Alcotest.(check (array (pair int int))) "lone arc pairs with itself"
    [| (0, 0) |]
    (Graph.undirected_link_pairs g)

let test_capacities_delays () =
  let g = Graph.build ~n:2 [ { Graph.src = 0; dst = 1; capacity = 7.; delay = 9. } ] in
  Alcotest.(check (array (float 0.))) "capacities" [| 7. |] (Graph.capacities g);
  Alcotest.(check (array (float 0.))) "delays" [| 9. |] (Graph.delays g)

let test_to_dot_mentions_arcs () =
  let g = Classic.triangle () in
  let dot = Graph.to_dot g in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 8 && String.sub dot 0 8 = "digraph ")

(* ------------------------------------------------------------------ *)
(* Dijkstra *)

let test_dijkstra_line () =
  let g = Classic.line 4 in
  let w = Array.make (Graph.arc_count g) 1 in
  let d = Dijkstra.distances_to g ~weights:w ~dst:3 in
  Alcotest.(check (array int)) "distances" [| 3; 2; 1; 0 |] d

let test_dijkstra_weighted () =
  let g = diamond () in
  (* weights: 0->1:1, 1->3:1, 0->2:5, 2->3:5, 0->3:3 *)
  let w = [| 1; 1; 5; 5; 3 |] in
  let d = Dijkstra.distances_to g ~weights:w ~dst:3 in
  Alcotest.(check int) "via 1" 2 d.(0);
  Alcotest.(check int) "node 1" 1 d.(1);
  Alcotest.(check int) "node 2" 5 d.(2)

let test_dijkstra_unreachable () =
  let g = Graph.build ~n:3 [ arc 0 1 ] in
  let d = Dijkstra.distances_to g ~weights:[| 1 |] ~dst:1 in
  Alcotest.(check int) "reachable" 1 d.(0);
  Alcotest.(check int) "unreachable" Dijkstra.unreachable d.(2)

let test_dijkstra_from () =
  let g = Classic.line 4 in
  let w = Array.make (Graph.arc_count g) 2 in
  let d = Dijkstra.distances_from g ~weights:w ~src:0 in
  Alcotest.(check (array int)) "from 0" [| 0; 2; 4; 6 |] d

let test_dijkstra_rejects_bad_weights () =
  let g = Classic.line 2 in
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Dijkstra: weights must be positive") (fun () ->
      ignore (Dijkstra.distances_to g ~weights:[| 0; 1 |] ~dst:0));
  Alcotest.check_raises "length"
    (Invalid_argument "Dijkstra: weights length mismatch") (fun () ->
      ignore (Dijkstra.distances_to g ~weights:[| 1 |] ~dst:0))

(* Random graph generator for property tests. *)
let random_graph_gen =
  QCheck.Gen.(
    let* n = int_range 2 12 in
    let* extra = int_range 0 30 in
    let* seed = int_range 0 1_000_000 in
    return (n, extra, seed))

let build_random (n, extra, seed) =
  let rng = Prng.create seed in
  let arcs = ref [] in
  (* random tree then random extra arcs; weights random in [1, 30] *)
  for v = 1 to n - 1 do
    let u = Prng.int rng v in
    arcs := arc u v :: arc v u :: !arcs
  done;
  for _ = 1 to extra do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v then arcs := arc u v :: !arcs
  done;
  let g = Graph.build ~n !arcs in
  let w = Array.init (Graph.arc_count g) (fun _ -> 1 + Prng.int rng 30) in
  (g, w)

let prop_dijkstra_matches_bellman_ford =
  QCheck.Test.make ~name:"dijkstra = bellman-ford on random graphs" ~count:150
    (QCheck.make random_graph_gen) (fun params ->
      let g, w = build_random params in
      let ok = ref true in
      for dst = 0 to Graph.node_count g - 1 do
        let a = Dijkstra.distances_to g ~weights:w ~dst in
        let b = Dijkstra.bellman_ford_to g ~weights:w ~dst in
        if a <> b then ok := false
      done;
      !ok)

(* The bucket-queue kernel ([distances_to]) against the retained
   binary-heap reference ([distances_to_heap]): identical arrays on
   every random graph and destination. *)
let prop_dijkstra_bucket_matches_heap =
  QCheck.Test.make ~name:"bucket-queue dijkstra = heap dijkstra" ~count:150
    (QCheck.make random_graph_gen) (fun params ->
      let g, w = build_random params in
      let ok = ref true in
      for dst = 0 to Graph.node_count g - 1 do
        let a = Dijkstra.distances_to g ~weights:w ~dst in
        let b = Dijkstra.distances_to_heap g ~weights:w ~dst in
        if a <> b then ok := false
      done;
      !ok)

(* Edge cases for the bucket queue: maximal weights (largest bucket
   spans), disconnected nodes (queue drains without settling them),
   and a single-node graph (empty weight array, no arcs at all). *)
let test_dijkstra_all_max_weights () =
  let g = Classic.ring 6 in
  let w = Array.make (Graph.arc_count g) 30 in
  for dst = 0 to Graph.node_count g - 1 do
    let a = Dijkstra.distances_to g ~weights:w ~dst in
    let b = Dijkstra.distances_to_heap g ~weights:w ~dst in
    let c = Dijkstra.bellman_ford_to g ~weights:w ~dst in
    Alcotest.(check (array int)) "bucket = heap at max weights" b a;
    Alcotest.(check (array int)) "bucket = bellman-ford at max weights" c a
  done

let test_dijkstra_disconnected () =
  (* Two components: {0,1} linked, {2,3} linked, nothing between. *)
  let g = Graph.build ~n:4 [ arc 0 1; arc 1 0; arc 2 3; arc 3 2 ] in
  let w = [| 7; 7; 7; 7 |] in
  let a = Dijkstra.distances_to g ~weights:w ~dst:0 in
  let b = Dijkstra.distances_to_heap g ~weights:w ~dst:0 in
  Alcotest.(check (array int)) "bucket = heap on disconnected" b a;
  Alcotest.(check int) "own component" 7 a.(1);
  Alcotest.(check int) "other component unreachable" Dijkstra.unreachable a.(2);
  Alcotest.(check int) "other component unreachable" Dijkstra.unreachable a.(3)

let test_dijkstra_single_node () =
  let g = Graph.build ~n:1 [] in
  let a = Dijkstra.distances_to g ~weights:[||] ~dst:0 in
  Alcotest.(check (array int)) "single node" [| 0 |] a;
  Alcotest.(check (array int)) "single node (heap)" [| 0 |]
    (Dijkstra.distances_to_heap g ~weights:[||] ~dst:0)

(* Spf.all_destinations validates once up front (hoisted out of the
   per-destination loop) — it must still reject bad weight arrays. *)
let test_spf_all_destinations_rejects_bad_weights () =
  let g = Classic.line 2 in
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Dijkstra: weights must be positive") (fun () ->
      ignore (Spf.all_destinations g ~weights:[| 0; 1 |]));
  Alcotest.check_raises "length"
    (Invalid_argument "Dijkstra: weights length mismatch") (fun () ->
      ignore (Spf.all_destinations g ~weights:[| 1 |]))

let prop_dijkstra_triangle_inequality =
  QCheck.Test.make ~name:"distance never exceeds any arc relaxation" ~count:100
    (QCheck.make random_graph_gen) (fun params ->
      let g, w = build_random params in
      let ok = ref true in
      for dst = 0 to Graph.node_count g - 1 do
        let d = Dijkstra.distances_to g ~weights:w ~dst in
        for id = 0 to Graph.arc_count g - 1 do
          let a = Graph.arc g id in
          if d.(a.Graph.dst) <> Dijkstra.unreachable then
            if d.(a.Graph.src) > w.(id) + d.(a.Graph.dst) then ok := false
        done
      done;
      !ok)

let prop_undirected_pairs_on_symmetric_graphs =
  QCheck.Test.make
    ~name:"symmetric graphs pair every arc with its reverse twin" ~count:80
    QCheck.(pair (int_range 3 12) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Prng.create seed in
      let arcs = ref [] in
      for v = 1 to n - 1 do
        let u = Prng.int rng v in
        arcs := Graph.add_symmetric ~capacity:1. ~delay:1. u v !arcs
      done;
      let g = Graph.build ~n !arcs in
      let pairs = Graph.undirected_link_pairs g in
      Array.length pairs = Graph.arc_count g / 2
      && Array.for_all (fun (a, b) -> a <> b) pairs)

(* ------------------------------------------------------------------ *)
(* Spf *)

let test_spf_ecmp_next_arcs () =
  let g = diamond () in
  (* Make both two-hop paths and the direct path equal cost 2. *)
  let w = [| 1; 1; 1; 1; 2 |] in
  let dag = Spf.to_destination g ~weights:w ~dst:3 in
  Alcotest.(check int) "dist from 0" 2 dag.Spf.dist.(0);
  Alcotest.(check int) "three ECMP next hops at 0" 3
    (Array.length dag.Spf.next_arcs.(0))

let test_spf_no_next_at_dst () =
  let g = Classic.triangle () in
  let w = Array.make (Graph.arc_count g) 1 in
  let dag = Spf.to_destination g ~weights:w ~dst:1 in
  Alcotest.(check int) "dst has no next arcs" 0
    (Array.length dag.Spf.next_arcs.(1))

let test_spf_order_desc_properties () =
  let g = Classic.ring 6 in
  let w = Array.make (Graph.arc_count g) 1 in
  let dag = Spf.to_destination g ~weights:w ~dst:0 in
  Alcotest.(check int) "order excludes dst" 5 (Array.length dag.Spf.order_desc);
  let prev = ref max_int in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "non-increasing distance" true
        (dag.Spf.dist.(v) <= !prev);
      prev := dag.Spf.dist.(v))
    dag.Spf.order_desc

let test_spf_unreachable_empty () =
  let g = Graph.build ~n:3 [ arc 0 1 ] in
  let dag = Spf.to_destination g ~weights:[| 1 |] ~dst:1 in
  Alcotest.(check int) "unreachable node has no next arcs" 0
    (Array.length dag.Spf.next_arcs.(2));
  Alcotest.(check int) "order only includes reachable" 1
    (Array.length dag.Spf.order_desc)

let test_spf_all_destinations () =
  let g = Classic.triangle () in
  let w = Array.make (Graph.arc_count g) 1 in
  let dags = Spf.all_destinations g ~weights:w in
  Alcotest.(check int) "one dag per node" 3 (Array.length dags);
  Array.iteri (fun i dag -> Alcotest.(check int) "dst" i dag.Spf.dst) dags

let test_spf_path_count_diamond () =
  let g = diamond () in
  let w = [| 1; 1; 1; 1; 2 |] in
  let dag = Spf.to_destination g ~weights:w ~dst:3 in
  Alcotest.(check (float 0.)) "three shortest paths" 3.
    (Spf.path_count g dag ~src:0)

let test_spf_first_path () =
  let g = Classic.line 4 in
  let w = Array.make (Graph.arc_count g) 1 in
  let dag = Spf.to_destination g ~weights:w ~dst:3 in
  let path = Spf.first_path g dag ~src:0 in
  Alcotest.(check int) "three hops" 3 (List.length path);
  let last = List.nth path 2 in
  Alcotest.(check int) "ends at dst" 3 (Graph.arc g last).Graph.dst

(* Brute-force path enumeration over the DAG, as an oracle for
   path_count. *)
let count_paths_brute g dag src =
  let rec go v =
    if v = dag.Spf.dst then 1.
    else
      Array.fold_left
        (fun acc id -> acc +. go (Graph.arc g id).Graph.dst)
        0. dag.Spf.next_arcs.(v)
  in
  if dag.Spf.dist.(src) = Dijkstra.unreachable then 0. else go src

let prop_spf_path_count_matches_enumeration =
  QCheck.Test.make ~name:"path_count equals brute-force enumeration" ~count:60
    (QCheck.make random_graph_gen) (fun params ->
      let g, w = build_random params in
      let ok = ref true in
      for dst = 0 to Graph.node_count g - 1 do
        let dag = Spf.to_destination g ~weights:w ~dst in
        for src = 0 to Graph.node_count g - 1 do
          if
            Float.abs
              (Spf.path_count g dag ~src -. count_paths_brute g dag src)
            > 1e-9
          then ok := false
        done
      done;
      !ok)

let test_spf_first_path_unreachable () =
  let g = Graph.build ~n:3 [ arc 0 1 ] in
  let dag = Spf.to_destination g ~weights:[| 1 |] ~dst:1 in
  Alcotest.check_raises "unreachable"
    (Invalid_argument "Spf.first_path: unreachable") (fun () ->
      ignore (Spf.first_path g dag ~src:2))

let prop_spf_next_arcs_decrease_distance =
  QCheck.Test.make
    ~name:"every ECMP next hop strictly decreases remaining distance" ~count:100
    (QCheck.make random_graph_gen) (fun params ->
      let g, w = build_random params in
      let ok = ref true in
      for dst = 0 to Graph.node_count g - 1 do
        let dag = Spf.to_destination g ~weights:w ~dst in
        Array.iteri
          (fun v arcs ->
            Array.iter
              (fun id ->
                let a = Graph.arc g id in
                if
                  not
                    (dag.Spf.dist.(a.Graph.dst) < dag.Spf.dist.(v)
                    && dag.Spf.dist.(v) = w.(id) + dag.Spf.dist.(a.Graph.dst))
                then ok := false)
              arcs)
          dag.Spf.next_arcs
      done;
      !ok)

let prop_spf_reachable_nodes_have_next_arcs =
  QCheck.Test.make ~name:"reachable non-destination nodes have a next hop"
    ~count:100 (QCheck.make random_graph_gen) (fun params ->
      let g, w = build_random params in
      let ok = ref true in
      for dst = 0 to Graph.node_count g - 1 do
        let dag = Spf.to_destination g ~weights:w ~dst in
        for v = 0 to Graph.node_count g - 1 do
          if v <> dst && dag.Spf.dist.(v) <> Dijkstra.unreachable then
            if Array.length dag.Spf.next_arcs.(v) = 0 then ok := false
        done
      done;
      !ok)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "dtr_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "build counts" `Quick test_build_counts;
          Alcotest.test_case "rejects self-loop" `Quick
            test_build_rejects_self_loop;
          Alcotest.test_case "rejects out of range" `Quick
            test_build_rejects_out_of_range;
          Alcotest.test_case "rejects bad capacity" `Quick
            test_build_rejects_bad_capacity;
          Alcotest.test_case "adjacency" `Quick test_adjacency;
          Alcotest.test_case "find_arc" `Quick test_find_arc;
          Alcotest.test_case "strong connectivity" `Quick test_strongly_connected;
          Alcotest.test_case "reverse" `Quick test_reverse;
          Alcotest.test_case "add_symmetric" `Quick test_add_symmetric;
          Alcotest.test_case "undirected link pairs" `Quick
            test_undirected_link_pairs;
          Alcotest.test_case "lone arc pairs with itself" `Quick
            test_undirected_link_pairs_lone_arc;
          Alcotest.test_case "capacities and delays" `Quick
            test_capacities_delays;
          Alcotest.test_case "to_dot" `Quick test_to_dot_mentions_arcs;
          qc prop_undirected_pairs_on_symmetric_graphs;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "line distances" `Quick test_dijkstra_line;
          Alcotest.test_case "weighted shortest path" `Quick
            test_dijkstra_weighted;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "distances from source" `Quick test_dijkstra_from;
          Alcotest.test_case "rejects bad weights" `Quick
            test_dijkstra_rejects_bad_weights;
          Alcotest.test_case "all max-weight arcs" `Quick
            test_dijkstra_all_max_weights;
          Alcotest.test_case "disconnected components" `Quick
            test_dijkstra_disconnected;
          Alcotest.test_case "single-node graph" `Quick
            test_dijkstra_single_node;
          qc prop_dijkstra_matches_bellman_ford;
          qc prop_dijkstra_bucket_matches_heap;
          qc prop_dijkstra_triangle_inequality;
        ] );
      ( "spf",
        [
          Alcotest.test_case "ECMP next arcs" `Quick test_spf_ecmp_next_arcs;
          Alcotest.test_case "no next arcs at destination" `Quick
            test_spf_no_next_at_dst;
          Alcotest.test_case "order_desc properties" `Quick
            test_spf_order_desc_properties;
          Alcotest.test_case "unreachable handling" `Quick
            test_spf_unreachable_empty;
          Alcotest.test_case "all destinations" `Quick test_spf_all_destinations;
          Alcotest.test_case "all destinations rejects bad weights" `Quick
            test_spf_all_destinations_rejects_bad_weights;
          Alcotest.test_case "path count on diamond" `Quick
            test_spf_path_count_diamond;
          Alcotest.test_case "first path" `Quick test_spf_first_path;
          Alcotest.test_case "first path unreachable" `Quick
            test_spf_first_path_unreachable;
          qc prop_spf_next_arcs_decrease_distance;
          qc prop_spf_reachable_nodes_have_next_arcs;
          qc prop_spf_path_count_matches_enumeration;
        ] );
    ]
