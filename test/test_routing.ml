(* Tests for Dtr_routing: weight vectors, ECMP load distribution (flow
   conservation properties), the delay model, and the two-class
   evaluation with residual capacities. *)

module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Prng = Dtr_util.Prng
module Matrix = Dtr_traffic.Matrix
module Weights = Dtr_routing.Weights
module Loads = Dtr_routing.Loads
module Delay = Dtr_routing.Delay
module Evaluate = Dtr_routing.Evaluate
module Objective = Dtr_routing.Objective
module Classic = Dtr_topology.Classic
module Sla = Dtr_cost.Sla
module Lexico = Dtr_cost.Lexico

let checkf = Alcotest.(check (float 1e-9))

let arc ?(capacity = 1.) ?(delay = 1.) src dst =
  { Graph.src; dst; capacity; delay }

let diamond () =
  Graph.build ~n:4 [ arc 0 1; arc 1 3; arc 0 2; arc 2 3; arc 0 3 ]

(* ------------------------------------------------------------------ *)
(* Weights *)

let test_weights_uniform () =
  let g = Classic.triangle () in
  let w = Weights.uniform g 15 in
  Alcotest.(check int) "length" 6 (Array.length w);
  Array.iter (fun x -> Alcotest.(check int) "value" 15 x) w;
  Alcotest.check_raises "bounds"
    (Invalid_argument "Weights.uniform: weight out of bounds") (fun () ->
      ignore (Weights.uniform g 31))

let test_weights_random_in_bounds () =
  let g = Classic.ring 8 in
  let w = Weights.random (Prng.create 1) g in
  Weights.validate g w;
  Array.iter
    (fun x -> Alcotest.(check bool) "bounds" true (x >= 1 && x <= 30))
    w

let test_weights_validate_rejects () =
  let g = Classic.triangle () in
  Alcotest.check_raises "length"
    (Invalid_argument "Weights.validate: length mismatch") (fun () ->
      Weights.validate g [| 1; 2 |]);
  Alcotest.check_raises "bounds"
    (Invalid_argument "Weights.validate: weight out of bounds") (fun () ->
      Weights.validate g [| 1; 1; 1; 1; 1; 0 |])

let test_weights_inverse_capacity () =
  let g =
    Graph.build ~n:2
      [ arc ~capacity:100. 0 1; arc ~capacity:10. 1 0 ]
  in
  let w = Weights.inverse_capacity g in
  Alcotest.(check int) "fastest link gets 1" 1 w.(0);
  Alcotest.(check int) "slower link gets 10x" 10 w.(1)

let test_weights_perturb_fraction () =
  let g = Classic.ring 20 in
  let w = Weights.uniform g 15 in
  let p = Weights.perturb (Prng.create 2) ~fraction:0.1 w in
  Weights.validate g p;
  let changed = ref 0 in
  Array.iteri (fun i x -> if x <> w.(i) then incr changed) p;
  (* ceil(0.1 * 40) = 4 entries re-drawn; some may redraw the old value. *)
  Alcotest.(check bool) "at most 4 changed" true (!changed <= 4);
  Alcotest.(check int) "original intact" 15 w.(0)

let test_weights_perturb_zero_fraction () =
  let g = Classic.triangle () in
  let w = Weights.uniform g 7 in
  let p = Weights.perturb (Prng.create 3) ~fraction:0. w in
  Alcotest.(check (array int)) "unchanged" w p

let test_weights_step_clamps () =
  let w = [| 29; 2 |] in
  let up = Weights.step w ~arc:0 ~delta:5 in
  Alcotest.(check int) "clamped up" 30 up.(0);
  let down = Weights.step w ~arc:1 ~delta:(-5) in
  Alcotest.(check int) "clamped down" 1 down.(1);
  Alcotest.(check int) "original untouched" 29 w.(0)

(* ------------------------------------------------------------------ *)
(* Loads *)

let single_dest_matrix n entries =
  let m = Matrix.create n in
  List.iter (fun (s, t, v) -> Matrix.set m s t v) entries;
  m

let test_loads_line () =
  let g = Classic.line 3 in
  let w = Weights.uniform g 1 in
  let dags = Spf.all_destinations g ~weights:w in
  let tm = single_dest_matrix 3 [ (0, 2, 4.) ] in
  let loads = Loads.of_matrix g ~dags tm in
  (* Both hops along the line carry the full demand. *)
  let on src dst =
    match Graph.find_arc g ~src ~dst with
    | Some id -> loads.(id)
    | None -> Alcotest.fail "missing arc"
  in
  checkf "hop 1" 4. (on 0 1);
  checkf "hop 2" 4. (on 1 2);
  checkf "reverse idle" 0. (on 1 0)

let test_loads_ecmp_split () =
  let g = diamond () in
  (* Direct path cost 2 equals both 2-hop paths: three next hops at
     node 0, so 1/3 each; each two-hop branch keeps its third. *)
  let w = [| 1; 1; 1; 1; 2 |] in
  let dags = Spf.all_destinations g ~weights:w in
  let tm = single_dest_matrix 4 [ (0, 3, 3.) ] in
  let loads = Loads.of_matrix g ~dags tm in
  checkf "0->1" 1. loads.(0);
  checkf "1->3" 1. loads.(1);
  checkf "0->2" 1. loads.(2);
  checkf "2->3" 1. loads.(3);
  checkf "0->3 direct" 1. loads.(4)

let test_loads_even_split_two_ways () =
  let g = diamond () in
  (* Only the two 2-hop paths are shortest (direct costs 3). *)
  let w = [| 1; 1; 1; 1; 3 |] in
  let dags = Spf.all_destinations g ~weights:w in
  let tm = single_dest_matrix 4 [ (0, 3, 2.) ] in
  let loads = Loads.of_matrix g ~dags tm in
  checkf "0->1" 1. loads.(0);
  checkf "0->2" 1. loads.(2);
  checkf "direct idle" 0. loads.(4)

let test_loads_transit_accumulates () =
  let g = Classic.line 4 in
  let w = Weights.uniform g 1 in
  let dags = Spf.all_destinations g ~weights:w in
  let tm = single_dest_matrix 4 [ (0, 3, 1.); (1, 3, 1.); (2, 3, 1.) ] in
  let loads = Loads.of_matrix g ~dags tm in
  let on src dst =
    match Graph.find_arc g ~src ~dst with
    | Some id -> loads.(id)
    | None -> Alcotest.fail "missing arc"
  in
  checkf "first hop" 1. (on 0 1);
  checkf "second hop" 2. (on 1 2);
  checkf "last hop" 3. (on 2 3)

let test_loads_unroutable_raises () =
  let g = Graph.build ~n:3 [ arc 0 1 ] in
  let dags = Spf.all_destinations g ~weights:[| 1 |] in
  let tm = single_dest_matrix 3 [ (2, 1, 1.) ] in
  Alcotest.check_raises "unroutable"
    (Invalid_argument "Loads.of_matrix: no path 2 -> 1") (fun () ->
      ignore (Loads.of_matrix g ~dags tm))

let test_loads_drop_unroutable () =
  let g = Graph.build ~n:3 [ arc 0 1 ] in
  let dags = Spf.all_destinations g ~weights:[| 1 |] in
  let tm = single_dest_matrix 3 [ (2, 1, 1.); (0, 1, 2.) ] in
  let loads = Loads.of_matrix ~drop_unroutable:true g ~dags tm in
  checkf "routable demand carried" 2. loads.(0)

let test_node_throughflow () =
  let g = Classic.line 3 in
  let w = Weights.uniform g 1 in
  let dag = Spf.to_destination g ~weights:w ~dst:2 in
  let flow = Loads.node_throughflow g ~dag ~demand_to_dst:[| 1.; 2.; 0. |] in
  checkf "origin" 1. flow.(0);
  checkf "transit accumulates" 3. flow.(1)

(* Random connected symmetric graph with random demands, for flow
   conservation properties. *)
let random_case_gen =
  QCheck.Gen.(
    let* n = int_range 3 10 in
    let* seed = int_range 0 1_000_000 in
    return (n, seed))

let build_case (n, seed) =
  let rng = Prng.create seed in
  let arcs = ref [] in
  for v = 1 to n - 1 do
    let u = Prng.int rng v in
    arcs := Graph.add_symmetric ~capacity:10. ~delay:1. u v !arcs
  done;
  for _ = 1 to n do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v && Graph.find_arc (Graph.build ~n !arcs) ~src:u ~dst:v = None then
      arcs := Graph.add_symmetric ~capacity:10. ~delay:1. u v !arcs
  done;
  let g = Graph.build ~n !arcs in
  let w = Array.init (Graph.arc_count g) (fun _ -> 1 + Prng.int rng 8) in
  let tm = Matrix.create n in
  for s = 0 to n - 1 do
    for t = 0 to n - 1 do
      if s <> t && Prng.bool rng then Matrix.set tm s t (Prng.float rng 5.)
    done
  done;
  (g, w, tm)

let prop_flow_conservation_at_destination =
  QCheck.Test.make
    ~name:"per destination, inflow at dst = total demand to dst" ~count:100
    (QCheck.make random_case_gen) (fun params ->
      let g, w, tm = build_case params in
      let dags = Spf.all_destinations g ~weights:w in
      let ok = ref true in
      let n = Graph.node_count g in
      for t = 0 to n - 1 do
        (* Single-destination slice of the demand. *)
        let slice = Matrix.create n in
        let total = ref 0. in
        for s = 0 to n - 1 do
          if s <> t then begin
            let v = Matrix.get tm s t in
            if v > 0. then begin
              Matrix.set slice s t v;
              total := !total +. v
            end
          end
        done;
        let loads = Loads.of_matrix g ~dags slice in
        let inflow = ref 0. in
        Array.iter (fun id -> inflow := !inflow +. loads.(id)) (Graph.in_arcs g t);
        if Float.abs (!inflow -. !total) > 1e-6 then ok := false
      done;
      !ok)

let prop_flow_conservation_at_transit =
  QCheck.Test.make
    ~name:"per destination, transit nodes forward demand + inflow" ~count:100
    (QCheck.make random_case_gen) (fun params ->
      let g, w, tm = build_case params in
      let dags = Spf.all_destinations g ~weights:w in
      let ok = ref true in
      let n = Graph.node_count g in
      for t = 0 to n - 1 do
        let slice = Matrix.create n in
        for s = 0 to n - 1 do
          if s <> t then begin
            let v = Matrix.get tm s t in
            if v > 0. then Matrix.set slice s t v
          end
        done;
        let loads = Loads.of_matrix g ~dags slice in
        for v = 0 to n - 1 do
          if v <> t then begin
            let inflow = ref 0. and outflow = ref 0. in
            Array.iter (fun id -> inflow := !inflow +. loads.(id)) (Graph.in_arcs g v);
            Array.iter (fun id -> outflow := !outflow +. loads.(id)) (Graph.out_arcs g v);
            let demand = Matrix.get slice v t in
            if Float.abs (!inflow +. demand -. !outflow) > 1e-6 then ok := false
          end
        done
      done;
      !ok)

let prop_total_load_equals_demand_times_hops =
  QCheck.Test.make
    ~name:"sum of arc loads = sum over pairs of demand x mean hop count"
    ~count:60 (QCheck.make random_case_gen) (fun params ->
      let g, w, tm = build_case params in
      let dags = Spf.all_destinations g ~weights:w in
      let loads = Loads.of_matrix g ~dags tm in
      let total_load = Array.fold_left ( +. ) 0. loads in
      (* Mean hop count of pair (s,t) under even splitting equals the
         expected delay with unit arc delays. *)
      let unit_delay = Array.make (Graph.arc_count g) 1. in
      let expected = ref 0. in
      Matrix.iter tm (fun s t v ->
          let xi = Delay.expected_to_destination g ~dag:dags.(t) ~arc_delay:unit_delay in
          expected := !expected +. (v *. xi.(s)));
      Float.abs (total_load -. !expected) <= 1e-6 *. Float.max 1. total_load)

let prop_loads_linear_in_demand =
  QCheck.Test.make ~name:"loads are linear in the demand matrix" ~count:60
    (QCheck.make
       QCheck.Gen.(pair random_case_gen (float_range 0.1 5.)))
    (fun (params, factor) ->
      let g, w, tm = build_case params in
      let dags = Spf.all_destinations g ~weights:w in
      let base = Loads.of_matrix g ~dags tm in
      let scaled = Loads.of_matrix g ~dags (Matrix.scale tm factor) in
      let ok = ref true in
      Array.iteri
        (fun i b ->
          if Float.abs (scaled.(i) -. (factor *. b)) > 1e-6 *. Float.max 1. b
          then ok := false)
        base;
      !ok)

let prop_phi_h_independent_of_wl =
  QCheck.Test.make
    ~name:"high-priority cost never depends on low-priority weights" ~count:60
    (QCheck.make QCheck.Gen.(pair random_case_gen (int_range 0 1_000_000)))
    (fun (params, wseed) ->
      let g, wh, tm = build_case params in
      let rng = Prng.create wseed in
      let wl1 = Weights.random rng g and wl2 = Weights.random rng g in
      let e1 = Evaluate.evaluate g ~wh ~wl:wl1 ~th:tm ~tl:tm in
      let e2 = Evaluate.evaluate g ~wh ~wl:wl2 ~th:tm ~tl:tm in
      Float.abs (e1.Evaluate.phi_h -. e2.Evaluate.phi_h) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Delay *)

let test_delay_line_sums () =
  let g = Classic.line 3 in
  let w = Weights.uniform g 1 in
  let dag = Spf.to_destination g ~weights:w ~dst:2 in
  let arc_delay = Array.make (Graph.arc_count g) 2.5 in
  let xi = Delay.expected_to_destination g ~dag ~arc_delay in
  checkf "two hops" 5. xi.(0);
  checkf "one hop" 2.5 xi.(1);
  checkf "zero at dst" 0. xi.(2)

let test_delay_ecmp_average () =
  let g = diamond () in
  let w = [| 1; 1; 1; 1; 2 |] in
  let dag = Spf.to_destination g ~weights:w ~dst:3 in
  (* Give the direct arc delay 6, all others 1: paths cost 2, 2, 6;
     three equally likely next hops at node 0 -> mean = (2+2+6)/3. *)
  let arc_delay = [| 1.; 1.; 1.; 1.; 6. |] in
  let xi = Delay.expected_to_destination g ~dag ~arc_delay in
  checkf "ecmp mean" (10. /. 3.) xi.(0)

let test_delay_unreachable_nan () =
  let g = Graph.build ~n:3 [ arc 0 1 ] in
  let dag = Spf.to_destination g ~weights:[| 1 |] ~dst:1 in
  let xi = Delay.expected_to_destination g ~dag ~arc_delay:[| 1. |] in
  Alcotest.(check bool) "nan for unreachable" true (Float.is_nan xi.(2))

let test_arc_delays_formula () =
  let g = Graph.build ~n:2 [ arc ~capacity:500. ~delay:10. 0 1 ] in
  let d = Delay.arc_delays Sla.default g ~phi_h_per_arc:[| 0. |] in
  checkf "matches Sla.link_delay" 10.016 d.(0)

let test_pair_delays () =
  let g = Classic.line 3 in
  let w = Weights.uniform g 1 in
  let dags = Spf.all_destinations g ~weights:w in
  let arc_delay = Array.make (Graph.arc_count g) 1. in
  let out = Delay.pair_delays g ~dags ~arc_delay ~pairs:[ (0, 2); (2, 0) ] in
  Alcotest.(check int) "two pairs" 2 (List.length out);
  List.iter
    (fun (_, _, d) ->
      match d with
      | Delay.Reachable d -> checkf "two unit hops" 2. d
      | Delay.Unreachable -> Alcotest.fail "pair reported unreachable")
    out

let test_pair_delays_unreachable () =
  (* 0 -> 1 only; the (2, 0) pair has no path and must be reported as
     data, not raised. *)
  let g = Graph.build ~n:3 [ arc 0 1; arc 1 0; arc 1 2 ] in
  let w = Weights.uniform g 1 in
  let dags = Spf.all_destinations g ~weights:w in
  let arc_delay = Array.make (Graph.arc_count g) 1. in
  let out = Delay.pair_delays g ~dags ~arc_delay ~pairs:[ (0, 2); (2, 0) ] in
  match out with
  | [ (0, 2, Delay.Reachable d); (2, 0, Delay.Unreachable) ] ->
      checkf "reachable pair delay" 2. d
  | _ -> Alcotest.fail "expected one reachable and one unreachable pair"

(* ------------------------------------------------------------------ *)
(* Evaluate *)

let two_class_line () =
  let g = Classic.line 3 ~capacity:10. in
  let th = single_dest_matrix 3 [ (0, 2, 4.) ] in
  let tl = single_dest_matrix 3 [ (0, 2, 4.) ] in
  (g, th, tl)

let test_evaluate_residual () =
  let g, th, tl = two_class_line () in
  let w = Weights.uniform g 1 in
  let e = Evaluate.evaluate g ~wh:w ~wl:w ~th ~tl in
  (* H load 4 on both forward arcs of capacity 10 -> residual 6. *)
  Array.iteri
    (fun i h ->
      if h > 0. then checkf "residual" 6. e.Evaluate.residual.(i)
      else checkf "idle residual" 10. e.Evaluate.residual.(i))
    e.Evaluate.h_loads

let test_evaluate_residual_clamped () =
  let g = Classic.line 3 ~capacity:1. in
  let th = single_dest_matrix 3 [ (0, 2, 5.) ] in
  let tl = single_dest_matrix 3 [ (0, 2, 1.) ] in
  let w = Weights.uniform g 1 in
  let e = Evaluate.evaluate g ~wh:w ~wl:w ~th ~tl in
  Array.iteri
    (fun i h ->
      if h > 0. then checkf "clamped to zero" 0. e.Evaluate.residual.(i))
    e.Evaluate.h_loads

let test_evaluate_saturated_finite () =
  (* High-priority load above capacity: residual clamps to 0, the
     low-priority Φ lands on the steepest Fortz segment, and nothing
     anywhere becomes NaN — Λ included. *)
  let g = Classic.line 3 ~capacity:1. in
  let th = single_dest_matrix 3 [ (0, 2, 5.) ] in
  let tl = single_dest_matrix 3 [ (0, 2, 2.) ] in
  let w = Weights.uniform g 1 in
  let e = Evaluate.evaluate g ~wh:w ~wl:w ~th ~tl in
  Array.iteri
    (fun i h -> if h > 0. then checkf "residual clamped" 0. e.Evaluate.residual.(i))
    e.Evaluate.h_loads;
  Alcotest.(check bool) "phi_h finite" true (Float.is_finite e.Evaluate.phi_h);
  Alcotest.(check bool) "phi_l finite" true (Float.is_finite e.Evaluate.phi_l);
  (* phi at zero capacity is pure slope: 5000 * load on each loaded arc. *)
  Array.iteri
    (fun i l ->
      if l > 0. then checkf "steepest segment" (5000. *. l) e.Evaluate.phi_l_per_arc.(i))
    e.Evaluate.l_loads;
  let s = Evaluate.evaluate_sla Sla.default e ~th in
  Alcotest.(check bool) "lambda not nan" false (Float.is_nan s.Evaluate.lambda);
  Alcotest.(check bool) "lambda finite" true (Float.is_finite s.Evaluate.lambda);
  List.iter
    (fun (_, _, d) ->
      Alcotest.(check bool) "pair delay finite" true (Float.is_finite d))
    s.Evaluate.pair_delays;
  (* The combined objective must stay orderable. *)
  let obj = { Lexico.primary = e.Evaluate.phi_h; secondary = s.Evaluate.lambda } in
  Alcotest.(check int) "lexico self-compare" 0 (Lexico.compare obj obj)

let test_evaluate_saturated_monotone () =
  (* More low-priority demand on a saturated link must cost strictly
     more, not overflow or go flat. *)
  let g = Classic.line 3 ~capacity:1. in
  let th = single_dest_matrix 3 [ (0, 2, 5.) ] in
  let w = Weights.uniform g 1 in
  let phi_l demand =
    let tl = single_dest_matrix 3 [ (0, 2, demand) ] in
    (Evaluate.evaluate g ~wh:w ~wl:w ~th ~tl).Evaluate.phi_l
  in
  let prev = ref (phi_l 0.) in
  List.iter
    (fun d ->
      let v = phi_l d in
      Alcotest.(check bool) "finite" true (Float.is_finite v);
      Alcotest.(check bool) "strictly increasing" true (v > !prev);
      prev := v)
    [ 0.5; 1.; 2.; 8.; 64. ]

let test_evaluate_sla_unreachable () =
  (* A severed high-priority pair is reported (infinite Λ, counted)
     rather than raised — failure sweeps evaluate cut topologies. *)
  let g = Graph.build ~n:3 [ arc 2 0; arc 0 1; arc 1 0 ] in
  let w = Weights.uniform g 1 in
  let dags = Spf.all_destinations g ~weights:w in
  let th = single_dest_matrix 3 [ (0, 2, 1.); (1, 0, 1.) ] in
  let h_loads = Loads.of_matrix ~drop_unroutable:true g ~dags th in
  let l_loads = Array.make (Graph.arc_count g) 0. in
  let e = Evaluate.assemble g ~dags_h:dags ~h_loads ~dags_l:dags ~l_loads in
  let s = Evaluate.evaluate_sla Sla.default e ~th in
  Alcotest.(check int) "one unreachable" 1 s.Evaluate.unreachable;
  Alcotest.(check bool) "lambda infinite" true (s.Evaluate.lambda = Float.infinity);
  Alcotest.(check bool) "lambda not nan" false (Float.is_nan s.Evaluate.lambda);
  Alcotest.(check bool) "at least the severed violation" true
    (s.Evaluate.violations >= 1);
  checkf "worst delay infinite" Float.infinity s.Evaluate.worst_delay

let test_evaluate_str_shares_dags () =
  let g, th, tl = two_class_line () in
  let w = Weights.uniform g 1 in
  let e = Evaluate.evaluate g ~wh:w ~wl:w ~th ~tl in
  Alcotest.(check bool) "physically shared" true (e.Evaluate.dags_h == e.Evaluate.dags_l)

let test_evaluate_phi_sums () =
  let g, th, tl = two_class_line () in
  let w = Weights.uniform g 1 in
  let e = Evaluate.evaluate g ~wh:w ~wl:w ~th ~tl in
  checkf "phi_h total" (Array.fold_left ( +. ) 0. e.Evaluate.phi_h_per_arc)
    e.Evaluate.phi_h;
  checkf "phi_l total" (Array.fold_left ( +. ) 0. e.Evaluate.phi_l_per_arc)
    e.Evaluate.phi_l;
  (* H at 40% utilization (segment 2); L at 4/6 of residual 6. *)
  let expected_h = 2. *. ((3. *. 4.) -. (2. /. 3. *. 10.)) in
  checkf "phi_h value" expected_h e.Evaluate.phi_h

let test_evaluate_priority_insulation () =
  (* Low-priority demand must not affect the high-priority cost. *)
  let g, th, tl = two_class_line () in
  let w = Weights.uniform g 1 in
  let e1 = Evaluate.evaluate g ~wh:w ~wl:w ~th ~tl in
  let tl_heavy = Matrix.scale tl 100. in
  let e2 = Evaluate.evaluate g ~wh:w ~wl:w ~th ~tl:tl_heavy in
  checkf "phi_h unchanged" e1.Evaluate.phi_h e2.Evaluate.phi_h;
  Alcotest.(check bool) "phi_l grows" true
    (e2.Evaluate.phi_l > e1.Evaluate.phi_l)

let test_evaluate_dtr_separates () =
  (* With different weights, the low-priority class can avoid the
     high-priority path entirely. *)
  let g = Classic.triangle ~capacity:1. () in
  let th = single_dest_matrix 3 [ (0, 2, 0.5) ] in
  let tl = single_dest_matrix 3 [ (0, 2, 0.5) ] in
  let wh = Weights.uniform g 1 in
  (* Push low priority onto 0 -> 1 -> 2 by penalizing the direct arc. *)
  let wl = Array.copy wh in
  (match Graph.find_arc g ~src:0 ~dst:2 with
  | Some id -> wl.(id) <- 30
  | None -> Alcotest.fail "missing arc");
  let e = Evaluate.evaluate g ~wh ~wl ~th ~tl in
  (match Graph.find_arc g ~src:0 ~dst:2 with
  | Some id ->
      checkf "H on direct" 0.5 e.Evaluate.h_loads.(id);
      checkf "L avoids direct" 0. e.Evaluate.l_loads.(id)
  | None -> ());
  match Graph.find_arc g ~src:0 ~dst:1 with
  | Some id -> checkf "L detours" 0.5 e.Evaluate.l_loads.(id)
  | None -> ()

let test_evaluate_utilization () =
  let g, th, tl = two_class_line () in
  let w = Weights.uniform g 1 in
  let e = Evaluate.evaluate g ~wh:w ~wl:w ~th ~tl in
  let u = Evaluate.utilization e in
  let hu = Evaluate.h_utilization e in
  (* Forward arcs carry 8/10 total, 4/10 high priority. *)
  let max_u = Array.fold_left Float.max 0. u in
  let max_hu = Array.fold_left Float.max 0. hu in
  checkf "max util" 0.8 max_u;
  checkf "max h-util" 0.4 max_hu;
  checkf "max accessor" 0.8 (Evaluate.max_utilization e);
  checkf "avg = mean" (Dtr_util.Stats.mean u) (Evaluate.avg_utilization e)

let test_evaluate_sla_counts () =
  let g = Graph.build ~n:2
      (Graph.add_symmetric ~capacity:500. ~delay:30. 0 1 [])
  in
  let th = single_dest_matrix 2 [ (0, 1, 10.) ] in
  let tl = single_dest_matrix 2 [ (1, 0, 10.) ] in
  let w = Weights.uniform g 1 in
  let e = Evaluate.evaluate g ~wh:w ~wl:w ~th ~tl in
  let s = Evaluate.evaluate_sla Sla.default e ~th in
  (* 30 ms propagation > 25 ms bound. *)
  Alcotest.(check int) "one violation" 1 s.Evaluate.violations;
  Alcotest.(check bool) "penalty at least a" true (s.Evaluate.lambda >= 100.);
  Alcotest.(check bool) "worst delay > 30" true (s.Evaluate.worst_delay > 30.)

let test_evaluate_sla_no_violation () =
  let g = Graph.build ~n:2 (Graph.add_symmetric ~capacity:500. ~delay:5. 0 1 []) in
  let th = single_dest_matrix 2 [ (0, 1, 10.) ] in
  let tl = single_dest_matrix 2 [ (1, 0, 10.) ] in
  let w = Weights.uniform g 1 in
  let e = Evaluate.evaluate g ~wh:w ~wl:w ~th ~tl in
  let s = Evaluate.evaluate_sla Sla.default e ~th in
  Alcotest.(check int) "no violations" 0 s.Evaluate.violations;
  checkf "zero penalty" 0. s.Evaluate.lambda

(* ------------------------------------------------------------------ *)
(* Objective *)

let test_objective_load () =
  let g, th, tl = two_class_line () in
  let w = Weights.uniform g 1 in
  let r = Objective.evaluate Objective.Load g ~wh:w ~wl:w ~th ~tl in
  checkf "primary is phi_h" r.Objective.eval.Evaluate.phi_h
    r.Objective.objective.Lexico.primary;
  checkf "secondary is phi_l" r.Objective.eval.Evaluate.phi_l
    r.Objective.objective.Lexico.secondary;
  Alcotest.(check bool) "no sla" true (r.Objective.sla = None)

let test_objective_sla () =
  let g, th, tl = two_class_line () in
  let w = Weights.uniform g 1 in
  let r = Objective.evaluate (Objective.Sla Sla.default) g ~wh:w ~wl:w ~th ~tl in
  (match r.Objective.sla with
  | Some s ->
      checkf "primary is lambda" s.Evaluate.lambda
        r.Objective.objective.Lexico.primary
  | None -> Alcotest.fail "expected SLA evaluation");
  checkf "secondary is phi_l" r.Objective.eval.Evaluate.phi_l
    r.Objective.objective.Lexico.secondary

let test_objective_link_costs () =
  let g, th, tl = two_class_line () in
  let w = Weights.uniform g 1 in
  let r = Objective.evaluate Objective.Load g ~wh:w ~wl:w ~th ~tl in
  let costs = Objective.link_costs_h Objective.Load r in
  Alcotest.(check int) "per arc" (Graph.arc_count g) (Array.length costs);
  Array.iteri
    (fun i c ->
      checkf "primary = phi_h_l" r.Objective.eval.Evaluate.phi_h_per_arc.(i)
        c.Lexico.primary)
    costs;
  let lcosts = Objective.link_costs_l r in
  Array.iteri
    (fun i c ->
      checkf "findl cost" r.Objective.eval.Evaluate.phi_l_per_arc.(i) c)
    lcosts

(* ------------------------------------------------------------------ *)
(* Multi-class evaluation *)

module Multi = Dtr_routing.Multi

let three_class_line () =
  let g = Classic.line 3 ~capacity:10. in
  let m0 = single_dest_matrix 3 [ (0, 2, 2.) ] in
  let m1 = single_dest_matrix 3 [ (0, 2, 3.) ] in
  let m2 = single_dest_matrix 3 [ (0, 2, 4.) ] in
  (g, [| m0; m1; m2 |])

let test_multi_two_class_matches_evaluate () =
  (* T = 2 must agree with the dedicated two-class evaluation. *)
  let g, th, tl = two_class_line () in
  let w = Weights.uniform g 1 in
  let e2 = Evaluate.evaluate g ~wh:w ~wl:w ~th ~tl in
  let m = Multi.evaluate g ~weights:[| w; w |] ~matrices:[| th; tl |] in
  checkf "phi_h agrees" e2.Evaluate.phi_h m.Multi.phi.(0);
  checkf "phi_l agrees" e2.Evaluate.phi_l m.Multi.phi.(1)

let test_multi_residual_chain () =
  let g, matrices = three_class_line () in
  let w = Weights.uniform g 1 in
  let m = Multi.evaluate g ~weights:[| w; w; w |] ~matrices in
  (* On the loaded forward arcs: class 0 sees 10, class 1 sees 8,
     class 2 sees 5. *)
  Array.iteri
    (fun a l0 ->
      if l0 > 0. then begin
        checkf "class0 capacity" 10. m.Multi.capacity_seen.(0).(a);
        checkf "class1 capacity" 8. m.Multi.capacity_seen.(1).(a);
        checkf "class2 capacity" 5. m.Multi.capacity_seen.(2).(a)
      end)
    m.Multi.loads.(0)

let test_multi_capacity_monotone () =
  let g, matrices = three_class_line () in
  let w = Weights.uniform g 1 in
  let m = Multi.evaluate g ~weights:[| w; w; w |] ~matrices in
  for k = 1 to 2 do
    Array.iteri
      (fun a c ->
        Alcotest.(check bool) "capacity non-increasing in class" true
          (c <= m.Multi.capacity_seen.(k - 1).(a)))
      m.Multi.capacity_seen.(k)
  done

let test_multi_shares_dags_when_aliased () =
  let g, matrices = three_class_line () in
  let w = Weights.uniform g 1 in
  let m = Multi.evaluate g ~weights:[| w; w; w |] ~matrices in
  Alcotest.(check bool) "dags shared" true
    (m.Multi.dags.(0) == m.Multi.dags.(1) && m.Multi.dags.(1) == m.Multi.dags.(2))

let test_multi_higher_class_insulated () =
  let g, matrices = three_class_line () in
  let w = Weights.uniform g 1 in
  let m1 = Multi.evaluate g ~weights:[| w; w; w |] ~matrices in
  let heavier = Array.copy matrices in
  heavier.(2) <- Matrix.scale matrices.(2) 50.;
  let m2 = Multi.evaluate g ~weights:[| w; w; w |] ~matrices:heavier in
  checkf "class 0 unchanged" m1.Multi.phi.(0) m2.Multi.phi.(0);
  checkf "class 1 unchanged" m1.Multi.phi.(1) m2.Multi.phi.(1);
  Alcotest.(check bool) "class 2 grows" true (m2.Multi.phi.(2) > m1.Multi.phi.(2))

let test_multi_compare_objective () =
  Alcotest.(check bool) "first component dominates" true
    (Multi.compare_objective [| 1.; 99. |] [| 2.; 0. |] < 0);
  Alcotest.(check bool) "later components break ties" true
    (Multi.compare_objective [| 1.; 2.; 3. |] [| 1.; 2.; 4. |] < 0);
  Alcotest.(check int) "equal" 0 (Multi.compare_objective [| 1.; 2. |] [| 1.; 2. |]);
  Alcotest.check_raises "length"
    (Invalid_argument "Multi.compare_objective: length mismatch") (fun () ->
      ignore (Multi.compare_objective [| 1. |] [| 1.; 2. |]))

let test_multi_rejects () =
  let g, matrices = three_class_line () in
  let w = Weights.uniform g 1 in
  Alcotest.check_raises "no classes"
    (Invalid_argument "Multi.evaluate: need at least one class") (fun () ->
      ignore (Multi.evaluate g ~weights:[||] ~matrices:[||]));
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Multi.evaluate: weights/matrices length mismatch")
    (fun () -> ignore (Multi.evaluate g ~weights:[| w |] ~matrices))

let test_multi_utilization () =
  let g, matrices = three_class_line () in
  let w = Weights.uniform g 1 in
  let m = Multi.evaluate g ~weights:[| w; w; w |] ~matrices in
  let u = Multi.utilization m in
  (* Forward arcs: (2+3+4)/10. *)
  let max_u = Array.fold_left Float.max 0. u in
  checkf "total utilization" 0.9 max_u;
  Alcotest.(check int) "class count" 3 (Multi.class_count m)

(* ------------------------------------------------------------------ *)

let test_objective_of_eval_sla_cache () =
  let g, th, tl = two_class_line () in
  let w = Weights.uniform g 1 in
  let model = Objective.Sla Sla.default in
  let r1 = Objective.evaluate model g ~wh:w ~wl:w ~th ~tl in
  match r1.Objective.sla with
  | None -> Alcotest.fail "expected sla"
  | Some sla ->
      let r2 = Objective.of_eval model r1.Objective.eval ~th ~sla () in
      (match r2.Objective.sla with
      | Some s2 -> Alcotest.(check bool) "cache reused" true (s2 == sla)
      | None -> Alcotest.fail "cache dropped")

(* ------------------------------------------------------------------ *)
(* Weights_io *)

module Weights_io = Dtr_routing.Weights_io

let test_weights_io_roundtrip () =
  let sets = [| [| 1; 15; 30 |]; [| 7; 7; 7 |] |] in
  match Weights_io.of_string (Weights_io.to_string sets) with
  | Error e -> Alcotest.fail e
  | Ok back ->
      Alcotest.(check int) "two topologies" 2 (Array.length back);
      Alcotest.(check (array int)) "topo 0" sets.(0) back.(0);
      Alcotest.(check (array int)) "topo 1" sets.(1) back.(1)

let test_weights_io_single_topology () =
  let sets = [| [| 3; 9 |] |] in
  match Weights_io.of_string (Weights_io.to_string sets) with
  | Error e -> Alcotest.fail e
  | Ok back -> Alcotest.(check (array int)) "roundtrip" sets.(0) back.(0)

let test_weights_io_comments () =
  let src = "# saved weights\narcs 2 topologies 1\nw 0 5\nw 1 6\n" in
  match Weights_io.of_string src with
  | Error e -> Alcotest.fail e
  | Ok back -> Alcotest.(check (array int)) "parsed" [| 5; 6 |] back.(0)

let test_weights_io_errors () =
  (match Weights_io.of_string "w 0 5\n" with
  | Error e -> Alcotest.(check string) "missing header" "missing header" e
  | Ok _ -> Alcotest.fail "expected error");
  (match Weights_io.of_string "arcs 2 topologies 1\nw 0 5\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected missing-arc error");
  (match Weights_io.of_string "arcs 1 topologies 1\nw 0 5\nw 0 6\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected duplicate error");
  match Weights_io.of_string "arcs 1 topologies 2\nw 0 5\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected arity error"

(* Rejection corpus: every malformed input must fail with an error
   that names the offending line, so a bad --init-weights file points
   the user at the exact row to fix. *)
let check_rejected label src expected =
  match Weights_io.of_string src with
  | Ok _ -> Alcotest.failf "%s: expected rejection" label
  | Error e -> Alcotest.(check string) label expected e

let test_weights_io_rejects_out_of_range () =
  check_rejected "weight too large" "arcs 2 topologies 1\nw 0 5\nw 1 31\n"
    "line 3: weight 31 out of range [1, 30]";
  check_rejected "weight zero" "arcs 1 topologies 2\nw 0 0 7\n"
    "line 2: weight 0 out of range [1, 30]";
  check_rejected "negative weight" "arcs 1 topologies 1\nw 0 -3\n"
    "line 2: weight -3 out of range [1, 30]"

let test_weights_io_rejects_duplicate_arc () =
  check_rejected "duplicate arc" "arcs 2 topologies 1\nw 0 5\nw 0 6\n"
    "line 3: duplicate arc 0"

let test_weights_io_rejects_short_row () =
  check_rejected "short row" "arcs 1 topologies 2\nw 0 5\n"
    "arc 0: expected 2 weights"

let test_weights_io_rejects_junk () =
  check_rejected "junk header" "arcs two topologies 1\nw 0 5\n"
    "line 1: bad header";
  check_rejected "junk value" "arcs 1 topologies 1\nw 0 five\n"
    "line 2: bad weights";
  check_rejected "junk directive" "arcs 1 topologies 1\nweight 0 5\n"
    "line 2: unknown directive"

let test_weights_io_rejects_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Weights_io.to_string: length mismatch") (fun () ->
      ignore (Weights_io.to_string [| [| 1 |]; [| 1; 2 |] |]))

let test_weights_io_file_roundtrip () =
  let sets = [| [| 2; 4; 6 |] |] in
  let path = Filename.temp_file "dtr_weights" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Weights_io.save sets path;
      match Weights_io.load path with
      | Error e -> Alcotest.fail e
      | Ok back -> Alcotest.(check (array int)) "file roundtrip" sets.(0) back.(0))

(* ------------------------------------------------------------------ *)
(* Report *)

module Report = Dtr_routing.Report
module Table = Dtr_util.Table

let report_eval () =
  let g, th, tl = two_class_line () in
  let w = Weights.uniform g 1 in
  Evaluate.evaluate g ~wh:w ~wl:w ~th ~tl

let test_report_per_link () =
  let e = report_eval () in
  let t = Report.per_link_table e in
  Alcotest.(check int) "one row per arc" 4 (List.length (Table.rows t));
  (* Rows sorted by decreasing utilization. *)
  let utils =
    List.map (fun row -> float_of_string (List.nth row 6)) (Table.rows t)
  in
  let rec desc = function
    | a :: (b :: _ as rest) -> a >= b && desc rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (desc utils)

let test_report_per_link_top () =
  let e = report_eval () in
  let t = Report.per_link_table ~top:2 e in
  Alcotest.(check int) "limited rows" 2 (List.length (Table.rows t))

let test_report_summary () =
  let e = report_eval () in
  let t = Report.summary_table e in
  Alcotest.(check int) "five metrics" 5 (List.length (Table.rows t))

let test_report_pair_delays () =
  let g, th, tl = two_class_line () in
  let w = Weights.uniform g 1 in
  let e = Evaluate.evaluate g ~wh:w ~wl:w ~th ~tl in
  let sla = Evaluate.evaluate_sla Sla.default e ~th in
  let t = Report.per_pair_delay_table ~node_name:(Printf.sprintf "n%d") sla Sla.default in
  Alcotest.(check int) "one HP pair" 1 (List.length (Table.rows t));
  match Table.rows t with
  | [ row ] ->
      Alcotest.(check string) "named source" "n0" (List.nth row 0);
      Alcotest.(check bool) "positive margin" true
        (String.length (List.nth row 3) > 0 && (List.nth row 3).[0] = '+');
      Alcotest.(check string) "ok verdict" "ok" (List.nth row 4)
  | _ -> Alcotest.fail "expected one row"

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "dtr_routing"
    [
      ( "weights",
        [
          Alcotest.test_case "uniform" `Quick test_weights_uniform;
          Alcotest.test_case "random in bounds" `Quick
            test_weights_random_in_bounds;
          Alcotest.test_case "validate rejects" `Quick
            test_weights_validate_rejects;
          Alcotest.test_case "inverse capacity" `Quick
            test_weights_inverse_capacity;
          Alcotest.test_case "perturb fraction" `Quick
            test_weights_perturb_fraction;
          Alcotest.test_case "perturb zero fraction" `Quick
            test_weights_perturb_zero_fraction;
          Alcotest.test_case "step clamps" `Quick test_weights_step_clamps;
        ] );
      ( "loads",
        [
          Alcotest.test_case "line" `Quick test_loads_line;
          Alcotest.test_case "three-way ECMP split" `Quick test_loads_ecmp_split;
          Alcotest.test_case "two-way even split" `Quick
            test_loads_even_split_two_ways;
          Alcotest.test_case "transit accumulates" `Quick
            test_loads_transit_accumulates;
          Alcotest.test_case "unroutable raises" `Quick
            test_loads_unroutable_raises;
          Alcotest.test_case "drop unroutable" `Quick test_loads_drop_unroutable;
          Alcotest.test_case "node throughflow" `Quick test_node_throughflow;
          qc prop_flow_conservation_at_destination;
          qc prop_flow_conservation_at_transit;
          qc prop_total_load_equals_demand_times_hops;
          qc prop_loads_linear_in_demand;
          qc prop_phi_h_independent_of_wl;
        ] );
      ( "delay",
        [
          Alcotest.test_case "line sums" `Quick test_delay_line_sums;
          Alcotest.test_case "ecmp average" `Quick test_delay_ecmp_average;
          Alcotest.test_case "unreachable nan" `Quick test_delay_unreachable_nan;
          Alcotest.test_case "arc delay formula" `Quick test_arc_delays_formula;
          Alcotest.test_case "pair delays" `Quick test_pair_delays;
          Alcotest.test_case "pair delays unreachable" `Quick
            test_pair_delays_unreachable;
        ] );
      ( "evaluate",
        [
          Alcotest.test_case "residual capacity" `Quick test_evaluate_residual;
          Alcotest.test_case "residual clamped at zero" `Quick
            test_evaluate_residual_clamped;
          Alcotest.test_case "saturated links stay finite" `Quick
            test_evaluate_saturated_finite;
          Alcotest.test_case "saturated phi_l monotone" `Quick
            test_evaluate_saturated_monotone;
          Alcotest.test_case "SLA severed pair" `Quick
            test_evaluate_sla_unreachable;
          Alcotest.test_case "STR shares DAGs" `Quick
            test_evaluate_str_shares_dags;
          Alcotest.test_case "phi sums" `Quick test_evaluate_phi_sums;
          Alcotest.test_case "priority insulation" `Quick
            test_evaluate_priority_insulation;
          Alcotest.test_case "DTR separates classes" `Quick
            test_evaluate_dtr_separates;
          Alcotest.test_case "utilization" `Quick test_evaluate_utilization;
          Alcotest.test_case "SLA violation counting" `Quick
            test_evaluate_sla_counts;
          Alcotest.test_case "SLA no violation" `Quick
            test_evaluate_sla_no_violation;
        ] );
      ( "multi",
        [
          Alcotest.test_case "T=2 matches Evaluate" `Quick
            test_multi_two_class_matches_evaluate;
          Alcotest.test_case "residual chain" `Quick test_multi_residual_chain;
          Alcotest.test_case "capacity monotone" `Quick
            test_multi_capacity_monotone;
          Alcotest.test_case "shared DAGs when aliased" `Quick
            test_multi_shares_dags_when_aliased;
          Alcotest.test_case "higher classes insulated" `Quick
            test_multi_higher_class_insulated;
          Alcotest.test_case "compare objective" `Quick
            test_multi_compare_objective;
          Alcotest.test_case "rejects bad input" `Quick test_multi_rejects;
          Alcotest.test_case "utilization and class count" `Quick
            test_multi_utilization;
        ] );
      ( "objective",
        [
          Alcotest.test_case "load objective" `Quick test_objective_load;
          Alcotest.test_case "sla objective" `Quick test_objective_sla;
          Alcotest.test_case "link costs" `Quick test_objective_link_costs;
          Alcotest.test_case "sla cache reuse" `Quick
            test_objective_of_eval_sla_cache;
        ] );
      ( "weights-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_weights_io_roundtrip;
          Alcotest.test_case "single topology" `Quick
            test_weights_io_single_topology;
          Alcotest.test_case "comments" `Quick test_weights_io_comments;
          Alcotest.test_case "errors" `Quick test_weights_io_errors;
          Alcotest.test_case "rejects out-of-range" `Quick
            test_weights_io_rejects_out_of_range;
          Alcotest.test_case "rejects duplicate arc" `Quick
            test_weights_io_rejects_duplicate_arc;
          Alcotest.test_case "rejects short row" `Quick
            test_weights_io_rejects_short_row;
          Alcotest.test_case "rejects junk" `Quick test_weights_io_rejects_junk;
          Alcotest.test_case "rejects mismatch" `Quick
            test_weights_io_rejects_mismatch;
          Alcotest.test_case "file roundtrip" `Quick
            test_weights_io_file_roundtrip;
        ] );
      ( "report",
        [
          Alcotest.test_case "per-link table" `Quick test_report_per_link;
          Alcotest.test_case "per-link top" `Quick test_report_per_link_top;
          Alcotest.test_case "summary" `Quick test_report_summary;
          Alcotest.test_case "pair delays" `Quick test_report_pair_delays;
        ] );
    ]
